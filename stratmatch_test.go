package stratmatch

import (
	"math"
	"testing"
)

func TestCompleteNetworkStable(t *testing.T) {
	nw, err := NewCompleteNetwork(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := nw.Stable()
	if !m.IsStable() {
		t.Fatal("stable matching not stable")
	}
	rep := m.Clusters()
	if rep.MeanClusterSize != 3 || rep.Components != 3 {
		t.Fatalf("cluster report %+v", rep)
	}
	if !m.Matched(0, 1) || !m.Matched(0, 2) || !m.Matched(1, 2) {
		t.Fatal("first cluster wrong")
	}
	mates := m.Mates(0)
	mates[0] = 99 // returned slice must be a copy
	if m.Mates(0)[0] == 99 {
		t.Fatal("Mates returns internal storage")
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewCompleteNetwork(-1, 1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewRandomNetwork(10, -1, 1, 0); err == nil {
		t.Error("negative degree accepted")
	}
	nw, err := NewCompleteNetwork(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetBudget(9, 1); err == nil {
		t.Error("out-of-range SetBudget accepted")
	}
	if err := nw.SetBudgets([]int{1, 2}); err == nil {
		t.Error("short SetBudgets accepted")
	}
	if err := nw.SetBudgets([]int{1, 1, 1, 1, -1}); err == nil {
		t.Error("negative SetBudgets accepted")
	}
}

func TestSetBudgetChangesStable(t *testing.T) {
	nw, err := NewCompleteNetwork(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetBudget(0, 3); err != nil {
		t.Fatal(err)
	}
	rep := nw.Stable().Clusters()
	if rep.Components != 1 {
		t.Fatalf("extra slot should connect the graph (Figure 5): %+v", rep)
	}
}

func TestRandomNetworkDeterministic(t *testing.T) {
	a, err := NewRandomNetwork(200, 8, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomNetwork(200, 8, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			if a.Acceptable(i, j) != b.Acceptable(i, j) {
				t.Fatalf("networks differ at (%d,%d)", i, j)
			}
		}
	}
}

func TestSimulationConverges(t *testing.T) {
	nw, err := NewRandomNetwork(300, 10, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []StrategyKind{BestMate, Decremental, RandomProbe} {
		sim, err := nw.Simulate(kind, 7)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		units := 15.0
		if kind == RandomProbe {
			units = 120 // random probing mixes much more slowly
		}
		traj := sim.Run(units, 1)
		if !sim.Converged() {
			t.Fatalf("strategy %v: disorder %v after %v units",
				kind, traj[len(traj)-1].Disorder, units)
		}
	}
}

func TestSimulateOnCompleteRejected(t *testing.T) {
	nw, err := NewCompleteNetwork(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Simulate(BestMate, 1); err == nil {
		t.Fatal("Simulate on complete network should be rejected")
	}
	nwR, err := NewRandomNetwork(10, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nwR.Simulate(StrategyKind(99), 1); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestSimulationPerturbation(t *testing.T) {
	nw, err := NewRandomNetwork(400, 10, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := nw.Simulate(BestMate, 9)
	if err != nil {
		t.Fatal(err)
	}
	sim.JumpToStable()
	if !sim.Converged() {
		t.Fatal("JumpToStable did not converge")
	}
	sim.RemovePeer(0)
	sim.Run(10, 1)
	if !sim.Converged() {
		t.Fatalf("did not re-converge after removal: %v", sim.Disorder())
	}
	sim.AddPeer(0, 10.0/399)
	sim.Run(10, 1)
	if !sim.Converged() {
		t.Fatalf("did not re-converge after re-join: %v", sim.Disorder())
	}
}

func TestMateDistributionFacade(t *testing.T) {
	row, err := MateDistribution(100, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 100 {
		t.Fatalf("row length %d", len(row))
	}
	if math.Abs(row[1]-0.1) > 1e-12 {
		t.Fatalf("D(0,1) = %v, want 0.1", row[1])
	}
	if _, err := MateDistribution(10, 2, 0); err == nil {
		t.Fatal("p=2 accepted")
	}
}

func TestChoiceDistributionsFacade(t *testing.T) {
	rows, err := ChoiceDistributions(60, 0.1, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rows[0]) != 60 {
		t.Fatalf("shape %dx%d", len(rows), len(rows[0]))
	}
	var first, second float64
	for j := range rows[0] {
		first += rows[0][j]
		second += rows[1][j]
	}
	if second > first {
		t.Fatalf("second choice more likely than first: %v > %v", second, first)
	}
}

func TestShareRatiosFacade(t *testing.T) {
	pts, err := ShareRatios(300, 3, 15, SaroiuBandwidth())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 300 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Efficiency >= pts[len(pts)-1].Efficiency {
		t.Fatal("best peer should have lower efficiency than worst")
	}
}

func TestFluidDensityFacade(t *testing.T) {
	if FluidDensity(10, 0) != 10 {
		t.Fatal("fluid density at 0")
	}
}

func TestRankByScore(t *testing.T) {
	scores := []float64{10, 50, 30, 50}
	rankOf, peerAt := RankByScore(scores)
	if rankOf[1] != 0 || rankOf[3] != 1 || rankOf[2] != 2 || rankOf[0] != 3 {
		t.Fatalf("rankOf = %v", rankOf)
	}
	if peerAt[0] != 1 || peerAt[1] != 3 {
		t.Fatalf("peerAt = %v (ties must break by index)", peerAt)
	}
}

func TestSwarmFacade(t *testing.T) {
	sw, err := NewSwarm(SwarmOptions{
		Leechers: 20, Seeds: 1, Pieces: 16, PostFlashCrowd: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sw.RunUntilDone(20000) {
		t.Fatal("swarm did not finish")
	}
	m := sw.Metrics()
	if m.CompletedLeechers != 20 {
		t.Fatalf("completed %d", m.CompletedLeechers)
	}
	if sw.Round() <= 0 {
		t.Fatal("round did not advance")
	}
	sw.Depart(0) // post-completion departure is harmless
	sw.Run(5)
}

func TestSwarmDynamicMembershipFacade(t *testing.T) {
	sw, err := NewSwarm(SwarmOptions{
		Leechers: 15, Seeds: 1, Pieces: 8, PostFlashCrowd: true, NeighborCount: 6, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw.Run(20)
	id := sw.Join(900, false)
	if id != 16 {
		t.Fatalf("joiner id %d, want 16", id)
	}
	if sw.Present() != 17 {
		t.Fatalf("present %d after join", sw.Present())
	}
	sw.Depart(2)
	if sw.Present() != 16 {
		t.Fatalf("present %d after depart", sw.Present())
	}
	sw.Announce(id) // harmless re-announce
	if !sw.RunUntilDone(50000) {
		t.Fatal("swarm did not finish with dynamic membership")
	}
	if sw.PresentSeeds() != sw.Present() {
		t.Fatal("finished swarm should be all seeds")
	}
}

func TestScenarioFacade(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 3 {
		t.Fatalf("scenario catalog too small: %v", names)
	}
	sc, err := NewScenario("poisson", 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 || res.TotalJoined <= sc.Opt.Leechers {
		t.Fatalf("scenario produced no churn: %d samples, %d joined",
			len(res.Series), res.TotalJoined)
	}
	if _, err := NewScenario("nope", 0, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
