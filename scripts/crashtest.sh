#!/bin/sh
# Crash-recovery harness for the durable checkpoint path: run a
# checkpointed btswarm scenario, SIGKILL it at a randomized point mid-run,
# resume from the checkpoint advertised by the last complete marker line
# in the truncated stream, and verify
#
#     truncated-prefix + resumed-tail  ==  uninterrupted golden stream
#
# byte for byte. This is the shell twin of cmd/btswarm's
# TestCheckpointCLIKillResume: the Go test pins the contract under -race
# in CI; this script exercises it against a real binary with a real
# SIGKILL, at a crash point that varies run to run.
#
#   scripts/crashtest.sh                 # defaults: poisson, scale 6
#   scripts/crashtest.sh flashcrowd 8    # scenario and scale override
set -eu
cd "$(dirname "$0")/.."

scenario=${1:-poisson}
scale=${2:-6}
every=50

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT INT TERM

echo "crashtest: building btswarm" >&2
go build -o "$work/btswarm" ./cmd/btswarm

common="-scenario $scenario -scenario-scale $scale -sample-every 1 \
	-emit jsonl -checkpoint-every $every -checkpoint-retain -1"

echo "crashtest: golden run ($scenario, scale $scale)" >&2
"$work/btswarm" $common -checkpoint-dir "$work/golden-ck" >"$work/golden.jsonl"

# Pick a randomized crash point: SIGKILL after 2-6 checkpoint markers,
# capped below the run's total so the kill lands mid-run.
rand=$(od -An -N2 -tu2 /dev/urandom | tr -dc '0-9')
total=$(grep -c '^{"type":"checkpoint"' "$work/golden.jsonl")
kill_after=$((2 + rand % 5))
[ "$kill_after" -lt "$total" ] || kill_after=$((total - 1))
if [ "$kill_after" -lt 1 ]; then
	echo "crashtest: run too short ($total checkpoints); raise the scale" >&2
	exit 1
fi

echo "crashtest: crash run, SIGKILL after $kill_after checkpoints" >&2
: >"$work/crash.jsonl"
"$work/btswarm" $common -checkpoint-dir "$work/crash-ck" >"$work/crash.jsonl" &
pid=$!
deadline=$((2400)) # 0.05s polls -> 120s
while kill -0 "$pid" 2>/dev/null; do
	seen=$(grep -c '^{"type":"checkpoint"' "$work/crash.jsonl" || true)
	[ "${seen:-0}" -ge "$kill_after" ] && break
	deadline=$((deadline - 1))
	if [ "$deadline" -le 0 ]; then
		echo "crashtest: timed out waiting for $kill_after checkpoints" >&2
		kill -9 "$pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.05
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# A SIGKILL can tear the final line mid-write: drop it unless the stream
# ends in a newline, then cut at the last complete checkpoint marker.
if [ -s "$work/crash.jsonl" ] &&
	[ "$(tail -c1 "$work/crash.jsonl" | wc -l)" -eq 0 ]; then
	sed '$d' "$work/crash.jsonl" >"$work/crash.trim"
else
	cp "$work/crash.jsonl" "$work/crash.trim"
fi
set -- $(awk '/^\{"type":"checkpoint","round":[0-9]+\}$/ { n = NR; line = $0 }
	END { if (!n) exit 1; gsub(/[^0-9]/, "", line); print n, line }' \
	"$work/crash.trim") || {
	echo "crashtest: no complete checkpoint marker in the truncated stream" >&2
	exit 1
}
lastline=$1
r=$2
head -n "$lastline" "$work/crash.trim" >"$work/prefix.jsonl"

# The marker for round r promises ckpt-(r+1) is already durable on disk.
ck=$(printf 'ckpt-%09d.ckpt' $((r + 1)))
if [ ! -f "$work/crash-ck/$ck" ]; then
	echo "crashtest: FAIL — marker round $r emitted but $ck missing" >&2
	exit 1
fi

echo "crashtest: resuming from $ck (marker round $r)" >&2
"$work/btswarm" -resume "$work/crash-ck/$ck" -emit jsonl \
	-checkpoint-every "$every" -checkpoint-dir "$work/crash-ck" \
	-checkpoint-retain -1 >"$work/resumed.jsonl"

cat "$work/prefix.jsonl" "$work/resumed.jsonl" >"$work/stitched.jsonl"
if cmp -s "$work/stitched.jsonl" "$work/golden.jsonl"; then
	echo "crashtest: PASS — stitched stream is byte-identical to the golden run"
else
	echo "crashtest: FAIL — stitched stream differs from the golden run" >&2
	diff "$work/golden.jsonl" "$work/stitched.jsonl" >&2 | head -20 || true
	exit 1
fi
