#!/bin/sh
# Run the per-experiment benchmarks once each (every paper figure/table
# plus the extensions, including the churn scenario catalog behind
# BenchmarkChurn) and record the results as BENCH_results.json at the
# repository root, so the performance trajectory is tracked across PRs.
# Pass extra `go test` flags through, e.g.:
#
#   scripts/bench.sh                 # default: -benchtime=1x -benchmem
#   scripts/bench.sh -benchtime=5x
set -eu
cd "$(dirname "$0")/.."
go test -run='^$' -bench=. -benchtime=1x -benchmem "$@" | tee /dev/stderr |
	go run ./cmd/benchjson > BENCH_results.json
echo "wrote BENCH_results.json" >&2
