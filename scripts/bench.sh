#!/bin/sh
# Run the per-experiment benchmarks (every paper figure/table plus the
# extensions, including the churn scenario catalog behind BenchmarkChurn,
# the telemetry on/off differential behind BenchmarkSwarmStepTelemetry*,
# the durable-checkpoint cost differential behind BenchmarkCheckpoint*,
# and the tracker daemon's sustained announce load behind
# BenchmarkTrackerd* — whose announces/sec and latency quantiles land in
# the JSON as custom units, compared direction-aware by --compare)
# and record the results as BENCH_results.json at the repository root, so
# the performance trajectory is tracked across PRs. Benchmarks run at
# -benchtime=3x so single-run noise doesn't dominate the comparisons.
#
#   scripts/bench.sh                          # default: -benchtime=3x -benchmem
#   scripts/bench.sh --compare old.json       # also diff against a previous
#                                             # BENCH_results.json: >20% ns/op
#                                             # or B/op growth is reported to
#                                             # stderr (report only — the exit
#                                             # code is unaffected)
#   scripts/bench.sh -benchtime=5x            # extra go test flags pass through
set -eu
cd "$(dirname "$0")/.."

# Extract --compare from anywhere in the argument list (it may be combined
# with pass-through go test flags); everything else is forwarded to go test.
compare=""
n=$#
while [ "$n" -gt 0 ]; do
	arg=$1
	shift
	n=$((n - 1))
	if [ "$arg" = "--compare" ]; then
		if [ "$n" -eq 0 ]; then
			echo "bench.sh: --compare requires a baseline path" >&2
			exit 2
		fi
		compare=$1
		shift
		n=$((n - 1))
	else
		set -- "$@" "$arg"
	fi
done

bench_out=$(mktemp)
baseline=""
trap 'rm -f "$bench_out" ${baseline:+"$baseline"}' EXIT

# Snapshot the baseline before anything touches BENCH_results.json:
# comparing against the committed file itself would otherwise read the
# freshly overwritten document and always report a clean diff.
if [ -n "$compare" ]; then
	baseline=$(mktemp)
	cp "$compare" "$baseline"
fi

# Run the benchmarks into a temp file first (not a pipeline: set -e cannot
# see a failure upstream of a pipe) so a go test failure aborts the script
# instead of feeding benchjson an empty stream and silently truncating
# BENCH_results.json.
go test -run='^$' -bench=. -benchtime=3x -benchmem "$@" > "$bench_out"
cat "$bench_out" >&2

go run ./cmd/benchjson ${baseline:+-compare "$baseline"} < "$bench_out" > BENCH_results.json
echo "wrote BENCH_results.json" >&2
