package stratmatch

import "stratmatch/internal/btsim"

// SwarmOptions configures a BitTorrent Tit-for-Tat swarm simulation.
type SwarmOptions = btsim.Options

// SwarmMetrics summarizes a swarm run (per-peer totals, completion times,
// and the stratification statistics).
type SwarmMetrics = btsim.Metrics

// PeerMetrics is one peer's row in SwarmMetrics.
type PeerMetrics = btsim.PeerMetrics

// Swarm is a running BitTorrent swarm simulation.
type Swarm struct {
	s *btsim.Swarm
}

// NewSwarm builds a swarm simulator: pieces with rarest-first selection,
// Tit-for-Tat choking with an optimistic unchoke, and fair capacity
// splitting. Set SwarmOptions.ContentUnlimited for the paper's Section 6
// regime where only bandwidth matters.
func NewSwarm(o SwarmOptions) (*Swarm, error) {
	s, err := btsim.New(o)
	if err != nil {
		return nil, err
	}
	return &Swarm{s: s}, nil
}

// Run advances the swarm by the given number of one-second rounds.
func (sw *Swarm) Run(rounds int) { sw.s.Run(rounds) }

// RunUntilDone steps until every leecher completes or maxRounds elapse,
// reporting whether the swarm finished.
func (sw *Swarm) RunUntilDone(maxRounds int) bool { return sw.s.RunUntilDone(maxRounds) }

// Depart makes a peer leave the swarm (failure injection).
func (sw *Swarm) Depart(id int) { sw.s.Depart(id) }

// Round returns the current round number.
func (sw *Swarm) Round() int { return sw.s.Round() }

// Metrics computes the current snapshot.
func (sw *Swarm) Metrics() SwarmMetrics { return sw.s.Snapshot() }
