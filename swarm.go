package stratmatch

import (
	"stratmatch/internal/btsim"
	"stratmatch/internal/telemetry"
)

// SwarmOptions configures a BitTorrent Tit-for-Tat swarm simulation.
type SwarmOptions = btsim.Options

// SwarmMetrics summarizes a swarm run (per-peer totals, completion times,
// and the stratification statistics).
type SwarmMetrics = btsim.Metrics

// PeerMetrics is one peer's row in SwarmMetrics.
type PeerMetrics = btsim.PeerMetrics

// Swarm is a running BitTorrent swarm simulation.
type Swarm struct {
	s *btsim.Swarm
}

// NewSwarm builds a swarm simulator: pieces with rarest-first selection,
// Tit-for-Tat choking with an optimistic unchoke, and fair capacity
// splitting. Set SwarmOptions.ContentUnlimited for the paper's Section 6
// regime where only bandwidth matters.
func NewSwarm(o SwarmOptions) (*Swarm, error) {
	s, err := btsim.New(o)
	if err != nil {
		return nil, err
	}
	return &Swarm{s: s}, nil
}

// Run advances the swarm by the given number of one-second rounds.
func (sw *Swarm) Run(rounds int) { sw.s.Run(rounds) }

// RunUntilDone steps until every leecher completes or maxRounds elapse,
// reporting whether the swarm finished.
func (sw *Swarm) RunUntilDone(maxRounds int) bool { return sw.s.RunUntilDone(maxRounds) }

// Join adds a peer mid-simulation: it registers with the tracker and
// receives a neighbor handout. Seeds join with the full file; leechers join
// empty. The new peer's id is returned.
func (sw *Swarm) Join(capacityKbps float64, asSeed bool) int {
	return sw.s.Join(capacityKbps, asSeed)
}

// Depart makes a peer leave the swarm: its connections are unwired and its
// slot is recycled; its statistics remain in the metrics.
func (sw *Swarm) Depart(id int) { sw.s.Depart(id) }

// Announce lets a peer re-announce to the tracker for fresh neighbors (the
// handout tops its connection count up to SwarmOptions.NeighborCount).
func (sw *Swarm) Announce(id int) int { return sw.s.Announce(id) }

// Present returns the current population; PresentSeeds counts complete
// peers (initial seeds plus leechers promoted on completion).
func (sw *Swarm) Present() int { return sw.s.Present() }

// PresentSeeds returns the present peers holding the complete file.
func (sw *Swarm) PresentSeeds() int { return sw.s.PresentSeeds() }

// Round returns the current round number.
func (sw *Swarm) Round() int { return sw.s.Round() }

// Metrics computes the current snapshot.
func (sw *Swarm) Metrics() SwarmMetrics { return sw.s.Snapshot() }

// Runtime telemetry: an optional recorder of phase-duration histograms,
// counters and gauges, zero-alloc on the simulation hot path and inert
// (nil) by default. Recording reads only the wall clock, so results are
// byte-identical with or without it.
type (
	// Telemetry accumulates counters, gauges and phase histograms; attach
	// one with Swarm.SetTelemetry or Scenario.Telemetry and read it with
	// Telemetry.Snapshot or Telemetry.WritePrometheus.
	Telemetry = telemetry.Recorder
	// TelemetrySnapshot is a point-in-time copy of a recorder's state.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryObserver extends ScenarioObserver with per-sample telemetry
	// snapshots (delivered only when the scenario has a recorder attached).
	TelemetryObserver = btsim.TelemetryObserver
)

// NewTelemetry returns a live recorder. A nil *Telemetry is the disabled
// state: every recording method is a no-op on it.
func NewTelemetry() *Telemetry { return telemetry.New() }

// SetTelemetry attaches a recorder to the swarm's engine phases (choke,
// transfer, tracker announces, fault sweeps). Pass nil to detach.
func (sw *Swarm) SetTelemetry(tel *Telemetry) { sw.s.SetTelemetry(tel) }

// SetStepWorkers sets how many goroutines the engine's sharded step phases
// use (n <= 1 steps serially, inline). The simulation trajectory is
// byte-identical at every setting — the worker count is a runtime knob,
// like telemetry, not part of SwarmOptions. Swarms stepped with n > 1 hold
// a worker pool; call Close when done with the swarm to release it.
func (sw *Swarm) SetStepWorkers(n int) { sw.s.SetStepWorkers(n) }

// StepWorkers reports the current step-worker setting.
func (sw *Swarm) StepWorkers() int { return sw.s.StepWorkers() }

// Close releases the swarm's step-worker pool. A no-op for serial swarms
// and safe to call more than once.
func (sw *Swarm) Close() { sw.s.Close() }

// Dynamic-membership scenarios: composable arrival processes, lifecycle
// departures and scheduled shocks, run by a deterministic scenario driver.
// See NewScenario's catalog for ready-made configurations.
type (
	// Scenario composes a swarm with churn processes into a named,
	// reproducible experiment. Run materializes the full series;
	// RunObserver streams it.
	Scenario = btsim.Scenario
	// ScenarioResult holds a scenario's time series and closing metrics.
	ScenarioResult = btsim.ScenarioResult
	// ScenarioPoint is one sample of a scenario time series.
	ScenarioPoint = btsim.SeriesPoint
	// Arrivals is a pluggable peer-arrival process.
	Arrivals = btsim.Arrivals
	// PoissonArrivals arrive at a constant expected rate per round.
	PoissonArrivals = btsim.PoissonArrivals
	// BurstArrivals model a flash crowd over a fixed window.
	BurstArrivals = btsim.BurstArrivals
	// TraceArrivals replay a recorded per-round arrival schedule.
	TraceArrivals = btsim.TraceArrivals
	// CombinedArrivals sum several arrival processes.
	CombinedArrivals = btsim.CombinedArrivals
	// Departures are per-round lifecycle rules (abandonment — uniform or
	// capacity-correlated — and seed linger).
	Departures = btsim.Departures
	// Event is a scheduled one-shot membership shock.
	Event = btsim.Event
)

// Declarative scenario specs: plain-data workload descriptions that
// round-trip through JSON and compile into runnable Scenarios, plus the
// streaming Observer the runner feeds.
type (
	// ScenarioSpec is a serializable scenario description; Compile turns
	// it into a Scenario, Validate reports precise field-path errors.
	ScenarioSpec = btsim.ScenarioSpec
	// ArrivalSpec is the tagged union over arrival processes
	// (poisson / burst / trace / combined).
	ArrivalSpec = btsim.ArrivalSpec
	// CapacitySpec is the tagged union over capacity distributions
	// (saroiu / uniform / anchors).
	CapacitySpec = btsim.CapacitySpec
	// ScenarioObserver receives samples, events and the closing metrics
	// as a scenario run produces them (Scenario.RunObserver).
	ScenarioObserver = btsim.Observer
	// ScenarioEvent is a discrete occurrence reported to observers.
	ScenarioEvent = btsim.RunEvent
	// FaultsSpec is the fault-injection arm of a ScenarioSpec: scheduled
	// fault windows plus retry/backoff and failure-detection knobs. A zero
	// block injects nothing and leaves the run byte-identical to a
	// fault-free scenario.
	FaultsSpec = btsim.FaultsSpec
	// FaultSpec is one scheduled fault: a tagged union over tracker
	// outages, crash-stop failures, announce loss and partitions.
	FaultSpec = btsim.FaultSpec
)

// ScenarioNames lists the whole built-in scenario catalog (churn entries
// first, then the fault-injection entries).
func ScenarioNames() []string { return btsim.ScenarioNames() }

// ChurnScenarioNames lists the fault-free churn catalog entries.
func ChurnScenarioNames() []string { return btsim.ChurnScenarioNames() }

// FaultScenarioNames lists the fault-injection catalog entries.
func FaultScenarioNames() []string { return btsim.FaultScenarioNames() }

// NewScenario builds a catalog scenario (see ScenarioNames: the churn
// entries "flashcrowd", "poisson", "massdepart", "tracereplay",
// "seedstarve", "slowquit" and the fault-injection entries "trackerdown",
// "splitbrain", "crashcrowd") at the given seed and population scale; run
// it with Scenario.Run or stream it with Scenario.RunObserver. It is
// NewScenarioSpec followed by Compile.
func NewScenario(name string, seed uint64, scale float64) (Scenario, error) {
	return btsim.NamedScenario(name, seed, scale)
}

// NewScenarioSpec returns a catalog scenario as its declarative,
// serializable spec — the form to dump, edit and reload.
func NewScenarioSpec(name string, seed uint64, scale float64) (ScenarioSpec, error) {
	return btsim.NamedSpec(name, seed, scale)
}

// ParseScenarioSpec decodes a JSON scenario spec (unknown fields are
// rejected); compile it with ScenarioSpec.Compile.
func ParseScenarioSpec(data []byte) (ScenarioSpec, error) {
	return btsim.ParseSpec(data)
}
