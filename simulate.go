package stratmatch

import (
	"fmt"

	"stratmatch/internal/core"
	"stratmatch/internal/dynamics"
	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

// StrategyKind selects how peers scan for better mates when they take an
// initiative (the paper's Section 3 taxonomy).
type StrategyKind int

const (
	// BestMate proposes to the best available blocking mate (full
	// knowledge of ranks and willingness).
	BestMate StrategyKind = iota + 1
	// Decremental scans the acceptance list circularly from the last asked
	// peer (ranks known, willingness unknown).
	Decremental
	// RandomProbe asks one uniformly random acceptable peer (no
	// knowledge).
	RandomProbe
)

// TrajectoryPoint is one sample of disorder over time; Time counts
// initiatives per peer ("base units").
type TrajectoryPoint = dynamics.Point

// Simulation runs the decentralized initiative process on a Network: peers
// repeatedly propose to better mates, converging to the stable matching
// (Theorem 1), optionally under churn.
type Simulation struct {
	sim *dynamics.Simulator
}

// Simulate starts a simulation from the empty configuration. Networks built
// with NewCompleteNetwork are not supported (the dynamics need a mutable
// graph for churn); use NewRandomNetwork, which is also the paper's setting.
func (nw *Network) Simulate(strategy StrategyKind, seed uint64) (*Simulation, error) {
	adj, ok := nw.g.(*graph.Adjacency)
	if !ok {
		return nil, fmt.Errorf("stratmatch: Simulate requires a random network")
	}
	r := rng.New(seed)
	var strat core.Strategy
	switch strategy {
	case BestMate:
		strat = core.BestMateStrategy{}
	case Decremental:
		strat = core.NewDecrementalStrategy(nw.N())
	case RandomProbe:
		strat = core.NewRandomStrategy(r.Split())
	default:
		return nil, fmt.Errorf("stratmatch: unknown strategy %d", strategy)
	}
	sim, err := dynamics.New(adj.Clone(), nw.budgets, strat, r)
	if err != nil {
		return nil, err
	}
	return &Simulation{sim: sim}, nil
}

// Run advances the simulation by `units` initiatives-per-peer, sampling the
// disorder (distance to the instant stable matching) samplesPerUnit times
// per unit. The trajectory includes the starting point.
func (s *Simulation) Run(units float64, samplesPerUnit int) []TrajectoryPoint {
	return s.sim.Run(units, samplesPerUnit)
}

// RunChurn is Run under continuous churn: with probability churnRate before
// each initiative, a random peer leaves or a departed peer rejoins (with
// attachProb edge probability towards present peers).
func (s *Simulation) RunChurn(units float64, samplesPerUnit int, churnRate, attachProb float64) []TrajectoryPoint {
	return s.sim.RunChurn(units, samplesPerUnit, churnRate, attachProb)
}

// Disorder returns the current distance to the instant stable matching.
func (s *Simulation) Disorder() float64 { return s.sim.Disorder() }

// RemovePeer makes a peer leave (its collaborations dissolve); AddPeer
// brings a departed peer back with fresh random acceptances.
func (s *Simulation) RemovePeer(p int) { s.sim.RemovePeer(p) }

// AddPeer re-introduces a departed peer; attachProb is the probability of an
// acceptance edge to each present peer.
func (s *Simulation) AddPeer(p int, attachProb float64) { s.sim.AddPeer(p, attachProb) }

// JumpToStable replaces the current configuration with the instant stable
// matching (useful as the starting point for perturbation experiments).
func (s *Simulation) JumpToStable() { s.sim.SetStable() }

// Converged reports whether the current configuration equals the instant
// stable matching.
func (s *Simulation) Converged() bool { return s.sim.Disorder() == 0 }
