package metricmatch

import (
	"testing"
	"testing/quick"

	"stratmatch/internal/core"
	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

func TestRingMetric(t *testing.T) {
	m := NewRingMetric(10)
	if m.N() != 10 {
		t.Fatal("N wrong")
	}
	cases := []struct {
		i, j int
		want float64
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 9, 1}, {0, 5, 5}, {2, 8, 4},
	}
	for _, c := range cases {
		if got := m.Distance(c.i, c.j); got != c.want {
			t.Errorf("Distance(%d,%d) = %v, want %v", c.i, c.j, got, c.want)
		}
		if m.Distance(c.i, c.j) != m.Distance(c.j, c.i) {
			t.Errorf("asymmetric at (%d,%d)", c.i, c.j)
		}
	}
}

func TestCoordMetric(t *testing.T) {
	m, err := NewCoordMetric([]float64{0, 3}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Distance(0, 1); got != 5 {
		t.Fatalf("3-4-5 triangle gives %v", got)
	}
	if _, err := NewCoordMetric([]float64{0}, []float64{0, 1}); err == nil {
		t.Fatal("mismatched coordinates accepted")
	}
}

func TestStableRingPairsNeighbors(t *testing.T) {
	// On a ring with b=1 and complete acceptance, closest-pair greedy
	// matches adjacent peers.
	m := NewRingMetric(6)
	g := graph.NewComplete(6)
	c, err := Stable(g, budgets(6, 1), m)
	if err != nil {
		t.Fatal(err)
	}
	if !IsStable(c, g, m) {
		t.Fatal("greedy result not stable")
	}
	for p := 0; p < 6; p++ {
		mates := c.Mates(p)
		if len(mates) != 1 {
			t.Fatalf("peer %d has %d mates", p, len(mates))
		}
		if m.Distance(p, mates[0]) != 1 {
			t.Fatalf("peer %d matched at distance %v", p, m.Distance(p, mates[0]))
		}
	}
}

func TestStableSizeMismatch(t *testing.T) {
	if _, err := Stable(graph.NewComplete(4), budgets(4, 1), NewRingMetric(5)); err == nil {
		t.Fatal("metric size mismatch accepted")
	}
	if _, err := Stable(graph.NewComplete(4), budgets(3, 1), NewRingMetric(4)); err == nil {
		t.Fatal("budget size mismatch accepted")
	}
}

func TestStableIsStableProperty(t *testing.T) {
	// Closest-pair greedy never leaves a blocking pair, over random
	// coordinate sets, acceptance graphs, and budgets.
	check := func(seed uint64, nRaw, bRaw uint8) bool {
		r := rng.New(seed)
		n := 2 + int(nRaw%40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Float64() * 100
			y[i] = r.Float64() * 100
		}
		m, err := NewCoordMetric(x, y)
		if err != nil {
			return false
		}
		g := graph.ErdosRenyiMeanDegree(n, 6, r)
		b := make([]int, n)
		for i := range b {
			b[i] = int(bRaw%3) + r.Intn(2)
		}
		c, err := Stable(g, b, m)
		if err != nil {
			return false
		}
		if err := c.Validate(); err != nil {
			return false
		}
		return IsStable(c, g, m)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestIsBlockingPairMetric(t *testing.T) {
	m := NewRingMetric(6)
	g := graph.NewComplete(6)
	c := core.NewUniformConfig(6, 1)
	// Match 0 with its antipode: both 0-1 and 0-5 are blocking (1 and 5
	// free, 0 prefers distance 1 over 3).
	if err := c.Match(0, 3); err != nil {
		t.Fatal(err)
	}
	if !IsBlockingPair(c, g, m, 0, 1) || !IsBlockingPair(c, g, m, 0, 5) {
		t.Fatal("adjacent pairs should block the antipodal match")
	}
	if IsBlockingPair(c, g, m, 0, 3) {
		t.Fatal("matched pair cannot block")
	}
	if IsBlockingPair(c, g, m, 2, 2) {
		t.Fatal("self pair cannot block")
	}
}

func TestCombineOverlays(t *testing.T) {
	a := core.NewUniformConfig(4, 1)
	b := core.NewUniformConfig(4, 1)
	if err := a.Match(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Match(0, 1); err != nil { // duplicate edge
		t.Fatal(err)
	}
	if err := b.Unmatch(0, 1); !err {
		t.Fatal("unmatch failed")
	}
	if err := b.Match(2, 3); err != nil {
		t.Fatal(err)
	}
	g, err := Combine(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 2 || !g.Acceptable(0, 1) || !g.Acceptable(2, 3) {
		t.Fatalf("combined graph wrong: %d edges", g.EdgeCount())
	}
	if _, err := Combine(a, core.NewUniformConfig(5, 1)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// TestComboShrinksDiameter is the conclusion's streaming argument: a pure
// global-ranking overlay has a long, chain-like collaboration graph;
// adding a couple of latency slots per peer shrinks reachability distances
// while keeping all bandwidth edges (and hence TFT incentives) intact.
func TestComboShrinksDiameter(t *testing.T) {
	const n = 120
	r := rng.New(3)
	g := graph.ErdosRenyiMeanDegree(n, 14, r)
	band := core.StableUniform(g, 2)
	m := NewRingMetric(n)
	lat, err := Stable(g, budgets(n, 2), m)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Combine(band, lat)
	if err != nil {
		t.Fatal(err)
	}
	bandEcc := graph.Eccentricity(band.CollabGraph(), 0)
	comboEcc := graph.Eccentricity(combined, 0)
	reachBand := reachable(band.CollabGraph())
	reachCombo := reachable(combined)
	if reachCombo < reachBand {
		t.Fatalf("combo reaches fewer peers: %d < %d", reachCombo, reachBand)
	}
	if reachCombo > reachBand && bandEcc == 0 {
		return // bandwidth overlay was tiny; combined strictly better
	}
	if comboEcc > bandEcc && reachCombo == reachBand {
		t.Fatalf("combined overlay increased eccentricity: %d > %d", comboEcc, bandEcc)
	}
}

func reachable(g graph.Graph) int {
	count := 0
	for _, d := range graph.BFSDistances(g, 0) {
		if d >= 0 {
			count++
		}
	}
	return count
}

func budgets(n, b int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = b
	}
	return s
}
