// Package metricmatch implements stable b-matching under a symmetric
// ranking — the second collaboration type the paper's conclusion proposes
// for combining utility functions ("a symmetric ranking such as latency").
//
// Unlike the global ranking of package core, preferences here are
// peer-relative: p prefers q to r iff latency(p, q) < latency(p, r). For
// such metric preferences a stable configuration always exists and is found
// greedily: repeatedly match the globally closest pair with free slots.
// Every such pair is mutually best among available peers, so no blocking
// pair can involve it — the same induction as the paper's Algorithm 1, with
// "best peer first" replaced by "closest pair first".
//
// The paper's motivation: a pure Tit-for-Tat overlay stratifies, which is
// good for incentives but bad for diameter (play-out delay in streaming).
// Granting every peer a few latency slots next to its bandwidth slots keeps
// incentives and shrinks the diameter; the "combo" experiment quantifies
// that.
package metricmatch

import (
	"fmt"
	"math"
	"sort"

	"stratmatch/internal/core"
	"stratmatch/internal/graph"
)

// Metric reports the symmetric distance between two peers. Implementations
// must satisfy Distance(i, j) == Distance(j, i) and Distance(i, i) == 0;
// distinct pairs should have distinct distances (ties are broken by pair
// order deterministically, which can void stability guarantees only between
// exactly-tied pairs).
type Metric interface {
	N() int
	Distance(i, j int) float64
}

// RingMetric places peers uniformly on a circle of circumference n — a
// stand-in for network latency with locality (peers close on the ring are
// close in latency).
type RingMetric struct {
	n int
}

var _ Metric = RingMetric{}

// NewRingMetric returns a ring of n peers.
func NewRingMetric(n int) RingMetric { return RingMetric{n: n} }

// N implements Metric.
func (m RingMetric) N() int { return m.n }

// Distance implements Metric: hop distance around the ring.
func (m RingMetric) Distance(i, j int) float64 {
	d := i - j
	if d < 0 {
		d = -d
	}
	if m.n-d < d {
		d = m.n - d
	}
	return float64(d)
}

// CoordMetric derives distances from explicit coordinates in the plane
// (e.g. network coordinates from a latency-embedding service).
type CoordMetric struct {
	X, Y []float64
}

var _ Metric = (*CoordMetric)(nil)

// NewCoordMetric wraps coordinate slices (not copied; treat as immutable).
func NewCoordMetric(x, y []float64) (*CoordMetric, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("metricmatch: %d x-coordinates, %d y-coordinates", len(x), len(y))
	}
	return &CoordMetric{X: x, Y: y}, nil
}

// N implements Metric.
func (m *CoordMetric) N() int { return len(m.X) }

// Distance implements Metric (Euclidean).
func (m *CoordMetric) Distance(i, j int) float64 {
	dx, dy := m.X[i]-m.X[j], m.Y[i]-m.Y[j]
	return math.Sqrt(dx*dx + dy*dy)
}

// Stable computes a stable b-matching on acceptance graph g under metric m:
// closest pairs first. Complexity O(E log E) in the acceptance edges.
func Stable(g graph.Graph, budgets []int, m Metric) (*core.Config, error) {
	if g.N() != m.N() || g.N() != len(budgets) {
		return nil, fmt.Errorf("metricmatch: sizes disagree: graph %d, metric %d, budgets %d",
			g.N(), m.N(), len(budgets))
	}
	type edge struct {
		i, j int
		d    float64
	}
	var edges []edge
	for i := 0; i < g.N(); i++ {
		for _, j := range g.Neighbors(i) {
			if j > i {
				edges = append(edges, edge{i, j, m.Distance(i, j)})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].d != edges[b].d {
			return edges[a].d < edges[b].d
		}
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		return edges[a].j < edges[b].j
	})
	c := core.NewConfig(budgets)
	for _, e := range edges {
		if c.Free(e.i) && c.Free(e.j) {
			if err := c.Match(e.i, e.j); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// IsBlockingPair reports whether {i, j} blocks c under metric preferences:
// acceptable, unmatched together, and each side is either free or strictly
// closer to the other than to its own farthest current mate.
func IsBlockingPair(c *core.Config, g graph.Graph, m Metric, i, j int) bool {
	if i == j || !g.Acceptable(i, j) || c.Matched(i, j) {
		return false
	}
	return wants(c, m, i, j) && wants(c, m, j, i)
}

func wants(c *core.Config, m Metric, p, q int) bool {
	if c.Free(p) {
		return c.Budget(p) > 0
	}
	worst := 0.0
	for _, mate := range c.Mates(p) {
		if d := m.Distance(p, mate); d > worst {
			worst = d
		}
	}
	return m.Distance(p, q) < worst
}

// IsStable reports whether c has no metric blocking pair on g.
func IsStable(c *core.Config, g graph.Graph, m Metric) bool {
	for i := 0; i < g.N(); i++ {
		for _, j := range g.Neighbors(i) {
			if j > i && IsBlockingPair(c, g, m, i, j) {
				return false
			}
		}
	}
	return true
}

// Combine overlays two configurations over the same peers (e.g. bandwidth
// slots and latency slots) into one collaboration graph for structural
// analysis. Edges present in both overlays appear once.
func Combine(a, b *core.Config) (*graph.Adjacency, error) {
	if a.N() != b.N() {
		return nil, fmt.Errorf("metricmatch: combining %d with %d peers", a.N(), b.N())
	}
	g := graph.NewAdjacency(a.N())
	for _, c := range []*core.Config{a, b} {
		for p := 0; p < c.N(); p++ {
			for _, q := range c.Mates(p) {
				if q > p {
					g.AddEdge(p, q)
				}
			}
		}
	}
	return g, nil
}
