// Package dynamics simulates the decentralized initiative process of the
// paper's Section 3: peers repeatedly take initiatives towards better mates,
// driving the configuration to the unique stable state (Theorem 1), under
// static conditions, after atomic departures, and under continuous churn.
//
// Time is measured in the paper's "base units": one base unit is n
// consecutive initiatives — one expected initiative per peer — so
// trajectories from different population sizes are comparable.
package dynamics

import (
	"fmt"

	"stratmatch/internal/core"
	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

// Point is one sample of a convergence trajectory.
type Point struct {
	// Time in initiatives per peer (base units).
	Time float64
	// Disorder is the distance to the instant stable configuration.
	Disorder float64
}

// Trajectory is a disorder-versus-time series.
type Trajectory []Point

// Simulator runs the initiative process over a mutable acceptance graph.
// It tracks which peers are present (for churn), lazily recomputes the
// instant stable configuration, and records disorder trajectories.
//
// A Simulator is single-goroutine; experiments that sweep parameters run
// one Simulator per goroutine.
type Simulator struct {
	g        *graph.Adjacency
	cfg      *core.Config
	strategy core.Strategy
	r        *rng.RNG

	present     []bool
	presentList []int // ids of present peers, order irrelevant
	presentIdx  []int // position of each peer in presentList, −1 if absent

	stable      *core.Config
	stableDirty bool
	// stableArena / stableBudgets recycle the instant-stable solve's
	// storage: churn trajectories recompute the reference configuration at
	// every sample, and a fresh Config per recompute used to dominate the
	// Figure 3 allocation profile.
	stableArena   core.Arena
	stableBudgets []int

	initiatives int64
	active      int64
}

// New returns a simulator over acceptance graph g with the given slot
// budgets, initiative strategy, and random source. All peers start present
// and unmatched (the paper's empty configuration C∅).
func New(g *graph.Adjacency, budgets []int, strategy core.Strategy, r *rng.RNG) (*Simulator, error) {
	if g.N() != len(budgets) {
		return nil, fmt.Errorf("dynamics: %d peers but %d budgets", g.N(), len(budgets))
	}
	n := g.N()
	s := &Simulator{
		g:           g,
		cfg:         core.NewConfig(budgets),
		strategy:    strategy,
		r:           r,
		present:     make([]bool, n),
		presentList: make([]int, n),
		presentIdx:  make([]int, n),
		stableDirty: true,
	}
	for i := 0; i < n; i++ {
		s.present[i] = true
		s.presentList[i] = i
		s.presentIdx[i] = i
	}
	return s, nil
}

// NewUniform is New with the same budget b0 for every peer.
func NewUniform(g *graph.Adjacency, b0 int, strategy core.Strategy, r *rng.RNG) (*Simulator, error) {
	budgets := make([]int, g.N())
	for i := range budgets {
		budgets[i] = b0
	}
	return New(g, budgets, strategy, r)
}

// Config exposes the current configuration (read-only by convention).
func (s *Simulator) Config() *core.Config { return s.cfg }

// Graph exposes the current acceptance graph (read-only by convention).
func (s *Simulator) Graph() *graph.Adjacency { return s.g }

// N returns the total peer population (present and absent).
func (s *Simulator) N() int { return len(s.present) }

// PresentCount returns the number of peers currently in the system.
func (s *Simulator) PresentCount() int { return len(s.presentList) }

// Initiatives returns the number of initiatives taken so far (active or not).
func (s *Simulator) Initiatives() int64 { return s.initiatives }

// ActiveInitiatives returns the number of initiatives that changed the
// configuration.
func (s *Simulator) ActiveInitiatives() int64 { return s.active }

// Step lets one uniformly random present peer take an initiative and reports
// whether it was active. With no peers present it is a no-op.
func (s *Simulator) Step() bool {
	if len(s.presentList) == 0 {
		return false
	}
	p := s.presentList[s.r.Intn(len(s.presentList))]
	s.initiatives++
	active, _ := core.Initiative(s.cfg, s.g, p, s.strategy)
	if active {
		s.active++
	}
	return active
}

// InstantStable returns the stable configuration of the current acceptance
// graph (recomputed only after graph or budget mutations). Absent peers are
// edgeless, hence unmatched in it. The returned configuration lives in
// simulator-owned recycled storage: it is valid until the recompute after
// the next graph mutation (Clone it to keep it, as SetStable does).
func (s *Simulator) InstantStable() *core.Config {
	if s.stableDirty || s.stable == nil {
		if cap(s.stableBudgets) < s.N() {
			s.stableBudgets = make([]int, s.N())
		}
		s.stableBudgets = s.stableBudgets[:s.N()]
		for i := range s.stableBudgets {
			s.stableBudgets[i] = s.cfg.Budget(i)
		}
		s.stable = s.stableArena.Stable(s.g, s.stableBudgets)
		s.stableDirty = false
	}
	return s.stable
}

// Disorder returns the paper's disorder: the distance between the current
// configuration and the instant stable configuration.
func (s *Simulator) Disorder() float64 {
	return core.Distance(s.cfg, s.InstantStable())
}

// SetStable replaces the current configuration with the instant stable one;
// Figures 2–3 start their runs from this state.
func (s *Simulator) SetStable() {
	s.cfg = s.InstantStable().Clone()
}

// RemovePeer removes p from the system: its collaborations dissolve, its
// acceptance edges disappear, and it stops taking initiatives. Removing an
// absent peer is a no-op. Returns p's former mates (the peers that will feel
// the domino effect first); the slice lives in configuration-owned scratch
// and is valid until the next removal.
func (s *Simulator) RemovePeer(p int) []int {
	if p < 0 || p >= s.N() || !s.present[p] {
		return nil
	}
	mates := s.cfg.Isolate(p)
	s.g.DetachPeer(p)
	s.present[p] = false
	idx := s.presentIdx[p]
	last := len(s.presentList) - 1
	s.presentList[idx] = s.presentList[last]
	s.presentIdx[s.presentList[idx]] = idx
	s.presentList = s.presentList[:last]
	s.presentIdx[p] = -1
	s.stableDirty = true
	return mates
}

// AddPeer re-introduces an absent peer with a fresh Erdős–Rényi
// neighborhood: an edge to every present peer independently with probability
// attachProb. Adding a present peer is a no-op.
func (s *Simulator) AddPeer(p int, attachProb float64) {
	if p < 0 || p >= s.N() || s.present[p] {
		return
	}
	for _, q := range s.presentList {
		if s.r.Bool(attachProb) {
			s.g.AddEdge(p, q)
		}
	}
	s.present[p] = true
	s.presentIdx[p] = len(s.presentList)
	s.presentList = append(s.presentList, p)
	s.stableDirty = true
}

// Run advances the simulation by `units` base units (units × n initiatives),
// sampling the disorder samplesPerUnit times per unit. The returned
// trajectory includes the state at time 0.
func (s *Simulator) Run(units float64, samplesPerUnit int) Trajectory {
	return s.RunChurn(units, samplesPerUnit, 0, 0)
}

// RunChurn is Run with continuous churn: before every initiative, with
// probability churnRate a churn event happens — a fair coin decides between
// removing a random present peer and re-introducing a random absent peer
// (always removing when nobody is absent, always adding when nobody is
// present). attachProb is the Erdős–Rényi probability for re-attachment.
//
// churnRate is expressed per initiative, so the paper's "Churn=30/1000" with
// n = 1000 peers is churnRate = 30.0/1000 — 30 expected churn events per
// base unit.
func (s *Simulator) RunChurn(units float64, samplesPerUnit int, churnRate, attachProb float64) Trajectory {
	if samplesPerUnit < 1 {
		samplesPerUnit = 1
	}
	n := s.N()
	if n == 0 {
		return Trajectory{{Time: 0, Disorder: 0}}
	}
	totalSteps := int(units * float64(n))
	sampleEvery := n / samplesPerUnit
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	traj := make(Trajectory, 0, totalSteps/sampleEvery+2)
	traj = append(traj, Point{Time: 0, Disorder: s.Disorder()})
	for step := 1; step <= totalSteps; step++ {
		if churnRate > 0 && s.r.Bool(churnRate) {
			s.churnEvent(attachProb)
		}
		s.Step()
		if step%sampleEvery == 0 {
			traj = append(traj, Point{
				Time:     float64(step) / float64(n),
				Disorder: s.Disorder(),
			})
		}
	}
	return traj
}

func (s *Simulator) churnEvent(attachProb float64) {
	absent := s.N() - len(s.presentList)
	switch {
	case absent == 0:
		s.removeRandomPresent()
	case len(s.presentList) == 0:
		s.addRandomAbsent(attachProb)
	case s.r.Bool(0.5):
		s.removeRandomPresent()
	default:
		s.addRandomAbsent(attachProb)
	}
}

func (s *Simulator) removeRandomPresent() {
	p := s.presentList[s.r.Intn(len(s.presentList))]
	s.RemovePeer(p)
}

func (s *Simulator) addRandomAbsent(attachProb float64) {
	// Reservoir-pick a random absent peer; the absent set is small under
	// realistic churn so a linear scan is fine.
	pick, seen := -1, 0
	for p := 0; p < s.N(); p++ {
		if s.present[p] {
			continue
		}
		seen++
		if s.r.Intn(seen) == 0 {
			pick = p
		}
	}
	if pick >= 0 {
		s.AddPeer(pick, attachProb)
	}
}

// ConvergedWithin reports whether the simulator reaches the instant stable
// configuration within the given number of base units, stepping without
// sampling overhead. The simulation stops early on success.
func (s *Simulator) ConvergedWithin(units float64) bool {
	n := s.N()
	totalSteps := int(units * float64(n))
	target := s.InstantStable()
	for step := 0; step < totalSteps; step++ {
		if s.cfg.Equal(target) {
			return true
		}
		s.Step()
	}
	return s.cfg.Equal(target)
}
