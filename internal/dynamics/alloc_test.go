package dynamics

import (
	"testing"

	"stratmatch/internal/core"
	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

// TestStepZeroAllocSteadyState pins the initiative loop's allocation
// behavior: once the configuration has converged to the stable state,
// Step (draw a peer, scan for a blocking mate, find none) is allocation-
// free. Together with core.Config's slab-backed mate storage this keeps
// long dynamics runs out of the garbage collector entirely.
func TestStepZeroAllocSteadyState(t *testing.T) {
	r := rng.New(5)
	g := graph.ErdosRenyiMeanDegree(400, 10, r.Split())
	s, err := NewUniform(g, 2, core.BestMateStrategy{}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(200, 1) // far beyond the ~d base units convergence takes
	if s.Disorder() != 0 {
		t.Fatalf("simulator did not converge (disorder %v); steady state undefined", s.Disorder())
	}
	if allocs := testing.AllocsPerRun(500, func() { s.Step() }); allocs != 0 {
		t.Fatalf("Simulator.Step allocates %.2f objects per initiative at steady state, want 0", allocs)
	}
}
