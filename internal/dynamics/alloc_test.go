package dynamics

import (
	"testing"

	"stratmatch/internal/core"
	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

// TestStepZeroAllocSteadyState pins the initiative loop's allocation
// behavior: once the configuration has converged to the stable state,
// Step (draw a peer, scan for a blocking mate, find none) is allocation-
// free. Together with core.Config's slab-backed mate storage this keeps
// long dynamics runs out of the garbage collector entirely.
func TestStepZeroAllocSteadyState(t *testing.T) {
	r := rng.New(5)
	g := graph.ErdosRenyiMeanDegree(400, 10, r.Split())
	s, err := NewUniform(g, 2, core.BestMateStrategy{}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(200, 1) // far beyond the ~d base units convergence takes
	if s.Disorder() != 0 {
		t.Fatalf("simulator did not converge (disorder %v); steady state undefined", s.Disorder())
	}
	if allocs := testing.AllocsPerRun(500, func() { s.Step() }); allocs != 0 {
		t.Fatalf("Simulator.Step allocates %.2f objects per initiative at steady state, want 0", allocs)
	}
}

// TestChurnDisorderAllocs pins the Figure 3 hot path: a churn event
// (removal, initiatives, disorder measurement against the arena-recomputed
// instant stable configuration, re-attachment) must stay within a small
// constant allocation budget — the instant-stable recompute itself is
// allocation-free, and only occasional neighbor-list growth past the
// sampler's headroom may allocate.
func TestChurnDisorderAllocs(t *testing.T) {
	r := rng.New(6)
	g := graph.ErdosRenyiMeanDegree(300, 10, r.Split())
	s, err := NewUniform(g, 1, core.BestMateStrategy{}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(40, 1)
	attach := 10.0 / 299.0
	victim := 0
	allocs := testing.AllocsPerRun(200, func() {
		s.RemovePeer(victim)
		for k := 0; k < 10; k++ {
			s.Step()
		}
		_ = s.Disorder()
		s.AddPeer(victim, attach)
		victim = (victim + 7) % 300
	})
	if allocs > 3 {
		t.Fatalf("churn event allocates %.2f objects, want <= 3 (stable recompute must reuse the arena)", allocs)
	}
}
