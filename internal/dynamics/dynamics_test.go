package dynamics

import (
	"testing"

	"stratmatch/internal/core"
	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

func newSim(t *testing.T, n int, d float64, b0 int, seed uint64) *Simulator {
	t.Helper()
	r := rng.New(seed)
	g := graph.ErdosRenyiMeanDegree(n, d, r)
	s, err := NewUniform(g, b0, core.BestMateStrategy{}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsMismatch(t *testing.T) {
	g := graph.NewAdjacency(3)
	if _, err := New(g, []int{1, 1}, core.BestMateStrategy{}, rng.New(1)); err == nil {
		t.Fatal("mismatched budgets accepted")
	}
}

func TestConvergenceFromEmpty(t *testing.T) {
	// Paper Figure 1: with best-mate initiatives the system converges in
	// fewer than d base units.
	s := newSim(t, 300, 10, 1, 1)
	traj := s.Run(10, 4)
	if traj[0].Disorder <= 0 {
		t.Fatal("empty configuration should have positive disorder")
	}
	last := traj[len(traj)-1]
	if last.Disorder != 0 {
		t.Fatalf("disorder %v after 10 base units, want 0", last.Disorder)
	}
	if !core.IsStable(s.Config(), s.Graph()) {
		t.Fatal("final configuration unstable")
	}
}

func TestDisorderMonotoneTrend(t *testing.T) {
	// Disorder is not strictly monotone but must trend down: the final
	// quarter's mean must be below the first quarter's.
	s := newSim(t, 200, 8, 1, 2)
	traj := s.Run(8, 4)
	q := len(traj) / 4
	first, last := 0.0, 0.0
	for i := 0; i < q; i++ {
		first += traj[i].Disorder
		last += traj[len(traj)-1-i].Disorder
	}
	if last >= first {
		t.Fatalf("no downward trend: first quarter %v, last quarter %v", first, last)
	}
}

func TestConvergedWithin(t *testing.T) {
	s := newSim(t, 100, 8, 1, 3)
	if !s.ConvergedWithin(30) {
		t.Fatal("did not converge within 30 base units")
	}
	if s.Disorder() != 0 {
		t.Fatal("converged simulator has nonzero disorder")
	}
}

func TestRemovePeerDomino(t *testing.T) {
	// Paper Figure 2: removing a peer from the stable state creates a small
	// disorder which the dynamics then fix.
	s := newSim(t, 500, 10, 1, 4)
	s.SetStable()
	if s.Disorder() != 0 {
		t.Fatal("SetStable did not zero the disorder")
	}
	mates := s.RemovePeer(0)
	if len(mates) > 1 {
		t.Fatalf("1-matching peer had %d mates", len(mates))
	}
	d0 := s.Disorder()
	if d0 <= 0 {
		t.Skip("peer 0 was unmatched in this sample; nothing to observe")
	}
	traj := s.Run(10, 2)
	if traj[len(traj)-1].Disorder != 0 {
		t.Fatalf("did not re-converge after removal: %v", traj[len(traj)-1])
	}
}

func TestRemoveGoodPeerCausesMoreDisorder(t *testing.T) {
	// Domino effect: removing the best peer displaces a whole chain;
	// removing the worst peer displaces at most its own mate. Compare the
	// disorder immediately after removal, averaged over several graphs.
	sumGood, sumBad := 0.0, 0.0
	for seed := uint64(0); seed < 10; seed++ {
		a := newSim(t, 400, 10, 1, 100+seed)
		a.SetStable()
		a.RemovePeer(0)
		sumGood += a.Disorder()

		b := newSim(t, 400, 10, 1, 100+seed)
		b.SetStable()
		b.RemovePeer(399)
		sumBad += b.Disorder()
	}
	if sumGood <= sumBad {
		t.Fatalf("good-peer removal disorder %v not above bad-peer %v", sumGood, sumBad)
	}
}

func TestRemovePeerBookkeeping(t *testing.T) {
	s := newSim(t, 50, 5, 1, 5)
	if s.PresentCount() != 50 {
		t.Fatalf("PresentCount = %d", s.PresentCount())
	}
	s.RemovePeer(7)
	if s.PresentCount() != 49 {
		t.Fatalf("PresentCount = %d after removal", s.PresentCount())
	}
	if got := s.RemovePeer(7); got != nil {
		t.Fatal("double removal returned mates")
	}
	if s.Graph().Degree(7) != 0 {
		t.Fatal("removed peer kept acceptance edges")
	}
	// The removed peer must never take initiatives: run and check it stays
	// isolated.
	s.Run(2, 1)
	if s.Config().Degree(7) != 0 {
		t.Fatal("absent peer got matched")
	}
}

func TestAddPeerRejoins(t *testing.T) {
	s := newSim(t, 100, 8, 1, 6)
	s.RemovePeer(3)
	s.AddPeer(3, 0.2)
	if s.PresentCount() != 100 {
		t.Fatalf("PresentCount = %d", s.PresentCount())
	}
	if s.Graph().Degree(3) == 0 {
		t.Fatal("rejoined peer got no edges (p=0.2, n=100 makes that ~1e-10)")
	}
	s.AddPeer(3, 0.2) // idempotent
	if s.PresentCount() != 100 {
		t.Fatal("double add corrupted the present set")
	}
}

func TestChurnKeepsDisorderBounded(t *testing.T) {
	// Paper Figure 3: under churn the disorder stays under control, and
	// higher churn means higher plateau.
	meanTail := func(rate float64, seed uint64) float64 {
		r := rng.New(seed)
		g := graph.ErdosRenyiMeanDegree(300, 10, r)
		s, err := NewUniform(g, 1, core.BestMateStrategy{}, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		traj := s.RunChurn(20, 2, rate, 10.0/299)
		sum, cnt := 0.0, 0
		for _, pt := range traj[len(traj)/2:] {
			sum += pt.Disorder
			cnt++
		}
		return sum / float64(cnt)
	}
	high := meanTail(0.03, 7)
	low := meanTail(0.003, 7)
	none := meanTail(0, 7)
	if none != 0 {
		t.Fatalf("no-churn tail disorder = %v, want 0", none)
	}
	if high <= low {
		t.Fatalf("churn plateau not increasing: high=%v low=%v", high, low)
	}
}

func TestChurnPopulationStable(t *testing.T) {
	s := newSim(t, 200, 8, 1, 8)
	s.RunChurn(10, 1, 0.05, 8.0/199)
	if pc := s.PresentCount(); pc < 100 || pc > 200 {
		t.Fatalf("population drifted to %d", pc)
	}
	if err := s.Config().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunCountsInitiatives(t *testing.T) {
	s := newSim(t, 100, 5, 1, 9)
	s.Run(3, 1)
	if s.Initiatives() != 300 {
		t.Fatalf("Initiatives = %d, want 300", s.Initiatives())
	}
	if s.ActiveInitiatives() > s.Initiatives() {
		t.Fatal("active exceeds total")
	}
	if s.ActiveInitiatives() == 0 {
		t.Fatal("no active initiatives in 3 units from empty config")
	}
}

func TestTrajectorySampling(t *testing.T) {
	s := newSim(t, 60, 5, 1, 10)
	traj := s.Run(4, 2)
	// 4 units × 2 samples + initial point.
	if len(traj) != 9 {
		t.Fatalf("trajectory has %d points, want 9", len(traj))
	}
	if traj[0].Time != 0 {
		t.Fatal("missing t=0 sample")
	}
	for i := 1; i < len(traj); i++ {
		if traj[i].Time <= traj[i-1].Time {
			t.Fatal("time not increasing")
		}
	}
}

func TestZeroPeers(t *testing.T) {
	g := graph.NewAdjacency(0)
	s, err := New(g, nil, core.BestMateStrategy{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	traj := s.Run(5, 1)
	if len(traj) != 1 || traj[0].Disorder != 0 {
		t.Fatalf("unexpected trajectory %v", traj)
	}
	if s.Step() {
		t.Fatal("step with no peers was active")
	}
}

func BenchmarkStep(b *testing.B) {
	r := rng.New(1)
	g := graph.ErdosRenyiMeanDegree(1000, 10, r)
	s, err := NewUniform(g, 1, core.BestMateStrategy{}, r.Split())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
