package par

import "sync"

// Pool is a persistent worker pool: a fixed set of goroutines that sleep
// between parallel regions instead of being respawned per call. ForEach
// pays one goroutine spawn per worker per call, which is invisible under
// experiment fan-outs but shows up when a parallel region runs every
// simulation round (the sharded swarm stepper) or per wavefront tile
// (BMatching). A Pool amortises the spawns to construction time; Run is
// two channel operations and a WaitGroup per region and allocates nothing.
//
// A Pool imposes no work-distribution policy: Run hands every worker the
// same function and its worker index, and callers slice the work (shard
// handout counters, tile queues) themselves.
type Pool struct {
	workers int
	fn      func(w int)
	start   []chan struct{}
	wg      sync.WaitGroup
	done    chan struct{}
	closed  sync.Once
}

// NewPool starts a pool of `workers` persistent goroutines (minimum 1).
// The pool holds OS resources (parked goroutines) until Close.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		workers: workers,
		start:   make([]chan struct{}, workers),
		done:    make(chan struct{}),
	}
	for w := range p.start {
		p.start[w] = make(chan struct{}, 1)
		go p.loop(w)
	}
	return p
}

func (p *Pool) loop(w int) {
	for {
		select {
		case <-p.done:
			return
		case <-p.start[w]:
		}
		p.fn(w)
		p.wg.Done()
	}
}

// Run executes fn(w) on every worker w in [0, Workers()) concurrently and
// returns when all have finished. The assignment of p.fn happens before the
// start-channel sends and the workers' completions happen before wg.Wait
// returns, so fn and anything it closes over are properly synchronized.
// Run must not be called concurrently with itself or after Close.
func (p *Pool) Run(fn func(w int)) {
	p.fn = fn
	p.wg.Add(p.workers)
	for _, c := range p.start {
		c <- struct{}{}
	}
	p.wg.Wait()
	p.fn = nil
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close releases the pool's goroutines. Idempotent; Run must not be
// in flight or called afterwards.
func (p *Pool) Close() {
	p.closed.Do(func() { close(p.done) })
}
