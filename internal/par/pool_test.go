package par

import (
	"sync/atomic"
	"testing"
)

// TestPoolRunEveryWorker pins Run's contract: fn(w) runs exactly once per
// worker w in [0, workers), and Run returns only after all have finished.
func TestPoolRunEveryWorker(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 8} {
		p := NewPool(workers)
		hits := make([]atomic.Int32, workers)
		p.Run(func(w int) { hits[w].Add(1) })
		for w := range hits {
			if got := hits[w].Load(); got != 1 {
				t.Errorf("workers=%d: worker %d ran %d times, want 1", workers, w, got)
			}
		}
		p.Close()
	}
}

// TestPoolReuse drives many Run regions through one pool — the amortized
// use the swarm stepper and the BMatching tile handoff depend on — and
// checks every region completes fully before the next begins.
func TestPoolReuse(t *testing.T) {
	const workers, regions = 4, 200
	p := NewPool(workers)
	defer p.Close()
	var total atomic.Int64
	for r := 0; r < regions; r++ {
		before := total.Load()
		p.Run(func(w int) { total.Add(1) })
		if got := total.Load(); got != before+workers {
			t.Fatalf("region %d: total = %d, want %d", r, got, before+workers)
		}
	}
}

// TestPoolRunZeroAlloc pins the reason the pool exists: a parallel region
// must not allocate, or per-round regions (the sharded stepper) would leak
// garbage into every simulation round.
func TestPoolRunZeroAlloc(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	fn := func(w int) { sink.Add(int64(w)) }
	if allocs := testing.AllocsPerRun(100, func() { p.Run(fn) }); allocs != 0 {
		t.Fatalf("Pool.Run allocates %.1f objects per region, want 0", allocs)
	}
}

// TestPoolCloseIdempotent: Close releases the workers and is safe to call
// repeatedly (the swarm calls it from both SetStepWorkers and Close).
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(3)
	p.Run(func(int) {})
	p.Close()
	p.Close()
}

// TestPoolMinWorkers: worker counts below 1 clamp to a single worker.
func TestPoolMinWorkers(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	var n atomic.Int32
	p.Run(func(w int) {
		if w != 0 {
			t.Errorf("worker id = %d, want 0", w)
		}
		n.Add(1)
	})
	if n.Load() != 1 {
		t.Fatalf("clamped pool ran %d workers, want 1", n.Load())
	}
}
