// Package par provides the bounded worker-pool primitive shared by every
// fan-out in the repository: cluster sweeps, Monte-Carlo sampling,
// experiment replicas, and CLI replica studies all hand indexed tasks to
// min(workers, n) goroutines. Centralizing the loop keeps the scheduling
// (and any future fixes to it) in one place.
//
// Determinism contract for callers: a task must derive its randomness from
// its own index (or from a sub-stream split off before the fan-out) and
// write only to its own index-addressed slot. Under that contract results
// are identical for every worker count and any scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"stratmatch/internal/telemetry"
)

// tel holds the process-wide telemetry recorder for the pool, stored
// atomically so fan-outs on other goroutines observe a SetTelemetry
// race-free. Nil (the default) records nothing.
var tel atomic.Pointer[telemetry.Recorder]

// SetTelemetry attaches a telemetry recorder to the worker pool: every task
// run by ForEach/ForEachWorker/ForEachErr is counted and timed as a
// "par_task" phase. Pass nil to detach. Safe to call concurrently with
// running fan-outs.
func SetTelemetry(r *telemetry.Recorder) { tel.Store(r) }

// Telemetry returns the recorder attached via SetTelemetry (nil when
// detached, which every Recorder method tolerates). Pool-based callers that
// schedule their own tasks use it to count and time those tasks as par
// tasks, keeping the telemetry stream consistent with the ForEach paths.
func Telemetry() *telemetry.Recorder { return tel.Load() }

// ForEach runs fn(0) .. fn(n-1) across min(workers, n) goroutines and
// returns when every call has completed. workers <= 0 means GOMAXPROCS.
// Tasks are handed out in index order.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the worker id (0 .. min(workers, n)-1)
// passed alongside the task index, for callers that keep per-worker
// accumulators. The worker count actually used is Workers(n, workers).
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	r := tel.Load() // nil when telemetry is off; all hooks no-op
	workers = Workers(n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			sp := r.StartPhase(telemetry.PhaseParTask)
			fn(0, i)
			r.EndPhase(telemetry.PhaseParTask, sp)
			r.Inc(telemetry.CtrParTasks)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				sp := r.StartPhase(telemetry.PhaseParTask)
				fn(w, i)
				r.EndPhase(telemetry.PhaseParTask, sp)
				r.Inc(telemetry.CtrParTasks)
			}
		}(w)
	}
	wg.Wait()
}

// ForEachErr is ForEach for fallible tasks. Once any task fails, workers
// stop picking up new tasks (tasks already running finish), and the error
// of the lowest-indexed failing task is returned — the same error a serial
// loop would have reported.
func ForEachErr(n, workers int, fn func(i int) error) error {
	var (
		mu     sync.Mutex
		errIdx = n
		first  error
		failed atomic.Bool
	)
	ForEach(n, workers, func(i int) {
		if failed.Load() {
			return
		}
		if err := fn(i); err != nil {
			mu.Lock()
			if i < errIdx {
				errIdx, first = i, err
			}
			mu.Unlock()
			failed.Store(true)
		}
	})
	return first
}

// Workers returns the worker count ForEach would use for n tasks:
// min(workers, n), with workers <= 0 meaning GOMAXPROCS, and at least 1.
func Workers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
