package checkpoint

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// buildPayload exercises every Writer primitive once and returns the
// payload plus a verifier that decodes it with a Reader and checks each
// value round-tripped exactly.
func buildPayload(t *testing.T) ([]byte, func(*Reader)) {
	t.Helper()
	var w Writer
	w.U64(0xdeadbeefcafef00d)
	w.I64(-42)
	w.Int(123456789)
	w.I32(-7)
	w.F64(math.Pi)
	w.F64(math.NaN())
	w.Bool(true)
	w.Bool(false)
	w.Blob([]byte{9, 8, 7})
	w.String("stratmatch")
	w.I32s([]int32{-1, 0, 1 << 30})
	w.Ints([]int{5, -5})
	w.U64s([]uint64{1, 2, 3})
	w.F64s([]float64{0.5, -0.25})
	w.Bools([]bool{true, false, true})
	w.Blob(nil)
	verify := func(r *Reader) {
		t.Helper()
		if got := r.U64(); got != 0xdeadbeefcafef00d {
			t.Errorf("U64 = %#x", got)
		}
		if got := r.I64(); got != -42 {
			t.Errorf("I64 = %d", got)
		}
		if got := r.Int(); got != 123456789 {
			t.Errorf("Int = %d", got)
		}
		if got := r.I32(); got != -7 {
			t.Errorf("I32 = %d", got)
		}
		if got := r.F64(); got != math.Pi {
			t.Errorf("F64 = %v", got)
		}
		if got := r.F64(); !math.IsNaN(got) {
			t.Errorf("F64 NaN = %v", got)
		}
		if !r.Bool() || r.Bool() {
			t.Error("Bool round-trip failed")
		}
		if got := r.Blob(); len(got) != 3 || got[0] != 9 || got[1] != 8 || got[2] != 7 {
			t.Errorf("Blob = %v", got)
		}
		if got := r.String(); got != "stratmatch" {
			t.Errorf("String = %q", got)
		}
		if got := r.I32s(); len(got) != 3 || got[0] != -1 || got[1] != 0 || got[2] != 1<<30 {
			t.Errorf("I32s = %v", got)
		}
		if got := r.Ints(); len(got) != 2 || got[0] != 5 || got[1] != -5 {
			t.Errorf("Ints = %v", got)
		}
		if got := r.U64s(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
			t.Errorf("U64s = %v", got)
		}
		if got := r.F64s(); len(got) != 2 || got[0] != 0.5 || got[1] != -0.25 {
			t.Errorf("F64s = %v", got)
		}
		if got := r.Bools(); len(got) != 3 || !got[0] || got[1] || !got[2] {
			t.Errorf("Bools = %v", got)
		}
		if got := r.Blob(); got != nil {
			t.Errorf("empty Blob = %v", got)
		}
		if err := r.Err(); err != nil {
			t.Fatalf("reader error: %v", err)
		}
		if r.Remaining() != 0 {
			t.Errorf("%d bytes left over", r.Remaining())
		}
	}
	return w.Bytes(), verify
}

func TestSealOpenRoundTrip(t *testing.T) {
	payload, verify := buildPayload(t)
	got, err := Open(Seal(payload))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	verify(NewReader(got))
}

// TestOpenCorruptionMatrix hammers Open with every truncation length and a
// bit flip at every byte of a sealed container: each must produce an error
// (ErrCorrupt or ErrVersion), never a success and never a panic.
func TestOpenCorruptionMatrix(t *testing.T) {
	payload, _ := buildPayload(t)
	sealed := Seal(payload)

	for n := 0; n < len(sealed); n++ {
		if _, err := Open(sealed[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("truncation to %d: untagged error %v", n, err)
		}
	}
	for i := range sealed {
		flipped := append([]byte(nil), sealed...)
		flipped[i] ^= 0x40
		if _, err := Open(flipped); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("bit flip at byte %d: untagged error %v", i, err)
		}
	}
}

func TestOpenVersionSkew(t *testing.T) {
	sealed := Seal([]byte("x"))
	sealed[8] = Version + 1
	_, err := Open(sealed)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

// TestReaderTruncatedPayload checks the sticky-error contract: decoding a
// truncated payload reports an error from Err, and reads past the failure
// keep returning zero values instead of panicking.
func TestReaderTruncatedPayload(t *testing.T) {
	payload, _ := buildPayload(t)
	for n := 0; n < len(payload); n++ {
		r := NewReader(payload[:n])
		for i := 0; i < 64; i++ {
			r.U64()
			r.Blob()
			r.Bools()
		}
		if r.Err() == nil {
			t.Fatalf("truncation to %d bytes: no reader error", n)
		}
	}
}

// TestReaderHostileLengths feeds slice length prefixes far larger than the
// buffer: the guard must reject them without attempting the allocation.
func TestReaderHostileLengths(t *testing.T) {
	var w Writer
	w.U64(1 << 60) // absurd element count, no elements follow
	for _, read := range []func(*Reader){
		func(r *Reader) { r.Blob() },
		func(r *Reader) { r.I32s() },
		func(r *Reader) { r.U64s() },
		func(r *Reader) { r.F64s() },
		func(r *Reader) { r.Bools() },
		func(r *Reader) { _ = r.String() },
	} {
		r := NewReader(w.Bytes())
		read(r)
		if !errors.Is(r.Err(), ErrCorrupt) {
			t.Fatalf("hostile length not rejected: %v", r.Err())
		}
	}
}

func TestReaderRejectsBadBoolAndI32Overflow(t *testing.T) {
	r := NewReader([]byte{7})
	r.Bool()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("bool byte 7 accepted: %v", r.Err())
	}
	var w Writer
	w.I64(math.MaxInt32 + 1)
	r = NewReader(w.Bytes())
	r.I32()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("int32 overflow accepted: %v", r.Err())
	}
}

func TestWriteFileReadFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName(17))
	payload, verify := buildPayload(t)
	n, err := WriteFile(path, payload)
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if want := len(Seal(payload)); n != want {
		t.Errorf("WriteFile reported %d bytes, file is %d", n, want)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	verify(NewReader(got))

	// No temp litter after a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want just the checkpoint", len(entries))
	}
}

func TestReadFileRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName(0))
	if _, err := WriteFile(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("damaged file: want ErrCorrupt, got %v", err)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func TestLatestAndRotate(t *testing.T) {
	dir := t.TempDir()
	if _, err := Latest(dir); err == nil {
		t.Fatal("Latest on empty dir succeeded")
	}
	for _, seq := range []int{3, 12, 7, 100} {
		if _, err := WriteFile(filepath.Join(dir, FileName(seq)), []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	// Non-checkpoint files are ignored by both Latest and Rotate.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	latest, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latest) != FileName(100) {
		t.Fatalf("Latest = %s", latest)
	}

	if err := Rotate(dir, 2); err != nil {
		t.Fatal(err)
	}
	names, err := list(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != FileName(12) || names[1] != FileName(100) {
		t.Fatalf("after Rotate(2): %v", names)
	}
	// keep <= 0 means retain everything.
	if err := Rotate(dir, 0); err != nil {
		t.Fatal(err)
	}
	if names, _ = list(dir); len(names) != 2 {
		t.Fatalf("Rotate(0) deleted files: %v", names)
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Fatalf("Rotate touched a non-checkpoint file: %v", err)
	}
}
