// Package checkpoint is the repository's durable-snapshot codec: a small,
// versioned, checksummed binary container plus fixed-width little-endian
// primitive encoders, used by the simulation layers to persist run state
// and resume it byte-identically.
//
// The package deliberately knows nothing about what is being snapshotted.
// It owns three concerns:
//
//   - Framing: Seal wraps a payload in a magic/version/length/CRC32 header;
//     Open verifies all four and returns the payload. Truncated, bit-flipped
//     or version-skewed containers are rejected with descriptive errors —
//     never a panic, never silently-corrupt state (FuzzLoadCheckpoint in the
//     consumers leans on this).
//   - Primitives: Writer appends fixed-width values and length-prefixed
//     slices; Reader is its sticky-error inverse. Every slice read guards
//     its length prefix against the bytes actually remaining, so a hostile
//     length cannot drive a huge allocation.
//   - Durability: WriteFile writes atomically (tmp file in the target
//     directory, fsync, rename), so a crash mid-write can never leave a
//     half-written checkpoint under the final name. Latest and Rotate
//     manage a directory of numbered snapshots (keep the newest K).
//
// Integers are encoded as 8-byte little-endian words and floats as their
// IEEE-754 bits: the format favors simplicity and exactness (float64 values
// round-trip bit for bit, NaN payloads included) over compactness.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Version is the container format version. Open rejects any other value:
// a reader must never guess at the layout of a payload it does not know.
// v2 appended the sharded-stepping state (shard width, per-shard RNG
// sub-streams, dirty sets) and the incremental sampler accumulators to the
// swarm payload.
const Version = 2

// magic identifies a checkpoint container; 8 bytes, never versioned (the
// version word after it is).
const magic = "STRMCKP\x00"

// headerSize is magic(8) + version(4) + payload length(8) + CRC32(4).
const headerSize = len(magic) + 4 + 8 + 4

// ErrCorrupt tags every integrity failure Open reports (truncation, bad
// magic, length mismatch, checksum mismatch), so callers can distinguish
// "damaged file" from I/O errors with errors.Is.
var ErrCorrupt = errors.New("corrupt checkpoint")

// ErrVersion tags a container whose format version this build does not
// understand.
var ErrVersion = errors.New("unsupported checkpoint version")

// Seal wraps a payload in the container framing: magic, version, payload
// length, CRC32 (of the payload), payload.
func Seal(payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	copy(out, magic)
	binary.LittleEndian.PutUint32(out[8:], Version)
	binary.LittleEndian.PutUint64(out[12:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[20:], crc32.ChecksumIEEE(payload))
	copy(out[headerSize:], payload)
	return out
}

// Open verifies a sealed container and returns its payload. Every failure
// mode gets its own descriptive error; integrity failures wrap ErrCorrupt
// and version skew wraps ErrVersion.
func Open(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the %d-byte header",
			ErrCorrupt, len(data), headerSize)
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return nil, fmt.Errorf("%w: file is version %d, this build reads version %d",
			ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint64(data[12:])
	if n != uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("%w: header declares a %d-byte payload, %d bytes follow",
			ErrCorrupt, n, len(data)-headerSize)
	}
	payload := data[headerSize:]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(data[20:]) {
		return nil, fmt.Errorf("%w: payload CRC32 %08x, header says %08x",
			ErrCorrupt, sum, binary.LittleEndian.Uint32(data[20:]))
	}
	return payload, nil
}

// Writer appends fixed-width primitives to a growing payload buffer. The
// zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the accumulated payload size.
func (w *Writer) Len() int { return len(w.buf) }

// U64 appends a uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 appends an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int (as int64 — the format is architecture-independent).
func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

// I32 appends an int32.
func (w *Writer) I32(v int32) { w.U64(uint64(int64(v))) }

// F64 appends a float64 as its IEEE-754 bits (exact, NaN-safe).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a bool.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// I32s appends a length-prefixed []int32.
func (w *Writer) I32s(s []int32) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.I32(v)
	}
}

// Ints appends a length-prefixed []int.
func (w *Writer) Ints(s []int) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.Int(v)
	}
}

// U64s appends a length-prefixed []uint64.
func (w *Writer) U64s(s []uint64) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.U64(v)
	}
}

// F64s appends a length-prefixed []float64.
func (w *Writer) F64s(s []float64) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.F64(v)
	}
}

// Bools appends a length-prefixed []bool, one byte per element.
func (w *Writer) Bools(s []bool) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.Bool(v)
	}
}

// Reader decodes a payload written by Writer. It is sticky-error: the
// first failure (truncation, oversized length prefix) poisons the reader,
// every later read returns zero values, and Err reports the failure —
// callers decode a whole section and check once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload for decoding.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first decoding failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the undecoded byte count.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: offset %d: %s", ErrCorrupt, r.off, fmt.Sprintf(format, args...))
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.fail("need %d bytes, %d remain", n, r.Remaining())
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int.
func (r *Reader) Int() int { return int(r.I64()) }

// I32 reads an int32; values outside the int32 range poison the reader.
func (r *Reader) I32() int32 {
	v := r.I64()
	if v < math.MinInt32 || v > math.MaxInt32 {
		r.fail("value %d overflows int32", v)
		return 0
	}
	return int32(v)
}

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a bool; any byte other than 0 or 1 poisons the reader.
func (r *Reader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bool byte %#x", b[0])
		return false
	}
}

// sliceLen reads and guards a length prefix: the declared element count
// must fit in the bytes remaining (elemSize bytes per element), so a
// corrupt length can never drive an oversized allocation.
func (r *Reader) sliceLen(elemSize int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()/elemSize) {
		r.fail("slice declares %d elements, only %d bytes remain", n, r.Remaining())
		return 0
	}
	return int(n)
}

// Blob reads a length-prefixed byte slice (always a fresh copy).
func (r *Reader) Blob() []byte {
	n := r.sliceLen(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Blob()) }

// I32s reads a length-prefixed []int32.
func (r *Reader) I32s() []int32 {
	n := r.sliceLen(8)
	if n == 0 {
		return nil
	}
	s := make([]int32, n)
	for i := range s {
		s[i] = r.I32()
	}
	return s
}

// Ints reads a length-prefixed []int.
func (r *Reader) Ints() []int {
	n := r.sliceLen(8)
	if n == 0 {
		return nil
	}
	s := make([]int, n)
	for i := range s {
		s[i] = r.Int()
	}
	return s
}

// U64s reads a length-prefixed []uint64.
func (r *Reader) U64s() []uint64 {
	n := r.sliceLen(8)
	if n == 0 {
		return nil
	}
	s := make([]uint64, n)
	for i := range s {
		s[i] = r.U64()
	}
	return s
}

// F64s reads a length-prefixed []float64.
func (r *Reader) F64s() []float64 {
	n := r.sliceLen(8)
	if n == 0 {
		return nil
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = r.F64()
	}
	return s
}

// Bools reads a length-prefixed []bool.
func (r *Reader) Bools() []bool {
	n := r.sliceLen(1)
	if n == 0 {
		return nil
	}
	s := make([]bool, n)
	for i := range s {
		s[i] = r.Bool()
	}
	return s
}

// WriteFile seals the payload and writes it atomically: the bytes go to a
// temporary file in the destination directory, are fsynced, and the file is
// renamed over the final path. A crash at any point leaves either the old
// checkpoint or the new one under path — never a torn mix.
func WriteFile(path string, payload []byte) (int, error) {
	data := Seal(payload)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) (int, error) {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	return len(data), nil
}

// ReadFile reads and verifies a checkpoint file, returning its payload.
func ReadFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	payload, err := Open(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	return payload, nil
}

// fileExt is the on-disk checkpoint suffix.
const fileExt = ".ckpt"

// FileName returns the canonical name of the checkpoint numbered seq —
// zero-padded so lexicographic and numeric order agree (Latest relies on
// it). The simulation layer numbers checkpoints by resume round.
func FileName(seq int) string {
	return fmt.Sprintf("ckpt-%09d%s", seq, fileExt)
}

// list returns the checkpoint files in dir, sorted by ascending sequence
// number.
func list(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, fileExt) {
			continue
		}
		seq := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), fileExt)
		if _, err := strconv.Atoi(seq); err != nil {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names) // zero-padded: lexicographic == numeric
	return names, nil
}

// Latest returns the path of the newest (highest-numbered) checkpoint in
// dir, or an error naming the directory when it holds none.
func Latest(dir string) (string, error) {
	names, err := list(dir)
	if err != nil {
		return "", err
	}
	if len(names) == 0 {
		return "", fmt.Errorf("checkpoint: no checkpoint files in %s", dir)
	}
	return filepath.Join(dir, names[len(names)-1]), nil
}

// Rotate deletes the oldest checkpoints in dir until at most keep remain;
// keep <= 0 retains everything. Deletion failures are reported but the
// newest files are always left untouched.
func Rotate(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	names, err := list(dir)
	if err != nil {
		return err
	}
	for _, name := range names[:max(0, len(names)-keep)] {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("checkpoint: rotate: %w", err)
		}
	}
	return nil
}
