package analytic

import (
	"reflect"
	"testing"
)

// TestBMatchingParallelMatchesSerial pins Algorithm 3's block-wavefront
// determinism contract: every memory cell receives the serial scan's
// additions in the serial order, so the result must be bit-identical — not
// merely close — for any worker count, tracked rows and partner values
// included.
func TestBMatchingParallelMatchesSerial(t *testing.T) {
	const n = 411 // odd, > 2 blocks, with a ragged final tile
	value := make([]float64, n)
	for i := range value {
		value[i] = float64(n - i)
	}
	base := BMatchingOptions{
		N: n, P: 0.03, B0: 3,
		TrackRows:    []int{0, 1, n / 2, n - 1},
		PartnerValue: value,
	}
	serialOpt := base
	serialOpt.Workers = 1
	serial, err := BMatching(serialOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5, 8, 16} {
		opt := base
		opt.Workers = workers
		got, err := BMatching(opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("BMatching with %d workers diverged from the serial evaluation", workers)
		}
	}
}

// TestBMatchingParallelSmallPopulation covers the serial fallback boundary:
// populations below two blocks take the serial path regardless of the
// worker count and must agree with an explicitly serial run.
func TestBMatchingParallelSmallPopulation(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 127} {
		a, err := BMatching(BMatchingOptions{N: n, P: 0.2, B0: 2, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := BMatching(BMatchingOptions{N: n, P: 0.2, B0: 2, Workers: 6})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("n=%d: worker counts disagree", n)
		}
	}
}
