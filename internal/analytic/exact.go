package analytic

import (
	"fmt"
	"math"

	"stratmatch/internal/core"
	"stratmatch/internal/graph"
)

// Exact computes the exact mate distributions for the stable b0-matching on
// G(n, p) by enumerating all 2^(n(n−1)/2) graphs — the ground truth the
// paper uses in Figure 7 to exhibit the independence approximation's error.
//
// The result indexes as [c−1][i][j]: the probability that choice c of peer i
// is peer j. Exact is exponential and refuses n > 6 (2^15 graphs).
func Exact(n int, p float64, b0 int) ([][][]float64, error) {
	if n < 0 || n > 6 {
		return nil, fmt.Errorf("analytic: Exact supports 0 <= n <= 6, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("analytic: probability %v out of [0,1]", p)
	}
	if b0 < 1 {
		return nil, fmt.Errorf("analytic: b0 = %d, want >= 1", b0)
	}
	d := make([][][]float64, b0)
	for c := range d {
		d[c] = make([][]float64, n)
		for i := range d[c] {
			d[c][i] = make([]float64, n)
		}
	}
	type edge struct{ a, b int }
	var edges []edge
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			edges = append(edges, edge{a, b})
		}
	}
	m := len(edges)
	for mask := 0; mask < 1<<m; mask++ {
		g := graph.NewAdjacency(n)
		bits := 0
		for e := 0; e < m; e++ {
			if mask&(1<<e) != 0 {
				g.AddEdge(edges[e].a, edges[e].b)
				bits++
			}
		}
		w := math.Pow(p, float64(bits)) * math.Pow(1-p, float64(m-bits))
		if w == 0 {
			continue
		}
		cfg := core.StableUniform(g, b0)
		for i := 0; i < n; i++ {
			for c, j := range cfg.Mates(i) {
				d[c][i][j] += w
			}
		}
	}
	return d, nil
}

// ExactOneMatching is Exact specialized to 1-matching, returning D(i, j)
// directly.
func ExactOneMatching(n int, p float64) ([][]float64, error) {
	d, err := Exact(n, p, 1)
	if err != nil {
		return nil, err
	}
	return d[0], nil
}

// Figure7 compares, for n = 3 peers, the exact matching probabilities with
// Algorithm 2's approximation. The paper shows the only discrepancy is on
// the worst pair: D_approx(1,2) − D_exact(1,2) = p³(1−p) (0-based peers).
type Figure7 struct {
	P      float64
	Exact  [][]float64 // exact D(i, j), 3×3
	Approx [][]float64 // Algorithm 2's D(i, j), 3×3
	// Err is Approx(1,2) − Exact(1,2); analytically p³(1−p).
	Err float64
}

// ComputeFigure7 evaluates both models at the given edge probability.
func ComputeFigure7(p float64) (*Figure7, error) {
	exact, err := ExactOneMatching(3, p)
	if err != nil {
		return nil, err
	}
	om, err := OneMatching(3, p, 0, 1, 2)
	if err != nil {
		return nil, err
	}
	approx := [][]float64{om.Rows[0], om.Rows[1], om.Rows[2]}
	return &Figure7{
		P:      p,
		Exact:  exact,
		Approx: approx,
		Err:    approx[1][2] - exact[1][2],
	}, nil
}
