package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOneMatchingTinyHandComputed(t *testing.T) {
	const p = 0.3
	res, err := OneMatching(3, p, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want01 := p
	want02 := p * (1 - p)
	want12 := p * (1 - p) * (1 - p*(1-p))
	if got := res.Rows[0][1]; math.Abs(got-want01) > 1e-12 {
		t.Errorf("D(0,1) = %v, want %v", got, want01)
	}
	if got := res.Rows[0][2]; math.Abs(got-want02) > 1e-12 {
		t.Errorf("D(0,2) = %v, want %v", got, want02)
	}
	if got := res.Rows[1][2]; math.Abs(got-want12) > 1e-12 {
		t.Errorf("D(1,2) = %v, want %v", got, want12)
	}
	// Symmetry of stored rows.
	if res.Rows[1][0] != res.Rows[0][1] || res.Rows[2][0] != res.Rows[0][2] {
		t.Error("stored rows not symmetric")
	}
}

func TestOneMatchingBestPeerGeometric(t *testing.T) {
	// For the best peer the recurrence solves exactly:
	// D(0, j) = p(1−p)^{j−1}, so MatchProb[0] = 1 − (1−p)^{n−1}.
	const n, p = 200, 0.02
	res, err := OneMatching(n, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < n; j++ {
		want := p * math.Pow(1-p, float64(j-1))
		if got := res.Rows[0][j]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("D(0,%d) = %v, want %v", j, got, want)
		}
	}
	wantTotal := 1 - math.Pow(1-p, n-1)
	if got := res.MatchProb[0]; math.Abs(got-wantTotal) > 1e-12 {
		t.Fatalf("MatchProb[0] = %v, want %v", got, wantTotal)
	}
}

func TestOneMatchingRowsAreSubProbabilities(t *testing.T) {
	check := func(seedP uint8, nRaw uint8) bool {
		p := float64(seedP%90)/100 + 0.01
		n := 2 + int(nRaw%80)
		res, err := OneMatching(n, p)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if res.MatchProb[i] < -1e-12 || res.MatchProb[i] > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOneMatchingWorstPeerHalfMatched(t *testing.T) {
	// Paper, Figure 8(c) discussion: "the worst peer ... will be matched
	// exactly in half of the cases".
	res, err := OneMatching(1000, 10.0/999)
	if err != nil {
		t.Fatal(err)
	}
	if mp := res.MatchProb[999]; mp < 0.4 || mp > 0.6 {
		t.Fatalf("worst peer match probability %v, want ~0.5", mp)
	}
	if u := res.UnmatchedProb(999); math.Abs(u+res.MatchProb[999]-1) > 1e-12 {
		t.Fatalf("UnmatchedProb inconsistent: %v", u)
	}
}

func TestOneMatchingStratificationShift(t *testing.T) {
	// Figure 8(b): for mid-ranked peers the distribution is (nearly)
	// symmetric around the peer's own rank and shift-invariant.
	const n = 2000
	res, err := OneMatching(n, 0.01, 800, 1200)
	if err != nil {
		t.Fatal(err)
	}
	shift := 400
	var delta, mass float64
	for off := -300; off <= 300; off++ {
		a := res.Rows[800][800+off]
		b := res.Rows[1200][1200+off]
		delta += math.Abs(a - b)
		mass += a
		_ = shift
	}
	if mass < 0.5 {
		t.Fatalf("central mass only %v; offsets window too small", mass)
	}
	if delta/mass > 0.05 {
		t.Fatalf("distributions not shift-invariant: L1 delta %v over mass %v", delta, mass)
	}
}

func TestOneMatchingErrors(t *testing.T) {
	if _, err := OneMatching(-1, 0.5); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := OneMatching(10, 1.5); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := OneMatching(10, 0.5, 99); err == nil {
		t.Error("out-of-range tracked row accepted")
	}
}

func TestExactOneMatchingFigure7(t *testing.T) {
	// Figure 7's exact probabilities for n = 3.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		d, err := ExactOneMatching(3, p)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := d[0][1], p; math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%v: exact D(0,1) = %v, want %v", p, got, want)
		}
		if got, want := d[0][2], p*(1-p); math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%v: exact D(0,2) = %v, want %v", p, got, want)
		}
		if got, want := d[1][2], p*(1-p)*(1-p); math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%v: exact D(1,2) = %v, want %v", p, got, want)
		}
	}
}

func TestFigure7ErrorFormula(t *testing.T) {
	// Approximation error on the worst pair is exactly p³(1−p).
	for _, p := range []float64{0.05, 0.3, 0.7} {
		fig, err := ComputeFigure7(p)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(p, 3) * (1 - p)
		if math.Abs(fig.Err-want) > 1e-12 {
			t.Errorf("p=%v: err = %v, want p³(1−p) = %v", p, fig.Err, want)
		}
		// The two models agree exactly on the other two pairs.
		if math.Abs(fig.Approx[0][1]-fig.Exact[0][1]) > 1e-12 ||
			math.Abs(fig.Approx[0][2]-fig.Exact[0][2]) > 1e-12 {
			t.Errorf("p=%v: approximation differs on pairs involving peer 0", p)
		}
	}
}

func TestExactRejectsLargeN(t *testing.T) {
	if _, err := Exact(7, 0.5, 1); err == nil {
		t.Fatal("n=7 accepted")
	}
}

func TestExactMassConservation(t *testing.T) {
	// Each row of the exact distribution is a sub-probability, and the
	// distribution is symmetric for 1-matching.
	d, err := ExactOneMatching(5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		sum := 0.0
		for j := 0; j < 5; j++ {
			sum += d[i][j]
			if math.Abs(d[i][j]-d[j][i]) > 1e-12 {
				t.Fatalf("exact D not symmetric at (%d,%d)", i, j)
			}
		}
		if sum > 1+1e-12 {
			t.Fatalf("row %d mass %v > 1", i, sum)
		}
	}
}

func TestBMatchingReducesToOneMatching(t *testing.T) {
	const n, p = 120, 0.04
	om, err := OneMatching(n, p, 17)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := BMatching(BMatchingOptions{N: n, P: p, B0: 1, TrackRows: []int{17}})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		if math.Abs(om.Rows[17][j]-bm.Rows[17][0][j]) > 1e-12 {
			t.Fatalf("b0=1 mismatch at j=%d: %v vs %v", j, om.Rows[17][j], bm.Rows[17][0][j])
		}
	}
	for i := 0; i < n; i++ {
		if math.Abs(om.MatchProb[i]-bm.SlotMatchProb[0][i]) > 1e-12 {
			t.Fatalf("match prob mismatch at %d", i)
		}
	}
}

func TestBMatchingSlotNesting(t *testing.T) {
	// Slot c can only fill if slot c−1 filled: probabilities must be
	// non-increasing in c for every peer.
	bm, err := BMatching(BMatchingOptions{N: 300, P: 0.02, B0: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		for c := 1; c < 3; c++ {
			if bm.SlotMatchProb[c][i] > bm.SlotMatchProb[c-1][i]+1e-12 {
				t.Fatalf("peer %d: slot %d prob %v exceeds slot %d prob %v",
					i, c+1, bm.SlotMatchProb[c][i], c, bm.SlotMatchProb[c-1][i])
			}
		}
		if bm.MatchProbAny[i] != bm.SlotMatchProb[0][i] {
			t.Fatal("MatchProbAny != first slot probability")
		}
	}
}

func TestBMatchingExpectedValue(t *testing.T) {
	// With unit partner values, the expected value is the expected number
	// of filled slots: Σ_c SlotMatchProb[c][i].
	const n = 150
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	bm, err := BMatching(BMatchingOptions{N: n, P: 0.05, B0: 2, PartnerValue: ones})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := bm.SlotMatchProb[0][i] + bm.SlotMatchProb[1][i]
		if math.Abs(bm.ExpectedValue[i]-want) > 1e-9 {
			t.Fatalf("peer %d: expected value %v, want %v", i, bm.ExpectedValue[i], want)
		}
	}
}

func TestBMatchingErrors(t *testing.T) {
	if _, err := BMatching(BMatchingOptions{N: 10, P: 0.1, B0: 0}); err == nil {
		t.Error("b0=0 accepted")
	}
	if _, err := BMatching(BMatchingOptions{N: 10, P: 2, B0: 1}); err == nil {
		t.Error("p=2 accepted")
	}
	if _, err := BMatching(BMatchingOptions{N: 10, P: 0.1, B0: 1, PartnerValue: []float64{1}}); err == nil {
		t.Error("short PartnerValue accepted")
	}
	if _, err := BMatching(BMatchingOptions{N: 10, P: 0.1, B0: 1, TrackRows: []int{10}}); err == nil {
		t.Error("out-of-range TrackRows accepted")
	}
}

func TestBMatchingAgainstExact(t *testing.T) {
	// For tiny n the approximation must be close to the exact enumeration
	// at small p (the regime the paper validates).
	const n, p, b0 = 5, 0.05, 2
	exact, err := Exact(n, p, b0)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := BMatching(BMatchingOptions{N: n, P: p, B0: b0, TrackRows: []int{0, 1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < b0; c++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				diff := math.Abs(exact[c][i][j] - bm.Rows[i][c][j])
				if diff > 0.01 {
					t.Fatalf("c=%d (%d,%d): exact %v vs approx %v",
						c, i, j, exact[c][i][j], bm.Rows[i][c][j])
				}
			}
		}
	}
}

func TestFluidDensity(t *testing.T) {
	if FluidDensity(10, 0) != 10 {
		t.Fatal("density at 0 should be d")
	}
	if FluidDensity(10, -1) != 0 {
		t.Fatal("negative beta should give 0")
	}
	// Total mass ∫ d·e^{−βd} dβ = 1: Riemann check.
	sum := 0.0
	const dBeta = 1e-4
	for beta := 0.0; beta < 3; beta += dBeta {
		sum += FluidDensity(10, beta) * dBeta
	}
	if math.Abs(sum-1) > 0.01 {
		t.Fatalf("fluid mass %v, want ~1", sum)
	}
}

func TestCompareFluidConvergence(t *testing.T) {
	pts, err := CompareFluid(3000, 10, 0.3, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if math.Abs(pt.Model-pt.Fluid) > 0.05*10 {
			t.Fatalf("β=%v: model %v vs fluid %v", pt.Beta, pt.Model, pt.Fluid)
		}
	}
}

func TestMonteCarloMatchesModel(t *testing.T) {
	// Empirical choice distributions from true stable matchings must match
	// Algorithm 3's approximation in the small-p regime — the package's
	// central cross-validation (Figure 9 at reduced scale).
	const (
		n, p    = 120, 0.05
		b0      = 2
		peer    = 60
		samples = 4000
	)
	mc, err := MonteCarloChoices(n, p, b0, peer, samples, 42)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := BMatching(BMatchingOptions{N: n, P: p, B0: b0, TrackRows: []int{peer}})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < b0; c++ {
		// Compare total variation distance over coarse bins to absorb
		// sampling noise.
		const bins = 6
		var tv float64
		for b := 0; b < bins; b++ {
			lo, hi := b*n/bins, (b+1)*n/bins
			var em, md float64
			for j := lo; j < hi; j++ {
				em += mc.ChoiceDist[c][j]
				md += bm.Rows[peer][c][j]
			}
			tv += math.Abs(em - md)
		}
		if tv/2 > 0.05 {
			t.Fatalf("choice %d: TV distance %v between Monte-Carlo and model", c+1, tv/2)
		}
	}
}

func TestMonteCarloErrors(t *testing.T) {
	if _, err := MonteCarloChoices(0, 0.5, 1, 0, 10, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := MonteCarloChoices(10, 0.5, 1, 10, 10, 1); err == nil {
		t.Error("peer out of range accepted")
	}
	if _, err := MonteCarloChoices(10, 0.5, 0, 0, 10, 1); err == nil {
		t.Error("b0=0 accepted")
	}
	if _, err := MonteCarloChoices(10, 0.5, 1, 0, 0, 1); err == nil {
		t.Error("samples=0 accepted")
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	a, err := MonteCarloChoices(50, 0.1, 1, 25, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloChoices(50, 0.1, 1, 25, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 50; j++ {
		if a.ChoiceDist[0][j] != b.ChoiceDist[0][j] {
			t.Fatal("same seed produced different Monte-Carlo results")
		}
	}
}

func BenchmarkOneMatching5000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := OneMatching(5000, 0.005, 200, 2500, 4800); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BMatching(BMatchingOptions{N: 2000, P: 0.01, B0: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
