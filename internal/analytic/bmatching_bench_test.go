package analytic

import (
	"fmt"
	"testing"

	"stratmatch/internal/par"
)

// bmatchingWaveBaseline is the scheduler bmatchingTiled replaced, kept
// verbatim as a benchmark baseline: the same block tiling, but run as block
// anti-diagonal "waves" with a full par.ForEachWorker barrier (fresh
// goroutines included) per wave. The per-tile dependency handoff on a
// persistent pool replaces it because a wave can only move at the pace of
// its slowest tile and pays one goroutine spawn per worker per wave.
func bmatchingWaveBaseline(res *BMatchingResult, opt BMatchingOptions, workers int) {
	n, p, b0 := opt.N, opt.P, opt.B0
	colCum := make([][]float64, b0)
	rowCum := make([][]float64, b0)
	for c := 0; c < b0; c++ {
		colCum[c] = make([]float64, n)
		rowCum[c] = make([]float64, n)
	}
	block := (n + 4*workers - 1) / (4 * workers)
	if block < bmatchingMinBlock {
		block = bmatchingMinBlock
	}
	nb := (n + block - 1) / block
	xis := make([][]float64, workers)
	xjs := make([][]float64, workers)
	for w := 0; w < workers; w++ {
		xis[w] = make([]float64, b0)
		xjs[w] = make([]float64, b0)
	}
	for wave := 0; wave <= 2*(nb-1); wave++ {
		lo := 0
		if wave >= nb {
			lo = wave - nb + 1
		}
		hi := wave / 2
		if hi < lo {
			continue
		}
		par.ForEachWorker(hi-lo+1, workers, func(w, t int) {
			I := lo + t
			J := wave - I
			r0, r1 := I*block, (I+1)*block
			if r1 > n {
				r1 = n
			}
			c1 := (J + 1) * block
			if c1 > n {
				c1 = n
			}
			xi, xj := xis[w], xjs[w]
			for i := r0; i < r1; i++ {
				jStart := J * block
				if I == J {
					for c := 0; c < b0; c++ {
						rowCum[c][i] = colCum[c][i]
					}
					jStart = i + 1
				}
				rowOut := res.Rows[i]
				for j := jStart; j < c1; j++ {
					var sumXi, sumXj float64
					for c := 0; c < b0; c++ {
						prev := 1.0
						if c > 0 {
							prev = rowCum[c-1][i]
						}
						xi[c] = prev - rowCum[c][i]
						sumXi += xi[c]
						prev = 1.0
						if c > 0 {
							prev = colCum[c-1][j]
						}
						xj[c] = prev - colCum[c][j]
						sumXj += xj[c]
					}
					pairProb := p * sumXi * sumXj
					for c := 0; c < b0; c++ {
						dci := p * xi[c] * sumXj
						dcj := p * xj[c] * sumXi
						rowCum[c][i] += dci
						colCum[c][j] += dcj
						res.SlotMatchProb[c][i] += dci
						res.SlotMatchProb[c][j] += dcj
						if rowOut != nil {
							rowOut[c][j] = dci
						}
						if out := res.Rows[j]; out != nil {
							out[c][i] = dcj
						}
					}
					if res.ExpectedValue != nil {
						res.ExpectedValue[i] += pairProb * opt.PartnerValue[j]
						res.ExpectedValue[j] += pairProb * opt.PartnerValue[i]
					}
				}
			}
		})
	}
}

func emptyResult(opt BMatchingOptions) *BMatchingResult {
	res := &BMatchingResult{
		N: opt.N, P: opt.P, B0: opt.B0,
		SlotMatchProb: make([][]float64, opt.B0),
		MatchProbAny:  make([]float64, opt.N),
		Rows:          map[int][][]float64{},
	}
	for c := 0; c < opt.B0; c++ {
		res.SlotMatchProb[c] = make([]float64, opt.N)
	}
	return res
}

// TestWaveBaselineMatchesHandoff keeps the benchmark baseline honest: the
// retired wave scheduler and the live handoff scheduler must still produce
// byte-identical results, so their ns/op difference is pure scheduling.
func TestWaveBaselineMatchesHandoff(t *testing.T) {
	opt := BMatchingOptions{N: 512, P: 0.05, B0: 3}
	wave := emptyResult(opt)
	bmatchingWaveBaseline(wave, opt, 4)
	handoff := emptyResult(opt)
	bmatchingTiled(handoff, opt, 4)
	for c := 0; c < opt.B0; c++ {
		for i := 0; i < opt.N; i++ {
			if wave.SlotMatchProb[c][i] != handoff.SlotMatchProb[c][i] {
				t.Fatalf("SlotMatchProb[%d][%d]: wave %v != handoff %v",
					c, i, wave.SlotMatchProb[c][i], handoff.SlotMatchProb[c][i])
			}
		}
	}
}

// BenchmarkTiledScheduler is the before/after for the scheduling change:
// identical tile math under the retired per-wave barrier versus the
// per-tile dependency handoff on a persistent pool.
func BenchmarkTiledScheduler(b *testing.B) {
	opt := BMatchingOptions{N: 4000, P: 0.005, B0: 3}
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("wave-barrier/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bmatchingWaveBaseline(emptyResult(opt), opt, workers)
			}
		})
		b.Run(fmt.Sprintf("handoff/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bmatchingTiled(emptyResult(opt), opt, workers)
			}
		})
	}
}
