package analytic

import (
	"fmt"

	"stratmatch/internal/core"
	"stratmatch/internal/graph"
	"stratmatch/internal/par"
	"stratmatch/internal/rng"
)

// MonteCarloResult is the empirical counterpart of the analytic model:
// choice distributions measured on true stable matchings over sampled
// Erdős–Rényi graphs (the paper's Figure 9 "simulated" curves, which took
// the authors "several weeks" at 10⁶ draws; the sample count here is a
// parameter).
type MonteCarloResult struct {
	N       int
	P       float64
	B0      int
	Peer    int
	Samples int
	// ChoiceDist[c−1][j] estimates Dc(peer, j).
	ChoiceDist [][]float64
	// MatchedCount[c−1] is the number of samples in which the peer's c-th
	// slot was filled.
	MatchedCount []int
}

// MonteCarloChoices is MonteCarloChoicesWorkers with the default worker
// count (GOMAXPROCS).
func MonteCarloChoices(n int, p float64, b0, peer, samples int, seed uint64) (*MonteCarloResult, error) {
	return MonteCarloChoicesWorkers(n, p, b0, peer, samples, seed, 0)
}

// MonteCarloChoicesWorkers samples `samples` G(n, p) graphs, solves the
// stable b0-matching exactly on each (Algorithm 1), and histograms the ranks
// of the target peer's 1st..b0-th choices. Sampling fans out over `workers`
// goroutines (0 = GOMAXPROCS).
//
// Every sample draws from its own sub-stream derived from (seed, sample
// index), and the merged histograms are integer counts, so the result is
// identical for any worker count and any scheduling — one seed, one answer,
// on a laptop or a 128-core runner.
func MonteCarloChoicesWorkers(n int, p float64, b0, peer, samples int, seed uint64, workers int) (*MonteCarloResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("analytic: population %d", n)
	}
	if peer < 0 || peer >= n {
		return nil, fmt.Errorf("analytic: peer %d out of range [0,%d)", peer, n)
	}
	if b0 < 1 {
		return nil, fmt.Errorf("analytic: b0 = %d", b0)
	}
	if samples < 1 {
		return nil, fmt.Errorf("analytic: samples = %d", samples)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("analytic: probability %v out of [0,1]", p)
	}

	workers = par.Workers(samples, workers)
	// Each worker owns a graph arena and a matching arena: across its share
	// of the samples the G(n, p) edge buffers and the Config slab are
	// recycled, so a draw costs zero steady-state allocations. The sampled
	// values are untouched — every sample still derives from its own
	// sub-stream — so the counts are byte-identical to fresh-allocation
	// sampling at any worker count.
	type partial struct {
		counts  [][]int
		matched []int
		garena  graph.Arena
		carena  core.Arena
	}
	partials := make([]partial, workers)
	for w := range partials {
		pt := &partials[w]
		pt.counts = make([][]int, b0)
		for c := range pt.counts {
			pt.counts[c] = make([]int, n)
		}
		pt.matched = make([]int, b0)
	}
	par.ForEachWorker(samples, workers, func(w, s int) {
		pt := &partials[w]
		r := rng.New(seed + uint64(s)*0x9e3779b97f4a7c15)
		g := pt.garena.ErdosRenyi(n, p, r)
		cfg := pt.carena.StableUniform(g, b0)
		for c, mate := range cfg.Mates(peer) {
			pt.counts[c][mate]++
			pt.matched[c]++
		}
	})

	res := &MonteCarloResult{
		N:            n,
		P:            p,
		B0:           b0,
		Peer:         peer,
		Samples:      samples,
		ChoiceDist:   make([][]float64, b0),
		MatchedCount: make([]int, b0),
	}
	for c := 0; c < b0; c++ {
		res.ChoiceDist[c] = make([]float64, n)
		for _, pt := range partials {
			res.MatchedCount[c] += pt.matched[c]
			for j, cnt := range pt.counts[c] {
				res.ChoiceDist[c][j] += float64(cnt)
			}
		}
		for j := range res.ChoiceDist[c] {
			res.ChoiceDist[c][j] /= float64(samples)
		}
	}
	return res, nil
}
