// Package analytic implements the paper's Section 5 independent-matching
// model on Erdős–Rényi acceptance graphs: the exact mate-rank distribution
// for tiny populations, the approximate recurrences of Algorithms 2
// (1-matching) and 3 (b0-matching), the fluid limit, and Monte-Carlo
// validation against true stable matchings on sampled graphs.
//
// Peers are ranked 0 .. n−1 with 0 the best, matching the rest of the
// repository (the paper uses 1-based labels).
package analytic

import (
	"fmt"
)

// OneMatchingResult holds the output of the independent 1-matching
// recurrence (Algorithm 2). Only the rows requested in advance are stored in
// full; per-peer aggregate masses are always available.
type OneMatchingResult struct {
	// N and P echo the model parameters.
	N int
	P float64
	// MatchProb[i] is Σ_j D(i, j): the probability peer i finds a mate.
	MatchProb []float64
	// Rows maps a requested peer i to its full distribution D(i, ·) over
	// mates 0 .. n−1 (D(i,i) = 0).
	Rows map[int][]float64
}

// UnmatchedProb returns 1 − MatchProb[i], the paper's "blue area" of
// Figure 8(c).
func (r *OneMatchingResult) UnmatchedProb(i int) float64 {
	u := 1 - r.MatchProb[i]
	if u < 0 {
		return 0 // clamp float error
	}
	return u
}

// OneMatching evaluates Algorithm 2 — the independent 1-matching recurrence
//
//	D(i, j) = p · (1 − Σ_{k<j} D(i, k)) · (1 − Σ_{k<i} D(j, k))
//
// in O(n²) time and O(n) memory by streaming cumulative row and column
// sums instead of materializing the n×n matrix (the paper's Matlab scripts
// stored it whole). Full rows are kept only for the peers listed in
// trackRows.
func OneMatching(n int, p float64, trackRows ...int) (*OneMatchingResult, error) {
	if n < 0 {
		return nil, fmt.Errorf("analytic: negative population %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("analytic: probability %v out of [0,1]", p)
	}
	res := &OneMatchingResult{
		N:         n,
		P:         p,
		MatchProb: make([]float64, n),
		Rows:      make(map[int][]float64, len(trackRows)),
	}
	for _, i := range trackRows {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("analytic: tracked row %d out of range [0,%d)", i, n)
		}
		res.Rows[i] = make([]float64, n)
	}

	// colSum[j] = Σ_{k<i} D(k, j) for the current outer row i; by symmetry
	// this is exactly Σ_{k<i} D(j, k), the inner factor of the recurrence.
	colSum := make([]float64, n)
	for i := 0; i < n; i++ {
		rowSum := colSum[i] // Σ_{k<i} D(i, k), accumulated by earlier rows
		rowOut := res.Rows[i]
		for j := i + 1; j < n; j++ {
			d := p * (1 - rowSum) * (1 - colSum[j])
			rowSum += d
			colSum[j] += d
			if rowOut != nil {
				rowOut[j] = d
			}
			if out := res.Rows[j]; out != nil {
				out[i] = d
			}
		}
		res.MatchProb[i] = rowSum
	}
	return res, nil
}
