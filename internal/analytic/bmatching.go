package analytic

import (
	"fmt"
	"sync/atomic"

	"stratmatch/internal/par"
	"stratmatch/internal/telemetry"
)

// BMatchingResult holds the output of the independent b0-matching recurrence
// (Algorithm 3). Dc(i, j) denotes the probability that choice number c
// (1-based, c ≤ b0) of peer i is peer j.
type BMatchingResult struct {
	// N, P and B0 echo the model parameters.
	N  int
	P  float64
	B0 int
	// SlotMatchProb[c−1][i] is Σ_j Dc(i, j): the probability that peer i's
	// c-th slot is filled.
	SlotMatchProb [][]float64
	// MatchProbAny[i] is the probability that at least the first slot is
	// filled, i.e. that peer i collaborates with anybody (slot fills are
	// nested: slot c fills only if slot c−1 did).
	MatchProbAny []float64
	// Rows maps a tracked peer i to [c−1][j] = Dc(i, j).
	Rows map[int][][]float64
	// ExpectedValue[i] = Σ_c Σ_j Dc(i, j) · value(j) when a partner-value
	// function was supplied, else nil. This powers Figure 11, where
	// value(j) is peer j's upload bandwidth per slot.
	ExpectedValue []float64
}

// BMatchingOptions parameterizes BMatching.
type BMatchingOptions struct {
	// N is the number of peers; P the Erdős–Rényi edge probability; B0 the
	// uniform number of slots per peer.
	N  int
	P  float64
	B0 int
	// TrackRows lists peers whose per-choice distributions are kept whole.
	TrackRows []int
	// PartnerValue, when non-nil, must have length N; the result then
	// contains ExpectedValue[i] = Σ_c Σ_j Dc(i,j)·PartnerValue[j].
	PartnerValue []float64
	// Workers bounds the goroutines sharding the O(n²·b0) recurrence
	// (0 = GOMAXPROCS). The block-wavefront split performs the same
	// floating-point operations in the same per-cell order as the serial
	// evaluation, so the result is byte-identical for any worker count.
	Workers int
}

// BMatching evaluates Algorithm 3 — the independent b0-matching recurrence.
// For every pair i < j and choice indices ci, cj it uses the paper's
// Assumption 2 factorization
//
//	D^{cj}_{ci}(i, j) = p · X_i(ci, j) · X_j(cj, i)
//
// where X_i(c, j) = P(choice c−1 of i matched better than j) − P(choice c of
// i matched better than j), with the convention that "choice 0" is always
// matched better than anybody. (The report's formula (4) prints the
// summation bounds with i and j swapped relative to its own Assumption 2 and
// Algorithm 3 initialization; we implement the semantically consistent
// version, which our Monte-Carlo tests validate.)
//
// Since X_i does not depend on cj, each pair costs O(b0):
// Dci(i,j) = p·X_i(ci)·ΣX_j and Dcj(j,i) = p·X_j(cj)·ΣX_i.
// Total cost is O(n²·b0) time and O(n·b0) memory.
//
// The pair (i, j) depends only on the pairs (i, j−1) (through row i's
// cumulative) and (i−1, j) (through column j's cumulative) — a classic
// wavefront. The recurrence is therefore sharded over Workers goroutines by
// tiling the upper triangle into row×column blocks and handing each tile to
// a persistent worker pool as soon as its two predecessor tiles finish (see
// bmatchingTiled); every memory cell still receives the same additions in
// the same order, so the parallel evaluation is byte-identical to the
// serial one.
func BMatching(opt BMatchingOptions) (*BMatchingResult, error) {
	n, p, b0 := opt.N, opt.P, opt.B0
	if n < 0 {
		return nil, fmt.Errorf("analytic: negative population %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("analytic: probability %v out of [0,1]", p)
	}
	if b0 < 1 {
		return nil, fmt.Errorf("analytic: b0 = %d, want >= 1", b0)
	}
	if opt.PartnerValue != nil && len(opt.PartnerValue) != n {
		return nil, fmt.Errorf("analytic: PartnerValue has %d entries, want %d", len(opt.PartnerValue), n)
	}
	res := &BMatchingResult{
		N:             n,
		P:             p,
		B0:            b0,
		SlotMatchProb: make([][]float64, b0),
		MatchProbAny:  make([]float64, n),
		Rows:          make(map[int][][]float64, len(opt.TrackRows)),
	}
	for c := 0; c < b0; c++ {
		res.SlotMatchProb[c] = make([]float64, n)
	}
	for _, i := range opt.TrackRows {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("analytic: tracked row %d out of range [0,%d)", i, n)
		}
		rows := make([][]float64, b0)
		for c := range rows {
			rows[c] = make([]float64, n)
		}
		res.Rows[i] = rows
	}
	if opt.PartnerValue != nil {
		res.ExpectedValue = make([]float64, n)
	}

	// The tiled evaluation needs at least two blocks per anti-diagonal to
	// overlap work; below that (or on one worker) the serial scan is the
	// same computation without the barrier overhead.
	if workers := par.Workers(n, opt.Workers); workers > 1 && n >= 2*bmatchingMinBlock {
		bmatchingTiled(res, opt, workers)
	} else {
		bmatchingSerial(res, opt)
	}
	for i := 0; i < n; i++ {
		res.MatchProbAny[i] = res.SlotMatchProb[0][i]
	}
	return res, nil
}

// bmatchingSerial is the reference row-major evaluation.
func bmatchingSerial(res *BMatchingResult, opt BMatchingOptions) {
	n, p, b0 := opt.N, opt.P, opt.B0
	// colCum[c][j] = Σ_{k<i} D_{c+1}(j, k) for the current outer row i.
	colCum := make([][]float64, b0)
	for c := range colCum {
		colCum[c] = make([]float64, n)
	}
	// Scratch buffers reused across pairs.
	rowCum := make([]float64, b0) // Σ_{k<j} D_{c+1}(i, k) while scanning row i
	xi := make([]float64, b0)
	xj := make([]float64, b0)

	for i := 0; i < n; i++ {
		for c := 0; c < b0; c++ {
			rowCum[c] = colCum[c][i]
		}
		rowOut := res.Rows[i]
		for j := i + 1; j < n; j++ {
			// X factors before any update for this pair.
			var sumXi, sumXj float64
			for c := 0; c < b0; c++ {
				prev := 1.0
				if c > 0 {
					prev = rowCum[c-1]
				}
				xi[c] = prev - rowCum[c]
				sumXi += xi[c]
				prev = 1.0
				if c > 0 {
					prev = colCum[c-1][j]
				}
				xj[c] = prev - colCum[c][j]
				sumXj += xj[c]
			}
			pairProb := p * sumXi * sumXj // P(i and j matched at all)
			for c := 0; c < b0; c++ {
				dci := p * xi[c] * sumXj // Dc(i, j)
				dcj := p * xj[c] * sumXi // Dc(j, i)
				rowCum[c] += dci
				colCum[c][j] += dcj
				res.SlotMatchProb[c][i] += dci
				res.SlotMatchProb[c][j] += dcj
				if rowOut != nil {
					rowOut[c][j] = dci
				}
				if out := res.Rows[j]; out != nil {
					out[c][i] = dcj
				}
			}
			if res.ExpectedValue != nil {
				res.ExpectedValue[i] += pairProb * opt.PartnerValue[j]
				res.ExpectedValue[j] += pairProb * opt.PartnerValue[i]
			}
		}
	}
}

// bmatchingMinBlock is the smallest tile edge worth a barrier: a tile costs
// O(block²·b0) floating-point work against one wave synchronization.
const bmatchingMinBlock = 64

// bmatchingTiled shards the recurrence into block×block tiles of the upper
// triangle: tile (I, J) — rows of block I against columns of block J —
// depends only on tiles (I, J−1) and (I−1, J). Unlike the serial scan, row
// cumulatives persist per row (rowCum[c][i]) because a row's tiles are
// visited by different workers over time; the diagonal tile seeds them from
// colCum exactly where the serial scan would.
//
// Scheduling is a dependency-counted handoff on a persistent par.Pool
// rather than per-anti-diagonal barriers: each tile carries the count of
// its unfinished predecessors, a finished tile decrements its (I, J+1) and
// (I+1, J) successors, and whichever decrement reaches zero enqueues the
// successor on the ready channel. A tile therefore starts the moment its
// own inputs are final instead of waiting for the slowest tile of its
// anti-diagonal, and the pool goroutines are spawned once per evaluation
// instead of once per wave.
//
// Determinism: two tiles are only ever concurrent when neither reaches the
// other through the dependency edges. A conflict between tile (I1, J1)'s
// rows and tile (I2, J2)'s columns needs I1 == J2; but then (I2, J2) chains
// to (I1, J1) through column J2 down to the diagonal and along row I1
// ((I2, I1) → … → (I1, I1) → … → (I1, J1)), so they are ordered, and
// same-row or same-column tiles are chained directly. Each cell of colCum,
// rowCum, SlotMatchProb and ExpectedValue therefore receives exactly the
// additions of the serial scan, in the same order, for every worker count
// and every handoff schedule.
func bmatchingTiled(res *BMatchingResult, opt BMatchingOptions, workers int) {
	n, p, b0 := opt.N, opt.P, opt.B0
	colCum := make([][]float64, b0)
	rowCum := make([][]float64, b0)
	for c := 0; c < b0; c++ {
		colCum[c] = make([]float64, n)
		rowCum[c] = make([]float64, n)
	}
	// ~4 blocks per worker keeps enough tiles in flight to feed the pool
	// while the tiles stay coarse; the floor bounds the handoff count.
	block := (n + 4*workers - 1) / (4 * workers)
	if block < bmatchingMinBlock {
		block = bmatchingMinBlock
	}
	nb := (n + block - 1) / block

	// Per-worker X-factor scratch.
	xis := make([][]float64, workers)
	xjs := make([][]float64, workers)
	for w := 0; w < workers; w++ {
		xis[w] = make([]float64, b0)
		xjs[w] = make([]float64, b0)
	}

	runTile := func(w, I, J int) {
		r0, r1 := I*block, (I+1)*block
		if r1 > n {
			r1 = n
		}
		c1 := (J + 1) * block
		if c1 > n {
			c1 = n
		}
		xi, xj := xis[w], xjs[w]
		for i := r0; i < r1; i++ {
			jStart := J * block
			if I == J {
				// Row i starts here: seed its cumulative from column
				// i's state, which is final — every (k, i) pair with
				// k < i lives in a predecessor tile or earlier in this
				// tile.
				for c := 0; c < b0; c++ {
					rowCum[c][i] = colCum[c][i]
				}
				jStart = i + 1
			}
			rowOut := res.Rows[i]
			for j := jStart; j < c1; j++ {
				var sumXi, sumXj float64
				for c := 0; c < b0; c++ {
					prev := 1.0
					if c > 0 {
						prev = rowCum[c-1][i]
					}
					xi[c] = prev - rowCum[c][i]
					sumXi += xi[c]
					prev = 1.0
					if c > 0 {
						prev = colCum[c-1][j]
					}
					xj[c] = prev - colCum[c][j]
					sumXj += xj[c]
				}
				pairProb := p * sumXi * sumXj
				for c := 0; c < b0; c++ {
					dci := p * xi[c] * sumXj
					dcj := p * xj[c] * sumXi
					rowCum[c][i] += dci
					colCum[c][j] += dcj
					res.SlotMatchProb[c][i] += dci
					res.SlotMatchProb[c][j] += dcj
					if rowOut != nil {
						rowOut[c][j] = dci
					}
					if out := res.Rows[j]; out != nil {
						out[c][i] = dcj
					}
				}
				if res.ExpectedValue != nil {
					res.ExpectedValue[i] += pairProb * opt.PartnerValue[j]
					res.ExpectedValue[j] += pairProb * opt.PartnerValue[i]
				}
			}
		}
	}

	// Tile (I, J) waits for (I, J−1) when the row extends left of it and
	// for (I−1, J) when a block row sits above; only (0, 0) starts free.
	total := nb * (nb + 1) / 2
	deps := make([]atomic.Int32, nb*nb)
	for I := 0; I < nb; I++ {
		for J := I; J < nb; J++ {
			var d int32
			if J > I {
				d++
			}
			if I > 0 {
				d++
			}
			deps[I*nb+J].Store(d)
		}
	}
	// Buffered for every tile plus one shutdown sentinel per worker, so no
	// send ever blocks.
	ready := make(chan int, total+workers)
	ready <- 0
	var finished atomic.Int32

	pool := par.NewPool(workers)
	defer pool.Close()
	pool.Run(func(w int) {
		r := par.Telemetry()
		for idx := range ready {
			if idx < 0 {
				return
			}
			I, J := idx/nb, idx%nb
			sp := r.StartPhase(telemetry.PhaseParTask)
			runTile(w, I, J)
			r.EndPhase(telemetry.PhaseParTask, sp)
			r.Inc(telemetry.CtrParTasks)
			if J+1 < nb && deps[I*nb+J+1].Add(-1) == 0 {
				ready <- I*nb + J + 1
			}
			if I < J && deps[(I+1)*nb+J].Add(-1) == 0 {
				ready <- (I+1)*nb + J
			}
			if int(finished.Add(1)) == total {
				for k := 0; k < workers; k++ {
					ready <- -1
				}
			}
		}
	})
}
