package analytic

import "fmt"

// BMatchingResult holds the output of the independent b0-matching recurrence
// (Algorithm 3). Dc(i, j) denotes the probability that choice number c
// (1-based, c ≤ b0) of peer i is peer j.
type BMatchingResult struct {
	// N, P and B0 echo the model parameters.
	N  int
	P  float64
	B0 int
	// SlotMatchProb[c−1][i] is Σ_j Dc(i, j): the probability that peer i's
	// c-th slot is filled.
	SlotMatchProb [][]float64
	// MatchProbAny[i] is the probability that at least the first slot is
	// filled, i.e. that peer i collaborates with anybody (slot fills are
	// nested: slot c fills only if slot c−1 did).
	MatchProbAny []float64
	// Rows maps a tracked peer i to [c−1][j] = Dc(i, j).
	Rows map[int][][]float64
	// ExpectedValue[i] = Σ_c Σ_j Dc(i, j) · value(j) when a partner-value
	// function was supplied, else nil. This powers Figure 11, where
	// value(j) is peer j's upload bandwidth per slot.
	ExpectedValue []float64
}

// BMatchingOptions parameterizes BMatching.
type BMatchingOptions struct {
	// N is the number of peers; P the Erdős–Rényi edge probability; B0 the
	// uniform number of slots per peer.
	N  int
	P  float64
	B0 int
	// TrackRows lists peers whose per-choice distributions are kept whole.
	TrackRows []int
	// PartnerValue, when non-nil, must have length N; the result then
	// contains ExpectedValue[i] = Σ_c Σ_j Dc(i,j)·PartnerValue[j].
	PartnerValue []float64
}

// BMatching evaluates Algorithm 3 — the independent b0-matching recurrence.
// For every pair i < j and choice indices ci, cj it uses the paper's
// Assumption 2 factorization
//
//	D^{cj}_{ci}(i, j) = p · X_i(ci, j) · X_j(cj, i)
//
// where X_i(c, j) = P(choice c−1 of i matched better than j) − P(choice c of
// i matched better than j), with the convention that "choice 0" is always
// matched better than anybody. (The report's formula (4) prints the
// summation bounds with i and j swapped relative to its own Assumption 2 and
// Algorithm 3 initialization; we implement the semantically consistent
// version, which our Monte-Carlo tests validate.)
//
// Since X_i does not depend on cj, each pair costs O(b0):
// Dci(i,j) = p·X_i(ci)·ΣX_j and Dcj(j,i) = p·X_j(cj)·ΣX_i.
// Total cost is O(n²·b0) time and O(n·b0) memory.
func BMatching(opt BMatchingOptions) (*BMatchingResult, error) {
	n, p, b0 := opt.N, opt.P, opt.B0
	if n < 0 {
		return nil, fmt.Errorf("analytic: negative population %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("analytic: probability %v out of [0,1]", p)
	}
	if b0 < 1 {
		return nil, fmt.Errorf("analytic: b0 = %d, want >= 1", b0)
	}
	if opt.PartnerValue != nil && len(opt.PartnerValue) != n {
		return nil, fmt.Errorf("analytic: PartnerValue has %d entries, want %d", len(opt.PartnerValue), n)
	}
	res := &BMatchingResult{
		N:             n,
		P:             p,
		B0:            b0,
		SlotMatchProb: make([][]float64, b0),
		MatchProbAny:  make([]float64, n),
		Rows:          make(map[int][][]float64, len(opt.TrackRows)),
	}
	for c := 0; c < b0; c++ {
		res.SlotMatchProb[c] = make([]float64, n)
	}
	for _, i := range opt.TrackRows {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("analytic: tracked row %d out of range [0,%d)", i, n)
		}
		rows := make([][]float64, b0)
		for c := range rows {
			rows[c] = make([]float64, n)
		}
		res.Rows[i] = rows
	}
	if opt.PartnerValue != nil {
		res.ExpectedValue = make([]float64, n)
	}

	// colCum[c][j] = Σ_{k<i} D_{c+1}(j, k) for the current outer row i.
	colCum := make([][]float64, b0)
	for c := range colCum {
		colCum[c] = make([]float64, n)
	}
	// Scratch buffers reused across pairs.
	rowCum := make([]float64, b0) // Σ_{k<j} D_{c+1}(i, k) while scanning row i
	xi := make([]float64, b0)
	xj := make([]float64, b0)

	for i := 0; i < n; i++ {
		for c := 0; c < b0; c++ {
			rowCum[c] = colCum[c][i]
		}
		rowOut := res.Rows[i]
		for j := i + 1; j < n; j++ {
			// X factors before any update for this pair.
			var sumXi, sumXj float64
			for c := 0; c < b0; c++ {
				prev := 1.0
				if c > 0 {
					prev = rowCum[c-1]
				}
				xi[c] = prev - rowCum[c]
				sumXi += xi[c]
				prev = 1.0
				if c > 0 {
					prev = colCum[c-1][j]
				}
				xj[c] = prev - colCum[c][j]
				sumXj += xj[c]
			}
			pairProb := p * sumXi * sumXj // P(i and j matched at all)
			for c := 0; c < b0; c++ {
				dci := p * xi[c] * sumXj // Dc(i, j)
				dcj := p * xj[c] * sumXi // Dc(j, i)
				rowCum[c] += dci
				colCum[c][j] += dcj
				res.SlotMatchProb[c][i] += dci
				res.SlotMatchProb[c][j] += dcj
				if rowOut != nil {
					rowOut[c][j] = dci
				}
				if out := res.Rows[j]; out != nil {
					out[c][i] = dcj
				}
			}
			if res.ExpectedValue != nil {
				res.ExpectedValue[i] += pairProb * opt.PartnerValue[j]
				res.ExpectedValue[j] += pairProb * opt.PartnerValue[i]
			}
		}
	}
	for i := 0; i < n; i++ {
		res.MatchProbAny[i] = res.SlotMatchProb[0][i]
	}
	return res, nil
}
