package analytic

import "math"

// FluidDensity is the paper's Conjecture 1 fluid limit for the best peer
// (α = 0): the rescaled mate-rank density
//
//	M_{0,d}(β) = d · e^{−βd},
//
// where β is the mate's rank as a fraction of n and d the mean degree.
func FluidDensity(d, beta float64) float64 {
	if beta < 0 {
		return 0
	}
	return d * math.Exp(-beta*d)
}

// FluidComparisonPoint pairs the finite-n model value n·D(0, j) with its
// fluid limit at β = j/n.
type FluidComparisonPoint struct {
	Beta  float64
	Model float64 // n · D(0, ⌊βn⌋) from Algorithm 2
	Fluid float64 // d · e^{−βd}
}

// CompareFluid evaluates the best peer's rescaled mate distribution from
// Algorithm 2 against the fluid limit on `points` evenly spaced β values in
// (0, maxBeta]. It quantifies Theorem 2/3 + Conjecture 1: the finite model
// converges to the fluid density as n grows with d = p·(n−1) fixed.
func CompareFluid(n int, d float64, maxBeta float64, points int) ([]FluidComparisonPoint, error) {
	p := d / float64(n-1)
	res, err := OneMatching(n, p, 0)
	if err != nil {
		return nil, err
	}
	row := res.Rows[0]
	out := make([]FluidComparisonPoint, 0, points)
	for k := 1; k <= points; k++ {
		beta := maxBeta * float64(k) / float64(points)
		j := int(beta * float64(n))
		if j < 1 {
			j = 1
		}
		if j >= n {
			j = n - 1
		}
		out = append(out, FluidComparisonPoint{
			Beta:  beta,
			Model: float64(n) * row[j],
			Fluid: FluidDensity(d, beta),
		})
	}
	return out, nil
}
