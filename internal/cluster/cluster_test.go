package cluster

import (
	"math"
	"testing"

	"stratmatch/internal/core"
	"stratmatch/internal/rng"
)

func TestAnalyzeConstantMatchesTheory(t *testing.T) {
	// Table 1 left half: constant b0-matching on a complete graph gives
	// clusters of exactly b0+1 and the closed-form MMO.
	for _, b0 := range []int{2, 3, 4, 5, 6, 7} {
		n := 100 * (b0 + 1)
		rep := AnalyzeConstant(n, b0)
		if rep.Matched != n {
			t.Fatalf("b0=%d: %d matched, want %d", b0, rep.Matched, n)
		}
		if got, want := rep.MeanClusterSize, float64(b0+1); got != want {
			t.Errorf("b0=%d: mean cluster %v, want %v", b0, got, want)
		}
		if got, want := rep.MMO, MMOClosedForm(b0); math.Abs(got-want) > 1e-9 {
			t.Errorf("b0=%d: MMO %v, want %v", b0, got, want)
		}
	}
}

func TestMMOClosedFormTable1(t *testing.T) {
	// The paper's Table 1 MMO row: 1.67, 2.5, 3.2, 4, 4.71, 5.5.
	want := map[int]float64{2: 5.0 / 3, 3: 2.5, 4: 3.2, 5: 4, 6: 33.0 / 7, 7: 5.5}
	for b0, w := range want {
		if got := MMOClosedForm(b0); math.Abs(got-w) > 1e-9 {
			t.Errorf("MMO(%d) = %v, want %v", b0, got, w)
		}
	}
	if MMOClosedForm(0) != 0 || MMOClosedForm(-1) != 0 {
		t.Error("degenerate b0 should give 0")
	}
}

func TestMMOConvergesToLimit(t *testing.T) {
	// MMO(b0) → 3·b0/4; the relative gap must shrink.
	prevGap := math.Inf(1)
	for _, b0 := range []int{4, 16, 64, 256} {
		gap := math.Abs(MMOClosedForm(b0)-MMOLimit(b0)) / MMOLimit(b0)
		if gap >= prevGap {
			t.Fatalf("relative gap did not shrink at b0=%d: %v >= %v", b0, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 0.01 {
		t.Fatalf("gap at b0=256 still %v", prevGap)
	}
}

func TestAnalyzeEmptyAndIsolated(t *testing.T) {
	rep := Analyze(core.NewUniformConfig(10, 1))
	if rep.Matched != 0 || rep.Components != 0 || rep.MMO != 0 {
		t.Fatalf("empty config report: %+v", rep)
	}
	if rep.MeanClusterSize != 0 {
		t.Fatalf("mean cluster on empty config: %v", rep.MeanClusterSize)
	}
}

func TestAnalyzeCountsIsolatedCorrectly(t *testing.T) {
	// 5 peers, one pair matched: 1 component of size 2, 3 isolated.
	c := core.NewUniformConfig(5, 1)
	if err := c.Match(1, 3); err != nil {
		t.Fatal(err)
	}
	rep := Analyze(c)
	if rep.Matched != 2 || rep.Components != 1 || rep.MaxClusterSize != 2 {
		t.Fatalf("report %+v", rep)
	}
	if rep.MMO != 2 {
		t.Fatalf("MMO %v, want 2 (|1-3|)", rep.MMO)
	}
}

func TestPhaseTransition(t *testing.T) {
	// Figure 6: at σ=0 clusters have size b̄+1; by σ=0.3 the mean cluster
	// size must have exploded and the MMO must have dropped.
	const n, mean = 8000, 6.0
	r := rng.New(1)
	at0 := Analyze(core.StableCompleteUniform(n, 6))
	at03 := AnalyzeNormal(n, mean, 0.3, r)
	if at03.MeanClusterSize < 10*at0.MeanClusterSize {
		t.Fatalf("no cluster explosion: σ=0 gives %v, σ=0.3 gives %v",
			at0.MeanClusterSize, at03.MeanClusterSize)
	}
	if at03.MMO >= at0.MMO {
		t.Fatalf("MMO did not drop: σ=0 gives %v, σ=0.3 gives %v", at0.MMO, at03.MMO)
	}
}

func TestNormalBudgetsPositive(t *testing.T) {
	r := rng.New(2)
	for _, b := range NormalBudgets(5000, 2, 1.5, r) {
		if b < 1 {
			t.Fatalf("budget %d < 1", b)
		}
	}
}

func TestSigmaSweepShape(t *testing.T) {
	sigmas := []float64{0, 0.3, 1.0}
	pts := SigmaSweep(4200, 6, sigmas, 2, 7, 0) // 4200 divisible by b̄+1 = 7
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for i, pt := range pts {
		if pt.Sigma != sigmas[i] {
			t.Fatalf("order not preserved: %+v", pts)
		}
	}
	if pts[0].MeanClusterSize != 7 {
		t.Fatalf("σ=0 cluster size %v, want 7", pts[0].MeanClusterSize)
	}
	if pts[1].MeanClusterSize <= pts[0].MeanClusterSize {
		t.Fatal("no growth after transition")
	}
	if pts[1].MMO >= pts[0].MMO {
		t.Fatal("MMO did not drop after transition")
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(6000, []int{2, 3, 4}, 0.2, 2, 11, 0)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, row := range rows {
		if row.ConstClusterSize != float64(row.B+1) {
			t.Errorf("b=%d const cluster %v", row.B, row.ConstClusterSize)
		}
		if math.Abs(row.ConstMMO-MMOClosedForm(row.B)) > 0.05 {
			t.Errorf("b=%d const MMO %v, want %v", row.B, row.ConstMMO, MMOClosedForm(row.B))
		}
		// Variable budgets must produce larger clusters but smaller MMO.
		if row.NormalClusterSize <= row.ConstClusterSize {
			t.Errorf("b=%d: normal cluster %v not above const %v",
				row.B, row.NormalClusterSize, row.ConstClusterSize)
		}
		if row.NormalMMO >= row.ConstMMO {
			t.Errorf("b=%d: normal MMO %v not below const %v",
				row.B, row.NormalMMO, row.ConstMMO)
		}
		// Cluster sizes grow quickly with b̄ (factorial-like).
		if i > 0 && row.NormalClusterSize <= rows[i-1].NormalClusterSize {
			t.Errorf("cluster size not growing with b̄: %+v", rows)
		}
	}
}

// TestAnalyzerReuseMatchesOneShot: a reused Analyzer must report exactly
// what fresh scratch reports, across mixed sizes (stale union-find or
// component marks would skew components/MMO).
func TestAnalyzerReuseMatchesOneShot(t *testing.T) {
	var a Analyzer
	for _, n := range []int{120, 60, 121, 120} {
		r1, r2 := rng.New(uint64(n)), rng.New(uint64(n))
		got := a.AnalyzeNormal(n, 6, 0.2, r1)
		want := AnalyzeNormal(n, 6, 0.2, r2)
		if got != want {
			t.Fatalf("n=%d: reused analyzer %+v, fresh %+v", n, got, want)
		}
		gotC := a.AnalyzeConstant(n-n%4, 3)
		wantC := AnalyzeConstant(n-n%4, 3)
		if gotC != wantC {
			t.Fatalf("n=%d: reused constant %+v, fresh %+v", n, gotC, wantC)
		}
	}
}

// TestAnalyzerSteadyStateAllocs pins the scratch reuse: after warmup, an
// Analyzer's own bookkeeping allocates nothing (the configuration under
// analysis still allocates inside core, which is out of scope here).
func TestAnalyzerSteadyStateAllocs(t *testing.T) {
	var a Analyzer
	cfg := core.StableCompleteUniform(240, 3)
	a.Analyze(cfg)
	if allocs := testing.AllocsPerRun(100, func() { a.Analyze(cfg) }); allocs != 0 {
		t.Fatalf("Analyzer.Analyze allocates %.1f objects per call, want 0", allocs)
	}
}

// TestAnalyzeDrawSteadyStateAllocs pins the arena layer end to end: a
// warmed-up Analyzer performs whole draws — budget sampling, stable
// matching, cluster analysis — without allocating. This is the per-rep unit
// of Table 1 and Figure 6.
func TestAnalyzeDrawSteadyStateAllocs(t *testing.T) {
	var a Analyzer
	r := rng.New(4)
	a.AnalyzeNormal(2000, 6, 0.2, r) // size scratch + arena (headroom absorbs total drift)
	if allocs := testing.AllocsPerRun(50, func() { a.AnalyzeNormal(2000, 6, 0.2, r) }); allocs != 0 {
		t.Fatalf("AnalyzeNormal allocates %.2f objects per draw at steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { a.AnalyzeConstant(2000, 4) }); allocs != 0 {
		t.Fatalf("AnalyzeConstant allocates %.2f objects per draw at steady state, want 0", allocs)
	}
}

// TestTable1OrderIndependence pins the descending-budget scheduling trick:
// every column derives its randomness from its budget alone, so the rows
// must match fresh per-column computations in natural order.
func TestTable1OrderIndependence(t *testing.T) {
	bs := []int{2, 3, 4, 5}
	const n, sigma, reps, seed = 600, 0.2, 2, uint64(21)
	rows := Table1(n, bs, sigma, reps, seed, 1)
	for i, b := range bs {
		var a Analyzer
		cst := a.AnalyzeConstant(n, b)
		r := rng.New(seed + uint64(b)*0x51_7c_c1b7)
		var sumSize, sumMMO float64
		for rep := 0; rep < reps; rep++ {
			rp := a.AnalyzeNormal(n, float64(b), sigma, r)
			sumSize += rp.MeanClusterSize
			sumMMO += rp.MMO
		}
		want := TableRow{
			B:                 b,
			ConstClusterSize:  cst.MeanClusterSize,
			ConstMMO:          cst.MMO,
			NormalClusterSize: sumSize / float64(reps),
			NormalMMO:         sumMMO / float64(reps),
		}
		if rows[i] != want {
			t.Fatalf("b=%d: Table1 row %+v, fresh computation %+v", b, rows[i], want)
		}
	}
}

func BenchmarkAnalyzeNormal(b *testing.B) {
	r := rng.New(1)
	var a Analyzer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.AnalyzeNormal(20000, 6, 0.2, r)
	}
}
