package cluster

import (
	"stratmatch/internal/par"
	"stratmatch/internal/rng"
)

// SweepPoint is one sample of the σ phase-transition sweep (Figure 6).
type SweepPoint struct {
	Sigma           float64
	MeanClusterSize float64
	MMO             float64
}

// SigmaSweep evaluates AnalyzeNormal over the given σ values, averaging
// `reps` independent samples per σ. Points are computed in parallel over a
// bounded worker pool (workers ≤ 0 means GOMAXPROCS); the output preserves
// the order of sigmas, and every point derives its seed from its index, so
// the result is identical for any worker count. The sweep reproduces
// Figure 6's phase transition: mean cluster size explodes around σ ≈ 0.15
// while the MMO drops.
func SigmaSweep(n int, mean float64, sigmas []float64, reps int, seed uint64, workers int) []SweepPoint {
	if reps < 1 {
		reps = 1
	}
	points := make([]SweepPoint, len(sigmas))
	// One Analyzer per worker: the union-find scratch is reused across all
	// of a worker's points without crossing goroutines.
	analyzers := make([]Analyzer, par.Workers(len(sigmas), workers))
	par.ForEachWorker(len(sigmas), workers, func(worker, idx int) {
		sigma := sigmas[idx]
		// Derive a per-point seed so results do not depend on worker
		// scheduling.
		r := rng.New(seed + uint64(idx)*0x9e3779b9)
		a := &analyzers[worker]
		var sumSize, sumMMO float64
		for rep := 0; rep < reps; rep++ {
			rp := a.AnalyzeNormal(n, mean, sigma, r)
			sumSize += rp.MeanClusterSize
			sumMMO += rp.MMO
		}
		points[idx] = SweepPoint{
			Sigma:           sigma,
			MeanClusterSize: sumSize / float64(reps),
			MMO:             sumMMO / float64(reps),
		}
	})
	return points
}

// TableRow is one (b̄ or b0) column of the paper's Table 1.
type TableRow struct {
	B int
	// Constant b0-matching.
	ConstClusterSize float64
	ConstMMO         float64
	// Variable N(b̄, σ²)-matching with σ = 0.2.
	NormalClusterSize float64
	NormalMMO         float64
}

// Table1 reproduces the paper's Table 1 for b in bs (the paper uses 2..7),
// with `reps` independent samples for the stochastic normal-budget half.
// Columns are computed in parallel over `workers` goroutines (0 =
// GOMAXPROCS) with per-column sub-streams, so the rows are identical for
// any worker count.
func Table1(n int, bs []int, sigma float64, reps int, seed uint64, workers int) []TableRow {
	rows := make([]TableRow, len(bs))
	analyzers := make([]Analyzer, par.Workers(len(bs), workers))
	// Process columns in descending budget order: each column's randomness
	// derives from its b alone, so the rows are order-independent, and a
	// worker's arena is sized by its first (largest) column instead of
	// regrowing at every step of an ascending b = 2..7 scan.
	order := make([]int, len(bs))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && bs[order[j-1]] < bs[order[j]]; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	par.ForEachWorker(len(bs), workers, func(worker, t int) {
		i := order[t]
		b := bs[i]
		a := &analyzers[worker]
		cst := a.AnalyzeConstant(n, b)
		r := rng.New(seed + uint64(b)*0x51_7c_c1b7)
		var sumSize, sumMMO float64
		for rep := 0; rep < reps; rep++ {
			rp := a.AnalyzeNormal(n, float64(b), sigma, r)
			sumSize += rp.MeanClusterSize
			sumMMO += rp.MMO
		}
		rows[i] = TableRow{
			B:                 b,
			ConstClusterSize:  cst.MeanClusterSize,
			ConstMMO:          cst.MMO,
			NormalClusterSize: sumSize / float64(reps),
			NormalMMO:         sumMMO / float64(reps),
		}
	})
	return rows
}
