// Package cluster analyzes the structure of stable collaboration graphs:
// connected components ("clusters") and rank locality ("stratification"),
// the subjects of the paper's Section 4, Table 1 and Figures 4–6.
//
// The central stratification statistic is the Mean Max Offset (MMO): the
// average, over peers with at least one mate, of the largest rank distance
// between a peer and its collaboration-graph neighbors. Small MMO means
// peers only ever talk to peers of nearly identical rank — strong
// stratification — even when the clusters themselves are huge.
package cluster

import (
	"stratmatch/internal/core"
	"stratmatch/internal/rng"
)

// Report summarizes the cluster and stratification structure of a stable
// configuration.
type Report struct {
	// Peers is the population size n.
	Peers int
	// Matched is the number of peers with at least one mate.
	Matched int
	// Components is the number of connected components among matched peers
	// (isolated peers are not counted as components).
	Components int
	// MeanClusterSize is Matched / Components — the paper's "Average
	// Cluster Size" (0 when there are no components).
	MeanClusterSize float64
	// MaxClusterSize is the size of the largest component.
	MaxClusterSize int
	// MMO is the Mean Max Offset over matched peers.
	MMO float64
}

// Analyze computes the cluster report of a configuration.
func Analyze(c *core.Config) Report {
	n := c.N()
	rep := Report{Peers: n}

	// Union-find over the collaboration edges.
	parent := make([]int, n)
	size := make([]int, n)
	for i := range parent {
		parent[i] = i
		size[i] = 1
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}

	var mmoSum int64
	for p := 0; p < n; p++ {
		mates := c.Mates(p)
		if len(mates) == 0 {
			continue
		}
		rep.Matched++
		best, worst := mates[0], mates[len(mates)-1]
		off := p - best
		if worst-p > off {
			off = worst - p
		}
		mmoSum += int64(off)
		for _, q := range mates {
			if q > p {
				union(p, q)
			}
		}
	}
	if rep.Matched == 0 {
		return rep
	}
	rep.MMO = float64(mmoSum) / float64(rep.Matched)

	seen := make(map[int]struct{})
	for p := 0; p < n; p++ {
		if c.Degree(p) == 0 {
			continue
		}
		root := find(p)
		if _, ok := seen[root]; ok {
			continue
		}
		seen[root] = struct{}{}
		rep.Components++
		if size[root] > rep.MaxClusterSize {
			rep.MaxClusterSize = size[root]
		}
	}
	rep.MeanClusterSize = float64(rep.Matched) / float64(rep.Components)
	return rep
}

// MMOClosedForm returns the exact Mean Max Offset of constant b0-matching on
// a complete graph whose size is a multiple of b0+1: the average over one
// (b0+1)-clique of each member's distance to its farthest clique-mate,
//
//	MMO(b0) = (Σ_{i=0}^{b0} max(i, b0−i)) / (b0+1),
//
// which converges to 3·b0/4 (the paper's Section 4.2 formula).
func MMOClosedForm(b0 int) float64 {
	if b0 <= 0 {
		return 0
	}
	sum := 0
	for i := 0; i <= b0; i++ {
		off := i
		if b0-i > off {
			off = b0 - i
		}
		sum += off
	}
	return float64(sum) / float64(b0+1)
}

// MMOLimit is the asymptote of MMOClosedForm: 3·b0/4.
func MMOLimit(b0 int) float64 { return 0.75 * float64(b0) }

// NormalBudgets samples n slot budgets from the rounded positive normal
// N(mean, sigma²) — the paper's variable b-matching model.
func NormalBudgets(n int, mean, sigma float64, r *rng.RNG) []int {
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = r.RoundedPositiveNormal(mean, sigma)
	}
	return budgets
}

// AnalyzeNormal builds the stable configuration on the complete graph with
// N(mean, sigma²) budgets and returns its cluster report. It is the unit of
// work behind Table 1's right half and Figure 6.
func AnalyzeNormal(n int, mean, sigma float64, r *rng.RNG) Report {
	return Analyze(core.StableComplete(NormalBudgets(n, mean, sigma, r)))
}

// AnalyzeConstant builds the stable configuration of constant b0-matching on
// the complete graph of n peers and returns its cluster report (Table 1's
// left half).
func AnalyzeConstant(n, b0 int) Report {
	return Analyze(core.StableCompleteUniform(n, b0))
}
