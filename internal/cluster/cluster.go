// Package cluster analyzes the structure of stable collaboration graphs:
// connected components ("clusters") and rank locality ("stratification"),
// the subjects of the paper's Section 4, Table 1 and Figures 4–6.
//
// The central stratification statistic is the Mean Max Offset (MMO): the
// average, over peers with at least one mate, of the largest rank distance
// between a peer and its collaboration-graph neighbors. Small MMO means
// peers only ever talk to peers of nearly identical rank — strong
// stratification — even when the clusters themselves are huge.
package cluster

import (
	"stratmatch/internal/core"
	"stratmatch/internal/rng"
)

// Report summarizes the cluster and stratification structure of a stable
// configuration.
type Report struct {
	// Peers is the population size n.
	Peers int
	// Matched is the number of peers with at least one mate.
	Matched int
	// Components is the number of connected components among matched peers
	// (isolated peers are not counted as components).
	Components int
	// MeanClusterSize is Matched / Components — the paper's "Average
	// Cluster Size" (0 when there are no components).
	MeanClusterSize float64
	// MaxClusterSize is the size of the largest component.
	MaxClusterSize int
	// MMO is the Mean Max Offset over matched peers.
	MMO float64
}

// Analyzer computes cluster reports while reusing its union-find and
// component-marking scratch across calls — sweep loops (Figure 6, Table 1)
// analyze thousands of configurations, and the per-call array allocations
// used to be a measured hot spot. The zero value is ready to use; an
// Analyzer is single-goroutine (parallel sweeps keep one per worker).
type Analyzer struct {
	parent []int
	size   []int
	// seenRoot[root] == generation marks roots already counted in the
	// current call; bumping the generation clears the marks in O(1).
	seenRoot   []uint32
	generation uint32
	// budgets is scratch for AnalyzeNormal's per-peer slot samples.
	budgets []int
	// arena recycles the Config slab and solver scratch across the
	// analyzer's stable-matching draws: AnalyzeNormal and AnalyzeConstant
	// used to construct a fresh Config per call, the dominant allocation
	// of the Table 1 / Figure 6 sweeps.
	arena core.Arena
}

// grow resizes the scratch to n peers and resets the union-find.
func (a *Analyzer) grow(n int) {
	if cap(a.parent) < n {
		a.parent = make([]int, n)
		a.size = make([]int, n)
		a.seenRoot = make([]uint32, n)
		a.generation = 0
	}
	a.parent = a.parent[:n]
	a.size = a.size[:n]
	a.seenRoot = a.seenRoot[:n]
	for i := 0; i < n; i++ {
		a.parent[i] = i
		a.size[i] = 1
	}
	a.generation++
	if a.generation == 0 { // wrapped: marks are stale, clear them once
		for i := range a.seenRoot {
			a.seenRoot[i] = 0
		}
		a.generation = 1
	}
}

func (a *Analyzer) find(x int) int {
	for a.parent[x] != x {
		a.parent[x] = a.parent[a.parent[x]]
		x = a.parent[x]
	}
	return x
}

func (a *Analyzer) union(x, y int) {
	rx, ry := a.find(x), a.find(y)
	if rx == ry {
		return
	}
	if a.size[rx] < a.size[ry] {
		rx, ry = ry, rx
	}
	a.parent[ry] = rx
	a.size[rx] += a.size[ry]
}

// Analyze computes the cluster report of a configuration.
func (a *Analyzer) Analyze(c *core.Config) Report {
	n := c.N()
	rep := Report{Peers: n}
	a.grow(n)

	var mmoSum int64
	for p := 0; p < n; p++ {
		mates := c.Mates(p)
		if len(mates) == 0 {
			continue
		}
		rep.Matched++
		best, worst := mates[0], mates[len(mates)-1]
		off := p - best
		if worst-p > off {
			off = worst - p
		}
		mmoSum += int64(off)
		for _, q := range mates {
			if q > p {
				a.union(p, q)
			}
		}
	}
	if rep.Matched == 0 {
		return rep
	}
	rep.MMO = float64(mmoSum) / float64(rep.Matched)

	for p := 0; p < n; p++ {
		if c.Degree(p) == 0 {
			continue
		}
		root := a.find(p)
		if a.seenRoot[root] == a.generation {
			continue
		}
		a.seenRoot[root] = a.generation
		rep.Components++
		if a.size[root] > rep.MaxClusterSize {
			rep.MaxClusterSize = a.size[root]
		}
	}
	rep.MeanClusterSize = float64(rep.Matched) / float64(rep.Components)
	return rep
}

// Analyze computes the cluster report of a configuration with one-shot
// scratch. Loops should hold an Analyzer and call its method instead.
func Analyze(c *core.Config) Report {
	var a Analyzer
	return a.Analyze(c)
}

// MMOClosedForm returns the exact Mean Max Offset of constant b0-matching on
// a complete graph whose size is a multiple of b0+1: the average over one
// (b0+1)-clique of each member's distance to its farthest clique-mate,
//
//	MMO(b0) = (Σ_{i=0}^{b0} max(i, b0−i)) / (b0+1),
//
// which converges to 3·b0/4 (the paper's Section 4.2 formula).
func MMOClosedForm(b0 int) float64 {
	if b0 <= 0 {
		return 0
	}
	sum := 0
	for i := 0; i <= b0; i++ {
		off := i
		if b0-i > off {
			off = b0 - i
		}
		sum += off
	}
	return float64(sum) / float64(b0+1)
}

// MMOLimit is the asymptote of MMOClosedForm: 3·b0/4.
func MMOLimit(b0 int) float64 { return 0.75 * float64(b0) }

// NormalBudgets samples n slot budgets from the rounded positive normal
// N(mean, sigma²) — the paper's variable b-matching model.
func NormalBudgets(n int, mean, sigma float64, r *rng.RNG) []int {
	budgets := make([]int, n)
	fillNormalBudgets(budgets, mean, sigma, r)
	return budgets
}

// fillNormalBudgets is the shared sampling loop behind NormalBudgets and
// the Analyzer's scratch-reusing path.
func fillNormalBudgets(dst []int, mean, sigma float64, r *rng.RNG) {
	for i := range dst {
		dst[i] = r.RoundedPositiveNormal(mean, sigma)
	}
}

// AnalyzeNormal builds the stable configuration on the complete graph with
// N(mean, sigma²) budgets and returns its cluster report. It is the unit of
// work behind Table 1's right half and Figure 6; the budget scratch and the
// configuration arena are reused across calls, so a draw costs zero
// steady-state allocations.
func (a *Analyzer) AnalyzeNormal(n int, mean, sigma float64, r *rng.RNG) Report {
	if cap(a.budgets) < n {
		a.budgets = make([]int, n)
	}
	a.budgets = a.budgets[:n]
	fillNormalBudgets(a.budgets, mean, sigma, r)
	return a.Analyze(a.arena.StableComplete(a.budgets))
}

// AnalyzeConstant builds the stable configuration of constant b0-matching on
// the complete graph of n peers and returns its cluster report (Table 1's
// left half). Like AnalyzeNormal it draws into the analyzer-owned arena.
func (a *Analyzer) AnalyzeConstant(n, b0 int) Report {
	return a.Analyze(a.arena.StableCompleteUniform(n, b0))
}

// AnalyzeNormal is the one-shot form of Analyzer.AnalyzeNormal.
func AnalyzeNormal(n int, mean, sigma float64, r *rng.RNG) Report {
	var a Analyzer
	return a.AnalyzeNormal(n, mean, sigma, r)
}

// AnalyzeConstant is the one-shot form of Analyzer.AnalyzeConstant.
func AnalyzeConstant(n, b0 int) Report {
	var a Analyzer
	return a.AnalyzeConstant(n, b0)
}
