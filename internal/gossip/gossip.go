// Package gossip implements decentralized rank discovery through a
// peer-sampling service, the mechanism the paper points at (Jelasity,
// Guerraoui, Kermarrec) for how a peer learns where it stands in the global
// ranking without any central authority.
//
// Every node knows only its own score. Nodes keep a bounded view of
// (node, score) samples; each round every node does a push-pull exchange
// with a random contact from its view, merging views and keeping a random
// bounded subset. Every sample a node ever observes also feeds a running
// estimate of its own rank: the observed fraction of strictly better scores,
// scaled by the population size. With near-uniform sampling the estimate is
// unbiased and its error shrinks as observations accumulate, which is what
// makes the paper's global-ranking machinery implementable: initiatives only
// need each peer's (approximate) rank.
package gossip

import (
	"fmt"

	"stratmatch/internal/rng"
)

// Sample is one gossiped (node, score) pair.
type Sample struct {
	ID    int
	Score float64
}

type node struct {
	id    int
	score float64
	view  []Sample
	// Running rank statistics over every observed sample.
	seen   int
	better int
}

// Network is a gossiping population. Create with New, advance with Round.
// Rounds reuse the network-owned scratch buffers below, so steady-state
// gossiping is allocation-free (rounds used to churn ~10 MB/run of merge
// maps and view copies).
type Network struct {
	nodes    []*node
	viewSize int
	r        *rng.RNG

	// Round/exchange scratch: the shuffled node order, the merged sample
	// buffer, and a generation-stamped dedupe table indexed by node id.
	order    []int
	merged   []Sample
	uniq     []Sample
	lastSeen []uint64
	gen      uint64
}

// New builds a gossip network over the given scores. Initial views are
// drawn uniformly (the bootstrap a tracker or seed list provides).
func New(scores []float64, viewSize int, seed uint64) (*Network, error) {
	n := len(scores)
	if n < 2 {
		return nil, fmt.Errorf("gossip: population %d too small", n)
	}
	if viewSize < 1 || viewSize >= n {
		return nil, fmt.Errorf("gossip: view size %d out of [1, %d)", viewSize, n)
	}
	nw := &Network{
		viewSize: viewSize,
		r:        rng.New(seed),
		order:    make([]int, n),
		merged:   make([]Sample, 0, 2*viewSize+2),
		uniq:     make([]Sample, 0, 2*viewSize+2),
		lastSeen: make([]uint64, n),
	}
	for i := range nw.order {
		nw.order[i] = i
	}
	nw.nodes = make([]*node, n)
	for i := range nw.nodes {
		// Views live in fixed-capacity backing arrays sized to the bound a
		// view can ever reach, so exchanges never reallocate them.
		nw.nodes[i] = &node{id: i, score: scores[i], view: make([]Sample, 0, viewSize)}
	}
	for _, nd := range nw.nodes {
		for len(nd.view) < viewSize {
			j := nw.r.Intn(n)
			if j != nd.id {
				nd.view = append(nd.view, Sample{ID: j, Score: scores[j]})
				nd.observe(Sample{ID: j, Score: scores[j]})
			}
		}
	}
	return nw, nil
}

// N is the population size.
func (nw *Network) N() int { return len(nw.nodes) }

func (nd *node) observe(s Sample) {
	if s.ID == nd.id {
		return
	}
	nd.seen++
	if s.Score > nd.score {
		nd.better++
	}
}

// Round performs one gossip round: every node, in random order, push-pull
// exchanges its view with a uniformly random contact from that view.
func (nw *Network) Round() {
	// Re-shuffling the persistent order buffer draws a fresh uniform
	// permutation without Perm's per-round allocation.
	nw.r.Shuffle(nw.order)
	for _, idx := range nw.order {
		a := nw.nodes[idx]
		if len(a.view) == 0 {
			continue
		}
		b := nw.nodes[a.view[nw.r.Intn(len(a.view))].ID]
		nw.exchange(a, b)
	}
}

// exchange merges both views plus each other's descriptor into the shared
// scratch, lets both nodes observe all fresh samples, and refills both
// views with a random deduplicated subset.
func (nw *Network) exchange(a, b *node) {
	nw.merged = nw.merged[:0]
	nw.merged = append(nw.merged, a.view...)
	nw.merged = append(nw.merged, b.view...)
	nw.merged = append(nw.merged, Sample{ID: a.id, Score: a.score}, Sample{ID: b.id, Score: b.score})

	for _, s := range b.view {
		a.observe(s)
	}
	a.observe(Sample{ID: b.id, Score: b.score})
	for _, s := range a.view {
		b.observe(s)
	}
	b.observe(Sample{ID: a.id, Score: a.score})

	// merged is a stable copy of both inputs, so refilling the views in
	// place cannot corrupt it.
	nw.refillView(a)
	nw.refillView(b)
}

// refillView replaces nd's view with a uniformly drawn deduplicated subset
// (first occurrence wins, self excluded) of the merged scratch, writing
// into the view's fixed-capacity backing array.
func (nw *Network) refillView(nd *node) {
	nw.gen++
	uniq := nw.uniq[:0]
	for _, s := range nw.merged {
		if s.ID == nd.id || nw.lastSeen[s.ID] == nw.gen {
			continue
		}
		nw.lastSeen[s.ID] = nw.gen
		uniq = append(uniq, s)
	}
	// Partial Fisher–Yates: only the viewSize samples that survive need
	// their final positions drawn.
	keep := len(uniq)
	if keep > nw.viewSize {
		keep = nw.viewSize
	}
	for i := 0; i < keep; i++ {
		j := i + nw.r.Intn(len(uniq)-i)
		uniq[i], uniq[j] = uniq[j], uniq[i]
	}
	nd.view = nd.view[:keep]
	copy(nd.view, uniq[:keep])
	nw.uniq = uniq[:0]
}

// EstimatedRank returns node i's current rank estimate in [0, n−1]: the
// observed fraction of strictly better peers scaled by n−1. Before any
// observation it returns the neutral midpoint.
func (nw *Network) EstimatedRank(i int) float64 {
	nd := nw.nodes[i]
	if nd.seen == 0 {
		return float64(nw.N()-1) / 2
	}
	return float64(nd.better) / float64(nd.seen) * float64(nw.N()-1)
}

// EstimatedRanks returns all current estimates.
func (nw *Network) EstimatedRanks() []float64 {
	return nw.EstimatedRanksInto(make([]float64, nw.N()))
}

// EstimatedRanksInto writes all current estimates into dst (which must have
// length N) and returns it — the allocation-free form for callers that
// measure repeatedly.
func (nw *Network) EstimatedRanksInto(dst []float64) []float64 {
	for i := range dst {
		dst[i] = nw.EstimatedRank(i)
	}
	return dst
}

// View returns a copy of node i's current view (for tests and debugging).
func (nw *Network) View(i int) []Sample {
	return append([]Sample(nil), nw.nodes[i].view...)
}

// MeanAbsRankError compares the estimates against the true ranks implied by
// the score order (trueRank[i] = number of strictly better scores),
// normalized by n.
func (nw *Network) MeanAbsRankError() float64 {
	n := nw.N()
	var sum float64
	for i, nd := range nw.nodes {
		trueBetter := 0
		for _, other := range nw.nodes {
			if other.score > nd.score {
				trueBetter++
			}
		}
		est := nw.EstimatedRank(i)
		diff := est - float64(trueBetter)
		if diff < 0 {
			diff = -diff
		}
		sum += diff
	}
	return sum / float64(n) / float64(n)
}
