package gossip

import (
	"math"
	"testing"

	"stratmatch/internal/rng"
)

func scoresDesc(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = float64(n - i)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]float64{1}, 1, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(scoresDesc(10), 0, 0); err == nil {
		t.Error("view size 0 accepted")
	}
	if _, err := New(scoresDesc(10), 10, 0); err == nil {
		t.Error("view size n accepted")
	}
}

func TestInitialViews(t *testing.T) {
	nw, err := New(scoresDesc(50), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		v := nw.View(i)
		if len(v) != 8 {
			t.Fatalf("node %d view size %d", i, len(v))
		}
		for _, s := range v {
			if s.ID == i {
				t.Fatalf("node %d has itself in view", i)
			}
			if s.Score != float64(50-s.ID) {
				t.Fatalf("corrupted sample %+v", s)
			}
		}
	}
}

func TestViewsStayBoundedAndSelfFree(t *testing.T) {
	nw, err := New(scoresDesc(80), 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		nw.Round()
	}
	for i := 0; i < 80; i++ {
		v := nw.View(i)
		if len(v) > 6 {
			t.Fatalf("node %d view grew to %d", i, len(v))
		}
		ids := make(map[int]bool)
		for _, s := range v {
			if s.ID == i {
				t.Fatalf("node %d gossiped itself into its view", i)
			}
			if ids[s.ID] {
				t.Fatalf("node %d has duplicate %d in view", i, s.ID)
			}
			ids[s.ID] = true
		}
	}
}

func TestRankEstimatesConverge(t *testing.T) {
	nw, err := New(scoresDesc(200), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	initial := nw.MeanAbsRankError()
	for round := 0; round < 40; round++ {
		nw.Round()
	}
	final := nw.MeanAbsRankError()
	if final >= initial {
		t.Fatalf("rank error did not shrink: %v -> %v", initial, final)
	}
	if final > 0.05 {
		t.Fatalf("rank error after 40 rounds: %v, want < 0.05 of n", final)
	}
}

func TestExtremesEstimateCorrectly(t *testing.T) {
	nw, err := New(scoresDesc(100), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 40; round++ {
		nw.Round()
	}
	if est := nw.EstimatedRank(0); est > 5 {
		t.Fatalf("best node estimates rank %v", est)
	}
	if est := nw.EstimatedRank(99); est < 94 {
		t.Fatalf("worst node estimates rank %v", est)
	}
	// Estimated order should correlate with true order: spot-check a
	// handful of quartile pairs.
	for _, pair := range [][2]int{{10, 90}, {25, 75}, {40, 60}} {
		if nw.EstimatedRank(pair[0]) >= nw.EstimatedRank(pair[1]) {
			t.Fatalf("rank order inverted between %d and %d", pair[0], pair[1])
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		nw, err := New(scoresDesc(60), 8, 9)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 10; round++ {
			nw.Round()
		}
		return nw.EstimatedRanks()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("estimates diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNeutralEstimateBeforeObservation(t *testing.T) {
	// A node with seen == 0 cannot happen through New (initial views feed
	// observations), so probe the formula directly on a fresh struct.
	nd := &node{id: 0, score: 1}
	nw := &Network{nodes: []*node{nd, {id: 1, score: 2}}, viewSize: 1, r: rng.New(1)}
	if est := nw.EstimatedRank(0); est != 0.5 {
		t.Fatalf("neutral estimate %v, want midpoint 0.5", est)
	}
}

func TestErrorScalesWithViewSize(t *testing.T) {
	// More gossip (bigger views) after the same rounds should not hurt.
	errFor := func(view int) float64 {
		nw, err := New(scoresDesc(150), view, 11)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 15; round++ {
			nw.Round()
		}
		return nw.MeanAbsRankError()
	}
	small, big := errFor(4), errFor(20)
	if big > small*1.5 {
		t.Fatalf("bigger views much worse: view=4 err %v, view=20 err %v", small, big)
	}
	if math.IsNaN(small) || math.IsNaN(big) {
		t.Fatal("NaN error")
	}
}

// TestRoundSteadyStateAllocs pins the buffer reuse: after construction,
// gossip rounds run out of network-owned scratch and node-owned view
// backing — zero allocations per round.
func TestRoundSteadyStateAllocs(t *testing.T) {
	nw, err := New(scoresDesc(200), 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	nw.Round() // warm any lazily grown scratch
	if allocs := testing.AllocsPerRun(50, nw.Round); allocs != 0 {
		t.Fatalf("gossip Round allocates %.1f objects, want 0", allocs)
	}
}
