// Package emit is the jsonl wire format of a scenario run: a streaming
// btsim.Observer writing one JSON line per sample ("sample"), per scenario
// event ("event" / "checkpoint") and a closing summary ("done"). It is the
// single encoder behind both `btswarm -emit jsonl` and the tracker daemon's
// streamed POST /runs responses, so the two surfaces are byte-identical by
// construction (and pinned so by tests on both sides).
//
// The field orders below are frozen — golden fixtures in cmd/btswarm pin
// them — and fault counters only appear when the run injects faults, so
// fault-free streams keep the original shape byte for byte.
package emit

import (
	"encoding/json"
	"io"
	"math"

	"stratmatch/internal/btsim"
)

// jfloat marshals NaN (a legitimate "no data" sentinel in the series) as
// JSON null, which encoding/json otherwise rejects.
type jfloat float64

func (f jfloat) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(f)) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(f))
}

// Emitter is the streaming Observer: it holds no series state, so a dense
// SampleEvery: 1 run over any horizon streams in O(1) memory. It does not
// implement TelemetryObserver — a run with a telemetry recorder attached
// still produces the plain sample/event/done stream, which is what lets the
// tracker daemon share one process-wide recorder across runs without
// perturbing their output. Use TelemetryEmitter to opt into "telemetry"
// lines.
type Emitter struct {
	enc        *json.Encoder
	flush      func()
	withFaults bool
	err        error
}

// New returns an Emitter writing JSON lines to w. withFaults extends
// samples and the summary with the fault-injection counters (pass
// spec.HasFaults()). If flush is non-nil it is called after every line —
// the chunked-HTTP hook, so a streaming client sees each line as the run
// produces it.
func New(w io.Writer, withFaults bool, flush func()) *Emitter {
	return &Emitter{enc: json.NewEncoder(w), withFaults: withFaults, flush: flush}
}

// Err returns the first write error, if any. Encoding continues to no-op
// after a failure, so a broken pipe surfaces once instead of per line.
func (e *Emitter) Err() error { return e.err }

func (e *Emitter) encode(v any) {
	if e.err != nil {
		return
	}
	if err := e.enc.Encode(v); err != nil {
		e.err = err
		return
	}
	if e.flush != nil {
		e.flush()
	}
}

// sample is the shared shape of a "sample" line; the fault-mode variant
// below embeds it, so the fault-free field order is frozen.
type sample struct {
	Type       string    `json:"type"`
	Round      int       `json:"round"`
	Present    int       `json:"present"`
	Leechers   int       `json:"leechers"`
	Seeds      int       `json:"seeds"`
	Joined     int       `json:"joined"`
	Departed   int       `json:"departed"`
	Completed  int       `json:"completed"`
	MeanDegree jfloat    `json:"mean_degree"`
	StratCorr  jfloat    `json:"strat_corr"`
	ShareRatio [3]jfloat `json:"share_ratio_by_class"`
}

func (e *Emitter) OnSample(pt btsim.SeriesPoint) {
	row := sample{
		Type: "sample", Round: pt.Round, Present: pt.Present,
		Leechers: pt.Leechers, Seeds: pt.Seeds, Joined: pt.Joined,
		Departed: pt.Departed, Completed: pt.Completed,
		MeanDegree: jfloat(pt.MeanDegree), StratCorr: jfloat(pt.StratCorr),
		ShareRatio: [3]jfloat{
			jfloat(pt.ShareRatioByClass[0]),
			jfloat(pt.ShareRatioByClass[1]),
			jfloat(pt.ShareRatioByClass[2]),
		},
	}
	if !e.withFaults {
		e.encode(row)
		return
	}
	e.encode(struct {
		sample
		StaleEdges       int `json:"stale_edges"`
		Crashed          int `json:"crashed"`
		AnnounceFailures int `json:"announce_failures"`
		AnnounceRetries  int `json:"announce_retries"`
	}{
		sample: row, StaleEdges: pt.StaleEdges, Crashed: pt.Crashed,
		AnnounceFailures: pt.AnnounceFailures, AnnounceRetries: pt.AnnounceRetries,
	})
}

func (e *Emitter) OnEvent(ev btsim.RunEvent) {
	if ev.Kind == "checkpoint" {
		// Checkpoints get their own record type: a consumer (or the crash
		// harness) scanning for the last durable point greps one stable
		// shape, and the file for round+1 is guaranteed on disk by the time
		// this line is emitted.
		e.encode(struct {
			Type  string `json:"type"`
			Round int    `json:"round"`
		}{Type: "checkpoint", Round: ev.Round})
		return
	}
	e.encode(struct {
		Type string `json:"type"`
		btsim.RunEvent
	}{Type: "event", RunEvent: ev})
}

// done is the shared shape of the closing "done" line.
type done struct {
	Type              string `json:"type"`
	Round             int    `json:"round"`
	Present           int    `json:"present"`
	PresentSeeds      int    `json:"present_seeds"`
	CompletedLeechers int    `json:"completed_leechers"`
	TotalJoined       int    `json:"total_joined"`
	TotalDeparted     int    `json:"total_departed"`
	MeanCompletion    jfloat `json:"mean_completion_round"`
	StratCorrelation  jfloat `json:"strat_correlation"`
	MeanAbsRankOffset jfloat `json:"mean_abs_rank_offset"`
}

func (e *Emitter) OnDone(m btsim.Metrics) {
	row := done{
		Type: "done", Round: m.Round, Present: m.Present,
		PresentSeeds: m.PresentSeeds, CompletedLeechers: m.CompletedLeechers,
		TotalJoined: len(m.Peers), TotalDeparted: m.TotalDeparted,
		MeanCompletion:    jfloat(m.MeanCompletionRound),
		StratCorrelation:  jfloat(m.StratCorrelation),
		MeanAbsRankOffset: jfloat(m.MeanAbsRankOffset),
	}
	if !e.withFaults {
		e.encode(row)
		return
	}
	e.encode(struct {
		done
		TotalCrashed int `json:"total_crashed"`
	}{done: row, TotalCrashed: m.TotalCrashed})
}

// Suspended writes the daemon's run-suspension trailer: the one extra line
// a streamed run ends with when it is drained to a checkpoint instead of
// finishing. It is deliberately NOT part of the offline format — consumers
// stitching a suspended stream onto a resumed one drop it first.
func (e *Emitter) Suspended(round int, resume string) {
	e.encode(struct {
		Type   string `json:"type"`
		Round  int    `json:"round"`
		Resume string `json:"resume"`
	}{Type: "suspended", Round: round, Resume: resume})
}

// TelemetryEmitter is an Emitter that also implements TelemetryObserver:
// on telemetry-on runs the runner delivers a snapshot after each sample and
// the emitter writes it as a "telemetry" line (the runner never calls it
// otherwise, so telemetry-off streams are byte-identical either way).
type TelemetryEmitter struct {
	Emitter
}

// NewTelemetry returns a TelemetryEmitter writing to w; see New.
func NewTelemetry(w io.Writer, withFaults bool, flush func()) *TelemetryEmitter {
	return &TelemetryEmitter{Emitter{enc: json.NewEncoder(w), withFaults: withFaults, flush: flush}}
}

func (e *TelemetryEmitter) OnTelemetry(round int, snap btsim.TelemetrySnapshot) {
	e.encode(struct {
		Type  string `json:"type"`
		Round int    `json:"round"`
		btsim.TelemetrySnapshot
	}{Type: "telemetry", Round: round, TelemetrySnapshot: snap})
}
