package graph

import (
	"testing"

	"stratmatch/internal/ints"
	"stratmatch/internal/rng"
)

// requireSameGraph fails unless got and want have identical neighbor lists.
func requireSameGraph(t *testing.T, got, want Graph) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("N: got %d, want %d", got.N(), want.N())
	}
	for i := 0; i < want.N(); i++ {
		if !ints.Equal(got.Neighbors(i), want.Neighbors(i)) {
			t.Fatalf("neighbors of %d: got %v, want %v", i, got.Neighbors(i), want.Neighbors(i))
		}
	}
}

// TestArenaErdosRenyiMatchesFresh pins the arena contract: a recycled arena
// fed the same random stream must reproduce the fresh sampler's graph
// exactly, across draws of shifting sizes and densities.
func TestArenaErdosRenyiMatchesFresh(t *testing.T) {
	meta := rng.New(11)
	var a Arena
	for draw := 0; draw < 40; draw++ {
		n := 2 + meta.Intn(300)
		p := float64(1+meta.Intn(20)) / float64(n)
		seed := uint64(500 + draw)
		got := a.ErdosRenyi(n, p, rng.New(seed))
		want := ErdosRenyi(n, p, rng.New(seed))
		requireSameGraph(t, got, want)
	}
}

// TestArenaRelabel checks the relabeled graph against a naive AddEdge
// construction, including sortedness of every neighbor list.
func TestArenaRelabel(t *testing.T) {
	r := rng.New(12)
	var a Arena
	for draw := 0; draw < 20; draw++ {
		n := 2 + r.Intn(120)
		g := ErdosRenyi(n, 6.0/float64(n), r)
		rankOf := r.Perm(n)
		want := NewAdjacency(n)
		for i := 0; i < n; i++ {
			for _, j := range g.Neighbors(i) {
				if j > i {
					want.AddEdge(rankOf[i], rankOf[j])
				}
			}
		}
		requireSameGraph(t, a.Relabel(g, rankOf), want)
	}
}

// TestArenaErdosRenyiZeroAllocSteadyState pins the perf contract the
// Monte-Carlo loops rely on: once warmed up, an arena draw allocates
// nothing. A fixed seed keeps the edge count identical across runs so the
// warm sizing covers every measured draw.
func TestArenaErdosRenyiZeroAllocSteadyState(t *testing.T) {
	var a Arena
	const n, seed = 2000, 77
	p := 25.0 / float64(n)
	a.ErdosRenyi(n, p, rng.New(seed))
	if allocs := testing.AllocsPerRun(20, func() { a.ErdosRenyi(n, p, rng.New(seed)) }); allocs > 1 {
		// One alloc is the rng.New above; the draw itself must be free.
		t.Fatalf("arena ErdosRenyi allocates %.2f objects per draw at steady state, want <= 1 (the test's own RNG)", allocs)
	}
}
