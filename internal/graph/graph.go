// Package graph provides the acceptance graphs of the stratification model:
// which pairs of peers are willing (and able) to collaborate.
//
// The paper studies two families: the complete graph (the "toy model" of
// Section 4, where everybody is acceptable to everybody) and loopless
// symmetric Erdős–Rényi graphs G(n, d) (Section 5, where each edge exists
// independently with probability p = d/(n−1)). Both are immutable; the
// mutable Adjacency type supports the churn experiments where peers join and
// leave.
//
// Peers are identified by their global rank 0 .. n−1, with 0 the best peer.
package graph

import (
	"fmt"
	"sync/atomic"

	"stratmatch/internal/ints"
)

// Graph is an undirected acceptance graph over peers 0 .. N()−1.
//
// Implementations must be symmetric (Acceptable(i, j) == Acceptable(j, i))
// and loopless (Acceptable(i, i) == false). Neighbors must return peers in
// increasing rank order so that callers can scan from best to worst.
type Graph interface {
	// N is the number of peers.
	N() int
	// Acceptable reports whether i and j may collaborate.
	Acceptable(i, j int) bool
	// Neighbors returns the acceptable peers of i in increasing rank order.
	// The returned slice must not be modified by the caller.
	Neighbors(i int) []int
	// Degree is len(Neighbors(i)) without the allocation.
	Degree(i int) int
}

// Complete is the complete acceptance graph on n peers: every pair of
// distinct peers is acceptable. Neighbor slices are materialized lazily,
// one peer at a time, through atomic pointers, so concurrent callers
// (parallel experiment replicas) are safe without paying O(n²) memory up
// front — a peer's list costs O(n) and only when first asked for.
type Complete struct {
	n     int
	cache []atomic.Pointer[[]int]
}

var _ Graph = (*Complete)(nil)

// NewComplete returns the complete graph on n peers.
func NewComplete(n int) *Complete {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewComplete(%d)", n))
	}
	return &Complete{n: n, cache: make([]atomic.Pointer[[]int], n)}
}

// N implements Graph.
func (g *Complete) N() int { return g.n }

// Acceptable implements Graph.
func (g *Complete) Acceptable(i, j int) bool {
	return i != j && i >= 0 && j >= 0 && i < g.n && j < g.n
}

// Neighbors implements Graph. Each peer's slice is built on first use and
// published with an atomic store; two goroutines racing on the same peer
// both build the (identical) slice and one copy wins. The previous
// plain-slice lazy fill was a data race once experiments fanned out across
// goroutines.
func (g *Complete) Neighbors(i int) []int {
	if nb := g.cache[i].Load(); nb != nil {
		return *nb
	}
	nb := make([]int, 0, g.n-1)
	for j := 0; j < g.n; j++ {
		if j != i {
			nb = append(nb, j)
		}
	}
	g.cache[i].CompareAndSwap(nil, &nb)
	// Return the published copy so every caller aliases the same slice.
	return *g.cache[i].Load()
}

// Degree implements Graph.
func (g *Complete) Degree(i int) int { return g.n - 1 }

// Adjacency is a mutable undirected graph stored as sorted adjacency lists.
// It is the workhorse for Erdős–Rényi samples and for churn, where peers are
// detached and re-attached. The zero value is an empty graph on 0 peers; use
// NewAdjacency to size it.
type Adjacency struct {
	adj [][]int
}

var _ Graph = (*Adjacency)(nil)

// NewAdjacency returns an edgeless graph on n peers.
func NewAdjacency(n int) *Adjacency {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewAdjacency(%d)", n))
	}
	return &Adjacency{adj: make([][]int, n)}
}

// N implements Graph.
func (g *Adjacency) N() int { return len(g.adj) }

// Acceptable implements Graph using binary search on the sorted list.
func (g *Adjacency) Acceptable(i, j int) bool {
	if i == j || i < 0 || j < 0 || i >= len(g.adj) || j >= len(g.adj) {
		return false
	}
	return ints.Contains(g.adj[i], j)
}

// Neighbors implements Graph.
func (g *Adjacency) Neighbors(i int) []int { return g.adj[i] }

// Degree implements Graph.
func (g *Adjacency) Degree(i int) int { return len(g.adj[i]) }

// AddEdge inserts the undirected edge {i, j}. Inserting an existing edge or
// a self-loop is a no-op.
func (g *Adjacency) AddEdge(i, j int) {
	if i == j || i < 0 || j < 0 || i >= len(g.adj) || j >= len(g.adj) {
		return
	}
	g.adj[i] = ints.Insert(g.adj[i], j)
	g.adj[j] = ints.Insert(g.adj[j], i)
}

// RemoveEdge deletes the undirected edge {i, j} if present.
func (g *Adjacency) RemoveEdge(i, j int) {
	if i == j || i < 0 || j < 0 || i >= len(g.adj) || j >= len(g.adj) {
		return
	}
	g.adj[i] = ints.Remove(g.adj[i], j)
	g.adj[j] = ints.Remove(g.adj[j], i)
}

// DetachPeer removes every edge incident to i, returning the former
// neighbors. The peer keeps its slot in the graph (rank identity is stable)
// and its list keeps its storage, so churn re-attachment (AddEdge) refills
// it in place instead of growing from nil. The returned slice aliases that
// storage: it is valid only until the next AddEdge(i, ...).
func (g *Adjacency) DetachPeer(i int) []int {
	if i < 0 || i >= len(g.adj) {
		return nil
	}
	old := g.adj[i]
	for _, j := range old {
		g.adj[j] = ints.Remove(g.adj[j], i)
	}
	g.adj[i] = old[:0]
	return old
}

// EdgeCount returns the number of undirected edges.
func (g *Adjacency) EdgeCount() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// Clone returns a deep copy, so simulations can fork a graph without
// aliasing adjacency storage.
func (g *Adjacency) Clone() *Adjacency {
	c := NewAdjacency(len(g.adj))
	for i, nb := range g.adj {
		c.adj[i] = ints.Clone(nb)
	}
	return c
}
