package graph

import (
	"math"
	"testing"

	"stratmatch/internal/rng"
)

// TestGeoSkipMatchesGeometric pins the guide-table sampler to the exact
// Geometric(p) law the skip sampler requires: for each p the empirical
// head probabilities, mean, and tail mass must match the analytic values
// within 5σ sampling bands. p spans the guide-table regimes: mostly-head
// (large p, small table), the sweet spot, and clamp-limited tiny p where
// most draws take the log fallback path.
func TestGeoSkipMatchesGeometric(t *testing.T) {
	const draws = 200000
	for _, p := range []float64{0.5, 0.05, 0.004, 0.0004} {
		g := newGeoSkip(p)
		r := rng.New(uint64(math.Float64bits(p)))
		const head = 8
		var headCount [head]int
		var sum float64
		tailAt := 4 * (1 - p) / p // ~P(G > 4/p·(1−p)) = (1−p)^… small but testable
		tail := 0
		for i := 0; i < draws; i++ {
			k := g.next(r)
			if k < 0 {
				t.Fatalf("p=%v: negative sample %d", p, k)
			}
			if k < head {
				headCount[k]++
			}
			if float64(k) > tailAt {
				tail++
			}
			sum += float64(k)
		}
		// Head pmf: P(G = k) = p(1−p)^k.
		for k := 0; k < head; k++ {
			want := p * math.Pow(1-p, float64(k))
			got := float64(headCount[k]) / draws
			sigma := math.Sqrt(want * (1 - want) / draws)
			if math.Abs(got-want) > 5*sigma+1e-12 {
				t.Errorf("p=%v: P(G=%d) = %.5f, want %.5f (±%.5f)", p, k, got, want, 5*sigma)
			}
		}
		// Mean: (1−p)/p with σ_mean = √(1−p)/p/√draws.
		wantMean := (1 - p) / p
		sigmaMean := math.Sqrt(1-p) / p / math.Sqrt(draws)
		if gotMean := sum / draws; math.Abs(gotMean-wantMean) > 5*sigmaMean {
			t.Errorf("p=%v: mean %.4f, want %.4f (±%.4f)", p, gotMean, wantMean, 5*sigmaMean)
		}
		// Tail mass: P(G > t) = (1−p)^(t+1).
		wantTail := math.Pow(1-p, math.Floor(tailAt)+1)
		sigmaTail := math.Sqrt(wantTail * (1 - wantTail) / draws)
		if gotTail := float64(tail) / draws; math.Abs(gotTail-wantTail) > 5*sigmaTail+1e-12 {
			t.Errorf("p=%v: P(G>%.0f) = %.5f, want %.5f (±%.5f)", p, tailAt, gotTail, wantTail, 5*sigmaTail)
		}
	}
}

// TestGeoSkipTablePastEnd exercises the tail fallback directly: with a
// clamp-limited table and p tiny, nearly every draw lands past the table
// and must still be exact (checked via the mean above; here we just assert
// the fallback territory is actually reached and samples stay sane).
func TestGeoSkipTablePastEnd(t *testing.T) {
	p := 1e-6
	g := newGeoSkip(p)
	r := rng.New(11)
	past := 0
	for i := 0; i < 2000; i++ {
		if g.next(r) >= g.m {
			past++
		}
	}
	if past == 0 {
		t.Fatal("tail fallback never exercised at p=1e-6")
	}
}

// BenchmarkGeoSkip measures the per-draw cost of the guide-table sampler
// against the log formula it replaced.
func BenchmarkGeoSkip(b *testing.B) {
	g := newGeoSkip(0.01)
	r := rng.New(1)
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += g.next(r)
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkGeoSkipLogFormula is the replaced baseline, kept for
// comparison runs.
func BenchmarkGeoSkipLogFormula(b *testing.B) {
	logq := math.Log1p(-0.01)
	r := rng.New(1)
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := r.Float64()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		sink += int(math.Log1p(-u) / logq)
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// TestGeoSkipCacheReuse: repeated draws at one p reuse the cached table
// (pointer-identical), and a different p transparently rebuilds.
func TestGeoSkipCacheReuse(t *testing.T) {
	a := geoSkipFor(0.01)
	if b := geoSkipFor(0.01); a != b {
		t.Fatal("same-p lookup rebuilt the table")
	}
	c := geoSkipFor(0.02)
	if c == a || c.p != 0.02 {
		t.Fatalf("different-p lookup returned the wrong table (p=%v)", c.p)
	}
}
