package graph

import (
	"stratmatch/internal/rng"
)

// ErdosRenyi samples a loopless symmetric G(n, p) graph: every unordered
// pair {i, j} is an edge independently with probability p. The result is a
// mutable Adjacency so churn experiments can detach and re-attach peers.
//
// For sparse graphs (p well below 1) the sampler uses geometric edge
// skipping (Batagelj–Brandes), which runs in O(n + m) instead of O(n²);
// the geometric gaps come from a guide-table inversion sampler (see
// geoSkip) instead of the textbook log formula, removing the per-edge
// math.Log1p call that used to dominate Monte-Carlo profiles. Sampling is
// two-pass: edges are drawn into a flat buffer first, then the exact-size
// adjacency lists are carved out of one backing slab and tail-filled in
// sorted order — Monte-Carlo loops that draw thousands of graphs spend
// their time in the sampler, and incremental sorted inserts with slice
// regrowth used to dominate that cost.
func ErdosRenyi(n int, p float64, r *rng.RNG) *Adjacency {
	g := NewAdjacency(n)
	switch {
	case p <= 0 || n < 2:
		return g
	case p >= 1:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.AddEdge(i, j)
			}
		}
		return g
	}
	// Walk the strictly-lower-triangular adjacency matrix row by row,
	// skipping ahead by geometrically distributed gaps.
	gs := geoSkipFor(p)
	edges := make([]uint64, 0, int(p*float64(n)*float64(n-1)/2)+16)
	deg := make([]int32, n)
	v, w := 1, -1
	for v < n {
		w += 1 + gs.next(r)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			edges = append(edges, uint64(v)<<32|uint64(w))
			deg[v]++
			deg[w]++
		}
	}
	// Carve per-peer lists out of one slab. Full-slice expressions cap each
	// segment, so later churn mutations (ints.Insert past the cap) reallocate
	// privately instead of bleeding into the next peer's segment.
	slab := make([]int, 2*len(edges))
	off := 0
	for i := 0; i < n; i++ {
		d := int(deg[i])
		g.adj[i] = slab[off : off : off+d]
		off += d
	}
	// Edges arrive in lexicographic (v, w) order with w < v, so every list
	// receives its smaller neighbors first (increasing w, while its row is
	// scanned) and its larger neighbors afterwards (increasing v): plain
	// tail appends keep each list sorted.
	for _, e := range edges {
		v, w := int(e>>32), int(e&0xffffffff)
		g.adj[v] = append(g.adj[v], w)
		g.adj[w] = append(g.adj[w], v)
	}
	return g
}

// ErdosRenyiMeanDegree samples G(n, d) in the paper's parameterization:
// d is the expected degree, so each edge exists with probability d/(n−1).
func ErdosRenyiMeanDegree(n int, d float64, r *rng.RNG) *Adjacency {
	if n < 2 {
		return NewAdjacency(n)
	}
	return ErdosRenyi(n, d/float64(n-1), r)
}

// AttachUniform connects peer i to every other currently-attached peer with
// probability p. It is used by churn to re-introduce a detached peer with a
// fresh Erdős–Rényi neighborhood.
func AttachUniform(g *Adjacency, i int, p float64, r *rng.RNG) {
	for j := 0; j < g.N(); j++ {
		if j != i && r.Bool(p) {
			g.AddEdge(i, j)
		}
	}
}
