package graph

import (
	"stratmatch/internal/rng"
)

// ErdosRenyi samples a loopless symmetric G(n, p) graph: every unordered
// pair {i, j} is an edge independently with probability p. The result is a
// mutable Adjacency so churn experiments can detach and re-attach peers.
//
// For sparse graphs (p well below 1) the sampler uses geometric edge
// skipping (Batagelj–Brandes), which runs in O(n + m) instead of O(n²);
// the geometric gaps come from a guide-table inversion sampler (see
// geoSkip) instead of the textbook log formula, removing the per-edge
// math.Log1p call that used to dominate Monte-Carlo profiles. Sampling is
// two-pass: edges are drawn into a flat buffer first, then the exact-size
// adjacency lists are carved out of one backing slab and tail-filled in
// sorted order — Monte-Carlo loops that draw thousands of graphs spend
// their time in the sampler, and incremental sorted inserts with slice
// regrowth used to dominate that cost.
// Loops that draw many graphs should hold a graph.Arena and call its
// ErdosRenyi method instead: same sampler, zero steady-state allocations.
func ErdosRenyi(n int, p float64, r *rng.RNG) *Adjacency {
	var a Arena
	g := a.ErdosRenyi(n, p, r)
	// Drop the sampler scratch: the returned graph is an interior pointer
	// into the arena, and a long-lived one-shot graph must not pin the edge
	// buffer (8 B/edge) and degree counts alongside its adjacency slab.
	a.edges, a.deg = nil, nil
	return g
}

// ErdosRenyiMeanDegree samples G(n, d) in the paper's parameterization:
// d is the expected degree, so each edge exists with probability d/(n−1).
func ErdosRenyiMeanDegree(n int, d float64, r *rng.RNG) *Adjacency {
	if n < 2 {
		return NewAdjacency(n)
	}
	return ErdosRenyi(n, d/float64(n-1), r)
}

// AttachUniform connects peer i to every other currently-attached peer with
// probability p. It is used by churn to re-introduce a detached peer with a
// fresh Erdős–Rényi neighborhood.
func AttachUniform(g *Adjacency, i int, p float64, r *rng.RNG) {
	for j := 0; j < g.N(); j++ {
		if j != i && r.Bool(p) {
			g.AddEdge(i, j)
		}
	}
}
