package graph

import (
	"sync"
	"testing"
)

// TestCompleteNeighborsConcurrent hammers Complete.Neighbors from many
// goroutines. Run under -race this pins the atomic-publish fix: the previous
// lazily-filled per-peer cache raced as soon as experiment replicas fanned
// out across cores.
func TestCompleteNeighborsConcurrent(t *testing.T) {
	g := NewComplete(200)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < g.N(); i++ {
				p := (i + w*25) % g.N()
				nb := g.Neighbors(p)
				if len(nb) != g.N()-1 {
					t.Errorf("peer %d: %d neighbors", p, len(nb))
					return
				}
				// Sorted ascending and loopless.
				for k := 1; k < len(nb); k++ {
					if nb[k-1] >= nb[k] || nb[k] == p {
						t.Errorf("peer %d: bad neighbor list", p)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
