package graph

// Components computes the connected components of g using a union-find with
// path halving and union by size. The return value maps every peer to a
// component label in [0, count), labels assigned in order of first
// appearance by rank.
func Components(g Graph) (labels []int, count int) {
	n := g.N()
	parent := make([]int, n)
	size := make([]int, n)
	for i := range parent {
		parent[i] = i
		size[i] = 1
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}
	for i := 0; i < n; i++ {
		for _, j := range g.Neighbors(i) {
			if j > i {
				union(i, j)
			}
		}
	}
	labels = make([]int, n)
	next := 0
	first := make(map[int]int, n)
	for i := 0; i < n; i++ {
		root := find(i)
		lbl, ok := first[root]
		if !ok {
			lbl = next
			first[root] = lbl
			next++
		}
		labels[i] = lbl
	}
	return labels, next
}

// ComponentSizes returns the size of each component, indexed by the labels
// produced by Components.
func ComponentSizes(g Graph) []int {
	labels, count := Components(g)
	sizes := make([]int, count)
	for _, lbl := range labels {
		sizes[lbl]++
	}
	return sizes
}

// IsConnected reports whether g has a single connected component spanning
// every peer. The empty graph and the 1-peer graph are connected.
func IsConnected(g Graph) bool {
	if g.N() <= 1 {
		return true
	}
	_, count := Components(g)
	return count == 1
}

// BFSDistances returns the hop distance from src to every peer, with −1 for
// unreachable peers.
func BFSDistances(g Graph, src int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the largest finite BFS distance from src, or 0 when
// src has no reachable peers.
func Eccentricity(g Graph, src int) int {
	ecc := 0
	for _, d := range BFSDistances(g, src) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}
