package graph

import (
	"math"
	"sync/atomic"

	"stratmatch/internal/rng"
)

// geoSkip samples Geometric(p) gap lengths — P(G = k) = p·(1−p)^k for
// k ≥ 0 — for the Batagelj–Brandes edge-skipping sampler. The classic
// formulation ⌊log(1−u)/log(1−p)⌋ costs a logarithm per edge, which
// profiles as ~28% of the Monte-Carlo experiments; this sampler replaces it
// with Chen–Asau guide-table inversion: one uniform, one table lookup, and
// on average about one comparison. The table covers all but a ~e⁻⁸ sliver
// of the mass; draws landing in the tail recurse through the memoryless
// property with the exact log formula, so the sampled distribution is
// Geometric(p) exactly — not an approximation.
type geoSkip struct {
	cdf   []float64 // cdf[k] = P(G ≤ k) = 1 − (1−p)^(k+1)
	guide []int32   // guide[j] = min{k : cdf[k] ≥ j/m}
	logq  float64   // log(1−p), for the tail fallback
	m     int
	p     float64
}

// geoCache holds the most recently built table. A geoSkip is immutable
// after construction, so sharing one across goroutines is safe; Monte-
// Carlo sweeps draw thousands of graphs at a single p, and this one-entry
// cache makes the table a one-time cost instead of a per-graph one
// (concurrent sweeps at different p stay correct, merely rebuilding).
var geoCache atomic.Pointer[geoSkip]

// geoSkipFor returns a table for p, reusing the cached one when it
// matches.
func geoSkipFor(p float64) *geoSkip {
	if g := geoCache.Load(); g != nil && g.p == p {
		return g
	}
	g := newGeoSkip(p)
	geoCache.Store(g)
	return g
}

// newGeoSkip builds the inversion tables for edge probability p ∈ (0, 1).
// The table size scales as ~8/p (clamped to [64, 4096] and rounded to a
// power of two), putting the tail probability (1−p)^m near e⁻⁸ for
// mid-range p; for very small p the clamp keeps the table cheap and the
// log fallback absorbs the (still exact) tail.
func newGeoSkip(p float64) *geoSkip {
	m := 64
	for float64(m) < 8/p && m < 4096 {
		m *= 2
	}
	g := &geoSkip{
		cdf:   make([]float64, m),
		guide: make([]int32, m+1),
		logq:  math.Log1p(-p),
		m:     m,
		p:     p,
	}
	q := 1 - p
	pow := 1.0 // (1−p)^k
	for k := 0; k < m; k++ {
		pow *= q
		g.cdf[k] = 1 - pow
	}
	k := int32(0)
	for j := 0; j <= m; j++ {
		target := float64(j) / float64(m)
		for k < int32(m)-1 && g.cdf[k] < target {
			k++
		}
		g.guide[j] = k
	}
	return g
}

// next draws one Geometric(p) sample.
func (g *geoSkip) next(r *rng.RNG) int {
	u := r.Float64()
	if u <= g.cdf[g.m-1] {
		k := int(g.guide[int(u*float64(g.m))])
		for g.cdf[k] < u {
			k++
		}
		return k
	}
	// Tail: conditioned on G ≥ m, G − m is Geometric(p) again
	// (memorylessness), sampled by the exact log inversion on a fresh
	// uniform — rescaling u would lose precision in the 1−cdf sliver.
	return g.m + g.tailNext(r)
}

// tailNext is the classic exact inversion ⌊log(1−u)/log(1−p)⌋, used only
// for the rare past-the-table draws.
func (g *geoSkip) tailNext(r *rng.RNG) int {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return int(math.Log1p(-u) / g.logq)
}
