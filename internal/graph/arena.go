package graph

import "stratmatch/internal/rng"

// Arena owns the reusable buffers behind repeated graph constructions: the
// two-pass Erdős–Rényi sampler's edge list, degree counts and adjacency
// slab, plus the Adjacency headers themselves. Monte-Carlo loops that draw
// thousands of G(n, p) graphs hold one Arena per worker so a draw costs zero
// steady-state allocations while producing byte-identical graphs.
//
// The *Adjacency returned by an Arena method is owned by the arena: it is
// valid until the arena's next call, which overwrites it in place (Clone a
// draw that must survive). The zero Arena is ready to use; an Arena is
// single-goroutine — parallel fan-outs keep one per worker.
type Arena struct {
	g     Adjacency
	edges []uint64
	deg   []int32
	slab  []int
}

// reset resizes the arena's adjacency to n edgeless peers.
func (a *Arena) reset(n int) *Adjacency {
	g := &a.g
	if cap(g.adj) < n {
		g.adj = make([][]int, n)
	}
	g.adj = g.adj[:n]
	for i := range g.adj {
		g.adj[i] = nil
	}
	return g
}

// intSlab returns the arena's int slab resized to n, reallocating only on
// growth.
func (a *Arena) intSlab(n int) []int {
	if cap(a.slab) < n {
		a.slab = make([]int, n)
	}
	a.slab = a.slab[:n]
	return a.slab
}

// ErdosRenyi is graph.ErdosRenyi sampling into the arena: same geometric
// edge-skipping walk, same stream consumption from r, identical output — but
// the edge buffer, degree counts, adjacency slab and headers are recycled
// across draws.
func (a *Arena) ErdosRenyi(n int, p float64, r *rng.RNG) *Adjacency {
	g := a.reset(n)
	switch {
	case p <= 0 || n < 2:
		return g
	case p >= 1:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.AddEdge(i, j)
			}
		}
		return g
	}
	// Walk the strictly-lower-triangular adjacency matrix row by row,
	// skipping ahead by geometrically distributed gaps (see the package
	// function for the sampling notes).
	gs := geoSkipFor(p)
	if a.edges == nil {
		a.edges = make([]uint64, 0, int(p*float64(n)*float64(n-1)/2)+16)
	}
	edges := a.edges[:0]
	if cap(a.deg) < n {
		a.deg = make([]int32, n)
	}
	deg := a.deg[:n]
	for i := range deg {
		deg[i] = 0
	}
	v, w := 1, -1
	for v < n {
		w += 1 + gs.next(r)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			edges = append(edges, uint64(v)<<32|uint64(w))
			deg[v]++
			deg[w]++
		}
	}
	a.edges = edges
	// Carve per-peer lists out of the recycled slab with 25%+2 headroom per
	// peer: churn simulations detach and re-attach peers through ints.Insert,
	// and exact-capacity segments forced a private reallocation on the first
	// insert into every touched list. Immutable Monte-Carlo draws pay only
	// the slightly larger (recycled) slab.
	total := 0
	for i := 0; i < n; i++ {
		total += int(deg[i]) + int(deg[i])/4 + 2
	}
	slab := a.intSlab(total)
	off := 0
	for i := 0; i < n; i++ {
		d := int(deg[i])
		g.adj[i] = slab[off : off : off+d+d/4+2]
		off += d + d/4 + 2
	}
	// Lexicographic edge order keeps plain tail appends sorted (see
	// graph.ErdosRenyi).
	for _, e := range edges {
		v, w := int(e>>32), int(e&0xffffffff)
		g.adj[v] = append(g.adj[v], w)
		g.adj[w] = append(g.adj[w], v)
	}
	return g
}

// ErdosRenyiMeanDegree is graph.ErdosRenyiMeanDegree sampling into the
// arena.
func (a *Arena) ErdosRenyiMeanDegree(n int, d float64, r *rng.RNG) *Adjacency {
	if n < 2 {
		return a.reset(n)
	}
	return a.ErdosRenyi(n, d/float64(n-1), r)
}

// Relabel builds the graph with every peer i renamed to rankOf[i] (a
// permutation of 0..n−1), reusing the arena's buffers: degree counts first,
// one slab carve, then a per-list insertion sort. The gossip experiment
// rebuilds a rank-space copy of its acceptance graph once per measurement;
// incremental sorted inserts with slice regrowth used to dominate that cost.
func (a *Arena) Relabel(g Graph, rankOf []int) *Adjacency {
	n := g.N()
	out := a.reset(n)
	if cap(a.deg) < n {
		a.deg = make([]int32, n)
	}
	deg := a.deg[:n]
	total := 0
	for i := 0; i < n; i++ {
		d := g.Degree(i)
		deg[rankOf[i]] = int32(d)
		total += d
	}
	slab := a.intSlab(total)
	off := 0
	for i := 0; i < n; i++ {
		d := int(deg[i])
		out.adj[i] = slab[off : off : off+d]
		off += d
	}
	for i := 0; i < n; i++ {
		ri := rankOf[i]
		for _, j := range g.Neighbors(i) {
			out.adj[ri] = append(out.adj[ri], rankOf[j])
		}
	}
	// Neighbor lists must be sorted (rank order); degrees are
	// experiment-scale, so insertion sort beats pulling in sort.Ints.
	for i := 0; i < n; i++ {
		lst := out.adj[i]
		for x := 1; x < len(lst); x++ {
			for y := x; y > 0 && lst[y-1] > lst[y]; y-- {
				lst[y-1], lst[y] = lst[y], lst[y-1]
			}
		}
	}
	return out
}
