package graph

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"stratmatch/internal/rng"
)

func TestCompleteBasics(t *testing.T) {
	g := NewComplete(5)
	if g.N() != 5 {
		t.Fatalf("N = %d", g.N())
	}
	for i := 0; i < 5; i++ {
		if g.Acceptable(i, i) {
			t.Errorf("self-loop accepted at %d", i)
		}
		if g.Degree(i) != 4 {
			t.Errorf("degree(%d) = %d", i, g.Degree(i))
		}
		nb := g.Neighbors(i)
		if len(nb) != 4 {
			t.Fatalf("neighbors(%d) = %v", i, nb)
		}
		if !sort.IntsAreSorted(nb) {
			t.Errorf("neighbors(%d) not sorted: %v", i, nb)
		}
		for _, j := range nb {
			if !g.Acceptable(i, j) || !g.Acceptable(j, i) {
				t.Errorf("asymmetric acceptance %d-%d", i, j)
			}
		}
	}
}

func TestCompleteOutOfRange(t *testing.T) {
	g := NewComplete(3)
	if g.Acceptable(0, 3) || g.Acceptable(-1, 0) {
		t.Fatal("out-of-range pair accepted")
	}
}

func TestAdjacencyAddRemove(t *testing.T) {
	g := NewAdjacency(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate: no-op
	g.AddEdge(2, 2) // self-loop: no-op
	if !g.Acceptable(0, 1) || !g.Acceptable(1, 0) {
		t.Fatal("edge 0-1 missing")
	}
	if g.EdgeCount() != 2 {
		t.Fatalf("EdgeCount = %d, want 2", g.EdgeCount())
	}
	g.RemoveEdge(0, 1)
	if g.Acceptable(0, 1) {
		t.Fatal("edge 0-1 survived removal")
	}
	g.RemoveEdge(0, 1) // idempotent
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", g.EdgeCount())
	}
}

func TestAdjacencySortedNeighbors(t *testing.T) {
	g := NewAdjacency(10)
	for _, j := range []int{7, 3, 9, 1, 5} {
		g.AddEdge(4, j)
	}
	nb := g.Neighbors(4)
	if !sort.IntsAreSorted(nb) {
		t.Fatalf("neighbors not sorted: %v", nb)
	}
	if len(nb) != 5 {
		t.Fatalf("neighbors = %v", nb)
	}
}

func TestDetachPeer(t *testing.T) {
	g := NewAdjacency(5)
	g.AddEdge(2, 0)
	g.AddEdge(2, 4)
	g.AddEdge(0, 1)
	old := g.DetachPeer(2)
	if len(old) != 2 {
		t.Fatalf("old neighbors %v", old)
	}
	if g.Degree(2) != 0 {
		t.Fatal("peer 2 still has edges")
	}
	if g.Acceptable(0, 2) || g.Acceptable(4, 2) {
		t.Fatal("reverse edges survived detach")
	}
	if !g.Acceptable(0, 1) {
		t.Fatal("unrelated edge lost")
	}
}

func TestClone(t *testing.T) {
	g := NewAdjacency(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.Acceptable(1, 2) {
		t.Fatal("clone aliases original")
	}
	if !c.Acceptable(0, 1) {
		t.Fatal("clone lost edge")
	}
}

func TestErdosRenyiDegree(t *testing.T) {
	r := rng.New(1)
	const n, d = 2000, 10.0
	g := ErdosRenyiMeanDegree(n, d, r)
	total := 0
	for i := 0; i < n; i++ {
		total += g.Degree(i)
	}
	mean := float64(total) / n
	if math.Abs(mean-d) > 0.5 {
		t.Fatalf("mean degree %f, want ~%f", mean, d)
	}
}

func TestErdosRenyiSymmetricLoopless(t *testing.T) {
	r := rng.New(2)
	g := ErdosRenyi(300, 0.05, r)
	for i := 0; i < g.N(); i++ {
		if g.Acceptable(i, i) {
			t.Fatalf("self-loop at %d", i)
		}
		for _, j := range g.Neighbors(i) {
			if !g.Acceptable(j, i) {
				t.Fatalf("asymmetric edge %d-%d", i, j)
			}
		}
	}
}

func TestErdosRenyiEdgeCases(t *testing.T) {
	r := rng.New(3)
	if g := ErdosRenyi(100, 0, r); g.EdgeCount() != 0 {
		t.Fatal("p=0 produced edges")
	}
	if g := ErdosRenyi(10, 1, r); g.EdgeCount() != 45 {
		t.Fatalf("p=1 produced %d edges, want 45", g.EdgeCount())
	}
	if g := ErdosRenyi(1, 0.5, r); g.EdgeCount() != 0 {
		t.Fatal("n=1 produced edges")
	}
	if g := ErdosRenyi(0, 0.5, r); g.N() != 0 {
		t.Fatal("n=0 produced peers")
	}
}

func TestErdosRenyiEdgeProbability(t *testing.T) {
	// Count how often a fixed pair is connected over many samples.
	const p, samples = 0.3, 2000
	hits := 0
	r := rng.New(4)
	for s := 0; s < samples; s++ {
		g := ErdosRenyi(6, p, r)
		if g.Acceptable(1, 4) {
			hits++
		}
	}
	rate := float64(hits) / samples
	if math.Abs(rate-p) > 0.04 {
		t.Fatalf("edge rate %f want %f", rate, p)
	}
}

func TestAttachUniform(t *testing.T) {
	r := rng.New(5)
	g := NewAdjacency(500)
	AttachUniform(g, 7, 0.1, r)
	deg := g.Degree(7)
	if deg < 20 || deg > 90 {
		t.Fatalf("attached degree %d implausible for p=0.1, n=500", deg)
	}
	for _, j := range g.Neighbors(7) {
		if !g.Acceptable(j, 7) {
			t.Fatalf("asymmetric attach edge %d", j)
		}
	}
}

func TestComponents(t *testing.T) {
	g := NewAdjacency(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5 and 6 isolated.
	labels, count := Components(g)
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("0,1,2 split: %v", labels)
	}
	if labels[3] != labels[4] {
		t.Errorf("3,4 split: %v", labels)
	}
	if labels[5] == labels[6] {
		t.Errorf("5,6 merged: %v", labels)
	}
}

func TestComponentSizes(t *testing.T) {
	g := NewAdjacency(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	sizes := ComponentSizes(g)
	sort.Ints(sizes)
	want := []int{1, 2, 3}
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(NewComplete(10)) {
		t.Fatal("complete graph not connected")
	}
	if !IsConnected(NewComplete(1)) || !IsConnected(NewComplete(0)) {
		t.Fatal("trivial graphs not connected")
	}
	g := NewAdjacency(3)
	g.AddEdge(0, 1)
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestBFSDistances(t *testing.T) {
	g := NewAdjacency(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 4)
	d := BFSDistances(g, 0)
	want := []int{0, 1, 2, 3, 1, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist = %v, want %v", d, want)
		}
	}
	if ecc := Eccentricity(g, 0); ecc != 3 {
		t.Fatalf("eccentricity = %d, want 3", ecc)
	}
}

func TestUnionFindComponentsMatchBFS(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		g := ErdosRenyi(60, 0.03, r)
		labels, _ := Components(g)
		// Every pair in the same component must be BFS-reachable and
		// vice versa; verify via one BFS per peer 0..9 (spot check).
		for src := 0; src < 10; src++ {
			dist := BFSDistances(g, src)
			for v := 0; v < g.N(); v++ {
				sameComp := labels[src] == labels[v]
				reachable := dist[v] >= 0
				if sameComp != reachable {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkErdosRenyi(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ErdosRenyiMeanDegree(1000, 10, r)
	}
}
