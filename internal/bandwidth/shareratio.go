package bandwidth

import (
	"fmt"

	"stratmatch/internal/analytic"
)

// SharePoint is one peer's row in the Figure 11 computation.
type SharePoint struct {
	Rank int
	// Upload is the peer's upstream capacity in kbps.
	Upload float64
	// PerSlot is Upload / b0, the paper's x-axis ("bandwidth per slot").
	PerSlot float64
	// ExpectedDownload is Σ_c Σ_j Dc(i,j) · Upload(j)/b0.
	ExpectedDownload float64
	// ExpectedUpload is Upload/b0 times the expected number of filled
	// slots — capacity parked on unfilled slots is not uploaded.
	ExpectedUpload float64
	// Efficiency is ExpectedDownload / ExpectedUpload: the expected
	// download/upload ("share") ratio of the paper's Figure 11.
	Efficiency float64
	// MatchProb is the probability the peer collaborates with anyone.
	MatchProb float64
}

// ShareRatioOptions parameterizes ShareRatios (the paper uses n implicit,
// b0 = 3 — BitTorrent's default 4 slots minus the optimistic unchoke — and
// d = 20 expected acceptable peers).
type ShareRatioOptions struct {
	N    int
	B0   int
	D    float64 // expected number of acceptable peers
	Dist *Distribution
}

// ShareRatios evaluates the expected D/U ratio for every rank by feeding the
// rank→bandwidth map through the independent b0-matching model
// (Algorithm 3) with partner value u(j)/b0. This reproduces Figure 11:
// ratios below 1 for the best peers, ≈1 at density peaks, efficiency spikes
// just above the peaks, and high ratios for the worst peers.
func ShareRatios(opt ShareRatioOptions) ([]SharePoint, error) {
	if opt.N < 2 {
		return nil, fmt.Errorf("bandwidth: population %d too small", opt.N)
	}
	if opt.B0 < 1 {
		return nil, fmt.Errorf("bandwidth: b0 = %d", opt.B0)
	}
	if opt.Dist == nil {
		return nil, fmt.Errorf("bandwidth: nil distribution")
	}
	if opt.D <= 0 || opt.D > float64(opt.N-1) {
		return nil, fmt.Errorf("bandwidth: mean degree %v out of (0, n-1]", opt.D)
	}
	uploads := RankBandwidths(opt.Dist, opt.N)
	perSlot := make([]float64, opt.N)
	for i, u := range uploads {
		perSlot[i] = u / float64(opt.B0)
	}
	bm, err := analytic.BMatching(analytic.BMatchingOptions{
		N:            opt.N,
		P:            opt.D / float64(opt.N-1),
		B0:           opt.B0,
		PartnerValue: perSlot,
	})
	if err != nil {
		return nil, err
	}
	points := make([]SharePoint, opt.N)
	for i := 0; i < opt.N; i++ {
		var filled float64
		for c := 0; c < opt.B0; c++ {
			filled += bm.SlotMatchProb[c][i]
		}
		expUp := perSlot[i] * filled
		pt := SharePoint{
			Rank:             i,
			Upload:           uploads[i],
			PerSlot:          perSlot[i],
			ExpectedDownload: bm.ExpectedValue[i],
			ExpectedUpload:   expUp,
			MatchProb:        bm.MatchProbAny[i],
		}
		if expUp > 0 {
			pt.Efficiency = pt.ExpectedDownload / expUp
		}
		points[i] = pt
	}
	return points, nil
}
