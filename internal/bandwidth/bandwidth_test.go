package bandwidth

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"stratmatch/internal/rng"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		anchors []Anchor
	}{
		{"too few", []Anchor{{Kbps: 1, CDF: 0}}},
		{"non-positive bw", []Anchor{{Kbps: 0, CDF: 0}, {Kbps: 10, CDF: 1}}},
		{"cdf out of range", []Anchor{{Kbps: 1, CDF: 0}, {Kbps: 10, CDF: 1.5}}},
		{"not increasing bw", []Anchor{{Kbps: 10, CDF: 0}, {Kbps: 5, CDF: 1}}},
		{"not increasing cdf", []Anchor{{Kbps: 1, CDF: 0.5}, {Kbps: 10, CDF: 0.5}}},
		{"not spanning", []Anchor{{Kbps: 1, CDF: 0.1}, {Kbps: 10, CDF: 1}}},
	}
	for _, c := range cases {
		if _, err := New(c.anchors); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSaroiuCDFEndpoints(t *testing.T) {
	d := Saroiu()
	if d.CDF(d.Min()) != 0 {
		t.Fatalf("CDF at min = %v", d.CDF(d.Min()))
	}
	if d.CDF(d.Max()) != 1 {
		t.Fatalf("CDF at max = %v", d.CDF(d.Max()))
	}
	if d.CDF(1) != 0 || d.CDF(1e9) != 1 {
		t.Fatal("CDF not clamped outside support")
	}
}

func TestCDFMonotone(t *testing.T) {
	d := Saroiu()
	prev := -1.0
	for kbps := 10.0; kbps <= 100000; kbps *= 1.1 {
		c := d.CDF(kbps)
		if c < prev {
			t.Fatalf("CDF decreasing at %v", kbps)
		}
		prev = c
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	d := Saroiu()
	check := func(qRaw uint16) bool {
		q := float64(qRaw%1000) / 1000
		kbps := d.Quantile(q)
		return math.Abs(d.CDF(kbps)-q) < 1e-9 || q == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Anchor exactness.
	if got := d.Quantile(0.52); math.Abs(got-256) > 1e-9 {
		t.Fatalf("Quantile(0.52) = %v, want 256", got)
	}
}

func TestSampleWithinSupport(t *testing.T) {
	d := Saroiu()
	r := rng.New(1)
	for i := 0; i < 5000; i++ {
		s := d.Sample(r)
		if s < d.Min() || s > d.Max() {
			t.Fatalf("sample %v outside support", s)
		}
	}
}

func TestSampleMatchesCDF(t *testing.T) {
	d := Saroiu()
	r := rng.New(2)
	const n = 20000
	below256 := 0
	for i := 0; i < n; i++ {
		if d.Sample(r) <= 256 {
			below256++
		}
	}
	frac := float64(below256) / n
	if math.Abs(frac-0.52) > 0.02 {
		t.Fatalf("empirical CDF(256) = %v, want ~0.52", frac)
	}
}

func TestRankBandwidthsOrdering(t *testing.T) {
	d := Saroiu()
	bws := RankBandwidths(d, 500)
	if len(bws) != 500 {
		t.Fatalf("%d entries", len(bws))
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(bws))) {
		t.Fatal("bandwidths not decreasing with rank")
	}
	// Strictly decreasing — the model forbids ties.
	for i := 1; i < len(bws); i++ {
		if bws[i] >= bws[i-1] {
			t.Fatalf("tie or inversion at rank %d: %v >= %v", i, bws[i], bws[i-1])
		}
	}
	// The best peer must be in the high-capacity tail, the worst near the
	// dial-up end.
	if bws[0] < 10000 {
		t.Fatalf("best peer bandwidth %v suspiciously low", bws[0])
	}
	if bws[499] > 56 {
		t.Fatalf("worst peer bandwidth %v suspiciously high", bws[499])
	}
}

func TestShareRatiosShape(t *testing.T) {
	// Figure 11 qualitative structure at a reduced population.
	pts, err := ShareRatios(ShareRatioOptions{N: 600, B0: 3, D: 20, Dist: Saroiu()})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 600 {
		t.Fatalf("%d points", len(pts))
	}
	// Best peers suffer: efficiency below 1.
	topMean := 0.0
	for _, pt := range pts[:20] {
		topMean += pt.Efficiency
	}
	topMean /= 20
	if topMean >= 1 {
		t.Fatalf("best peers' mean efficiency %v, want < 1", topMean)
	}
	// Worst peers profit: efficiency above 1.
	botMean := 0.0
	for _, pt := range pts[580:] {
		botMean += pt.Efficiency
	}
	botMean /= 20
	if botMean <= 1 {
		t.Fatalf("worst peers' mean efficiency %v, want > 1", botMean)
	}
	// Density-peak peers sit near ratio 1: somewhere in the mid population
	// the efficiency must come close to 1 ...
	closest := math.Inf(1)
	spike := 0.0
	for _, pt := range pts[150:500] {
		if gap := math.Abs(pt.Efficiency - 1); gap < closest {
			closest = gap
		}
		if pt.Efficiency > spike {
			spike = pt.Efficiency
		}
	}
	if closest > 0.15 {
		t.Fatalf("no mid peer near ratio 1 (closest gap %v)", closest)
	}
	// ... and efficiency spikes appear just above density peaks.
	if spike < 1.2 {
		t.Fatalf("no efficiency spike in mid population (max %v)", spike)
	}
	// Everybody's expected download is positive and finite.
	for _, pt := range pts {
		if pt.ExpectedDownload <= 0 || math.IsInf(pt.ExpectedDownload, 0) {
			t.Fatalf("rank %d: expected download %v", pt.Rank, pt.ExpectedDownload)
		}
		if pt.MatchProb <= 0 || pt.MatchProb > 1 {
			t.Fatalf("rank %d: match prob %v", pt.Rank, pt.MatchProb)
		}
	}
}

func TestShareRatiosErrors(t *testing.T) {
	d := Saroiu()
	if _, err := ShareRatios(ShareRatioOptions{N: 1, B0: 3, D: 5, Dist: d}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := ShareRatios(ShareRatioOptions{N: 100, B0: 0, D: 5, Dist: d}); err == nil {
		t.Error("b0=0 accepted")
	}
	if _, err := ShareRatios(ShareRatioOptions{N: 100, B0: 3, D: 5, Dist: nil}); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := ShareRatios(ShareRatioOptions{N: 100, B0: 3, D: 200, Dist: d}); err == nil {
		t.Error("d > n-1 accepted")
	}
}

func BenchmarkShareRatios(b *testing.B) {
	d := Saroiu()
	for i := 0; i < b.N; i++ {
		if _, err := ShareRatios(ShareRatioOptions{N: 1000, B0: 3, D: 20, Dist: d}); err != nil {
			b.Fatal(err)
		}
	}
}
