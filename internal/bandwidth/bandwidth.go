// Package bandwidth models the upstream-capacity distribution of P2P hosts
// that the paper's Section 6 uses to attach real-world meaning to ranks.
//
// The paper takes the measured Gnutella upstream CDF from Saroiu, Gummadi
// and Gribble (2002), shown as its Figure 10. The measurement data is not
// available, so this package reconstructs the curve as a piecewise
// log-linear CDF through anchor points matching the published plot: a
// dial-up tail, density peaks at typical DSL/cable upstreams, and a thin
// high-capacity tail up to 10⁵ kbps. Every consumer of the curve (Figure 11,
// the swarm simulator) only reads it through CDF/Quantile, so any
// distribution with the same plateaus and peaks reproduces the paper's
// qualitative structure. See DESIGN.md §5 for the substitution note.
package bandwidth

import (
	"fmt"
	"math"
	"sort"

	"stratmatch/internal/rng"
)

// Anchor is one (bandwidth, cumulative fraction) point of a piecewise
// log-linear CDF. The json tags let custom distributions live in
// serialized scenario descriptions (btsim.CapacitySpec).
type Anchor struct {
	Kbps float64 `json:"kbps"` // upstream capacity in kbit/s
	CDF  float64 `json:"cdf"`  // fraction of hosts with capacity <= Kbps, in [0, 1]
}

// Distribution is a continuous, strictly increasing bandwidth distribution
// defined by linear interpolation of the CDF in log10(bandwidth).
type Distribution struct {
	anchors []Anchor
	logs    []float64 // log10 of anchor bandwidths
}

// New validates anchors (strictly increasing in both coordinates, CDF from 0
// to 1, positive bandwidths) and builds a Distribution.
func New(anchors []Anchor) (*Distribution, error) {
	if len(anchors) < 2 {
		return nil, fmt.Errorf("bandwidth: need at least 2 anchors, got %d", len(anchors))
	}
	for i, a := range anchors {
		if a.Kbps <= 0 {
			return nil, fmt.Errorf("bandwidth: anchor %d has non-positive bandwidth %v", i, a.Kbps)
		}
		if a.CDF < 0 || a.CDF > 1 {
			return nil, fmt.Errorf("bandwidth: anchor %d has CDF %v outside [0,1]", i, a.CDF)
		}
		if i > 0 && (a.Kbps <= anchors[i-1].Kbps || a.CDF <= anchors[i-1].CDF) {
			return nil, fmt.Errorf("bandwidth: anchors not strictly increasing at %d", i)
		}
	}
	if anchors[0].CDF != 0 || anchors[len(anchors)-1].CDF != 1 {
		return nil, fmt.Errorf("bandwidth: CDF must span 0 to 1")
	}
	d := &Distribution{anchors: append([]Anchor(nil), anchors...)}
	d.logs = make([]float64, len(anchors))
	for i, a := range d.anchors {
		d.logs[i] = math.Log10(a.Kbps)
	}
	return d, nil
}

// Saroiu returns the reconstructed Gnutella upstream distribution of the
// paper's Figure 10. Density peaks sit at the dial-up, DSL and cable
// upstream classes ("all peers are equal but some peers are more equal than
// others").
func Saroiu() *Distribution {
	d, err := New([]Anchor{
		{Kbps: 10, CDF: 0},
		{Kbps: 40, CDF: 0.04},
		{Kbps: 56, CDF: 0.12},  // dial-up modem peak
		{Kbps: 64, CDF: 0.16},  // ISDN
		{Kbps: 128, CDF: 0.32}, // dual ISDN / entry DSL upstream peak
		{Kbps: 256, CDF: 0.52}, // DSL upstream peak
		{Kbps: 384, CDF: 0.60},
		{Kbps: 768, CDF: 0.73},  // cable upstream peak
		{Kbps: 1500, CDF: 0.82}, // T1
		{Kbps: 3000, CDF: 0.88},
		{Kbps: 10000, CDF: 0.94}, // Ethernet-class
		{Kbps: 45000, CDF: 0.98}, // T3
		{Kbps: 100000, CDF: 1},
	})
	if err != nil {
		panic(err) // static table; cannot fail
	}
	return d
}

// CDF returns the fraction of hosts with upstream capacity <= kbps.
func (d *Distribution) CDF(kbps float64) float64 {
	first, last := d.anchors[0], d.anchors[len(d.anchors)-1]
	if kbps <= first.Kbps {
		return 0
	}
	if kbps >= last.Kbps {
		return 1
	}
	lg := math.Log10(kbps)
	i := sort.SearchFloat64s(d.logs, lg)
	if d.logs[i] == lg {
		return d.anchors[i].CDF
	}
	lo, hi := i-1, i
	frac := (lg - d.logs[lo]) / (d.logs[hi] - d.logs[lo])
	return d.anchors[lo].CDF + frac*(d.anchors[hi].CDF-d.anchors[lo].CDF)
}

// Quantile returns the capacity at cumulative fraction q ∈ [0, 1]; it is the
// exact inverse of CDF.
func (d *Distribution) Quantile(q float64) float64 {
	if q <= 0 {
		return d.anchors[0].Kbps
	}
	if q >= 1 {
		return d.anchors[len(d.anchors)-1].Kbps
	}
	i := sort.Search(len(d.anchors), func(k int) bool { return d.anchors[k].CDF >= q })
	if d.anchors[i].CDF == q {
		return d.anchors[i].Kbps
	}
	lo, hi := i-1, i
	frac := (q - d.anchors[lo].CDF) / (d.anchors[hi].CDF - d.anchors[lo].CDF)
	return math.Pow(10, d.logs[lo]+frac*(d.logs[hi]-d.logs[lo]))
}

// Sample draws one capacity by inverse-transform sampling.
func (d *Distribution) Sample(r *rng.RNG) float64 {
	return d.Quantile(r.Float64())
}

// Min and Max return the distribution's support bounds.
func (d *Distribution) Min() float64 { return d.anchors[0].Kbps }

// Max returns the largest representable capacity.
func (d *Distribution) Max() float64 { return d.anchors[len(d.anchors)-1].Kbps }

// RankBandwidths maps global ranks to upstream capacities: rank 0 (the best
// peer) receives the highest capacity. Rank i gets the (1 − (i+0.5)/n)
// quantile, the midpoint rule that keeps all values strictly ordered and
// tie-free as the paper's model requires.
func RankBandwidths(d *Distribution, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		q := 1 - (float64(i)+0.5)/float64(n)
		out[i] = d.Quantile(q)
	}
	return out
}
