// Package textplot renders experiment results as ASCII charts and CSV
// tables. Go has no plotting facility in the standard library, so every
// paper figure is reproduced as (a) a CSV file suitable for any external
// plotter and (b) an ASCII chart for eyeballing shapes directly in the
// terminal.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a multi-series scatter/line chart rendered to text.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot area size in characters; zero values
	// default to 72×20.
	Width  int
	Height int
	// LogX / LogY switch the corresponding axis to log10 scale. Points with
	// non-positive coordinates on a log axis are dropped.
	LogX bool
	LogY bool

	Series []Series
}

var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the chart. It never fails: empty charts render as a frame
// with a note.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}

	type pt struct{ x, y float64 }
	series := make([][]pt, len(c.Series))
	var (
		minX, minY = math.Inf(1), math.Inf(1)
		maxX, maxY = math.Inf(-1), math.Inf(-1)
		total      int
	)
	for si, s := range c.Series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			x, y := s.X[i], s.Y[i]
			if c.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			series[si] = append(series[si], pt{x, y})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			total++
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if total == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, pts := range series {
		m := markers[si%len(markers)]
		for _, p := range pts {
			col := int((p.x - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((p.y-minY)/(maxY-minY)*float64(h-1))
			grid[row][col] = m
		}
	}

	yLo, yHi := minY, maxY
	xLo, xHi := minX, maxX
	if c.LogY {
		yLo, yHi = math.Pow(10, yLo), math.Pow(10, yHi)
	}
	if c.LogX {
		xLo, xHi = math.Pow(10, xLo), math.Pow(10, xHi)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", c.YLabel)
	}
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8s", compact(yHi))
		case h - 1:
			label = fmt.Sprintf("%8s", compact(yLo))
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%8s  %-*s%s\n", "", w-len(compact(xHi)), compact(xLo), compact(xHi))
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%8s  %s%s\n", "", strings.Repeat(" ", (w-len(c.XLabel))/2), c.XLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func compact(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 10000 || av < 0.001:
		return strconv.FormatFloat(v, 'e', 1, 64)
	case av >= 100:
		return strconv.FormatFloat(v, 'f', 0, 64)
	default:
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
}

// WriteCSV writes a header row and numeric rows to w.
func WriteCSV(w io.Writer, header []string, rows [][]float64) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return fmt.Errorf("textplot: write header: %w", err)
	}
	for _, row := range rows {
		fields := make([]string, len(row))
		for i, v := range row {
			fields[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return fmt.Errorf("textplot: write row: %w", err)
		}
	}
	return nil
}

// SeriesCSV writes series in long form: name,x,y per row.
func SeriesCSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return fmt.Errorf("textplot: write header: %w", err)
	}
	for _, s := range series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			if _, err := fmt.Fprintf(w, "%s,%s,%s\n", s.Name,
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64)); err != nil {
				return fmt.Errorf("textplot: write row: %w", err)
			}
		}
	}
	return nil
}
