package textplot

import (
	"errors"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := Chart{
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "line", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing marker")
	}
	if !strings.Contains(out, "line") {
		t.Error("missing legend")
	}
	// The diagonal's endpoints: bottom-left and top-right markers exist.
	lines := strings.Split(out, "\n")
	if len(lines) < 20 {
		t.Fatalf("only %d lines", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	if out := c.Render(); !strings.Contains(out, "(no data)") {
		t.Fatalf("unexpected: %q", out)
	}
}

func TestRenderLogAxisDropsNonPositive(t *testing.T) {
	c := Chart{
		LogX: true,
		Series: []Series{
			{Name: "s", X: []float64{-1, 0, 10, 100}, Y: []float64{1, 1, 2, 3}},
		},
	}
	out := c.Render()
	if strings.Contains(out, "(no data)") {
		t.Fatal("all points dropped")
	}
}

func TestRenderAllInvalid(t *testing.T) {
	c := Chart{
		LogY:   true,
		Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{0}}},
	}
	if out := c.Render(); !strings.Contains(out, "(no data)") {
		t.Fatal("expected no-data note")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := Chart{
		Series: []Series{{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}},
	}
	out := c.Render()
	if strings.Contains(out, "(no data)") {
		t.Fatal("flat series dropped")
	}
}

func TestRenderMultiSeriesMarkers(t *testing.T) {
	c := Chart{
		Series: []Series{
			{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
			{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("second marker missing")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"x", "y"}, [][]float64{{1, 2}, {3.5, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3.5,4\n"
	if b.String() != want {
		t.Fatalf("got %q, want %q", b.String(), want)
	}
}

func TestSeriesCSV(t *testing.T) {
	var b strings.Builder
	err := SeriesCSV(&b, []Series{
		{Name: "s1", X: []float64{1, 2}, Y: []float64{10, 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "series,x,y\ns1,1,10\ns1,2,20\n"
	if b.String() != want {
		t.Fatalf("got %q", b.String())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestCSVPropagatesErrors(t *testing.T) {
	if err := WriteCSV(failWriter{}, []string{"x"}, nil); err == nil {
		t.Error("WriteCSV swallowed the error")
	}
	if err := SeriesCSV(failWriter{}, nil); err == nil {
		t.Error("SeriesCSV swallowed the error")
	}
}
