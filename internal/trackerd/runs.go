package trackerd

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"stratmatch/internal/btsim"
	"stratmatch/internal/checkpoint"
	"stratmatch/internal/emit"
	"stratmatch/internal/telemetry"
)

// runState is a submitted run's lifecycle state.
type runState string

const (
	runQueued    runState = "queued" // waiting for a worker-pool slot
	runRunning   runState = "running"
	runDone      runState = "done"      // finished all rounds, "done" line emitted
	runSuspended runState = "suspended" // interrupted; checkpoint on disk, resumable
	runCancelled runState = "cancelled" // interrupted before executing any round
	runFailed    runState = "failed"
)

// run is one submitted scenario run.
type run struct {
	id   int
	name string
	seed uint64

	mu     sync.Mutex
	state  runState
	errMsg string
	resume string // checkpoint dir once suspended

	round int64 // last sampled round (atomic)

	interrupt chan struct{}
	stop      sync.Once
	done      chan struct{}
}

func (rn *run) cancel() { rn.stop.Do(func() { close(rn.interrupt) }) }

func (rn *run) setState(st runState) {
	rn.mu.Lock()
	rn.state = st
	rn.mu.Unlock()
}

// RunStatus is the externally visible state of a run (the GET /runs shape).
type RunStatus struct {
	ID    int    `json:"id"`
	Name  string `json:"name"`
	Seed  uint64 `json:"seed"`
	State string `json:"state"`
	Round int    `json:"round"`
	// Resume is the checkpoint directory a suspended run resumes from
	// (`btswarm -resume <dir>`); empty otherwise.
	Resume string `json:"resume,omitempty"`
	Error  string `json:"error,omitempty"`
}

func (rn *run) status() RunStatus {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	return RunStatus{
		ID: rn.id, Name: rn.name, Seed: rn.seed, State: string(rn.state),
		Round: int(atomic.LoadInt64(&rn.round)), Resume: rn.resume, Error: rn.errMsg,
	}
}

// runManager owns the submitted runs: a bounded worker pool (acquiring a
// slot is the backpressure — a submitter streams nothing until its run is
// scheduled), per-run interrupt channels for cancellation, and the drain
// path that suspends everything in flight to checkpoints.
type runManager struct {
	mu       sync.Mutex
	nextID   int
	runs     map[int]*run
	order    []int // submission order, for listing
	draining bool

	sem    chan struct{}
	wg     sync.WaitGroup
	active atomic.Int64 // currently executing runs (mirrors GaugeActiveRuns)
	ckRoot string
	tel    *telemetry.Recorder
}

func newRunManager(maxRuns int, ckRoot string, tel *telemetry.Recorder) *runManager {
	if maxRuns < 1 {
		maxRuns = 2
	}
	return &runManager{
		runs:   make(map[int]*run),
		sem:    make(chan struct{}, maxRuns),
		ckRoot: ckRoot,
		tel:    tel,
	}
}

var errDraining = errors.New("trackerd: draining, not accepting runs")

// submit registers a new run for the parsed spec. The caller then drives it
// with execute on its own goroutine (the HTTP handler's, so the response
// stream is the run's output).
func (m *runManager) submit(spec btsim.ScenarioSpec) (*run, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, errDraining
	}
	id := m.nextID
	m.nextID++
	rn := &run{
		id: id, name: spec.Name, seed: spec.Swarm.Seed,
		state:     runQueued,
		interrupt: make(chan struct{}),
		done:      make(chan struct{}),
	}
	m.runs[id] = rn
	m.order = append(m.order, id)
	m.wg.Add(1)
	m.tel.Inc(telemetry.CtrServeRuns)
	return rn, nil
}

// progressObserver forwards the stream to the emitter while tracking the
// run's last sampled round for the status API.
type progressObserver struct {
	*emit.Emitter
	rn *run
}

func (o progressObserver) OnSample(pt btsim.SeriesPoint) {
	atomic.StoreInt64(&o.rn.round, int64(pt.Round))
	o.Emitter.OnSample(pt)
}

// execute runs rn to completion (or suspension) on the calling goroutine,
// streaming jsonl through em. ckEvery is the run's periodic checkpoint
// interval (0: only drain/cancel snapshots). cancelWait is an extra
// cancellation signal (the client's request context) honoured while
// waiting for a pool slot; onStart fires once the run holds a slot.
func (m *runManager) execute(rn *run, spec btsim.ScenarioSpec, sampleEvery, ckEvery int, em *emit.Emitter, cancelWait <-chan struct{}, onStart func()) error {
	defer m.wg.Done()
	defer close(rn.done)

	// Bounded worker pool: block here until a slot frees up. The submitter
	// sees backpressure (no stream bytes yet); cancellation and drain still
	// apply while queued.
	select {
	case m.sem <- struct{}{}:
	case <-rn.interrupt:
		rn.setState(runCancelled)
		return fmt.Errorf("trackerd: run %d cancelled while queued", rn.id)
	case <-cancelWait:
		rn.cancel()
		rn.setState(runCancelled)
		return fmt.Errorf("trackerd: run %d abandoned while queued", rn.id)
	}
	defer func() { <-m.sem }()

	m.tel.SetGauge(telemetry.GaugeActiveRuns, m.active.Add(1))
	defer func() { m.tel.SetGauge(telemetry.GaugeActiveRuns, m.active.Add(-1)) }()

	rn.setState(runRunning)
	if onStart != nil {
		onStart()
	}

	if sampleEvery > 0 {
		spec.SampleEvery = sampleEvery
	}
	sc, err := spec.Compile()
	if err != nil {
		rn.fail(err)
		return err
	}
	// The daemon's shared recorder rides along: the emitter deliberately
	// does not implement TelemetryObserver, so attaching it never adds
	// lines to the stream and the output stays byte-identical to an
	// offline `btswarm -spec -emit jsonl` run.
	sc.Telemetry = m.tel
	sc.Interrupt = rn.interrupt
	ckDir := filepath.Join(m.ckRoot, fmt.Sprintf("run-%d", rn.id))
	sc.CheckpointDir = ckDir
	sc.CheckpointEvery = ckEvery
	sc.CheckpointRetain = -1

	err = sc.RunObserver(progressObserver{Emitter: em, rn: rn})
	switch {
	case err == nil:
		if em.Err() != nil {
			// The run finished but the client is gone; nothing to report to.
			rn.fail(fmt.Errorf("trackerd: run %d stream: %w", rn.id, em.Err()))
			return em.Err()
		}
		rn.setState(runDone)
		return nil
	case errors.Is(err, btsim.ErrInterrupted):
		round := resumeRound(ckDir)
		rn.mu.Lock()
		rn.state = runSuspended
		rn.resume = ckDir
		rn.mu.Unlock()
		em.Suspended(round, ckDir)
		return err
	default:
		rn.fail(err)
		return err
	}
}

func (rn *run) fail(err error) {
	rn.mu.Lock()
	rn.state = runFailed
	rn.errMsg = err.Error()
	rn.mu.Unlock()
}

// resumeRound reads the round the newest checkpoint in dir resumes from
// (encoded in the canonical file name), or -1.
func resumeRound(dir string) int {
	path, err := checkpoint.Latest(dir)
	if err != nil {
		return -1
	}
	name := filepath.Base(path)
	name = strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), filepath.Ext(name))
	n, err := strconv.Atoi(name)
	if err != nil {
		return -1
	}
	return n
}

// get returns a run by id.
func (m *runManager) get(id int) (*run, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rn, ok := m.runs[id]
	return rn, ok
}

// list returns every run's status in submission order.
func (m *runManager) list() []RunStatus {
	m.mu.Lock()
	ids := append([]int(nil), m.order...)
	runs := make([]*run, len(ids))
	for i, id := range ids {
		runs[i] = m.runs[id]
	}
	m.mu.Unlock()
	out := make([]RunStatus, len(runs))
	for i, rn := range runs {
		out[i] = rn.status()
	}
	return out
}

// drain stops accepting new runs, interrupts everything queued or running
// (each active run writes a resume-from-here checkpoint), waits for them to
// settle, and returns the final statuses of the runs that were suspended.
func (m *runManager) drain() []RunStatus {
	m.mu.Lock()
	m.draining = true
	active := make([]*run, 0, len(m.runs))
	for _, rn := range m.runs {
		active = append(active, rn)
	}
	m.mu.Unlock()
	for _, rn := range active {
		rn.cancel()
	}
	m.wg.Wait()
	var suspended []RunStatus
	for _, st := range m.list() {
		if st.State == string(runSuspended) {
			suspended = append(suspended, st)
		}
	}
	return suspended
}
