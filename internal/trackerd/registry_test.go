package trackerd

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"stratmatch/internal/btsim"
)

func key(id int) string { return fmt.Sprintf("peer-%d", id) }

// TestRegistryMatchesSwarm is the tentpole property: for the same derived
// seed and the same register/announce/depart sequence, the standalone
// registry hands out exactly the neighbor sets the in-sim tracker builds —
// the two run the shared btsim.HandoutPolicy over identically-ordered
// present sets, so every uniform index draw lands on the same id.
func TestRegistryMatchesSwarm(t *testing.T) {
	const (
		name      = "prop"
		baseSeed  = uint64(42)
		leechers  = 60
		seeds     = 4
		neighbors = 8
	)
	n := leechers + seeds

	// Reference: the simulator seeded exactly as the registry derives this
	// swarm's stream. PostFlashCrowd=false keeps the swarm RNG consumed by
	// announces only, so the streams cannot drift between compared ops.
	s, err := btsim.New(btsim.Options{
		Leechers:       leechers,
		Seeds:          seeds,
		Pieces:         16,
		PostFlashCrowd: false,
		NeighborCount:  neighbors,
		Seed:           swarmSeed(baseSeed, name),
	})
	if err != nil {
		t.Fatal(err)
	}

	g := NewRegistry(RegistryConfig{
		Seed:   baseSeed,
		Policy: btsim.HandoutPolicy{NeighborCount: neighbors},
	})
	// Mirror btsim.New's bootstrap: register the whole initial population,
	// then announce each id in order. (Registry.Announce registers and
	// announces in one step — the mid-run Join path — so the bootstrap
	// drives the internal ops directly.)
	rs := g.swarm(name)
	for i := 0; i < n; i++ {
		rs.register(key(i))
	}
	for i := 0; i < n; i++ {
		rs.announce(g.Policy(), int32(i))
	}

	live := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		live[i] = true
	}
	compare := func(stage string) {
		t.Helper()
		var buf []int32
		for id := range live {
			buf = s.Neighbors(buf[:0], id)
			sim := append([]int32(nil), buf...)
			sort.Slice(sim, func(a, b int) bool { return sim[a] < sim[b] })
			reg := g.Neighbors(name, key(id))
			if len(sim) == 0 && len(reg) == 0 {
				continue
			}
			if !reflect.DeepEqual(sim, reg) {
				t.Fatalf("%s: peer %d neighbor sets diverge:\n  sim %v\n  reg %v", stage, id, sim, reg)
			}
		}
	}
	compare("bootstrap")

	// Mixed churn: departures, joins (sim Join == registry Announce of an
	// unknown key: register + handout), and re-announces, in lockstep. Both
	// sides assign ids in arrival order, so id k is the same peer in each.
	next := n
	for round := 0; round < 25; round++ {
		if round%3 == 0 {
			// Depart the lowest live id: exercises present-set swap-delete
			// and edge unwiring on both sides.
			low := -1
			for id := range live {
				if low < 0 || id < low {
					low = id
				}
			}
			s.Depart(low)
			if !g.Stop(name, key(low)) {
				t.Fatalf("round %d: Stop(%q) = false for live peer", round, key(low))
			}
			delete(live, low)
		}
		for j := 0; j < 2; j++ {
			id := s.Join(400, false)
			if id != next {
				t.Fatalf("round %d: sim Join id %d, want %d", round, id, next)
			}
			res := g.Announce(name, key(next))
			if int(res.ID) != next {
				t.Fatalf("round %d: registry id %d, want %d", round, res.ID, next)
			}
			live[next] = true
			next++
		}
		// Re-announce a couple of live ids (deterministic pick: the two
		// highest), topping their neighborhoods back up.
		var ids []int
		for id := range live {
			ids = append(ids, id)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(ids)))
		for _, id := range ids[:2] {
			simAdded := s.Announce(id)
			regAdded := g.Announce(name, key(id)).Added
			if simAdded != regAdded {
				t.Fatalf("round %d: re-announce %d added %d (sim) vs %d (registry)", round, id, simAdded, regAdded)
			}
		}
		compare(fmt.Sprintf("round %d", round))
	}
}

func TestRegistryRecycledKeyAndDoubleDepart(t *testing.T) {
	g := NewRegistry(RegistryConfig{Seed: 7})
	a := g.Announce("sw", "a")
	b := g.Announce("sw", "b")
	if a.ID != 0 || b.ID != 1 {
		t.Fatalf("ids = %d, %d; want 0, 1", a.ID, b.ID)
	}
	if b.Added != 1 || len(b.Peers) != 1 || b.Peers[0] != "a" {
		t.Fatalf("b's handout = %+v; want the single other peer", b)
	}

	if !g.Stop("sw", "a") {
		t.Fatal("Stop of live key = false")
	}
	if g.Stop("sw", "a") {
		t.Fatal("double Stop = true; want no-op")
	}
	if g.Stop("sw", "ghost") {
		t.Fatal("Stop of unknown key = true")
	}
	if nbrs := g.Neighbors("sw", "a"); nbrs != nil {
		t.Fatalf("departed key still resolves: %v", nbrs)
	}
	// b's edge to the departed peer must have been unwired.
	if nbrs := g.Neighbors("sw", "b"); len(nbrs) != 0 {
		t.Fatalf("b still wired to departed peer: %v", nbrs)
	}

	// The key re-announcing is a fresh roster entry, not slot 0 resurrected.
	a2 := g.Announce("sw", "a")
	if a2.ID != 2 {
		t.Fatalf("recycled key id = %d; want fresh roster entry 2", a2.ID)
	}
	if len(a2.Peers) != 1 || a2.Peers[0] != "b" {
		t.Fatalf("recycled key handout = %v; want [b]", a2.Peers)
	}

	ent, ok := g.Scrape("sw")
	if !ok {
		t.Fatal("Scrape of known swarm = !ok")
	}
	want := ScrapeEntry{Swarm: "sw", Present: 2, TotalJoined: 3, Departed: 1, Edges: 1, Announces: 3}
	if ent != want {
		t.Fatalf("scrape = %+v; want %+v", ent, want)
	}
	if _, ok := g.Scrape("ghost-swarm"); ok {
		t.Fatal("Scrape of unknown swarm = ok")
	}
}

// TestRegistryDeterministicReplay pins that a fixed op sequence replays to
// identical wiring on a fresh registry — the serving-side determinism that
// makes daemon handouts reproducible for a given announce order.
func TestRegistryDeterministicReplay(t *testing.T) {
	replay := func() *Registry {
		g := NewRegistry(RegistryConfig{Seed: 99, Policy: btsim.HandoutPolicy{NeighborCount: 4}})
		for i := 0; i < 40; i++ {
			g.Announce("sw", key(i))
		}
		for i := 0; i < 40; i += 5 {
			g.Stop("sw", key(i))
		}
		for i := 0; i < 40; i += 3 {
			g.Announce("sw", key(i)) // mix of re-announces and rejoins
		}
		return g
	}
	g1, g2 := replay(), replay()
	for i := 0; i < 40; i++ {
		n1, n2 := g1.Neighbors("sw", key(i)), g2.Neighbors("sw", key(i))
		if !reflect.DeepEqual(n1, n2) {
			t.Fatalf("peer %d: replay diverged: %v vs %v", i, n1, n2)
		}
	}
	e1, _ := g1.Scrape("sw")
	e2, _ := g2.Scrape("sw")
	if e1 != e2 {
		t.Fatalf("scrape diverged: %+v vs %+v", e1, e2)
	}
}

// TestRegistryConcurrency hammers announce/stop/scrape from many goroutines
// across a handful of swarms; run under -race it pins the locking scheme,
// and the closing invariants catch lost updates.
func TestRegistryConcurrency(t *testing.T) {
	g := NewRegistry(RegistryConfig{Seed: 1, Policy: btsim.HandoutPolicy{NeighborCount: 6}})
	swarms := []string{"alpha", "beta", "gamma", "delta"}
	const workers = 8
	const opsPerWorker = 400

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				sw := swarms[(w+i)%len(swarms)]
				k := fmt.Sprintf("w%d-%d", w, i%50)
				switch i % 7 {
				case 5:
					g.Stop(sw, k)
				case 6:
					if i%2 == 0 {
						g.Scrape(sw)
					} else {
						g.ScrapeAll()
					}
				default:
					g.Announce(sw, k)
					g.Neighbors(sw, k)
				}
			}
		}(w)
	}
	wg.Wait()

	entries := g.ScrapeAll()
	if len(entries) != len(swarms) {
		t.Fatalf("ScrapeAll returned %d swarms; want %d", len(entries), len(swarms))
	}
	var totalAnnounces uint64
	for _, e := range entries {
		if e.Present+e.Departed != e.TotalJoined {
			t.Fatalf("%s: present %d + departed %d != joined %d", e.Swarm, e.Present, e.Departed, e.TotalJoined)
		}
		if e.Edges < 0 {
			t.Fatalf("%s: negative edge count %d", e.Swarm, e.Edges)
		}
		totalAnnounces += e.Announces
	}
	if totalAnnounces == 0 {
		t.Fatal("no announces recorded")
	}
	// Symmetric wiring: every live peer's neighbor list must link back.
	for _, sw := range swarms {
		rs := g.swarm(sw)
		rs.mu.Lock()
		for _, id := range rs.present {
			for _, nb := range rs.nbrs[id] {
				if !rs.Connected(nb, id) {
					t.Errorf("%s: %d->%d edge has no reverse half", sw, id, nb)
				}
			}
		}
		rs.mu.Unlock()
	}
}
