package trackerd

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadGen replays announce traffic against a live daemon: Concurrency
// workers issue announces for Peers distinct peer keys round-robin, paced
// to an offered Rate (announces/sec; 0 = as fast as the daemon answers),
// until Total announces have been sent or Duration has elapsed. Every
// N-th announce per key cycle is an event=stopped departure when Churn is
// set, so sustained runs exercise the register/depart path too.
type LoadGen struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Swarm is the swarm name announced into.
	Swarm string
	// Peers is the distinct peer-key population cycled through (min 1).
	Peers int
	// Rate is the offered announce rate per second across all workers
	// (0: unpaced — offered load is whatever the daemon sustains).
	Rate float64
	// Concurrency is the number of in-flight request workers (min 1).
	Concurrency int
	// Total caps the announces sent (0: bounded by Duration only).
	Total int
	// Duration caps the replay wall time (0: bounded by Total only).
	// At least one of Total and Duration must be set.
	Duration time.Duration
	// Churn, when k > 0, turns every k-th announce into an event=stopped
	// departure for its key, so the registry's depart/re-register path is
	// on the measured load too.
	Churn int
	// Client is the HTTP client (nil: a default with keep-alives).
	Client *http.Client
}

// Report is a completed replay's measurement: achieved throughput and
// announce latency quantiles over every completed request.
type Report struct {
	Announces int           `json:"announces"`
	Errors    int           `json:"errors"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	PerSec    float64       `json:"announces_per_sec"`
	P50       time.Duration `json:"p50_ns"`
	P90       time.Duration `json:"p90_ns"`
	P99       time.Duration `json:"p99_ns"`
	Max       time.Duration `json:"max_ns"`
}

// String renders the report as the loadgen subcommand's summary block.
func (r Report) String() string {
	ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
	return fmt.Sprintf(
		"announces:      %d (%d errors)\nelapsed:        %.2fs\nannounces/sec:  %.1f\nlatency ms:     p50 %.3f  p90 %.3f  p99 %.3f  max %.3f",
		r.Announces, r.Errors, r.Elapsed.Seconds(), r.PerSec,
		ms(r.P50), ms(r.P90), ms(r.P99), ms(r.Max))
}

// quantile returns the q-quantile (0..1) of sorted durations.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Run executes the replay. The context cancels it early; the report covers
// whatever completed.
func (lg LoadGen) Run(ctx context.Context) (Report, error) {
	if lg.BaseURL == "" {
		return Report{}, fmt.Errorf("loadgen: no daemon URL")
	}
	if lg.Total <= 0 && lg.Duration <= 0 {
		return Report{}, fmt.Errorf("loadgen: need a total announce count or a duration")
	}
	peers := lg.Peers
	if peers < 1 {
		peers = 1
	}
	workers := lg.Concurrency
	if workers < 1 {
		workers = 1
	}
	swarm := lg.Swarm
	if swarm == "" {
		swarm = "loadgen"
	}
	client := lg.Client
	if client == nil {
		client = &http.Client{}
	}
	if lg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lg.Duration)
		defer cancel()
	}

	announceURL := func(i int) string {
		key := fmt.Sprintf("lg-%d", i%peers)
		u := lg.BaseURL + "/announce?swarm=" + url.QueryEscape(swarm) + "&peer=" + url.QueryEscape(key)
		if lg.Churn > 0 && i > 0 && i%lg.Churn == 0 {
			u += "&event=stopped"
		}
		return u
	}

	var (
		seq       atomic.Int64
		errs      atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, 1024)
			for {
				i := int(seq.Add(1)) - 1
				if lg.Total > 0 && i >= lg.Total {
					break
				}
				if ctx.Err() != nil {
					break
				}
				// Open-loop pacing: announce i is due at start + i/Rate,
				// independent of how long earlier requests took, so the
				// offered load stays fixed while latency varies.
				if lg.Rate > 0 {
					due := start.Add(time.Duration(float64(i) / lg.Rate * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							return
						}
					}
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, announceURL(i), nil)
				if err != nil {
					errs.Add(1)
					continue
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					errs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	rep := Report{
		Announces: len(latencies),
		Errors:    int(errs.Load()),
		Elapsed:   elapsed,
		P50:       quantile(latencies, 0.50),
		P90:       quantile(latencies, 0.90),
		P99:       quantile(latencies, 0.99),
	}
	if len(latencies) > 0 {
		rep.Max = latencies[len(latencies)-1]
	}
	if elapsed > 0 {
		rep.PerSec = float64(rep.Announces) / elapsed.Seconds()
	}
	return rep, nil
}
