package trackerd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stratmatch/internal/btsim"
	"stratmatch/internal/emit"
	"stratmatch/internal/telemetry"
)

// offlineJSONL renders the reference output: the exact bytes
// `btswarm -spec FILE -emit jsonl` prints for the spec.
func offlineJSONL(t *testing.T, spec btsim.ScenarioSpec) []byte {
	t.Helper()
	sc, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	em := emit.New(&buf, spec.HasFaults(), nil)
	if err := sc.RunObserver(em); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postSpec(t *testing.T, url string, spec btsim.ScenarioSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServerRunStreamMatchesOffline pins the run-submission contract: the
// chunked POST /runs response is byte-identical to the offline jsonl
// emitter's output for the same spec — for a fault-free scenario and a
// fault-injecting one (which adds the fault counter columns).
func TestServerRunStreamMatchesOffline(t *testing.T) {
	_, ts := newTestServer(t, Config{Telemetry: telemetry.New()})
	for i, name := range []string{"poisson", "trackerdown"} {
		spec, err := btsim.NamedSpec(name, 46, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		want := offlineJSONL(t, spec)

		resp := postSpec(t, ts.URL, spec)
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, got)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("%s: Content-Type %q", name, ct)
		}
		if id := resp.Header.Get("X-Run-Id"); id != fmt.Sprint(i) {
			t.Fatalf("%s: X-Run-Id %q; want %d", name, id, i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: streamed output differs from offline emitter\nstream %d bytes, offline %d bytes\nstream head: %.200s\noffline head: %.200s",
				name, len(got), len(want), got, want)
		}
	}
}

// slowSpec is a scenario long enough to interrupt mid-run: a small swarm
// over many rounds, sampled every round.
func slowSpec(seed uint64) btsim.ScenarioSpec {
	return btsim.ScenarioSpec{
		Name:        "slowrun",
		Swarm:       btsim.Options{Leechers: 30, Seeds: 2, Pieces: 64, Seed: seed},
		Rounds:      200000,
		SampleEvery: 1,
	}
}

// readLines streams lines from the response until fn says stop or EOF.
func readLines(t *testing.T, body io.Reader, fn func(line string) bool) []string {
	t.Helper()
	var lines []string
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
		if !fn(sc.Text()) {
			break
		}
	}
	return lines
}

// TestServerCancelRun cancels a streaming run over DELETE /runs/{id}: the
// stream must end with a suspended trailer naming a resumable checkpoint,
// and the status API must report the suspension.
func TestServerCancelRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Telemetry: telemetry.New()})
	resp := postSpec(t, ts.URL, slowSpec(46))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Run-Id")

	cancelled := false
	lines := readLines(t, resp.Body, func(line string) bool {
		if !cancelled && strings.Contains(line, `"type":"sample"`) {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+id, nil)
			dresp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("DELETE: %v", err)
				return false
			}
			io.Copy(io.Discard, dresp.Body)
			dresp.Body.Close()
			if dresp.StatusCode != http.StatusAccepted {
				t.Errorf("DELETE status %d", dresp.StatusCode)
			}
			cancelled = true
		}
		return true
	})
	if len(lines) == 0 {
		t.Fatal("no stream output before cancellation")
	}
	last := lines[len(lines)-1]
	var trailer struct {
		Type   string `json:"type"`
		Round  int    `json:"round"`
		Resume string `json:"resume"`
	}
	if err := json.Unmarshal([]byte(last), &trailer); err != nil || trailer.Type != "suspended" {
		t.Fatalf("stream did not end with a suspended trailer: %q", last)
	}
	if trailer.Resume == "" || trailer.Round < 0 {
		t.Fatalf("suspended trailer lacks resume info: %+v", trailer)
	}

	sresp, err := http.Get(ts.URL + "/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st RunStatus
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.State != "suspended" || st.Resume != trailer.Resume {
		t.Fatalf("status after cancel = %+v; want suspended at %s", st, trailer.Resume)
	}
}

// TestServerDrainResumeStitch is the crash-recovery contract end to end:
// drain suspends an in-flight run to a checkpoint, and resuming that
// checkpoint offline continues the stream byte-identically — streamed
// prefix (minus the suspended trailer) + resumed output == the bytes of an
// uninterrupted run.
func TestServerDrainResumeStitch(t *testing.T) {
	spec := slowSpec(47)
	srv, ts := newTestServer(t, Config{Telemetry: telemetry.New()})

	resp := postSpec(t, ts.URL, spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	// Drain once the run has streamed a few samples.
	drained := make(chan []RunStatus, 1)
	samples := 0
	lines := readLines(t, resp.Body, func(line string) bool {
		if strings.Contains(line, `"type":"sample"`) {
			samples++
			if samples == 3 {
				go func() { drained <- srv.Drain() }()
			}
		}
		return true
	})
	suspended := <-drained
	if len(suspended) != 1 {
		t.Fatalf("drain suspended %d runs; want 1", len(suspended))
	}
	resumeDir := suspended[0].Resume
	if resumeDir == "" {
		t.Fatal("suspended run has no resume dir")
	}

	// A drained daemon refuses new submissions.
	r2 := postSpec(t, ts.URL, spec)
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission after drain: status %d; want 503", r2.StatusCode)
	}

	// Strip the suspended trailer; everything before it is the prefix.
	if len(lines) == 0 || !strings.Contains(lines[len(lines)-1], `"type":"suspended"`) {
		t.Fatalf("stream did not end with suspended trailer; last %q", lines[len(lines)-1])
	}
	prefix := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	if len(lines) == 1 {
		prefix = ""
	}

	// Resume offline from the daemon's checkpoint, exactly as
	// `btswarm -resume <dir> -emit jsonl` would.
	rspec, err := btsim.ResumeSpec(resumeDir)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := rspec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sc.ResumeFrom = resumeDir
	var resumed bytes.Buffer
	em := emit.New(&resumed, rspec.HasFaults(), nil)
	if err := sc.RunObserver(em); err != nil {
		t.Fatal(err)
	}

	// The uninterrupted reference run. slowSpec is heavy at full length, so
	// shorten both sides consistently: the stitch property holds for any
	// horizon past the suspension round, and the resumed run above already
	// ran to the spec'd end — so compare against the full offline run.
	want := offlineJSONL(t, spec)
	got := prefix + resumed.String()
	if got != string(want) {
		t.Fatalf("stitched stream differs from uninterrupted run: stitched %d bytes, reference %d bytes",
			len(got), len(want))
	}
}

// TestServerAnnounceScrapeHTTP covers the announce/scrape endpoints'
// surface: handouts, departures, per-swarm and global scrape, and the
// error paths.
func TestServerAnnounceScrapeHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Seed: 5, Telemetry: telemetry.New()})
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, body
	}

	code, body := get("/announce?swarm=sw&peer=a")
	if code != http.StatusOK {
		t.Fatalf("announce: %d %s", code, body)
	}
	var res AnnounceResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Swarm != "sw" || res.Peer != "a" || res.ID != 0 {
		t.Fatalf("announce result %+v", res)
	}

	code, body = get("/announce?swarm=sw&peer=b&event=started")
	if code != http.StatusOK {
		t.Fatalf("announce b: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Peers) != 1 || res.Peers[0] != "a" {
		t.Fatalf("b's handout %+v; want [a]", res.Peers)
	}

	if code, body = get("/announce?swarm=sw&peer=a&event=stopped"); code != http.StatusOK ||
		!strings.Contains(string(body), `"stopped":true`) {
		t.Fatalf("stop: %d %s", code, body)
	}
	if code, _ = get("/announce?swarm=sw"); code != http.StatusBadRequest {
		t.Fatalf("missing peer: %d", code)
	}
	if code, _ = get("/announce?swarm=sw&peer=x&event=paused"); code != http.StatusBadRequest {
		t.Fatalf("bad event: %d", code)
	}

	code, body = get("/scrape?swarm=sw")
	if code != http.StatusOK {
		t.Fatalf("scrape: %d", code)
	}
	var ent ScrapeEntry
	if err := json.Unmarshal(body, &ent); err != nil {
		t.Fatal(err)
	}
	if ent.Present != 1 || ent.TotalJoined != 2 || ent.Departed != 1 {
		t.Fatalf("scrape %+v", ent)
	}
	if code, _ = get("/scrape?swarm=ghost"); code != http.StatusNotFound {
		t.Fatalf("scrape unknown: %d", code)
	}
	if code, body = get("/scrape"); code != http.StatusOK || !strings.Contains(string(body), `"swarms"`) {
		t.Fatalf("scrape all: %d %s", code, body)
	}
	if code, body = get("/metrics"); code != http.StatusOK ||
		!strings.Contains(string(body), "trackerd_announces_total") {
		t.Fatalf("/metrics: %d %.200s", code, body)
	}
	if code, _ = get("/runs/99"); code != http.StatusNotFound {
		t.Fatalf("unknown run: %d", code)
	}
	if code, _ = get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}

	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d", resp.StatusCode)
	}
}

// TestLoadGen drives the generator at a live daemon and sanity-checks the
// report: all announces land, quantiles are ordered, throughput is counted.
func TestLoadGen(t *testing.T) {
	_, ts := newTestServer(t, Config{Seed: 9, Telemetry: telemetry.New()})
	lg := LoadGen{
		BaseURL:     ts.URL,
		Swarm:       "lg",
		Peers:       40,
		Concurrency: 4,
		Total:       300,
		Churn:       10,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := lg.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("report has %d errors: %+v", rep.Errors, rep)
	}
	if rep.Announces != 300 {
		t.Fatalf("announces %d; want 300", rep.Announces)
	}
	if rep.PerSec <= 0 || rep.Elapsed <= 0 {
		t.Fatalf("throughput not measured: %+v", rep)
	}
	if rep.P50 > rep.P90 || rep.P90 > rep.P99 || rep.P99 > rep.Max {
		t.Fatalf("quantiles out of order: %+v", rep)
	}
	if !strings.Contains(rep.String(), "announces/sec") {
		t.Fatalf("report text: %q", rep.String())
	}
}
