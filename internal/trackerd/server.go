package trackerd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"stratmatch/internal/btsim"
	"stratmatch/internal/emit"
	"stratmatch/internal/telemetry"
)

// maxSpecBytes bounds a POST /runs body: scenario specs are small JSON
// documents; anything larger is hostile or a mistake.
const maxSpecBytes = 1 << 20

// Config configures the daemon.
type Config struct {
	// Seed is the registry's base seed (see RegistryConfig.Seed).
	Seed uint64
	// Policy is the announce handout policy; zero fields take the
	// simulator defaults.
	Policy btsim.HandoutPolicy
	// MaxRuns bounds concurrently executing scenario runs (the POST /runs
	// worker pool). 0 means 2; submissions beyond the bound queue.
	MaxRuns int
	// CheckpointDir is the root under which each run gets its own
	// checkpoint directory (run-<id>/) for periodic checkpoints and the
	// drain-on-SIGTERM snapshot.
	CheckpointDir string
	// CheckpointEvery is the default per-run periodic checkpoint interval
	// in rounds (0: only drain/cancel snapshots). A submission may
	// override it with ?checkpoint_every=N.
	CheckpointEvery int
	// Telemetry is the recorder behind /metrics; nil disables recording
	// (the endpoint then serves an empty registry).
	Telemetry *telemetry.Recorder
	// Logf, when set, receives request-level diagnostics (normally
	// log.Printf or a test logger).
	Logf func(format string, args ...any)
}

// Server is the tracker daemon: announce/scrape over the concurrent
// registry, the run-submission API, and the telemetry/pprof surface.
type Server struct {
	cfg Config
	reg *Registry
	rm  *runManager
	mux *http.ServeMux
}

// NewServer builds the daemon.
func NewServer(cfg Config) *Server {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = "trackerd-checkpoints"
	}
	s := &Server{
		cfg: cfg,
		reg: NewRegistry(RegistryConfig{Seed: cfg.Seed, Policy: cfg.Policy, Telemetry: cfg.Telemetry}),
		rm:  newRunManager(cfg.MaxRuns, cfg.CheckpointDir, cfg.Telemetry),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/announce", s.handleAnnounce)
	mux.HandleFunc("/scrape", s.handleScrape)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/runs/", s.handleRun)
	mux.Handle("/metrics", cfg.Telemetry.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux = mux
	return s
}

// Registry exposes the underlying tracker registry (tests, benchmarks).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain rejects new run submissions, interrupts every queued and running
// run (active ones snapshot a resume-from-here checkpoint), waits for them
// to settle, and returns the suspended runs — the SIGTERM path. Announce
// and scrape keep being served; the caller closes the listener.
func (s *Server) Drain() []RunStatus { return s.rm.drain() }

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// handleAnnounce serves GET /announce?swarm=S&peer=KEY[&event=started|stopped].
// A started (or eventless) announce registers the peer if needed and
// returns its handout; event=stopped departs it.
func (s *Server) handleAnnounce(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "announce is GET")
		return
	}
	q := r.URL.Query()
	swarm, peer := q.Get("swarm"), q.Get("peer")
	if swarm == "" || peer == "" {
		httpError(w, http.StatusBadRequest, "announce requires swarm and peer parameters")
		return
	}
	switch ev := q.Get("event"); ev {
	case "", "started":
		writeJSON(w, s.reg.Announce(swarm, peer))
	case "stopped":
		writeJSON(w, struct {
			Swarm   string `json:"swarm"`
			Peer    string `json:"peer"`
			Stopped bool   `json:"stopped"`
		}{swarm, peer, s.reg.Stop(swarm, peer)})
	default:
		httpError(w, http.StatusBadRequest, "event %q: must be started or stopped", ev)
	}
}

// handleScrape serves GET /scrape[?swarm=S]: one swarm's statistics, or
// all swarms name-sorted.
func (s *Server) handleScrape(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "scrape is GET")
		return
	}
	if swarm := r.URL.Query().Get("swarm"); swarm != "" {
		entry, ok := s.reg.Scrape(swarm)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown swarm %q", swarm)
			return
		}
		writeJSON(w, entry)
		return
	}
	writeJSON(w, struct {
		Swarms []ScrapeEntry `json:"swarms"`
	}{s.reg.ScrapeAll()})
}

// handleRuns serves POST /runs (submit a ScenarioSpec, stream its jsonl
// output) and GET /runs (list submitted runs).
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, struct {
			Runs []RunStatus `json:"runs"`
		}{s.rm.list()})
	case http.MethodPost:
		s.handleSubmit(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "runs is GET or POST")
	}
}

// handleSubmit accepts a ScenarioSpec JSON body and streams the run's
// jsonl output as the response — the exact bytes `btswarm -spec FILE -emit
// jsonl` would print for the same spec and seed, chunked as the run
// produces them. Optional query parameters: sample_every (override the
// spec's sampling period) and checkpoint_every (override the daemon's
// periodic checkpoint default for this run).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading spec: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	spec, err := btsim.ParseSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sampleEvery, err := intParam(r, "sample_every", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ckEvery, err := intParam(r, "checkpoint_every", s.cfg.CheckpointEvery)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rn, err := s.rm.submit(spec)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.cfg.Logf("trackerd: run %d submitted: scenario %s seed %d", rn.id, spec.Name, spec.Swarm.Seed)

	// The response streams the run: headers first (the run id arrives
	// before any output line), then one flushed chunk per jsonl line.
	var flush func()
	if fl, ok := w.(http.Flusher); ok {
		flush = fl.Flush
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Run-Id", strconv.Itoa(rn.id))
	em := emit.New(w, spec.HasFaults(), flush)

	onStart := func() {
		w.WriteHeader(http.StatusOK)
		if flush != nil {
			flush()
		}
	}
	if err := s.rm.execute(rn, spec, sampleEvery, ckEvery, em, r.Context().Done(), onStart); err != nil {
		s.cfg.Logf("trackerd: run %d: %v", rn.id, err)
	} else {
		s.cfg.Logf("trackerd: run %d done", rn.id)
	}
}

// intParam parses an optional non-negative integer query parameter.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%s %q: must be a non-negative integer", name, v)
	}
	return n, nil
}

// handleRun serves GET /runs/{id} (status) and DELETE /runs/{id}
// (cancel: the run is interrupted at its next round boundary and suspends
// to a resumable checkpoint).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/runs/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		httpError(w, http.StatusNotFound, "run id %q", idStr)
		return
	}
	rn, ok := s.rm.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %d", id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, rn.status())
	case http.MethodDelete:
		rn.cancel()
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, rn.status())
	default:
		httpError(w, http.StatusMethodNotAllowed, "run is GET or DELETE")
	}
}
