// Package trackerd is the tracker-as-a-service layer: a standalone,
// concurrent announce/scrape registry running the simulator's exact
// neighbor-handout policy, an HTTP daemon serving it alongside a
// run-submission API that streams scenario results over the jsonl wire
// format, and a load generator for driving announce traffic at it.
//
// The registry is the serving twin of the in-sim tracker (btsim/tracker.go):
// same append-only roster discipline, same swap-delete present set, same
// seed-deterministic btsim.HandoutPolicy selection loop — so for identical
// announce sequences and the same seed it hands out identical neighbor
// sets, a property pinned by TestRegistryMatchesSwarm.
package trackerd

import (
	"hash/fnv"
	"sort"
	"sync"

	"stratmatch/internal/btsim"
	"stratmatch/internal/rng"
	"stratmatch/internal/telemetry"
)

// registryShards is the shard count of the swarm-name map. Announces to
// different swarms contend only on a shard's read lock; announces within
// one swarm serialize on that swarm's own mutex, which is what keeps a
// swarm's handout sequence deterministic under concurrent clients.
const registryShards = 16

// RegistryConfig configures a Registry.
type RegistryConfig struct {
	// Seed is the base seed; each swarm's RNG derives from it and the
	// swarm name (see swarmSeed), so distinct swarms draw independent
	// streams and a swarm's handouts replay for a fixed announce sequence.
	Seed uint64
	// Policy is the neighbor handout policy. Zero fields default to the
	// simulator's defaults (NeighborCount 20, MaxNeighbors 2d+8).
	Policy btsim.HandoutPolicy
	// Telemetry is the optional runtime recorder (nil: no-op).
	Telemetry *telemetry.Recorder
}

// Registry is the concurrent tracker state: swarm name → per-swarm
// registration, sharded by name hash.
type Registry struct {
	cfg    RegistryConfig
	shards [registryShards]registryShard
}

type registryShard struct {
	mu     sync.RWMutex
	swarms map[string]*regSwarm
}

// regSwarm is one swarm's registration state, mirroring the in-sim tracker
// exactly where determinism depends on it: the roster (keys) is
// append-only — a peer that stops and announces again is a new id, like the
// simulator's roster — and the present set uses the identical swap-delete,
// so the uniform index draws of the shared handout policy land on the same
// ids. Wiring is symmetric adjacency lists; removal swap-deletes, matching
// the sim's CSR edge-half removal (list order never feeds the RNG).
type regSwarm struct {
	mu   sync.Mutex
	name string
	r    *rng.RNG

	byKey    map[string]int32 // live peer key → id
	keys     []string         // id → key (append-only roster)
	present  []int32          // present ids, swap-delete order
	pos      []int32          // id → index in present, −1 absent
	departed []bool
	nbrs     [][]int32

	announces uint64 // served announces (scrape stat)
	edges     int64  // live symmetric connections
}

// NewRegistry builds an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.Policy.NeighborCount == 0 {
		cfg.Policy.NeighborCount = 20
	}
	if cfg.Policy.MaxNeighbors == 0 {
		cfg.Policy.MaxNeighbors = 2*cfg.Policy.NeighborCount + 8
	}
	g := &Registry{cfg: cfg}
	for i := range g.shards {
		g.shards[i].swarms = make(map[string]*regSwarm)
	}
	return g
}

// Policy returns the handout policy the registry serves (defaults applied).
func (g *Registry) Policy() btsim.HandoutPolicy { return g.cfg.Policy }

func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// swarmSeed derives a swarm's RNG seed from the registry seed and the swarm
// name. The property test replays it to seed the reference btsim.Swarm.
func swarmSeed(base uint64, name string) uint64 { return base ^ fnv64(name) }

// swarm returns the named swarm's state, creating it on first contact.
func (g *Registry) swarm(name string) *regSwarm {
	sh := &g.shards[fnv64(name)%registryShards]
	sh.mu.RLock()
	rs := sh.swarms[name]
	sh.mu.RUnlock()
	if rs != nil {
		return rs
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rs = sh.swarms[name]; rs == nil {
		rs = &regSwarm{
			name:  name,
			r:     rng.New(swarmSeed(g.cfg.Seed, name)),
			byKey: make(map[string]int32),
		}
		sh.swarms[name] = rs
	}
	return rs
}

// regSwarm implements btsim.HandoutState. All methods run under rs.mu.

func (rs *regSwarm) PresentCount() int        { return len(rs.present) }
func (rs *regSwarm) PresentAt(i int) int32    { return rs.present[i] }
func (rs *regSwarm) DegreeOf(id int32) int    { return len(rs.nbrs[id]) }
func (rs *regSwarm) SameSide(a, b int32) bool { return true }
func (rs *regSwarm) Connect(a, b int32) {
	rs.nbrs[a] = append(rs.nbrs[a], b)
	rs.nbrs[b] = append(rs.nbrs[b], a)
	rs.edges++
}

func (rs *regSwarm) Connected(a, b int32) bool {
	for _, n := range rs.nbrs[a] {
		if n == b {
			return true
		}
	}
	return false
}

// register adds a new roster entry for key and puts it in the present set
// (the in-sim trackerRegister). Caller holds rs.mu and has checked the key
// is not live.
func (rs *regSwarm) register(key string) int32 {
	id := int32(len(rs.keys))
	rs.keys = append(rs.keys, key)
	rs.departed = append(rs.departed, false)
	rs.nbrs = append(rs.nbrs, nil)
	rs.pos = append(rs.pos, int32(len(rs.present)))
	rs.present = append(rs.present, id)
	rs.byKey[key] = id
	return id
}

// unregister swap-deletes id from the present set — byte-for-byte the
// in-sim trackerUnregister, because the resulting present order feeds the
// handout policy's uniform index draws.
func (rs *regSwarm) unregister(id int32) {
	i := rs.pos[id]
	last := int32(len(rs.present) - 1)
	moved := rs.present[last]
	rs.present[i] = moved
	rs.pos[moved] = i
	rs.present = rs.present[:last]
	rs.pos[id] = -1
}

// announce runs the shared handout policy for id. Caller holds rs.mu.
func (rs *regSwarm) announce(hp btsim.HandoutPolicy, id int32) int {
	if id < 0 || int(id) >= len(rs.keys) || rs.departed[id] {
		return 0
	}
	rs.announces++
	return hp.Handout(rs, rs.r, id)
}

// depart removes id: unwire every connection (swap-delete on the far
// side's list, mirroring the sim's edge-half removal), leave the present
// set, and retire the roster entry. Double departs are no-ops, like the
// sim's. Caller holds rs.mu.
func (rs *regSwarm) depart(id int32) bool {
	if id < 0 || int(id) >= len(rs.keys) || rs.departed[id] {
		return false
	}
	for _, nb := range rs.nbrs[id] {
		l := rs.nbrs[nb]
		for i, n := range l {
			if n == id {
				l[i] = l[len(l)-1]
				rs.nbrs[nb] = l[:len(l)-1]
				break
			}
		}
	}
	rs.edges -= int64(len(rs.nbrs[id]))
	rs.nbrs[id] = nil
	rs.departed[id] = true
	rs.unregister(id)
	delete(rs.byKey, rs.keys[id])
	return true
}

// AnnounceResult is one served announce: the peer's id in the swarm roster,
// the connections this handout added, and the peer's full current neighbor
// key list (the tracker response).
type AnnounceResult struct {
	Swarm string   `json:"swarm"`
	Peer  string   `json:"peer"`
	ID    int32    `json:"id"`
	Added int      `json:"added"`
	Peers []string `json:"peers"`
}

// Announce serves one announce: an unknown (or previously stopped) peer key
// registers as a fresh roster entry, then receives a neighbor handout from
// the shared policy. Re-announces of a live key top its neighborhood back
// up to the target. Announces within one swarm serialize; distinct swarms
// proceed concurrently.
func (g *Registry) Announce(swarm, peerKey string) AnnounceResult {
	tel := g.cfg.Telemetry
	tel.Inc(telemetry.CtrServeAnnounces)
	rs := g.swarm(swarm)
	span := tel.StartPhase(telemetry.PhaseHandout)
	rs.mu.Lock()
	id, ok := rs.byKey[peerKey]
	if !ok {
		id = rs.register(peerKey)
	}
	added := rs.announce(g.cfg.Policy, id)
	peers := make([]string, len(rs.nbrs[id]))
	for i, nb := range rs.nbrs[id] {
		peers[i] = rs.keys[nb]
	}
	rs.mu.Unlock()
	tel.EndPhase(telemetry.PhaseHandout, span)
	return AnnounceResult{Swarm: swarm, Peer: peerKey, ID: id, Added: added, Peers: peers}
}

// Stop serves an event=stopped announce: the peer leaves the swarm and its
// connections are unwired. It reports whether the key was live (stopping an
// unknown or already-stopped key is a no-op, mirroring the sim's guarded
// double-depart).
func (g *Registry) Stop(swarm, peerKey string) bool {
	g.cfg.Telemetry.Inc(telemetry.CtrServeAnnounces)
	rs := g.swarm(swarm)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	id, ok := rs.byKey[peerKey]
	if !ok {
		return false
	}
	return rs.depart(id)
}

// ScrapeEntry is one swarm's scrape statistics.
type ScrapeEntry struct {
	Swarm       string `json:"swarm"`
	Present     int    `json:"present"`
	TotalJoined int    `json:"total_joined"`
	Departed    int    `json:"departed"`
	Edges       int64  `json:"edges"`
	Announces   uint64 `json:"announces"`
}

func (rs *regSwarm) scrape() ScrapeEntry {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return ScrapeEntry{
		Swarm:       rs.name,
		Present:     len(rs.present),
		TotalJoined: len(rs.keys),
		Departed:    len(rs.keys) - len(rs.present),
		Edges:       rs.edges,
		Announces:   rs.announces,
	}
}

// Scrape returns one swarm's statistics (false if the registry has never
// seen the name).
func (g *Registry) Scrape(swarm string) (ScrapeEntry, bool) {
	g.cfg.Telemetry.Inc(telemetry.CtrServeScrapes)
	sh := &g.shards[fnv64(swarm)%registryShards]
	sh.mu.RLock()
	rs := sh.swarms[swarm]
	sh.mu.RUnlock()
	if rs == nil {
		return ScrapeEntry{}, false
	}
	return rs.scrape(), true
}

// ScrapeAll returns every known swarm's statistics, name-sorted.
func (g *Registry) ScrapeAll() []ScrapeEntry {
	g.cfg.Telemetry.Inc(telemetry.CtrServeScrapes)
	var out []ScrapeEntry
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		swarms := make([]*regSwarm, 0, len(sh.swarms))
		for _, rs := range sh.swarms {
			swarms = append(swarms, rs)
		}
		sh.mu.RUnlock()
		for _, rs := range swarms {
			out = append(out, rs.scrape())
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Swarm < out[b].Swarm })
	return out
}

// Neighbors returns the sorted neighbor ids of a live peer key (nil when
// the key is unknown). Test and diagnostic surface.
func (g *Registry) Neighbors(swarm, peerKey string) []int32 {
	rs := g.swarm(swarm)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	id, ok := rs.byKey[peerKey]
	if !ok {
		return nil
	}
	out := append([]int32(nil), rs.nbrs[id]...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
