package btsim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stratmatch/internal/checkpoint"
)

// ckptScenario compiles a catalog scenario shrunk to a short horizon with
// dense sampling — small enough that resuming from every single round
// stays cheap, faithful enough to exercise churn, shocks and faults.
func ckptScenario(t testing.TB, name string, seed uint64) Scenario {
	t.Helper()
	sp, err := NamedSpec(name, seed, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	sp = sp.Scaled(0.12)
	sp.SampleEvery = 1
	sc, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// fmtResult renders a run result into a comparable string. Formatting
// (rather than struct equality) absorbs the NaN sentinels SeriesPoint and
// Metrics legitimately carry.
func fmtResult(res *ScenarioResult) string {
	var b strings.Builder
	for i := range res.Series {
		fmt.Fprintf(&b, "S%d %+v\n", i, res.Series[i])
	}
	for i := range res.Events {
		fmt.Fprintf(&b, "E%d %+v\n", i, res.Events[i])
	}
	fmt.Fprintf(&b, "F %+v\n", res.Final)
	fmt.Fprintf(&b, "J %d D %d\n", res.TotalJoined, res.TotalDeparted)
	return b.String()
}

// stripCheckpointEvents removes the "checkpoint" events a checkpointing
// run adds to the stream, leaving what a non-checkpointing run reports.
func stripCheckpointEvents(events []RunEvent) []RunEvent {
	out := events[:0:0]
	for _, ev := range events {
		if ev.Kind != "checkpoint" {
			out = append(out, ev)
		}
	}
	return out
}

// TestCheckpointResumeByteIdentical is the acceptance property: for every
// catalog scenario — fault-free and faulted — a run checkpointed at EVERY
// round and resumed from EACH of those checkpoints produces exactly the
// remaining sample/event stream and final result of the uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("resumes from every round of every catalog scenario")
	}
	for _, name := range ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc := ckptScenario(t, name, 46)
			golden, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			goldenStr := fmtResult(golden)

			dir := t.TempDir()
			ck := sc
			ck.CheckpointEvery = 1
			ck.CheckpointDir = dir
			ck.CheckpointRetain = -1 // keep every round's checkpoint
			full, err := ck.Run()
			if err != nil {
				t.Fatal(err)
			}
			// The checkpointing run itself must be byte-identical to the
			// golden run once its extra "checkpoint" events are stripped —
			// checkpointing reads state, never perturbs it.
			fullCmp := *full
			fullCmp.Events = stripCheckpointEvents(full.Events)
			if got := fmtResult(&fullCmp); got != goldenStr {
				t.Fatalf("checkpointing perturbed the run:\n--- golden ---\n%s--- checkpointed ---\n%s", goldenStr, got)
			}

			// One checkpoint per round, resuming from rounds 1..Rounds.
			for k := 1; k <= sc.Rounds; k++ {
				res := sc
				res.ResumeFrom = filepath.Join(dir, checkpoint.FileName(k))
				resumed, err := res.Run()
				if err != nil {
					t.Fatalf("resume from round %d: %v", k, err)
				}
				// SampleEvery is 1, so the golden run has one sample per
				// round: the resumed stream must equal the golden tail.
				want := &ScenarioResult{
					Name:          golden.Name,
					Series:        golden.Series[k:],
					Events:        eventsFromRound(golden.Events, k),
					Final:         golden.Final,
					TotalJoined:   golden.TotalJoined,
					TotalDeparted: golden.TotalDeparted,
				}
				if got, wantStr := fmtResult(resumed), fmtResult(want); got != wantStr {
					t.Fatalf("resume from round %d diverged:\n--- want ---\n%s--- got ---\n%s", k, wantStr, got)
				}
			}
		})
	}
}

func eventsFromRound(events []RunEvent, round int) []RunEvent {
	out := events[:0:0]
	for _, ev := range events {
		if ev.Round >= round {
			out = append(out, ev)
		}
	}
	return out
}

// TestCheckpointInterruptAndResume covers the signal path: a run whose
// Interrupt channel is already closed writes a resume-from-here checkpoint
// and returns ErrInterrupted without delivering OnDone; resuming that
// checkpoint completes the run byte-identically.
func TestCheckpointInterruptAndResume(t *testing.T) {
	sc := ckptScenario(t, "trackerdown", 46)
	golden, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	stop := make(chan struct{})
	close(stop)
	intr := sc
	intr.CheckpointDir = dir
	intr.Interrupt = stop
	res, err := intr.Run()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned (%v, %v), want ErrInterrupted", res, err)
	}
	path := filepath.Join(dir, checkpoint.FileName(0))
	if _, statErr := os.Stat(path); statErr != nil {
		t.Fatalf("no checkpoint written on interrupt: %v", statErr)
	}

	resume := sc
	resume.ResumeFrom = dir // directory form: newest checkpoint
	resumed, err := resume.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmtResult(resumed), fmtResult(golden); got != want {
		t.Fatalf("resume after interrupt diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestCheckpointRotation: the default retention keeps the newest three
// checkpoints; each "checkpoint" event refers to a file already on disk.
func TestCheckpointRotation(t *testing.T) {
	sc := ckptScenario(t, "poisson", 46)
	dir := t.TempDir()
	ck := sc
	ck.CheckpointEvery = 1
	ck.CheckpointDir = dir // CheckpointRetain left 0: default 3
	res, err := ck.Run()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("retention left %d checkpoints, want 3", len(entries))
	}
	for i, want := range []int{sc.Rounds - 2, sc.Rounds - 1, sc.Rounds} {
		if got := entries[i].Name(); got != checkpoint.FileName(want) {
			t.Fatalf("retained file %d is %s, want %s", i, got, checkpoint.FileName(want))
		}
	}
	nCkpt := 0
	for _, ev := range res.Events {
		if ev.Kind == "checkpoint" {
			nCkpt++
		}
	}
	if nCkpt != sc.Rounds {
		t.Fatalf("%d checkpoint events for %d rounds", nCkpt, sc.Rounds)
	}
}

// TestCheckpointBindingRejected: a checkpoint only resumes the exact
// workload it came from — name, seed, horizon and spec are all verified.
func TestCheckpointBindingRejected(t *testing.T) {
	sc := ckptScenario(t, "flashcrowd", 46)
	dir := t.TempDir()
	ck := sc
	ck.CheckpointEvery = sc.Rounds // single checkpoint at the end of the run
	ck.CheckpointDir = dir
	if _, err := ck.Run(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"wrong name", func(s *Scenario) { s.Name = "other" }, "scenario"},
		{"wrong seed", func(s *Scenario) { s.Opt.Seed++ }, "seed"},
		{"wrong horizon", func(s *Scenario) { s.Rounds++ }, "horizon"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := sc
			tc.mutate(&bad)
			bad.ResumeFrom = dir
			if _, err := bad.Run(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("resume with %s returned %v, want error mentioning %q", tc.name, err, tc.want)
			}
		})
	}

	t.Run("wrong spec", func(t *testing.T) {
		other := ckptScenario(t, "flashcrowd", 46)
		other.SampleEvery = 7 // post-compile override: spec bytes still match
		sp, err := NamedSpec("flashcrowd", 46, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		sp = sp.Scaled(0.12)
		sp.SampleEvery = 1
		sp.ReannounceInterval = 5 // a real spec difference
		diff, err := sp.Compile()
		if err != nil {
			t.Fatal(err)
		}
		diff.ResumeFrom = dir
		if _, err := diff.Run(); err == nil || !strings.Contains(err.Error(), "different spec") {
			t.Fatalf("resume with a different spec returned %v", err)
		}
		_ = other
	})

	t.Run("missing path", func(t *testing.T) {
		bad := sc
		bad.ResumeFrom = filepath.Join(dir, "no-such.ckpt")
		if _, err := bad.Run(); err == nil {
			t.Fatal("resume from a missing path succeeded")
		}
	})
}

// TestResumeSpec: the spec embedded in a checkpoint reconstructs the
// workload without any external scenario description.
func TestResumeSpec(t *testing.T) {
	sc := ckptScenario(t, "splitbrain", 46)
	dir := t.TempDir()
	ck := sc
	ck.CheckpointEvery = 10
	ck.CheckpointDir = dir
	if _, err := ck.Run(); err != nil {
		t.Fatal(err)
	}
	sp, err := ResumeSpec(dir)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Name != sc.Name || rebuilt.Rounds != sc.Rounds || rebuilt.Opt.Seed != sc.Opt.Seed {
		t.Fatalf("embedded spec rebuilt %s/%d/%d, want %s/%d/%d",
			rebuilt.Name, rebuilt.Rounds, rebuilt.Opt.Seed, sc.Name, sc.Rounds, sc.Opt.Seed)
	}
	rebuilt.ResumeFrom = dir
	if _, err := rebuilt.Run(); err != nil {
		t.Fatalf("run rebuilt from the embedded spec failed to resume: %v", err)
	}
}

// TestAnnounceRecycledSlotNoop is the tracker regression for the
// checkpoint/resume boundary: a re-announce from a peer whose slot was
// recycled must be a guarded no-op, not a read of another occupant's CSR
// block.
func TestAnnounceRecycledSlotNoop(t *testing.T) {
	s, err := New(Options{Leechers: 8, Seeds: 1, Pieces: 16, PieceKbit: 256,
		NeighborCount: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	// Simulate the stale state: the registry still lists peer 3, but its
	// slot has been recycled out from under it.
	s.peers[3].slot = -1
	if added := s.Announce(3); added != 0 {
		t.Fatalf("announce from a slotless peer added %d edges", added)
	}
	// The sweep over the registry must skip it rather than index slot -1.
	s.ReannounceUnderConnected(1)
}

// TestScenarioCheckpointOffZeroAlloc pins that the checkpoint plumbing is
// free when off: a run with CheckpointEvery 0 (and an armed Interrupt
// channel) allocates no more per round than the engine already did —
// the poll and the disabled checkpoint branch add nothing.
func TestScenarioCheckpointOffZeroAlloc(t *testing.T) {
	stop := make(chan struct{}) // never fires
	sc := Scenario{
		Name: "alloc-pin",
		Opt: Options{Leechers: 40, Seeds: 2, Pieces: 32, PieceKbit: 512,
			PostFlashCrowd: true, NeighborCount: 8, Seed: 77},
		Rounds:        400,
		SampleEvery:   1,
		CheckpointDir: t.TempDir(),
		Interrupt:     stop,
	}
	run, err := sc.freshRun()
	if err != nil {
		t.Fatal(err)
	}
	run.s.Run(50) // past the start-up transient
	var sink SeriesPoint
	body := func() {
		select {
		case <-sc.Interrupt:
			t.Fatal("interrupt fired")
		default:
		}
		run.s.Step()
		sink = run.sampler.sample(run.s)
	}
	if allocs := testing.AllocsPerRun(200, body); allocs != 0 {
		t.Fatalf("round body with checkpointing off allocates %.1f objects, want 0", allocs)
	}
	_ = sink
}
