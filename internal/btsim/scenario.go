package btsim

import (
	"fmt"
	"math"
	"sort"

	"stratmatch/internal/rng"
	"stratmatch/internal/stats"
	"stratmatch/internal/telemetry"
)

// Scenario composes a swarm, an arrival process, lifecycle departures and
// scheduled events into a named, reproducible experiment. All randomness —
// the swarm's own and the churn driver's — derives from Opt.Seed, so a
// scenario replays byte-identically for a given seed.
type Scenario struct {
	// Name identifies the scenario in reports and the CLI catalog.
	Name string
	// Opt configures the initial swarm. Set Opt.MaxPeers to the expected
	// concurrent peak to avoid growth reallocation mid-run.
	Opt Options
	// Rounds is the scenario length.
	Rounds int
	// Arrivals is the arrival process (nil: nobody joins).
	Arrivals Arrivals
	// CapacityDist draws upload capacities for arriving peers (nil: every
	// arrival gets 400 kbps). When set and Opt.UploadKbps is nil, the
	// initial leechers draw from it too (initial seeds get 5000 kbps).
	CapacityDist CapacitySampler
	// ArrivalSeedFraction is the probability that an arrival is a seed
	// rather than a leecher (usually 0; small values model replica
	// injection).
	ArrivalSeedFraction float64
	// Departures are the per-round lifecycle rules (abandonment, seed
	// linger).
	Departures Departures
	// Events are scheduled one-shot membership shocks.
	Events []Event
	// Faults is the deterministic fault-injection plan (tracker outages,
	// crash-stop peers, announce loss, partitions) plus the engine's
	// failure-handling knobs; nil (or a zero block) injects nothing and
	// keeps the run byte-identical to a fault-free scenario.
	Faults *FaultsSpec
	// ReannounceInterval staggers under-connected peers' tracker
	// re-announces (0: every 10 rounds, matching the choke interval).
	ReannounceInterval int
	// SampleEvery is the time-series sampling period (0: every 10 rounds).
	// Sampling streams off counters the swarm maintains incrementally and
	// reuses run-level scratch, so SampleEvery: 1 — one SeriesPoint per
	// round — costs O(1) amortized allocations per round (the series
	// append) and is the intended setting for dense time-series studies.
	SampleEvery int
	// Telemetry is an optional runtime-telemetry recorder (see
	// internal/telemetry): when set, the runner and engine record phase
	// durations, counters and gauges into it, and observers implementing
	// TelemetryObserver receive a snapshot after each sample. Telemetry only
	// reads the wall clock — never the RNG or simulation state — so a run
	// with a recorder attached is byte-identical to one without. It is a
	// runtime concern, not part of the scenario definition, and does not
	// appear in ScenarioSpec.
	Telemetry *telemetry.Recorder

	// StepWorkers is how many goroutines the swarm's sharded Step phases
	// use (<= 1: serial). The trajectory is byte-identical at every
	// setting (see Swarm.SetStepWorkers), so this is a runtime knob like
	// Telemetry: not part of ScenarioSpec and not checkpointed — a run may
	// checkpoint under one worker count and resume under another.
	StepWorkers int

	// CheckpointEvery writes a durable checkpoint of the complete run state
	// into CheckpointDir every CheckpointEvery rounds (0: no checkpointing).
	// A checkpoint written at the end of round r resumes from round r+1; a
	// run resumed from it produces the remaining sample/event stream and
	// final result byte-identical to the uninterrupted run. Each write is
	// reported as a "checkpoint" RunEvent after the file is on disk.
	// Checkpointing, like telemetry, is a runtime concern and not part of
	// ScenarioSpec.
	CheckpointEvery int
	// CheckpointDir is the directory checkpoints are written to (created if
	// missing). Required when CheckpointEvery > 0.
	CheckpointDir string
	// CheckpointRetain caps how many checkpoint files CheckpointDir keeps —
	// older ones are rotated away after each write. 0 means 3; negative
	// retains everything.
	CheckpointRetain int
	// ResumeFrom resumes the run from a checkpoint: a checkpoint file, or a
	// directory holding checkpoints (the newest is used). The scenario must
	// describe the same workload the checkpoint came from — name, seed,
	// rounds and (for spec-compiled scenarios) the embedded spec are
	// verified, and the restored state passes the full invariant audit
	// before any round runs.
	ResumeFrom string
	// Interrupt, when non-nil, makes the runner poll the channel at each
	// round boundary: once it is closed (or receives), the runner writes a
	// final checkpoint into CheckpointDir (when one is configured — without
	// it the interrupt is a plain cancellation) and returns an error
	// wrapping ErrInterrupted without calling OnDone — the graceful
	// SIGINT/SIGTERM and run-cancellation path.
	Interrupt <-chan struct{}

	// specJSON is the serialized ScenarioSpec this scenario was compiled
	// from, stamped by Compile and embedded in checkpoints so a resume can
	// verify — or recover — the exact workload. Empty for hand-built
	// scenarios.
	specJSON []byte

	// eagerSample disables the engine's incremental series sampler so
	// every sample rescans the roster — the oracle the differential tests
	// compare the incremental path against. Test hook only.
	eagerSample bool
}

// Event is a scheduled membership shock: at Round, DepartFraction of the
// present population (seeds only if IncludeSeeds) leaves at once. The
// struct is plain data; the tags are its ScenarioSpec wire names.
type Event struct {
	Round          int     `json:"round"`
	DepartFraction float64 `json:"depart_fraction"`
	IncludeSeeds   bool    `json:"include_seeds,omitempty"`
}

// SeriesPoint is one sample of a scenario's time series.
type SeriesPoint struct {
	Round int
	// Population at the sample: Present = Leechers + Seeds, where Seeds
	// counts complete peers (initial seeds plus promoted leechers).
	Present  int
	Leechers int
	Seeds    int
	// Cumulative flows up to the sample.
	Joined    int
	Departed  int
	Completed int // leechers that finished (departed ones included)
	// MeanDegree is the average connection count over present peers —
	// the overlay-health signal (tracker healing restores it after
	// departures).
	MeanDegree float64
	// StratCorr is the rank vs mean-TFT-partner-rank Pearson correlation
	// over present peers with TFT history (NaN when fewer than two). Like
	// Metrics.StratCorrelation it aggregates each peer's whole TFT
	// history, so across large population swings the series trend is the
	// signal, not any single sample's absolute value.
	StratCorr float64
	// ShareRatioByClass is the mean download/upload ratio of present
	// peers grouped into capacity terciles (slow, mid, fast); NaN for
	// empty classes. The paper's Figure 11 structure — slow peers above
	// 1, fast peers below — should hold under churn too.
	ShareRatioByClass [3]float64
	// Fault-injection telemetry, all zero in fault-free runs. StaleEdges
	// is the live count of present peers' connections to crashed peers
	// the failure-detection sweep has not yet retired (those halves still
	// count in MeanDegree — staleness is visible overlay rot); Crashed,
	// AnnounceFailures and AnnounceRetries are cumulative.
	StaleEdges       int
	Crashed          int
	AnnounceFailures int
	AnnounceRetries  int
}

// ScenarioResult is a completed scenario run.
type ScenarioResult struct {
	Name   string
	Series []SeriesPoint
	// Events are the discrete occurrences the run reported, in round order
	// (see RunEvent for the kinds); empty for an uneventful run.
	Events []RunEvent
	// Final is the closing roster snapshot (departed peers included).
	Final Metrics
	// TotalJoined / TotalDeparted are the membership flows over the whole
	// run (TotalJoined includes the initial population).
	TotalJoined   int
	TotalDeparted int
}

// sampleEvery resolves the effective sampling period (0 means every 10
// rounds) — the single source for both the runner and Run's pre-sizing.
func (sc Scenario) sampleEvery() int {
	if sc.SampleEvery <= 0 {
		return 10
	}
	return sc.SampleEvery
}

// Run executes the scenario and materializes the complete time series —
// it is RunObserver driving a collecting Observer, kept for callers that
// want the whole series in hand. Memory is O(rounds / SampleEvery); for
// dense sampling over long horizons, stream through RunObserver instead.
func (sc Scenario) Run() (*ScenarioResult, error) {
	col := seriesCollector{res: ScenarioResult{Name: sc.Name}}
	if sc.Rounds > 0 {
		col.res.Series = make([]SeriesPoint, 0, (sc.Rounds-1)/sc.sampleEvery()+2)
	}
	if err := sc.RunObserver(&col); err != nil {
		return nil, err
	}
	return &col.res, nil
}

// RunObserver executes the scenario, streaming samples, events and the
// closing metrics to obs (see Observer for the contract). The per-round
// order is: arrivals and scheduled events first (newcomers participate in
// the round they join), then one simulation step, then lifecycle
// departures, then tracker re-announces for under-connected peers, then
// sampling, then (when configured) a durable checkpoint. Nothing is
// materialized on the runner side, so a dense SampleEvery: 1 run over a
// very long horizon holds O(1) series memory.
//
// With ResumeFrom set, the run restores the complete state saved by an
// earlier checkpoint and continues from the round after it — the remaining
// output stream is byte-identical to the uninterrupted run's.
func (sc Scenario) RunObserver(obs Observer) error {
	if sc.Rounds < 1 {
		return fmt.Errorf("scenario %s: %d rounds", sc.Name, sc.Rounds)
	}
	if sc.CheckpointDir == "" && sc.CheckpointEvery > 0 {
		return fmt.Errorf("scenario %s: checkpointing requested without a checkpoint directory", sc.Name)
	}
	var (
		run *scenarioRun
		err error
	)
	if sc.ResumeFrom != "" {
		run, err = sc.resumeRun()
	} else {
		run, err = sc.freshRun()
	}
	if err != nil {
		return err
	}
	return run.loop(obs)
}

// scenarioRun is a scenario's live run state: the swarm plus everything the
// per-round loop carries between rounds. A run is built either fresh (from
// round 0) or from a checkpoint; both feed the same loop, and a checkpoint
// is exactly this state serialized (see checkpoint.go).
type scenarioRun struct {
	sc      *Scenario
	s       *Swarm
	churnR  *rng.RNG // the churn driver's sub-stream
	sampler seriesSampler
	scratch []int32
	// alive tracks the population-drained edge detector; start is the first
	// round the loop executes (0 fresh, checkpoint's resume round otherwise).
	alive       bool
	start       int
	sampleEvery int
	reannounce  int
	faultsOn    bool
}

// freshRun builds the run state for a from-scratch execution.
func (sc Scenario) freshRun() (*scenarioRun, error) {
	// The churn driver's randomness splits off the seed so it cannot
	// collide with the swarm's own stream (same discipline as the replica
	// fan-outs); a second split covers the initial capacity draw.
	base := rng.New(sc.Opt.Seed)
	churnR := base.Split()
	opt := sc.Opt
	if sc.CapacityDist != nil && opt.UploadKbps == nil {
		// Initial leechers draw from the same capacity distribution as
		// arrivals (keeping the capacity-tercile classes meaningful);
		// initial seeds are well-provisioned, like the CLI's replica
		// studies.
		capR := base.Split()
		caps := make([]float64, opt.Leechers+opt.Seeds)
		for i := 0; i < opt.Leechers; i++ {
			caps[i] = sc.CapacityDist.Sample(capR)
		}
		for i := opt.Leechers; i < len(caps); i++ {
			caps[i] = 5000
		}
		opt.UploadKbps = caps
	}
	s, err := New(opt)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	// The fault sub-stream splits off only when faults are present, so a
	// fault-free scenario's churn and capacity streams — and therefore its
	// whole output — stay byte-identical to earlier versions.
	faultsOn := !sc.Faults.IsZero()
	if faultsOn {
		s.EnableFaults(*sc.Faults, base.Split())
	}
	cb := newClassBounds(s)
	if !sc.eagerSample {
		// Arm the engine's incremental sampler so dense sampling costs
		// O(changed peers), not O(present), per point.
		s.EnableSeriesStats(cb.lo, cb.hi)
	}
	run := &scenarioRun{
		sc:       &sc,
		s:        s,
		churnR:   churnR,
		sampler:  seriesSampler{classes: cb},
		alive:    s.present > 0,
		faultsOn: faultsOn,
	}
	run.resolveIntervals()
	return run, nil
}

// resolveIntervals fills the run's effective sampling and re-announce
// periods from the scenario's (possibly zero) settings.
func (run *scenarioRun) resolveIntervals() {
	run.sampleEvery = run.sc.sampleEvery()
	run.reannounce = run.sc.ReannounceInterval
	if run.reannounce <= 0 {
		run.reannounce = 10
	}
}

// loop executes rounds start..Rounds-1 and delivers the closing snapshot.
func (run *scenarioRun) loop(obs Observer) error {
	sc := run.sc
	s := run.s
	tel := sc.Telemetry // nil when telemetry is off; all hooks no-op
	s.SetTelemetry(tel)
	s.SetStepWorkers(sc.StepWorkers)
	defer s.Close() // release the step-worker pool, if any
	tObs, _ := obs.(TelemetryObserver)
	for round := run.start; round < sc.Rounds; round++ {
		if sc.Interrupt != nil {
			select {
			case <-sc.Interrupt:
				// Interrupted at a round boundary: persist the state needed
				// to resume from exactly this round, then bail without
				// OnDone — the run is suspended, not finished. Without a
				// checkpoint directory the interrupt is a plain cancellation
				// and nothing is written.
				if sc.CheckpointDir != "" {
					if err := run.writeCheckpoint(round); err != nil {
						return err
					}
				}
				return fmt.Errorf("scenario %s: %w at round %d", sc.Name, ErrInterrupted, round)
			default:
			}
		}
		if run.faultsOn {
			fsp := tel.StartPhase(telemetry.PhaseFaults)
			s.faultBeginRound(round, obs)
			tel.EndPhase(telemetry.PhaseFaults, fsp)
		}
		asp := tel.StartPhase(telemetry.PhaseAnnounce)
		if sc.Arrivals != nil {
			for k := sc.Arrivals.Arrivals(round, run.churnR); k > 0; k-- {
				capKbps := 400.0
				if sc.CapacityDist != nil {
					capKbps = sc.CapacityDist.Sample(run.churnR)
				}
				s.Join(capKbps, run.churnR.Bool(sc.ArrivalSeedFraction))
			}
		}
		tel.EndPhase(telemetry.PhaseAnnounce, asp)
		for _, ev := range sc.Events {
			if ev.Round == round {
				gone := s.massDepart(ev.DepartFraction, ev.IncludeSeeds, run.churnR, &run.scratch)
				tel.Inc(telemetry.CtrEvents)
				obs.OnEvent(RunEvent{Round: round, Kind: "shock", Departed: gone})
			}
		}
		s.Step()
		s.applyDepartures(sc.Departures, run.churnR, &run.scratch)
		if run.faultsOn {
			fsp := tel.StartPhase(telemetry.PhaseFaults)
			s.faultEndRound(round, obs)
			tel.EndPhase(telemetry.PhaseFaults, fsp)
		}
		asp = tel.StartPhase(telemetry.PhaseAnnounce)
		s.ReannounceUnderConnected(run.reannounce)
		tel.EndPhase(telemetry.PhaseAnnounce, asp)
		if run.faultsOn && s.flt.watchdog {
			if err := s.CheckInvariants(); err != nil {
				return fmt.Errorf("scenario %s: round %d: %w", sc.Name, round, err)
			}
		}
		switch {
		case s.present == 0 && run.alive:
			tel.Inc(telemetry.CtrEvents)
			obs.OnEvent(RunEvent{Round: round, Kind: "drained"})
			run.alive = false
		case s.present > 0:
			run.alive = true
		}
		if round%run.sampleEvery == 0 || round == sc.Rounds-1 {
			ssp := tel.StartPhase(telemetry.PhaseSample)
			pt := run.sampler.sample(s)
			obs.OnSample(pt)
			tel.EndPhase(telemetry.PhaseSample, ssp)
			tel.Inc(telemetry.CtrSamples)
			if tel != nil {
				tel.SetGauge(telemetry.GaugeRound, int64(pt.Round))
				tel.SetGauge(telemetry.GaugePresent, int64(pt.Present))
				tel.SetGauge(telemetry.GaugeLeechers, int64(pt.Leechers))
				tel.SetGauge(telemetry.GaugeSeeds, int64(pt.Seeds))
				tel.SetGauge(telemetry.GaugeStaleEdges, int64(pt.StaleEdges))
				if tObs != nil {
					tObs.OnTelemetry(pt.Round, tel.Snapshot())
				}
			}
		}
		if sc.CheckpointEvery > 0 && (round+1)%sc.CheckpointEvery == 0 {
			// Write first, then announce: every "checkpoint" event an
			// observer sees refers to a file already safely on disk, so a
			// consumer cut off mid-stream can trust its last checkpoint line.
			if err := run.writeCheckpoint(round + 1); err != nil {
				return err
			}
			tel.Inc(telemetry.CtrEvents)
			obs.OnEvent(RunEvent{Round: round, Kind: "checkpoint"})
		}
	}
	obs.OnDone(s.Snapshot())
	return nil
}

// classBounds splits capacities into terciles. Bounds come from the
// initial population (arrivals drawn from the same distribution land in
// the same classes), so class membership is stable across the run.
type classBounds struct {
	lo, hi float64
}

func newClassBounds(s *Swarm) classBounds {
	caps := make([]float64, 0, len(s.peers))
	for i := range s.peers {
		if !s.peers[i].isSeed {
			caps = append(caps, s.peers[i].capacity)
		}
	}
	if len(caps) == 0 {
		return classBounds{}
	}
	sort.Float64s(caps)
	return classBounds{
		lo: caps[len(caps)/3],
		hi: caps[2*len(caps)/3],
	}
}

func (c classBounds) class(capacity float64) int {
	switch {
	case capacity < c.lo:
		return 0
	case capacity < c.hi:
		return 1
	default:
		return 2
	}
}

// seriesSampler is the scenario runner's streaming metrics accumulator: it
// turns the swarm's incrementally maintained counters (population flows,
// completed leechers, live degree sum) plus one allocation-free pass over
// the present roster (share-ratio class sums, streaming rank correlation)
// into a SeriesPoint. Snapshot builds the same statistics by rescanning and
// materializing per-peer rows; the sampler exists so scenarios can take a
// point every round without paying Snapshot-scale allocation.
type seriesSampler struct {
	classes classBounds
	corr    stats.PearsonAcc
}

// sample computes one SeriesPoint from the live swarm state. It allocates
// nothing. With the engine's incremental sampler armed (the default for
// scenario runs) the statistics fold in only the peers whose inputs
// changed since the last sample — O(changed), not O(present); otherwise it
// falls back to the eager roster pass, which doubles as the oracle the
// incremental path is tested against.
func (sp *seriesSampler) sample(s *Swarm) SeriesPoint {
	s.flushJoinRanks() // both paths read ranks
	pt := SeriesPoint{
		Round:     s.round,
		Present:   s.present,
		Leechers:  s.present - s.presentDone,
		Seeds:     s.presentDone,
		Joined:    len(s.peers),
		Departed:  s.totalDeparted,
		Completed: s.completedLeechers,
	}
	if s.present > 0 {
		pt.MeanDegree = float64(s.liveDegSum) / float64(s.present)
	}

	if st := s.stats; st != nil {
		s.flushSeriesStats()
		pt.StratCorr = st.corr()
		for cl := range pt.ShareRatioByClass {
			pt.ShareRatioByClass[cl] = st.ratioMean(cl)
		}
	} else {
		sp.corr.Reset()
		var ratioSum, ratioN [3]float64
		for _, id := range s.trk.present {
			p := &s.peers[id]
			if p.isSeed {
				continue
			}
			if p.tftPartnerCount > 0 {
				sp.corr.Add(float64(s.rank[p.id]), p.tftPartnerRankSum/float64(p.tftPartnerCount))
			}
			if p.totalUp > 0 {
				cl := sp.classes.class(p.capacity)
				ratioSum[cl] += p.totalDown / p.totalUp
				ratioN[cl]++
			}
		}
		pt.StratCorr = sp.corr.Corr()
		for cl := range pt.ShareRatioByClass {
			if ratioN[cl] > 0 {
				pt.ShareRatioByClass[cl] = ratioSum[cl] / ratioN[cl]
			} else {
				pt.ShareRatioByClass[cl] = math.NaN()
			}
		}
	}
	if f := s.flt; f != nil {
		pt.StaleEdges = f.staleEdges
		pt.Crashed = f.totalCrashed
		pt.AnnounceFailures = f.announceFailures
		pt.AnnounceRetries = f.announceRetries
	}
	return pt
}

// NamedScenario builds one of the canonical churn scenarios at the given
// seed and population scale, compiled and ready to run. It is exactly
// NamedSpec followed by ScenarioSpec.Compile; see NamedSpec for the
// catalog.
func NamedScenario(name string, seed uint64, scale float64) (Scenario, error) {
	spec, err := NamedSpec(name, seed, scale)
	if err != nil {
		return Scenario{}, err
	}
	return spec.Compile()
}
