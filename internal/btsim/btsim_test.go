package btsim

import (
	"math"
	"testing"

	"stratmatch/internal/bandwidth"
	"stratmatch/internal/rng"
)

func TestBitset(t *testing.T) {
	b := newBitset(130)
	if b.count() != 0 || b.full() {
		t.Fatal("fresh bitset not empty")
	}
	b.set(0)
	b.set(64)
	b.set(129)
	if !b.has(0) || !b.has(64) || !b.has(129) || b.has(1) {
		t.Fatal("set/has broken")
	}
	if b.count() != 3 {
		t.Fatalf("count = %d", b.count())
	}
	b.setAll()
	if b.count() != 130 || !b.full() {
		t.Fatalf("setAll: count = %d", b.count())
	}
	other := newBitset(130)
	other.set(5)
	if other.anyMissingIn(b) != true {
		t.Fatal("other should be missing pieces b has")
	}
	if b.anyMissingIn(other) {
		t.Fatal("full bitset cannot be missing anything")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Options{
		{Leechers: 0, Pieces: 10},
		{Leechers: 5, Pieces: 0},
		{Leechers: 5, Pieces: 10, PieceKbit: -1},
		{Leechers: 5, Pieces: 10, UploadKbps: []float64{1, 2}},
	}
	for i, o := range cases {
		if _, err := New(o); err == nil {
			t.Errorf("case %d accepted: %+v", i, o)
		}
	}
}

func TestConservation(t *testing.T) {
	s, err := New(Options{Leechers: 40, Seeds: 2, Pieces: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(200)
	up, down := s.TotalUploaded(), s.TotalDownloaded()
	if math.Abs(up-down) > 1e-6*math.Max(1, up) {
		t.Fatalf("conservation violated: up %v down %v", up, down)
	}
	if up == 0 {
		t.Fatal("no data moved in 200 rounds")
	}
}

func TestCapacityRespected(t *testing.T) {
	s, err := New(Options{Leechers: 30, Seeds: 1, Pieces: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 150
	s.Run(rounds)
	for _, p := range s.peers {
		if p.totalUp > p.capacity*float64(rounds)+1e-6 {
			t.Fatalf("peer %d uploaded %v, capacity allows %v",
				p.id, p.totalUp, p.capacity*float64(rounds))
		}
	}
}

func TestSeedsNeverDownload(t *testing.T) {
	s, err := New(Options{Leechers: 20, Seeds: 3, Pieces: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(150)
	for _, p := range s.peers {
		if p.isSeed && p.totalDown != 0 {
			t.Fatalf("seed %d downloaded %v", p.id, p.totalDown)
		}
	}
}

func TestFlashCrowdCompletes(t *testing.T) {
	s, err := New(Options{
		Leechers: 25, Seeds: 2, Pieces: 32, PieceKbit: 512,
		UploadKbps: uniformCaps(27, 800), Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunUntilDone(20000) {
		t.Fatalf("swarm did not finish; %d/%d done at round %d",
			s.Snapshot().CompletedLeechers, 25, s.Round())
	}
	for _, p := range s.peers {
		if !p.have.full() {
			t.Fatalf("peer %d done but missing pieces", p.id)
		}
	}
}

func TestPostFlashCrowdCompletes(t *testing.T) {
	s, err := New(Options{
		Leechers: 30, Seeds: 1, Pieces: 64, PieceKbit: 512,
		PostFlashCrowd: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunUntilDone(20000) {
		t.Fatal("post-flash-crowd swarm did not finish")
	}
	m := s.Snapshot()
	if m.CompletedLeechers != 30 {
		t.Fatalf("completed %d of 30", m.CompletedLeechers)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Metrics {
		s, err := New(Options{Leechers: 20, Seeds: 1, Pieces: 32, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(120)
		return s.Snapshot()
	}
	a, b := run(), run()
	if a.Round != b.Round || a.CompletedLeechers != b.CompletedLeechers {
		t.Fatal("runs diverged")
	}
	for i := range a.Peers {
		if a.Peers[i].TotalUp != b.Peers[i].TotalUp || a.Peers[i].TotalDown != b.Peers[i].TotalDown {
			t.Fatalf("peer %d diverged", i)
		}
	}
}

func TestDepartSeedMidRun(t *testing.T) {
	// Failure injection: the only seed dies after pieces have spread in
	// post-flash-crowd mode; the swarm must still finish from replicas.
	s, err := New(Options{
		Leechers: 25, Seeds: 1, Pieces: 32, PieceKbit: 512,
		PostFlashCrowd: true, UploadKbps: uniformCaps(26, 600), Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(50)
	s.Depart(25) // the seed
	if !s.RunUntilDone(20000) {
		t.Fatal("swarm stalled after seed departure despite full availability")
	}
	up, down := s.TotalUploaded(), s.TotalDownloaded()
	if math.Abs(up-down) > 1e-6*math.Max(1, up) {
		t.Fatalf("conservation violated after departure: %v vs %v", up, down)
	}
}

func TestDepartIdempotent(t *testing.T) {
	s, err := New(Options{Leechers: 10, Seeds: 1, Pieces: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s.Depart(3)
	s.Depart(3)
	s.Depart(-1)
	s.Depart(99)
	s.Run(50)
	m := s.Snapshot()
	for _, pm := range m.Peers {
		if pm.ID == 3 {
			if !pm.Departed || pm.TotalDown != 0 {
				t.Fatalf("departed peer state: %+v", pm)
			}
		}
	}
}

func TestStratificationEmerges(t *testing.T) {
	// The headline cross-check: with Saroiu-style heterogeneous capacities
	// and TFT choking in the paper's content-unlimited regime, a peer's
	// rank must correlate positively with its TFT partners' ranks
	// (clustering by bandwidth — the phenomenon the paper models as stable
	// matching).
	caps := bandwidth.RankBandwidths(bandwidth.Saroiu(), 120)
	// Shuffle id↔capacity so peer ids carry no rank information; the
	// metrics recover ranks from capacities.
	r := rng.New(8)
	perm := r.Perm(120)
	shuffled := make([]float64, 120)
	for i, src := range perm {
		shuffled[i] = caps[src]
	}
	s, err := New(Options{
		Leechers: 120, Pieces: 1, ContentUnlimited: true,
		UploadKbps: shuffled, NeighborCount: 30,
		MetricsWarmupRounds: 600, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1200)
	m := s.Snapshot()
	if math.IsNaN(m.StratCorrelation) {
		t.Fatal("no TFT decisions recorded")
	}
	if m.StratCorrelation < 0.3 {
		t.Fatalf("stratification correlation %v, want >= 0.3", m.StratCorrelation)
	}
	if m.MeanAbsRankOffset > 0.35 {
		t.Fatalf("mean rank offset %v, want < 0.35", m.MeanAbsRankOffset)
	}
}

func TestFastPeersFinishSooner(t *testing.T) {
	// Download rate increases with capacity under TFT, so the top
	// capacity tercile must complete the file sooner on average than the
	// bottom tercile.
	caps := bandwidth.RankBandwidths(bandwidth.Saroiu(), 90)
	all := append(append([]float64(nil), caps...), 5000)
	s, err := New(Options{
		Leechers: 90, Seeds: 1, Pieces: 96, PieceKbit: 1024,
		UploadKbps: all, PostFlashCrowd: true, NeighborCount: 25, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunUntilDone(50000) {
		t.Fatal("swarm did not finish")
	}
	m := s.Snapshot()
	var fast, slow float64
	var nf, ns int
	for _, pm := range m.Peers {
		if pm.IsSeed || pm.DoneRound <= 0 {
			continue
		}
		switch {
		case pm.Rank < 30:
			fast += float64(pm.DoneRound)
			nf++
		case pm.Rank >= 60 && pm.Rank < 90:
			slow += float64(pm.DoneRound)
			ns++
		}
	}
	if nf == 0 || ns == 0 {
		t.Fatal("terciles empty")
	}
	if fast/float64(nf) >= slow/float64(ns) {
		t.Fatalf("fast tercile mean completion round %v not below slow tercile %v",
			fast/float64(nf), slow/float64(ns))
	}
}

func TestSnapshotShareRatios(t *testing.T) {
	s, err := New(Options{Leechers: 30, Seeds: 1, Pieces: 32, PostFlashCrowd: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(300)
	m := s.Snapshot()
	if len(m.Peers) != 31 {
		t.Fatalf("%d peer rows", len(m.Peers))
	}
	for _, pm := range m.Peers {
		if pm.TotalUp > 0 && (math.IsNaN(pm.ShareRatio) || pm.ShareRatio < 0) {
			t.Fatalf("bad share ratio %+v", pm)
		}
	}
}

func TestRanksAreAPermutation(t *testing.T) {
	caps := []float64{100, 900, 400, 400, 50}
	s, err := New(Options{Leechers: 5, Pieces: 8, UploadKbps: caps, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 5)
	for _, r := range s.rank {
		if r < 0 || r >= 5 || seen[r] {
			t.Fatalf("ranks not a permutation: %v", s.rank)
		}
		seen[r] = true
	}
	if s.rank[1] != 0 {
		t.Fatalf("fastest peer not rank 0: %v", s.rank)
	}
	if s.rank[4] != 4 {
		t.Fatalf("slowest peer not last: %v", s.rank)
	}
	// Equal capacities tie-break by id.
	if !(s.rank[2] < s.rank[3]) {
		t.Fatalf("tie-break broken: %v", s.rank)
	}
}

func uniformCaps(n int, kbps float64) []float64 {
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = kbps
	}
	return caps
}

func BenchmarkSwarmStep(b *testing.B) {
	s, err := New(Options{
		Leechers: 200, Seeds: 2, Pieces: 128,
		PostFlashCrowd: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
