package btsim

import (
	"fmt"

	"stratmatch/internal/rng"
	"stratmatch/internal/telemetry"
)

// Fault kinds for FaultSpec.Kind.
const (
	// FaultTrackerOutage makes every announce fail while the window is
	// active: no handouts, no retries served. The tracker's registry
	// survives the outage (real trackers come back with their state), so
	// membership bookkeeping continues; only the announce protocol fails.
	FaultTrackerOutage = "tracker_outage"
	// FaultCrash kills present peers abruptly (crash-stop): each present
	// peer independently crashes with probability Rate per active round.
	// Unlike a graceful Depart, nobody is told — neighbors keep stale
	// connections to the dead peer until the failure-detection sweep times
	// them out (FaultsSpec.NeighborTimeoutRounds).
	FaultCrash = "crash"
	// FaultAnnounceLoss drops each announce (request or response lost in
	// transit) independently with probability Rate while active; the peer
	// retries with backoff like during an outage.
	FaultAnnounceLoss = "announce_loss"
	// FaultPartition splits the roster in two for the window: each present
	// peer lands on side 1 with probability Fraction, every cross-side
	// connection is severed at the partition instant, and the tracker only
	// introduces same-side peers until the window ends and the partition
	// heals (re-announces re-knit the overlay).
	FaultPartition = "partition"
)

// FaultsSpec is the fault-injection arm of a ScenarioSpec: a list of
// deterministic fault injections plus the engine's failure-handling knobs.
// The zero value (and an absent "faults" block) injects nothing and leaves
// a run byte-identical to a fault-free scenario — the fault RNG sub-stream
// is only split off when faults are enabled.
type FaultsSpec struct {
	// Injections are the scheduled faults; windows of the same kind may
	// overlap (their effect unions) except partitions, which must be
	// disjoint.
	Injections []FaultSpec `json:"injections,omitempty"`
	// RetryBaseRounds is the first announce-retry delay after a failed
	// announce; subsequent consecutive failures double it (capped at
	// RetryCapRounds), with a deterministic jitter drawn from the fault
	// RNG sub-stream so synchronized failures do not retry in lockstep.
	// 0 means 2.
	RetryBaseRounds int `json:"retry_base_rounds,omitempty"`
	// RetryCapRounds caps the exponential backoff. 0 means 64.
	RetryCapRounds int `json:"retry_cap_rounds,omitempty"`
	// NeighborTimeoutRounds is how long a crashed peer's connections
	// linger before its neighbors detect the silence and drop them (the
	// failure-detection sweep). 0 means 25.
	NeighborTimeoutRounds int `json:"neighbor_timeout_rounds,omitempty"`
	// Watchdog runs a full structural invariant audit (Swarm.CheckInvariants)
	// after every round and fails the run on the first violation. It
	// rescans edges and counters, so it is opt-in — for debugging and the
	// fault experiment's audited replicas, not for benchmarked runs.
	Watchdog bool `json:"watchdog,omitempty"`
}

// FaultSpec is one scheduled fault: a tagged union over the fault kinds.
// Kind selects the variant; only that variant's fields may be set:
//
//   - "tracker_outage": Start, Rounds (window; >= 1)
//   - "crash":          Rate, optional Start/Rounds window (Rounds 0: to
//     the end of the run), IncludeSeeds
//   - "announce_loss":  Rate, optional Start/Rounds window
//   - "partition":      Start, Rounds (window; >= 1), Fraction
type FaultSpec struct {
	Kind string `json:"kind"`
	// Start is the first round the fault is active.
	Start int `json:"start,omitempty"`
	// Rounds is the window length; for "crash" and "announce_loss", 0
	// means active until the end of the run.
	Rounds int `json:"rounds,omitempty"`
	// Fraction is the probability a peer lands on side 1 ("partition").
	Fraction float64 `json:"fraction,omitempty"`
	// Rate is the per-peer-per-round crash probability ("crash") or the
	// per-announce loss probability ("announce_loss").
	Rate float64 `json:"rate,omitempty"`
	// IncludeSeeds lets crashes hit seeds too ("crash"); by default only
	// non-seed peers crash.
	IncludeSeeds bool `json:"include_seeds,omitempty"`
}

// activeAt reports whether the fault's window covers the round.
func (fs *FaultSpec) activeAt(round int) bool {
	if round < fs.Start {
		return false
	}
	return fs.Rounds <= 0 || round < fs.Start+fs.Rounds
}

// IsZero reports whether the block is entirely zero-valued — no
// injections and no knob overrides. A zero block is normalized away at
// Compile, keeping the run byte-identical to one without a Faults block.
func (f *FaultsSpec) IsZero() bool {
	return f == nil || (len(f.Injections) == 0 && f.RetryBaseRounds == 0 &&
		f.RetryCapRounds == 0 && f.NeighborTimeoutRounds == 0 && !f.Watchdog)
}

// clone deep-copies the block so spec edits after Compile never reach an
// already-compiled scenario.
func (f *FaultsSpec) clone() *FaultsSpec {
	out := *f
	out.Injections = append([]FaultSpec(nil), f.Injections...)
	return &out
}

// validate checks the faults block with precise field paths under "faults.".
func (f *FaultsSpec) validate(sp *ScenarioSpec) error {
	if f.RetryBaseRounds < 0 {
		return sp.specErr("faults.retry_base_rounds", "must be >= 0, got %d", f.RetryBaseRounds)
	}
	if f.RetryCapRounds < 0 {
		return sp.specErr("faults.retry_cap_rounds", "must be >= 0, got %d", f.RetryCapRounds)
	}
	if f.RetryBaseRounds > 0 && f.RetryCapRounds > 0 && f.RetryCapRounds < f.RetryBaseRounds {
		return sp.specErr("faults.retry_cap_rounds", "cap %d below base %d",
			f.RetryCapRounds, f.RetryBaseRounds)
	}
	if f.NeighborTimeoutRounds < 0 {
		return sp.specErr("faults.neighbor_timeout_rounds", "must be >= 0, got %d", f.NeighborTimeoutRounds)
	}
	lastPartition := -1
	for i := range f.Injections {
		inj := &f.Injections[i]
		path := fmt.Sprintf("faults.injections[%d]", i)
		foreign := func(field, kinds string) error {
			return sp.specErr(path+"."+field, "only valid for kind %s, not %q", kinds, inj.Kind)
		}
		if inj.Start < 0 || inj.Start >= sp.Rounds {
			return sp.specErr(path+".start", "must be in [0, rounds), got %d of %d", inj.Start, sp.Rounds)
		}
		if inj.Rounds < 0 {
			return sp.specErr(path+".rounds", "must be >= 0, got %d", inj.Rounds)
		}
		switch inj.Kind {
		case FaultTrackerOutage:
			if inj.Rounds < 1 {
				return sp.specErr(path+".rounds", "an outage window needs rounds >= 1")
			}
			if inj.Rate != 0 {
				return foreign("rate", `"crash" or "announce_loss"`)
			}
			if inj.Fraction != 0 {
				return foreign("fraction", `"partition"`)
			}
			if inj.IncludeSeeds {
				return foreign("include_seeds", `"crash"`)
			}
		case FaultCrash:
			if inj.Rate <= 0 || inj.Rate > 1 {
				return sp.specErr(path+".rate", "must be in (0, 1], got %v", inj.Rate)
			}
			if inj.Fraction != 0 {
				return foreign("fraction", `"partition"`)
			}
		case FaultAnnounceLoss:
			if inj.Rate <= 0 || inj.Rate > 1 {
				return sp.specErr(path+".rate", "must be in (0, 1], got %v", inj.Rate)
			}
			if inj.Fraction != 0 {
				return foreign("fraction", `"partition"`)
			}
			if inj.IncludeSeeds {
				return foreign("include_seeds", `"crash"`)
			}
		case FaultPartition:
			if inj.Rounds < 1 {
				return sp.specErr(path+".rounds", "a partition window needs rounds >= 1")
			}
			if inj.Fraction <= 0 || inj.Fraction >= 1 {
				return sp.specErr(path+".fraction", "must be in (0, 1), got %v", inj.Fraction)
			}
			if inj.Rate != 0 {
				return foreign("rate", `"crash" or "announce_loss"`)
			}
			if inj.IncludeSeeds {
				return foreign("include_seeds", `"crash"`)
			}
			if lastPartition >= 0 {
				prev := &f.Injections[lastPartition]
				if inj.Start < prev.Start+prev.Rounds && prev.Start < inj.Start+inj.Rounds {
					return sp.specErr(path, "partition overlaps faults.injections[%d]; partitions must be disjoint", lastPartition)
				}
			}
			lastPartition = i
		case "":
			return sp.specErr(path+".kind",
				"required (one of tracker_outage, crash, announce_loss, partition)")
		default:
			return sp.specErr(path+".kind",
				"unknown kind %q (one of tracker_outage, crash, announce_loss, partition)", inj.Kind)
		}
	}
	// The pairwise disjointness above only compares consecutive partitions;
	// finish the check for out-of-order lists.
	for i := range f.Injections {
		if f.Injections[i].Kind != FaultPartition {
			continue
		}
		for j := i + 1; j < len(f.Injections); j++ {
			if f.Injections[j].Kind != FaultPartition {
				continue
			}
			a, b := &f.Injections[i], &f.Injections[j]
			if b.Start < a.Start+a.Rounds && a.Start < b.Start+b.Rounds {
				return sp.specErr(fmt.Sprintf("faults.injections[%d]", j),
					"partition overlaps faults.injections[%d]; partitions must be disjoint", i)
			}
		}
	}
	return nil
}

// scaled maps the injection windows onto an f-scaled horizon (retry and
// timeout knobs are protocol constants and stay put).
func (f *FaultsSpec) scaled(scale float64, rounds int) *FaultsSpec {
	out := f.clone()
	for i := range out.Injections {
		inj := &out.Injections[i]
		inj.Start = min(int(float64(inj.Start)*scale), rounds-1)
		if inj.Rounds > 0 {
			inj.Rounds = max(1, int(float64(inj.Rounds)*scale))
		}
	}
	return out
}

// faultState is the engine half of fault injection: the resolved knobs, the
// live window flags, the per-slot retry/partition state, the crash queue
// awaiting failure detection, and the cumulative telemetry counters. It is
// nil on a fault-free swarm — every engine hook is behind that nil check, so
// the fault-free path is byte-identical to a build without this file.
type faultState struct {
	r         *rng.RNG // the scenario's fault sub-stream
	spec      FaultsSpec
	retryBase int
	retryCap  int
	timeout   int
	watchdog  bool

	// Live window state, recomputed each round from the injection list.
	trackerDown  bool
	lossRate     float64
	partitionOn  bool
	partIdx      int // active partition injection index, −1 when none
	partFraction float64

	// Slot-indexed state (grown with the swarm's slot arrays): side is the
	// occupant's partition side; retryAt is the round its next announce
	// retry fires (−1 when none pending); retryN counts consecutive failed
	// announces (the backoff exponent).
	side    []int8
	retryAt []int32
	retryN  []uint8

	// crashq holds crashed peer ids in crash order; entries before
	// crashHead have been swept. The failure-detection sweep pops from the
	// head once entries age past the neighbor timeout.
	crashq    []int32
	crashHead int

	scratch []int32 // crash-draw collection buffer, reused across rounds

	// Telemetry (cumulative except staleEdges, which is the live count of
	// present peers' connections to crashed-but-undetected peers).
	staleEdges       int
	totalCrashed     int
	announceFailures int
	announceRetries  int
}

// EnableFaults arms the fault layer on a swarm: spec is the (validated)
// faults block and r the dedicated RNG sub-stream. The scenario runner
// calls this right after New when the compiled scenario carries faults;
// fault-free runs never do, keeping their random streams untouched.
func (s *Swarm) EnableFaults(spec FaultsSpec, r *rng.RNG) {
	f := &faultState{r: r, spec: spec, partIdx: -1, watchdog: spec.Watchdog}
	f.retryBase = spec.RetryBaseRounds
	if f.retryBase == 0 {
		f.retryBase = 2
	}
	f.retryCap = spec.RetryCapRounds
	if f.retryCap == 0 {
		f.retryCap = 64
	}
	if f.retryCap < f.retryBase {
		f.retryCap = f.retryBase
	}
	f.timeout = spec.NeighborTimeoutRounds
	if f.timeout == 0 {
		f.timeout = 25
	}
	f.side = make([]int8, s.slotCap)
	f.retryAt = make([]int32, s.slotCap)
	for i := range f.retryAt {
		f.retryAt[i] = -1
	}
	f.retryN = make([]uint8, s.slotCap)
	s.flt = f
}

// growFaults extends the slot-indexed fault arrays after the swarm doubled
// its slot capacity.
func (f *faultState) growFaults(slotCap int) {
	old := len(f.retryAt)
	f.side = grown(f.side, slotCap)
	f.retryAt = grown(f.retryAt, slotCap)
	for sl := old; sl < slotCap; sl++ {
		f.retryAt[sl] = -1
	}
	f.retryN = grown(f.retryN, slotCap)
}

// slotJoined resets a slot's fault state for a new occupant and assigns a
// partition side while a partition is active (joiners land on a side too).
func (f *faultState) slotJoined(sl int32) {
	f.retryAt[sl] = -1
	f.retryN[sl] = 0
	if f.partitionOn {
		f.side[sl] = 0
		if f.r.Bool(f.partFraction) {
			f.side[sl] = 1
		}
	}
}

// announceFailed records a failed announce and schedules the retry:
// exponential backoff (base · 2^failures, capped), jittered uniformly into
// [⌈d/2⌉, d] from the fault sub-stream so peers that failed together do
// not retry in lockstep.
func (f *faultState) announceFailed(sl int32, round int) {
	f.announceFailures++
	d := f.retryCap
	if n := int(f.retryN[sl]); n < 20 {
		if v := f.retryBase << n; v < d {
			d = v
		}
	}
	if f.retryN[sl] < 20 {
		f.retryN[sl]++
	}
	d -= f.r.Intn(d/2 + 1)
	f.retryAt[sl] = int32(round + d)
}

// announceOK clears the slot's backoff state after a successful announce.
func (f *faultState) announceOK(sl int32) {
	f.retryAt[sl] = -1
	f.retryN[sl] = 0
}

// faultBeginRound recomputes the window state from the injection list before
// the round's protocol actions: tracker outage and announce-loss flags, and
// partition activation (split sides, sever cross edges) or heal. State
// transitions are reported to the observer.
func (s *Swarm) faultBeginRound(round int, obs Observer) {
	f := s.flt
	down, loss, partition := false, 0.0, -1
	for i := range f.spec.Injections {
		inj := &f.spec.Injections[i]
		if !inj.activeAt(round) {
			continue
		}
		switch inj.Kind {
		case FaultTrackerOutage:
			down = true
		case FaultAnnounceLoss:
			if inj.Rate > loss {
				loss = inj.Rate
			}
		case FaultPartition:
			partition = i
		}
	}
	if down != f.trackerDown {
		f.trackerDown = down
		kind := "tracker_up"
		if down {
			kind = "tracker_down"
		}
		s.tel.Inc(telemetry.CtrEvents)
		obs.OnEvent(RunEvent{Round: round, Kind: kind})
	}
	f.lossRate = loss
	if partition != f.partIdx {
		if f.partIdx >= 0 {
			f.partitionOn = false
			s.tel.Inc(telemetry.CtrEvents)
			obs.OnEvent(RunEvent{Round: round, Kind: "partition_heal"})
		}
		if partition >= 0 {
			f.partitionOn = true
			f.partFraction = f.spec.Injections[partition].Fraction
			for _, id := range s.trk.present {
				sl := s.peers[id].slot
				f.side[sl] = 0
				if f.r.Bool(f.partFraction) {
					f.side[sl] = 1
				}
			}
			cut := s.cutPartition()
			s.tel.Inc(telemetry.CtrEvents)
			obs.OnEvent(RunEvent{Round: round, Kind: "partition", Edges: cut})
		}
		f.partIdx = partition
	}
}

// cutPartition severs every connection between present peers on opposite
// sides — the partition instant. Each pair is cut once, from its lower-id
// endpoint; connections to crashed peers are left alone (their owner does
// not know the target is on the far side, or dead — the timeout sweep owns
// those). Returns the number of connections severed.
func (s *Swarm) cutPartition() int {
	f := s.flt
	cut := 0
	for _, id := range s.trk.present {
		p := &s.peers[id]
		sl := p.slot
		base := sl * s.edgeCap
		// Descending scan: a removal swaps the block's last edge into the
		// hole, and every position above the cursor has already been kept.
		for e := base + s.deg[sl] - 1; e >= base; e-- {
			q := &s.peers[s.nbr[e]]
			if q.departed || q.id < p.id || f.side[q.slot] == f.side[sl] {
				continue
			}
			er := s.rev[e]
			s.availSub(sl, q.have)
			s.availSub(q.slot, p.have)
			s.removeEdgeHalf(q, er)
			s.removeEdgeHalf(p, e)
			cut++
		}
	}
	return cut
}

// faultEndRound runs after the round's step and lifecycle departures: the
// crash-stop draws, the failure-detection sweep, and the due announce
// retries. Crash candidates are collected before any crash mutates the
// roster (the applyDepartures scratch discipline).
func (s *Swarm) faultEndRound(round int, obs Observer) {
	f := s.flt
	for i := range f.spec.Injections {
		inj := &f.spec.Injections[i]
		if inj.Kind != FaultCrash || !inj.activeAt(round) {
			continue
		}
		doomed := f.scratch[:0]
		for _, id := range s.trk.present {
			p := &s.peers[id]
			if p.isSeed && !inj.IncludeSeeds {
				continue
			}
			if f.r.Bool(inj.Rate) {
				doomed = append(doomed, id)
			}
		}
		f.scratch = doomed
		for _, id := range doomed {
			s.Crash(int(id))
		}
		if len(doomed) > 0 {
			s.tel.Inc(telemetry.CtrEvents)
			obs.OnEvent(RunEvent{Round: round, Kind: "crash", Departed: len(doomed)})
		}
	}
	s.sweepCrashed()
	// Fire the due announce retries. Announce only adds edges, so the
	// membership list is stable under the loop; a retry that fails again
	// reschedules itself with a longer backoff.
	for _, id := range s.trk.present {
		sl := s.peers[id].slot
		if at := f.retryAt[sl]; at >= 0 && at <= int32(round) {
			f.retryAt[sl] = -1
			f.announceRetries++
			s.tel.Inc(telemetry.CtrAnnounceRetries)
			s.Announce(int(id))
		}
	}
}
