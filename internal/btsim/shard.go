package btsim

// shard.go is the sharded, event-driven stepping layer.
//
// # Sharding
//
// The CSR slot space is partitioned into fixed ranges of slotsPerShard
// slots (a multiple of 64, so no two shards share a bitmap word). Each
// Step phase — choke, and in content-unlimited mode the transfer send and
// receive passes — runs as a deterministic bulk-synchronous pass over the
// shards: workers pull shard indices off an atomic cursor, but every
// per-slot effect depends only on the shard's own state, the shard's
// dedicated RNG sub-stream (rng.NewStream(Seed, shard) — a pure function
// of the shard index, independent of worker count and of when the shard
// was materialised) and global state frozen for the phase. The result is
// therefore byte-identical at any worker count, including workers == 1,
// which runs the same passes inline with no pool.
//
// Cross-shard writes are confined to two order-free channels:
//
//   - the send pass writes xfer[ev] — exclusive, since exactly one
//     uploader owns the reverse half of any edge — and marks the
//     recipient's slot in the `incoming` bitmap with an atomic OR
//     (idempotent, so arrival order cannot matter);
//   - swarm-wide float totals accumulate into per-shard partials that the
//     serial epilogue folds in shard order.
//
// Piece-mode transfer stays serial: a mid-round piece completion changes
// interest and rarity for uploaders later in slot order, an inherently
// sequential dependency (and the piece workloads are two orders of
// magnitude smaller than the content-unlimited flashcrowd this layer
// exists for). Choke decisions shard in both modes.
//
// # Event-driven stepping (dirty sets)
//
// Per-slot bitmaps let steady peers cost nothing between choke intervals:
//
//   - chokeDirty: the slot's candidate set may have changed (edges added,
//     removed or swapped; a neighbor departed, crashed or completed).
//   - windowNZ: some recvWindow entry in the slot's block may be nonzero.
//   - ratesNZ: some recvRate entry may be nonzero.
//   - xferDirty: the slot's cached active-transfer list is stale.
//   - statDirty: the slot's sampler inputs (totals, TFT history) changed
//     since the last series sample (see stats.go).
//
// A scheduled rechoke is skipped when all of chokeDirty, windowNZ and
// ratesNZ are clear (and the peer is not a seed — seeds draw randomness
// every interval): with every rate and window zero and the candidate set
// unchanged, rerunning the rechoke would reproduce the previous unchoke
// picks by id order, record no TFT accounting (rates are zero) and draw no
// randomness (the optimistic slot cannot have been re-unchoked), so the
// skip is outcome- and RNG-stream-exact, not approximate. The bits are
// conservative: a spurious mark only forces a rechoke that recomputes the
// same state. Swarm.CheckInvariants cross-checks the lazy bookkeeping
// against an eager recomputation.

import (
	"math/bits"
	"sync/atomic"

	"stratmatch/internal/par"
	"stratmatch/internal/rng"
	"stratmatch/internal/telemetry"
)

// defaultShardSlots is the production shard width: wide enough that a
// 10^4-peer swarm stays effectively serial (one shard, no cross-shard
// traffic), narrow enough that a 10^6-peer swarm has ~500 shards to load-
// balance across workers. Tests shrink it (setShardSlots) to force churn
// across shard boundaries.
const defaultShardSlots = 2048

// Parallel phase discriminators for runShards.
const (
	phChoke = iota
	phSend
	phRecv
)

var shardPhaseTel = [3]telemetry.PhaseID{
	phChoke: telemetry.PhaseChokeShard,
	phSend:  telemetry.PhaseSendShard,
	phRecv:  telemetry.PhaseRecvShard,
}

// chokeScratch is one worker's private candidate buffers for the choke
// pass (sized to the per-slot edge capacity).
type chokeScratch struct {
	candE    []int32
	candRate []float64
}

// shardState is the Swarm's sharded/event-driven stepping state.
type shardState struct {
	slotsPerShard int
	streams       []*rng.RNG // per-shard choke RNG sub-streams

	workers  int
	pool     *par.Pool
	workerFn func(w int)
	phase    int
	next     atomic.Int32
	scratch  []chokeScratch // per-worker; [0] doubles as the serial scratch

	chokeDirty []uint64
	windowNZ   []uint64
	ratesNZ    []uint64
	xferDirty  []uint64
	statDirty  []uint64

	// Content-unlimited transfer state (nil in piece mode): xfer[e] is the
	// kbit written to edge e's owner this round by the e-reverse uploader,
	// incoming flags slots with any nonzero xfer entry, and
	// activeEdges[sl*activeStride:…]/activeCnt[sl] cache the slot's active
	// transfer list between choke changes.
	xfer         []float64
	incoming     []uint64
	activeCnt    []int32
	activeEdges  []int32
	activeStride int

	// Per-shard partial sums for sumUp/sumDown, strided by 8 words to keep
	// writers off each other's cache lines; folded serially in shard order.
	sumUp   []float64
	sumDown []float64
}

// Slot-bitmap helpers. All Step-phase writers touch only words of their
// own shard (shard bounds are 64-aligned), so these need no atomics; the
// one cross-shard marking (incoming) uses atomic OR directly.
func bmWords(n int) int             { return (n + 63) >> 6 }
func bmGet(bm []uint64, i int) bool { return bm[i>>6]&(1<<uint(i&63)) != 0 }
func bmSet(bm []uint64, i int)      { bm[i>>6] |= 1 << uint(i&63) }
func bmClear(bm []uint64, i int)    { bm[i>>6] &^= 1 << uint(i&63) }

// numShards returns the shard count for the current slot capacity.
func (s *Swarm) numShards() int {
	return (s.slotCap + s.sh.slotsPerShard - 1) / s.sh.slotsPerShard
}

// shardBounds returns shard k's slot range [lo, hi).
func (s *Swarm) shardBounds(k int) (lo, hi int) {
	lo = k * s.sh.slotsPerShard
	hi = lo + s.sh.slotsPerShard
	if hi > s.slotCap {
		hi = s.slotCap
	}
	return lo, hi
}

// initShards sets up the shard layer at construction time (after the slot
// arrays exist, before any wiring: the addEdge marks from the initial
// announces land in live bitmaps).
func (s *Swarm) initShards() {
	sh := &s.sh
	sh.slotsPerShard = defaultShardSlots
	sh.activeStride = s.opt.TFTSlots + s.opt.OptimisticSlots
	sh.workers = 1
	sh.scratch = make([]chokeScratch, 1)
	s.initChokeScratch(&sh.scratch[0])
	s.resizeShards()
}

func (s *Swarm) initChokeScratch(sc *chokeScratch) {
	sc.candE = make([]int32, s.edgeCap)
	sc.candRate = make([]float64, s.edgeCap)
}

// resizeShards (re)sizes the slot-indexed shard state for s.slotCap,
// preserving existing content, and materialises streams for any new
// shards. Stream k is a pure function of (Seed, k), so growth never
// perturbs existing shards.
func (s *Swarm) resizeShards() {
	sh := &s.sh
	n := s.numShards()
	for k := len(sh.streams); k < n; k++ {
		sh.streams = append(sh.streams, rng.NewStream(s.opt.Seed, uint64(k)))
	}
	w := bmWords(s.slotCap)
	sh.chokeDirty = grown(sh.chokeDirty, w)
	sh.windowNZ = grown(sh.windowNZ, w)
	sh.ratesNZ = grown(sh.ratesNZ, w)
	sh.xferDirty = grown(sh.xferDirty, w)
	sh.statDirty = grown(sh.statDirty, w)
	sh.sumUp = grown(sh.sumUp, n*8)
	sh.sumDown = grown(sh.sumDown, n*8)
	if s.opt.ContentUnlimited {
		sh.xfer = grown(sh.xfer, s.slotCap*int(s.edgeCap))
		sh.incoming = grown(sh.incoming, w)
		sh.activeCnt = grown(sh.activeCnt, s.slotCap)
		sh.activeEdges = grown(sh.activeEdges, s.slotCap*sh.activeStride)
	}
	s.tel.SetGauge(telemetry.GaugeShards, int64(n))
}

// setShardSlots overrides the shard width (tests only: shard-boundary
// churn coverage needs boundaries inside small populations). Must be
// called before any Step; the per-shard streams are re-derived, so two
// swarms agree byte-for-byte only when their widths agree.
func (s *Swarm) setShardSlots(n int) {
	if n < 64 || n%64 != 0 {
		panic("btsim: shard width must be a positive multiple of 64")
	}
	s.sh.slotsPerShard = n
	s.sh.streams = s.sh.streams[:0]
	s.resizeShards()
}

// SetStepWorkers sets how many goroutines Step's sharded phases use;
// n <= 1 steps inline on the calling goroutine. The simulation trajectory
// is byte-identical at every setting — shards own their RNG sub-streams
// and all cross-shard effects merge in shard order — so the worker count
// is a runtime knob, not part of Options and not checkpointed: a run may
// checkpoint under one worker count and resume under another. Swarms
// stepped with n > 1 hold a worker pool; Close releases it.
func (s *Swarm) SetStepWorkers(n int) {
	sh := &s.sh
	if n < 1 {
		n = 1
	}
	if n != sh.workers {
		if sh.pool != nil {
			sh.pool.Close()
			sh.pool = nil
		}
		sh.workers = n
		for len(sh.scratch) < n {
			sh.scratch = append(sh.scratch, chokeScratch{})
			s.initChokeScratch(&sh.scratch[len(sh.scratch)-1])
		}
		if n > 1 {
			sh.pool = par.NewPool(n)
			sh.workerFn = s.shardWorker
		}
	}
	s.tel.SetGauge(telemetry.GaugeStepWorkers, int64(n))
}

// StepWorkers reports the current worker setting.
func (s *Swarm) StepWorkers() int { return s.sh.workers }

// Close releases the swarm's worker pool; a no-op for serial swarms and
// safe to call more than once.
func (s *Swarm) Close() {
	if s.sh.pool != nil {
		s.sh.pool.Close()
		s.sh.pool = nil
		s.sh.workers = 1
	}
}

// runShards executes one phase over every shard: inline in shard order
// when serial, via the persistent pool otherwise. Shard handout order is
// irrelevant to the result (each shard is self-contained for the phase),
// so the atomic cursor needs no further coordination.
func (s *Swarm) runShards(ph int) {
	n := s.numShards()
	if s.sh.workers <= 1 || s.sh.pool == nil {
		for k := 0; k < n; k++ {
			s.runShard(k, ph, 0)
		}
		return
	}
	s.sh.phase = ph
	s.sh.next.Store(0)
	s.sh.pool.Run(s.sh.workerFn)
}

func (s *Swarm) shardWorker(w int) {
	n := int32(s.numShards())
	ph := s.sh.phase
	for {
		k := s.sh.next.Add(1) - 1
		if k >= n {
			return
		}
		s.runShard(int(k), ph, w)
	}
}

func (s *Swarm) runShard(k, ph, w int) {
	sp := s.tel.StartPhase(shardPhaseTel[ph])
	switch ph {
	case phChoke:
		s.chokeShard(k, w)
	case phSend:
		s.sendShard(k)
	case phRecv:
		s.recvShard(k)
	}
	s.tel.EndPhase(shardPhaseTel[ph], sp)
}

// chokeShard runs the choke schedule over one shard's slots, drawing any
// randomness (seed rotation, optimistic picks) from the shard's own
// sub-stream. On-schedule leechers whose dirty bits are all clear are
// skipped — see the package comment for why the skip is exact.
func (s *Swarm) chokeShard(k, w int) {
	lo, hi := s.shardBounds(k)
	rr := s.sh.streams[k]
	sc := &s.sh.scratch[w]
	ci := s.opt.ChokeIntervalRounds
	oi := s.opt.OptimisticIntervalRounds
	for sl := lo; sl < hi; sl++ {
		id := s.slotPeer[sl]
		if id < 0 {
			continue
		}
		p := &s.peers[id]
		if p.departed {
			continue // crash-stop: a dead peer takes no protocol actions
		}
		if (s.round+p.id)%ci == 0 {
			if p.done || bmGet(s.sh.chokeDirty, sl) || bmGet(s.sh.windowNZ, sl) || bmGet(s.sh.ratesNZ, sl) {
				s.rechokePeer(p, sl, rr, sc)
			} else {
				s.tel.Inc(telemetry.CtrChokeSkips)
			}
		}
		if !p.done && (s.round+p.id)%oi == 0 {
			s.rotateOptimisticPeer(p, rr, sc)
			bmSet(s.sh.xferDirty, sl)
		}
	}
}

// rebuildActive recomputes slot sl's cached active-transfer list: the
// edges that are unchoked (or the optimistic pick) towards a present
// leecher. The cache is a pure function of choke state and neighbor
// liveness, both frozen during the transfer phase, and every mutation of
// either marks xferDirty — so a clean cache equals the eager scan
// (cross-checked by CheckInvariants).
func (s *Swarm) rebuildActive(sl int, u *peer) {
	s.tel.Inc(telemetry.CtrActiveRebuilds)
	base := int32(sl) * s.edgeCap
	end := base + s.deg[sl]
	abase := sl * s.sh.activeStride
	na := 0
	for e := base; e < end; e++ {
		if !s.unchoked[e] && e != u.optimistic {
			continue
		}
		v := &s.peers[s.nbr[e]]
		if !v.departed && !v.isSeed {
			s.sh.activeEdges[abase+na] = e
			na++
		}
	}
	s.sh.activeCnt[sl] = int32(na)
}

// sendShard is the content-unlimited uploader pass over one shard: each
// present uploader splits its capacity over its cached active list,
// writing the per-edge amount into xfer (exclusive: one uploader per
// reverse edge) and flagging the recipient's slot. Only uploader-local
// state (totalUp, the shard partial) is accumulated here; recipient-side
// accumulation happens in recvShard so each float total has exactly one
// deterministic accumulation order.
func (s *Swarm) sendShard(k int) {
	lo, hi := s.shardBounds(k)
	sh := &s.sh
	var sumUp float64
	for sl := lo; sl < hi; sl++ {
		id := s.slotPeer[sl]
		if id < 0 {
			continue
		}
		u := &s.peers[id]
		if u.departed || u.capacity <= 0 {
			continue
		}
		if bmGet(sh.xferDirty, sl) {
			s.rebuildActive(sl, u)
			bmClear(sh.xferDirty, sl)
		}
		na := int(sh.activeCnt[sl])
		if na == 0 {
			continue
		}
		share := u.capacity / float64(na)
		abase := sl * sh.activeStride
		for a := 0; a < na; a++ {
			ev := s.rev[sh.activeEdges[abase+a]] // recipient's edge back to u
			sh.xfer[ev] = share
			vsl := int(ev / s.edgeCap)
			atomic.OrUint64(&sh.incoming[vsl>>6], 1<<uint(vsl&63))
			u.totalUp += share
			sumUp += share
		}
		if !u.isSeed {
			bmSet(sh.statDirty, sl) // the uploader's share ratio moved
		}
	}
	sh.sumUp[k*8] = sumUp
}

// recvShard is the content-unlimited downloader pass over one shard:
// every slot flagged by uploaders drains its xfer entries into its
// receive windows and download totals (in edge order — deterministic and
// worker-independent), leaving xfer all-zero and incoming clear for the
// next round.
func (s *Swarm) recvShard(k int) {
	lo, hi := s.shardBounds(k)
	sh := &s.sh
	var sumDown float64
	for wi := lo >> 6; wi < (hi+63)>>6; wi++ {
		bitsW := sh.incoming[wi]
		if bitsW == 0 {
			continue
		}
		sh.incoming[wi] = 0
		for bitsW != 0 {
			t := bits.TrailingZeros64(bitsW)
			sl := wi<<6 + t
			bitsW &^= 1 << uint(t)
			v := &s.peers[s.slotPeer[sl]]
			base := int32(sl) * s.edgeCap
			end := base + s.deg[sl]
			for e := base; e < end; e++ {
				a := sh.xfer[e]
				if a == 0 {
					continue
				}
				sh.xfer[e] = 0
				s.recvWindow[e] += a
				v.totalDown += a
				sumDown += a
			}
			bmSet(sh.windowNZ, sl)
			bmSet(sh.statDirty, sl)
		}
	}
	sh.sumDown[k*8] = sumDown
}

// foldShardSums folds the transfer passes' per-shard partials into the
// swarm totals, in shard order (deterministic at any worker count).
func (s *Swarm) foldShardSums() {
	n := s.numShards()
	for k := 0; k < n; k++ {
		s.sumUp += s.sh.sumUp[k*8]
		s.sumDown += s.sh.sumDown[k*8]
		s.sh.sumUp[k*8] = 0
		s.sh.sumDown[k*8] = 0
	}
}

// slotRecycled resets the shard layer's per-slot flags when sl gets a new
// occupant: the newcomer is conservatively marked for rechoke and cache
// rebuild, while the previous occupant's window/rate flags die with its
// edges (a fresh slot has none).
func (s *Swarm) slotRecycled(sl int) {
	sh := &s.sh
	bmSet(sh.chokeDirty, sl)
	bmSet(sh.xferDirty, sl)
	bmClear(sh.windowNZ, sl)
	bmClear(sh.ratesNZ, sl)
	bmClear(sh.statDirty, sl)
}

// markEdgeTouched flags a slot whose edge block changed shape (an edge
// added, removed or swapped into a new index): both the candidate set and
// the cached active list may be stale.
func (s *Swarm) markEdgeTouched(sl int32) {
	bmSet(s.sh.chokeDirty, int(sl))
	bmSet(s.sh.xferDirty, int(sl))
}
