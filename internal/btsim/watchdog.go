package btsim

import "fmt"

// CheckInvariants audits the swarm's structural invariants by full recount:
// roster/slot/tracker agreement, free-list integrity, the present-rank
// permutation, CSR edge symmetry (rev involution, no self or duplicate
// edges), the incrementally maintained want and avail counters against
// their bitfield definitions, and the membership, degree-sum and
// stale-edge counters. It understands the fault layer: a crashed peer may
// keep its slot and edge block until the failure-detection sweep, and
// present peers may hold stale edges to it.
//
// A violation is returned as a descriptive error; nil means every
// invariant holds. The audit rescans the whole swarm and allocates
// scratch, so it is a debugging tool — scenarios run it per round only
// when FaultsSpec.Watchdog is set.
func (s *Swarm) CheckInvariants() error {
	// The rank-permutation audit below reads ranks.
	s.flushJoinRanks()
	// Crashed-but-unswept ids: allowed to hold slots while departed.
	pending := make(map[int32]bool)
	if s.flt != nil {
		for _, id := range s.flt.crashq[s.flt.crashHead:] {
			pending[id] = true
		}
	}

	// Roster ↔ slot ↔ tracker agreement, plus counter recounts.
	present, presentDone, completed, departed := 0, 0, 0, 0
	occupied := 0
	for i := range s.peers {
		p := &s.peers[i]
		if !p.isSeed && p.done {
			completed++
		}
		if p.departed {
			departed++
			if s.trk.pos[p.id] != -1 {
				return fmt.Errorf("btsim: invariant: departed peer %d still registered with the tracker", p.id)
			}
			if p.slot >= 0 && !pending[int32(p.id)] {
				return fmt.Errorf("btsim: invariant: departed peer %d holds slot %d but is not awaiting the crash sweep", p.id, p.slot)
			}
			if p.slot < 0 && pending[int32(p.id)] {
				return fmt.Errorf("btsim: invariant: crash-queue peer %d has no slot", p.id)
			}
		} else {
			present++
			if p.done {
				presentDone++
			}
			if p.slot < 0 {
				return fmt.Errorf("btsim: invariant: present peer %d has no slot", p.id)
			}
			pos := s.trk.pos[p.id]
			if pos < 0 || int(pos) >= len(s.trk.present) || s.trk.present[pos] != int32(p.id) {
				return fmt.Errorf("btsim: invariant: present peer %d not in the tracker registry", p.id)
			}
		}
		if p.slot >= 0 {
			occupied++
			if p.slot >= int32(s.slotCap) || s.slotPeer[p.slot] != int32(p.id) {
				return fmt.Errorf("btsim: invariant: peer %d and slot %d disagree on occupancy", p.id, p.slot)
			}
		}
	}
	switch {
	case present != s.present:
		return fmt.Errorf("btsim: invariant: present counter %d, recount %d", s.present, present)
	case presentDone != s.presentDone:
		return fmt.Errorf("btsim: invariant: presentDone counter %d, recount %d", s.presentDone, presentDone)
	case completed != s.completedLeechers:
		return fmt.Errorf("btsim: invariant: completedLeechers counter %d, recount %d", s.completedLeechers, completed)
	case departed != s.totalDeparted:
		return fmt.Errorf("btsim: invariant: totalDeparted counter %d, recount %d", s.totalDeparted, departed)
	case len(s.trk.present) != present:
		return fmt.Errorf("btsim: invariant: tracker holds %d peers, %d present", len(s.trk.present), present)
	}

	// Free-list integrity: free slots are vacant and unique, and together
	// with the occupied slots account for the whole capacity.
	seenFree := make(map[int32]bool, len(s.freeSlots))
	for _, sl := range s.freeSlots {
		if seenFree[sl] {
			return fmt.Errorf("btsim: invariant: slot %d is on the free list twice", sl)
		}
		seenFree[sl] = true
		if s.slotPeer[sl] != -1 {
			return fmt.Errorf("btsim: invariant: free slot %d is occupied by peer %d", sl, s.slotPeer[sl])
		}
	}
	if occupied+len(s.freeSlots) != s.slotCap {
		return fmt.Errorf("btsim: invariant: %d occupied + %d free slots over capacity %d",
			occupied, len(s.freeSlots), s.slotCap)
	}

	// Present ranks form a permutation of 0..present-1.
	seenRank := make([]bool, present)
	for _, id := range s.trk.present {
		r := s.rank[id]
		if r < 0 || r >= present || seenRank[r] {
			return fmt.Errorf("btsim: invariant: present ranks are not a permutation (peer %d has rank %d)", id, r)
		}
		seenRank[r] = true
	}

	// Edge structure and the incremental counters it feeds.
	liveDeg := int64(0)
	stale := 0
	availRe := make([]int32, s.opt.Pieces)
	for sl := 0; sl < s.slotCap; sl++ {
		oid := s.slotPeer[sl]
		if oid < 0 {
			continue
		}
		o := &s.peers[oid]
		d := s.deg[sl]
		if d < 0 || d > s.edgeCap {
			return fmt.Errorf("btsim: invariant: slot %d degree %d out of range", sl, d)
		}
		if !o.departed {
			liveDeg += int64(d)
		}
		for i := range availRe {
			availRe[i] = 0
		}
		base := int32(sl) * s.edgeCap
		for e := base; e < base+d; e++ {
			t := s.nbr[e]
			if t < 0 || int(t) >= len(s.peers) {
				return fmt.Errorf("btsim: invariant: edge %d targets unknown peer %d", e, t)
			}
			q := &s.peers[t]
			if t == oid {
				return fmt.Errorf("btsim: invariant: peer %d has a self-edge", oid)
			}
			if q.slot < 0 {
				return fmt.Errorf("btsim: invariant: peer %d has an edge to slotless peer %d", oid, t)
			}
			er := s.rev[e]
			if er < q.slot*s.edgeCap || er >= q.slot*s.edgeCap+s.deg[q.slot] ||
				s.nbr[er] != oid || s.rev[er] != e {
				return fmt.Errorf("btsim: invariant: rev involution broken on edge %d (peer %d → %d)", e, oid, t)
			}
			for e2 := base; e2 < e; e2++ {
				if s.nbr[e2] == t {
					return fmt.Errorf("btsim: invariant: peer %d has duplicate edges to %d", oid, t)
				}
			}
			if want := int32(o.have.countMissingIn(q.have)); s.want[e] != want {
				return fmt.Errorf("btsim: invariant: want[%d] = %d, recount %d (peer %d → %d)",
					e, s.want[e], want, oid, t)
			}
			for piece := 0; piece < s.opt.Pieces; piece++ {
				if q.have.has(piece) {
					availRe[piece]++
				}
			}
			if !o.departed && q.departed {
				stale++
			}
		}
		abase := sl * s.opt.Pieces
		for piece := 0; piece < s.opt.Pieces; piece++ {
			if s.avail[abase+piece] != availRe[piece] {
				return fmt.Errorf("btsim: invariant: avail[slot %d, piece %d] = %d, recount %d",
					sl, piece, s.avail[abase+piece], availRe[piece])
			}
		}
	}
	if liveDeg != s.liveDegSum {
		return fmt.Errorf("btsim: invariant: liveDegSum %d, recount %d", s.liveDegSum, liveDeg)
	}
	if s.flt != nil && stale != s.flt.staleEdges {
		return fmt.Errorf("btsim: invariant: staleEdges %d, recount %d", s.flt.staleEdges, stale)
	}
	if s.flt == nil && stale != 0 {
		return fmt.Errorf("btsim: invariant: %d stale edges without a fault layer", stale)
	}
	if err := s.checkLazyStepping(); err != nil {
		return err
	}
	return nil
}

// checkLazyStepping cross-checks the event-driven bookkeeping against an
// eager recomputation: a clear dirty bit is a claim ("nothing here changed")
// that must be provably true, while a spurious set bit is merely
// conservative and not audited. It runs as part of CheckInvariants, between
// rounds, when the cross-round transfer scratch must also be quiescent.
func (s *Swarm) checkLazyStepping() error {
	sh := &s.sh
	// The send/recv handoff scratch must be fully drained between rounds.
	for i, w := range sh.incoming {
		if w != 0 {
			return fmt.Errorf("btsim: invariant: incoming bitmap word %d nonzero between rounds", i)
		}
	}
	for e, a := range sh.xfer {
		if a != 0 {
			return fmt.Errorf("btsim: invariant: xfer[%d] = %g left over between rounds", e, a)
		}
	}
	for sl := 0; sl < s.slotCap; sl++ {
		id := s.slotPeer[sl]
		if id < 0 {
			continue
		}
		p := &s.peers[id]
		base := int32(sl) * s.edgeCap
		end := base + s.deg[sl]
		// A clear windowNZ/ratesNZ bit claims the slot's whole window/rate
		// block is zero — the claim the exact choke skip relies on.
		if !bmGet(sh.windowNZ, sl) {
			for e := base; e < end; e++ {
				if s.recvWindow[e] != 0 {
					return fmt.Errorf("btsim: invariant: slot %d windowNZ clear but recvWindow[%d] = %g",
						sl, e, s.recvWindow[e])
				}
			}
		}
		if !bmGet(sh.ratesNZ, sl) {
			for e := base; e < end; e++ {
				if s.recvRate[e] != 0 {
					return fmt.Errorf("btsim: invariant: slot %d ratesNZ clear but recvRate[%d] = %g",
						sl, e, s.recvRate[e])
				}
			}
		}
		// A clean active-list cache must equal the eager recomputation.
		if s.opt.ContentUnlimited && !p.departed && p.capacity > 0 && !bmGet(sh.xferDirty, sl) {
			abase := sl * sh.activeStride
			na := 0
			for e := base; e < end; e++ {
				if !s.unchoked[e] && e != p.optimistic {
					continue
				}
				v := &s.peers[s.nbr[e]]
				if v.departed || v.isSeed {
					continue
				}
				if na >= int(sh.activeCnt[sl]) || sh.activeEdges[abase+na] != e {
					return fmt.Errorf("btsim: invariant: slot %d active cache diverges from eager scan at entry %d", sl, na)
				}
				na++
			}
			if na != int(sh.activeCnt[sl]) {
				return fmt.Errorf("btsim: invariant: slot %d active cache holds %d edges, eager scan %d",
					sl, sh.activeCnt[sl], na)
			}
		}
	}
	return s.checkLazyStats()
}

// checkLazyStats audits the incremental series sampler: every non-dirty,
// present, non-seed slot's cached contribution must exactly equal a fresh
// recomputation (the cached values were computed from the same inputs by
// the same expressions), and the global accumulators must match the sum of
// the cached rows up to float re-association.
func (s *Swarm) checkLazyStats() error {
	st := s.stats
	if st == nil {
		return nil
	}
	var n int
	var sx, sy, sxx, syy, sxy float64
	var rsum [3]float64
	var rn [3]int
	for sl := 0; sl < s.slotCap; sl++ {
		id := s.slotPeer[sl]
		if id < 0 {
			continue
		}
		p := &s.peers[id]
		if p.departed || p.isSeed {
			continue
		}
		dirty := bmGet(s.sh.statDirty, sl)
		if !dirty {
			if st.cls[sl] != st.class(p.capacity) {
				return fmt.Errorf("btsim: invariant: slot %d cached capacity class %d, recomputed %d",
					sl, st.cls[sl], st.class(p.capacity))
			}
			if st.inCorr[sl] != (p.tftPartnerCount > 0) {
				return fmt.Errorf("btsim: invariant: slot %d inCorr %v with %d TFT partners",
					sl, st.inCorr[sl], p.tftPartnerCount)
			}
			if st.inCorr[sl] {
				x := float64(s.rank[id])
				y := p.tftPartnerRankSum / float64(p.tftPartnerCount)
				if st.x[sl] != x || st.y[sl] != y {
					return fmt.Errorf("btsim: invariant: slot %d cached corr point (%g, %g), recomputed (%g, %g)",
						sl, st.x[sl], st.y[sl], x, y)
				}
			}
			if st.inRatio[sl] != (p.totalUp > 0) {
				return fmt.Errorf("btsim: invariant: slot %d inRatio %v with totalUp %g",
					sl, st.inRatio[sl], p.totalUp)
			}
			if st.inRatio[sl] && st.ratio[sl] != p.totalDown/p.totalUp {
				return fmt.Errorf("btsim: invariant: slot %d cached ratio %g, recomputed %g",
					sl, st.ratio[sl], p.totalDown/p.totalUp)
			}
		}
		// Sum the cached rows (dirty slots included: their stale cache is
		// what the accumulators still hold).
		if st.inCorr[sl] {
			n++
			sx += st.x[sl]
			sy += st.y[sl]
			sxx += st.x[sl] * st.x[sl]
			syy += st.y[sl] * st.y[sl]
			sxy += st.x[sl] * st.y[sl]
		}
		if st.inRatio[sl] {
			rsum[st.cls[sl]] += st.ratio[sl]
			rn[st.cls[sl]]++
		}
	}
	if n != st.n || rn != st.rn {
		return fmt.Errorf("btsim: invariant: sampler counts n=%d rn=%v, recount n=%d rn=%v", st.n, st.rn, n, rn)
	}
	approx := func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		m := 1.0
		if a > m || a < -m {
			if a < 0 {
				m = -a
			} else {
				m = a
			}
		}
		return d <= 1e-6*m
	}
	if !approx(st.sx, sx) || !approx(st.sy, sy) || !approx(st.sxx, sxx) ||
		!approx(st.syy, syy) || !approx(st.sxy, sxy) ||
		!approx(st.rsum[0], rsum[0]) || !approx(st.rsum[1], rsum[1]) || !approx(st.rsum[2], rsum[2]) {
		return fmt.Errorf("btsim: invariant: sampler accumulators diverge from cached rows")
	}
	return nil
}
