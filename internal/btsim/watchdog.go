package btsim

import "fmt"

// CheckInvariants audits the swarm's structural invariants by full recount:
// roster/slot/tracker agreement, free-list integrity, the present-rank
// permutation, CSR edge symmetry (rev involution, no self or duplicate
// edges), the incrementally maintained want and avail counters against
// their bitfield definitions, and the membership, degree-sum and
// stale-edge counters. It understands the fault layer: a crashed peer may
// keep its slot and edge block until the failure-detection sweep, and
// present peers may hold stale edges to it.
//
// A violation is returned as a descriptive error; nil means every
// invariant holds. The audit rescans the whole swarm and allocates
// scratch, so it is a debugging tool — scenarios run it per round only
// when FaultsSpec.Watchdog is set.
func (s *Swarm) CheckInvariants() error {
	// Crashed-but-unswept ids: allowed to hold slots while departed.
	pending := make(map[int32]bool)
	if s.flt != nil {
		for _, id := range s.flt.crashq[s.flt.crashHead:] {
			pending[id] = true
		}
	}

	// Roster ↔ slot ↔ tracker agreement, plus counter recounts.
	present, presentDone, completed, departed := 0, 0, 0, 0
	occupied := 0
	for i := range s.peers {
		p := &s.peers[i]
		if !p.isSeed && p.done {
			completed++
		}
		if p.departed {
			departed++
			if s.trk.pos[p.id] != -1 {
				return fmt.Errorf("btsim: invariant: departed peer %d still registered with the tracker", p.id)
			}
			if p.slot >= 0 && !pending[int32(p.id)] {
				return fmt.Errorf("btsim: invariant: departed peer %d holds slot %d but is not awaiting the crash sweep", p.id, p.slot)
			}
			if p.slot < 0 && pending[int32(p.id)] {
				return fmt.Errorf("btsim: invariant: crash-queue peer %d has no slot", p.id)
			}
		} else {
			present++
			if p.done {
				presentDone++
			}
			if p.slot < 0 {
				return fmt.Errorf("btsim: invariant: present peer %d has no slot", p.id)
			}
			pos := s.trk.pos[p.id]
			if pos < 0 || int(pos) >= len(s.trk.present) || s.trk.present[pos] != int32(p.id) {
				return fmt.Errorf("btsim: invariant: present peer %d not in the tracker registry", p.id)
			}
		}
		if p.slot >= 0 {
			occupied++
			if p.slot >= int32(s.slotCap) || s.slotPeer[p.slot] != int32(p.id) {
				return fmt.Errorf("btsim: invariant: peer %d and slot %d disagree on occupancy", p.id, p.slot)
			}
		}
	}
	switch {
	case present != s.present:
		return fmt.Errorf("btsim: invariant: present counter %d, recount %d", s.present, present)
	case presentDone != s.presentDone:
		return fmt.Errorf("btsim: invariant: presentDone counter %d, recount %d", s.presentDone, presentDone)
	case completed != s.completedLeechers:
		return fmt.Errorf("btsim: invariant: completedLeechers counter %d, recount %d", s.completedLeechers, completed)
	case departed != s.totalDeparted:
		return fmt.Errorf("btsim: invariant: totalDeparted counter %d, recount %d", s.totalDeparted, departed)
	case len(s.trk.present) != present:
		return fmt.Errorf("btsim: invariant: tracker holds %d peers, %d present", len(s.trk.present), present)
	}

	// Free-list integrity: free slots are vacant and unique, and together
	// with the occupied slots account for the whole capacity.
	seenFree := make(map[int32]bool, len(s.freeSlots))
	for _, sl := range s.freeSlots {
		if seenFree[sl] {
			return fmt.Errorf("btsim: invariant: slot %d is on the free list twice", sl)
		}
		seenFree[sl] = true
		if s.slotPeer[sl] != -1 {
			return fmt.Errorf("btsim: invariant: free slot %d is occupied by peer %d", sl, s.slotPeer[sl])
		}
	}
	if occupied+len(s.freeSlots) != s.slotCap {
		return fmt.Errorf("btsim: invariant: %d occupied + %d free slots over capacity %d",
			occupied, len(s.freeSlots), s.slotCap)
	}

	// Present ranks form a permutation of 0..present-1.
	seenRank := make([]bool, present)
	for _, id := range s.trk.present {
		r := s.rank[id]
		if r < 0 || r >= present || seenRank[r] {
			return fmt.Errorf("btsim: invariant: present ranks are not a permutation (peer %d has rank %d)", id, r)
		}
		seenRank[r] = true
	}

	// Edge structure and the incremental counters it feeds.
	liveDeg := int64(0)
	stale := 0
	availRe := make([]int32, s.opt.Pieces)
	for sl := 0; sl < s.slotCap; sl++ {
		oid := s.slotPeer[sl]
		if oid < 0 {
			continue
		}
		o := &s.peers[oid]
		d := s.deg[sl]
		if d < 0 || d > s.edgeCap {
			return fmt.Errorf("btsim: invariant: slot %d degree %d out of range", sl, d)
		}
		if !o.departed {
			liveDeg += int64(d)
		}
		for i := range availRe {
			availRe[i] = 0
		}
		base := int32(sl) * s.edgeCap
		for e := base; e < base+d; e++ {
			t := s.nbr[e]
			if t < 0 || int(t) >= len(s.peers) {
				return fmt.Errorf("btsim: invariant: edge %d targets unknown peer %d", e, t)
			}
			q := &s.peers[t]
			if t == oid {
				return fmt.Errorf("btsim: invariant: peer %d has a self-edge", oid)
			}
			if q.slot < 0 {
				return fmt.Errorf("btsim: invariant: peer %d has an edge to slotless peer %d", oid, t)
			}
			er := s.rev[e]
			if er < q.slot*s.edgeCap || er >= q.slot*s.edgeCap+s.deg[q.slot] ||
				s.nbr[er] != oid || s.rev[er] != e {
				return fmt.Errorf("btsim: invariant: rev involution broken on edge %d (peer %d → %d)", e, oid, t)
			}
			for e2 := base; e2 < e; e2++ {
				if s.nbr[e2] == t {
					return fmt.Errorf("btsim: invariant: peer %d has duplicate edges to %d", oid, t)
				}
			}
			if want := int32(o.have.countMissingIn(q.have)); s.want[e] != want {
				return fmt.Errorf("btsim: invariant: want[%d] = %d, recount %d (peer %d → %d)",
					e, s.want[e], want, oid, t)
			}
			for piece := 0; piece < s.opt.Pieces; piece++ {
				if q.have.has(piece) {
					availRe[piece]++
				}
			}
			if !o.departed && q.departed {
				stale++
			}
		}
		abase := sl * s.opt.Pieces
		for piece := 0; piece < s.opt.Pieces; piece++ {
			if s.avail[abase+piece] != availRe[piece] {
				return fmt.Errorf("btsim: invariant: avail[slot %d, piece %d] = %d, recount %d",
					sl, piece, s.avail[abase+piece], availRe[piece])
			}
		}
	}
	if liveDeg != s.liveDegSum {
		return fmt.Errorf("btsim: invariant: liveDegSum %d, recount %d", s.liveDegSum, liveDeg)
	}
	if s.flt != nil && stale != s.flt.staleEdges {
		return fmt.Errorf("btsim: invariant: staleEdges %d, recount %d", s.flt.staleEdges, stale)
	}
	if s.flt == nil && stale != 0 {
		return fmt.Errorf("btsim: invariant: %d stale edges without a fault layer", stale)
	}
	return nil
}
