package btsim

import (
	"math"
	"math/bits"
)

// stratStats is the engine-side incremental series sampler: it maintains
// the stratification-correlation sums and per-class share-ratio sums that
// seriesSampler.sample used to recompute with an O(present) roster pass.
// Each present non-seed slot contributes at most one (x, y) point to the
// Pearson accumulators (x its rank, y its mean TFT partner rank) and one
// ratio to its capacity class; the per-slot contribution is cached, and
// only slots whose inputs changed since the last sample — the statDirty
// set, marked by the transfer and rechoke paths — are subtracted and
// re-added. Rank shifts (joins, departures) adjust the x sums in O(1) per
// shifted peer via shiftRank instead of dirtying everyone.
//
// The sums drift from an eagerly recomputed pass only by float re-
// association (a − c + c style), so the sampled statistics are compared
// against the eager oracle with tolerance in tests, while checkpoints
// save the accumulator state verbatim — resumed runs continue the exact
// same float trajectory and stay byte-identical.
type stratStats struct {
	lo, hi float64 // capacity-tercile class bounds (classBounds values)

	// Cached per-slot contributions; inCorr/inRatio record whether the
	// slot currently contributes to the Pearson sums / its class ratio.
	x, y    []float64
	ratio   []float64
	cls     []uint8
	inCorr  []bool
	inRatio []bool

	// Pearson accumulators over the contributing slots (same shape as
	// stats.PearsonAcc) and per-class ratio sums.
	n                     int
	sx, sy, sxx, syy, sxy float64
	rsum                  [3]float64
	rn                    [3]int
}

// EnableSeriesStats arms the incremental sampler with the given capacity
// class bounds. Must be called before the first Step (the cached
// contributions start from the all-zero totals a fresh swarm has).
func (s *Swarm) EnableSeriesStats(lo, hi float64) {
	st := &stratStats{lo: lo, hi: hi}
	st.grow(s.slotCap)
	for sl := 0; sl < s.slotCap; sl++ {
		if id := s.slotPeer[sl]; id >= 0 {
			st.cls[sl] = st.class(s.peers[id].capacity)
		}
	}
	s.stats = st
}

// SeriesStatsEnabled reports whether the incremental sampler is armed.
func (s *Swarm) SeriesStatsEnabled() bool { return s.stats != nil }

func (st *stratStats) grow(slotCap int) {
	st.x = grown(st.x, slotCap)
	st.y = grown(st.y, slotCap)
	st.ratio = grown(st.ratio, slotCap)
	st.cls = grown(st.cls, slotCap)
	st.inCorr = grown(st.inCorr, slotCap)
	st.inRatio = grown(st.inRatio, slotCap)
}

// class mirrors classBounds.class: capacity terciles (slow, mid, fast).
func (st *stratStats) class(capacity float64) uint8 {
	switch {
	case capacity < st.lo:
		return 0
	case capacity < st.hi:
		return 1
	default:
		return 2
	}
}

// initSlot registers a new occupant's capacity class (Join path); the new
// slot contributes nothing until its first transfer or TFT decision.
func (st *stratStats) initSlot(sl int, capacity float64) {
	st.cls[sl] = st.class(capacity)
	st.inCorr[sl] = false
	st.inRatio[sl] = false
}

// refresh replaces slot sl's cached contributions with ones recomputed
// from the peer's current rank, TFT history and transfer totals.
func (st *stratStats) refresh(sl int, rank int, p *peer) {
	if st.inCorr[sl] {
		ox, oy := st.x[sl], st.y[sl]
		st.n--
		st.sx -= ox
		st.sy -= oy
		st.sxx -= ox * ox
		st.syy -= oy * oy
		st.sxy -= ox * oy
		st.inCorr[sl] = false
	}
	if p.tftPartnerCount > 0 {
		x := float64(rank)
		y := p.tftPartnerRankSum / float64(p.tftPartnerCount)
		st.x[sl], st.y[sl] = x, y
		st.n++
		st.sx += x
		st.sy += y
		st.sxx += x * x
		st.syy += y * y
		st.sxy += x * y
		st.inCorr[sl] = true
	}
	cl := st.cls[sl]
	if st.inRatio[sl] {
		st.rsum[cl] -= st.ratio[sl]
		st.rn[cl]--
		st.inRatio[sl] = false
	}
	if p.totalUp > 0 {
		r := p.totalDown / p.totalUp
		st.ratio[sl] = r
		st.rsum[cl] += r
		st.rn[cl]++
		st.inRatio[sl] = true
	}
}

// shiftRank moves slot sl's x contribution by d ranks in O(1):
// nx² − ox² = d·(ox + nx) and Σxy gains d·y.
func (st *stratStats) shiftRank(sl int, d float64) {
	if !st.inCorr[sl] {
		return
	}
	ox := st.x[sl]
	nx := ox + d
	st.x[sl] = nx
	st.sx += d
	st.sxx += d * (ox + nx)
	st.sxy += d * st.y[sl]
}

// remove withdraws slot sl's contributions (Depart/Crash path, before the
// slot is recycled).
func (st *stratStats) remove(sl int) {
	if st.inCorr[sl] {
		ox, oy := st.x[sl], st.y[sl]
		st.n--
		st.sx -= ox
		st.sy -= oy
		st.sxx -= ox * ox
		st.syy -= oy * oy
		st.sxy -= ox * oy
		st.inCorr[sl] = false
	}
	if st.inRatio[sl] {
		cl := st.cls[sl]
		st.rsum[cl] -= st.ratio[sl]
		st.rn[cl]--
		st.inRatio[sl] = false
	}
}

// corr evaluates the Pearson correlation from the accumulated sums,
// mirroring stats.PearsonAcc.Corr term for term.
func (st *stratStats) corr() float64 {
	if st.n < 2 {
		return math.NaN()
	}
	n := float64(st.n)
	cov := st.sxy/n - st.sx/n*st.sy/n
	vx := st.sxx/n - st.sx/n*st.sx/n
	vy := st.syy/n - st.sy/n*st.sy/n
	if vx <= 0 || vy <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// ratioMean returns class cl's mean share ratio (NaN when empty).
func (st *stratStats) ratioMean(cl int) float64 {
	if st.rn[cl] == 0 {
		return math.NaN()
	}
	return st.rsum[cl] / float64(st.rn[cl])
}

// flushSeriesStats folds every statDirty slot's fresh contributions into
// the accumulators and clears the dirty set — O(changed), called once per
// sample.
func (s *Swarm) flushSeriesStats() {
	st := s.stats
	for wi, w := range s.sh.statDirty {
		if w == 0 {
			continue
		}
		s.sh.statDirty[wi] = 0
		for w != 0 {
			t := bits.TrailingZeros64(w)
			w &^= 1 << uint(t)
			sl := wi<<6 + t
			id := s.slotPeer[sl]
			if id < 0 {
				continue
			}
			p := &s.peers[id]
			if p.departed || p.isSeed {
				continue
			}
			st.refresh(sl, s.rank[id], p)
		}
	}
}
