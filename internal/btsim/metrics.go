package btsim

import (
	"math"

	"stratmatch/internal/stats"
)

// PeerMetrics is the per-peer outcome of a simulation.
type PeerMetrics struct {
	ID       int
	Capacity float64 // upload capacity, kbps
	// Rank is the peer's bandwidth rank (0 = fastest) among the present
	// population — frozen at its departure rank once the peer leaves.
	Rank     int
	IsSeed   bool
	Departed bool
	Done     bool
	// JoinRound and DepartRound delimit the peer's presence (0 for the
	// initial population; DepartRound is −1 while the peer is present).
	JoinRound   int
	DepartRound int
	// DoneRound is the round at which the peer finished (−1 if still
	// leeching; 0 for initial seeds and post-flash-crowd instant finishers).
	DoneRound int
	// TotalUp / TotalDown are kbit moved over the whole run.
	TotalUp   float64
	TotalDown float64
	// ShareRatio is TotalDown / TotalUp (NaN when nothing was uploaded) —
	// the quantity the paper's Figure 11 predicts analytically.
	ShareRatio float64
	// MeanTFTPartnerRank averages the global ranks of the peers granted a
	// rate-driven TFT slot; NaN when no rate-driven decision happened.
	MeanTFTPartnerRank float64
}

// Metrics summarizes a swarm's state. Peers holds one row per peer that
// ever joined (the roster), departed peers included.
type Metrics struct {
	Round             int
	Peers             []PeerMetrics
	CompletedLeechers int
	// Present / PresentSeeds count the peers currently in the swarm;
	// PresentSeeds includes leechers promoted to seed on completion.
	Present      int
	PresentSeeds int
	// TotalDeparted counts the peers that ever left (len(Peers) is the
	// total that ever joined), so observers need not rescan the roster.
	TotalDeparted int
	// TotalCrashed counts the departures that were crash-stop failures
	// (a subset of TotalDeparted); 0 in fault-free runs.
	TotalCrashed int
	// MeanCompletionRound averages DoneRound over completed leechers that
	// started incomplete (NaN if none).
	MeanCompletionRound float64
	// StratCorrelation is the Pearson correlation between a leecher's own
	// rank and its mean TFT-partner rank. Stratification means strongly
	// positive: fast peers trade with fast peers.
	//
	// Both stratification statistics aggregate over each present peer's
	// whole lifetime: tftPartnerRankSum accumulates ranks as they were at
	// each choke decision, so after large population swings (e.g. a mass
	// departure) a survivor's history mixes rank scales and the absolute
	// values lose precision. Under heavy churn, read the scenario time
	// series for the trend rather than a single snapshot's absolute value.
	StratCorrelation float64
	// MeanAbsRankOffset averages |own rank − mean partner rank| over
	// present leechers with TFT history, normalized by the present
	// population; small values mean tight rank bands (cf. the MMO of
	// Section 4). The lifetime-aggregation caveat above applies.
	MeanAbsRankOffset float64
}

// Snapshot computes metrics for the current state.
func (s *Swarm) Snapshot() Metrics {
	s.flushJoinRanks() // the per-peer rows below read ranks
	m := Metrics{
		Round: s.round, Present: s.present, PresentSeeds: s.presentDone,
		TotalDeparted: s.totalDeparted,
	}
	if s.flt != nil {
		m.TotalCrashed = s.flt.totalCrashed
	}
	var (
		ownRanks, partnerRanks []float64
		offsets                []float64
		doneRounds             []float64
	)
	// Normalize rank offsets by the present population (== the roster for
	// a static swarm); ranks live on that scale. With nobody present the
	// offset loop below never runs, so n == 0 cannot divide anything.
	n := float64(s.present)
	for i := range s.peers {
		p := &s.peers[i]
		pm := PeerMetrics{
			ID:                 p.id,
			Capacity:           p.capacity,
			Rank:               s.rank[p.id],
			IsSeed:             p.isSeed,
			Departed:           p.departed,
			Done:               p.done,
			JoinRound:          p.joinRound,
			DepartRound:        p.departRound,
			DoneRound:          p.doneRound,
			TotalUp:            p.totalUp,
			TotalDown:          p.totalDown,
			ShareRatio:         math.NaN(),
			MeanTFTPartnerRank: math.NaN(),
		}
		if p.totalUp > 0 {
			pm.ShareRatio = p.totalDown / p.totalUp
		}
		if p.tftPartnerCount > 0 {
			pm.MeanTFTPartnerRank = p.tftPartnerRankSum / float64(p.tftPartnerCount)
		}
		if !p.isSeed {
			if p.done {
				m.CompletedLeechers++
				if p.doneRound > 0 {
					doneRounds = append(doneRounds, float64(p.doneRound))
				}
			}
			// Only present peers feed the stratification aggregates:
			// departed peers' frozen ranks come from whatever population
			// size existed when they left, and mixing those scales with
			// the present normalization would make the offsets
			// meaningless under churn (sample() applies the same rule).
			if p.tftPartnerCount > 0 && !p.departed {
				ownRanks = append(ownRanks, float64(s.rank[p.id]))
				partnerRanks = append(partnerRanks, pm.MeanTFTPartnerRank)
				offsets = append(offsets, math.Abs(float64(s.rank[p.id])-pm.MeanTFTPartnerRank)/n)
			}
		}
		m.Peers = append(m.Peers, pm)
	}
	m.StratCorrelation = stats.Pearson(ownRanks, partnerRanks)
	if len(offsets) > 0 {
		m.MeanAbsRankOffset = stats.Summarize(offsets).Mean
	} else {
		m.MeanAbsRankOffset = math.NaN()
	}
	if len(doneRounds) > 0 {
		m.MeanCompletionRound = stats.Summarize(doneRounds).Mean
	} else {
		m.MeanCompletionRound = math.NaN()
	}
	return m
}

// TotalUploaded returns the total kbit uploaded by all peers so far. O(1):
// the swarm maintains a running sum at the transfer sites instead of
// scanning the roster.
func (s *Swarm) TotalUploaded() float64 { return s.sumUp }

// TotalDownloaded returns the total kbit downloaded by all peers so far.
// Conservation requires TotalUploaded() == TotalDownloaded() at all times.
// O(1) via a running sum, like TotalUploaded.
func (s *Swarm) TotalDownloaded() float64 { return s.sumDown }

// recountTotals recomputes the transfer totals by the original roster scan.
// It exists for the conservation invariant test, which checks the running
// sums against it.
func (s *Swarm) recountTotals() (up, down float64) {
	for _, p := range s.peers {
		up += p.totalUp
		down += p.totalDown
	}
	return up, down
}
