package btsim

import (
	"math"

	"stratmatch/internal/stats"
)

// PeerMetrics is the per-peer outcome of a simulation.
type PeerMetrics struct {
	ID       int
	Capacity float64 // upload capacity, kbps
	Rank     int     // global bandwidth rank, 0 = fastest
	IsSeed   bool
	Departed bool
	Done     bool
	// DoneRound is the round at which the peer finished (−1 if still
	// leeching; 0 for initial seeds and post-flash-crowd instant finishers).
	DoneRound int
	// TotalUp / TotalDown are kbit moved over the whole run.
	TotalUp   float64
	TotalDown float64
	// ShareRatio is TotalDown / TotalUp (NaN when nothing was uploaded) —
	// the quantity the paper's Figure 11 predicts analytically.
	ShareRatio float64
	// MeanTFTPartnerRank averages the global ranks of the peers granted a
	// rate-driven TFT slot; NaN when no rate-driven decision happened.
	MeanTFTPartnerRank float64
}

// Metrics summarizes a swarm's state.
type Metrics struct {
	Round             int
	Peers             []PeerMetrics
	CompletedLeechers int
	// MeanCompletionRound averages DoneRound over completed leechers that
	// started incomplete (NaN if none).
	MeanCompletionRound float64
	// StratCorrelation is the Pearson correlation between a leecher's own
	// rank and its mean TFT-partner rank. Stratification means strongly
	// positive: fast peers trade with fast peers.
	StratCorrelation float64
	// MeanAbsRankOffset averages |own rank − mean partner rank| over
	// leechers with TFT history, normalized by the population size; small
	// values mean tight rank bands (cf. the MMO of Section 4).
	MeanAbsRankOffset float64
}

// Snapshot computes metrics for the current state.
func (s *Swarm) Snapshot() Metrics {
	m := Metrics{Round: s.round}
	var (
		ownRanks, partnerRanks []float64
		offsets                []float64
		doneRounds             []float64
	)
	n := float64(len(s.peers))
	for _, p := range s.peers {
		pm := PeerMetrics{
			ID:                 p.id,
			Capacity:           p.capacity,
			Rank:               s.rank[p.id],
			IsSeed:             p.isSeed,
			Departed:           p.departed,
			Done:               p.done,
			DoneRound:          p.doneRound,
			TotalUp:            p.totalUp,
			TotalDown:          p.totalDown,
			ShareRatio:         math.NaN(),
			MeanTFTPartnerRank: math.NaN(),
		}
		if p.totalUp > 0 {
			pm.ShareRatio = p.totalDown / p.totalUp
		}
		if p.tftPartnerCount > 0 {
			pm.MeanTFTPartnerRank = p.tftPartnerRankSum / float64(p.tftPartnerCount)
		}
		if !p.isSeed {
			if p.done {
				m.CompletedLeechers++
				if p.doneRound > 0 {
					doneRounds = append(doneRounds, float64(p.doneRound))
				}
			}
			if p.tftPartnerCount > 0 {
				ownRanks = append(ownRanks, float64(s.rank[p.id]))
				partnerRanks = append(partnerRanks, pm.MeanTFTPartnerRank)
				offsets = append(offsets, math.Abs(float64(s.rank[p.id])-pm.MeanTFTPartnerRank)/n)
			}
		}
		m.Peers = append(m.Peers, pm)
	}
	m.StratCorrelation = stats.Pearson(ownRanks, partnerRanks)
	if len(offsets) > 0 {
		m.MeanAbsRankOffset = stats.Summarize(offsets).Mean
	} else {
		m.MeanAbsRankOffset = math.NaN()
	}
	if len(doneRounds) > 0 {
		m.MeanCompletionRound = stats.Summarize(doneRounds).Mean
	} else {
		m.MeanCompletionRound = math.NaN()
	}
	return m
}

// TotalUploaded returns the total kbit uploaded by all peers so far.
func (s *Swarm) TotalUploaded() float64 {
	var total float64
	for _, p := range s.peers {
		total += p.totalUp
	}
	return total
}

// TotalDownloaded returns the total kbit downloaded by all peers so far.
// Conservation requires TotalUploaded() == TotalDownloaded() at all times.
func (s *Swarm) TotalDownloaded() float64 {
	var total float64
	for _, p := range s.peers {
		total += p.totalDown
	}
	return total
}
