package btsim

import "testing"

func TestChokeSlotsBounded(t *testing.T) {
	// A leecher never holds more than TFTSlots unchoked neighbors plus one
	// optimistic; a seed never more than TFTSlots+OptimisticSlots.
	s, err := New(Options{
		Leechers: 40, Seeds: 2, Pieces: 64, PostFlashCrowd: true,
		TFTSlots: 3, OptimisticSlots: 1, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 120; round++ {
		s.Step()
		for i := range s.peers {
			p := &s.peers[i]
			unchoked := 0
			base, end := s.edges(p.id)
			for e := base; e < end; e++ {
				if s.unchoked[e] {
					unchoked++
				}
			}
			limit := s.opt.TFTSlots
			if p.done {
				limit = s.opt.TFTSlots + s.opt.OptimisticSlots
			}
			if unchoked > limit {
				t.Fatalf("round %d: peer %d unchokes %d > %d", round, p.id, unchoked, limit)
			}
			if p.optimistic >= 0 && s.unchoked[p.optimistic] {
				t.Fatalf("round %d: peer %d optimistic slot overlaps a TFT slot", round, p.id)
			}
		}
	}
}

func TestOptimisticRotates(t *testing.T) {
	// Over many optimistic intervals a leecher's optimistic pick must
	// change (content-unlimited keeps everyone interested forever).
	s, err := New(Options{
		Leechers: 30, Pieces: 1, ContentUnlimited: true,
		NeighborCount: 10, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &s.peers[0]
	seen := make(map[int32]bool)
	for round := 0; round < 600; round++ {
		s.Step()
		if p.optimistic >= 0 {
			seen[s.nbr[p.optimistic]] = true
		}
	}
	if len(seen) < 3 {
		t.Fatalf("optimistic unchoke visited only %d distinct neighbors", len(seen))
	}
}

func TestRarestFirstPicksRarest(t *testing.T) {
	// Construct a 3-peer scenario where the uploader has two pieces the
	// downloader lacks, with different neighborhood availability: the
	// rarer piece must be picked.
	s, err := New(Options{
		Leechers: 3, Pieces: 2, PieceKbit: 100,
		UploadKbps: []float64{100, 100, 100}, NeighborCount: 2, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Peer 0: empty. Peer 1: both pieces. Peer 2: piece 0 only.
	// Availability from 0's perspective: piece 0 → 2 holders, piece 1 → 1.
	give := func(p *peer, piece int) {
		p.have.set(piece)
		p.haveCount++
		base, end := s.edges(p.id)
		for e := base; e < end; e++ {
			q := &s.peers[s.nbr[e]]
			s.avail[int(q.slot)*s.opt.Pieces+piece]++
			if !q.have.has(piece) {
				s.want[s.rev[e]]++
			}
		}
	}
	give(&s.peers[1], 0)
	give(&s.peers[1], 1)
	give(&s.peers[2], 0)
	if got := s.pickPiece(&s.peers[0], &s.peers[1]); got != 1 {
		t.Fatalf("picked piece %d, want the rarer piece 1", got)
	}
	// From peer 2 (has only piece 0), peer 0 must accept piece 0.
	if got := s.pickPiece(&s.peers[0], &s.peers[2]); got != 0 {
		t.Fatalf("picked %d from a single-piece holder", got)
	}
}

func TestContentUnlimitedNeverDone(t *testing.T) {
	s, err := New(Options{
		Leechers: 15, Pieces: 1, ContentUnlimited: true,
		NeighborCount: 5, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(300)
	for i := range s.peers {
		p := &s.peers[i]
		if p.done {
			t.Fatalf("peer %d finished in content-unlimited mode", p.id)
		}
		if p.totalDown == 0 {
			t.Fatalf("peer %d received nothing in 300 rounds", p.id)
		}
	}
	if s.AllDone() {
		t.Fatal("AllDone in content-unlimited mode")
	}
}

func TestRecvRateMeasuresWindow(t *testing.T) {
	// Two peers, unlimited content: after the first full choke interval,
	// the measured rate from the partner equals its capacity (single
	// active recipient gets the whole share).
	s, err := New(Options{
		Leechers: 2, Pieces: 1, ContentUnlimited: true,
		UploadKbps: []float64{300, 500}, NeighborCount: 1,
		ChokeIntervalRounds: 10, Seed: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(25)
	// Each peer has exactly one edge: its block starts at its slot base.
	e0, _ := s.edges(0)
	if got := s.recvRate[e0]; got != 500 {
		t.Fatalf("peer 0 measures %v kbps from peer 1, want 500", got)
	}
	e1, _ := s.edges(1)
	if got := s.recvRate[e1]; got != 300 {
		t.Fatalf("peer 1 measures %v kbps from peer 0, want 300", got)
	}
}

func TestDepartedPeerNeverTransfers(t *testing.T) {
	s, err := New(Options{
		Leechers: 10, Pieces: 1, ContentUnlimited: true,
		NeighborCount: 4, Seed: 26,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(50)
	up, down := s.peers[3].totalUp, s.peers[3].totalDown
	s.Depart(3)
	s.Run(100)
	if s.peers[3].totalUp != up || s.peers[3].totalDown != down {
		t.Fatal("departed peer kept moving data")
	}
}

// TestIncrementalInterestMatchesBitfields cross-checks the incremental
// want[e] counters against a from-scratch bitfield recount after a run with
// completions and a departure — the invariant the O(1) interest test relies
// on.
func TestIncrementalInterestMatchesBitfields(t *testing.T) {
	s, err := New(Options{
		Leechers: 25, Seeds: 2, Pieces: 48, PieceKbit: 512,
		PostFlashCrowd: true, Seed: 27,
	})
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		for i := range s.peers {
			p := &s.peers[i]
			if p.departed {
				continue
			}
			abase := int(p.slot) * s.opt.Pieces
			recount := make([]int32, s.opt.Pieces)
			base, end := s.edges(i)
			for e := base; e < end; e++ {
				// Departure now unwires edges, so every remaining edge
				// points at a present neighbor.
				q := &s.peers[s.nbr[e]]
				if q.departed {
					t.Fatalf("%s: peer %d still wired to departed peer %d", stage, i, q.id)
				}
				if got, want := s.want[e], int32(p.have.countMissingIn(q.have)); got != want {
					t.Fatalf("%s: want[%d→%d] = %d, recount %d", stage, i, q.id, got, want)
				}
				for piece := 0; piece < s.opt.Pieces; piece++ {
					if q.have.has(piece) {
						recount[piece]++
					}
				}
			}
			for piece, want := range recount {
				if got := s.avail[abase+piece]; got != want {
					t.Fatalf("%s: avail[%d,%d] = %d, recount %d", stage, i, piece, got, want)
				}
			}
		}
	}
	s.Run(60)
	check("mid-run")
	s.Depart(4)
	s.Run(60)
	check("after departure")
}
