package btsim

// Durable checkpoint/restore for scenario runs. A checkpoint is the
// complete run state — the swarm's roster, CSR wiring, free lists,
// bitfields and counters; the tracker registry (in handout order); the
// fault controller's windows, backoff timers and crash queue; every RNG
// stream position; and the runner's own sampler bounds, round cursor and
// drained-edge flag — serialized with the internal/checkpoint codec. The
// bar is byte-identity: a run resumed from a checkpoint produces exactly
// the sample/event stream and final result the uninterrupted run would
// have produced from that round on.
//
// What is deliberately NOT saved is everything reconstructible without
// observable effect: scratch buffers (candidate/active lists, the
// pickPiece mark array — a fresh zero stamp is behaviorally identical),
// the recycled-bitset pool (bitsets are cleared on reuse), free slots'
// edge rows (rewritten before first read), the tracker's position index
// (rebuilt from the registry), and telemetry (runtime instrumentation,
// never simulation state).
//
// Loading trusts nothing: the codec layer rejects truncation, bit flips
// and version skew; the decoder bounds-checks every index and size before
// it allocates or writes; and the restored swarm must pass the full
// CheckInvariants audit before a single round runs. A corrupt file yields
// a descriptive error, never a panic and never silently-wrong state.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"stratmatch/internal/checkpoint"
	"stratmatch/internal/rng"
	"stratmatch/internal/telemetry"
)

// ErrInterrupted tags the error RunObserver returns when the scenario's
// Interrupt channel fires: the run is suspended (with a final checkpoint
// written when a checkpoint directory is configured), not failed.
var ErrInterrupted = errors.New("run interrupted")

// maxStateElems bounds the element count of any single decoded state
// array (edges: slotCap·edgeCap; piece grids: slotCap·pieces). Real
// workloads sit orders of magnitude below it — a million-peer swarm at
// the default degree cap is ~28M edge cells — while a hostile header
// claiming huge dimensions is rejected before the allocation it is
// angling for.
const maxStateElems = 1 << 26

// writeCheckpoint snapshots the run into CheckpointDir as the checkpoint
// that resumes from nextRound, atomically, then rotates old checkpoints
// away per CheckpointRetain.
func (run *scenarioRun) writeCheckpoint(nextRound int) error {
	sc := run.sc
	tel := sc.Telemetry
	span := tel.StartPhase(telemetry.PhaseCheckpointWrite)
	defer tel.EndPhase(telemetry.PhaseCheckpointWrite, span)
	payload, err := run.encode(nextRound)
	if err != nil {
		return fmt.Errorf("scenario %s: checkpoint: %w", sc.Name, err)
	}
	if err := os.MkdirAll(sc.CheckpointDir, 0o755); err != nil {
		return fmt.Errorf("scenario %s: checkpoint: %w", sc.Name, err)
	}
	path := filepath.Join(sc.CheckpointDir, checkpoint.FileName(nextRound))
	n, err := checkpoint.WriteFile(path, payload)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	tel.Inc(telemetry.CtrCheckpointsWritten)
	tel.Add(telemetry.CtrCheckpointBytes, n)
	retain := sc.CheckpointRetain
	if retain == 0 {
		retain = 3
	}
	if retain > 0 {
		if err := checkpoint.Rotate(sc.CheckpointDir, retain); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}
	return nil
}

// encode serializes the complete run state as a checkpoint payload whose
// resume point is nextRound.
func (run *scenarioRun) encode(nextRound int) ([]byte, error) {
	sc := run.sc
	s := run.s
	// Ranks are read (and saved) below; pending joins would otherwise leak
	// their −1 sentinel into the snapshot. Flushing here is where the next
	// rank reader would have flushed anyway, so it cannot perturb the
	// trajectory.
	s.flushJoinRanks()
	var w checkpoint.Writer

	// Binding: what workload this snapshot belongs to.
	w.String(sc.Name)
	w.U64(sc.Opt.Seed)
	w.Int(sc.Rounds)
	w.Blob(sc.specJSON)

	// Runner state.
	w.Int(nextRound)
	w.Bool(run.alive)
	w.F64(run.sampler.classes.lo)
	w.F64(run.sampler.classes.hi)
	writeRNG(&w, run.churnR)
	w.Bool(run.faultsOn)

	// Swarm options, resolved: defaults applied and (for capacity-sampled
	// scenarios) the initial UploadKbps vector materialized, so the resumed
	// swarm is rebuilt from values, not re-derived draws.
	optJSON, err := json.Marshal(s.opt)
	if err != nil {
		return nil, err
	}
	w.Blob(optJSON)
	w.Int(s.round)
	writeRNG(&w, s.r)
	w.Int(int(s.edgeCap))
	w.Int(s.slotCap)
	w.Int(s.present)
	w.Int(s.presentDone)
	w.Int(s.totalDeparted)
	w.Int(s.completedLeechers)
	w.I64(s.liveDegSum)
	w.F64(s.sumUp)
	w.F64(s.sumDown)

	// Roster.
	w.Int(len(s.peers))
	for i := range s.peers {
		p := &s.peers[i]
		w.Int(int(p.slot))
		w.F64(p.capacity)
		w.Bool(p.isSeed)
		w.Bool(p.departed)
		w.Int(p.joinRound)
		w.Int(p.departRound)
		w.Int(p.haveCount)
		w.Bool(p.done)
		w.Int(p.doneRound)
		w.Int(int(p.optimistic))
		w.F64(p.totalUp)
		w.F64(p.totalDown)
		w.F64(p.tftPartnerRankSum)
		w.Int(p.tftPartnerCount)
		// Departed-and-swept peers have released their bitfield; present and
		// crashed-pending peers still own one.
		w.Bool(p.have.words != nil)
		if p.have.words != nil {
			w.U64s(p.have.words)
		}
	}
	w.Ints(s.rank)

	// Slot occupancy and the free stack (order matters: it is a LIFO, and
	// allocation order shapes every later join).
	w.I32s(s.slotPeer)
	w.I32s(s.freeSlots)
	w.I32s(s.deg)

	// Per-occupied-slot CSR state: only the live edge prefix of each block
	// (the tail beyond deg is dead and rewritten before any read) plus the
	// slot's availability and piece-progress rows.
	for sl := 0; sl < s.slotCap; sl++ {
		if s.slotPeer[sl] < 0 {
			continue
		}
		base := int32(sl) * s.edgeCap
		for e := base; e < base+s.deg[sl]; e++ {
			w.Int(int(s.nbr[e]))
			w.Int(int(s.rev[e]))
			w.F64(s.recvWindow[e])
			w.F64(s.recvRate[e])
			w.Bool(s.unchoked[e])
			w.Int(int(s.inflight[e]))
			w.Int(int(s.want[e]))
		}
		pbase := sl * s.opt.Pieces
		w.I32s(s.avail[pbase : pbase+s.opt.Pieces])
		w.F64s(s.pieceProgress[pbase : pbase+s.opt.Pieces])
	}

	// Tracker registry, in order — handout sampling indexes into it, so the
	// order is part of the deterministic state.
	w.I32s(s.trk.present)

	if run.faultsOn {
		f := s.flt
		fspecJSON, err := json.Marshal(f.spec)
		if err != nil {
			return nil, err
		}
		w.Blob(fspecJSON)
		writeRNG(&w, f.r)
		w.Bool(f.trackerDown)
		w.F64(f.lossRate)
		w.Bool(f.partitionOn)
		w.Int(f.partIdx)
		w.F64(f.partFraction)
		sides := make([]byte, len(f.side))
		for i, v := range f.side {
			sides[i] = byte(v)
		}
		w.Blob(sides)
		w.I32s(f.retryAt)
		w.Blob(f.retryN)
		// Only the unswept crash-queue suffix matters; the restored queue
		// starts compacted.
		w.I32s(f.crashq[f.crashHead:])
		w.Int(f.staleEdges)
		w.Int(f.totalCrashed)
		w.Int(f.announceFailures)
		w.Int(f.announceRetries)
	}

	// Shard layer (format v2): the shard width (part of the trajectory —
	// shard streams are keyed by shard index), every per-shard RNG
	// sub-stream position, and the lazy-stepping dirty sets. xferDirty and
	// the active-list caches are deliberately absent: the decoder marks
	// every slot cache-stale, and a rebuild is a pure function of the saved
	// choke state, so the first resumed transfer recomputes exactly the
	// caches the original run held. The step worker count is a runtime
	// knob, not state — a run may checkpoint under one count and resume
	// under another.
	w.Int(s.sh.slotsPerShard)
	w.Int(len(s.sh.streams))
	for _, sr := range s.sh.streams {
		writeRNG(&w, sr)
	}
	w.U64s(s.sh.chokeDirty)
	w.U64s(s.sh.windowNZ)
	w.U64s(s.sh.ratesNZ)
	w.U64s(s.sh.statDirty)

	// Incremental series-sampler state, verbatim. Float accumulation is
	// path-dependent (a − c + c need not equal a), so re-deriving the sums
	// from the roster would break sample-stream byte-identity; the
	// accumulators resume mid-trajectory instead.
	w.Bool(s.stats != nil)
	if st := s.stats; st != nil {
		w.F64(st.lo)
		w.F64(st.hi)
		w.Int(st.n)
		w.F64(st.sx)
		w.F64(st.sy)
		w.F64(st.sxx)
		w.F64(st.syy)
		w.F64(st.sxy)
		for cl := 0; cl < 3; cl++ {
			w.F64(st.rsum[cl])
			w.Int(st.rn[cl])
		}
		for sl := 0; sl < s.slotCap; sl++ {
			if s.slotPeer[sl] < 0 {
				continue
			}
			w.F64(st.x[sl])
			w.F64(st.y[sl])
			w.F64(st.ratio[sl])
			w.Int(int(st.cls[sl]))
			w.Bool(st.inCorr[sl])
			w.Bool(st.inRatio[sl])
		}
	}
	return w.Bytes(), nil
}

func writeRNG(w *checkpoint.Writer, r *rng.RNG) {
	st := r.Save()
	for _, word := range st {
		w.U64(word)
	}
}

// readRNG decodes a generator state; the all-zero state (xoshiro's invalid
// fixed point) reads as nil, which callers reject.
func readRNG(r *checkpoint.Reader) *rng.RNG {
	var st rng.State
	for i := range st {
		st[i] = r.U64()
	}
	return rng.FromState(st)
}

// resolveCheckpointPath accepts a checkpoint file or a directory of
// checkpoints (resolved to its newest).
func resolveCheckpointPath(path string) (string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if info.IsDir() {
		return checkpoint.Latest(path)
	}
	return path, nil
}

// resumeRun rebuilds the run state from the checkpoint named by
// sc.ResumeFrom.
func (sc Scenario) resumeRun() (*scenarioRun, error) {
	tel := sc.Telemetry
	span := tel.StartPhase(telemetry.PhaseCheckpointLoad)
	defer tel.EndPhase(telemetry.PhaseCheckpointLoad, span)
	path, err := resolveCheckpointPath(sc.ResumeFrom)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: resume: %w", sc.Name, err)
	}
	payload, err := checkpoint.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: resume: %w", sc.Name, err)
	}
	run, err := sc.loadCheckpoint(payload)
	if err != nil {
		return nil, fmt.Errorf("%w (checkpoint %s)", err, path)
	}
	return run, nil
}

// loadCheckpoint decodes a verified checkpoint payload into a runnable
// state, enforcing the scenario binding and the full invariant audit. It
// never panics on corrupt input — every failure is a descriptive error
// (FuzzLoadCheckpoint hammers this contract).
func (sc Scenario) loadCheckpoint(payload []byte) (*scenarioRun, error) {
	fail := func(format string, args ...any) (*scenarioRun, error) {
		return nil, fmt.Errorf("scenario %s: resume: %s", sc.Name, fmt.Sprintf(format, args...))
	}
	r := checkpoint.NewReader(payload)
	name := r.String()
	seed := r.U64()
	rounds := r.Int()
	specJSON := r.Blob()
	nextRound := r.Int()
	alive := r.Bool()
	classes := classBounds{lo: r.F64(), hi: r.F64()}
	churnR := readRNG(r)
	faultsOn := r.Bool()
	if err := r.Err(); err != nil {
		return fail("%v", err)
	}

	// Binding: the checkpoint must belong to this exact workload.
	if name != sc.Name {
		return fail("checkpoint is for scenario %q", name)
	}
	if seed != sc.Opt.Seed {
		return fail("checkpoint seed %d, scenario seed %d", seed, sc.Opt.Seed)
	}
	if rounds != sc.Rounds {
		return fail("checkpoint horizon %d rounds, scenario %d", rounds, sc.Rounds)
	}
	if len(specJSON) > 0 && len(sc.specJSON) > 0 && !bytes.Equal(specJSON, sc.specJSON) {
		return fail("checkpoint was taken from a different spec for %q", name)
	}
	if faultsOn != !sc.Faults.IsZero() {
		return fail("checkpoint and scenario disagree about fault injection")
	}
	if nextRound < 0 || nextRound > sc.Rounds {
		return fail("resume round %d outside [0, %d]", nextRound, sc.Rounds)
	}
	if churnR == nil {
		return fail("invalid churn RNG state")
	}

	s, err := decodeSwarm(r, faultsOn)
	if err != nil {
		return fail("%v", err)
	}
	if r.Remaining() != 0 {
		return fail("%d trailing bytes after the state", r.Remaining())
	}
	if s.round != nextRound {
		return fail("swarm is at round %d, resume point is %d", s.round, nextRound)
	}
	// The deep audit: structural invariants, counter recounts, edge
	// symmetry. A payload that decodes cleanly but describes an
	// inconsistent swarm dies here instead of corrupting a run.
	if err := s.CheckInvariants(); err != nil {
		return fail("restored state failed the invariant audit: %v", err)
	}
	run := &scenarioRun{
		sc:       &sc,
		s:        s,
		churnR:   churnR,
		sampler:  seriesSampler{classes: classes},
		alive:    alive,
		start:    nextRound,
		faultsOn: faultsOn,
	}
	run.resolveIntervals()
	return run, nil
}

// decodeSwarm rebuilds a Swarm from the checkpoint stream. Every count,
// index and dimension is validated against the already-read state before
// it is used, so hostile payloads cannot trigger panics or outsized
// allocations.
func decodeSwarm(r *checkpoint.Reader, faultsOn bool) (*Swarm, error) {
	optJSON := r.Blob()
	if err := r.Err(); err != nil {
		return nil, err
	}
	var opt Options
	if err := json.Unmarshal(optJSON, &opt); err != nil {
		return nil, fmt.Errorf("swarm options: %v", err)
	}
	round := r.Int()
	swarmR := readRNG(r)
	edgeCapIn := r.Int()
	slotCap := r.Int()
	present := r.Int()
	presentDone := r.Int()
	totalDeparted := r.Int()
	completedLeechers := r.Int()
	liveDegSum := r.I64()
	sumUp := r.F64()
	sumDown := r.F64()
	npeers := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// The options drive modulo arithmetic and array geometry; a saved swarm
	// always carries the defaulted values, so zeros or inversions here mean
	// corruption.
	if opt.Leechers < 1 || opt.Pieces < 1 || opt.PieceKbit <= 0 ||
		opt.NeighborCount < 1 || opt.MaxNeighbors < opt.NeighborCount ||
		opt.TFTSlots < 1 || opt.OptimisticSlots < 0 ||
		opt.ChokeIntervalRounds < 1 || opt.OptimisticIntervalRounds < 1 {
		return nil, errors.New("implausible swarm options")
	}
	if swarmR == nil {
		return nil, errors.New("invalid swarm RNG state")
	}
	if edgeCapIn != opt.MaxNeighbors {
		return nil, fmt.Errorf("edge capacity %d does not match max neighbors %d", edgeCapIn, opt.MaxNeighbors)
	}
	edgeCap := int32(opt.MaxNeighbors)
	if slotCap < 1 ||
		int64(slotCap)*int64(edgeCap) > maxStateElems ||
		int64(slotCap)*int64(opt.Pieces) > maxStateElems {
		return nil, fmt.Errorf("implausible slot capacity %d", slotCap)
	}
	total := slotCap * int(edgeCap)
	// A peer costs at least ~92 payload bytes, so the roster length is
	// bounded by the bytes actually present.
	if npeers < 0 || npeers > r.Remaining()/64 {
		return nil, fmt.Errorf("implausible roster size %d", npeers)
	}
	haveWords := (opt.Pieces + 63) / 64

	peers := make([]peer, npeers)
	for i := range peers {
		p := &peers[i]
		p.id = i
		p.slot = int32(r.Int())
		p.capacity = r.F64()
		p.isSeed = r.Bool()
		p.departed = r.Bool()
		p.joinRound = r.Int()
		p.departRound = r.Int()
		p.haveCount = r.Int()
		p.done = r.Bool()
		p.doneRound = r.Int()
		p.optimistic = int32(r.Int())
		p.totalUp = r.F64()
		p.totalDown = r.F64()
		p.tftPartnerRankSum = r.F64()
		p.tftPartnerCount = r.Int()
		hasHave := r.Bool()
		if hasHave {
			words := r.U64s()
			if len(words) != haveWords {
				return nil, fmt.Errorf("peer %d: bitfield has %d words, want %d", i, len(words), haveWords)
			}
			p.have = bitset{words: words, n: opt.Pieces}
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		switch {
		case p.slot < -1 || p.slot >= int32(slotCap):
			return nil, fmt.Errorf("peer %d: slot %d out of range", i, p.slot)
		case p.slot >= 0 && !hasHave:
			return nil, fmt.Errorf("peer %d: slotted but has no bitfield", i)
		case p.optimistic < -1 || p.optimistic >= int32(total):
			return nil, fmt.Errorf("peer %d: optimistic edge %d out of range", i, p.optimistic)
		case p.haveCount < 0 || p.haveCount > opt.Pieces:
			return nil, fmt.Errorf("peer %d: piece count %d out of range", i, p.haveCount)
		}
	}
	rank := r.Ints()
	slotPeer := r.I32s()
	freeSlots := r.I32s()
	deg := r.I32s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(rank) != npeers {
		return nil, fmt.Errorf("rank vector has %d entries for %d peers", len(rank), npeers)
	}
	if len(slotPeer) != slotCap || len(deg) != slotCap {
		return nil, fmt.Errorf("slot arrays sized %d/%d for capacity %d", len(slotPeer), len(deg), slotCap)
	}
	for sl, id := range slotPeer {
		if id < -1 || int(id) >= npeers {
			return nil, fmt.Errorf("slot %d: occupant %d out of range", sl, id)
		}
		if deg[sl] < 0 || deg[sl] > edgeCap {
			return nil, fmt.Errorf("slot %d: degree %d out of range", sl, deg[sl])
		}
	}
	if len(freeSlots) > slotCap {
		return nil, fmt.Errorf("free list has %d entries for capacity %d", len(freeSlots), slotCap)
	}
	for _, sl := range freeSlots {
		if sl < 0 || int(sl) >= slotCap {
			return nil, fmt.Errorf("free slot %d out of range", sl)
		}
	}

	s := &Swarm{
		opt:               opt,
		peers:             peers,
		r:                 swarmR,
		round:             round,
		rank:              rank,
		edgeCap:           edgeCap,
		slotCap:           slotCap,
		slotPeer:          slotPeer,
		freeSlots:         freeSlots,
		deg:               deg,
		nbr:               make([]int32, total),
		rev:               make([]int32, total),
		recvWindow:        make([]float64, total),
		recvRate:          make([]float64, total),
		unchoked:          make([]bool, total),
		inflight:          make([]int32, total),
		want:              make([]int32, total),
		avail:             make([]int32, slotCap*opt.Pieces),
		pieceProgress:     make([]float64, slotCap*opt.Pieces),
		present:           present,
		presentDone:       presentDone,
		totalDeparted:     totalDeparted,
		completedLeechers: completedLeechers,
		liveDegSum:        liveDegSum,
		sumUp:             sumUp,
		sumDown:           sumDown,
		active:            make([]int32, edgeCap),
		mark:              make([]uint64, opt.Pieces),
		rankOrder:         make([]int32, slotCap),
	}
	s.joinSort.s = s
	s.initShards()
	for sl := 0; sl < slotCap; sl++ {
		if slotPeer[sl] < 0 {
			continue
		}
		base := int32(sl) * edgeCap
		for e := base; e < base+deg[sl]; e++ {
			s.nbr[e] = int32(r.Int())
			s.rev[e] = int32(r.Int())
			s.recvWindow[e] = r.F64()
			s.recvRate[e] = r.F64()
			s.unchoked[e] = r.Bool()
			s.inflight[e] = int32(r.Int())
			s.want[e] = int32(r.Int())
			if err := r.Err(); err != nil {
				return nil, err
			}
			switch {
			case s.nbr[e] < 0 || int(s.nbr[e]) >= npeers:
				return nil, fmt.Errorf("edge %d: target %d out of range", e, s.nbr[e])
			case s.rev[e] < 0 || int(s.rev[e]) >= total:
				return nil, fmt.Errorf("edge %d: reverse index %d out of range", e, s.rev[e])
			case s.inflight[e] < -1 || int(s.inflight[e]) >= opt.Pieces:
				return nil, fmt.Errorf("edge %d: in-flight piece %d out of range", e, s.inflight[e])
			}
		}
		availRow := r.I32s()
		progRow := r.F64s()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if len(availRow) != opt.Pieces || len(progRow) != opt.Pieces {
			return nil, fmt.Errorf("slot %d: piece rows sized %d/%d for %d pieces",
				sl, len(availRow), len(progRow), opt.Pieces)
		}
		copy(s.avail[sl*opt.Pieces:], availRow)
		copy(s.pieceProgress[sl*opt.Pieces:], progRow)
	}

	trkPresent := r.I32s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.trk.present = trkPresent
	s.trk.pos = make([]int32, npeers)
	for i := range s.trk.pos {
		s.trk.pos[i] = -1
	}
	for i, id := range trkPresent {
		if id < 0 || int(id) >= npeers {
			return nil, fmt.Errorf("tracker entry %d out of range", id)
		}
		s.trk.pos[id] = int32(i)
	}

	if faultsOn {
		if err := decodeFaults(r, s, npeers); err != nil {
			return nil, err
		}
	}

	if err := decodeShards(r, s); err != nil {
		return nil, err
	}
	return s, r.Err()
}

// decodeShards restores the shard layer and the incremental sampler from
// the v2 tail of the payload: shard width, per-shard RNG sub-stream
// positions, dirty bitmaps, and (when armed) the sampler accumulators.
// xferDirty is set everywhere instead of restored — rebuilding an
// active-list cache is a pure function of the already-decoded choke state,
// so the first transfer after resume reconstructs the exact caches the
// original run held.
func decodeShards(r *checkpoint.Reader, s *Swarm) error {
	sps := r.Int()
	nstreams := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if sps < 64 || sps%64 != 0 || sps > maxStateElems {
		return fmt.Errorf("implausible shard width %d", sps)
	}
	s.setShardSlots(sps)
	if nstreams != s.numShards() {
		return fmt.Errorf("checkpoint carries %d shard streams, geometry needs %d", nstreams, s.numShards())
	}
	for k := 0; k < nstreams; k++ {
		sr := readRNG(r)
		if sr == nil {
			return fmt.Errorf("invalid shard %d RNG state", k)
		}
		s.sh.streams[k] = sr
	}
	chokeDirty := r.U64s()
	windowNZ := r.U64s()
	ratesNZ := r.U64s()
	statDirty := r.U64s()
	if err := r.Err(); err != nil {
		return err
	}
	nw := bmWords(s.slotCap)
	if len(chokeDirty) != nw || len(windowNZ) != nw || len(ratesNZ) != nw || len(statDirty) != nw {
		return fmt.Errorf("dirty bitmaps sized %d/%d/%d/%d words for capacity %d",
			len(chokeDirty), len(windowNZ), len(ratesNZ), len(statDirty), s.slotCap)
	}
	copy(s.sh.chokeDirty, chokeDirty)
	copy(s.sh.windowNZ, windowNZ)
	copy(s.sh.ratesNZ, ratesNZ)
	copy(s.sh.statDirty, statDirty)
	for i := range s.sh.xferDirty {
		s.sh.xferDirty[i] = ^uint64(0)
	}

	hasStats := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if !hasStats {
		return nil
	}
	st := &stratStats{lo: r.F64(), hi: r.F64()}
	st.grow(s.slotCap)
	st.n = r.Int()
	st.sx = r.F64()
	st.sy = r.F64()
	st.sxx = r.F64()
	st.syy = r.F64()
	st.sxy = r.F64()
	for cl := 0; cl < 3; cl++ {
		st.rsum[cl] = r.F64()
		st.rn[cl] = r.Int()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if st.n < 0 || st.rn[0] < 0 || st.rn[1] < 0 || st.rn[2] < 0 {
		return errors.New("implausible sampler counts")
	}
	for sl := 0; sl < s.slotCap; sl++ {
		if s.slotPeer[sl] < 0 {
			continue
		}
		st.x[sl] = r.F64()
		st.y[sl] = r.F64()
		st.ratio[sl] = r.F64()
		cls := r.Int()
		st.inCorr[sl] = r.Bool()
		st.inRatio[sl] = r.Bool()
		if err := r.Err(); err != nil {
			return err
		}
		if cls < 0 || cls > 2 {
			return fmt.Errorf("slot %d: capacity class %d out of range", sl, cls)
		}
		st.cls[sl] = uint8(cls)
	}
	s.stats = st
	return nil
}

// decodeFaults rebuilds the fault controller: the spec re-arms the layer
// (re-deriving the knobs exactly as the original run did), then the live
// window flags, per-slot retry/partition state, crash queue and counters
// overwrite the fresh state.
func decodeFaults(r *checkpoint.Reader, s *Swarm, npeers int) error {
	fspecJSON := r.Blob()
	if err := r.Err(); err != nil {
		return err
	}
	var fspec FaultsSpec
	if err := json.Unmarshal(fspecJSON, &fspec); err != nil {
		return fmt.Errorf("faults spec: %v", err)
	}
	if fspec.RetryBaseRounds < 0 || fspec.RetryCapRounds < 0 || fspec.NeighborTimeoutRounds < 0 {
		return errors.New("implausible fault knobs")
	}
	faultR := readRNG(r)
	if faultR == nil {
		return errors.New("invalid fault RNG state")
	}
	s.EnableFaults(fspec, faultR)
	f := s.flt
	f.trackerDown = r.Bool()
	f.lossRate = r.F64()
	f.partitionOn = r.Bool()
	f.partIdx = r.Int()
	f.partFraction = r.F64()
	sides := r.Blob()
	retryAt := r.I32s()
	retryN := r.Blob()
	crashq := r.I32s()
	f.staleEdges = r.Int()
	f.totalCrashed = r.Int()
	f.announceFailures = r.Int()
	f.announceRetries = r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if f.partIdx < -1 || f.partIdx >= len(fspec.Injections) {
		return fmt.Errorf("partition index %d out of range", f.partIdx)
	}
	if len(sides) != s.slotCap || len(retryAt) != s.slotCap || len(retryN) != s.slotCap {
		return fmt.Errorf("fault arrays sized %d/%d/%d for capacity %d",
			len(sides), len(retryAt), len(retryN), s.slotCap)
	}
	for i, v := range sides {
		f.side[i] = int8(v)
	}
	f.retryAt = retryAt
	f.retryN = retryN
	for _, id := range crashq {
		if id < 0 || int(id) >= npeers {
			return fmt.Errorf("crash-queue entry %d out of range", id)
		}
	}
	f.crashq = crashq
	f.crashHead = 0
	return nil
}

// ResumeSpec reads the scenario spec embedded in a checkpoint (a file, or
// a directory whose newest checkpoint is used), so a resume can recompile
// the exact workload from the snapshot alone. Checkpoints of hand-built
// (non-spec) scenarios carry no spec and are rejected with a descriptive
// error.
func ResumeSpec(path string) (ScenarioSpec, error) {
	resolved, err := resolveCheckpointPath(path)
	if err != nil {
		return ScenarioSpec{}, err
	}
	payload, err := checkpoint.ReadFile(resolved)
	if err != nil {
		return ScenarioSpec{}, err
	}
	r := checkpoint.NewReader(payload)
	_ = r.String() // name
	_ = r.U64()    // seed
	_ = r.Int()    // rounds
	specJSON := r.Blob()
	if err := r.Err(); err != nil {
		return ScenarioSpec{}, fmt.Errorf("checkpoint: read %s: %v", resolved, err)
	}
	if len(specJSON) == 0 {
		return ScenarioSpec{}, fmt.Errorf("checkpoint %s embeds no scenario spec (hand-built scenario); rebuild the scenario and set ResumeFrom", resolved)
	}
	sp, err := ParseSpec(specJSON)
	if err != nil {
		return ScenarioSpec{}, fmt.Errorf("checkpoint %s: embedded spec: %w", resolved, err)
	}
	return sp, nil
}
