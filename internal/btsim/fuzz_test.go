package btsim

import (
	"encoding/json"
	"testing"
)

// FuzzParseSpec hammers the spec decoder with arbitrary JSON. The corpus is
// the whole scenario catalog (fault specs included) plus a hand-rolled
// faults block. Properties:
//
//   - ParseSpec never panics, whatever the bytes;
//   - a spec that parses and validates must marshal, reparse and remarshal
//     byte-stably (the serialization round-trip contract);
//   - Compile on a valid spec never panics.
//
// CI runs this as a short -fuzztime smoke; longer local runs explore deeper.
func FuzzParseSpec(f *testing.F) {
	for _, name := range ScenarioNames() {
		sp, err := NamedSpec(name, 3, 0.5)
		if err != nil {
			f.Fatal(err)
		}
		blob, err := json.Marshal(sp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte(`{"name":"x","rounds":50,"swarm":{"leechers":4,"pieces":8},
		"faults":{"injections":[{"kind":"crash","rate":0.01},
		{"kind":"partition","start":5,"rounds":10,"fraction":0.5}],
		"retry_base_rounds":3,"watchdog":true}}`))
	f.Add([]byte(`{"faults":{}}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data)
		if err != nil {
			return // rejected input: the only requirement is not panicking
		}
		if err := sp.Validate(); err != nil {
			return
		}
		if _, err := sp.Compile(); err != nil {
			t.Fatalf("spec validated but did not compile: %v", err)
		}
		blob, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("valid spec did not marshal: %v", err)
		}
		back, err := ParseSpec(blob)
		if err != nil {
			t.Fatalf("marshaled valid spec did not reparse: %v\n%s", err, blob)
		}
		blob2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("reparsed spec did not remarshal: %v", err)
		}
		if string(blob) != string(blob2) {
			t.Fatalf("marshal not byte-stable:\n%s\n%s", blob, blob2)
		}
	})
}
