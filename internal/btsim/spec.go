package btsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"stratmatch/internal/bandwidth"
	"stratmatch/internal/rng"
)

// ScenarioSpec is a declarative, plain-data description of a churn
// scenario: everything a Scenario expresses — swarm options, arrival
// processes, capacity distribution, lifecycle departures, scheduled
// shocks, sampling — as serializable values with no Go interfaces. A spec
// round-trips through JSON byte-identically (see ParseSpec) and compiles
// into a runnable Scenario with Compile, so workloads can live in files,
// flow through CLIs and network APIs, and be diffed and versioned like
// configuration instead of being hardcoded in Go.
type ScenarioSpec struct {
	// Name identifies the scenario in reports and the CLI catalog.
	Name string `json:"name"`
	// Swarm configures the initial swarm. Leave Swarm.MaxPeers 0 to let
	// Compile estimate the concurrent peak from the arrival processes.
	Swarm Options `json:"swarm"`
	// Rounds is the scenario length.
	Rounds int `json:"rounds"`
	// Arrivals lists the arrival processes; they run simultaneously and
	// their per-round counts sum (one entry compiles to that process
	// alone). Empty means nobody joins.
	Arrivals []ArrivalSpec `json:"arrivals,omitempty"`
	// Capacity draws upload capacities for arriving peers and (when
	// Swarm.UploadKbps is nil) the initial leechers. Nil: every arrival
	// gets 400 kbps.
	Capacity *CapacitySpec `json:"capacity,omitempty"`
	// ArrivalSeedFraction is the probability that an arrival is a seed
	// rather than a leecher (usually 0; small values model replica
	// injection).
	ArrivalSeedFraction float64 `json:"arrival_seed_fraction,omitempty"`
	// Departures are the per-round lifecycle rules (abandonment — uniform
	// or capacity-correlated — and seed linger).
	Departures Departures `json:"departures"`
	// Events are scheduled one-shot membership shocks.
	Events []Event `json:"events,omitempty"`
	// Faults is the deterministic fault-injection plan: tracker outages,
	// crash-stop peer failures, announce loss and partitions, plus the
	// retry/backoff and failure-detection knobs (see FaultsSpec). Nil or
	// zero-valued, it injects nothing and the run stays byte-identical to
	// a fault-free scenario.
	Faults *FaultsSpec `json:"faults,omitempty"`
	// ReannounceInterval staggers under-connected peers' tracker
	// re-announces (0: every 10 rounds, matching the choke interval).
	ReannounceInterval int `json:"reannounce_interval,omitempty"`
	// SampleEvery is the time-series sampling period (0: every 10 rounds;
	// 1 samples every round, which the streaming Observer path sustains
	// allocation-free).
	SampleEvery int `json:"sample_every,omitempty"`
}

// ArrivalSpec is the tagged union over arrival processes. Kind selects the
// variant; only that variant's fields may be set:
//
//   - "poisson":  Rate (expected arrivals per round)
//   - "burst":    Total peers spread evenly over Rounds rounds from Start
//   - "trace":    Counts[i] peers join at round i (a replayed schedule)
//   - "combined": Parts, summed per round (rarely needed at the top level,
//     where the Arrivals list already sums; useful for nesting)
type ArrivalSpec struct {
	Kind string `json:"kind"`
	// Rate is the Poisson arrival rate λ per round ("poisson").
	Rate float64 `json:"rate,omitempty"`
	// Start, Rounds and Total describe a flash-crowd window ("burst").
	Start  int `json:"start,omitempty"`
	Rounds int `json:"rounds,omitempty"`
	Total  int `json:"total,omitempty"`
	// Counts is the per-round arrival schedule ("trace").
	Counts []int `json:"counts,omitempty"`
	// Parts are the summed sub-processes ("combined").
	Parts []ArrivalSpec `json:"parts,omitempty"`
}

// CapacitySpec is the tagged union over capacity distributions:
//
//   - "saroiu":  the paper's reconstructed Gnutella upstream CDF
//   - "uniform": every peer gets Kbps
//   - "anchors": a custom piecewise log-linear CDF through Anchors
type CapacitySpec struct {
	Kind string `json:"kind"`
	// Kbps is the single capacity ("uniform").
	Kbps float64 `json:"kbps,omitempty"`
	// Anchors are the CDF anchor points ("anchors"); see bandwidth.New
	// for the validity rules.
	Anchors []bandwidth.Anchor `json:"anchors,omitempty"`
}

// CapacitySampler draws upload capacities for arriving peers.
// *bandwidth.Distribution implements it; UniformCapacity is the degenerate
// single-value sampler.
type CapacitySampler interface {
	Sample(r *rng.RNG) float64
}

// UniformCapacity is a CapacitySampler giving every peer the same upload
// capacity in kbps. It consumes no randomness.
type UniformCapacity float64

// Sample returns the fixed capacity.
func (u UniformCapacity) Sample(*rng.RNG) float64 { return float64(u) }

// ParseSpec decodes a JSON scenario spec. Unknown fields are rejected —
// a misspelled field name silently changing a workload is exactly the
// failure mode specs exist to prevent — as is trailing garbage. The spec
// is returned unvalidated; Compile performs validation.
func ParseSpec(data []byte) (ScenarioSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp ScenarioSpec
	if err := dec.Decode(&sp); err != nil {
		return ScenarioSpec{}, fmt.Errorf("btsim: parse spec: %w", err)
	}
	if dec.More() {
		return ScenarioSpec{}, fmt.Errorf("btsim: parse spec: trailing data after the spec object")
	}
	return sp, nil
}

// specErr builds a validation error carrying the precise field path, e.g.
// `spec "poisson": arrivals[1].rate: must be >= 0`.
func (sp *ScenarioSpec) specErr(path, format string, args ...any) error {
	return fmt.Errorf("btsim: spec %q: %s: %s", sp.Name, path, fmt.Sprintf(format, args...))
}

// Validate checks every field the spec layer is responsible for and
// reports the first violation with its exact field path. Swarm options are
// checked lightly here (counts and vector lengths); the remaining swarm
// rules are enforced by New when the compiled scenario runs.
func (sp ScenarioSpec) Validate() error {
	if sp.Name == "" {
		return sp.specErr("name", "required")
	}
	if sp.Rounds < 1 {
		return sp.specErr("rounds", "must be >= 1, got %d", sp.Rounds)
	}
	if sp.Swarm.Leechers < 1 {
		return sp.specErr("swarm.leechers", "must be >= 1, got %d", sp.Swarm.Leechers)
	}
	if sp.Swarm.Seeds < 0 {
		return sp.specErr("swarm.seeds", "must be >= 0, got %d", sp.Swarm.Seeds)
	}
	if sp.Swarm.Pieces < 1 {
		return sp.specErr("swarm.pieces", "must be >= 1, got %d", sp.Swarm.Pieces)
	}
	if sp.Swarm.MaxPeers < 0 {
		return sp.specErr("swarm.max_peers", "must be >= 0, got %d", sp.Swarm.MaxPeers)
	}
	if n := sp.Swarm.Leechers + sp.Swarm.Seeds; sp.Swarm.UploadKbps != nil && len(sp.Swarm.UploadKbps) != n {
		return sp.specErr("swarm.upload_kbps", "%d capacities for %d peers", len(sp.Swarm.UploadKbps), n)
	}
	for i, a := range sp.Arrivals {
		if err := a.validate(&sp, fmt.Sprintf("arrivals[%d]", i)); err != nil {
			return err
		}
	}
	if sp.Capacity != nil {
		if err := sp.Capacity.validate(&sp); err != nil {
			return err
		}
	}
	if f := sp.ArrivalSeedFraction; f < 0 || f > 1 {
		return sp.specErr("arrival_seed_fraction", "must be in [0, 1], got %v", f)
	}
	if p := sp.Departures.AbandonPerRound; p < 0 || p > 1 {
		return sp.specErr("departures.abandon_per_round", "must be in [0, 1], got %v", p)
	}
	if b := sp.Departures.AbandonRankBias; b < -1 {
		return sp.specErr("departures.abandon_rank_bias", "must be >= -1, got %v", b)
	}
	if sp.Departures.AbandonRankBias != 0 && sp.Departures.AbandonPerRound == 0 {
		// The bias multiplies the base rate; without one it is a silent
		// no-op — the exact failure mode specs exist to prevent.
		return sp.specErr("departures.abandon_rank_bias", "requires departures.abandon_per_round > 0")
	}
	if sp.Departures.SeedLingerRounds < 0 {
		return sp.specErr("departures.seed_linger_rounds", "must be >= 0, got %d", sp.Departures.SeedLingerRounds)
	}
	for i, ev := range sp.Events {
		path := fmt.Sprintf("events[%d]", i)
		if ev.Round < 0 || ev.Round >= sp.Rounds {
			return sp.specErr(path+".round", "must be in [0, rounds), got %d of %d", ev.Round, sp.Rounds)
		}
		if ev.DepartFraction < 0 || ev.DepartFraction > 1 {
			return sp.specErr(path+".depart_fraction", "must be in [0, 1], got %v", ev.DepartFraction)
		}
	}
	if sp.Faults != nil {
		if err := sp.Faults.validate(&sp); err != nil {
			return err
		}
	}
	if sp.ReannounceInterval < 0 {
		return sp.specErr("reannounce_interval", "must be >= 0, got %d", sp.ReannounceInterval)
	}
	if sp.SampleEvery < 0 {
		return sp.specErr("sample_every", "must be >= 0, got %d", sp.SampleEvery)
	}
	return nil
}

// validate checks one arrival variant: its own fields, and that no foreign
// variant's fields leak in (a set foreign field is always a spec mistake).
func (a ArrivalSpec) validate(sp *ScenarioSpec, path string) error {
	foreign := func(field, set string) error {
		return sp.specErr(path+"."+field, "only valid for kind %q, not %q", set, a.Kind)
	}
	switch a.Kind {
	case "poisson":
		if a.Rate < 0 {
			return sp.specErr(path+".rate", "must be >= 0, got %v", a.Rate)
		}
		if a.Start != 0 || a.Rounds != 0 || a.Total != 0 {
			return foreign("start/rounds/total", "burst")
		}
		if a.Counts != nil {
			return foreign("counts", "trace")
		}
		if a.Parts != nil {
			return foreign("parts", "combined")
		}
	case "burst":
		if a.Start < 0 {
			return sp.specErr(path+".start", "must be >= 0, got %d", a.Start)
		}
		if a.Rounds < 0 {
			return sp.specErr(path+".rounds", "must be >= 0, got %d", a.Rounds)
		}
		if a.Total < 0 {
			return sp.specErr(path+".total", "must be >= 0, got %d", a.Total)
		}
		if a.Rate != 0 {
			return foreign("rate", "poisson")
		}
		if a.Counts != nil {
			return foreign("counts", "trace")
		}
		if a.Parts != nil {
			return foreign("parts", "combined")
		}
	case "trace":
		for i, c := range a.Counts {
			if c < 0 {
				return sp.specErr(fmt.Sprintf("%s.counts[%d]", path, i), "must be >= 0, got %d", c)
			}
		}
		if a.Rate != 0 {
			return foreign("rate", "poisson")
		}
		if a.Start != 0 || a.Rounds != 0 || a.Total != 0 {
			return foreign("start/rounds/total", "burst")
		}
		if a.Parts != nil {
			return foreign("parts", "combined")
		}
	case "combined":
		if len(a.Parts) == 0 {
			return sp.specErr(path+".parts", "must list at least one sub-process")
		}
		if a.Rate != 0 {
			return foreign("rate", "poisson")
		}
		if a.Start != 0 || a.Rounds != 0 || a.Total != 0 {
			return foreign("start/rounds/total", "burst")
		}
		if a.Counts != nil {
			return foreign("counts", "trace")
		}
		for i, part := range a.Parts {
			if err := part.validate(sp, fmt.Sprintf("%s.parts[%d]", path, i)); err != nil {
				return err
			}
		}
	case "":
		return sp.specErr(path+".kind", "required (one of poisson, burst, trace, combined)")
	default:
		return sp.specErr(path+".kind", "unknown kind %q (one of poisson, burst, trace, combined)", a.Kind)
	}
	return nil
}

func (c *CapacitySpec) validate(sp *ScenarioSpec) error {
	switch c.Kind {
	case "saroiu":
		if c.Kbps != 0 {
			return sp.specErr("capacity.kbps", "only valid for kind %q", "uniform")
		}
		if c.Anchors != nil {
			return sp.specErr("capacity.anchors", "only valid for kind %q", "anchors")
		}
	case "uniform":
		if c.Kbps <= 0 {
			return sp.specErr("capacity.kbps", "must be > 0, got %v", c.Kbps)
		}
		if c.Anchors != nil {
			return sp.specErr("capacity.anchors", "only valid for kind %q", "anchors")
		}
	case "anchors":
		if c.Kbps != 0 {
			return sp.specErr("capacity.kbps", "only valid for kind %q", "uniform")
		}
		if _, err := bandwidth.New(c.Anchors); err != nil {
			return sp.specErr("capacity.anchors", "%v", err)
		}
	case "":
		return sp.specErr("capacity.kind", "required (one of saroiu, uniform, anchors)")
	default:
		return sp.specErr("capacity.kind", "unknown kind %q (one of saroiu, uniform, anchors)", c.Kind)
	}
	return nil
}

// Compile validates the spec and builds the runnable Scenario. When
// Swarm.MaxPeers is 0 it is auto-sized to MaxPeersEstimate, so spec
// authors never need to know the CSR growth internals.
func (sp ScenarioSpec) Compile() (Scenario, error) {
	if err := sp.Validate(); err != nil {
		return Scenario{}, err
	}
	sc := Scenario{
		Name:                sp.Name,
		Opt:                 sp.Swarm,
		Rounds:              sp.Rounds,
		ArrivalSeedFraction: sp.ArrivalSeedFraction,
		Departures:          sp.Departures,
		Events:              append([]Event(nil), sp.Events...),
		ReannounceInterval:  sp.ReannounceInterval,
		SampleEvery:         sp.SampleEvery,
	}
	// Every mutable slice is copied (trace counts in compile, anchors in
	// bandwidth.New), so editing the spec after Compile never reaches an
	// already-compiled scenario.
	sc.Opt.UploadKbps = append([]float64(nil), sp.Swarm.UploadKbps...)
	switch len(sp.Arrivals) {
	case 0:
	case 1:
		sc.Arrivals = sp.Arrivals[0].compile()
	default:
		comb := make(CombinedArrivals, len(sp.Arrivals))
		for i, a := range sp.Arrivals {
			comb[i] = a.compile()
		}
		sc.Arrivals = comb
	}
	if sp.Capacity != nil {
		sc.CapacityDist = sp.Capacity.compile()
	}
	// A zero-valued faults block is normalized away, so specs that carry
	// `"faults": {}` run byte-identically to specs without the block.
	if !sp.Faults.IsZero() {
		sc.Faults = sp.Faults.clone()
	}
	if sc.Opt.MaxPeers == 0 {
		if est := sp.MaxPeersEstimate(); est > sp.Swarm.Leechers+sp.Swarm.Seeds {
			sc.Opt.MaxPeers = est
		}
	}
	// Stamp the spec's serialized form into the scenario. Checkpoints embed
	// it, so a resume can verify it is continuing the exact workload the
	// snapshot came from (and the CLI can recompile the scenario from the
	// snapshot alone). Marshaling now makes the stamp immune to later caller
	// mutation of the spec; Go's JSON float formatting round-trips exactly,
	// so equal specs always stamp equal bytes.
	if data, err := json.Marshal(sp); err == nil {
		sc.specJSON = data
	}
	return sc, nil
}

// HasFaults reports whether compiling the spec yields a run with the fault
// layer enabled — i.e. the faults block is present and not zero-valued.
// Consumers that extend their output with fault counters (the btswarm jsonl
// emitter) key off this so fault-free runs stay byte-identical.
func (sp ScenarioSpec) HasFaults() bool {
	return !sp.Faults.IsZero()
}

// compile assumes the spec validated.
func (a ArrivalSpec) compile() Arrivals {
	switch a.Kind {
	case "poisson":
		return PoissonArrivals{PerRound: a.Rate}
	case "burst":
		return BurstArrivals{Start: a.Start, Rounds: a.Rounds, Total: a.Total}
	case "trace":
		// Copied so later spec edits cannot rewrite an already-compiled
		// scenario's schedule (Compile copies every mutable slice).
		return TraceArrivals{Counts: append([]int(nil), a.Counts...)}
	default: // "combined"
		comb := make(CombinedArrivals, len(a.Parts))
		for i, part := range a.Parts {
			comb[i] = part.compile()
		}
		return comb
	}
}

// compile assumes the spec validated; the static anchor tables cannot fail.
func (c *CapacitySpec) compile() CapacitySampler {
	switch c.Kind {
	case "uniform":
		return UniformCapacity(c.Kbps)
	case "anchors":
		d, err := bandwidth.New(c.Anchors)
		if err != nil {
			panic(err) // validated
		}
		return d
	default: // "saroiu"
		return bandwidth.Saroiu()
	}
}

// MaxPeersEstimate is the concurrent-population bound Compile preallocates
// when Swarm.MaxPeers is left 0: the initial population plus the expected
// number of arrivals over the whole horizon. It ignores departures, so it
// is an upper bound on the expected peak; the swarm still grows by
// doubling if a run exceeds it.
func (sp ScenarioSpec) MaxPeersEstimate() int {
	expected := 0.0
	for _, a := range sp.Arrivals {
		expected += a.expectedTotal(sp.Rounds)
	}
	return sp.Swarm.Leechers + sp.Swarm.Seeds + int(math.Ceil(expected))
}

// expectedTotal is the expected number of arrivals the process delivers
// within the first `rounds` rounds.
func (a ArrivalSpec) expectedTotal(rounds int) float64 {
	switch a.Kind {
	case "poisson":
		return a.Rate * float64(rounds)
	case "burst":
		d := a.Rounds
		if d < 1 {
			d = 1
		}
		overlap := min(a.Start+d, rounds) - a.Start
		if overlap <= 0 {
			return 0
		}
		return float64(a.Total) * float64(overlap) / float64(d)
	case "trace":
		total := 0
		for _, c := range a.Counts[:min(len(a.Counts), rounds)] {
			total += c
		}
		return float64(total)
	case "combined":
		total := 0.0
		for _, part := range a.Parts {
			total += part.expectedTotal(rounds)
		}
		return total
	}
	return 0
}

// Scaled returns a copy of the spec with populations, horizon and arrival
// volumes multiplied by f — the generic knob behind the CLI's
// -scenario-scale for loaded spec files. Leechers (floored at 2), Rounds
// (floored at 50), MaxPeers (when explicit), burst windows and totals,
// seed-linger times and event rounds all scale; traces are
// time-compressed with their mass scaled by f via cumulative rounding, so
// burst and trace totals scale as f. Poisson rates scale by f as well,
// which over the f-scaled horizon makes a Poisson process's expected
// total scale as f² — intensity and duration both shrink, matching the
// catalog's own scale semantics. Per-round probabilities (abandonment,
// seed fraction) and an explicit Swarm.UploadKbps vector are left
// untouched. Scaled(1) is the identity.
func (sp ScenarioSpec) Scaled(f float64) ScenarioSpec {
	if f == 1 || f <= 0 {
		return sp
	}
	out := sp
	if out.Swarm.UploadKbps == nil {
		out.Swarm.Leechers = max(2, int(float64(sp.Swarm.Leechers)*f))
	}
	if sp.Swarm.MaxPeers > 0 {
		out.Swarm.MaxPeers = max(out.Swarm.Leechers+out.Swarm.Seeds,
			int(float64(sp.Swarm.MaxPeers)*f))
	}
	out.Rounds = max(50, int(float64(sp.Rounds)*f))
	if len(sp.Arrivals) > 0 {
		out.Arrivals = make([]ArrivalSpec, len(sp.Arrivals))
		for i := range sp.Arrivals {
			out.Arrivals[i] = sp.Arrivals[i].scaled(f)
		}
	}
	if sp.Departures.SeedLingerRounds > 0 {
		out.Departures.SeedLingerRounds = max(1, int(float64(sp.Departures.SeedLingerRounds)*f))
	}
	if len(sp.Events) > 0 {
		out.Events = make([]Event, len(sp.Events))
		for i, ev := range sp.Events {
			ev.Round = min(int(float64(ev.Round)*f), out.Rounds-1)
			out.Events[i] = ev
		}
	}
	if sp.Faults != nil {
		out.Faults = sp.Faults.scaled(f, out.Rounds)
	}
	return out
}

func (a ArrivalSpec) scaled(f float64) ArrivalSpec {
	out := a
	switch a.Kind {
	case "poisson":
		out.Rate = a.Rate * f
	case "burst":
		out.Start = int(float64(a.Start) * f)
		out.Rounds = int(float64(a.Rounds) * f)
		if a.Rounds > 0 && out.Rounds < 1 {
			out.Rounds = 1
		}
		if a.Total > 0 {
			out.Total = max(1, int(float64(a.Total)*f))
		}
	case "trace":
		out.Counts = scaledTrace(a.Counts, f)
	case "combined":
		out.Parts = make([]ArrivalSpec, len(a.Parts))
		for i, part := range a.Parts {
			out.Parts[i] = part.scaled(f)
		}
	}
	return out
}

// scaledTrace compresses a trace's time axis by f and scales its total
// mass by f, using cumulative rounding so the scaled total is exact
// (floor of f times the original total).
func scaledTrace(counts []int, f float64) []int {
	if len(counts) == 0 {
		return nil
	}
	out := make([]int, int(float64(len(counts)-1)*f)+1)
	cum, emitted := 0.0, 0
	for j, cj := range counts {
		cum += float64(cj) * f
		k := min(int(float64(j)*f), len(out)-1)
		add := int(cum) - emitted
		out[k] += add
		emitted += add
	}
	return out
}

// ScenarioNames lists the catalog in presentation order: the churn
// scenarios first, then the fault-injection scenarios.
func ScenarioNames() []string {
	return append(ChurnScenarioNames(), FaultScenarioNames()...)
}

// ChurnScenarioNames lists the fault-free churn scenarios.
func ChurnScenarioNames() []string {
	return []string{"flashcrowd", "poisson", "massdepart", "tracereplay", "seedstarve", "slowquit"}
}

// FaultScenarioNames lists the fault-injection scenarios.
func FaultScenarioNames() []string {
	return []string{"trackerdown", "splitbrain", "crashcrowd"}
}

// XLScenarioNames lists the extra-large stress scenarios. They are kept
// out of ScenarioNames — catalog-wide sweeps and checkpoint matrices would
// take hours at these populations — but NamedSpec resolves them like any
// other name, so the CLI and the CI smoke job reach them explicitly.
func XLScenarioNames() []string {
	return []string{"flashcrowd1m"}
}

// NamedSpec builds the spec of one of the canonical churn scenarios at the
// given seed and population scale (1.0 = the default size; scales below
// ~0.1 are clamped entry-by-entry to stay meaningful). The catalog:
//
//   - flashcrowd: a tiny seeded swarm absorbs a burst of empty newcomers —
//     Section 6's flash-crowd regime made dynamic. Completed peers linger
//     briefly, then leave; the swarm must drain without losing the file.
//   - poisson: steady-state swarm under continuous Poisson arrivals with
//     abandonment and seed linger — the regime of Guo et al.'s measurement
//     studies, where stratification must persist through turnover.
//   - massdepart: half the population vanishes at once mid-run; the
//     tracker's re-announce handouts must heal the overlay (mean degree
//     recovers) and downloads must keep completing.
//   - tracereplay: arrivals replay a recorded per-round schedule — two
//     exponentially decaying waves, the shape of tracker-log flash crowds
//     — instead of a stochastic process; total arrivals are exact.
//   - seedstarve: the initial seeds leave after a short linger
//     (InitialSeedsStay false) and only a trickle of arrivals are seeds,
//     so content availability itself is at stake — the seed-starvation
//     regime.
//   - slowquit: abandonment is capacity-correlated (AbandonRankBias):
//     slow peers see crawling downloads and give up early, reshaping the
//     capacity mix the share-ratio classes measure.
//   - trackerdown: a Poisson steady state with lossy announces whose
//     tracker goes dark for a long mid-run window — joiners arrive
//     isolated and must retry with backoff until the tracker returns; the
//     swarm has to survive the outage on its existing overlay.
//   - splitbrain: a content-unlimited swarm is bisected by a network
//     partition and later healed — the reconvergence probe for the
//     paper's stratification (does the rank correlation recover?).
//   - crashcrowd: peers fail crash-stop (no goodbye) at a steady rate for
//     a window, leaving stale neighbor entries until the failure-detection
//     sweep retires them; the stale-edge telemetry must drain to zero
//     after the window.
//   - flashcrowd1m: the million-peer flash crowd (XLScenarioNames): a
//     content-unlimited swarm absorbs ~10^6 newcomers in a ~100-round
//     burst with every round sampled — the sharded stepping and dirty-set
//     stress workload. At scale 1 it needs the parallel stepper
//     (Scenario.StepWorkers / -step-workers) to finish in sane time.
func NamedSpec(name string, seed uint64, scale float64) (ScenarioSpec, error) {
	if scale <= 0 {
		scale = 1
	}
	n := func(base int, min int) int {
		v := int(float64(base) * scale)
		if v < min {
			v = min
		}
		return v
	}
	saroiu := &CapacitySpec{Kind: "saroiu"}
	base := Options{
		Seeds:         2,
		Pieces:        32,
		PieceKbit:     512,
		NeighborCount: 10,
		Seed:          seed,
	}
	switch name {
	case "flashcrowd":
		burst := n(150, 20)
		opt := base
		opt.Leechers = n(10, 4)
		opt.MaxPeers = opt.Leechers + 2 + burst
		return ScenarioSpec{
			Name:     name,
			Swarm:    opt,
			Rounds:   n(1200, 600),
			Arrivals: []ArrivalSpec{{Kind: "burst", Start: 20, Rounds: 60, Total: burst}},
			Capacity: saroiu,
			Departures: Departures{
				SeedLingerRounds: 150,
				InitialSeedsStay: true,
			},
		}, nil
	case "poisson":
		opt := base
		opt.Leechers = n(40, 12)
		opt.MaxPeers = 4 * opt.Leechers
		return ScenarioSpec{
			Name:     name,
			Swarm:    opt,
			Rounds:   n(1500, 800),
			Arrivals: []ArrivalSpec{{Kind: "poisson", Rate: 0.4 * scale}},
			Capacity: saroiu,
			Departures: Departures{
				AbandonPerRound:  0.0005,
				SeedLingerRounds: 120,
				InitialSeedsStay: true,
			},
		}, nil
	case "massdepart":
		opt := base
		opt.Leechers = n(80, 24)
		opt.Seeds = 3
		opt.MaxPeers = 2 * opt.Leechers
		opt.PostFlashCrowd = true
		return ScenarioSpec{
			Name:     name,
			Swarm:    opt,
			Rounds:   n(1200, 700),
			Arrivals: []ArrivalSpec{{Kind: "poisson", Rate: 0.3 * scale}},
			Capacity: saroiu,
			Departures: Departures{
				SeedLingerRounds: 200,
				InitialSeedsStay: true,
			},
			Events: []Event{{Round: 300, DepartFraction: 0.5}},
		}, nil
	case "tracereplay":
		opt := base
		opt.Leechers = n(16, 6)
		// Two decaying arrival waves — the canonical shape of tracker-log
		// flash crowds (a release, then a re-announcement). The schedule
		// is baked into the spec as plain counts; MaxPeers is left 0 to
		// exercise Compile's arrival-driven estimate.
		traceLen := n(600, 300)
		amp := float64(n(4, 2))
		tau := float64(traceLen) / 12
		counts := make([]int, traceLen)
		for i := range counts {
			w := amp * math.Exp(-float64(i)/tau)
			if i >= traceLen/2 {
				w += amp * math.Exp(-float64(i-traceLen/2)/tau)
			}
			counts[i] = int(w)
		}
		return ScenarioSpec{
			Name:     name,
			Swarm:    opt,
			Rounds:   traceLen + n(400, 250),
			Arrivals: []ArrivalSpec{{Kind: "trace", Counts: counts}},
			Capacity: saroiu,
			Departures: Departures{
				AbandonPerRound:  0.001,
				SeedLingerRounds: 100,
				InitialSeedsStay: true,
			},
		}, nil
	case "seedstarve":
		opt := base
		opt.Leechers = n(24, 8)
		return ScenarioSpec{
			Name:                name,
			Swarm:               opt,
			Rounds:              n(1000, 500),
			Arrivals:            []ArrivalSpec{{Kind: "poisson", Rate: 0.25 * scale}},
			Capacity:            saroiu,
			ArrivalSeedFraction: 0.03,
			Departures: Departures{
				AbandonPerRound:  0.001,
				SeedLingerRounds: 80,
				InitialSeedsStay: false, // the content source itself churns
			},
		}, nil
	case "slowquit":
		opt := base
		opt.Leechers = n(40, 14)
		return ScenarioSpec{
			Name:     name,
			Swarm:    opt,
			Rounds:   n(1000, 500),
			Arrivals: []ArrivalSpec{{Kind: "poisson", Rate: 0.3 * scale}},
			Capacity: saroiu,
			Departures: Departures{
				AbandonPerRound:  0.0015,
				AbandonRankBias:  6, // the slowest present peer quits 7x as readily
				SeedLingerRounds: 120,
				InitialSeedsStay: true,
			},
		}, nil
	case "trackerdown":
		opt := base
		opt.Leechers = n(40, 12)
		opt.MaxPeers = 4 * opt.Leechers
		return ScenarioSpec{
			Name:     name,
			Swarm:    opt,
			Rounds:   n(1500, 800),
			Arrivals: []ArrivalSpec{{Kind: "poisson", Rate: 0.4 * scale}},
			Capacity: saroiu,
			Departures: Departures{
				AbandonPerRound:  0.0005,
				SeedLingerRounds: 120,
				InitialSeedsStay: true,
			},
			Faults: &FaultsSpec{
				Injections: []FaultSpec{
					// The tracker goes dark mid-run; a background announce
					// loss keeps the retry machinery exercised outside the
					// outage too.
					{Kind: FaultTrackerOutage, Start: n(400, 150), Rounds: n(300, 120)},
					{Kind: FaultAnnounceLoss, Rate: 0.10},
				},
			},
		}, nil
	case "splitbrain":
		opt := base
		opt.Leechers = n(60, 20)
		opt.MaxPeers = 2 * opt.Leechers
		// Content-unlimited: the paper's Section 6 regime, where the
		// stratification signal is purest — the partition's damage and the
		// post-heal reconvergence show up directly in StratCorr.
		opt.ContentUnlimited = true
		return ScenarioSpec{
			Name:     name,
			Swarm:    opt,
			Rounds:   n(1200, 600),
			Arrivals: []ArrivalSpec{{Kind: "poisson", Rate: 0.1 * scale}},
			Capacity: saroiu,
			Departures: Departures{
				AbandonPerRound: 0.0005,
			},
			Faults: &FaultsSpec{
				Injections: []FaultSpec{
					{Kind: FaultPartition, Start: n(400, 150), Rounds: n(300, 120), Fraction: 0.5},
				},
			},
		}, nil
	case "crashcrowd":
		opt := base
		opt.Leechers = n(50, 16)
		opt.Seeds = 3
		opt.MaxPeers = 4 * opt.Leechers
		return ScenarioSpec{
			Name:     name,
			Swarm:    opt,
			Rounds:   n(1200, 600),
			Arrivals: []ArrivalSpec{{Kind: "poisson", Rate: 0.35 * scale}},
			Capacity: saroiu,
			Departures: Departures{
				SeedLingerRounds: 150,
				InitialSeedsStay: true,
			},
			Faults: &FaultsSpec{
				Injections: []FaultSpec{
					// The crash window ends well before the horizon, so the
					// failure-detection sweep must drain StaleEdges to zero
					// by the final sample.
					{Kind: FaultCrash, Start: n(150, 60), Rounds: n(450, 200), Rate: 0.002},
				},
			},
		}, nil
	case "flashcrowd1m":
		// Content-unlimited (the stratification regime, where the transfer
		// phase shards perfectly) with a minimal piece grid: at a million
		// slots every per-piece byte is ~1 MB of state.
		opt := base
		opt.ContentUnlimited = true
		opt.Pieces = 1
		opt.NeighborCount = 8
		opt.MaxNeighbors = 12
		opt.Leechers = n(800, 64)
		opt.Seeds = n(200, 8)
		opt.MetricsWarmupRounds = 30
		burst := n(999_000, 2000)
		opt.MaxPeers = opt.Leechers + opt.Seeds + burst
		return ScenarioSpec{
			Name:        name,
			Swarm:       opt,
			Rounds:      n(200, 120),
			Arrivals:    []ArrivalSpec{{Kind: "burst", Start: 5, Rounds: n(100, 50), Total: burst}},
			Capacity:    saroiu,
			SampleEvery: 1,
		}, nil
	}
	return ScenarioSpec{}, fmt.Errorf("btsim: unknown scenario %q (known: %v)", name, ScenarioNames())
}
