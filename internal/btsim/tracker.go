package btsim

import "stratmatch/internal/telemetry"

// tracker is the swarm's membership registry: the set of present peer ids,
// with O(1) register/unregister (swap-delete) and uniform random sampling
// for neighbor handout. It models a BitTorrent tracker: peers announce on
// arrival (and re-announce when under-connected) and receive a random
// subset of the currently registered swarm.
type tracker struct {
	present []int32 // present peer ids, order irrelevant
	pos     []int32 // id → index in present, −1 when absent
}

func (s *Swarm) trackerRegister(id int) {
	for len(s.trk.pos) < len(s.peers) {
		s.trk.pos = append(s.trk.pos, -1)
	}
	s.trk.pos[id] = int32(len(s.trk.present))
	s.trk.present = append(s.trk.present, int32(id))
}

func (s *Swarm) trackerUnregister(id int) {
	i := s.trk.pos[id]
	last := int32(len(s.trk.present) - 1)
	moved := s.trk.present[last]
	s.trk.present[i] = moved
	s.trk.pos[moved] = i
	s.trk.present = s.trk.present[:last]
	s.trk.pos[id] = -1
}

// Announce asks the tracker for neighbors: it hands peer id uniformly
// random present peers until the announcer holds NeighborCount connections
// (incoming introductions count towards the target), skipping itself,
// existing neighbors, and peers already at their MaxNeighbors degree cap.
// Introductions are symmetric — both sides learn each other, like a real
// tracker response followed by a handshake. The number of connections added
// is returned. Announce is a no-op for departed or out-of-range ids.
//
// With the fault layer armed, an announce fails outright during a tracker
// outage (consuming no randomness) and is dropped with the current loss
// probability otherwise; failures schedule a jittered exponential-backoff
// retry (see faultState.announceFailed). While a partition is active the
// handout only introduces peers on the announcer's side.
func (s *Swarm) Announce(id int) int {
	if id < 0 || id >= len(s.peers) || s.peers[id].departed {
		return 0
	}
	p := &s.peers[id]
	if p.slot < 0 {
		// The peer's slot has been recycled out from under it — a stale
		// re-announce replayed across a checkpoint/resume boundary can do
		// this. Touching the CSR arrays would read another occupant's block,
		// so the announce is a guarded no-op instead.
		return 0
	}
	s.tel.Inc(telemetry.CtrAnnounces)
	if f := s.flt; f != nil {
		if f.trackerDown || (f.lossRate > 0 && f.r.Bool(f.lossRate)) {
			f.announceFailed(p.slot, s.round)
			s.tel.Inc(telemetry.CtrAnnounceFailures)
			return 0
		}
		f.announceOK(p.slot)
	}
	// The selection loop itself is the shared HandoutPolicy (handout.go):
	// the trackerd service registry runs the identical policy, so served
	// handouts match in-sim ones draw for draw.
	hp := HandoutPolicy{NeighborCount: s.opt.NeighborCount, MaxNeighbors: s.opt.MaxNeighbors}
	added := hp.Handout((*swarmHandout)(s), s.r, int32(id))
	s.tel.Add(telemetry.CtrAnnounceEdges, added)
	return added
}

// ReannounceUnderConnected lets present peers whose degree fell below the
// tracker target (departures eat neighborhoods) re-announce for a fresh
// handout. Peers are staggered by id over the interval — each call only
// processes ids scheduled for the current round, like independent client
// announce timers; interval <= 1 processes every under-connected peer. The
// total number of connections added is returned.
func (s *Swarm) ReannounceUnderConnected(interval int) int {
	target := s.opt.NeighborCount
	if max := len(s.trk.present) - 1; target > max {
		target = max // a drained swarm cannot offer more neighbors
	}
	added := 0
	for i := 0; i < len(s.trk.present); i++ {
		id := int(s.trk.present[i])
		if interval > 1 && (s.round+id)%interval != 0 {
			continue
		}
		sl := s.peers[id].slot
		if sl < 0 {
			continue // slot recycled under a stale registry entry; see Announce
		}
		if f := s.flt; f != nil && f.retryAt[sl] >= 0 {
			continue // in announce backoff; the retry pass owns the schedule
		}
		if int(s.deg[sl]) < target {
			added += s.Announce(id)
		}
	}
	return added
}
