package btsim

// Step advances the simulation by one round (one second): choke decisions on
// their (per-peer staggered) schedule, then one round of data transfer.
// Staggering matters: real BitTorrent clients run independent 10-second
// choke timers; synchronizing them makes Tit-for-Tat pairs oscillate instead
// of locking in.
func (s *Swarm) Step() {
	for _, p := range s.peers {
		if p.departed {
			continue
		}
		if (s.round+p.id)%s.opt.ChokeIntervalRounds == 0 {
			s.rechokePeer(p)
		}
		if !p.done && (s.round+p.id)%s.opt.OptimisticIntervalRounds == 0 {
			s.rotateOptimisticPeer(p)
		}
	}
	s.transfer()
	s.round++
}

// Run advances the simulation by the given number of rounds.
func (s *Swarm) Run(rounds int) {
	for i := 0; i < rounds; i++ {
		s.Step()
	}
}

// RunUntilDone steps until every leecher holds all pieces or maxRounds
// elapse; it reports whether the swarm finished.
func (s *Swarm) RunUntilDone(maxRounds int) bool {
	for i := 0; i < maxRounds; i++ {
		if s.AllDone() {
			return true
		}
		s.Step()
	}
	return s.AllDone()
}

// AllDone reports whether every present leecher has completed the file.
func (s *Swarm) AllDone() bool {
	for _, p := range s.peers {
		if !p.isSeed && !p.departed && !p.done {
			return false
		}
	}
	return true
}

// Round returns the current round number.
func (s *Swarm) Round() int { return s.round }

// Depart removes a peer from the swarm (failure injection): it stops
// uploading and downloading and its neighbors forget its pieces.
func (s *Swarm) Depart(id int) {
	if id < 0 || id >= len(s.peers) || s.peers[id].departed {
		return
	}
	p := s.peers[id]
	p.departed = true
	for k, j := range p.neighbors {
		q := s.peers[j]
		kq := q.indexOf(id)
		if kq < 0 {
			continue
		}
		// Neighbors lose availability of p's pieces and any in-flight
		// download from p.
		for piece := 0; piece < s.opt.Pieces; piece++ {
			if p.have.has(piece) {
				q.avail[piece]--
			}
		}
		q.inflight[kq] = -1
		q.unchoked[kq] = false
		if q.optimistic == kq {
			q.optimistic = -1
		}
		_ = k
	}
}

// indexOf returns the index of neighbor id in p.neighbors (sorted), or −1.
func (p *peer) indexOf(id int) int {
	lo, hi := 0, len(p.neighbors)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.neighbors[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.neighbors) && p.neighbors[lo] == id {
		return lo
	}
	return -1
}

// interestedIn reports whether peer v wants data from peer u: v is still
// leeching and u has a piece v lacks (in content-unlimited mode every
// leecher always wants data from everybody).
func (s *Swarm) interestedIn(v, u *peer) bool {
	if v.departed || u.departed || v == u {
		return false
	}
	if s.opt.ContentUnlimited {
		return !v.isSeed
	}
	if v.done {
		return false
	}
	return v.have.anyMissingIn(u.have)
}

// rechokePeer recomputes p's rates from its elapsed window and reassigns its
// TFT slots.
func (s *Swarm) rechokePeer(p *peer) {
	interval := float64(s.opt.ChokeIntervalRounds)
	for k := range p.recvWindow {
		p.recvRate[k] = p.recvWindow[k] / interval
		p.recvWindow[k] = 0
	}
	if p.done {
		s.rechokeSeed(p)
	} else {
		s.rechokeLeecher(p)
	}
}

// rechokeLeecher implements Tit-for-Tat: unchoke the TFTSlots neighbors that
// delivered the most data in the last interval and are interested in us.
func (s *Swarm) rechokeLeecher(p *peer) {
	type cand struct {
		k    int
		rate float64
	}
	var cands []cand
	for k, j := range p.neighbors {
		q := s.peers[j]
		if q.departed || !s.interestedIn(q, p) {
			p.unchoked[k] = false
			continue
		}
		cands = append(cands, cand{k, p.recvRate[k]})
		p.unchoked[k] = false
	}
	// Partial selection sort of the top TFTSlots by (rate desc, id asc).
	slots := s.opt.TFTSlots
	if slots > len(cands) {
		slots = len(cands)
	}
	for pos := 0; pos < slots; pos++ {
		best := pos
		for i := pos + 1; i < len(cands); i++ {
			if cands[i].rate > cands[best].rate ||
				(cands[i].rate == cands[best].rate &&
					p.neighbors[cands[i].k] < p.neighbors[cands[best].k]) {
				best = i
			}
		}
		cands[pos], cands[best] = cands[best], cands[pos]
		p.unchoked[cands[pos].k] = true
		// Stratification accounting: record the TFT partner's global rank,
		// but only for rate-driven choices after the warmup — zero-rate
		// picks are id-order artifacts, and early intervals measure mixing
		// noise rather than Tit-for-Tat preferences.
		if cands[pos].rate > 0 && s.round >= s.opt.MetricsWarmupRounds {
			p.tftPartnerRankSum += float64(s.rank[p.neighbors[cands[pos].k]])
			p.tftPartnerCount++
		}
	}
	// If the optimistic pick just earned a TFT slot, the optimistic slot
	// moves to a fresh choked neighbor (BitTorrent rotates it early).
	if p.optimistic >= 0 && p.unchoked[p.optimistic] {
		s.rotateOptimisticPeer(p)
	}
}

// rechokeSeed gives seeds (and finished leechers) a fresh random set of
// interested neighbors each interval — the rotation keeps seed capacity
// spread over the swarm instead of captured by one peer.
func (s *Swarm) rechokeSeed(p *peer) {
	p.optimistic = -1 // seeds fold the optimistic slot into rotation
	var cands []int
	for k, j := range p.neighbors {
		p.unchoked[k] = false
		q := s.peers[j]
		if !q.departed && s.interestedIn(q, p) {
			cands = append(cands, k)
		}
	}
	slots := s.opt.TFTSlots + s.opt.OptimisticSlots
	for i := 0; i < slots && len(cands) > 0; i++ {
		pick := s.r.Intn(len(cands))
		p.unchoked[cands[pick]] = true
		cands[pick] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
}

// rotateOptimisticPeer re-draws p's optimistic unchoke uniformly among
// interested, currently choked neighbors.
func (s *Swarm) rotateOptimisticPeer(p *peer) {
	if s.opt.OptimisticSlots < 1 {
		return
	}
	p.optimistic = -1
	var cands []int
	for k, j := range p.neighbors {
		q := s.peers[j]
		if !p.unchoked[k] && !q.departed && s.interestedIn(q, p) {
			cands = append(cands, k)
		}
	}
	if len(cands) > 0 {
		p.optimistic = cands[s.r.Intn(len(cands))]
	}
}

// transfer moves one round of data: every peer splits its capacity equally
// among its active recipients (unchoked or optimistic, still interested).
// Each connection streams into one piece at a time; several connections may
// feed the same piece concurrently (BitTorrent downloads pieces in blocks
// from many peers in parallel), all adding to the downloader's shared
// per-piece progress. A connection transfers only what a piece still needs
// and spills leftover capacity into the next piece, so no bandwidth is
// burned on completed data.
func (s *Swarm) transfer() {
	for _, u := range s.peers {
		if u.departed || u.capacity <= 0 {
			continue
		}
		var active []int
		for k, j := range u.neighbors {
			if !u.unchoked[k] && k != u.optimistic {
				continue
			}
			if s.interestedIn(s.peers[j], u) {
				active = append(active, k)
			}
		}
		if len(active) == 0 {
			continue
		}
		share := u.capacity / float64(len(active))
		for _, k := range active {
			v := s.peers[u.neighbors[k]]
			kv := v.indexOf(u.id)
			if kv < 0 {
				continue
			}
			if s.opt.ContentUnlimited {
				v.recvWindow[kv] += share
				u.totalUp += share
				v.totalDown += share
				continue
			}
			remaining := share
			for remaining > 1e-9 && !v.done {
				piece := v.inflight[kv]
				if piece < 0 || v.have.has(piece) || !u.have.has(piece) {
					piece = s.pickPiece(v, u)
					v.inflight[kv] = piece
					if piece < 0 {
						break // u has nothing v needs
					}
				}
				need := s.opt.PieceKbit - v.pieceProgress[piece]
				amt := remaining
				if need < amt {
					amt = need
				}
				v.pieceProgress[piece] += amt
				v.recvWindow[kv] += amt
				u.totalUp += amt
				v.totalDown += amt
				remaining -= amt
				if v.pieceProgress[piece] >= s.opt.PieceKbit {
					v.have.set(piece)
					s.completePiece(v, piece)
				}
			}
		}
	}
}

// pickPiece chooses the piece v will stream from u: rarest first among
// pieces u has and v lacks, preferring pieces no other connection is
// currently feeding (to spread sources across pieces); when only in-flight
// pieces remain, it joins the rarest of those — progress is shared, so this
// accelerates completion instead of duplicating work.
func (s *Swarm) pickPiece(v, u *peer) int {
	inflight := make(map[int]bool, len(v.inflight))
	for _, piece := range v.inflight {
		if piece >= 0 {
			inflight[piece] = true
		}
	}
	bestFresh, bestFreshAvail := -1, int(^uint(0)>>1)
	bestAny, bestAnyAvail := -1, int(^uint(0)>>1)
	for piece := 0; piece < s.opt.Pieces; piece++ {
		if v.have.has(piece) || !u.have.has(piece) {
			continue
		}
		a := v.avail[piece]
		if a < bestAnyAvail {
			bestAny, bestAnyAvail = piece, a
		}
		if !inflight[piece] && a < bestFreshAvail {
			bestFresh, bestFreshAvail = piece, a
		}
	}
	if bestFresh >= 0 {
		return bestFresh
	}
	return bestAny
}

// completePiece finalizes v's acquisition of piece: bookkeeping, have
// broadcast, and completion detection.
func (s *Swarm) completePiece(v *peer, piece int) {
	v.haveCount++
	for k := range v.inflight {
		if v.inflight[k] == piece {
			v.inflight[k] = -1
		}
	}
	for _, j := range v.neighbors {
		q := s.peers[j]
		if q.departed {
			continue
		}
		q.avail[piece]++
	}
	if v.haveCount == s.opt.Pieces {
		v.done = true
		v.doneRound = s.round + 1
		for k := range v.inflight {
			v.inflight[k] = -1
		}
	}
}
