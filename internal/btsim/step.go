package btsim

import (
	"stratmatch/internal/rng"
	"stratmatch/internal/telemetry"
)

// Step advances the simulation by one round (one second): choke decisions on
// their (per-peer staggered) schedule, then one round of data transfer.
// Staggering matters: real BitTorrent clients run independent 10-second
// choke timers; synchronizing them makes Tit-for-Tat pairs oscillate instead
// of locking in.
//
// Both halves run as deterministic bulk-synchronous passes over the slot
// shards (see shard.go): the choke pass shards in every mode, and in
// content-unlimited mode the transfer splits into a send pass and a receive
// pass with the cross-shard flow buffered in between. Piece-mode transfer
// stays serial — mid-round piece completions are an inherently sequential
// dependency. The result is byte-identical at any SetStepWorkers setting,
// and steady-state stepping is allocation-free at any worker count.
func (s *Swarm) Step() {
	s.flushJoinRanks()
	sp := s.tel.StartPhase(telemetry.PhaseChoke)
	s.runShards(phChoke)
	s.tel.EndPhase(telemetry.PhaseChoke, sp)
	sp = s.tel.StartPhase(telemetry.PhaseTransfer)
	if s.opt.ContentUnlimited {
		s.runShards(phSend)
		s.runShards(phRecv)
		s.foldShardSums()
	} else {
		s.transfer()
	}
	s.tel.EndPhase(telemetry.PhaseTransfer, sp)
	s.tel.Inc(telemetry.CtrRounds)
	s.round++
}

// Run advances the simulation by the given number of rounds.
func (s *Swarm) Run(rounds int) {
	for i := 0; i < rounds; i++ {
		s.Step()
	}
}

// RunUntilDone steps until every leecher holds all pieces or maxRounds
// elapse; it reports whether the swarm finished.
func (s *Swarm) RunUntilDone(maxRounds int) bool {
	for i := 0; i < maxRounds; i++ {
		if s.AllDone() {
			return true
		}
		s.Step()
	}
	return s.AllDone()
}

// AllDone reports whether every present leecher has completed the file.
func (s *Swarm) AllDone() bool {
	return s.present == s.presentDone
}

// Round returns the current round number.
func (s *Swarm) Round() int { return s.round }

// Depart removes a peer from the swarm: every one of its connections is
// unwired (both CSR halves, with incremental want/avail maintenance), its
// slot is recycled onto the free list, and its piece bitfield joins the
// reuse pool. The roster entry survives with the peer's totals, completion
// state and final rank, so departed peers still appear in the metrics.
func (s *Swarm) Depart(id int) {
	if id < 0 || id >= len(s.peers) || s.peers[id].departed {
		return
	}
	s.flushJoinRanks() // the shift below needs settled ranks
	p := &s.peers[id]
	sl := p.slot
	if s.stats != nil {
		s.stats.remove(int(sl))
	}
	bmClear(s.sh.statDirty, int(sl))
	base := sl * s.edgeCap
	for s.deg[sl] > 0 {
		e := base + s.deg[sl] - 1 // unwire p's edges from the back
		q := &s.peers[s.nbr[e]]
		er := s.rev[e] // q's edge back to p
		if q.departed && s.flt != nil {
			// p held a stale edge to a crashed, not-yet-swept neighbor;
			// p's leaving retires it before the timeout sweep would.
			s.flt.staleEdges--
		}
		s.availSub(q.slot, p.have)
		s.removeEdgeHalf(q, er)
		s.deg[sl]--
		s.liveDegSum--
	}
	// Discard partial piece progress and zero the slot's own availability
	// row so the next occupant starts clean — a direct clear, cheaper than
	// decrementing per departing edge.
	pbase := int(sl) * s.opt.Pieces
	for i := pbase; i < pbase+s.opt.Pieces; i++ {
		s.pieceProgress[i] = 0
		s.avail[i] = 0
	}

	p.optimistic = -1
	p.departed = true
	p.departRound = s.round
	p.slot = -1
	if p.done {
		s.presentDone--
	}
	s.present--
	s.totalDeparted++
	s.trackerUnregister(id)

	// Present peers ranked below the leaver shift up one; p keeps the rank
	// it held at departure. The incremental sampler's rank sums shift along.
	pr := s.rank[id]
	st := s.stats
	for _, j := range s.trk.present {
		if s.rank[j] > pr {
			s.rank[j]--
			if st != nil {
				st.shiftRank(int(s.peers[j].slot), -1)
			}
		}
	}

	s.slotPeer[sl] = -1
	s.freeSlots = append(s.freeSlots, sl)
	s.havePool = append(s.havePool, p.have)
	p.have = bitset{}
	s.tel.Inc(telemetry.CtrDeparts)
}

// Crash removes a peer abruptly (crash-stop): it leaves the tracker and the
// membership counters at once, but — unlike Depart — nobody is told, so its
// connections are NOT unwired. Neighbors keep stale edges to the dead peer
// (counted in the fault telemetry) until the failure-detection sweep times
// them out; the crashed peer keeps its CSR slot, edge block and bitfield
// until then. Crash requires an armed fault layer and is a no-op for
// departed or out-of-range ids.
func (s *Swarm) Crash(id int) {
	if s.flt == nil || id < 0 || id >= len(s.peers) || s.peers[id].departed {
		return
	}
	s.flushJoinRanks() // the shift below needs settled ranks
	f := s.flt
	p := &s.peers[id]
	sl := p.slot
	if s.stats != nil {
		s.stats.remove(int(sl))
	}
	bmClear(s.sh.statDirty, int(sl))
	// Stale-edge accounting: every present neighbor's half towards p goes
	// stale; p's own halves towards already-crashed neighbors stop counting
	// (their owner is no longer present). Surviving neighbors' candidate
	// sets and active lists just changed — mark them for the lazy stepper.
	base := sl * s.edgeCap
	for e := base; e < base+s.deg[sl]; e++ {
		q := &s.peers[s.nbr[e]]
		if q.departed {
			f.staleEdges--
		} else {
			f.staleEdges++
			s.markEdgeTouched(q.slot)
		}
	}
	s.liveDegSum -= int64(s.deg[sl]) // p's own halves leave the present sum
	p.optimistic = -1
	p.departed = true
	p.departRound = s.round
	if p.done {
		s.presentDone--
	}
	s.present--
	s.totalDeparted++
	s.trackerUnregister(id)
	// Present peers ranked below the crasher shift up one, exactly as in a
	// graceful departure; p keeps the rank it held.
	pr := s.rank[id]
	st := s.stats
	for _, j := range s.trk.present {
		if s.rank[j] > pr {
			s.rank[j]--
			if st != nil {
				st.shiftRank(int(s.peers[j].slot), -1)
			}
		}
	}
	f.totalCrashed++
	f.crashq = append(f.crashq, int32(id))
	s.tel.Inc(telemetry.CtrCrashes)
}

// sweepCrashed is the failure-detection pass: once a crashed peer has been
// silent for the neighbor timeout, every surviving neighbor notices the
// dead connection at once (all their timers started at the crash) and
// drops it. This is the deferred half of Depart: the stale edges are
// unwired, the slot's availability and progress rows are cleared, and the
// slot and bitfield are recycled. The crash queue is in crash order, so the
// scan stops at the first entry still within the timeout.
func (s *Swarm) sweepCrashed() {
	f := s.flt
	for f.crashHead < len(f.crashq) {
		id := f.crashq[f.crashHead]
		p := &s.peers[id]
		if s.round-p.departRound < f.timeout {
			break
		}
		f.crashHead++
		sl := p.slot
		base := sl * s.edgeCap
		for s.deg[sl] > 0 {
			e := base + s.deg[sl] - 1
			q := &s.peers[s.nbr[e]]
			er := s.rev[e]
			s.availSub(q.slot, p.have)
			s.removeEdgeHalf(q, er)
			s.deg[sl]--
			if !q.departed {
				f.staleEdges--
			}
		}
		pbase := int(sl) * s.opt.Pieces
		for i := pbase; i < pbase+s.opt.Pieces; i++ {
			s.pieceProgress[i] = 0
			s.avail[i] = 0
		}
		p.slot = -1
		s.slotPeer[sl] = -1
		s.freeSlots = append(s.freeSlots, sl)
		s.havePool = append(s.havePool, p.have)
		p.have = bitset{}
	}
	switch {
	case f.crashHead == len(f.crashq):
		f.crashq = f.crashq[:0]
		f.crashHead = 0
	case f.crashHead > 64 && 2*f.crashHead > len(f.crashq):
		// Compact the swept prefix away so a long crash window cannot grow
		// the queue without bound.
		n := copy(f.crashq, f.crashq[f.crashHead:])
		f.crashq = f.crashq[:n]
		f.crashHead = 0
	}
}

// wantsAlong reports whether peer v wants data from peer u, where e is v's
// edge to u: v is still leeching and u has a piece v lacks (in
// content-unlimited mode every leecher always wants data from everybody).
// The missing-piece count is maintained incrementally in want[e], so this is
// O(1) instead of a bitfield scan.
func (s *Swarm) wantsAlong(v, u *peer, e int32) bool {
	if v.departed || u.departed || v == u {
		return false
	}
	if s.opt.ContentUnlimited {
		return !v.isSeed
	}
	if v.done {
		return false
	}
	return s.want[e] > 0
}

// rechokePeer recomputes p's rates from its elapsed window and reassigns its
// TFT slots. It runs under the choke shard pass: sl is p's slot, rr the
// shard's RNG sub-stream and sc the calling worker's candidate scratch.
// The window → rate fold is skipped when the dirty bits prove both are
// already all-zero (the steady-peer case); the skip writes exactly the
// values the fold would have.
func (s *Swarm) rechokePeer(p *peer, sl int, rr *rng.RNG, sc *chokeScratch) {
	s.tel.Inc(telemetry.CtrRechokes)
	hadWindow := bmGet(s.sh.windowNZ, sl)
	if hadWindow || bmGet(s.sh.ratesNZ, sl) {
		interval := float64(s.opt.ChokeIntervalRounds)
		base := int32(sl) * s.edgeCap
		end := base + s.deg[sl]
		for e := base; e < end; e++ {
			s.recvRate[e] = s.recvWindow[e] / interval
			s.recvWindow[e] = 0
		}
		bmClear(s.sh.windowNZ, sl)
		if hadWindow {
			bmSet(s.sh.ratesNZ, sl)
		} else {
			bmClear(s.sh.ratesNZ, sl)
		}
	}
	if p.done {
		s.rechokeSeed(p, sl, rr, sc)
	} else {
		s.rechokeLeecher(p, sl, rr, sc)
	}
	bmClear(s.sh.chokeDirty, sl)
	bmSet(s.sh.xferDirty, sl)
}

// rechokeLeecher implements Tit-for-Tat: unchoke the TFTSlots neighbors that
// delivered the most data in the last interval and are interested in us.
func (s *Swarm) rechokeLeecher(p *peer, sl int, rr *rng.RNG, sc *chokeScratch) {
	nc := 0
	base := int32(sl) * s.edgeCap
	end := base + s.deg[sl]
	for e := base; e < end; e++ {
		s.unchoked[e] = false
		q := &s.peers[s.nbr[e]]
		if !s.wantsAlong(q, p, s.rev[e]) {
			continue
		}
		sc.candE[nc] = e
		sc.candRate[nc] = s.recvRate[e]
		nc++
	}
	// Partial selection sort of the top TFTSlots by (rate desc, id asc).
	slots := s.opt.TFTSlots
	if slots > nc {
		slots = nc
	}
	accounted := false
	for pos := 0; pos < slots; pos++ {
		best := pos
		for i := pos + 1; i < nc; i++ {
			if sc.candRate[i] > sc.candRate[best] ||
				(sc.candRate[i] == sc.candRate[best] &&
					s.nbr[sc.candE[i]] < s.nbr[sc.candE[best]]) {
				best = i
			}
		}
		sc.candE[pos], sc.candE[best] = sc.candE[best], sc.candE[pos]
		sc.candRate[pos], sc.candRate[best] = sc.candRate[best], sc.candRate[pos]
		s.unchoked[sc.candE[pos]] = true
		// Stratification accounting: record the TFT partner's global rank,
		// but only for rate-driven choices after the warmup — zero-rate
		// picks are id-order artifacts, and early intervals measure mixing
		// noise rather than Tit-for-Tat preferences.
		if sc.candRate[pos] > 0 && s.round >= s.opt.MetricsWarmupRounds {
			p.tftPartnerRankSum += float64(s.rank[s.nbr[sc.candE[pos]]])
			p.tftPartnerCount++
			accounted = true
		}
	}
	if accounted {
		bmSet(s.sh.statDirty, sl) // the peer's mean TFT partner rank moved
	}
	// If the optimistic pick just earned a TFT slot, the optimistic slot
	// moves to a fresh choked neighbor (BitTorrent rotates it early).
	if p.optimistic >= 0 && s.unchoked[p.optimistic] {
		s.rotateOptimisticPeer(p, rr, sc)
	}
}

// rechokeSeed gives seeds (and finished leechers) a fresh random set of
// interested neighbors each interval — the rotation keeps seed capacity
// spread over the swarm instead of captured by one peer.
func (s *Swarm) rechokeSeed(p *peer, sl int, rr *rng.RNG, sc *chokeScratch) {
	p.optimistic = -1 // seeds fold the optimistic slot into rotation
	nc := 0
	base := int32(sl) * s.edgeCap
	end := base + s.deg[sl]
	for e := base; e < end; e++ {
		s.unchoked[e] = false
		q := &s.peers[s.nbr[e]]
		if s.wantsAlong(q, p, s.rev[e]) {
			sc.candE[nc] = e
			nc++
		}
	}
	slots := s.opt.TFTSlots + s.opt.OptimisticSlots
	for i := 0; i < slots && nc > 0; i++ {
		pick := rr.Intn(nc)
		s.unchoked[sc.candE[pick]] = true
		sc.candE[pick] = sc.candE[nc-1]
		nc--
	}
}

// rotateOptimisticPeer re-draws p's optimistic unchoke uniformly among
// interested, currently choked neighbors, from the owning shard's
// sub-stream.
func (s *Swarm) rotateOptimisticPeer(p *peer, rr *rng.RNG, sc *chokeScratch) {
	if s.opt.OptimisticSlots < 1 {
		return
	}
	s.tel.Inc(telemetry.CtrOptimistics)
	p.optimistic = -1
	nc := 0
	base, end := s.edges(p.id)
	for e := base; e < end; e++ {
		q := &s.peers[s.nbr[e]]
		if !s.unchoked[e] && s.wantsAlong(q, p, s.rev[e]) {
			sc.candE[nc] = e
			nc++
		}
	}
	if nc > 0 {
		p.optimistic = sc.candE[rr.Intn(nc)]
	}
}

// transfer moves one round of data in piece mode: every peer splits its
// capacity equally among its active recipients (unchoked or optimistic,
// still interested). Each connection streams into one piece at a time;
// several connections may feed the same piece concurrently (BitTorrent
// downloads pieces in blocks from many peers in parallel), all adding to
// the downloader's shared per-piece progress. A connection transfers only
// what a piece still needs and spills leftover capacity into the next
// piece, so no bandwidth is burned on completed data.
//
// This pass is deliberately serial: a completion mid-round changes
// interest and rarity for uploaders later in slot order. Content-unlimited
// transfer — where no such dependency exists — runs as the sharded
// send/receive passes in shard.go instead.
func (s *Swarm) transfer() {
	P := s.opt.Pieces
	for sl := 0; sl < s.slotCap; sl++ {
		id := s.slotPeer[sl]
		if id < 0 {
			continue
		}
		u := &s.peers[id]
		if u.departed || u.capacity <= 0 {
			continue // crashed occupants hold their slot but move no data
		}
		na := 0
		base := int32(sl) * s.edgeCap
		end := base + s.deg[sl]
		for e := base; e < end; e++ {
			if !s.unchoked[e] && e != u.optimistic {
				continue
			}
			v := &s.peers[s.nbr[e]]
			if s.wantsAlong(v, u, s.rev[e]) {
				s.active[na] = e
				na++
			}
		}
		if na == 0 {
			continue
		}
		share := u.capacity / float64(na)
		sent := false
		for a := 0; a < na; a++ {
			e := s.active[a]
			v := &s.peers[s.nbr[e]]
			ev := s.rev[e] // v's edge back to u: no neighbor-list search
			moved := false
			remaining := share
			for remaining > 1e-9 && !v.done {
				piece := int(s.inflight[ev])
				if piece < 0 || v.have.has(piece) || !u.have.has(piece) {
					piece = s.pickPiece(v, u)
					s.inflight[ev] = int32(piece)
					if piece < 0 {
						break // u has nothing v needs
					}
				}
				idx := int(v.slot)*P + piece
				need := s.opt.PieceKbit - s.pieceProgress[idx]
				amt := remaining
				if need < amt {
					amt = need
				}
				s.pieceProgress[idx] += amt
				s.recvWindow[ev] += amt
				u.totalUp += amt
				v.totalDown += amt
				s.sumUp += amt
				s.sumDown += amt
				remaining -= amt
				moved = true
				if s.pieceProgress[idx] >= s.opt.PieceKbit {
					v.have.set(piece)
					s.completePiece(v, piece)
				}
			}
			if moved {
				vsl := int(v.slot)
				bmSet(s.sh.windowNZ, vsl)
				bmSet(s.sh.statDirty, vsl)
				sent = true
			}
		}
		if sent && !u.isSeed {
			bmSet(s.sh.statDirty, sl) // the uploader's share ratio moved
		}
	}
}

// pickPiece chooses the piece v will stream from u: rarest first among
// pieces u has and v lacks, preferring pieces no other connection is
// currently feeding (to spread sources across pieces); when only in-flight
// pieces remain, it joins the rarest of those — progress is shared, so this
// accelerates completion instead of duplicating work.
func (s *Swarm) pickPiece(v, u *peer) int {
	// Stamp v's in-flight pieces into the scratch mark array; a fresh stamp
	// per call avoids both clearing and allocating.
	s.stamp++
	base, end := s.edges(v.id)
	for e := base; e < end; e++ {
		if piece := s.inflight[e]; piece >= 0 {
			s.mark[piece] = s.stamp
		}
	}
	abase := int(v.slot) * s.opt.Pieces
	bestFresh, bestFreshAvail := -1, int32(1<<30)
	bestAny, bestAnyAvail := -1, int32(1<<30)
	for piece := 0; piece < s.opt.Pieces; piece++ {
		if v.have.has(piece) || !u.have.has(piece) {
			continue
		}
		a := s.avail[abase+piece]
		if a < bestAnyAvail {
			bestAny, bestAnyAvail = piece, a
		}
		if s.mark[piece] != s.stamp && a < bestFreshAvail {
			bestFresh, bestFreshAvail = piece, a
		}
	}
	if bestFresh >= 0 {
		return bestFresh
	}
	return bestAny
}

// completePiece finalizes v's acquisition of piece: incremental interest and
// availability bookkeeping, in-flight cleanup, and completion (seed
// promotion) detection. Interest changed in both directions on every edge,
// so v and all its neighbors are marked for the lazy choke pass.
func (s *Swarm) completePiece(v *peer, piece int) {
	v.haveCount++
	P := s.opt.Pieces
	base, end := s.edges(v.id)
	s.markEdgeTouched(v.slot)
	for e := base; e < end; e++ {
		if s.inflight[e] == int32(piece) {
			s.inflight[e] = -1
		}
		q := &s.peers[s.nbr[e]]
		s.avail[int(q.slot)*P+piece]++
		s.markEdgeTouched(q.slot)
		if q.have.has(piece) {
			// v no longer misses this piece from q.
			s.want[e]--
		} else {
			// q now misses this piece from v.
			s.want[s.rev[e]]++
		}
	}
	s.tel.Inc(telemetry.CtrPieces)
	if v.haveCount == s.opt.Pieces {
		v.done = true
		v.doneRound = s.round + 1
		s.presentDone++
		if !v.isSeed {
			s.completedLeechers++
		}
		for e := base; e < end; e++ {
			s.inflight[e] = -1
		}
	}
}
