package btsim

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestSpecRoundTripByteIdentical is the serialization contract: every
// catalog scenario, serialized to JSON, reloaded, and re-run, must produce
// byte-identical series and metrics to the in-Go spec — nothing about a
// workload may live outside its serializable description.
func TestSpecRoundTripByteIdentical(t *testing.T) {
	for _, name := range ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := NamedSpec(name, 7, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := runSpec(t, spec)
			if err != nil {
				t.Fatal(err)
			}

			data, err := json.Marshal(spec)
			if err != nil {
				t.Fatal(err)
			}
			reloaded, err := ParseSpec(data)
			if err != nil {
				t.Fatal(err)
			}
			viaJSON, err := runSpec(t, reloaded)
			if err != nil {
				t.Fatal(err)
			}

			// Formatted comparison: the results carry NaN sentinels, and
			// NaN != NaN would fail equality on identical runs. Float
			// formatting round-trips exactly, so string equality is value
			// equality.
			if a, b := render(direct), render(viaJSON); a != b {
				t.Fatalf("JSON round trip diverged:\ndirect: %.400s\nreload: %.400s", a, b)
			}
		})
	}
}

func runSpec(t *testing.T, spec ScenarioSpec) (*ScenarioResult, error) {
	t.Helper()
	sc, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	return sc.Run()
}

func render(res *ScenarioResult) string {
	return fmt.Sprintf("%+v", *res)
}

// validSpec is the mutation baseline for the error-path table.
func validSpec() ScenarioSpec {
	return ScenarioSpec{
		Name: "valid",
		Swarm: Options{
			Leechers: 8, Seeds: 1, Pieces: 16, PieceKbit: 256,
			NeighborCount: 5, Seed: 3,
		},
		Rounds: 50,
		Arrivals: []ArrivalSpec{
			{Kind: "poisson", Rate: 0.2},
			{Kind: "burst", Start: 5, Rounds: 10, Total: 12},
		},
		Capacity:   &CapacitySpec{Kind: "saroiu"},
		Departures: Departures{AbandonPerRound: 0.001, SeedLingerRounds: 20, InitialSeedsStay: true},
		Events:     []Event{{Round: 25, DepartFraction: 0.3}},
	}
}

// TestCompileValidationErrorPaths drives every Compile validation rule and
// checks that the error names the exact field path.
func TestCompileValidationErrorPaths(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*ScenarioSpec)
		wantPath string
	}{
		{"empty name", func(sp *ScenarioSpec) { sp.Name = "" }, "name: required"},
		{"zero rounds", func(sp *ScenarioSpec) { sp.Rounds = 0 }, "rounds: must be >= 1"},
		{"no leechers", func(sp *ScenarioSpec) { sp.Swarm.Leechers = 0 }, "swarm.leechers"},
		{"negative seeds", func(sp *ScenarioSpec) { sp.Swarm.Seeds = -1 }, "swarm.seeds"},
		{"no pieces", func(sp *ScenarioSpec) { sp.Swarm.Pieces = 0 }, "swarm.pieces"},
		{"negative max peers", func(sp *ScenarioSpec) { sp.Swarm.MaxPeers = -5 }, "swarm.max_peers"},
		{"capacity vector length", func(sp *ScenarioSpec) { sp.Swarm.UploadKbps = []float64{1, 2} }, "swarm.upload_kbps"},
		{"missing arrival kind", func(sp *ScenarioSpec) { sp.Arrivals[0].Kind = "" }, "arrivals[0].kind: required"},
		{"unknown arrival kind", func(sp *ScenarioSpec) { sp.Arrivals[1].Kind = "flash" }, `arrivals[1].kind: unknown kind "flash"`},
		{"negative rate", func(sp *ScenarioSpec) { sp.Arrivals[0].Rate = -0.5 }, "arrivals[0].rate: must be >= 0"},
		{"negative burst start", func(sp *ScenarioSpec) { sp.Arrivals[1].Start = -1 }, "arrivals[1].start"},
		{"negative burst total", func(sp *ScenarioSpec) { sp.Arrivals[1].Total = -1 }, "arrivals[1].total"},
		{"foreign field on poisson", func(sp *ScenarioSpec) { sp.Arrivals[0].Counts = []int{1} }, "arrivals[0].counts"},
		{"foreign field on burst", func(sp *ScenarioSpec) { sp.Arrivals[1].Rate = 2 }, "arrivals[1].rate"},
		{"negative trace count", func(sp *ScenarioSpec) {
			sp.Arrivals[0] = ArrivalSpec{Kind: "trace", Counts: []int{1, 0, -2}}
		}, "arrivals[0].counts[2]"},
		{"empty combined", func(sp *ScenarioSpec) {
			sp.Arrivals[0] = ArrivalSpec{Kind: "combined"}
		}, "arrivals[0].parts"},
		{"nested combined error", func(sp *ScenarioSpec) {
			sp.Arrivals[1] = ArrivalSpec{Kind: "combined", Parts: []ArrivalSpec{
				{Kind: "poisson", Rate: 0.1},
				{Kind: "poisson", Rate: -1},
			}}
		}, "arrivals[1].parts[1].rate"},
		{"missing capacity kind", func(sp *ScenarioSpec) { sp.Capacity = &CapacitySpec{} }, "capacity.kind: required"},
		{"unknown capacity kind", func(sp *ScenarioSpec) { sp.Capacity = &CapacitySpec{Kind: "pareto"} }, "capacity.kind"},
		{"non-positive uniform", func(sp *ScenarioSpec) { sp.Capacity = &CapacitySpec{Kind: "uniform"} }, "capacity.kbps"},
		{"foreign kbps on saroiu", func(sp *ScenarioSpec) { sp.Capacity.Kbps = 100 }, "capacity.kbps"},
		{"bad anchors", func(sp *ScenarioSpec) {
			sp.Capacity = &CapacitySpec{Kind: "anchors"}
		}, "capacity.anchors"},
		{"seed fraction range", func(sp *ScenarioSpec) { sp.ArrivalSeedFraction = 1.5 }, "arrival_seed_fraction"},
		{"abandon range", func(sp *ScenarioSpec) { sp.Departures.AbandonPerRound = 2 }, "departures.abandon_per_round"},
		{"rank bias range", func(sp *ScenarioSpec) { sp.Departures.AbandonRankBias = -3 }, "departures.abandon_rank_bias"},
		{"rank bias without base rate", func(sp *ScenarioSpec) {
			sp.Departures.AbandonPerRound = 0
			sp.Departures.AbandonRankBias = 4
		}, "departures.abandon_rank_bias: requires"},
		{"negative linger", func(sp *ScenarioSpec) { sp.Departures.SeedLingerRounds = -1 }, "departures.seed_linger_rounds"},
		{"event round range", func(sp *ScenarioSpec) { sp.Events[0].Round = 50 }, "events[0].round"},
		{"event fraction range", func(sp *ScenarioSpec) { sp.Events[0].DepartFraction = -0.1 }, "events[0].depart_fraction"},
		{"negative reannounce", func(sp *ScenarioSpec) { sp.ReannounceInterval = -1 }, "reannounce_interval"},
		{"negative sample every", func(sp *ScenarioSpec) { sp.SampleEvery = -1 }, "sample_every"},
	}
	if base := validSpec(); base.Validate() != nil {
		t.Fatalf("baseline spec invalid: %v", base.Validate())
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := validSpec()
			tc.mutate(&sp)
			_, err := sp.Compile()
			if err == nil {
				t.Fatalf("mutation %q compiled", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantPath) {
				t.Fatalf("error %q does not carry path %q", err, tc.wantPath)
			}
		})
	}
}

// TestCompileAutoSizesMaxPeers pins the auto-sizing satellite: a spec that
// leaves Swarm.MaxPeers 0 compiles with the arrival processes' expected
// peak, and an explicit value is never overridden.
func TestCompileAutoSizesMaxPeers(t *testing.T) {
	sp := validSpec()
	sp.Swarm.MaxPeers = 0
	sp.Arrivals = []ArrivalSpec{
		{Kind: "poisson", Rate: 0.5},                                           // 0.5 * 50 = 25 expected
		{Kind: "burst", Start: 40, Rounds: 20, Total: 30},                      // half the window fits: 15
		{Kind: "trace", Counts: []int{3, 4}},                                   // 7
		{Kind: "combined", Parts: []ArrivalSpec{{Kind: "poisson", Rate: 0.1}}}, // 5
	}
	want := 9 + 25 + 15 + 7 + 5 // initial 8+1, then per-process expectations
	if got := sp.MaxPeersEstimate(); got != want {
		t.Fatalf("MaxPeersEstimate = %d, want %d", got, want)
	}
	sc, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Opt.MaxPeers != want {
		t.Fatalf("compiled MaxPeers = %d, want auto-sized %d", sc.Opt.MaxPeers, want)
	}

	sp.Swarm.MaxPeers = 999
	if sc, err = sp.Compile(); err != nil {
		t.Fatal(err)
	}
	if sc.Opt.MaxPeers != 999 {
		t.Fatalf("explicit MaxPeers overridden: %d", sc.Opt.MaxPeers)
	}

	// Without arrivals the estimate is the initial population and the
	// swarm keeps its own default (MaxPeers stays 0).
	sp.Swarm.MaxPeers = 0
	sp.Arrivals = nil
	if sc, err = sp.Compile(); err != nil {
		t.Fatal(err)
	}
	if sc.Opt.MaxPeers != 0 {
		t.Fatalf("arrival-free spec auto-sized MaxPeers to %d", sc.Opt.MaxPeers)
	}
}

// TestParseSpecRejectsGarbage: unknown fields (typos) and trailing data
// must not silently pass.
func TestParseSpecRejectsGarbage(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name":"x","arivals":[]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"name":"x"} trailing`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	if _, err := ParseSpec([]byte(`{"name":"x","rounds":10}{"name":"y"}`)); err == nil {
		t.Fatal("second object accepted")
	}
	sp, err := ParseSpec([]byte(`{"name":"x","rounds":10,"swarm":{"leechers":4,"pieces":8}}`))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "x" || sp.Rounds != 10 || sp.Swarm.Leechers != 4 {
		t.Fatalf("parsed spec wrong: %+v", sp)
	}
}

// TestUniformCapacitySpec: the "uniform" capacity kind gives every arrival
// (and the initial leechers) the same capacity.
func TestUniformCapacitySpec(t *testing.T) {
	sp := validSpec()
	sp.Capacity = &CapacitySpec{Kind: "uniform", Kbps: 640}
	res, err := runSpec(t, sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, pm := range res.Final.Peers {
		if pm.IsSeed {
			continue
		}
		if pm.Capacity != 640 {
			t.Fatalf("peer %d capacity %v, want uniform 640", pm.ID, pm.Capacity)
		}
	}
	if res.TotalJoined <= sp.Swarm.Leechers+sp.Swarm.Seeds {
		t.Fatal("no arrivals happened")
	}
}

// TestScaledSpec pins the generic -scenario-scale semantics for loaded
// specs: identity at 1, proportional populations/horizons below, exact
// trace mass scaling, and events clamped inside the scaled horizon.
func TestScaledSpec(t *testing.T) {
	sp := validSpec()
	sp.Arrivals = append(sp.Arrivals, ArrivalSpec{Kind: "trace", Counts: []int{4, 0, 4, 4, 0, 4, 4}})
	sp.Rounds = 400
	sp.Swarm.Leechers = 40
	sp.Swarm.MaxPeers = 200
	sp.Events[0].Round = 399

	if got := render2(sp.Scaled(1)); got != render2(sp) {
		t.Fatal("Scaled(1) is not the identity")
	}

	half := sp.Scaled(0.5)
	if half.Swarm.Leechers != 20 || half.Rounds != 200 || half.Swarm.MaxPeers != 100 {
		t.Fatalf("Scaled(0.5) sizes wrong: %+v", half.Swarm)
	}
	if half.Arrivals[0].Rate != 0.1 {
		t.Fatalf("poisson rate not scaled: %v", half.Arrivals[0].Rate)
	}
	if half.Arrivals[1].Total != 6 {
		t.Fatalf("burst total not scaled: %d", half.Arrivals[1].Total)
	}
	mass := 0
	for _, c := range half.Arrivals[2].Counts {
		mass += c
	}
	if mass != 10 { // floor(20 * 0.5)
		t.Fatalf("trace mass %d after scaling, want 10", mass)
	}
	if ev := half.Events[0].Round; ev >= half.Rounds {
		t.Fatalf("event round %d escaped the scaled horizon %d", ev, half.Rounds)
	}
	if _, err := half.Compile(); err != nil {
		t.Fatalf("scaled spec does not compile: %v", err)
	}

	// Tiny scales hit the floors but stay valid.
	tiny := sp.Scaled(0.01)
	if tiny.Swarm.Leechers < 2 || tiny.Rounds < 50 {
		t.Fatalf("floors violated: %d leechers, %d rounds", tiny.Swarm.Leechers, tiny.Rounds)
	}
	if _, err := tiny.Compile(); err != nil {
		t.Fatalf("tiny scaled spec does not compile: %v", err)
	}
}

func render2(sp ScenarioSpec) string { return fmt.Sprintf("%+v", sp) }

// TestRunObserverEvents: the streaming runner reports scheduled shocks to
// the observer, and Run (the collecting wrapper) matches RunObserver
// sample for sample.
func TestRunObserverEvents(t *testing.T) {
	spec, err := NamedSpec("massdepart", 7, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var obs recordingObserver
	if err := sc.RunObserver(&obs); err != nil {
		t.Fatal(err)
	}
	if obs.doneCalls != 1 {
		t.Fatalf("OnDone called %d times", obs.doneCalls)
	}
	shock := false
	for _, ev := range obs.events {
		if ev.Kind == "shock" && ev.Round == spec.Events[0].Round && ev.Departed > 0 {
			shock = true
		}
	}
	if !shock {
		t.Fatalf("no shock event reported (events: %+v)", obs.events)
	}

	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(obs.samples) {
		t.Fatalf("Run materialized %d samples, observer saw %d", len(res.Series), len(obs.samples))
	}
	for i := range res.Series {
		if a, b := fmt.Sprintf("%+v", res.Series[i]), fmt.Sprintf("%+v", obs.samples[i]); a != b {
			t.Fatalf("sample %d diverged between Run and RunObserver:\n%s\n%s", i, a, b)
		}
	}
	if res.TotalJoined != len(obs.final.Peers) {
		t.Fatalf("TotalJoined %d vs roster %d", res.TotalJoined, len(obs.final.Peers))
	}
}

type recordingObserver struct {
	samples   []SeriesPoint
	events    []RunEvent
	final     Metrics
	doneCalls int
}

func (r *recordingObserver) OnSample(pt SeriesPoint) { r.samples = append(r.samples, pt) }
func (r *recordingObserver) OnEvent(ev RunEvent)     { r.events = append(r.events, ev) }
func (r *recordingObserver) OnDone(m Metrics) {
	r.final = m
	r.doneCalls++
}
