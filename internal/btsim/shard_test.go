package btsim

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"stratmatch/internal/checkpoint"
	"stratmatch/internal/telemetry"
)

// TestShardedStepByteIdenticalCatalog is the tentpole acceptance property:
// every catalog scenario — churn and faults alike — produces a result
// byte-identical to the serial run at every tested worker count. Shards own
// their RNG sub-streams and cross-shard effects merge in slot order, so the
// worker count must be invisible in the output.
func TestShardedStepByteIdenticalCatalog(t *testing.T) {
	for _, name := range ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serial, err := NamedScenario(name, 11, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			golden, err := serial.Run()
			if err != nil {
				t.Fatal(err)
			}
			goldenStr := fmtResult(golden)
			for _, workers := range []int{2, 4} {
				sc, err := NamedScenario(name, 11, 0.15)
				if err != nil {
					t.Fatal(err)
				}
				sc.StepWorkers = workers
				res, err := sc.Run()
				if err != nil {
					t.Fatal(err)
				}
				if got := fmtResult(res); got != goldenStr {
					t.Errorf("workers=%d diverged from serial:\n--- serial ---\n%.600s\n--- workers=%d ---\n%.600s",
						workers, goldenStr, workers, got)
				}
			}
		})
	}
}

// TestFlashcrowd1MScaledByteIdentical runs the million-peer flash-crowd
// scenario at test scale (the CI smoke job runs it bigger) and pins the
// same worker-count invariance on it: a ~5k-peer burst into a small seeded
// swarm, content-unlimited, sampled every round.
func TestFlashcrowd1MScaledByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled stress scenario")
	}
	serial, err := NamedScenario("flashcrowd1m", 3, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if golden.TotalJoined < 2000 {
		t.Fatalf("scaled flashcrowd1m joined only %d peers; the burst did not fire", golden.TotalJoined)
	}
	goldenStr := fmtResult(golden)
	for _, workers := range []int{4, 8} {
		sc, err := NamedScenario("flashcrowd1m", 3, 0.005)
		if err != nil {
			t.Fatal(err)
		}
		sc.StepWorkers = workers
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if fmtResult(res) != goldenStr {
			t.Errorf("flashcrowd1m workers=%d diverged from serial", workers)
		}
	}
}

// boundaryChurnOps drives a deterministic churn script over a swarm whose
// shard width was forced to the 64-slot minimum, so joins, departures and
// crashes constantly cross shard boundaries and recycle slots across them.
// The script is a pure function of the round, so two swarms with identical
// options replay identical ops.
func boundaryChurnOps(s *Swarm, round int) {
	if round%3 == 0 {
		// A burst of joins walks occupancy across the 64-slot boundaries;
		// freed slots from earlier departures get recycled into different
		// shards than their previous owners.
		for k := 0; k < 10; k++ {
			id := s.Join(100+float64(7*((round+k)%23)), k%4 == 3)
			s.Announce(id)
		}
	}
	n := len(s.peers)
	if round%2 == 1 && n > 0 {
		s.Depart((round * 13) % n)
	}
	if round%5 == 2 && n > 0 {
		s.Crash((round*29 + 5) % n)
	}
}

func boundarySwarm(t *testing.T, workers int) *Swarm {
	t.Helper()
	s, err := New(Options{
		Leechers: 90, Seeds: 6, Pieces: 1, ContentUnlimited: true,
		NeighborCount: 8, MaxNeighbors: 12, MaxPeers: 400, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.setShardSlots(64)
	s.SetStepWorkers(workers)
	return s
}

// TestShardBoundaryChurnByteIdentical churns peers across shard-range
// edges — joins landing in fresh shards, departures and crashes freeing
// slots that later joins recycle — and demands that a 4-worker swarm stays
// byte-identical to the serial one while both keep every invariant,
// including the lazy-vs-eager cross-checks in CheckInvariants.
func TestShardBoundaryChurnByteIdentical(t *testing.T) {
	a := boundarySwarm(t, 1)
	b := boundarySwarm(t, 4)
	defer b.Close()
	for round := 0; round < 60; round++ {
		boundaryChurnOps(a, round)
		boundaryChurnOps(b, round)
		a.Step()
		b.Step()
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("round %d serial invariants: %v", round, err)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("round %d workers=4 invariants: %v", round, err)
		}
		if round%10 == 9 {
			got := fmt.Sprintf("%+v", b.Snapshot())
			want := fmt.Sprintf("%+v", a.Snapshot())
			if got != want {
				t.Fatalf("round %d: workers=4 snapshot diverged from serial", round)
			}
		}
	}
}

// TestShardDeltaMergeStress pushes the cross-shard delta-merge path hard —
// many shards, many workers, churn every round — and is most valuable
// under -race (CI runs it there): the atomic incoming-bitmap OR, the
// exclusive xfer writes and the slot-ordered drain are all exercised with
// real contention.
func TestShardDeltaMergeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	s, err := New(Options{
		Leechers: 500, Seeds: 20, Pieces: 1, ContentUnlimited: true,
		NeighborCount: 20, MaxNeighbors: 30, MaxPeers: 700, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.setShardSlots(64) // ~11 shards
	s.SetStepWorkers(8)
	defer s.Close()
	for round := 0; round < 40; round++ {
		boundaryChurnOps(s, round)
		s.Step()
		if round%10 == 9 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
}

// approxSeries compares two series points: integer fields exactly, float
// fields to a relative tolerance (the incremental sampler accumulates the
// same terms as the eager scan but in a different association order).
func approxSeries(a, b SeriesPoint, tol float64) error {
	ints := func(name string, x, y int) error {
		if x != y {
			return fmt.Errorf("%s: %d != %d", name, x, y)
		}
		return nil
	}
	floats := func(name string, x, y float64) error {
		if math.IsNaN(x) && math.IsNaN(y) {
			return nil
		}
		if diff := math.Abs(x - y); diff > tol*math.Max(1, math.Max(math.Abs(x), math.Abs(y))) {
			return fmt.Errorf("%s: %v != %v (diff %v)", name, x, y, diff)
		}
		return nil
	}
	checks := []error{
		ints("Round", a.Round, b.Round),
		ints("Present", a.Present, b.Present),
		ints("Leechers", a.Leechers, b.Leechers),
		ints("Seeds", a.Seeds, b.Seeds),
		ints("Joined", a.Joined, b.Joined),
		ints("Departed", a.Departed, b.Departed),
		ints("Completed", a.Completed, b.Completed),
		ints("StaleEdges", a.StaleEdges, b.StaleEdges),
		ints("Crashed", a.Crashed, b.Crashed),
		ints("AnnounceFailures", a.AnnounceFailures, b.AnnounceFailures),
		ints("AnnounceRetries", a.AnnounceRetries, b.AnnounceRetries),
		floats("MeanDegree", a.MeanDegree, b.MeanDegree),
		floats("StratCorr", a.StratCorr, b.StratCorr),
		floats("ShareRatio[0]", a.ShareRatioByClass[0], b.ShareRatioByClass[0]),
		floats("ShareRatio[1]", a.ShareRatioByClass[1], b.ShareRatioByClass[1]),
		floats("ShareRatio[2]", a.ShareRatioByClass[2], b.ShareRatioByClass[2]),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	return nil
}

// TestLazySamplerMatchesEager is the differential pin for the O(changed)
// incremental series sampler: across the whole catalog, the lazy sampler's
// series must match the eager full-roster scan — integer fields exactly,
// correlation and share-ratio aggregates to float tolerance — and the
// final snapshot (always an eager scan) must be byte-identical, proving
// the sampler never perturbs the trajectory.
func TestLazySamplerMatchesEager(t *testing.T) {
	for _, name := range ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			lazy, err := NamedScenario(name, 9, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			eager, err := NamedScenario(name, 9, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			eager.eagerSample = true
			lr, err := lazy.Run()
			if err != nil {
				t.Fatal(err)
			}
			er, err := eager.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(lr.Series) != len(er.Series) {
				t.Fatalf("series lengths differ: lazy %d, eager %d", len(lr.Series), len(er.Series))
			}
			for i := range lr.Series {
				if err := approxSeries(lr.Series[i], er.Series[i], 1e-6); err != nil {
					t.Fatalf("sample %d (round %d): %v", i, lr.Series[i].Round, err)
				}
			}
			if got, want := fmt.Sprintf("%+v", lr.Final), fmt.Sprintf("%+v", er.Final); got != want {
				t.Fatal("lazy sampler perturbed the trajectory: final snapshots differ")
			}
		})
	}
}

// TestSeriesStatsZeroAlloc pins the cost model of the incremental sampler:
// flushing dirty slots and reading the aggregates allocates nothing, so
// per-round sampling (SampleEvery 1, the flash-crowd configuration) adds
// no garbage to the steady-state round.
func TestSeriesStatsZeroAlloc(t *testing.T) {
	s, err := New(Options{
		Leechers: 100, Pieces: 1, ContentUnlimited: true,
		NeighborCount: 10, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	cb := newClassBounds(s)
	s.EnableSeriesStats(cb.lo, cb.hi)
	s.Run(30)
	sample := func() {
		s.Step()
		s.flushSeriesStats()
		_ = s.stats.corr()
		for cl := 0; cl < 3; cl++ {
			_ = s.stats.ratioMean(cl)
		}
	}
	if allocs := testing.AllocsPerRun(100, sample); allocs != 0 {
		t.Fatalf("step+flush+read allocates %.1f objects per round, want 0", allocs)
	}
}

// TestEventDrivenSkipsHappen is the existence proof for the event-driven
// stepper: in a converged content-unlimited swarm most peers' choke inputs
// stop changing, so the dirty-set fast path must actually skip rechokes
// (and the active-transfer cache must get rebuilt only when edges moved).
func TestEventDrivenSkipsHappen(t *testing.T) {
	s, err := New(Options{
		Leechers: 120, Pieces: 1, ContentUnlimited: true,
		NeighborCount: 10, Seed: 57,
	})
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	s.SetTelemetry(tel)
	s.Run(80)
	if skips := tel.Counter(telemetry.CtrChokeSkips); skips == 0 {
		t.Fatal("80 converged rounds produced zero choke skips; the dirty-set fast path is dead")
	}
	if rebuilds := tel.Counter(telemetry.CtrActiveRebuilds); rebuilds == 0 {
		t.Fatal("no active-cache rebuilds recorded")
	}
	// Skips must dwarf rebuild work once converged: every skip is a slot
	// the eager stepper would have rechoked.
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointResumeAcrossWorkerCounts pins that the worker count is a
// pure runtime knob end to end: a run checkpointed under 4 workers resumes
// byte-identically under 1 worker and under 4, matching the serial golden
// run's tail. Checkpoints carry per-shard RNG positions and dirty-set
// state, never the worker count.
func TestCheckpointResumeAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint matrix")
	}
	for _, name := range []string{"poisson", "crashcrowd"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc := ckptScenario(t, name, 21)
			golden, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			goldenStr := fmtResult(golden)

			dir := t.TempDir()
			mid := sc.Rounds / 2
			ck := sc
			ck.StepWorkers = 4
			ck.CheckpointEvery = mid
			ck.CheckpointDir = dir
			ck.CheckpointRetain = -1
			full, err := ck.Run()
			if err != nil {
				t.Fatal(err)
			}
			fullCmp := *full
			fullCmp.Events = stripCheckpointEvents(full.Events)
			if got := fmtResult(&fullCmp); got != goldenStr {
				t.Fatalf("4-worker checkpointing run diverged from serial golden:\n--- golden ---\n%.600s\n--- got ---\n%.600s", goldenStr, got)
			}

			for _, workers := range []int{1, 4} {
				res := sc
				res.StepWorkers = workers
				res.ResumeFrom = filepath.Join(dir, checkpoint.FileName(mid))
				resumed, err := res.Run()
				if err != nil {
					t.Fatalf("resume with %d workers: %v", workers, err)
				}
				want := &ScenarioResult{
					Name:          golden.Name,
					Series:        golden.Series[mid:],
					Events:        eventsFromRound(golden.Events, mid),
					Final:         golden.Final,
					TotalJoined:   golden.TotalJoined,
					TotalDeparted: golden.TotalDeparted,
				}
				if got, wantStr := fmtResult(resumed), fmtResult(want); got != wantStr {
					t.Fatalf("resume at workers=%d diverged from golden tail:\n--- want ---\n%.600s\n--- got ---\n%.600s", workers, wantStr, got)
				}
			}
		})
	}
}
