package btsim

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"stratmatch/internal/rng"
)

// faultySwarm builds a small running swarm with the fault layer armed —
// the shared fixture for the fault unit tests.
func faultySwarm(t *testing.T, spec FaultsSpec) *Swarm {
	t.Helper()
	s, err := New(Options{
		Leechers: 24, Seeds: 2, Pieces: 16, PieceKbit: 256,
		NeighborCount: 6, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.EnableFaults(spec, rng.New(99).Split())
	s.Run(20) // warm: wiring settled, some transfer history
	return s
}

// countEdges returns peer id's live degree and how many of its connections
// point at departed (crashed, unswept) peers.
func countEdges(s *Swarm, id int) (deg, stale int) {
	sl := s.peers[id].slot
	base := sl * s.edgeCap
	for e := base; e < base+s.deg[sl]; e++ {
		deg++
		if s.peers[s.nbr[e]].departed {
			stale++
		}
	}
	return deg, stale
}

// TestCrashStaleEdgesAndSweep walks one crash through its whole lifecycle —
// crash, stale-edge window, failure-detection sweep, slot recycling — with a
// full invariant audit at every stage.
func TestCrashStaleEdgesAndSweep(t *testing.T) {
	const timeout = 5
	s := faultySwarm(t, FaultsSpec{NeighborTimeoutRounds: timeout})
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("before crash: %v", err)
	}

	victim := int(s.trk.present[0])
	deg, _ := countEdges(s, victim)
	if deg == 0 {
		t.Fatalf("victim %d has no edges; fixture too sparse", victim)
	}
	presentBefore, sl := s.present, s.peers[victim].slot

	s.Crash(victim)
	if s.peers[victim].slot != sl {
		t.Fatalf("crash must keep the slot: got %d, want %d", s.peers[victim].slot, sl)
	}
	if s.present != presentBefore-1 || s.trk.pos[victim] != -1 {
		t.Fatalf("crash must leave membership at once: present %d, tracker pos %d",
			s.present, s.trk.pos[victim])
	}
	if got := s.flt.staleEdges; got != deg {
		t.Fatalf("staleEdges = %d after crashing a degree-%d peer", got, deg)
	}
	if s.flt.totalCrashed != 1 {
		t.Fatalf("totalCrashed = %d, want 1", s.flt.totalCrashed)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after crash: %v", err)
	}

	// Within the timeout the dead peer's connections linger (stale halves
	// visible), and an early sweep is a no-op.
	s.Run(timeout - 1)
	s.sweepCrashed()
	if s.peers[victim].slot < 0 {
		t.Fatal("sweep fired before the neighbor timeout elapsed")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("mid-timeout: %v", err)
	}

	// One more round crosses the timeout: the sweep unwires everything and
	// recycles the slot.
	s.Run(1)
	s.sweepCrashed()
	if s.peers[victim].slot != -1 {
		t.Fatal("sweep did not retire the crashed peer's slot")
	}
	if s.flt.staleEdges != 0 {
		t.Fatalf("staleEdges = %d after the sweep, want 0", s.flt.staleEdges)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after sweep: %v", err)
	}

	// The recycled slot must be reusable: a new arrival may land on it.
	id := s.Join(400, false)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after post-sweep join %d: %v", id, err)
	}
}

// TestDepartRetiresOwnStaleEdges: a present peer gracefully departing while
// it still holds connections to a crashed neighbor must retire those stale
// halves itself — the sweep will never see them again.
func TestDepartRetiresOwnStaleEdges(t *testing.T) {
	s := faultySwarm(t, FaultsSpec{NeighborTimeoutRounds: 50})
	victim := int(s.trk.present[0])
	s.Crash(victim)
	if s.flt.staleEdges == 0 {
		t.Fatal("crash produced no stale edges; fixture too sparse")
	}
	// Depart every present peer holding a stale edge to the victim.
	for _, id := range append([]int32(nil), s.trk.present...) {
		if _, stale := countEdges(s, int(id)); stale > 0 {
			s.Depart(int(id))
		}
	}
	if s.flt.staleEdges != 0 {
		t.Fatalf("staleEdges = %d after every holder departed, want 0", s.flt.staleEdges)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashBetweenCrashedPeers: crashing a peer that is itself connected to
// an earlier, unswept crash must keep both the stale-edge count and the
// live-degree sum exact — the double-subtraction traps in removeEdgeHalf
// and Crash's accounting loop.
func TestCrashCrashedNeighborAccounting(t *testing.T) {
	s := faultySwarm(t, FaultsSpec{NeighborTimeoutRounds: 3})
	first := int(s.trk.present[0])
	s.Crash(first)
	// Crash one of first's still-present neighbors: its half towards first
	// was stale and must be retired by its own crash.
	sl := s.peers[first].slot
	second := -1
	for e := sl * s.edgeCap; e < sl*s.edgeCap+s.deg[sl]; e++ {
		if q := &s.peers[s.nbr[e]]; !q.departed {
			second = q.id
			break
		}
	}
	if second < 0 {
		t.Fatal("first victim has no present neighbor; fixture too sparse")
	}
	s.Crash(second)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after adjacent crashes: %v", err)
	}
	// Let both time out — the sweep unwires the edge between two crashed
	// peers exactly once from each side.
	s.Run(4)
	s.sweepCrashed()
	if s.flt.staleEdges != 0 {
		t.Fatalf("staleEdges = %d after sweeping both, want 0", s.flt.staleEdges)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after sweeping adjacent crashes: %v", err)
	}
}

// TestTrackerEdgeCases pins the lifecycle no-op guards: announcing after
// departing, departing twice, crashing a departed peer and departing a
// crashed peer must all leave the registry, the free list and the counters
// untouched.
func TestTrackerEdgeCases(t *testing.T) {
	s := faultySwarm(t, FaultsSpec{NeighborTimeoutRounds: 10})
	id := int(s.trk.present[0])
	s.Depart(id)
	snap := func() string {
		return fmt.Sprintf("present=%d departed=%d free=%d trk=%d crashed=%d",
			s.present, s.totalDeparted, len(s.freeSlots), len(s.trk.present), s.flt.totalCrashed)
	}
	before := snap()

	if got := s.Announce(id); got != 0 {
		t.Fatalf("announce after depart handed out %d connections, want 0", got)
	}
	s.Depart(id) // double depart
	s.Crash(id)  // crash after depart
	if after := snap(); after != before {
		t.Fatalf("lifecycle no-ops mutated state:\nbefore %s\nafter  %s", before, after)
	}

	crashed := int(s.trk.present[0])
	s.Crash(crashed)
	before = snap()
	s.Depart(crashed) // depart after crash: the sweep owns the cleanup
	s.Crash(crashed)  // double crash
	if got := s.Announce(crashed); got != 0 {
		t.Fatalf("announce after crash handed out %d connections, want 0", got)
	}
	if after := snap(); after != before {
		t.Fatalf("post-crash no-ops mutated state:\nbefore %s\nafter  %s", before, after)
	}

	// Out-of-range ids and a crash without the fault layer are no-ops too.
	s.Depart(-1)
	s.Depart(len(s.peers))
	s.Crash(-1)
	plain, err := New(Options{Leechers: 4, Pieces: 4, NeighborCount: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plain.Crash(0)
	if plain.present != 4 {
		t.Fatal("Crash without a fault layer must be a no-op")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAnnounceRetryBackoff pins the retry schedule: failures during an
// outage back off exponentially (jitter bounded to the upper half of each
// delay), the cap holds, re-announces defer to the pending retry, and a
// successful announce resets the whole state.
func TestAnnounceRetryBackoff(t *testing.T) {
	const base, cap = 2, 16
	s := faultySwarm(t, FaultsSpec{RetryBaseRounds: base, RetryCapRounds: cap})
	f := s.flt
	f.trackerDown = true

	id := int(s.trk.present[0])
	sl := s.peers[id].slot
	for n := 0; n < 12; n++ {
		if got := s.Announce(id); got != 0 {
			t.Fatalf("announce during outage handed out %d connections", got)
		}
		d := base << n
		if d > cap {
			d = cap
		}
		delay := int(f.retryAt[sl]) - s.round
		if delay < (d+1)/2 || delay > d {
			t.Fatalf("failure %d: retry delay %d outside [%d, %d]", n+1, delay, (d+1)/2, d)
		}
		f.retryAt[sl] = int32(s.round) // due immediately for the next failure
	}
	if f.announceFailures != 12 {
		t.Fatalf("announceFailures = %d, want 12", f.announceFailures)
	}

	// A peer with a pending retry is skipped by the periodic re-announce —
	// the backoff schedule owns it.
	failsBefore := f.announceFailures
	s.ReannounceUnderConnected(1)
	for _, pid := range s.trk.present {
		if int(pid) == id {
			continue
		}
		if f.retryAt[s.peers[pid].slot] >= 0 {
			failsBefore++ // other peers may fail their own first announce
		}
	}
	if f.retryAt[sl] != int32(s.round) {
		t.Fatal("re-announce touched a peer in backoff")
	}

	// Recovery: the due retry fires from faultEndRound and succeeds,
	// clearing the backoff state.
	f.trackerDown = false
	var obs discardObserver
	s.faultEndRound(s.round, &obs)
	if f.retryAt[sl] != -1 || f.retryN[sl] != 0 {
		t.Fatalf("successful retry did not reset backoff: retryAt %d retryN %d",
			f.retryAt[sl], f.retryN[sl])
	}
	if f.announceRetries == 0 {
		t.Fatal("no retry was counted")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionCutAndHeal drives a partition through activation and heal:
// the cut leaves no cross-side connections, announces cannot bridge the
// split, join-time side assignment covers arrivals, and after the heal the
// tracker re-knits the overlay.
func TestPartitionCutAndHeal(t *testing.T) {
	spec := FaultsSpec{Injections: []FaultSpec{
		{Kind: FaultPartition, Start: 21, Rounds: 30, Fraction: 0.5},
	}}
	s := faultySwarm(t, spec) // warm run ends at round 20
	f := s.flt
	var obs eventRecorder
	crossEdges := func() int {
		cross := 0
		for _, id := range s.trk.present {
			p := &s.peers[id]
			base := p.slot * s.edgeCap
			for e := base; e < base+s.deg[p.slot]; e++ {
				q := &s.peers[s.nbr[e]]
				if !q.departed && f.side[q.slot] != f.side[p.slot] {
					cross++
				}
			}
		}
		return cross
	}

	s.Step() // round 20 → 21
	s.faultBeginRound(s.round, &obs)
	if !f.partitionOn {
		t.Fatal("partition window did not activate")
	}
	if len(obs.events) != 1 || obs.events[0].Kind != "partition" || obs.events[0].Edges == 0 {
		t.Fatalf("activation events = %+v, want one partition event with severed edges", obs.events)
	}
	if c := crossEdges(); c != 0 {
		t.Fatalf("%d cross-side connections survived the cut", c)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after cut: %v", err)
	}

	// While split: announces and arrivals may not bridge the sides.
	for i := 0; i < 10; i++ {
		s.Join(400, false)
		s.ReannounceUnderConnected(1)
		s.Step()
		s.faultBeginRound(s.round, &obs)
	}
	if c := crossEdges(); c != 0 {
		t.Fatalf("%d cross-side connections formed during the split", c)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("during split: %v", err)
	}

	// Run past the window end: the heal event fires and re-announces re-knit
	// the two halves.
	for s.round < 51 {
		s.Step()
	}
	obs.events = nil
	s.faultBeginRound(s.round, &obs)
	if f.partitionOn {
		t.Fatal("partition still on past its window")
	}
	if len(obs.events) != 1 || obs.events[0].Kind != "partition_heal" {
		t.Fatalf("heal events = %+v, want one partition_heal", obs.events)
	}
	// Both sides re-knit internally during the split, so everyone sits at the
	// tracker target; a wave of departures leaves survivors under-connected
	// and their fresh handouts must now bridge the former sides.
	for i, id := range append([]int32(nil), s.trk.present...) {
		if i%3 == 0 {
			s.Depart(int(id))
		}
	}
	healed := 0
	for i := 0; i < 5; i++ {
		healed += s.ReannounceUnderConnected(1)
		s.Step()
	}
	if healed == 0 {
		t.Fatal("no connections re-formed after the heal")
	}
	if c := crossEdges(); c == 0 {
		t.Fatal("overlay did not re-bridge the former sides after the heal")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

// eventRecorder keeps every observer event, in order.
type eventRecorder struct {
	events []RunEvent
}

func (r *eventRecorder) OnSample(SeriesPoint) {}
func (r *eventRecorder) OnEvent(ev RunEvent)  { r.events = append(r.events, ev) }
func (r *eventRecorder) OnDone(Metrics)       {}

// TestFaultSpecValidation mutates a valid faulted spec one field at a time
// and expects each mutation to be rejected with its precise field path.
func TestFaultSpecValidation(t *testing.T) {
	valid := func() ScenarioSpec {
		sp, err := NamedSpec("trackerdown", 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("fixture spec invalid: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*ScenarioSpec)
		wantErr string
	}{
		{"negative retry base", func(sp *ScenarioSpec) { sp.Faults.RetryBaseRounds = -1 },
			"faults.retry_base_rounds"},
		{"negative retry cap", func(sp *ScenarioSpec) { sp.Faults.RetryCapRounds = -2 },
			"faults.retry_cap_rounds"},
		{"cap below base", func(sp *ScenarioSpec) {
			sp.Faults.RetryBaseRounds = 8
			sp.Faults.RetryCapRounds = 4
		}, "cap 4 below base 8"},
		{"negative timeout", func(sp *ScenarioSpec) { sp.Faults.NeighborTimeoutRounds = -1 },
			"faults.neighbor_timeout_rounds"},
		{"start past horizon", func(sp *ScenarioSpec) { sp.Faults.Injections[0].Start = sp.Rounds },
			"injections[0].start"},
		{"negative start", func(sp *ScenarioSpec) { sp.Faults.Injections[0].Start = -5 },
			"injections[0].start"},
		{"negative window", func(sp *ScenarioSpec) { sp.Faults.Injections[0].Rounds = -1 },
			"injections[0].rounds"},
		{"outage without window", func(sp *ScenarioSpec) { sp.Faults.Injections[0].Rounds = 0 },
			"rounds >= 1"},
		{"outage with rate", func(sp *ScenarioSpec) { sp.Faults.Injections[0].Rate = 0.5 },
			"injections[0].rate"},
		{"outage with fraction", func(sp *ScenarioSpec) { sp.Faults.Injections[0].Fraction = 0.5 },
			"injections[0].fraction"},
		{"outage with include_seeds", func(sp *ScenarioSpec) { sp.Faults.Injections[0].IncludeSeeds = true },
			"injections[0].include_seeds"},
		{"loss rate zero", func(sp *ScenarioSpec) { sp.Faults.Injections[1].Rate = 0 },
			"injections[1].rate"},
		{"loss rate above one", func(sp *ScenarioSpec) { sp.Faults.Injections[1].Rate = 1.5 },
			"injections[1].rate"},
		{"missing kind", func(sp *ScenarioSpec) { sp.Faults.Injections[0].Kind = "" },
			"injections[0].kind"},
		{"unknown kind", func(sp *ScenarioSpec) { sp.Faults.Injections[0].Kind = "meteor" },
			`unknown kind "meteor"`},
		{"crash rate above one", func(sp *ScenarioSpec) {
			sp.Faults.Injections = []FaultSpec{{Kind: FaultCrash, Rate: 2}}
		}, "injections[0].rate"},
		{"partition fraction one", func(sp *ScenarioSpec) {
			sp.Faults.Injections = []FaultSpec{{Kind: FaultPartition, Rounds: 10, Fraction: 1}}
		}, "injections[0].fraction"},
		{"overlapping partitions", func(sp *ScenarioSpec) {
			sp.Faults.Injections = []FaultSpec{
				{Kind: FaultPartition, Start: 10, Rounds: 50, Fraction: 0.5},
				{Kind: FaultPartition, Start: 40, Rounds: 50, Fraction: 0.5},
			}
		}, "must be disjoint"},
		{"overlapping partitions out of order", func(sp *ScenarioSpec) {
			sp.Faults.Injections = []FaultSpec{
				{Kind: FaultPartition, Start: 40, Rounds: 50, Fraction: 0.5},
				{Kind: FaultCrash, Rate: 0.01},
				{Kind: FaultPartition, Start: 10, Rounds: 50, Fraction: 0.5},
			}
		}, "must be disjoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := valid()
			tc.mutate(&sp)
			err := sp.Validate()
			if err == nil {
				t.Fatal("mutation validated cleanly")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestZeroFaultsByteIdentical is the no-regression core of the fault layer:
// an empty faults block must normalize away, producing a run byte-identical
// to the same spec without the block — proof that arming the subsystem
// without injections perturbs no random stream.
func TestZeroFaultsByteIdentical(t *testing.T) {
	plain, err := NamedSpec("poisson", 31, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	zeroed := plain
	zeroed.Faults = &FaultsSpec{}
	if zeroed.HasFaults() {
		t.Fatal("a zero faults block must not count as faults")
	}
	run := func(sp ScenarioSpec) string {
		sc, err := sp.Compile()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", *res)
	}
	if a, b := run(plain), run(zeroed); a != b {
		t.Errorf("zero faults block changed the run:\nplain:  %.300s\nzeroed: %.300s", a, b)
	}
}

// TestFaultScenariosDeterministic: every fault catalog entry replays
// byte-identically for a fixed seed, and its spec JSON round-trips exactly.
func TestFaultScenariosDeterministic(t *testing.T) {
	for _, name := range FaultScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func() string {
				sc, err := NamedScenario(name, 77, 0.3)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sc.Run()
				if err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("%#v", *res)
			}
			if a, b := run(), run(); a != b {
				t.Errorf("run diverged for identical seeds:\n%.300s\n%.300s", a, b)
			}
			sp, err := NamedSpec(name, 77, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if !sp.HasFaults() {
				t.Fatal("fault catalog entry compiled without faults")
			}
			blob, err := json.Marshal(sp)
			if err != nil {
				t.Fatal(err)
			}
			back, err := ParseSpec(blob)
			if err != nil {
				t.Fatal(err)
			}
			blob2, err := json.Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if string(blob) != string(blob2) {
				t.Errorf("spec JSON not byte-stable:\n%s\n%s", blob, blob2)
			}
		})
	}
}

// TestFaultScenariosWatchdogClean runs every fault catalog entry with the
// per-round invariant watchdog armed — the strongest end-to-end check the
// layer has: every structural invariant holds on every round of every fault
// scenario.
func TestFaultScenariosWatchdogClean(t *testing.T) {
	for _, name := range FaultScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sp, err := NamedSpec(name, 5, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			sp.Faults.Watchdog = true
			sc, err := sp.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sc.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFaultedScenarioAllocs extends the streaming alloc pin to fault-laden
// runs: a crash-heavy scenario driven through a non-collecting observer must
// stay ≤ 1 amortized allocation per round — the crash queue, scratch buffer
// and retry arrays all recycle.
func TestFaultedScenarioAllocs(t *testing.T) {
	run := func(rounds int) func() {
		return func() {
			sc, err := NamedScenario("crashcrowd", 45, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			sc.Rounds = rounds
			sc.SampleEvery = 1
			// Keep the crash window open across both horizons so the long run
			// measures the per-round fault cost, not a quiet tail.
			sc.Faults.Injections[0].Start = 0
			sc.Faults.Injections[0].Rounds = 0
			var obs discardObserver
			if err := sc.RunObserver(&obs); err != nil {
				t.Fatal(err)
			}
		}
	}
	const short, long = 400, 1200
	base := testing.AllocsPerRun(3, run(short))
	grown := testing.AllocsPerRun(3, run(long))
	perRound := (grown - base) / float64(long-short)
	if perRound > 1 {
		t.Fatalf("faulted scenario allocates %.2f objects per round beyond warm-up, want ≤ 1 amortized (short %.0f, long %.0f)",
			perRound, base, grown)
	}
}
