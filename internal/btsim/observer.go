package btsim

import "stratmatch/internal/telemetry"

// Observer receives a scenario's output as the run produces it. The
// streaming contract:
//
//   - OnSample is called once per sampling round (every SampleEvery rounds,
//     plus the final round) with the SeriesPoint for that round. The point
//     is passed by value and the runner retains no reference — an observer
//     may keep it, aggregate it, or drop it. A non-collecting observer
//     holds a dense SampleEvery: 1 run over any horizon in O(1) memory;
//     the runner side allocates O(1) amortized per round
//     (TestScenarioObserverZeroAlloc pins this).
//   - OnEvent is called when a discrete scenario occurrence fires (see
//     RunEvent for the kinds). A "shock" is reported right after the mass
//     departure is applied, before that round's Step; "drained" is
//     reported at the end of the round that left the population at zero,
//     before that round's sample (if any).
//   - OnDone is called exactly once, after the last round, with the closing
//     roster snapshot (departed peers included). Metrics.Peers has one row
//     per peer that ever joined, so len(Peers) is the total-joined count.
//
// Calls arrive in round order from the goroutine running the scenario;
// observers need no locking of their own.
type Observer interface {
	OnSample(SeriesPoint)
	OnEvent(RunEvent)
	OnDone(Metrics)
}

// TelemetrySnapshot is a point-in-time flush of the run's telemetry
// recorder: cumulative counters, current gauges and per-phase duration
// histograms (see internal/telemetry).
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryObserver is the optional extension an Observer may implement to
// receive runtime telemetry. When the scenario has a Telemetry recorder
// attached and the observer implements this interface, OnTelemetry is
// called immediately after each OnSample (same round, same goroutine) with
// a fresh snapshot of the recorder. Observers that do not implement it —
// or runs without a recorder — see the exact same OnSample/OnEvent/OnDone
// stream either way: telemetry is read-only instrumentation and never
// changes simulation output.
type TelemetryObserver interface {
	Observer
	OnTelemetry(round int, snap TelemetrySnapshot)
}

// RunEvent is a discrete scenario occurrence reported to observers.
type RunEvent struct {
	// Round is the round at which the event fired.
	Round int `json:"round"`
	// Kind classifies the event:
	//   - "shock":          a scheduled Event mass departure fired
	//   - "drained":        the present population just reached zero
	//   - "tracker_down":   a tracker outage window opened
	//   - "tracker_up":     the tracker recovered
	//   - "partition":      a partition split the roster (Edges cross-side
	//     connections were severed)
	//   - "partition_heal": the active partition healed
	//   - "crash":          crash-stop failures killed Departed peers this
	//     round
	//   - "checkpoint":     a durable checkpoint was written at the end of
	//     this round (the file resumes from Round+1); emitted only after the
	//     file is safely on disk
	Kind string `json:"kind"`
	// Departed is the number of peers the event removed (shocks and
	// crashes).
	Departed int `json:"departed,omitempty"`
	// Edges is the number of connections the event severed (partitions).
	Edges int `json:"edges,omitempty"`
}

// seriesCollector is the Observer behind Scenario.Run: it materializes the
// whole series and the closing metrics into a ScenarioResult — the
// original, memory-O(rounds) contract, kept for callers that want the
// complete series in hand.
type seriesCollector struct {
	res ScenarioResult
}

func (c *seriesCollector) OnSample(pt SeriesPoint) {
	c.res.Series = append(c.res.Series, pt)
}

func (c *seriesCollector) OnEvent(ev RunEvent) {
	c.res.Events = append(c.res.Events, ev)
}

func (c *seriesCollector) OnDone(m Metrics) {
	c.res.Final = m
	c.res.TotalJoined = len(m.Peers)
	c.res.TotalDeparted = m.TotalDeparted
}
