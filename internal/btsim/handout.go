package btsim

import "stratmatch/internal/rng"

// HandoutState is the tracker-side view the neighbor handout policy samples
// from: a dense present-set supporting uniform indexing, plus the degree,
// reachability and wiring operations on peer ids. Swarm implements it over
// its CSR slot arrays (see swarmHandout); the service registry in
// internal/trackerd implements it over per-swarm adjacency lists. Both feed
// the same HandoutPolicy, so a served announce draws the exact RNG sequence
// an in-sim announce would.
type HandoutState interface {
	// PresentCount is the number of currently registered peers.
	PresentCount() int
	// PresentAt returns the id at index i of the present set (any fixed
	// order; the policy samples indices uniformly).
	PresentAt(i int) int32
	// DegreeOf returns a present peer's current connection count.
	DegreeOf(id int32) int
	// SameSide reports whether the tracker may introduce a to b (false
	// only while a network partition separates them).
	SameSide(a, b int32) bool
	// Connected reports whether a and b are already neighbors.
	Connected(a, b int32) bool
	// Connect wires a symmetric connection between a and b. The policy
	// guarantees a != b, headroom on both sides and no existing edge.
	Connect(a, b int32)
}

// HandoutPolicy is the tracker's seed-deterministic neighbor handout: the
// rejection-sampling selection loop extracted from Swarm.Announce so the
// in-sim tracker and the trackerd service registry share one policy.
// Handout consumes randomness only through r.Intn on the present count, in
// a fixed draw order, so two states exposing identical present sequences
// produce identical neighbor sets from identical RNG streams.
type HandoutPolicy struct {
	// NeighborCount is the degree the announcer is topped up to (incoming
	// introductions count towards it).
	NeighborCount int
	// MaxNeighbors caps any peer's degree: saturated candidates are
	// skipped and the announcer stops once it reaches the cap.
	MaxNeighbors int
}

// Handout hands peer id uniformly random present peers until it holds
// NeighborCount connections, skipping the announcer itself, unreachable
// (partitioned-off) peers, existing neighbors and peers at the degree cap.
// The attempt budget bounds rejection sampling in saturated swarms; the
// number of connections added is returned.
func (hp HandoutPolicy) Handout(st HandoutState, r *rng.RNG, id int32) int {
	deg := st.DegreeOf(id)
	need := hp.NeighborCount - deg
	// Every neighbor is present, so the announcer can add at most the
	// present peers it is not yet connected to — without this cap a peer
	// in a drained swarm would burn its whole attempt budget every
	// re-announce chasing an unreachable target.
	if achievable := st.PresentCount() - 1 - deg; need > achievable {
		need = achievable
	}
	if need <= 0 {
		return 0
	}
	added := 0
	// Rejection sampling with a bounded attempt budget: when most of the
	// swarm is already saturated the announcer settles for fewer neighbors
	// and retries at its next re-announce instead of spinning.
	for attempts := 16*need + 16; need > 0 && attempts > 0; attempts-- {
		if st.DegreeOf(id) >= hp.MaxNeighbors {
			break
		}
		cand := st.PresentAt(r.Intn(st.PresentCount()))
		if cand == id {
			continue
		}
		if !st.SameSide(id, cand) {
			continue // the tracker cannot reach across an active partition
		}
		if st.DegreeOf(cand) >= hp.MaxNeighbors || st.Connected(id, cand) {
			continue
		}
		st.Connect(id, cand)
		added++
		need--
	}
	return added
}

// swarmHandout adapts a Swarm to HandoutState. It is a type alias-style
// view over the same memory ((*swarmHandout)(s) is free), so delegating the
// announce loop through the shared policy adds no allocation.
type swarmHandout Swarm

func (h *swarmHandout) PresentCount() int     { return len(h.trk.present) }
func (h *swarmHandout) PresentAt(i int) int32 { return h.trk.present[i] }
func (h *swarmHandout) DegreeOf(id int32) int { return int(h.deg[h.peers[id].slot]) }

func (h *swarmHandout) SameSide(a, b int32) bool {
	if f := h.flt; f != nil && f.partitionOn {
		return f.side[h.peers[b].slot] == f.side[h.peers[a].slot]
	}
	return true
}

func (h *swarmHandout) Connected(a, b int32) bool {
	s := (*Swarm)(h)
	return s.hasEdge(&s.peers[a], int(b))
}

func (h *swarmHandout) Connect(a, b int32) {
	s := (*Swarm)(h)
	s.addEdge(&s.peers[a], &s.peers[b])
}

// Neighbors appends the ids of a present peer's current connections to dst
// and returns it (unchanged for departed or out-of-range ids). The order is
// CSR block order — wiring-history dependent — so callers comparing
// neighbor sets should sort.
func (s *Swarm) Neighbors(dst []int32, id int) []int32 {
	if id < 0 || id >= len(s.peers) || s.peers[id].departed || s.peers[id].slot < 0 {
		return dst
	}
	base, end := s.edges(id)
	return append(dst, s.nbr[base:end]...)
}
