package btsim

import (
	"testing"

	"stratmatch/internal/bandwidth"
	"stratmatch/internal/rng"
)

// TestStepZeroAllocSteadyState pins the engine's core guarantee: once a
// swarm is wired, Step never allocates — neither in the content-unlimited
// stratification regime nor while actively trading pieces.
func TestStepZeroAllocSteadyState(t *testing.T) {
	caps := bandwidth.RankBandwidths(bandwidth.Saroiu(), 80)
	perm := rng.New(1).Perm(80)
	shuffled := make([]float64, 80)
	for i, src := range perm {
		shuffled[i] = caps[src]
	}

	cases := []struct {
		name string
		opt  Options
	}{
		{"content-unlimited", Options{
			Leechers: 80, Pieces: 1, ContentUnlimited: true,
			UploadKbps: shuffled, NeighborCount: 12, Seed: 31,
		}},
		{"piece-trading", Options{
			Leechers: 60, Seeds: 2, Pieces: 64, PieceKbit: 2048,
			PostFlashCrowd: true, NeighborCount: 12, Seed: 32,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			s.Run(50) // get past the start-up transient
			if allocs := testing.AllocsPerRun(200, s.Step); allocs != 0 {
				t.Fatalf("Swarm.Step allocates %.1f objects per round, want 0", allocs)
			}
		})
	}
}

func BenchmarkStepContentUnlimited(b *testing.B) {
	s, err := New(Options{
		Leechers: 300, Pieces: 1, ContentUnlimited: true,
		NeighborCount: 20, Seed: 33,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Run(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepPieceTrading(b *testing.B) {
	s, err := New(Options{
		Leechers: 300, Seeds: 3, Pieces: 256, PieceKbit: 1 << 40, // pieces never finish: steady transfer load
		PostFlashCrowd: true, NeighborCount: 20, Seed: 34,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Run(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
