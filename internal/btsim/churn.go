package btsim

import (
	"math"

	"stratmatch/internal/rng"
)

// Arrivals is a pluggable peer-arrival process for dynamic swarms: the
// scenario runner asks it every round how many peers join. Implementations
// draw any randomness from the supplied deterministic source, so a scenario
// replays identically for a given seed.
type Arrivals interface {
	// Arrivals returns how many peers join at the given round.
	Arrivals(round int, r *rng.RNG) int
}

// PoissonArrivals models the steady-state regime measured by Guo et al.
// and assumed by fluid models of BitTorrent: peers arrive as a Poisson
// process with a constant expected rate per round.
type PoissonArrivals struct {
	// PerRound is the expected number of arrivals per round (λ).
	PerRound float64
}

// Arrivals draws a Poisson(PerRound) count via Knuth's product method —
// exact and allocation-free. Large rates are split into chunks of at most
// 32 and the independent chunk draws summed (a Poisson sum is Poisson), so
// e^−λ never underflows and the count stays exact at any rate.
func (p PoissonArrivals) Arrivals(_ int, r *rng.RNG) int {
	total := 0
	for lambda := p.PerRound; lambda > 0; lambda -= 32 {
		total += poissonKnuth(math.Min(lambda, 32), r)
	}
	return total
}

// poissonKnuth multiplies uniforms until the product drops below e^−λ;
// callers keep λ small enough that the limit is comfortably above the
// float64 underflow threshold.
func poissonKnuth(lambda float64, r *rng.RNG) int {
	limit := math.Exp(-lambda)
	k := 0
	prod := r.Float64()
	for prod > limit {
		k++
		prod *= r.Float64()
	}
	return k
}

// BurstArrivals models a flash crowd: Total peers arrive spread evenly over
// the Rounds rounds starting at Start, then arrivals stop.
type BurstArrivals struct {
	Start  int // first round of the burst
	Rounds int // burst duration (at least 1)
	Total  int // peers arriving over the whole burst
}

// Arrivals returns the deterministic per-round share of the burst.
func (b BurstArrivals) Arrivals(round int, _ *rng.RNG) int {
	if b.Total <= 0 || round < b.Start {
		return 0
	}
	d := b.Rounds
	if d < 1 {
		d = 1
	}
	i := round - b.Start
	if i >= d {
		return 0
	}
	// Cumulative-difference split keeps the total exact for any duration.
	return b.Total*(i+1)/d - b.Total*i/d
}

// TraceArrivals replays a recorded (or hand-written) arrival schedule:
// Counts[round] peers join at each round, zero beyond the trace.
type TraceArrivals struct {
	Counts []int
}

// Arrivals returns the trace entry for the round.
func (t TraceArrivals) Arrivals(round int, _ *rng.RNG) int {
	if round < 0 || round >= len(t.Counts) {
		return 0
	}
	return t.Counts[round]
}

// CombinedArrivals sums several arrival processes (e.g. a Poisson baseline
// plus a scheduled burst).
type CombinedArrivals []Arrivals

// Arrivals sums the component processes in order.
func (c CombinedArrivals) Arrivals(round int, r *rng.RNG) int {
	total := 0
	for _, a := range c {
		total += a.Arrivals(round, r)
	}
	return total
}

// Departures configures the peer-lifecycle departure rules a scenario
// applies after every round: leechers may abandon, and completed leechers
// (promoted to seeds) linger for a while before leaving — the
// leecher → seed → gone lifecycle of real swarms. The zero value is inert
// (nobody ever departs), mirroring a nil Arrivals. The struct is plain
// data; the tags are its ScenarioSpec wire names.
type Departures struct {
	// AbandonPerRound is the probability that a present, unfinished
	// leecher gives up in any given round.
	AbandonPerRound float64 `json:"abandon_per_round,omitempty"`
	// AbandonRankBias correlates abandonment with capacity: a leecher at
	// bandwidth-rank fraction q ∈ [0, 1] (0 = fastest present peer,
	// 1 = slowest) abandons with probability
	// AbandonPerRound · (1 + AbandonRankBias·q). Slow peers see crawling
	// downloads and give up more readily — the capacity-correlated
	// abandonment workload. 0 (the default) keeps abandonment uniform and
	// the random stream identical to earlier versions.
	AbandonRankBias float64 `json:"abandon_rank_bias,omitempty"`
	// SeedLingerRounds is how long a completed leecher stays seeding
	// before departing; values <= 0 mean finished peers never leave
	// (near-immediate departure is SeedLingerRounds: 1).
	SeedLingerRounds int `json:"seed_linger_rounds,omitempty"`
	// InitialSeedsStay exempts the initial seeds (and seeds added via
	// Join with asSeed) from the linger rule, keeping the content source
	// alive for the whole scenario.
	InitialSeedsStay bool `json:"initial_seeds_stay,omitempty"`
}

// applyDepartures runs one round of lifecycle departures. Candidates are
// collected first (departing mutates the tracker's present list), then
// departed in collection order; both passes iterate deterministic state
// with randomness only from r. The scratch buffer is reused across rounds
// so steady churn does not allocate. Returns the number of departures.
func (s *Swarm) applyDepartures(d Departures, r *rng.RNG, scratch *[]int32) int {
	if d.AbandonPerRound <= 0 && d.SeedLingerRounds <= 0 {
		return 0
	}
	s.flushJoinRanks() // the rank-biased draw below reads ranks
	// Rank-fraction denominator for capacity-correlated abandonment: ranks
	// of present peers span 0..present-1.
	rankScale := 1.0
	if d.AbandonRankBias != 0 && s.present > 1 {
		rankScale = 1 / float64(s.present-1)
	}
	leaving := (*scratch)[:0]
	for _, id := range s.trk.present {
		p := &s.peers[id]
		switch {
		case p.done:
			if d.SeedLingerRounds <= 0 || (d.InitialSeedsStay && p.isSeed) {
				continue
			}
			// Initial seeds and post-flash-crowd instant finishers have
			// doneRound 0 == joinRound; they linger from round 0 too. The
			// peer seeds for exactly SeedLingerRounds full rounds after
			// its completion round, then leaves.
			if s.round-p.doneRound >= d.SeedLingerRounds {
				leaving = append(leaving, id)
			}
		case d.AbandonPerRound > 0:
			prob := d.AbandonPerRound
			if d.AbandonRankBias != 0 {
				prob *= 1 + d.AbandonRankBias*float64(s.rank[p.id])*rankScale
			}
			if r.Bool(prob) {
				leaving = append(leaving, id)
			}
		}
	}
	*scratch = leaving
	for _, id := range leaving {
		s.Depart(int(id))
	}
	return len(leaving)
}

// massDepart removes a uniformly drawn fraction of the present population
// (seeds included only when includeSeeds is set) — the correlated-failure /
// content-death workload. Returns the number of departures.
func (s *Swarm) massDepart(fraction float64, includeSeeds bool, r *rng.RNG, scratch *[]int32) int {
	if fraction <= 0 {
		return 0
	}
	cands := (*scratch)[:0]
	for _, id := range s.trk.present {
		if !includeSeeds && s.peers[id].isSeed {
			continue
		}
		cands = append(cands, id)
	}
	count := int(fraction * float64(len(cands)))
	if fraction >= 1 {
		count = len(cands)
	}
	// Partial Fisher–Yates: the first count entries become a uniform
	// sample without replacement.
	for i := 0; i < count; i++ {
		j := i + r.Intn(len(cands)-i)
		cands[i], cands[j] = cands[j], cands[i]
	}
	*scratch = cands
	for _, id := range cands[:count] {
		s.Depart(int(id))
	}
	return count
}
