package btsim

import "math/bits"

// bitset is a fixed-size piece bitmap.
type bitset struct {
	words []uint64
	n     int
}

func newBitset(n int) bitset {
	return bitset{words: make([]uint64, (n+63)/64), n: n}
}

func (b bitset) has(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

func (b bitset) full() bool { return b.count() == b.n }

// clear resets every bit; recycled bitfields (see Swarm.havePool) are
// cleared before the next occupant uses them.
func (b bitset) clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

func (b bitset) setAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	// Clear padding bits beyond n.
	if extra := len(b.words)*64 - b.n; extra > 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= ^uint64(0) >> uint(extra)
	}
}

// countMissingIn counts the pieces other holds that b lacks — the initial
// value of the incremental interest counter want[e].
func (b bitset) countMissingIn(other bitset) int {
	total := 0
	for i, w := range b.words {
		total += bits.OnesCount64(other.words[i] &^ w)
	}
	return total
}

// anyMissingIn reports whether other holds at least one piece b lacks —
// i.e. whether b's owner is interested in other's owner.
func (b bitset) anyMissingIn(other bitset) bool {
	for i, w := range b.words {
		if other.words[i]&^w != 0 {
			return true
		}
	}
	return false
}
