package btsim

import (
	"math"
	"testing"

	"stratmatch/internal/bandwidth"
	"stratmatch/internal/rng"
	"stratmatch/internal/stats"
)

// recountCompletedLeechers recomputes the streaming counter from the roster.
func recountCompletedLeechers(s *Swarm) int {
	n := 0
	for i := range s.peers {
		if !s.peers[i].isSeed && s.peers[i].done {
			n++
		}
	}
	return n
}

// recountLiveDegSum recomputes the streaming degree sum from the present set.
func recountLiveDegSum(s *Swarm) int64 {
	var deg int64
	for _, id := range s.trk.present {
		deg += int64(s.deg[s.peers[id].slot])
	}
	return deg
}

// TestStreamingCountersMatchRecount drives a swarm through joins, steps and
// departures and checks the incrementally maintained metric counters against
// full recounts at every stage — the invariant the zero-alloc scenario
// sampler rests on.
func TestStreamingCountersMatchRecount(t *testing.T) {
	s, err := New(Options{
		Leechers: 30, Seeds: 2, Pieces: 16, PieceKbit: 256,
		NeighborCount: 8, MaxPeers: 90, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(42)
	check := func(round int) {
		t.Helper()
		if got, want := s.completedLeechers, recountCompletedLeechers(s); got != want {
			t.Fatalf("round %d: completedLeechers %d, recount %d", round, got, want)
		}
		if got, want := s.liveDegSum, recountLiveDegSum(s); got != want {
			t.Fatalf("round %d: liveDegSum %d, recount %d", round, got, want)
		}
	}
	check(0)
	for round := 0; round < 400; round++ {
		if r.Bool(0.1) {
			s.Join(100+900*r.Float64(), r.Bool(0.1))
		}
		s.Step()
		if r.Bool(0.05) && s.Present() > 4 {
			// Depart a random present peer.
			id := int(s.trk.present[r.Intn(len(s.trk.present))])
			s.Depart(id)
		}
		s.ReannounceUnderConnected(10)
		if round%25 == 0 {
			check(round)
		}
	}
	check(400)
}

// TestSeriesSamplerMatchesSnapshot cross-validates the streaming sampler
// against the allocation-heavy Snapshot on the same state: population
// counts, completions, mean degree and the stratification correlation must
// agree (the sampler feeds Pearson the same pairs, though in present-set
// order, so correlations match to float tolerance).
func TestSeriesSamplerMatchesSnapshot(t *testing.T) {
	sc, err := NamedScenario("massdepart", 7, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	sc.SampleEvery = 1
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := sc.Rounds; len(res.Series) != want {
		t.Fatalf("SampleEvery=1: %d samples for %d rounds", len(res.Series), want)
	}
	last := res.Series[len(res.Series)-1]
	m := res.Final
	if last.Present != m.Present || last.Seeds != m.PresentSeeds {
		t.Fatalf("population mismatch: series %+v, snapshot present %d seeds %d",
			last, m.Present, m.PresentSeeds)
	}
	if last.Completed != m.CompletedLeechers {
		t.Fatalf("completed: series %d, snapshot %d", last.Completed, m.CompletedLeechers)
	}
	// Recompute the final correlation Snapshot-style.
	var own, partner []float64
	for _, pm := range m.Peers {
		if !pm.IsSeed && !pm.Departed && !math.IsNaN(pm.MeanTFTPartnerRank) {
			own = append(own, float64(pm.Rank))
			partner = append(partner, pm.MeanTFTPartnerRank)
		}
	}
	want := stats.Pearson(own, partner)
	if math.IsNaN(want) != math.IsNaN(last.StratCorr) ||
		(!math.IsNaN(want) && math.Abs(want-last.StratCorr) > 1e-9) {
		t.Fatalf("strat correlation: series %v, snapshot-style %v", last.StratCorr, want)
	}
}

// discardObserver keeps only the latest sample — the O(1)-memory consumer
// the streaming API exists for.
type discardObserver struct {
	last    SeriesPoint
	samples int
}

func (d *discardObserver) OnSample(pt SeriesPoint) { d.last = pt; d.samples++ }
func (d *discardObserver) OnEvent(RunEvent)        {}
func (d *discardObserver) OnDone(Metrics)          {}

// TestScenarioObserverZeroAlloc extends the streaming pin to the whole
// scenario runner: a steady-churn run driven through a non-collecting
// observer at SampleEvery: 1 must stay O(1) amortized allocations per
// round. The cost is measured differentially — the same scenario at two
// horizons — so construction and warm-up allocations cancel and only the
// per-round tail is pinned.
func TestScenarioObserverZeroAlloc(t *testing.T) {
	run := func(rounds int) func() {
		return func() {
			sc, err := NamedScenario("poisson", 45, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			sc.Rounds = rounds
			sc.SampleEvery = 1
			var obs discardObserver
			if err := sc.RunObserver(&obs); err != nil {
				t.Fatal(err)
			}
			if obs.samples != rounds {
				t.Fatalf("observer saw %d samples for %d rounds", obs.samples, rounds)
			}
		}
	}
	const short, long = 400, 1200
	base := testing.AllocsPerRun(3, run(short))
	grown := testing.AllocsPerRun(3, run(long))
	perRound := (grown - base) / float64(long-short)
	if perRound > 1 {
		t.Fatalf("streaming scenario run allocates %.2f objects per round beyond warm-up, want ≤ 1 amortized (short %.0f, long %.0f)",
			perRound, base, grown)
	}
}

// TestScenarioStepSampleZeroAlloc pins the tentpole guarantee: stepping a
// churning swarm AND taking a time-series sample every round allocates
// nothing once the swarm is warm (the scenario runner's series append is the
// only amortized-O(1) cost on top).
func TestScenarioStepSampleZeroAlloc(t *testing.T) {
	caps := bandwidth.RankBandwidths(bandwidth.Saroiu(), 60)
	s, err := New(Options{
		Leechers: 58, Seeds: 2, Pieces: 32, PieceKbit: 512,
		PostFlashCrowd: true, NeighborCount: 10, UploadKbps: caps, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(60)
	sampler := seriesSampler{classes: newClassBounds(s)}
	var sink SeriesPoint
	if allocs := testing.AllocsPerRun(200, func() {
		s.Step()
		sink = sampler.sample(s)
	}); allocs != 0 {
		t.Fatalf("step+sample allocates %.2f objects per round, want 0", allocs)
	}
	_ = sink
}
