// Package btsim is a round-based BitTorrent swarm simulator: pieces and
// bitfields, rarest-first piece selection, Tit-for-Tat choking with an
// optimistic unchoke slot, and fair upload-capacity sharing.
//
// It is the empirical substrate for the paper's Section 6: the analytic
// model predicts stratification and share ratios from the stable-matching
// abstraction; the simulator lets us observe the same phenomena emerge from
// actual TFT protocol mechanics. The paper itself relies on external
// measurements (Bharambe et al.; Legout et al.) for this step — the
// simulator replaces those deployments (see DESIGN.md §5).
//
// Simulation time advances in rounds of one second. Capacities are in
// kbit/s and pieces have a size in kbit, so a peer with capacity c uploads
// c kbit per round, split equally among its active (unchoked and
// interested) transfer partners.
//
// # Engine layout
//
// The stepping hot path is allocation-free. All per-connection state lives
// in flat CSR-style arrays owned by the Swarm: edge e ∈ [off[i], off[i+1])
// runs from peer i to peer nbr[e], and rev[e] is the index of the opposite
// edge (the slot peer nbr[e] uses for i), built once at wiring time so no
// step ever searches a neighbor list. Interest (want) and piece rarity
// (avail) are maintained incrementally on piece completion and departure
// instead of rescanning bitfields. Candidate and active lists used by the
// choking and transfer logic are preallocated scratch buffers sized to the
// maximum degree.
package btsim

import (
	"fmt"
	"math/bits"

	"stratmatch/internal/rng"
)

// Options configures a swarm.
type Options struct {
	// Leechers is the number of downloading peers.
	Leechers int
	// Seeds is the number of initial seeds.
	Seeds int
	// Pieces is the number of pieces in the shared file.
	Pieces int
	// PieceKbit is the size of one piece in kbit.
	PieceKbit float64
	// UploadKbps maps each peer (leechers first, then seeds) to its upload
	// capacity. If nil, every peer gets 400 kbps.
	UploadKbps []float64
	// TFTSlots is the number of Tit-for-Tat unchoke slots (BitTorrent
	// default: 3).
	TFTSlots int
	// OptimisticSlots is the number of optimistic unchoke slots
	// (BitTorrent default: 1).
	OptimisticSlots int
	// ChokeIntervalRounds is how often the TFT slots are re-evaluated
	// (BitTorrent: every 10 s).
	ChokeIntervalRounds int
	// OptimisticIntervalRounds is how often the optimistic slot rotates
	// (BitTorrent: every 30 s).
	OptimisticIntervalRounds int
	// NeighborCount is the number of random neighbors the tracker hands
	// each peer (the paper's d).
	NeighborCount int
	// PostFlashCrowd starts every leecher with each piece independently
	// with probability 1/2, making content availability a non-issue — the
	// paper's post-flash-crowd assumption. When false, leechers start
	// empty (flash crowd).
	PostFlashCrowd bool
	// MetricsWarmupRounds excludes TFT partner decisions before this round
	// from the stratification metrics (the early intervals measure mixing
	// noise, not Tit-for-Tat preference).
	MetricsWarmupRounds int
	// ContentUnlimited switches the swarm to the paper's Section 6 regime:
	// content availability is never a bottleneck, every leecher is always
	// interested in every peer, and nobody finishes — only bandwidth and
	// Tit-for-Tat matter. Piece bookkeeping is bypassed; rates and totals
	// are still metered, making it the steady-state stratification probe.
	ContentUnlimited bool
	// Seed seeds the deterministic random source.
	Seed uint64
}

func (o *Options) withDefaults() Options {
	opt := *o
	if opt.TFTSlots == 0 {
		opt.TFTSlots = 3
	}
	if opt.OptimisticSlots == 0 {
		opt.OptimisticSlots = 1
	}
	if opt.ChokeIntervalRounds == 0 {
		opt.ChokeIntervalRounds = 10
	}
	if opt.OptimisticIntervalRounds == 0 {
		opt.OptimisticIntervalRounds = 30
	}
	if opt.NeighborCount == 0 {
		opt.NeighborCount = 20
	}
	if opt.PieceKbit == 0 {
		opt.PieceKbit = 2048 // 256 KiB pieces
	}
	return opt
}

// peer holds the per-peer scalar state. All per-connection and per-piece
// state lives in the Swarm's flat arrays (see the package comment).
type peer struct {
	id       int
	capacity float64
	isSeed   bool // initial seed: never downloads
	departed bool // left the swarm (failure injection)

	have      bitset
	haveCount int
	done      bool // has every piece (seed or finished leecher)
	doneRound int  // round at which the peer completed (-1 while leeching)

	// optimistic is the absolute edge index of the optimistic unchoke
	// (−1 if none).
	optimistic int32

	totalUp   float64
	totalDown float64
	// tftPartnerRankSum / tftPartnerCount accumulate the ranks of TFT
	// (non-optimistic) unchoke partners at each choke decision, for the
	// stratification metrics.
	tftPartnerRankSum float64
	tftPartnerCount   int
}

// Swarm is a running simulation. Create with New, advance with Run or Step.
type Swarm struct {
	opt   Options
	peers []peer
	r     *rng.RNG
	round int

	// rank[i] is peer i's global bandwidth rank (0 = fastest) among the
	// initial population; the stratification metrics compare partner ranks.
	rank []int

	// CSR edge state. Edge e ∈ [off[i], off[i+1]) runs from peer i to peer
	// nbr[e]; rev[e] is the opposite edge. Neighbor blocks are sorted by
	// peer id.
	off []int32
	nbr []int32
	rev []int32

	// recvWindow[e] is the kbit received along edge e during the current
	// choke interval; recvRate[e] is the rate measured over the previous
	// interval (the "last 10 seconds" of the TFT policy).
	recvWindow []float64
	recvRate   []float64
	// unchoked[e] reports whether the target of edge e currently holds one
	// of the owner's TFT slots.
	unchoked []bool
	// inflight[e] is the piece the owner of e currently streams from its
	// target (−1 when idle). Several connections may feed the same piece —
	// like BitTorrent's block-level parallel download — all contributing to
	// the shared pieceProgress, so overlap wastes nothing.
	inflight []int32
	// want[e] counts the pieces the target of e has that the owner lacks;
	// want[e] > 0 means the owner is interested in the target. Maintained
	// incrementally by completePiece.
	want []int32

	// avail[i*Pieces+p] counts how many of i's neighbors have piece p
	// (rarest-first input); pieceProgress[i*Pieces+p] is the accumulated
	// kbit towards piece p.
	avail         []int32
	pieceProgress []float64

	// Scratch buffers (sized to the maximum degree / piece count) reused by
	// every call on the stepping hot path — Step never allocates.
	candE    []int32
	candRate []float64
	active   []int32
	mark     []uint64 // pickPiece in-flight stamps, one per piece
	stamp    uint64
}

// New builds a swarm. Peer ids 0..Leechers-1 are leechers,
// Leechers..Leechers+Seeds-1 are seeds.
func New(o Options) (*Swarm, error) {
	opt := o.withDefaults()
	n := opt.Leechers + opt.Seeds
	switch {
	case opt.Leechers < 1:
		return nil, fmt.Errorf("btsim: %d leechers", opt.Leechers)
	case opt.Pieces < 1:
		return nil, fmt.Errorf("btsim: %d pieces", opt.Pieces)
	case opt.PieceKbit <= 0:
		return nil, fmt.Errorf("btsim: piece size %v", opt.PieceKbit)
	case opt.UploadKbps != nil && len(opt.UploadKbps) != n:
		return nil, fmt.Errorf("btsim: %d capacities for %d peers", len(opt.UploadKbps), n)
	case opt.NeighborCount < 1:
		return nil, fmt.Errorf("btsim: neighbor count %d", opt.NeighborCount)
	case opt.TFTSlots < 1:
		return nil, fmt.Errorf("btsim: %d TFT slots", opt.TFTSlots)
	}
	s := &Swarm{opt: opt, r: rng.New(opt.Seed), peers: make([]peer, n)}
	for i := 0; i < n; i++ {
		capKbps := 400.0
		if opt.UploadKbps != nil {
			capKbps = opt.UploadKbps[i]
		}
		p := &s.peers[i]
		p.id = i
		p.capacity = capKbps
		p.isSeed = i >= opt.Leechers
		p.have = newBitset(opt.Pieces)
		p.optimistic = -1
		p.doneRound = -1
		if p.isSeed {
			p.have.setAll()
			p.haveCount = opt.Pieces
			p.done = true
			p.doneRound = 0
		} else if opt.PostFlashCrowd {
			for piece := 0; piece < opt.Pieces; piece++ {
				if s.r.Bool(0.5) {
					p.have.set(piece)
					p.haveCount++
				}
			}
			if p.haveCount == opt.Pieces {
				p.done = true
				p.doneRound = 0
			}
		}
	}
	s.rank = bandwidthRanks(s.peers)
	s.wireNeighbors()
	return s, nil
}

// bandwidthRanks returns rank[i] = position of peer i when sorted by
// decreasing capacity (ties broken by id, keeping ranks strict).
func bandwidthRanks(peers []peer) []int {
	order := make([]int, len(peers))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by (capacity desc, id asc): population sizes are
	// simulation-scale and this avoids importing sort for a closure alloc
	// in the hot path. n log n vs n² is irrelevant at construction time.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := &peers[order[j-1]], &peers[order[j]]
			if a.capacity > b.capacity || (a.capacity == b.capacity && a.id < b.id) {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	rank := make([]int, len(peers))
	for pos, id := range order {
		rank[id] = pos
	}
	return rank
}

// wireNeighbors gives every peer NeighborCount random distinct neighbors
// (symmetric: if the tracker introduces a to b, both know each other) and
// builds the CSR edge arrays, reverse-edge tables, and the incremental
// interest and availability bookkeeping.
func (s *Swarm) wireNeighbors() {
	n := len(s.peers)
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{}, s.opt.NeighborCount*2)
	}
	for i := 0; i < n; i++ {
		for len(adj[i]) < s.opt.NeighborCount && len(adj[i]) < n-1 {
			j := s.r.Intn(n)
			if j == i {
				continue
			}
			adj[i][j] = struct{}{}
			adj[j][i] = struct{}{}
		}
	}

	// CSR offsets and sorted neighbor blocks.
	s.off = make([]int32, n+1)
	total := 0
	maxDeg := 0
	for i, set := range adj {
		s.off[i] = int32(total)
		total += len(set)
		if len(set) > maxDeg {
			maxDeg = len(set)
		}
	}
	s.off[n] = int32(total)
	s.nbr = make([]int32, total)
	for i, set := range adj {
		blk := s.nbr[s.off[i]:s.off[i+1]]
		k := 0
		for j := range set {
			blk[k] = int32(j)
			k++
		}
		// Deterministic order: sort ascending (insertion, small lists).
		for a := 1; a < len(blk); a++ {
			for b := a; b > 0 && blk[b-1] > blk[b]; b-- {
				blk[b-1], blk[b] = blk[b], blk[b-1]
			}
		}
	}

	// Reverse-edge table: rev[e] is j's edge back to i, located once by
	// binary search at wiring time so the hot paths never search.
	s.rev = make([]int32, total)
	for i := 0; i < n; i++ {
		for e := s.off[i]; e < s.off[i+1]; e++ {
			j := s.nbr[e]
			lo, hi := s.off[j], s.off[j+1]
			for lo < hi {
				mid := (lo + hi) / 2
				if s.nbr[mid] < int32(i) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			s.rev[e] = lo
		}
	}

	// Per-edge transfer state.
	s.recvWindow = make([]float64, total)
	s.recvRate = make([]float64, total)
	s.unchoked = make([]bool, total)
	s.inflight = make([]int32, total)
	for e := range s.inflight {
		s.inflight[e] = -1
	}

	// Interest and availability bookkeeping, seeded from the initial
	// bitfields and maintained incrementally afterwards.
	P := s.opt.Pieces
	s.want = make([]int32, total)
	s.avail = make([]int32, n*P)
	s.pieceProgress = make([]float64, n*P)
	for i := 0; i < n; i++ {
		p := &s.peers[i]
		base := i * P
		for e := s.off[i]; e < s.off[i+1]; e++ {
			q := &s.peers[s.nbr[e]]
			s.want[e] = int32(p.have.countMissingIn(q.have))
			for wi, w := range q.have.words {
				for w != 0 {
					piece := wi<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					s.avail[base+piece]++
				}
			}
		}
	}

	// Scratch buffers for the stepping hot path.
	s.candE = make([]int32, maxDeg)
	s.candRate = make([]float64, maxDeg)
	s.active = make([]int32, maxDeg)
	s.mark = make([]uint64, P)
}
