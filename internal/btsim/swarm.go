// Package btsim is a round-based BitTorrent swarm simulator: pieces and
// bitfields, rarest-first piece selection, Tit-for-Tat choking with an
// optimistic unchoke slot, and fair upload-capacity sharing.
//
// It is the empirical substrate for the paper's Section 6: the analytic
// model predicts stratification and share ratios from the stable-matching
// abstraction; the simulator lets us observe the same phenomena emerge from
// actual TFT protocol mechanics. The paper itself relies on external
// measurements (Bharambe et al.; Legout et al.) for this step — the
// simulator replaces those deployments (see DESIGN.md §5).
//
// Simulation time advances in rounds of one second. Capacities are in
// kbit/s and pieces have a size in kbit, so a peer with capacity c uploads
// c kbit per round, split equally among its active (unchoked and
// interested) transfer partners.
//
// # Engine layout
//
// The stepping hot path is allocation-free, and the swarm supports dynamic
// membership: peers join through the tracker (Join/Announce) and leave with
// Depart at any round, so churn scenarios (see scenario.go) can run
// arbitrary arrival and departure processes.
//
// Identity and wiring are separate. The roster s.peers is append-only —
// peer ids are stable forever and departed peers keep their totals for the
// metrics. Connection state lives in fixed-stride CSR slots: a present peer
// occupies slot sl and its edges are e ∈ [sl·edgeCap, sl·edgeCap+deg[sl]),
// giving every peer edge-capacity headroom so joins and departures are
// O(degree) swap-updates instead of rebuilds. Departed peers' slots go on a
// free list and are recycled (grown by doubling only when the concurrent
// population exceeds all past peaks). rev[e] is the index of the opposite
// edge, maintained across joins, departures and swap-deletes so no step
// ever searches a neighbor list. Interest (want) and piece rarity (avail,
// indexed by slot) are maintained incrementally on piece completion, edge
// addition and edge removal instead of rescanning bitfields. Candidate and
// active lists used by the choking and transfer logic are preallocated
// scratch buffers sized to the per-slot edge capacity.
package btsim

import (
	"fmt"
	"math/bits"

	"stratmatch/internal/rng"
	"stratmatch/internal/telemetry"
)

// Options configures a swarm. The struct is plain data and round-trips
// through JSON (the tags below are the ScenarioSpec wire names), so a
// swarm configuration can live in a serialized scenario description.
type Options struct {
	// Leechers is the number of downloading peers.
	Leechers int `json:"leechers"`
	// Seeds is the number of initial seeds.
	Seeds int `json:"seeds,omitempty"`
	// Pieces is the number of pieces in the shared file.
	Pieces int `json:"pieces"`
	// PieceKbit is the size of one piece in kbit.
	PieceKbit float64 `json:"piece_kbit,omitempty"`
	// UploadKbps maps each peer (leechers first, then seeds) to its upload
	// capacity. If nil, every peer gets 400 kbps.
	UploadKbps []float64 `json:"upload_kbps,omitempty"`
	// TFTSlots is the number of Tit-for-Tat unchoke slots (BitTorrent
	// default: 3).
	TFTSlots int `json:"tft_slots,omitempty"`
	// OptimisticSlots is the number of optimistic unchoke slots
	// (BitTorrent default: 1).
	OptimisticSlots int `json:"optimistic_slots,omitempty"`
	// ChokeIntervalRounds is how often the TFT slots are re-evaluated
	// (BitTorrent: every 10 s).
	ChokeIntervalRounds int `json:"choke_interval_rounds,omitempty"`
	// OptimisticIntervalRounds is how often the optimistic slot rotates
	// (BitTorrent: every 30 s).
	OptimisticIntervalRounds int `json:"optimistic_interval_rounds,omitempty"`
	// NeighborCount is the number of neighbors the tracker targets per peer
	// (the paper's d): Announce hands out peers until the announcer holds
	// this many connections.
	NeighborCount int `json:"neighbor_count,omitempty"`
	// MaxNeighbors caps a peer's degree (its CSR slot's edge capacity):
	// incoming introductions stop once a peer is this well-connected. 0
	// means 2·NeighborCount+8, mirroring the degree overshoot symmetric
	// wiring produces. Must be at least NeighborCount.
	MaxNeighbors int `json:"max_neighbors,omitempty"`
	// MaxPeers preallocates CSR slots for this many concurrent peers so
	// churn scenarios reach steady state without growth reallocation. 0
	// means the initial population; the swarm grows by doubling beyond
	// either value. ScenarioSpec.Compile replaces a zero with an estimate
	// of the arrival processes' expected peak.
	MaxPeers int `json:"max_peers,omitempty"`
	// PostFlashCrowd starts every leecher with each piece independently
	// with probability 1/2, making content availability a non-issue — the
	// paper's post-flash-crowd assumption. When false, leechers start
	// empty (flash crowd).
	PostFlashCrowd bool `json:"post_flash_crowd,omitempty"`
	// MetricsWarmupRounds excludes TFT partner decisions before this round
	// from the stratification metrics (the early intervals measure mixing
	// noise, not Tit-for-Tat preference).
	MetricsWarmupRounds int `json:"metrics_warmup_rounds,omitempty"`
	// ContentUnlimited switches the swarm to the paper's Section 6 regime:
	// content availability is never a bottleneck, every leecher is always
	// interested in every peer, and nobody finishes — only bandwidth and
	// Tit-for-Tat matter. Piece bookkeeping is bypassed; rates and totals
	// are still metered, making it the steady-state stratification probe.
	ContentUnlimited bool `json:"content_unlimited,omitempty"`
	// Seed seeds the deterministic random source.
	Seed uint64 `json:"seed,omitempty"`
}

func (o *Options) withDefaults() Options {
	opt := *o
	if opt.TFTSlots == 0 {
		opt.TFTSlots = 3
	}
	if opt.OptimisticSlots == 0 {
		opt.OptimisticSlots = 1
	}
	if opt.ChokeIntervalRounds == 0 {
		opt.ChokeIntervalRounds = 10
	}
	if opt.OptimisticIntervalRounds == 0 {
		opt.OptimisticIntervalRounds = 30
	}
	if opt.NeighborCount == 0 {
		opt.NeighborCount = 20
	}
	if opt.MaxNeighbors == 0 {
		opt.MaxNeighbors = 2*opt.NeighborCount + 8
	}
	if opt.PieceKbit == 0 {
		opt.PieceKbit = 2048 // 256 KiB pieces
	}
	return opt
}

// peer holds the per-peer scalar state. The roster is append-only: a peer
// keeps its id and statistics after departing. All per-connection and
// per-piece state lives in the Swarm's slot-indexed flat arrays (see the
// package comment).
type peer struct {
	id       int
	slot     int32 // CSR slot while present, −1 after departing
	capacity float64
	isSeed   bool // joined as a seed: never downloads
	departed bool // left the swarm
	// joinRound / departRound delimit the peer's presence (departRound is
	// −1 while the peer is in the swarm).
	joinRound   int
	departRound int

	have      bitset
	haveCount int
	done      bool // has every piece (seed or finished leecher)
	doneRound int  // round at which the peer completed (-1 while leeching)

	// optimistic is the absolute edge index of the optimistic unchoke
	// (−1 if none).
	optimistic int32

	totalUp   float64
	totalDown float64
	// tftPartnerRankSum / tftPartnerCount accumulate the ranks of TFT
	// (non-optimistic) unchoke partners at each choke decision, for the
	// stratification metrics.
	tftPartnerRankSum float64
	tftPartnerCount   int
}

// Swarm is a running simulation. Create with New, advance with Run or Step,
// change membership with Join and Depart.
type Swarm struct {
	opt   Options
	peers []peer // roster: every peer that ever joined, by id
	r     *rng.RNG
	round int

	// rank[id] is the peer's bandwidth rank (0 = fastest) among the peers
	// currently present, maintained incrementally on joins and departures;
	// a departed peer keeps the rank it held when it left. The
	// stratification metrics compare partner ranks.
	rank []int

	// Slot-based CSR edge state. A present peer in slot sl owns edges
	// e ∈ [sl·edgeCap, sl·edgeCap+deg[sl]); nbr[e] is the target's peer id
	// and rev[e] the opposite edge's index.
	edgeCap   int32
	slotCap   int
	slotPeer  []int32 // slot → occupant peer id, −1 when free
	freeSlots []int32 // stack of free slots
	deg       []int32 // slot → current degree

	nbr []int32
	rev []int32

	// recvWindow[e] is the kbit received along edge e during the current
	// choke interval; recvRate[e] is the rate measured over the previous
	// interval (the "last 10 seconds" of the TFT policy).
	recvWindow []float64
	recvRate   []float64
	// unchoked[e] reports whether the target of edge e currently holds one
	// of the owner's TFT slots.
	unchoked []bool
	// inflight[e] is the piece the owner of e currently streams from its
	// target (−1 when idle). Several connections may feed the same piece —
	// like BitTorrent's block-level parallel download — all contributing to
	// the shared pieceProgress, so overlap wastes nothing.
	inflight []int32
	// want[e] counts the pieces the target of e has that the owner lacks;
	// want[e] > 0 means the owner is interested in the target. Maintained
	// incrementally by completePiece, addEdge and removeEdgeHalf.
	want []int32

	// avail[sl*Pieces+p] counts how many neighbors of the peer in slot sl
	// have piece p (rarest-first input); pieceProgress[sl*Pieces+p] is the
	// accumulated kbit towards piece p.
	avail         []int32
	pieceProgress []float64

	// havePool recycles the piece bitfields of departed peers so steady
	// churn does not allocate.
	havePool []bitset

	// Membership counters. present includes promoted seeds; presentDone is
	// the present peers holding every piece (initial seeds + finished
	// leechers that have not departed).
	present       int
	presentDone   int
	totalDeparted int

	// Streaming metric counters, maintained incrementally so scenario
	// time-series sampling never rescans or allocates: completedLeechers
	// counts leechers that ever finished the file (departed ones included);
	// liveDegSum is Σ deg over present peers (two endpoints per edge).
	completedLeechers int
	liveDegSum        int64

	trk tracker

	// flt is the fault-injection state (see faults.go); nil on a fault-free
	// swarm, and every fault hook hides behind that nil check so the
	// fault-free path is byte-identical to earlier versions.
	flt *faultState

	// tel is the optional telemetry recorder (see internal/telemetry); nil
	// when telemetry is off, and every hook is a nil-receiver no-op, so the
	// disabled path stays allocation-free and byte-identical. Telemetry only
	// ever reads the wall clock — never the RNG or simulation state — so
	// enabling it cannot change any simulation output.
	tel *telemetry.Recorder

	// sumUp / sumDown are swarm-wide running transfer totals, maintained at
	// the two transfer sites so TotalUploaded/TotalDownloaded are O(1)
	// instead of roster scans.
	sumUp   float64
	sumDown float64

	// Scratch buffers (sized to the per-slot edge capacity / piece count)
	// reused by every call on the stepping hot path — Step never allocates.
	// (The choke candidate buffers live per worker in sh.scratch.)
	active []int32
	mark   []uint64 // pickPiece in-flight stamps, one per piece
	stamp  uint64

	// sh is the sharded, event-driven stepping state: shard geometry, the
	// per-shard RNG sub-streams, dirty bitmaps, per-slot active-transfer
	// caches and the optional persistent worker pool (see shard.go).
	sh shardState

	// stats is the engine-maintained incremental series sampler; nil
	// unless EnableSeriesStats armed it (see stats.go).
	stats *stratStats

	// pendingJoin / rankOrder / joinSort back the batched join-rank flush
	// (see rank.go): joins park here with rank −1 until the next rank read.
	pendingJoin []int32
	rankOrder   []int32
	joinSort    joinSorter
}

// New builds a swarm. Peer ids 0..Leechers-1 are leechers,
// Leechers..Leechers+Seeds-1 are seeds.
func New(o Options) (*Swarm, error) {
	opt := o.withDefaults()
	n := opt.Leechers + opt.Seeds
	switch {
	case opt.Leechers < 1:
		return nil, fmt.Errorf("btsim: %d leechers", opt.Leechers)
	case opt.Pieces < 1:
		return nil, fmt.Errorf("btsim: %d pieces", opt.Pieces)
	case opt.PieceKbit <= 0:
		return nil, fmt.Errorf("btsim: piece size %v", opt.PieceKbit)
	case opt.UploadKbps != nil && len(opt.UploadKbps) != n:
		return nil, fmt.Errorf("btsim: %d capacities for %d peers", len(opt.UploadKbps), n)
	case opt.NeighborCount < 1:
		return nil, fmt.Errorf("btsim: neighbor count %d", opt.NeighborCount)
	case opt.MaxNeighbors < opt.NeighborCount:
		return nil, fmt.Errorf("btsim: max neighbors %d below neighbor count %d",
			opt.MaxNeighbors, opt.NeighborCount)
	case opt.TFTSlots < 1:
		return nil, fmt.Errorf("btsim: %d TFT slots", opt.TFTSlots)
	}
	s := &Swarm{opt: opt, r: rng.New(opt.Seed), peers: make([]peer, n)}
	for i := 0; i < n; i++ {
		capKbps := 400.0
		if opt.UploadKbps != nil {
			capKbps = opt.UploadKbps[i]
		}
		p := &s.peers[i]
		p.id = i
		p.slot = int32(i)
		p.capacity = capKbps
		p.isSeed = i >= opt.Leechers
		p.have = newBitset(opt.Pieces)
		p.optimistic = -1
		p.doneRound = -1
		p.departRound = -1
		if p.isSeed {
			p.have.setAll()
			p.haveCount = opt.Pieces
			p.done = true
			p.doneRound = 0
		} else if opt.PostFlashCrowd {
			for piece := 0; piece < opt.Pieces; piece++ {
				if s.r.Bool(0.5) {
					p.have.set(piece)
					p.haveCount++
				}
			}
			if p.haveCount == opt.Pieces {
				p.done = true
				p.doneRound = 0
			}
		}
		if p.done {
			s.presentDone++
			if !p.isSeed {
				s.completedLeechers++ // post-flash-crowd instant finisher
			}
		}
	}
	s.present = n
	s.rank = bandwidthRanks(s.peers)

	// Slot arrays: the initial population occupies slots 0..n-1 (slot ==
	// id), the rest of the preallocation goes on the free stack.
	s.edgeCap = int32(opt.MaxNeighbors)
	s.slotCap = n
	if opt.MaxPeers > n {
		s.slotCap = opt.MaxPeers
	}
	s.slotPeer = make([]int32, s.slotCap)
	for sl := range s.slotPeer {
		s.slotPeer[sl] = -1
	}
	for i := 0; i < n; i++ {
		s.slotPeer[i] = int32(i)
	}
	s.freeSlots = make([]int32, 0, s.slotCap)
	for sl := s.slotCap - 1; sl >= n; sl-- {
		s.freeSlots = append(s.freeSlots, int32(sl))
	}
	s.deg = make([]int32, s.slotCap)

	total := s.slotCap * int(s.edgeCap)
	s.nbr = make([]int32, total)
	s.rev = make([]int32, total)
	s.recvWindow = make([]float64, total)
	s.recvRate = make([]float64, total)
	s.unchoked = make([]bool, total)
	s.inflight = make([]int32, total)
	s.want = make([]int32, total)
	s.avail = make([]int32, s.slotCap*opt.Pieces)
	s.pieceProgress = make([]float64, s.slotCap*opt.Pieces)

	s.active = make([]int32, s.edgeCap)
	s.mark = make([]uint64, opt.Pieces)
	s.rankOrder = make([]int32, s.slotCap)
	s.joinSort.s = s
	s.initShards()

	// Initial wiring goes through the tracker, exactly like later joins:
	// every peer registers, then announces in id order, topping its
	// neighborhood up to NeighborCount (incoming introductions count).
	s.trk.pos = make([]int32, 0, n)
	s.trk.present = make([]int32, 0, n)
	for i := 0; i < n; i++ {
		s.trackerRegister(i)
	}
	for i := 0; i < n; i++ {
		s.Announce(i)
	}
	return s, nil
}

// bandwidthRanks returns rank[i] = position of peer i when sorted by
// decreasing capacity (ties broken by id, keeping ranks strict).
func bandwidthRanks(peers []peer) []int {
	order := make([]int, len(peers))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by (capacity desc, id asc): population sizes are
	// simulation-scale and this avoids importing sort for a closure alloc
	// in the hot path. n log n vs n² is irrelevant at construction time.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := &peers[order[j-1]], &peers[order[j]]
			if a.capacity > b.capacity || (a.capacity == b.capacity && a.id < b.id) {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	rank := make([]int, len(peers))
	for pos, id := range order {
		rank[id] = pos
	}
	return rank
}

// edges returns the live edge range [base, end) of a present peer.
func (s *Swarm) edges(id int) (base, end int32) {
	sl := s.peers[id].slot
	base = sl * s.edgeCap
	return base, base + s.deg[sl]
}

// SetTelemetry attaches a telemetry recorder to the swarm (nil detaches).
// Recording only reads the wall clock, so attaching a recorder never
// perturbs RNG streams or simulation outputs.
func (s *Swarm) SetTelemetry(tel *telemetry.Recorder) { s.tel = tel }

// Present returns the number of peers currently in the swarm.
func (s *Swarm) Present() int { return s.present }

// PresentSeeds returns the present peers holding the complete file:
// initial seeds plus leechers promoted on completion.
func (s *Swarm) PresentSeeds() int { return s.presentDone }

// PresentLeechers returns the present peers still downloading.
func (s *Swarm) PresentLeechers() int { return s.present - s.presentDone }

// TotalJoined returns the number of peers that ever joined (the roster
// size); peer ids run 0..TotalJoined()-1.
func (s *Swarm) TotalJoined() int { return len(s.peers) }

// TotalDeparted returns the number of peers that have left.
func (s *Swarm) TotalDeparted() int { return s.totalDeparted }

// Degree returns the current connection count of a peer (0 if departed or
// out of range).
func (s *Swarm) Degree(id int) int {
	if id < 0 || id >= len(s.peers) || s.peers[id].departed {
		return 0
	}
	return int(s.deg[s.peers[id].slot])
}

// Join adds a new peer mid-simulation: it takes a recycled (or new) CSR
// slot, registers with the tracker, and announces to receive an initial
// neighbor handout. A seed joins with the full piece set; a leecher joins
// empty (newcomers have nothing — the post-flash-crowd head start only
// applies to the initial population). The new peer's id is returned.
func (s *Swarm) Join(capacityKbps float64, asSeed bool) int {
	id := len(s.peers)
	sl := s.allocSlot()
	var bs bitset
	if k := len(s.havePool); k > 0 {
		bs = s.havePool[k-1]
		s.havePool = s.havePool[:k-1]
		bs.clear()
	} else {
		bs = newBitset(s.opt.Pieces)
	}
	s.peers = append(s.peers, peer{
		id:          id,
		slot:        sl,
		capacity:    capacityKbps,
		have:        bs,
		isSeed:      asSeed,
		optimistic:  -1,
		doneRound:   -1,
		departRound: -1,
		joinRound:   s.round,
	})
	p := &s.peers[id]
	if asSeed {
		p.have.setAll()
		p.haveCount = s.opt.Pieces
		p.done = true
		p.doneRound = s.round
		s.presentDone++
	}
	s.slotPeer[sl] = int32(id)
	s.present++
	if s.flt != nil {
		s.flt.slotJoined(sl)
	}
	s.slotRecycled(int(sl))
	if s.stats != nil {
		s.stats.initSlot(int(sl), capacityKbps)
	}

	// Rank assignment is deferred: the newcomer parks on the pending list
	// with rank −1 and the batch merges in before the next rank read (see
	// rank.go) — O(present + k·log k) per flash-crowd round instead of
	// O(k·present).
	s.rank = append(s.rank, -1)
	s.pendingJoin = append(s.pendingJoin, int32(id))

	s.tel.Inc(telemetry.CtrJoins)
	s.trackerRegister(id)
	s.Announce(id)
	return id
}

// allocSlot pops a free CSR slot, doubling the slot arrays when the
// concurrent population exceeds every past peak.
func (s *Swarm) allocSlot() int32 {
	if len(s.freeSlots) == 0 {
		s.grow()
	}
	sl := s.freeSlots[len(s.freeSlots)-1]
	s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
	return sl
}

// grown copies a into a fresh zero-tailed slice of length n.
func grown[T any](a []T, n int) []T {
	b := make([]T, n)
	copy(b, a)
	return b
}

// grow doubles the slot capacity. Edge indices are preserved: the stride
// edgeCap is fixed, so existing blocks copy verbatim and rev stays valid.
func (s *Swarm) grow() {
	old := s.slotCap
	s.slotCap *= 2
	total := s.slotCap * int(s.edgeCap)

	s.nbr = grown(s.nbr, total)
	s.rev = grown(s.rev, total)
	s.inflight = grown(s.inflight, total)
	s.want = grown(s.want, total)
	s.recvWindow = grown(s.recvWindow, total)
	s.recvRate = grown(s.recvRate, total)
	s.unchoked = grown(s.unchoked, total)

	s.avail = grown(s.avail, s.slotCap*s.opt.Pieces)
	s.pieceProgress = grown(s.pieceProgress, s.slotCap*s.opt.Pieces)

	s.deg = grown(s.deg, s.slotCap)
	s.slotPeer = grown(s.slotPeer, s.slotCap)
	for sl := old; sl < s.slotCap; sl++ {
		s.slotPeer[sl] = -1
	}
	for sl := s.slotCap - 1; sl >= old; sl-- {
		s.freeSlots = append(s.freeSlots, int32(sl))
	}
	if s.flt != nil {
		s.flt.growFaults(s.slotCap)
	}
	s.rankOrder = grown(s.rankOrder, s.slotCap)
	if s.stats != nil {
		s.stats.grow(s.slotCap)
	}
	s.resizeShards()
}

// addEdge wires a symmetric connection between two present peers, seeding
// the per-edge transfer state and the incremental interest and availability
// counters. Callers guarantee headroom on both sides and no existing edge.
func (s *Swarm) addEdge(a, b *peer) {
	asl, bsl := a.slot, b.slot
	ea := asl*s.edgeCap + s.deg[asl]
	eb := bsl*s.edgeCap + s.deg[bsl]
	s.nbr[ea], s.nbr[eb] = int32(b.id), int32(a.id)
	s.rev[ea], s.rev[eb] = eb, ea
	s.recvWindow[ea], s.recvWindow[eb] = 0, 0
	s.recvRate[ea], s.recvRate[eb] = 0, 0
	s.unchoked[ea], s.unchoked[eb] = false, false
	s.inflight[ea], s.inflight[eb] = -1, -1
	s.want[ea] = int32(a.have.countMissingIn(b.have))
	s.want[eb] = int32(b.have.countMissingIn(a.have))
	s.availAdd(asl, b.have)
	s.availAdd(bsl, a.have)
	s.deg[asl]++
	s.deg[bsl]++
	s.liveDegSum += 2
	s.markEdgeTouched(asl)
	s.markEdgeTouched(bsl)
}

// removeEdgeHalf deletes edge er from q's block by swapping the block's
// last edge into its place and fixing the moved edge's reverse pointer (and
// q's optimistic slot, if it referenced either edge).
func (s *Swarm) removeEdgeHalf(q *peer, er int32) {
	qsl := q.slot
	last := qsl*s.edgeCap + s.deg[qsl] - 1
	if q.optimistic == er {
		q.optimistic = -1
	}
	if er != last {
		s.nbr[er] = s.nbr[last]
		s.rev[er] = s.rev[last]
		s.recvWindow[er] = s.recvWindow[last]
		s.recvRate[er] = s.recvRate[last]
		s.unchoked[er] = s.unchoked[last]
		s.inflight[er] = s.inflight[last]
		s.want[er] = s.want[last]
		s.rev[s.rev[last]] = er
		if q.optimistic == last {
			q.optimistic = er
		}
	}
	s.deg[qsl]--
	// liveDegSum tracks present peers only; a crashed peer's halves left
	// the sum when it crashed, so unwiring them later must not re-subtract.
	if !q.departed {
		s.liveDegSum--
	}
	s.markEdgeTouched(qsl)
}

// hasEdge reports whether peer a already has a connection to peer id b.
func (s *Swarm) hasEdge(a *peer, b int) bool {
	base := a.slot * s.edgeCap
	for e := base; e < base+s.deg[a.slot]; e++ {
		if s.nbr[e] == int32(b) {
			return true
		}
	}
	return false
}

// availAdd counts b's pieces into slot sl's availability (iterating only
// the set bits).
func (s *Swarm) availAdd(sl int32, b bitset) {
	base := int(sl) * s.opt.Pieces
	for wi, w := range b.words {
		for w != 0 {
			piece := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			s.avail[base+piece]++
		}
	}
}

// availSub removes b's pieces from slot sl's availability.
func (s *Swarm) availSub(sl int32, b bitset) {
	base := int(sl) * s.opt.Pieces
	for wi, w := range b.words {
		for w != 0 {
			piece := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			s.avail[base+piece]--
		}
	}
}
