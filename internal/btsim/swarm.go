// Package btsim is a round-based BitTorrent swarm simulator: pieces and
// bitfields, rarest-first piece selection, Tit-for-Tat choking with an
// optimistic unchoke slot, and fair upload-capacity sharing.
//
// It is the empirical substrate for the paper's Section 6: the analytic
// model predicts stratification and share ratios from the stable-matching
// abstraction; the simulator lets us observe the same phenomena emerge from
// actual TFT protocol mechanics. The paper itself relies on external
// measurements (Bharambe et al.; Legout et al.) for this step — the
// simulator replaces those deployments (see DESIGN.md §5).
//
// Simulation time advances in rounds of one second. Capacities are in
// kbit/s and pieces have a size in kbit, so a peer with capacity c uploads
// c kbit per round, split equally among its active (unchoked and
// interested) transfer partners.
package btsim

import (
	"fmt"

	"stratmatch/internal/rng"
)

// Options configures a swarm.
type Options struct {
	// Leechers is the number of downloading peers.
	Leechers int
	// Seeds is the number of initial seeds.
	Seeds int
	// Pieces is the number of pieces in the shared file.
	Pieces int
	// PieceKbit is the size of one piece in kbit.
	PieceKbit float64
	// UploadKbps maps each peer (leechers first, then seeds) to its upload
	// capacity. If nil, every peer gets 400 kbps.
	UploadKbps []float64
	// TFTSlots is the number of Tit-for-Tat unchoke slots (BitTorrent
	// default: 3).
	TFTSlots int
	// OptimisticSlots is the number of optimistic unchoke slots
	// (BitTorrent default: 1).
	OptimisticSlots int
	// ChokeIntervalRounds is how often the TFT slots are re-evaluated
	// (BitTorrent: every 10 s).
	ChokeIntervalRounds int
	// OptimisticIntervalRounds is how often the optimistic slot rotates
	// (BitTorrent: every 30 s).
	OptimisticIntervalRounds int
	// NeighborCount is the number of random neighbors the tracker hands
	// each peer (the paper's d).
	NeighborCount int
	// PostFlashCrowd starts every leecher with each piece independently
	// with probability 1/2, making content availability a non-issue — the
	// paper's post-flash-crowd assumption. When false, leechers start
	// empty (flash crowd).
	PostFlashCrowd bool
	// MetricsWarmupRounds excludes TFT partner decisions before this round
	// from the stratification metrics (the early intervals measure mixing
	// noise, not Tit-for-Tat preference).
	MetricsWarmupRounds int
	// ContentUnlimited switches the swarm to the paper's Section 6 regime:
	// content availability is never a bottleneck, every leecher is always
	// interested in every peer, and nobody finishes — only bandwidth and
	// Tit-for-Tat matter. Piece bookkeeping is bypassed; rates and totals
	// are still metered, making it the steady-state stratification probe.
	ContentUnlimited bool
	// Seed seeds the deterministic random source.
	Seed uint64
}

func (o *Options) withDefaults() Options {
	opt := *o
	if opt.TFTSlots == 0 {
		opt.TFTSlots = 3
	}
	if opt.OptimisticSlots == 0 {
		opt.OptimisticSlots = 1
	}
	if opt.ChokeIntervalRounds == 0 {
		opt.ChokeIntervalRounds = 10
	}
	if opt.OptimisticIntervalRounds == 0 {
		opt.OptimisticIntervalRounds = 30
	}
	if opt.NeighborCount == 0 {
		opt.NeighborCount = 20
	}
	if opt.PieceKbit == 0 {
		opt.PieceKbit = 2048 // 256 KiB pieces
	}
	return opt
}

type peer struct {
	id       int
	capacity float64
	isSeed   bool // initial seed: never downloads
	departed bool // left the swarm (failure injection)

	have      bitset
	haveCount int
	done      bool // has every piece (seed or finished leecher)
	doneRound int  // round at which the peer completed (-1 while leeching)

	neighbors []int
	// recvWindow[k] is the kbit received from neighbors[k] during the
	// current choke interval; recvRate[k] is the rate measured over the
	// previous interval (the "last 10 seconds" of the TFT policy).
	recvWindow []float64
	recvRate   []float64

	// unchoked[k] reports whether neighbors[k] currently holds one of our
	// TFT slots; optimistic is the index into neighbors of the optimistic
	// unchoke (−1 if none).
	unchoked   []bool
	optimistic int

	// inflight[k] is the piece currently streamed from neighbors[k]
	// (−1 when idle). Several connections may feed the same piece — like
	// BitTorrent's block-level parallel download — all contributing to the
	// shared pieceProgress, so overlap wastes nothing.
	inflight []int
	// pieceProgress[p] is the accumulated kbit towards piece p.
	pieceProgress []float64

	// avail[p] counts how many neighbors have piece p (rarest-first input).
	avail []int

	totalUp   float64
	totalDown float64
	// tftPartnerRankSum / tftPartnerCount accumulate the ranks of TFT
	// (non-optimistic) unchoke partners at each choke decision, for the
	// stratification metrics.
	tftPartnerRankSum float64
	tftPartnerCount   int
}

// Swarm is a running simulation. Create with New, advance with Run or Step.
type Swarm struct {
	opt    Options
	peers  []*peer
	r      *rng.RNG
	round  int
	nextID int

	// rank[i] is peer i's global bandwidth rank (0 = fastest) among the
	// initial population; the stratification metrics compare partner ranks.
	rank []int
}

// New builds a swarm. Peer ids 0..Leechers-1 are leechers,
// Leechers..Leechers+Seeds-1 are seeds.
func New(o Options) (*Swarm, error) {
	opt := o.withDefaults()
	n := opt.Leechers + opt.Seeds
	switch {
	case opt.Leechers < 1:
		return nil, fmt.Errorf("btsim: %d leechers", opt.Leechers)
	case opt.Pieces < 1:
		return nil, fmt.Errorf("btsim: %d pieces", opt.Pieces)
	case opt.PieceKbit <= 0:
		return nil, fmt.Errorf("btsim: piece size %v", opt.PieceKbit)
	case opt.UploadKbps != nil && len(opt.UploadKbps) != n:
		return nil, fmt.Errorf("btsim: %d capacities for %d peers", len(opt.UploadKbps), n)
	case opt.NeighborCount < 1:
		return nil, fmt.Errorf("btsim: neighbor count %d", opt.NeighborCount)
	case opt.TFTSlots < 1:
		return nil, fmt.Errorf("btsim: %d TFT slots", opt.TFTSlots)
	}
	s := &Swarm{opt: opt, r: rng.New(opt.Seed), peers: make([]*peer, 0, n)}
	for i := 0; i < n; i++ {
		capKbps := 400.0
		if opt.UploadKbps != nil {
			capKbps = opt.UploadKbps[i]
		}
		p := &peer{
			id:            i,
			capacity:      capKbps,
			isSeed:        i >= opt.Leechers,
			have:          newBitset(opt.Pieces),
			avail:         make([]int, opt.Pieces),
			pieceProgress: make([]float64, opt.Pieces),
			optimistic:    -1,
			doneRound:     -1,
		}
		if p.isSeed {
			p.have.setAll()
			p.haveCount = opt.Pieces
			p.done = true
			p.doneRound = 0
		} else if opt.PostFlashCrowd {
			for piece := 0; piece < opt.Pieces; piece++ {
				if s.r.Bool(0.5) {
					p.have.set(piece)
					p.haveCount++
				}
			}
			if p.haveCount == opt.Pieces {
				p.done = true
				p.doneRound = 0
			}
		}
		s.peers = append(s.peers, p)
	}
	s.rank = bandwidthRanks(s.peers)
	s.wireNeighbors()
	return s, nil
}

// bandwidthRanks returns rank[i] = position of peer i when sorted by
// decreasing capacity (ties broken by id, keeping ranks strict).
func bandwidthRanks(peers []*peer) []int {
	order := make([]int, len(peers))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by (capacity desc, id asc): population sizes are
	// simulation-scale and this avoids importing sort for a closure alloc
	// in the hot path. n log n vs n² is irrelevant at construction time.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := peers[order[j-1]], peers[order[j]]
			if a.capacity > b.capacity || (a.capacity == b.capacity && a.id < b.id) {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	rank := make([]int, len(peers))
	for pos, id := range order {
		rank[id] = pos
	}
	return rank
}

// wireNeighbors gives every peer NeighborCount random distinct neighbors
// (symmetric: if the tracker introduces a to b, both know each other).
func (s *Swarm) wireNeighbors() {
	n := len(s.peers)
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{}, s.opt.NeighborCount*2)
	}
	for i := 0; i < n; i++ {
		for len(adj[i]) < s.opt.NeighborCount && len(adj[i]) < n-1 {
			j := s.r.Intn(n)
			if j == i {
				continue
			}
			adj[i][j] = struct{}{}
			adj[j][i] = struct{}{}
		}
	}
	for i, set := range adj {
		p := s.peers[i]
		p.neighbors = make([]int, 0, len(set))
		for j := range set {
			p.neighbors = append(p.neighbors, j)
		}
		// Deterministic order: sort ascending (insertion, small lists).
		for a := 1; a < len(p.neighbors); a++ {
			for b := a; b > 0 && p.neighbors[b-1] > p.neighbors[b]; b-- {
				p.neighbors[b-1], p.neighbors[b] = p.neighbors[b], p.neighbors[b-1]
			}
		}
		k := len(p.neighbors)
		p.recvWindow = make([]float64, k)
		p.recvRate = make([]float64, k)
		p.unchoked = make([]bool, k)
		p.inflight = make([]int, k)
		for idx := range p.inflight {
			p.inflight[idx] = -1
		}
		for _, j := range p.neighbors {
			q := s.peers[j]
			for piece := 0; piece < s.opt.Pieces; piece++ {
				if q.have.has(piece) {
					p.avail[piece]++
				}
			}
		}
	}
}
