package btsim

import (
	"fmt"
	"math"
	"testing"

	"stratmatch/internal/rng"
)

// checkInvariants cross-checks the dynamic CSR engine's structural
// invariants from scratch: slot/roster consistency, reverse-edge
// involution, symmetric single edges between present peers only, and the
// incremental want/avail counters against full bitfield recounts.
func checkInvariants(t *testing.T, s *Swarm, stage string) {
	t.Helper()
	s.flushJoinRanks() // ranks are batch-assigned; the audit below reads them
	P := s.opt.Pieces

	// Roster ↔ slot ↔ tracker consistency.
	present := 0
	for i := range s.peers {
		p := &s.peers[i]
		if p.departed {
			if p.slot != -1 {
				t.Fatalf("%s: departed peer %d keeps slot %d", stage, p.id, p.slot)
			}
			if s.trk.pos[p.id] != -1 {
				t.Fatalf("%s: departed peer %d still registered", stage, p.id)
			}
			continue
		}
		present++
		if p.slot < 0 || int(p.slot) >= s.slotCap || s.slotPeer[p.slot] != int32(p.id) {
			t.Fatalf("%s: peer %d slot mapping broken (slot %d)", stage, p.id, p.slot)
		}
		if got := s.trk.present[s.trk.pos[p.id]]; got != int32(p.id) {
			t.Fatalf("%s: tracker position of peer %d points at %d", stage, p.id, got)
		}
	}
	if present != s.present || present != len(s.trk.present) {
		t.Fatalf("%s: present count %d, counter %d, tracker %d",
			stage, present, s.present, len(s.trk.present))
	}
	if len(s.freeSlots)+present != s.slotCap {
		t.Fatalf("%s: %d free slots + %d present != %d slots",
			stage, len(s.freeSlots), present, s.slotCap)
	}
	for _, sl := range s.freeSlots {
		if s.deg[sl] != 0 || s.slotPeer[sl] != -1 {
			t.Fatalf("%s: free slot %d has degree %d, occupant %d",
				stage, sl, s.deg[sl], s.slotPeer[sl])
		}
		for piece := 0; piece < P; piece++ {
			if s.avail[int(sl)*P+piece] != 0 || s.pieceProgress[int(sl)*P+piece] != 0 {
				t.Fatalf("%s: free slot %d has residual avail/progress at piece %d",
					stage, sl, piece)
			}
		}
	}

	// Present ranks form a permutation of 0..present-1.
	seen := make([]bool, present)
	for _, id := range s.trk.present {
		r := s.rank[id]
		if r < 0 || r >= present || seen[r] {
			t.Fatalf("%s: present ranks are not a permutation (peer %d rank %d)", stage, id, r)
		}
		seen[r] = true
	}

	// Edge structure and incremental counters.
	for _, id := range s.trk.present {
		p := &s.peers[id]
		if s.deg[p.slot] > s.edgeCap {
			t.Fatalf("%s: peer %d degree %d over capacity %d",
				stage, p.id, s.deg[p.slot], s.edgeCap)
		}
		base, end := s.edges(p.id)
		recount := make([]int32, P)
		for e := base; e < end; e++ {
			q := &s.peers[s.nbr[e]]
			if q.departed {
				t.Fatalf("%s: peer %d wired to departed peer %d", stage, p.id, q.id)
			}
			if q.id == p.id {
				t.Fatalf("%s: peer %d has a self edge", stage, p.id)
			}
			for e2 := base; e2 < e; e2++ {
				if s.nbr[e2] == s.nbr[e] {
					t.Fatalf("%s: duplicate edge %d→%d", stage, p.id, q.id)
				}
			}
			er := s.rev[e]
			qb, qe := s.edges(q.id)
			if er < qb || er >= qe {
				t.Fatalf("%s: rev[%d→%d] outside the neighbor's live block", stage, p.id, q.id)
			}
			if s.nbr[er] != int32(p.id) || s.rev[er] != e {
				t.Fatalf("%s: rev involution broken on %d→%d", stage, p.id, q.id)
			}
			if got, want := s.want[e], int32(p.have.countMissingIn(q.have)); got != want {
				t.Fatalf("%s: want[%d→%d] = %d, recount %d", stage, p.id, q.id, got, want)
			}
			for piece := 0; piece < P; piece++ {
				if q.have.has(piece) {
					recount[piece]++
				}
			}
		}
		if p.optimistic >= 0 && (p.optimistic < base || p.optimistic >= end) {
			t.Fatalf("%s: peer %d optimistic edge %d outside its block", stage, p.id, p.optimistic)
		}
		abase := int(p.slot) * P
		for piece := 0; piece < P; piece++ {
			if got := s.avail[abase+piece]; got != recount[piece] {
				t.Fatalf("%s: avail[peer %d, piece %d] = %d, recount %d",
					stage, p.id, piece, got, recount[piece])
			}
		}
	}
}

func checkConservation(t *testing.T, s *Swarm, stage string) {
	t.Helper()
	up, down := s.TotalUploaded(), s.TotalDownloaded()
	if math.Abs(up-down) > 1e-6*math.Max(1, up) {
		t.Fatalf("%s: conservation violated: uploaded %v, downloaded %v", stage, up, down)
	}
}

// TestInterleavedJoinDepartInvariants drives the engine through a random
// interleaving of joins, departures and stepping — including slot-array
// growth past MaxPeers — and recounts every incremental structure from
// scratch along the way.
func TestInterleavedJoinDepartInvariants(t *testing.T) {
	s, err := New(Options{
		Leechers: 12, Seeds: 2, Pieces: 24, PieceKbit: 256,
		NeighborCount: 6, MaxPeers: 16, // force grow() under the join load
		Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, s, "initial")
	r := rng.New(99)
	for batch := 0; batch < 30; batch++ {
		for op := 0; op < 4; op++ {
			switch r.Intn(3) {
			case 0:
				s.Join(100+float64(r.Intn(900)), r.Bool(0.1))
			case 1:
				// Depart a random roster peer; departed picks are no-ops,
				// exercising idempotence. Keep at least two present.
				if s.present > 2 {
					s.Depart(r.Intn(len(s.peers)))
				}
			case 2:
				s.Run(3)
			}
		}
		s.ReannounceUnderConnected(1)
		checkInvariants(t, s, "interleaved batch")
		checkConservation(t, s, "interleaved batch")
	}
	if s.TotalJoined() <= 14 {
		t.Fatal("no joins executed")
	}
	if s.slotCap <= 16 {
		t.Error("join load never grew the slot arrays; raise the batch count")
	}
}

// TestJoinersDownload: a peer that joins an in-flight swarm actually
// receives neighbors, pieces, and eventually the whole file.
func TestJoinersDownload(t *testing.T) {
	s, err := New(Options{
		Leechers: 15, Seeds: 2, Pieces: 24, PieceKbit: 256,
		UploadKbps: uniformCaps(17, 800), NeighborCount: 6, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(40)
	id := s.Join(800, false)
	if got := s.Degree(id); got == 0 {
		t.Fatal("tracker handed the joiner no neighbors")
	}
	if !s.RunUntilDone(20000) {
		t.Fatalf("swarm stalled after join (%d/%d present done)", s.presentDone, s.present)
	}
	if !s.peers[id].done {
		t.Fatal("joiner never completed")
	}
	if s.peers[id].joinRound != 40 {
		t.Fatalf("joiner joinRound %d, want 40", s.peers[id].joinRound)
	}
	checkInvariants(t, s, "after completion")
}

// TestDepartureHealsViaReannounce: after a mass departure guts the overlay,
// under-connected survivors re-announce and the mean degree recovers to
// the tracker target.
func TestDepartureHealsViaReannounce(t *testing.T) {
	s, err := New(Options{
		Leechers: 60, Seeds: 2, Pieces: 1, ContentUnlimited: true,
		NeighborCount: 10, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20)
	r := rng.New(7)
	var scratch []int32
	if got := s.massDepart(0.5, false, r, &scratch); got != 30 {
		t.Fatalf("mass departure removed %d of 60 leechers, want 30", got)
	}
	checkInvariants(t, s, "after mass departure")
	var degSum int
	for _, id := range s.trk.present {
		degSum += int(s.deg[s.peers[id].slot])
	}
	before := float64(degSum) / float64(s.present)
	for i := 0; i < 20; i++ {
		s.Step()
		s.ReannounceUnderConnected(1)
	}
	degSum = 0
	for _, id := range s.trk.present {
		degSum += int(s.deg[s.peers[id].slot])
	}
	after := float64(degSum) / float64(s.present)
	if after < float64(s.opt.NeighborCount) {
		t.Fatalf("overlay did not heal: mean degree %.1f → %.1f, want ≥ %d",
			before, after, s.opt.NeighborCount)
	}
	checkInvariants(t, s, "after healing")
}

// TestSeedLingerLifecycle: a completed leecher is promoted to seed, lingers
// the configured time, then departs; initial seeds stay.
func TestSeedLingerLifecycle(t *testing.T) {
	s, err := New(Options{
		Leechers: 10, Seeds: 1, Pieces: 8, PieceKbit: 128,
		UploadKbps: uniformCaps(11, 1000), NeighborCount: 5, Seed: 44,
	})
	if err != nil {
		t.Fatal(err)
	}
	dep := Departures{SeedLingerRounds: 25, InitialSeedsStay: true}
	r := rng.New(3)
	var scratch []int32
	for round := 0; round < 2000 && s.present > 1; round++ {
		s.Step()
		s.applyDepartures(dep, r, &scratch)
	}
	for i := range s.peers {
		p := &s.peers[i]
		if p.isSeed {
			if p.departed {
				t.Fatalf("initial seed %d departed despite InitialSeedsStay", p.id)
			}
			continue
		}
		if !p.done {
			t.Fatalf("leecher %d never finished", p.id)
		}
		if !p.departed {
			t.Fatalf("finished leecher %d never departed", p.id)
		}
		if got := p.departRound - p.doneRound; got != dep.SeedLingerRounds {
			t.Fatalf("leecher %d lingered %d rounds, want %d",
				p.id, got, dep.SeedLingerRounds)
		}
	}
	if s.present != 1 {
		t.Fatalf("%d peers left, want only the initial seed", s.present)
	}
	checkConservation(t, s, "after drain")
}

// TestStepAllocsUnderSteadyChurn pins the churn regression: once the slot
// pools and recycled bitfields are warm, stepping a swarm under continuous
// Poisson arrivals and lifecycle departures stays (amortized) allocation
// free — only the append-only roster occasionally doubles.
func TestStepAllocsUnderSteadyChurn(t *testing.T) {
	sc, err := NamedScenario("poisson", 45, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sc.Opt)
	if err != nil {
		t.Fatal(err)
	}
	churnR := rng.New(sc.Opt.Seed).Split()
	var scratch []int32
	step := func() {
		for k := sc.Arrivals.Arrivals(s.round, churnR); k > 0; k-- {
			s.Join(sc.CapacityDist.Sample(churnR), false)
		}
		s.Step()
		s.applyDepartures(sc.Departures, churnR, &scratch)
		s.ReannounceUnderConnected(10)
	}
	for i := 0; i < 500; i++ { // warm: roster capacity, bitset pool, scratch
		step()
	}
	if allocs := testing.AllocsPerRun(400, step); allocs > 1 {
		t.Fatalf("steady-churn stepping allocates %.2f objects per round, want ≤ 1 amortized", allocs)
	}
	checkInvariants(t, s, "after alloc run")
	checkConservation(t, s, "after alloc run")
}

// TestAbandonRankBias: capacity-correlated abandonment removes slow peers
// preferentially, and a zero bias consumes the random stream exactly like
// the unbiased rule (so old scenarios replay unchanged).
func TestAbandonRankBias(t *testing.T) {
	build := func() *Swarm {
		caps := make([]float64, 60)
		for i := range caps {
			caps[i] = 100 + 100*float64(i) // strictly increasing: id == 59-rank
		}
		s, err := New(Options{
			Leechers: 60, Pieces: 1, ContentUnlimited: true,
			UploadKbps: caps, NeighborCount: 8, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := build()
	r := rng.New(5)
	var scratch []int32
	biased := Departures{AbandonPerRound: 0.01, AbandonRankBias: 8}
	for round := 0; round < 150 && s.present > 10; round++ {
		s.Step()
		s.applyDepartures(biased, r, &scratch)
	}
	var goneCap, stayCap, gone, stay float64
	for i := range s.peers {
		if s.peers[i].departed {
			goneCap += s.peers[i].capacity
			gone++
		} else {
			stayCap += s.peers[i].capacity
			stay++
		}
	}
	if gone == 0 || stay == 0 {
		t.Fatalf("degenerate outcome: %v gone, %v stayed", gone, stay)
	}
	if goneCap/gone >= stayCap/stay {
		t.Fatalf("rank bias did not cull slow peers: departed mean %v kbps, stayed mean %v kbps",
			goneCap/gone, stayCap/stay)
	}

	// Zero bias must be byte-identical to the pre-bias rule: same
	// departures, same stream consumption.
	a, b := build(), build()
	ra, rb := rng.New(6), rng.New(6)
	var sa, sb []int32
	for round := 0; round < 80; round++ {
		a.Step()
		b.Step()
		a.applyDepartures(Departures{AbandonPerRound: 0.02}, ra, &sa)
		b.applyDepartures(Departures{AbandonPerRound: 0.02, AbandonRankBias: 0}, rb, &sb)
	}
	if a.totalDeparted != b.totalDeparted || ra.Uint64() != rb.Uint64() {
		t.Fatalf("zero bias diverged from the unbiased rule: %d vs %d departures",
			a.totalDeparted, b.totalDeparted)
	}
	for i := range a.peers {
		if a.peers[i].departed != b.peers[i].departed {
			t.Fatalf("peer %d departure state diverged under zero bias", i)
		}
	}
}

// TestArrivalProcesses pins the arrival processes' contracts: bursts and
// traces are exact, Poisson matches its mean, and combination sums.
func TestArrivalProcesses(t *testing.T) {
	r := rng.New(8)
	b := BurstArrivals{Start: 5, Rounds: 7, Total: 23}
	total := 0
	for round := 0; round < 50; round++ {
		k := b.Arrivals(round, r)
		if k > 0 && (round < 5 || round >= 12) {
			t.Fatalf("burst arrival outside its window at round %d", round)
		}
		total += k
	}
	if total != 23 {
		t.Fatalf("burst delivered %d arrivals, want 23", total)
	}

	tr := TraceArrivals{Counts: []int{3, 0, 2}}
	if tr.Arrivals(0, r) != 3 || tr.Arrivals(1, r) != 0 || tr.Arrivals(2, r) != 2 || tr.Arrivals(3, r) != 0 {
		t.Fatal("trace replay broken")
	}

	p := PoissonArrivals{PerRound: 1.7}
	sum := 0
	const rounds = 20000
	for i := 0; i < rounds; i++ {
		sum += p.Arrivals(i, r)
	}
	mean := float64(sum) / rounds
	// 4σ band: σ/√n = √1.7/√20000 ≈ 0.0092.
	if math.Abs(mean-1.7) > 0.04 {
		t.Fatalf("Poisson mean %.3f, want ≈ 1.7", mean)
	}

	c := CombinedArrivals{BurstArrivals{Start: 0, Rounds: 1, Total: 2}, TraceArrivals{Counts: []int{5}}}
	if c.Arrivals(0, r) != 7 {
		t.Fatal("combined arrivals do not sum")
	}

	// Large rates take the chunked path (e^−λ would underflow whole):
	// the mean must still be exact.
	big := PoissonArrivals{PerRound: 1000}
	bigSum := 0.0
	const bigRounds = 3000
	for i := 0; i < bigRounds; i++ {
		bigSum += float64(big.Arrivals(i, r))
	}
	bigSigma := math.Sqrt(1000.0 / bigRounds)
	if bigMean := bigSum / bigRounds; math.Abs(bigMean-1000) > 5*bigSigma {
		t.Fatalf("Poisson(1000) mean %.2f, want 1000 ± %.2f", bigMean, 5*bigSigma)
	}
}

// TestScenarioDeterminism: a scenario replays byte-identically for a seed.
func TestScenarioDeterminism(t *testing.T) {
	for _, name := range ScenarioNames() {
		sc, err := NamedScenario(name, 46, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		a, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Series) != len(b.Series) {
			t.Fatalf("%s: series lengths diverged", name)
		}
		for i := range a.Series {
			// Compare formatted: SeriesPoint carries NaN sentinels, and
			// NaN != NaN would fail struct equality on identical samples.
			av, bv := fmt.Sprintf("%+v", a.Series[i]), fmt.Sprintf("%+v", b.Series[i])
			if av != bv {
				t.Fatalf("%s: sample %d diverged:\n%s\n%s", name, i, av, bv)
			}
		}
		if a.TotalJoined != b.TotalJoined || a.TotalDeparted != b.TotalDeparted {
			t.Fatalf("%s: membership flows diverged", name)
		}
	}
}

// TestNamedScenariosRun exercises the whole catalog end to end at reduced
// scale: population flows, conservation, and scenario-specific shape.
func TestNamedScenariosRun(t *testing.T) {
	for _, name := range ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := NamedScenario(name, 47, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Series) < 10 {
				t.Fatalf("only %d samples", len(res.Series))
			}
			var up, down float64
			for _, pm := range res.Final.Peers {
				up += pm.TotalUp
				down += pm.TotalDown
			}
			if math.Abs(up-down) > 1e-6*math.Max(1, up) {
				t.Fatalf("conservation violated: %v vs %v", up, down)
			}
			if res.TotalJoined <= sc.Opt.Leechers+sc.Opt.Seeds {
				t.Fatal("scenario produced no arrivals")
			}
			last := res.Series[len(res.Series)-1]
			if last.Present < 1 {
				t.Fatal("swarm died out")
			}
			switch name {
			case "flashcrowd":
				peak := 0
				for _, pt := range res.Series {
					if pt.Present > peak {
						peak = pt.Present
					}
				}
				if peak < 3*(sc.Opt.Leechers+sc.Opt.Seeds) {
					t.Fatalf("flash crowd never formed: peak %d", peak)
				}
				if last.Completed*2 < res.TotalJoined-sc.Opt.Seeds {
					t.Fatalf("crowd did not drain: %d of %d completed",
						last.Completed, res.TotalJoined-sc.Opt.Seeds)
				}
			case "massdepart":
				if res.TotalDeparted < sc.Opt.Leechers/3 {
					t.Fatalf("mass departure missing: %d departed", res.TotalDeparted)
				}
				if last.MeanDegree < float64(sc.Opt.NeighborCount)*0.7 {
					t.Fatalf("overlay did not heal: final mean degree %.1f", last.MeanDegree)
				}
			}
		})
	}
}
