package btsim

import (
	"os"
	"path/filepath"
	"testing"

	"stratmatch/internal/checkpoint"
)

// FuzzLoadCheckpoint hammers the checkpoint decoder with arbitrary bytes.
// The corpus is real snapshots from catalog runs — a fault-free scenario
// and a faulted one, sealed and raw — so mutations explore truncations,
// bit flips, hostile lengths and version skew of genuine state layouts.
// Properties:
//
//   - loading never panics, whatever the bytes — every rejection is a
//     descriptive error;
//   - inputs that fail the container checks (checksum, magic, version)
//     never reach the decoder at all;
//   - anything that loads successfully passes the full invariant audit,
//     so corrupt state cannot be accepted silently.
//
// CI runs this as a short -fuzztime smoke; longer local runs dig deeper.
func FuzzLoadCheckpoint(f *testing.F) {
	scenarios := map[string]Scenario{}
	for _, name := range []string{"poisson", "crashcrowd"} {
		sp, err := NamedSpec(name, 11, 0.15)
		if err != nil {
			f.Fatal(err)
		}
		sp = sp.Scaled(0.12)
		sc, err := sp.Compile()
		if err != nil {
			f.Fatal(err)
		}
		scenarios[name] = sc

		dir := f.TempDir()
		ck := sc
		ck.CheckpointEvery = sc.Rounds / 2
		ck.CheckpointDir = dir
		ck.CheckpointRetain = -1
		if _, err := ck.Run(); err != nil {
			f.Fatal(err)
		}
		latest, err := checkpoint.Latest(dir)
		if err != nil {
			f.Fatal(err)
		}
		sealed, err := os.ReadFile(latest)
		if err != nil {
			f.Fatal(err)
		}
		payload, err := checkpoint.Open(sealed)
		if err != nil {
			f.Fatal(err)
		}
		// Seed both layers: the sealed container (exercising checksum and
		// version handling) and the bare payload (exercising the decoder,
		// which CRC protection would otherwise shield from most mutations).
		f.Add(sealed)
		f.Add(payload)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// The input may be a sealed container or a raw payload; feed the
		// decoder whichever applies, against both scenario bindings.
		payloads := [][]byte{data}
		if inner, err := checkpoint.Open(data); err == nil {
			payloads = append(payloads, inner)
		}
		for _, sc := range scenarios {
			for _, payload := range payloads {
				run, err := sc.loadCheckpoint(payload)
				if err != nil {
					continue // rejected: the only requirement is not panicking
				}
				// Accepted state must be internally consistent and runnable.
				if err := run.s.CheckInvariants(); err != nil {
					t.Fatalf("decoder accepted state that fails the audit: %v", err)
				}
			}
		}
	})
}

// TestLoadCheckpointCorruptionMatrix complements the fuzzer
// deterministically: every truncation and a bit flip at every byte of a
// real checkpoint must be rejected with an error, never a panic, and
// never a silent success that skips validation.
func TestLoadCheckpointCorruptionMatrix(t *testing.T) {
	sc := ckptScenario(t, "trackerdown", 46)
	dir := t.TempDir()
	ck := sc
	ck.CheckpointEvery = sc.Rounds / 3
	ck.CheckpointDir = dir
	if _, err := ck.Run(); err != nil {
		t.Fatal(err)
	}
	latest, err := checkpoint.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := checkpoint.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.loadCheckpoint(payload); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
	for cut := 0; cut < len(payload); cut += 7 {
		if _, err := sc.loadCheckpoint(payload[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes loaded", cut)
		}
	}
	mutated := make([]byte, len(payload))
	for i := 0; i < len(payload); i++ {
		copy(mutated, payload)
		mutated[i] ^= 0x40
		// A flip may still decode to a consistent state (e.g. inside an
		// unused float); the contract is no panic and no audit-failing
		// acceptance — loadCheckpoint runs the audit internally, so a nil
		// error here IS a passed audit.
		_, _ = sc.loadCheckpoint(mutated)
	}
	// The sealed file itself rejects damage before the decoder ever runs.
	sealed, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	sealed[len(sealed)/2] ^= 0x01
	bad := filepath.Join(dir, "damaged.bin")
	if err := os.WriteFile(bad, sealed, 0o644); err != nil {
		t.Fatal(err)
	}
	res := sc
	res.ResumeFrom = bad
	if _, err := res.Run(); err == nil {
		t.Fatal("resume from a damaged file succeeded")
	}
}
