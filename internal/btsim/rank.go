package btsim

import "sort"

// Batched bandwidth-rank maintenance. Join used to insert the newcomer's
// rank immediately with two O(present) passes, which made a flash-crowd
// round with k arrivals cost O(k·present) — the dominant term at a million
// peers. Nothing reads ranks between consecutive Joins (the tracker
// handout looks at degrees and capacities, never ranks), so Join now only
// parks the newcomer on a pending list with rank −1 and flushJoinRanks
// merges the whole batch in O(present + k·log k) before the next rank
// read. Every rank consumer flushes first: Step (the TFT accounting),
// Depart/Crash (the shift loops), applyDepartures (the rank-biased
// abandonment draw), sampling, Snapshot, CheckInvariants and checkpoint
// encoding — so a pending rank of −1 is never observable.
//
// The merge is exactly equivalent to sequential insertion: present ranks
// always form the position permutation of the present set ordered by
// (capacity desc, id asc), so inserting a sorted batch assigns pending
// peer w the position (#old present better than w) + (#pending better
// than w), and shifts each old peer down by the number of pending peers
// placed before it.

// joinSorter sorts the pending-join id list by the rank key. It lives in
// the Swarm so sort.Sort receives a pointer interface without allocating.
type joinSorter struct{ s *Swarm }

func (j *joinSorter) Len() int { return len(j.s.pendingJoin) }
func (j *joinSorter) Less(a, b int) bool {
	pa, pb := &j.s.peers[j.s.pendingJoin[a]], &j.s.peers[j.s.pendingJoin[b]]
	return pa.capacity > pb.capacity || (pa.capacity == pb.capacity && pa.id < pb.id)
}
func (j *joinSorter) Swap(a, b int) {
	p := j.s.pendingJoin
	p[a], p[b] = p[b], p[a]
}

// flushJoinRanks assigns ranks to every pending join and shifts the old
// present ranks accordingly (mirroring the shifts into the incremental
// sampler's rank sums). No-op when nothing is pending.
func (s *Swarm) flushJoinRanks() {
	k := len(s.pendingJoin)
	if k == 0 {
		return
	}
	if k > 1 {
		sort.Sort(&s.joinSort)
	}
	// Invert the old present ranks into position order. Pending peers are
	// registered but still rank −1, so they are excluded by the r >= 0
	// filter; everything else present has a valid old rank < old.
	old := s.present - k
	ro := s.rankOrder
	for _, id := range s.trk.present {
		if r := s.rank[id]; r >= 0 {
			ro[r] = id
		}
	}
	st := s.stats
	pi := 0
	for r := 0; r < old; r++ {
		id := ro[r]
		q := &s.peers[id]
		for pi < k {
			w := &s.peers[s.pendingJoin[pi]]
			if !(w.capacity > q.capacity || (w.capacity == q.capacity && w.id < q.id)) {
				break
			}
			s.rank[w.id] = r + pi
			pi++
		}
		if pi > 0 {
			s.rank[id] = r + pi
			if st != nil {
				st.shiftRank(int(q.slot), float64(pi))
			}
		}
	}
	for ; pi < k; pi++ {
		s.rank[s.pendingJoin[pi]] = old + pi
	}
	s.pendingJoin = s.pendingJoin[:0]
}
