package btsim

import (
	"fmt"
	"math"
	"testing"

	"stratmatch/internal/telemetry"
)

// TestScenarioTelemetryByteIdentical pins the instrumentation contract:
// attaching a telemetry recorder to a scenario — churn, faults, the lot —
// changes no simulation output whatsoever. Telemetry only reads the wall
// clock, never the RNG streams or swarm state.
func TestScenarioTelemetryByteIdentical(t *testing.T) {
	for _, name := range []string{"poisson", "trackerdown", "crashcrowd"} {
		t.Run(name, func(t *testing.T) {
			bare, err := NamedScenario(name, 5, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			instrumented, err := NamedScenario(name, 5, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			instrumented.Telemetry = telemetry.New()

			r1, err := bare.Run()
			if err != nil {
				t.Fatal(err)
			}
			r2, err := instrumented.Run()
			if err != nil {
				t.Fatal(err)
			}
			// %+v comparison sidesteps NaN != NaN under reflect.DeepEqual;
			// NaN formats identically on both sides.
			if got, want := fmt.Sprintf("%+v", r2), fmt.Sprintf("%+v", r1); got != want {
				t.Fatal("telemetry-on run diverged from telemetry-off run")
			}
			// And the recorder actually saw the run.
			if got := instrumented.Telemetry.Counter(telemetry.CtrRounds); got != uint64(instrumented.Rounds) {
				t.Fatalf("rounds counter = %d, want %d", got, instrumented.Rounds)
			}
			if instrumented.Telemetry.Counter(telemetry.CtrSamples) == 0 {
				t.Fatal("samples counter stayed zero on an instrumented run")
			}
		})
	}
}

// TestScenarioRunCollectsEvents pins the seriesCollector event surface: a
// faulted catalog spec run through Scenario.Run materializes its RunEvents
// in ScenarioResult.Events, in round order, matching the injection plan.
func TestScenarioRunCollectsEvents(t *testing.T) {
	spec, err := NamedSpec("trackerdown", 3, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("faulted run produced no events")
	}
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Round < res.Events[i-1].Round {
			t.Fatalf("events out of round order: %+v after %+v", res.Events[i], res.Events[i-1])
		}
	}
	// The outage windows of the spec must appear as tracker_down/tracker_up
	// pairs at exactly the scheduled rounds.
	var want []RunEvent
	for _, inj := range spec.Faults.Injections {
		if inj.Kind == FaultTrackerOutage {
			want = append(want,
				RunEvent{Round: inj.Start, Kind: "tracker_down"},
				RunEvent{Round: inj.Start + inj.Rounds, Kind: "tracker_up"})
		}
	}
	if len(want) == 0 {
		t.Fatal("trackerdown spec carries no outage injection — catalog changed?")
	}
	var got []RunEvent
	for _, ev := range res.Events {
		if ev.Kind == "tracker_down" || ev.Kind == "tracker_up" {
			got = append(got, ev)
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("outage events = %v, want %v", got, want)
	}
	// Events and series are the same stream Run's observer path reports:
	// re-running via RunObserver must reproduce them exactly.
	sc2, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var obs eventRecorder
	if err := sc2.RunObserver(&obs); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(obs.events) != fmt.Sprint(res.Events) {
		t.Fatalf("Run events %v != RunObserver events %v", res.Events, obs.events)
	}
}

// TestTotalsConservation pins the O(1) transfer totals against the original
// roster scan, across joins, graceful departures and piece completions:
// upload and download running sums must agree with each other bit for bit
// (they receive the identical sequence of adds) and with the per-peer scan
// up to summation-order rounding.
func TestTotalsConservation(t *testing.T) {
	sc, err := NamedScenario("massdepart", 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the swarm directly so the live *Swarm stays in reach.
	s, err := New(sc.Opt)
	if err != nil {
		t.Fatal(err)
	}
	check := func(round int) {
		t.Helper()
		up, down := s.TotalUploaded(), s.TotalDownloaded()
		if up != down {
			t.Fatalf("round %d: conservation broken: uploaded %v != downloaded %v", round, up, down)
		}
		scanUp, scanDown := s.recountTotals()
		const relTol = 1e-9
		if math.Abs(up-scanUp) > relTol*math.Max(1, scanUp) {
			t.Fatalf("round %d: running upload total %v drifted from scan %v", round, up, scanUp)
		}
		if math.Abs(down-scanDown) > relTol*math.Max(1, scanDown) {
			t.Fatalf("round %d: running download total %v drifted from scan %v", round, down, scanDown)
		}
	}
	for round := 0; round < 240; round++ {
		if round%17 == 0 {
			s.Join(300+float64(round), false)
		}
		if round%41 == 0 && round > 0 {
			s.Depart(round % s.TotalJoined()) // departed peers keep their totals
		}
		s.Step()
		if round%20 == 0 {
			check(round)
		}
	}
	check(240)
	if s.TotalUploaded() == 0 {
		t.Fatal("no data moved — the conservation check tested nothing")
	}
}

// callOrderObserver records the full call sequence for the contract test.
type callOrderObserver struct {
	calls []string
	done  int
}

func (o *callOrderObserver) OnSample(pt SeriesPoint) {
	o.calls = append(o.calls, fmt.Sprintf("sample:%d", pt.Round))
}
func (o *callOrderObserver) OnEvent(ev RunEvent) {
	o.calls = append(o.calls, fmt.Sprintf("event:%d:%s", ev.Round, ev.Kind))
}
func (o *callOrderObserver) OnDone(Metrics) {
	o.done++
	o.calls = append(o.calls, "done")
}

// TestObserverCallOrder pins the streaming contract documented on Observer:
// calls arrive in round order, an event within a round precedes that
// round's sample, the final round is always sampled, and OnDone fires
// exactly once, last.
func TestObserverCallOrder(t *testing.T) {
	sc := Scenario{
		Name:        "order",
		Opt:         Options{Leechers: 30, Seeds: 2, Pieces: 16, Seed: 7, PostFlashCrowd: true},
		Rounds:      55,
		SampleEvery: 10,
		Events:      []Event{{Round: 23, DepartFraction: 0.5}},
	}
	var obs callOrderObserver
	if err := sc.RunObserver(&obs); err != nil {
		t.Fatal(err)
	}
	if obs.done != 1 {
		t.Fatalf("OnDone fired %d times, want exactly 1", obs.done)
	}
	if last := obs.calls[len(obs.calls)-1]; last != "done" {
		t.Fatalf("last call %q, want done", last)
	}
	var sampleRounds []int
	var shockIdx, sample30Idx = -1, -1
	lastRound := -1
	for i, c := range obs.calls {
		var round int
		var kind string
		switch {
		case c == "done":
			continue
		case len(c) > 7 && c[:7] == "sample:":
			fmt.Sscanf(c, "sample:%d", &round)
			sampleRounds = append(sampleRounds, round)
			if round == 31 {
				sample30Idx = i
			}
		default:
			fmt.Sscanf(c, "event:%d:%s", &round, &kind)
			if kind == "shock" {
				if round != 23 {
					t.Fatalf("shock at round %d, want 23", round)
				}
				shockIdx = i
			}
		}
		if round < lastRound {
			t.Fatalf("call %q out of round order (previous round %d)", c, lastRound)
		}
		lastRound = round
	}
	// A SeriesPoint's Round is the post-Step round counter, so the sample
	// taken at loop round r reports r+1.
	want := []int{1, 11, 21, 31, 41, 51, 55}
	if fmt.Sprint(sampleRounds) != fmt.Sprint(want) {
		t.Fatalf("sample rounds %v, want %v (every SampleEvery plus the final round)", sampleRounds, want)
	}
	if shockIdx < 0 {
		t.Fatal("scheduled shock never reported")
	}
	if sample30Idx >= 0 && shockIdx > sample30Idx {
		t.Fatal("round-23 shock reported after the round-30 sample")
	}
}

// telemetryFlushObserver counts OnTelemetry deliveries and checks pairing
// with OnSample.
type telemetryFlushObserver struct {
	callOrderObserver
	flushes     []int
	lastWasSamp bool
	pairBroken  bool
}

func (o *telemetryFlushObserver) OnSample(pt SeriesPoint) {
	o.callOrderObserver.OnSample(pt)
	o.lastWasSamp = true
}

func (o *telemetryFlushObserver) OnTelemetry(round int, snap TelemetrySnapshot) {
	if !o.lastWasSamp {
		o.pairBroken = true
	}
	o.lastWasSamp = false
	o.flushes = append(o.flushes, round)
	if len(snap.Counters) == 0 || len(snap.Phases) == 0 {
		o.pairBroken = true
	}
}

// TestOnTelemetryFlush pins the TelemetryObserver extension: with a
// recorder attached, OnTelemetry follows every OnSample (same round) with a
// non-empty snapshot; without a recorder it is never called.
func TestOnTelemetryFlush(t *testing.T) {
	mk := func() Scenario {
		return Scenario{
			Name:        "flush",
			Opt:         Options{Leechers: 20, Seeds: 2, Pieces: 16, Seed: 9},
			Rounds:      35,
			SampleEvery: 10,
		}
	}
	sc := mk()
	sc.Telemetry = telemetry.New()
	var obs telemetryFlushObserver
	if err := sc.RunObserver(&obs); err != nil {
		t.Fatal(err)
	}
	if obs.pairBroken {
		t.Fatal("OnTelemetry not paired 1:1 after OnSample, or snapshot empty")
	}
	if want := []int{1, 11, 21, 31, 35}; fmt.Sprint(obs.flushes) != fmt.Sprint(want) {
		t.Fatalf("telemetry flush rounds %v, want %v", obs.flushes, want)
	}

	bare := mk() // no recorder: the extension must stay silent
	var obs2 telemetryFlushObserver
	if err := bare.RunObserver(&obs2); err != nil {
		t.Fatal(err)
	}
	if len(obs2.flushes) != 0 {
		t.Fatalf("OnTelemetry called %d times without a recorder", len(obs2.flushes))
	}
}

// TestStepZeroAllocTelemetryOn extends the engine's zero-alloc pin to the
// instrumented path: with a recorder attached (no trace regions), Step
// still allocates nothing.
func TestStepZeroAllocTelemetryOn(t *testing.T) {
	s, err := New(Options{
		Leechers: 60, Seeds: 2, Pieces: 64, PieceKbit: 2048,
		PostFlashCrowd: true, NeighborCount: 12, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetTelemetry(telemetry.New())
	s.Run(50)
	if allocs := testing.AllocsPerRun(200, s.Step); allocs != 0 {
		t.Fatalf("instrumented Swarm.Step allocates %.1f objects per round, want 0", allocs)
	}
}

// benchmarkStepTelemetry is the telemetry-on/off differential behind the
// BENCH_results.json overhead gate: the same steady-state swarm stepped
// with and without a recorder attached.
func benchmarkStepTelemetry(b *testing.B, tel *telemetry.Recorder) {
	s, err := New(Options{
		Leechers: 300, Pieces: 1, ContentUnlimited: true,
		NeighborCount: 20, Seed: 33,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.SetTelemetry(tel)
	s.Run(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepTelemetryOff(b *testing.B) { benchmarkStepTelemetry(b, nil) }
func BenchmarkStepTelemetryOn(b *testing.B)  { benchmarkStepTelemetry(b, telemetry.New()) }
