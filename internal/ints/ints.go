// Package ints provides sorted-int-slice primitives shared by the adjacency
// and matching structures. All functions keep slices in strictly increasing
// order and never store duplicates.
package ints

// Contains reports whether sorted slice s contains v (binary search).
func Contains(s []int, v int) bool {
	i := lowerBound(s, v)
	return i < len(s) && s[i] == v
}

// Insert returns s with v inserted at its sorted position. Inserting a value
// already present returns s unchanged.
func Insert(s []int, v int) []int {
	i := lowerBound(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Remove returns s with v deleted if present.
func Remove(s []int, v int) []int {
	i := lowerBound(s, v)
	if i >= len(s) || s[i] != v {
		return s
	}
	return append(s[:i], s[i+1:]...)
}

// Clone returns an independent copy of s (nil stays nil).
func Clone(s []int) []int {
	if s == nil {
		return nil
	}
	return append([]int(nil), s...)
}

// Equal reports whether a and b hold the same elements in the same order.
func Equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lowerBound(s []int, v int) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
