package ints

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertRemoveContains(t *testing.T) {
	var s []int
	for _, v := range []int{5, 1, 9, 5, 3} {
		s = Insert(s, v)
	}
	if !sort.IntsAreSorted(s) {
		t.Fatalf("not sorted: %v", s)
	}
	if len(s) != 4 {
		t.Fatalf("duplicate stored: %v", s)
	}
	for _, v := range []int{1, 3, 5, 9} {
		if !Contains(s, v) {
			t.Errorf("missing %d in %v", v, s)
		}
	}
	if Contains(s, 4) {
		t.Error("phantom 4")
	}
	s = Remove(s, 5)
	if Contains(s, 5) {
		t.Error("5 survived removal")
	}
	s = Remove(s, 100) // absent: no-op
	if len(s) != 3 {
		t.Fatalf("remove of absent changed slice: %v", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := []int{1, 2, 3}
	c := Clone(s)
	c[0] = 99
	if s[0] != 1 {
		t.Fatal("clone aliases source")
	}
	if Clone(nil) != nil {
		t.Fatal("Clone(nil) != nil")
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]int{1, 2}, []int{1, 2}) {
		t.Fatal("equal slices reported different")
	}
	if Equal([]int{1, 2}, []int{1, 3}) || Equal([]int{1}, []int{1, 2}) {
		t.Fatal("different slices reported equal")
	}
	if !Equal(nil, []int{}) {
		t.Fatal("nil and empty should be Equal")
	}
}

func TestSortedSetProperty(t *testing.T) {
	// Insert then Remove in arbitrary orders always maintains a sorted,
	// duplicate-free slice matching a reference map implementation.
	check := func(ops []int16) bool {
		var s []int
		ref := make(map[int]bool)
		for _, op := range ops {
			v := int(op) % 50
			if op%2 == 0 {
				s = Insert(s, v)
				ref[v] = true
			} else {
				s = Remove(s, v)
				delete(ref, v)
			}
		}
		if !sort.IntsAreSorted(s) || len(s) != len(ref) {
			return false
		}
		for _, v := range s {
			if !ref[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
