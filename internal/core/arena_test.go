package core

import (
	"testing"

	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

// randomBudgets draws n budgets in [0, maxB].
func randomBudgets(n, maxB int, r *rng.RNG) []int {
	b := make([]int, n)
	for i := range b {
		b[i] = r.Intn(maxB + 1)
	}
	return b
}

// requireSameConfig fails unless got and want agree on population, budgets
// and mate sets, and got passes Validate.
func requireSameConfig(t *testing.T, got, want *Config) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("N: got %d, want %d", got.N(), want.N())
	}
	for p := 0; p < want.N(); p++ {
		if got.Budget(p) != want.Budget(p) {
			t.Fatalf("budget of %d: got %d, want %d", p, got.Budget(p), want.Budget(p))
		}
	}
	if !got.Equal(want) {
		t.Fatal("mate sets differ")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestArenaStableCompleteMatchesFresh pins the arena contract: a recycled
// arena must produce exactly the configuration a fresh allocation would, for
// every draw of a sequence with shifting populations and budgets.
func TestArenaStableCompleteMatchesFresh(t *testing.T) {
	r := rng.New(7)
	var a Arena
	for draw := 0; draw < 40; draw++ {
		n := 1 + r.Intn(200)
		budgets := randomBudgets(n, 5, r)
		requireSameConfig(t, a.StableComplete(budgets), StableComplete(budgets))
	}
}

// TestArenaStableMatchesFresh is the acceptance-graph (Algorithm 1) variant,
// alternating graph shapes so the arena shrinks and regrows.
func TestArenaStableMatchesFresh(t *testing.T) {
	r := rng.New(8)
	var a Arena
	var ga graph.Arena
	for draw := 0; draw < 30; draw++ {
		n := 2 + r.Intn(150)
		p := 8.0 / float64(n)
		gr := rng.New(uint64(1000 + draw))
		g := ga.ErdosRenyi(n, p, gr)
		b0 := 1 + r.Intn(3)
		fresh := StableUniform(graph.ErdosRenyi(n, p, rng.New(uint64(1000+draw))), b0)
		requireSameConfig(t, a.StableUniform(g, b0), fresh)
	}
}

// TestConfigResetClears is the property test behind Reset: no trace of a
// prior population — matches, raised or lowered budgets, private segment
// reallocations — may survive into the reset configuration, which must be
// indistinguishable from a freshly constructed one even after further
// mutation.
func TestConfigResetClears(t *testing.T) {
	r := rng.New(9)
	c := NewConfig(randomBudgets(50, 4, r))
	for round := 0; round < 30; round++ {
		// Mutate heavily: random proposes, budget changes (including raises
		// past the slab segment, which force private reallocations).
		for k := 0; k < 100; k++ {
			i, j := r.Intn(c.N()), r.Intn(c.N())
			if i != j && c.Wants(i, j) && c.Wants(j, i) {
				c.Propose(i, j)
			}
			if k%17 == 0 {
				c.SetBudget(r.Intn(c.N()), r.Intn(8))
			}
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}

		n := 1 + r.Intn(120)
		budgets := randomBudgets(n, 4, r)
		c.Reset(budgets)
		fresh := NewConfig(budgets)
		requireSameConfig(t, c, fresh)
		if c.TotalEdges() != 0 {
			t.Fatalf("round %d: %d edges survived Reset", round, c.TotalEdges())
		}
		// The reset config must also behave like a fresh one: replaying an
		// identical mutation sequence on both must keep them equal.
		seq := rng.New(uint64(round))
		for k := 0; k < 60; k++ {
			i, j := seq.Intn(n), seq.Intn(n)
			if i != j && c.Wants(i, j) && c.Wants(j, i) {
				c.Propose(i, j)
				fresh.Propose(i, j)
			}
		}
		if !c.Equal(fresh) {
			t.Fatalf("round %d: reset config diverged from fresh config under identical mutations", round)
		}
	}
}

// TestArenaStableCompleteZeroAllocSteadyState pins the perf contract the
// sweeps rely on: once warmed up, an arena draw allocates nothing.
func TestArenaStableCompleteZeroAllocSteadyState(t *testing.T) {
	var a Arena
	budgets := randomBudgets(3000, 5, rng.New(3))
	a.StableComplete(budgets) // size the arena
	if allocs := testing.AllocsPerRun(20, func() { a.StableComplete(budgets) }); allocs != 0 {
		t.Fatalf("arena StableComplete allocates %.2f objects per draw at steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { a.StableCompleteUniform(3000, 4) }); allocs != 0 {
		t.Fatalf("arena StableCompleteUniform allocates %.2f objects per draw at steady state, want 0", allocs)
	}
}
