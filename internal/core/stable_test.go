package core

import (
	"testing"
	"testing/quick"

	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

func TestStableCompleteOneMatching(t *testing.T) {
	// On a complete graph with b=1 the stable matching pairs (0,1), (2,3)…
	g := graph.NewComplete(6)
	c := StableUniform(g, 1)
	for _, pair := range [][2]int{{0, 1}, {2, 3}, {4, 5}} {
		if !c.Matched(pair[0], pair[1]) {
			t.Fatalf("expected %v matched", pair)
		}
	}
	mustStable(t, c, g)
}

func TestStableCompleteOddLeftover(t *testing.T) {
	g := graph.NewComplete(5)
	c := StableUniform(g, 1)
	if c.Degree(4) != 0 {
		t.Fatal("worst peer of odd population should stay unmatched")
	}
	mustStable(t, c, g)
}

func TestStableClusters(t *testing.T) {
	// Paper Figure 4: constant b0-matching on a complete graph yields a
	// chain of (b0+1)-cliques: {0,1,2}, {3,4,5}, ... for b0 = 2.
	g := graph.NewComplete(9)
	c := StableUniform(g, 2)
	mustStable(t, c, g)
	for cluster := 0; cluster < 3; cluster++ {
		base := 3 * cluster
		for i := base; i < base+3; i++ {
			for j := i + 1; j < base+3; j++ {
				if !c.Matched(i, j) {
					t.Fatalf("cluster %d: %d-%d unmatched", cluster, i, j)
				}
			}
		}
	}
}

func TestStableExtraConnection(t *testing.T) {
	// Paper Figure 5: granting peer 0 one extra slot chains the clusters
	// into a single connected component (shown for b0=2, n=8 in the paper).
	g := graph.NewComplete(8)
	b := []int{3, 2, 2, 2, 2, 2, 2, 2}
	c := Stable(g, b)
	mustStable(t, c, g)
	if !graph.IsConnected(c.CollabGraph()) {
		t.Fatal("extra connection did not connect the collaboration graph")
	}
}

func TestStableRespectsAcceptance(t *testing.T) {
	g := graph.NewAdjacency(4)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	c := StableUniform(g, 1)
	if !c.Matched(0, 3) || !c.Matched(1, 2) {
		t.Fatalf("stable matching ignored acceptance graph")
	}
	mustStable(t, c, g)
}

func TestStableZeroBudget(t *testing.T) {
	g := graph.NewComplete(4)
	c := Stable(g, []int{0, 1, 1, 0})
	if c.Degree(0) != 0 || c.Degree(3) != 0 {
		t.Fatal("zero-budget peer got matched")
	}
	if !c.Matched(1, 2) {
		t.Fatal("1-2 should match")
	}
	mustStable(t, c, g)
}

func TestStableEmptyGraph(t *testing.T) {
	g := graph.NewAdjacency(5)
	c := StableUniform(g, 2)
	if c.TotalEdges() != 0 {
		t.Fatal("edgeless acceptance produced matches")
	}
	mustStable(t, c, g)
}

// TestStableIsStableOnRandomGraphs is the core correctness property:
// Algorithm 1's output never has a blocking pair, for any random graph and
// any random budget vector.
func TestStableIsStableOnRandomGraphs(t *testing.T) {
	check := func(seed uint64, nRaw, dRaw, bRaw uint8) bool {
		r := rng.New(seed)
		n := 2 + int(nRaw%60)
		d := 1 + float64(dRaw%10)
		g := graph.ErdosRenyiMeanDegree(n, d, r)
		b := make([]int, n)
		for i := range b {
			b[i] = int(bRaw%4) + r.Intn(3) // budgets in [bRaw%4, bRaw%4+2]
		}
		c := Stable(g, b)
		if err := c.Validate(); err != nil {
			return false
		}
		return IsStable(c, g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestStableUniqueFixedPoint verifies uniqueness indirectly: starting from
// random non-stable configurations, repeatedly resolving arbitrary blocking
// pairs always terminates in Algorithm 1's output (Theorem 1 + Tan's
// uniqueness for global rankings).
func TestStableUniqueFixedPoint(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := 2 + int(nRaw%40)
		g := graph.ErdosRenyiMeanDegree(n, 5, r)
		want := StableUniform(g, 2)

		c := NewUniformConfig(n, 2)
		// Random initial configuration: scatter some legal matches.
		for k := 0; k < n; k++ {
			i, j := r.Intn(n), r.Intn(n)
			if g.Acceptable(i, j) && c.Free(i) && c.Free(j) && !c.Matched(i, j) {
				if err := c.Match(i, j); err != nil {
					return false
				}
			}
		}
		// Resolve blocking pairs in arbitrary (scan) order.
		for steps := 0; ; steps++ {
			i, j := FindBlockingPair(c, g)
			if i < 0 {
				break
			}
			c.Propose(i, j)
			if steps > 100*n*n {
				return false // did not converge
			}
		}
		return c.Equal(want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBestBlockingMate(t *testing.T) {
	g := graph.NewComplete(5)
	c := NewUniformConfig(5, 1)
	mustMatch(t, c, 1, 2)
	// Peer 0 is free; its best blocking mate is 1 (1 prefers 0 over 2).
	if got := BestBlockingMate(c, g, 0); got != 1 {
		t.Fatalf("BestBlockingMate = %d, want 1", got)
	}
	// Peer 3 is free; so is 0, which is 3's best blocking mate.
	if got := BestBlockingMate(c, g, 3); got != 0 {
		t.Fatalf("BestBlockingMate = %d, want 0", got)
	}
	// Match 0 with 1: now 0 and 1 are mated to better peers than 3, and
	// 2 got dropped. Peer 3's best blocking mate becomes 2.
	c.Propose(0, 1)
	if got := BestBlockingMate(c, g, 3); got != 2 {
		t.Fatalf("after rewire: BestBlockingMate = %d, want 2", got)
	}
	// After stabilizing, nobody blocks.
	st := StableUniform(g, 1)
	for p := 0; p < 5; p++ {
		if got := BestBlockingMate(st, g, p); got != -1 {
			t.Fatalf("stable config: peer %d blocks with %d", p, got)
		}
	}
}

func TestBestBlockingMateZeroBudget(t *testing.T) {
	g := graph.NewComplete(3)
	c := NewConfig([]int{0, 1, 1})
	if got := BestBlockingMate(c, g, 0); got != -1 {
		t.Fatalf("zero-budget peer proposed to %d", got)
	}
}

func TestFindBlockingPairStable(t *testing.T) {
	g := graph.NewComplete(4)
	st := StableUniform(g, 1)
	if i, j := FindBlockingPair(st, g); i != -1 || j != -1 {
		t.Fatalf("stable config has blocking pair (%d,%d)", i, j)
	}
	if !IsStable(st, g) {
		t.Fatal("IsStable false on stable config")
	}
}

func BenchmarkStableER(b *testing.B) {
	r := rng.New(1)
	g := graph.ErdosRenyiMeanDegree(5000, 20, r)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StableUniform(g, 3)
	}
}
