package core

import (
	"testing"
	"testing/quick"

	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

func TestStableCompleteMatchesGeneric(t *testing.T) {
	// The specialized algorithm must agree with Algorithm 1 on an explicit
	// complete graph, for arbitrary budget vectors.
	check := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := 1 + int(nRaw%40)
		budgets := make([]int, n)
		for i := range budgets {
			budgets[i] = r.Intn(5) // includes zero budgets
		}
		fast := StableComplete(budgets)
		slow := Stable(graph.NewComplete(n), budgets)
		return fast.Equal(slow)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestStableCompleteUniformClusters(t *testing.T) {
	// Constant b0-matching: clusters {0..b0}, {b0+1..2b0+1}, ...
	for _, b0 := range []int{1, 2, 3, 5} {
		n := 4 * (b0 + 1)
		c := StableCompleteUniform(n, b0)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < n; p++ {
			cluster := p / (b0 + 1)
			base := cluster * (b0 + 1)
			if c.Degree(p) != b0 {
				t.Fatalf("b0=%d: peer %d degree %d", b0, p, c.Degree(p))
			}
			for _, m := range c.Mates(p) {
				if m < base || m >= base+b0+1 {
					t.Fatalf("b0=%d: peer %d matched outside cluster: %d", b0, p, m)
				}
			}
		}
	}
}

func TestStableCompleteRemainder(t *testing.T) {
	// n = 7, b0 = 2: clusters {0,1,2}, {3,4,5}, and peer 6 left alone.
	c := StableCompleteUniform(7, 2)
	if c.Degree(6) != 0 {
		t.Fatalf("remainder peer degree = %d", c.Degree(6))
	}
	mustStable(t, c, graph.NewComplete(7))
}

func TestStableCompleteZeroBudgets(t *testing.T) {
	c := StableComplete([]int{0, 2, 0, 2, 2})
	if c.Degree(0) != 0 || c.Degree(2) != 0 {
		t.Fatal("zero-budget peer matched")
	}
	// 1, 3, 4 form a clique of three 2-budget peers.
	for _, pair := range [][2]int{{1, 3}, {1, 4}, {3, 4}} {
		if !c.Matched(pair[0], pair[1]) {
			t.Fatalf("pair %v unmatched", pair)
		}
	}
}

func TestStableCompleteEmpty(t *testing.T) {
	if c := StableComplete(nil); c.N() != 0 {
		t.Fatal("non-empty config from empty budgets")
	}
	if c := StableCompleteUniform(1, 3); c.Degree(0) != 0 {
		t.Fatal("single peer matched with itself?")
	}
}

func TestStableCompleteLarge(t *testing.T) {
	// Smoke test the performance path: 100k peers, b0 = 6.
	if testing.Short() {
		t.Skip("large population test")
	}
	// 70_000 = 10_000 clusters of 7 peers, 21 edges each.
	c := StableCompleteUniform(70_000, 6)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TotalEdges() != 10_000*21 {
		t.Fatalf("TotalEdges = %d, want %d", c.TotalEdges(), 10_000*21)
	}
}

func BenchmarkStableComplete(b *testing.B) {
	budgets := make([]int, 50_000)
	r := rng.New(1)
	for i := range budgets {
		budgets[i] = r.RoundedPositiveNormal(6, 0.2)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StableComplete(budgets)
	}
}
