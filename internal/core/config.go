// Package core implements the paper's primary contribution: stable
// b-matching under a global ranking.
//
// Peers are identified by their global rank 0 .. n−1, with rank 0 the best
// peer (the paper labels peers 1 .. n with 1 the best; the convention is
// shifted by one but otherwise identical). Every peer p has a slot budget
// b(p) ≥ 0 bounding how many simultaneous collaborations it may hold. A
// Config is a b-matching on the acceptance graph: a set of collaboration
// edges respecting every budget.
//
// Under global ranking each peer prefers lower-ranked (better) mates, the
// preference lists have no cycles, and exactly one stable configuration
// exists (Tan 1991, as invoked by the paper). Stable computes it directly
// (the paper's Algorithm 1); the dynamics package reaches it through
// decentralized initiatives (Theorem 1).
package core

import (
	"fmt"

	"stratmatch/internal/graph"
	"stratmatch/internal/ints"
)

// Config is a b-matching: each peer's current collaborators ("mates"),
// bounded per peer by the slot budget. Mate lists are kept sorted in
// increasing rank, so Mates(p)[0] is p's best current mate.
//
// Config is not safe for concurrent mutation; simulations own one Config
// per goroutine or serialize access.
type Config struct {
	budget []int
	mates  [][]int
	// slab is the backing store the mate lists are carved from; it is
	// retained so Reset can recycle it for a fresh population instead of
	// allocating a new one per draw (the arena layer's core trick).
	slab []int
	// dropScratch / isoScratch back the slices Propose and Isolate return,
	// so the initiative hot path of churn simulations does not allocate per
	// event. Each is valid until the next call of its method.
	dropScratch [2]int
	isoScratch  []int
}

// NewConfig returns an empty configuration for peers with the given slot
// budgets. The slice is copied; budgets must be non-negative.
//
// Mate storage is carved out of a single slab sized to Σ b(p): peer p's mate
// list starts empty with capacity b(p), so matching never allocates — stable
// solvers and initiative dynamics construct configurations with a constant
// number of allocations regardless of population size.
func NewConfig(budget []int) *Config {
	c := &Config{}
	c.Reset(budget)
	return c
}

// Reset re-initializes c to an empty configuration with the given budgets,
// recycling the budget copy, the mate-list headers and the backing slab when
// they are large enough. After Reset the configuration is indistinguishable
// from NewConfig(budget): no prior mates, budgets copied, every mate list
// empty with capacity b(p). Monte-Carlo loops that draw thousands of
// configurations call Reset (through core.Arena) instead of NewConfig so a
// draw costs zero steady-state allocations.
func (c *Config) Reset(budget []int) {
	total := 0
	for i, b := range budget {
		if b < 0 {
			panic(fmt.Sprintf("core: negative budget %d for peer %d", b, i))
		}
		total += b
	}
	n := len(budget)
	if cap(c.budget) < n {
		c.budget = make([]int, n)
	}
	c.budget = c.budget[:n]
	copy(c.budget, budget)
	if cap(c.mates) < n {
		c.mates = make([][]int, n)
	}
	c.mates = c.mates[:n]
	if cap(c.slab) < total {
		c.slab = make([]int, total)
	}
	c.slab = c.slab[:total]
	off := 0
	for i, b := range budget {
		// Full-slice expression caps the segment at b entries, so an append
		// past a raised budget reallocates privately instead of bleeding
		// into the next peer's segment.
		c.mates[i] = c.slab[off : off : off+b]
		off += b
	}
}

// NewUniformConfig returns an empty configuration where every one of the n
// peers has the same slot budget b0 (the paper's "constant b0-matching").
func NewUniformConfig(n, b0 int) *Config {
	budget := make([]int, n)
	for i := range budget {
		budget[i] = b0
	}
	return NewConfig(budget)
}

// N is the number of peers.
func (c *Config) N() int { return len(c.budget) }

// Budget returns b(p), peer p's slot budget.
func (c *Config) Budget(p int) int { return c.budget[p] }

// SetBudget changes b(p). Shrinking below the current degree drops p's worst
// mates until the budget is respected; the dropped mates are returned.
func (c *Config) SetBudget(p, b int) (dropped []int) {
	if b < 0 {
		panic(fmt.Sprintf("core: negative budget %d for peer %d", b, p))
	}
	c.budget[p] = b
	for len(c.mates[p]) > b {
		w := c.mates[p][len(c.mates[p])-1]
		c.Unmatch(p, w)
		dropped = append(dropped, w)
	}
	return dropped
}

// Degree returns the number of current mates of p.
func (c *Config) Degree(p int) int { return len(c.mates[p]) }

// Free reports whether p has at least one unused slot.
func (c *Config) Free(p int) bool { return len(c.mates[p]) < c.budget[p] }

// Mates returns p's current mates in increasing rank order. The caller must
// not modify the returned slice.
func (c *Config) Mates(p int) []int { return c.mates[p] }

// Matched reports whether i and j currently collaborate.
func (c *Config) Matched(i, j int) bool { return ints.Contains(c.mates[i], j) }

// Mate returns the single mate of p in a 1-matching, or −1 when p is
// unmatched. It panics if p holds more than one mate, because the paper's
// distance metric σ(C, i) is only defined for 1-matchings.
func (c *Config) Mate(p int) int {
	switch len(c.mates[p]) {
	case 0:
		return -1
	case 1:
		return c.mates[p][0]
	default:
		panic(fmt.Sprintf("core: Mate(%d) on peer with %d mates", p, len(c.mates[p])))
	}
}

// WorstMate returns p's worst (highest-rank) current mate, or −1 when p has
// none.
func (c *Config) WorstMate(p int) int {
	if len(c.mates[p]) == 0 {
		return -1
	}
	return c.mates[p][len(c.mates[p])-1]
}

// BestMate returns p's best (lowest-rank) current mate, or −1 when p has
// none.
func (c *Config) BestMate(p int) int {
	if len(c.mates[p]) == 0 {
		return -1
	}
	return c.mates[p][0]
}

// Match records the collaboration {i, j}. It returns an error if the pair is
// degenerate, already matched, or either side has no free slot; use Propose
// for blocking-pair semantics that drop worst mates instead.
func (c *Config) Match(i, j int) error {
	switch {
	case i == j:
		return fmt.Errorf("core: match %d with itself", i)
	case i < 0 || j < 0 || i >= c.N() || j >= c.N():
		return fmt.Errorf("core: match %d-%d out of range [0,%d)", i, j, c.N())
	case c.Matched(i, j):
		return fmt.Errorf("core: %d-%d already matched", i, j)
	case !c.Free(i):
		return fmt.Errorf("core: peer %d has no free slot", i)
	case !c.Free(j):
		return fmt.Errorf("core: peer %d has no free slot", j)
	}
	c.mates[i] = ints.Insert(c.mates[i], j)
	c.mates[j] = ints.Insert(c.mates[j], i)
	return nil
}

// Unmatch removes the collaboration {i, j} if present and reports whether it
// existed.
func (c *Config) Unmatch(i, j int) bool {
	if !c.Matched(i, j) {
		return false
	}
	c.mates[i] = ints.Remove(c.mates[i], j)
	c.mates[j] = ints.Remove(c.mates[j], i)
	return true
}

// Isolate removes every collaboration of p (peer departure). The former
// mates are returned so churn can wake them for new initiatives; the
// returned slice lives in configuration-owned scratch and is valid until
// the next Isolate call.
func (c *Config) Isolate(p int) []int {
	if len(c.mates[p]) == 0 {
		return nil
	}
	c.isoScratch = append(c.isoScratch[:0], c.mates[p]...)
	old := c.isoScratch
	for _, m := range old {
		c.Unmatch(p, m)
	}
	return old
}

// Wants reports whether p strictly prefers adding q over its current
// situation: either p has a free slot, or q outranks p's worst mate. It does
// not consult the acceptance graph.
func (c *Config) Wants(p, q int) bool {
	if p == q {
		return false
	}
	if c.Free(p) {
		return c.budget[p] > 0
	}
	return q < c.WorstMate(p)
}

// Propose executes the blocking pair {i, j}: both sides drop their worst
// mate if full, then match. It returns the peers that lost a mate in the
// process (at most one per side); the returned slice lives in
// configuration-owned scratch and is valid until the next Propose call.
// Calling Propose on a non-blocking pair corrupts nothing but may degrade a
// peer, so callers check IsBlockingPair first; Propose verifies only
// capacity invariants.
func (c *Config) Propose(i, j int) []int {
	if c.Matched(i, j) || i == j {
		return nil
	}
	nd := 0
	if !c.Free(i) {
		w := c.WorstMate(i)
		c.Unmatch(i, w)
		c.dropScratch[nd] = w
		nd++
	}
	if !c.Free(j) {
		w := c.WorstMate(j)
		c.Unmatch(j, w)
		c.dropScratch[nd] = w
		nd++
	}
	if err := c.Match(i, j); err != nil {
		// Both sides were just given a free slot (or had one); a failure
		// here is a programming error, not a runtime condition.
		panic(err)
	}
	if nd == 0 {
		return nil
	}
	return c.dropScratch[:nd]
}

// Clone returns a deep copy of the configuration.
func (c *Config) Clone() *Config {
	cp := NewConfig(c.budget)
	for i, m := range c.mates {
		// Budgets bound mate-list lengths, so the copies stay inside the
		// fresh slab segments.
		cp.mates[i] = append(cp.mates[i], m...)
	}
	return cp
}

// Equal reports whether two configurations have identical mate sets. Budgets
// are not compared: two configs over the same peers are equal iff they pair
// the same peers.
func (c *Config) Equal(o *Config) bool {
	if c.N() != o.N() {
		return false
	}
	for i := range c.mates {
		if !ints.Equal(c.mates[i], o.mates[i]) {
			return false
		}
	}
	return true
}

// TotalEdges returns the number of collaborations in the configuration.
func (c *Config) TotalEdges() int {
	total := 0
	for _, m := range c.mates {
		total += len(m)
	}
	return total / 2
}

// TotalSlots returns B = Σ b(p), the maximal number of connection endpoints
// (Theorem 1 bounds convergence by B/2 initiatives).
func (c *Config) TotalSlots() int {
	total := 0
	for _, b := range c.budget {
		total += b
	}
	return total
}

// CollabGraph converts the configuration to a graph.Adjacency so the cluster
// package can analyze components and offsets of the collaboration graph.
func (c *Config) CollabGraph() *graph.Adjacency {
	g := graph.NewAdjacency(c.N())
	for i, m := range c.mates {
		for _, j := range m {
			if j > i {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Validate checks internal invariants (budgets respected, symmetry, sorted
// mate lists, no self-loops) and returns a descriptive error on the first
// violation. Tests and simulations call it after mutation batches.
func (c *Config) Validate() error {
	for p, m := range c.mates {
		if len(m) > c.budget[p] {
			return fmt.Errorf("core: peer %d has %d mates, budget %d", p, len(m), c.budget[p])
		}
		prev := -1
		for _, q := range m {
			if q <= prev {
				return fmt.Errorf("core: peer %d mate list unsorted: %v", p, m)
			}
			prev = q
			if q == p {
				return fmt.Errorf("core: peer %d matched with itself", p)
			}
			if q < 0 || q >= c.N() {
				return fmt.Errorf("core: peer %d matched out of range: %d", p, q)
			}
			if !ints.Contains(c.mates[q], p) {
				return fmt.Errorf("core: asymmetric match %d-%d", p, q)
			}
		}
	}
	return nil
}
