package core

import (
	"testing"

	"stratmatch/internal/graph"
)

func TestNewConfigBudgets(t *testing.T) {
	c := NewConfig([]int{2, 0, 3})
	if c.N() != 3 {
		t.Fatalf("N = %d", c.N())
	}
	if c.Budget(0) != 2 || c.Budget(1) != 0 || c.Budget(2) != 3 {
		t.Fatal("budgets not stored")
	}
	if c.TotalSlots() != 5 {
		t.Fatalf("TotalSlots = %d", c.TotalSlots())
	}
}

func TestNewConfigCopiesBudgets(t *testing.T) {
	b := []int{1, 1}
	c := NewConfig(b)
	b[0] = 99
	if c.Budget(0) != 1 {
		t.Fatal("budget slice aliased")
	}
}

func TestNewConfigPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative budget")
		}
	}()
	NewConfig([]int{1, -1})
}

func TestMatchUnmatch(t *testing.T) {
	c := NewUniformConfig(4, 1)
	if err := c.Match(0, 2); err != nil {
		t.Fatal(err)
	}
	if !c.Matched(0, 2) || !c.Matched(2, 0) {
		t.Fatal("match not symmetric")
	}
	if c.Mate(0) != 2 || c.Mate(2) != 0 {
		t.Fatal("Mate wrong")
	}
	if c.Mate(1) != -1 {
		t.Fatal("unmatched peer has a mate")
	}
	if err := c.Match(0, 2); err == nil {
		t.Fatal("re-match allowed")
	}
	if err := c.Match(0, 3); err == nil {
		t.Fatal("over-budget match allowed")
	}
	if err := c.Match(1, 1); err == nil {
		t.Fatal("self-match allowed")
	}
	if err := c.Match(1, 7); err == nil {
		t.Fatal("out-of-range match allowed")
	}
	if !c.Unmatch(0, 2) {
		t.Fatal("unmatch failed")
	}
	if c.Unmatch(0, 2) {
		t.Fatal("double unmatch reported true")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMatesSortedAndWorstBest(t *testing.T) {
	c := NewUniformConfig(6, 3)
	for _, j := range []int{5, 1, 3} {
		if err := c.Match(0, j); err != nil {
			t.Fatal(err)
		}
	}
	m := c.Mates(0)
	if len(m) != 3 || m[0] != 1 || m[1] != 3 || m[2] != 5 {
		t.Fatalf("mates = %v", m)
	}
	if c.BestMate(0) != 1 || c.WorstMate(0) != 5 {
		t.Fatal("best/worst wrong")
	}
	if c.Degree(0) != 3 || c.Free(0) {
		t.Fatal("degree/free wrong")
	}
}

func TestMatePanicsOnBMatching(t *testing.T) {
	c := NewUniformConfig(3, 2)
	mustMatch(t, c, 0, 1)
	mustMatch(t, c, 0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Mate on b-matching did not panic")
		}
	}()
	c.Mate(0)
}

func TestWants(t *testing.T) {
	c := NewUniformConfig(5, 1)
	if !c.Wants(0, 3) {
		t.Fatal("free peer should want anyone")
	}
	mustMatch(t, c, 0, 3)
	if !c.Wants(0, 2) {
		t.Fatal("peer should want better than worst mate")
	}
	if c.Wants(0, 4) {
		t.Fatal("peer should not want worse than worst mate")
	}
	if c.Wants(0, 0) {
		t.Fatal("peer wants itself")
	}
	z := NewUniformConfig(2, 0)
	if z.Wants(0, 1) {
		t.Fatal("zero-budget peer wants a mate")
	}
}

func TestProposeDropsWorst(t *testing.T) {
	c := NewUniformConfig(6, 1)
	mustMatch(t, c, 2, 5)
	mustMatch(t, c, 3, 4)
	// 2 and 3 prefer each other over their current mates.
	dropped := c.Propose(2, 3)
	if len(dropped) != 2 {
		t.Fatalf("dropped = %v", dropped)
	}
	if !c.Matched(2, 3) || c.Matched(2, 5) || c.Matched(3, 4) {
		t.Fatal("propose did not rewire")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := c.Propose(2, 3); d != nil {
		t.Fatal("propose on matched pair should be a no-op")
	}
}

func TestIsolate(t *testing.T) {
	c := NewUniformConfig(4, 2)
	mustMatch(t, c, 0, 1)
	mustMatch(t, c, 0, 2)
	old := c.Isolate(0)
	if len(old) != 2 {
		t.Fatalf("old mates %v", old)
	}
	if c.Degree(0) != 0 || c.Matched(1, 0) || c.Matched(2, 0) {
		t.Fatal("isolate left edges")
	}
}

func TestSetBudgetShrink(t *testing.T) {
	c := NewUniformConfig(5, 3)
	mustMatch(t, c, 0, 1)
	mustMatch(t, c, 0, 3)
	mustMatch(t, c, 0, 4)
	dropped := c.SetBudget(0, 1)
	if len(dropped) != 2 {
		t.Fatalf("dropped %v", dropped)
	}
	if dropped[0] != 4 || dropped[1] != 3 {
		t.Fatalf("dropped worst-first expected, got %v", dropped)
	}
	if c.Degree(0) != 1 || c.WorstMate(0) != 1 {
		t.Fatal("kept wrong mate")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneEqual(t *testing.T) {
	c := NewUniformConfig(4, 1)
	mustMatch(t, c, 0, 1)
	d := c.Clone()
	if !c.Equal(d) {
		t.Fatal("clone not equal")
	}
	mustMatch(t, d, 2, 3)
	if c.Equal(d) {
		t.Fatal("diverged clones equal")
	}
	if c.Matched(2, 3) {
		t.Fatal("clone aliased")
	}
}

func TestCollabGraph(t *testing.T) {
	c := NewUniformConfig(4, 2)
	mustMatch(t, c, 0, 1)
	mustMatch(t, c, 1, 2)
	g := c.CollabGraph()
	if g.EdgeCount() != 2 || !g.Acceptable(0, 1) || !g.Acceptable(1, 2) {
		t.Fatal("collab graph wrong")
	}
	if c.TotalEdges() != 2 {
		t.Fatalf("TotalEdges = %d", c.TotalEdges())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := NewUniformConfig(3, 1)
	mustMatch(t, c, 0, 1)
	// Corrupt: symmetric removal bypassed.
	c.mates[1] = nil
	if err := c.Validate(); err == nil {
		t.Fatal("validate missed asymmetry")
	}
}

func mustMatch(t *testing.T, c *Config, i, j int) {
	t.Helper()
	if err := c.Match(i, j); err != nil {
		t.Fatal(err)
	}
}

func mustStable(t *testing.T, c *Config, g graph.Graph) {
	t.Helper()
	if i, j := FindBlockingPair(c, g); i >= 0 {
		t.Fatalf("blocking pair (%d, %d)", i, j)
	}
}
