package core

// Distance is the paper's normalized configuration distance
//
//	D(C1, C2) = Σ_i Σ_k |σ_k(C1, i) − σ_k(C2, i)| · 2 / (B·(n+1))
//
// where σ_k(C, i) is the k-th best mate of peer i in C, a missing mate reads
// as the sentinel rank n (the paper's "n+1" in 1-based labels), and
// B = Σ_i max(b1(i), b2(i)). For 1-matchings this is exactly the paper's
// metric: the distance between a perfect matching and the empty
// configuration is 1. The generalization to b-matchings keeps that
// normalization property per slot.
//
// Distance panics if the two configurations disagree on the peer count;
// comparing different populations is a programming error.
func Distance(c1, c2 *Config) float64 {
	n := c1.N()
	if c2.N() != n {
		panic("core: Distance between configurations of different sizes")
	}
	if n == 0 {
		return 0
	}
	var total, slots int
	for i := 0; i < n; i++ {
		m1, m2 := c1.Mates(i), c2.Mates(i)
		b := c1.Budget(i)
		if b2 := c2.Budget(i); b2 > b {
			b = b2
		}
		if len(m1) > b {
			b = len(m1)
		}
		if len(m2) > b {
			b = len(m2)
		}
		slots += b
		for k := 0; k < b; k++ {
			s1, s2 := n, n
			if k < len(m1) {
				s1 = m1[k]
			}
			if k < len(m2) {
				s2 = m2[k]
			}
			if s1 > s2 {
				total += s1 - s2
			} else {
				total += s2 - s1
			}
		}
	}
	if slots == 0 {
		return 0
	}
	return float64(total) * 2 / (float64(slots) * float64(n+1))
}

// Disorder is the distance from c to the stable configuration target — the
// quantity plotted on the y-axis of the paper's Figures 1–3.
func Disorder(c, stable *Config) float64 { return Distance(c, stable) }
