package core

import (
	"testing"
	"testing/quick"

	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

func tieScores(t *testing.T, scores []float64) *TieRanking {
	t.Helper()
	tr, err := NewTieRanking(scores)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTieRankingValidates(t *testing.T) {
	if _, err := NewTieRanking([]float64{3, 5, 1}); err == nil {
		t.Fatal("increasing scores accepted")
	}
	tr := tieScores(t, []float64{5, 5, 3})
	if tr.N() != 3 || tr.Score(2) != 3 {
		t.Fatal("scores not stored")
	}
	// Copied, not aliased.
	src := []float64{2, 1}
	tr2 := tieScores(t, src)
	src[0] = 99
	if tr2.Score(0) != 2 {
		t.Fatal("scores aliased")
	}
}

func TestTiePreferences(t *testing.T) {
	tr := tieScores(t, []float64{5, 5, 3})
	if tr.Prefers(0, 1) || tr.Prefers(1, 0) {
		t.Fatal("tied peers must not be strictly preferred")
	}
	if !tr.Tied(0, 1) || tr.Tied(0, 2) {
		t.Fatal("Tied wrong")
	}
	if !tr.Prefers(1, 2) {
		t.Fatal("5 should beat 3")
	}
}

func TestTieBlockingWeakerThanStrict(t *testing.T) {
	// Three equal peers, b=1, complete graph: any single edge is
	// tie-stable (the unmatched peer cannot strictly tempt anybody), while
	// the strict model would call (0, 2) non-blocking but (…) — crucially,
	// under strict ranks the matched configuration {1,2} has blocking pair
	// (0,1): 1 strictly prefers 0. Under ties it does not.
	g := graph.NewComplete(3)
	tr := tieScores(t, []float64{7, 7, 7})
	c := NewUniformConfig(3, 1)
	mustMatch(t, c, 1, 2)
	if !IsStableTie(c, g, tr) {
		t.Fatal("all-tied single edge should be tie-stable")
	}
	if IsStable(c, g) {
		t.Fatal("strict model must see blocking pair (0,1)")
	}
}

func TestTieStableNotUnique(t *testing.T) {
	// With one tie class of four peers and b=1 there are multiple
	// tie-stable perfect matchings.
	g := graph.NewComplete(4)
	tr := tieScores(t, []float64{1, 1, 1, 1})
	a := NewUniformConfig(4, 1)
	mustMatch(t, a, 0, 1)
	mustMatch(t, a, 2, 3)
	b := NewUniformConfig(4, 1)
	mustMatch(t, b, 0, 2)
	mustMatch(t, b, 1, 3)
	if !IsStableTie(a, g, tr) || !IsStableTie(b, g, tr) {
		t.Fatal("both pairings should be tie-stable")
	}
	if a.Equal(b) {
		t.Fatal("configurations should differ")
	}
}

func TestStableTieIsTieStable(t *testing.T) {
	// The strict refinement's stable configuration is tie-stable for any
	// score profile with ties (quantized scores force heavy tying).
	check := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := 2 + int(nRaw%50)
		scores := make([]float64, n)
		v := 10.0
		for i := range scores {
			scores[i] = v
			if r.Bool(0.3) {
				v -= 1 // start a new tie class
			}
		}
		tr, err := NewTieRanking(scores)
		if err != nil {
			return false
		}
		g := graph.ErdosRenyiMeanDegree(n, 6, r)
		budgets := make([]int, n)
		for i := range budgets {
			budgets[i] = 1 + r.Intn(3)
		}
		c := StableTie(g, budgets, tr)
		return IsStableTie(c, g, tr)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTieInitiativesTerminate(t *testing.T) {
	// The paper: "Simulations have shown our results hold if we allow
	// ties". Tie initiatives from the empty configuration must terminate
	// at a tie-stable configuration.
	check := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := 4 + int(nRaw%40)
		scores := make([]float64, n)
		v := 100.0
		for i := range scores {
			scores[i] = v
			if r.Bool(0.25) {
				v -= 5
			}
		}
		tr, err := NewTieRanking(scores)
		if err != nil {
			return false
		}
		g := graph.ErdosRenyiMeanDegree(n, 6, r)
		c := NewUniformConfig(n, 2)
		limit := 500 * n
		for k := 0; k < limit; k++ {
			p := r.Intn(n)
			if active, _ := TieInitiative(c, g, tr, p); !active {
				if i, _ := FindBlockingPairTie(c, g, tr); i < 0 {
					return true // tie-stable reached
				}
			}
		}
		// Dynamics may still hold a blocking pair only if we exhausted the
		// budget without stabilizing — treat as failure.
		i, _ := FindBlockingPairTie(c, g, tr)
		return i < 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTieInitiativeInactiveOnStable(t *testing.T) {
	r := rng.New(5)
	g := graph.ErdosRenyiMeanDegree(60, 5, r)
	scores := make([]float64, 60)
	for i := range scores {
		scores[i] = float64(60 - i/4) // classes of 4
	}
	tr := tieScores(t, scores)
	c := StableTie(g, uniformBudgets(60, 2), tr)
	for p := 0; p < 60; p++ {
		if active, _ := TieInitiative(c, g, tr, p); active {
			t.Fatalf("active tie initiative on tie-stable config (peer %d)", p)
		}
	}
}

func TestBestBlockingMateTieZeroBudget(t *testing.T) {
	g := graph.NewComplete(3)
	tr := tieScores(t, []float64{3, 2, 1})
	c := NewConfig([]int{0, 1, 1})
	if got := BestBlockingMateTie(c, g, tr, 0); got != -1 {
		t.Fatalf("zero-budget peer proposed to %d", got)
	}
}

func uniformBudgets(n, b int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = b
	}
	return s
}
