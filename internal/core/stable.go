package core

import "stratmatch/internal/graph"

// Stable computes the unique stable configuration of the global-ranking
// b-matching problem on acceptance graph g with slot budgets b — the
// paper's Algorithm 1.
//
// The greedy construction walks peers from best to worst; each peer grabs
// the best remaining acceptable peers with free slots. Because every peer it
// picks gladly accepts (nobody better will ever want them), each connection
// is stable by induction, and the result is the unique stable configuration.
//
// Complexity is O(Σ_p deg(p)) on top of the neighbor scans, i.e. linear in
// the acceptance graph size.
// Loops that solve many instances should hold a core.Arena and call its
// Stable method instead: same algorithm, zero steady-state allocations.
func Stable(g graph.Graph, b []int) *Config {
	var a Arena
	c := a.Stable(g, b)
	a.releaseScratch()
	return c
}

// StableUniform computes the stable configuration where every peer has the
// same budget b0 (constant b0-matching).
func StableUniform(g graph.Graph, b0 int) *Config {
	var a Arena
	c := a.StableUniform(g, b0)
	a.releaseScratch()
	return c
}

// IsBlockingPair reports whether {i, j} blocks configuration c on acceptance
// graph g: they are acceptable, not matched together, and each side either
// has a free slot or prefers the other to its worst mate.
func IsBlockingPair(c *Config, g graph.Graph, i, j int) bool {
	if i == j || !g.Acceptable(i, j) || c.Matched(i, j) {
		return false
	}
	return c.Wants(i, j) && c.Wants(j, i)
}

// BestBlockingMate returns the best-ranked peer forming a blocking pair with
// p, or −1 when p blocks with nobody. This is the "best mate" initiative's
// scan: it assumes p knows the rank and availability of all its acceptable
// peers.
func BestBlockingMate(c *Config, g graph.Graph, p int) int {
	if c.Budget(p) == 0 {
		return -1
	}
	for _, q := range g.Neighbors(p) {
		// Neighbors are sorted best-first. Once q is no better than p's
		// worst mate and p is full, no later neighbor can block either.
		if !c.Free(p) && q > c.WorstMate(p) {
			return -1
		}
		if IsBlockingPair(c, g, p, q) {
			return q
		}
	}
	return -1
}

// FindBlockingPair scans the whole acceptance graph and returns the first
// blocking pair in lexicographic order, or (−1, −1) if c is stable. Use
// IsStable when only the boolean is needed.
func FindBlockingPair(c *Config, g graph.Graph) (int, int) {
	for i := 0; i < g.N(); i++ {
		for _, j := range g.Neighbors(i) {
			if j > i && IsBlockingPair(c, g, i, j) {
				return i, j
			}
		}
	}
	return -1, -1
}

// IsStable reports whether c has no blocking pair on g.
func IsStable(c *Config, g graph.Graph) bool {
	i, _ := FindBlockingPair(c, g)
	return i < 0
}
