package core

import "stratmatch/internal/graph"

// Stable computes the unique stable configuration of the global-ranking
// b-matching problem on acceptance graph g with slot budgets b — the
// paper's Algorithm 1.
//
// The greedy construction walks peers from best to worst; each peer grabs
// the best remaining acceptable peers with free slots. Because every peer it
// picks gladly accepts (nobody better will ever want them), each connection
// is stable by induction, and the result is the unique stable configuration.
//
// Complexity is O(Σ_p deg(p)) on top of the neighbor scans, i.e. linear in
// the acceptance graph size.
func Stable(g graph.Graph, b []int) *Config {
	c := NewConfig(b)
	avail := append([]int(nil), b...)
	for i := 0; i < g.N(); i++ {
		if avail[i] == 0 {
			continue
		}
		for _, j := range g.Neighbors(i) {
			// Neighbors are sorted by rank; only look at worse peers —
			// connections to better peers were made on their turn.
			if j < i {
				continue
			}
			if avail[j] == 0 {
				continue
			}
			if err := c.Match(i, j); err != nil {
				panic(err) // invariant: both sides have free slots
			}
			avail[i]--
			avail[j]--
			if avail[i] == 0 {
				break
			}
		}
	}
	return c
}

// StableUniform computes the stable configuration where every peer has the
// same budget b0 (constant b0-matching).
func StableUniform(g graph.Graph, b0 int) *Config {
	b := make([]int, g.N())
	for i := range b {
		b[i] = b0
	}
	return Stable(g, b)
}

// IsBlockingPair reports whether {i, j} blocks configuration c on acceptance
// graph g: they are acceptable, not matched together, and each side either
// has a free slot or prefers the other to its worst mate.
func IsBlockingPair(c *Config, g graph.Graph, i, j int) bool {
	if i == j || !g.Acceptable(i, j) || c.Matched(i, j) {
		return false
	}
	return c.Wants(i, j) && c.Wants(j, i)
}

// BestBlockingMate returns the best-ranked peer forming a blocking pair with
// p, or −1 when p blocks with nobody. This is the "best mate" initiative's
// scan: it assumes p knows the rank and availability of all its acceptable
// peers.
func BestBlockingMate(c *Config, g graph.Graph, p int) int {
	if c.Budget(p) == 0 {
		return -1
	}
	for _, q := range g.Neighbors(p) {
		// Neighbors are sorted best-first. Once q is no better than p's
		// worst mate and p is full, no later neighbor can block either.
		if !c.Free(p) && q > c.WorstMate(p) {
			return -1
		}
		if IsBlockingPair(c, g, p, q) {
			return q
		}
	}
	return -1
}

// FindBlockingPair scans the whole acceptance graph and returns the first
// blocking pair in lexicographic order, or (−1, −1) if c is stable. Use
// IsStable when only the boolean is needed.
func FindBlockingPair(c *Config, g graph.Graph) (int, int) {
	for i := 0; i < g.N(); i++ {
		for _, j := range g.Neighbors(i) {
			if j > i && IsBlockingPair(c, g, i, j) {
				return i, j
			}
		}
	}
	return -1, -1
}

// IsStable reports whether c has no blocking pair on g.
func IsStable(c *Config, g graph.Graph) bool {
	i, _ := FindBlockingPair(c, g)
	return i < 0
}
