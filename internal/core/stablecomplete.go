package core

// StableComplete computes the stable configuration on the *complete*
// acceptance graph without materializing it, in O(Σ b(p)) amortized time.
//
// This is Algorithm 1 specialized to Section 4's toy model: each peer in
// rank order grabs the next-best peers that still have free slots. A
// path-compressed "next available" pointer array skips exhausted peers, so
// populations of 10⁵+ peers (Table 1 and Figure 6 need large n for the
// factorial cluster growth) are processed in milliseconds.
// Loops that draw many configurations should hold a core.Arena and call its
// StableComplete method instead: same algorithm, zero steady-state
// allocations.
func StableComplete(budgets []int) *Config {
	var a Arena
	c := a.StableComplete(budgets)
	a.releaseScratch()
	return c
}

// StableCompleteUniform is StableComplete with the same budget b0 for all n
// peers (constant b0-matching: a chain of b0+1-cliques, Figure 4).
func StableCompleteUniform(n, b0 int) *Config {
	var a Arena
	c := a.StableCompleteUniform(n, b0)
	a.releaseScratch()
	return c
}
