package core

// StableComplete computes the stable configuration on the *complete*
// acceptance graph without materializing it, in O(Σ b(p)) amortized time.
//
// This is Algorithm 1 specialized to Section 4's toy model: each peer in
// rank order grabs the next-best peers that still have free slots. A
// path-compressed "next available" pointer array skips exhausted peers, so
// populations of 10⁵+ peers (Table 1 and Figure 6 need large n for the
// factorial cluster growth) are processed in milliseconds.
func StableComplete(budgets []int) *Config {
	n := len(budgets)
	c := NewConfig(budgets)
	avail := append([]int(nil), budgets...)

	// nxt[j] points towards the smallest peer k ≥ j that may still have a
	// free slot; n is the sentinel "no such peer".
	nxt := make([]int, n+1)
	for j := 0; j <= n; j++ {
		nxt[j] = j
	}
	for j := 0; j < n; j++ {
		if avail[j] == 0 {
			nxt[j] = j + 1
		}
	}
	find := func(x int) int {
		root := x
		for nxt[root] != root {
			root = nxt[root]
		}
		for nxt[x] != root {
			nxt[x], x = root, nxt[x]
		}
		return root
	}

	for i := 0; i < n; i++ {
		if avail[i] == 0 {
			continue
		}
		j := find(i + 1)
		for avail[i] > 0 && j < n {
			if err := c.Match(i, j); err != nil {
				panic(err) // invariant: both sides have free slots
			}
			avail[i]--
			avail[j]--
			if avail[j] == 0 {
				nxt[j] = j + 1
			}
			j = find(j + 1)
		}
		// Any slots i still holds can never be used: every later peer is
		// exhausted, and earlier peers completed their turns.
	}
	return c
}

// StableCompleteUniform is StableComplete with the same budget b0 for all n
// peers (constant b0-matching: a chain of b0+1-cliques, Figure 4).
func StableCompleteUniform(n, b0 int) *Config {
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = b0
	}
	return StableComplete(budgets)
}
