package core

import (
	"math"
	"testing"
	"testing/quick"

	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

func TestDistanceEmptyToPerfect(t *testing.T) {
	// The paper normalizes D so that the distance between a complete
	// 1-matching and the empty configuration is exactly 1.
	for _, n := range []int{2, 4, 10, 100} {
		g := graph.NewComplete(n)
		full := StableUniform(g, 1)
		empty := NewUniformConfig(n, 1)
		if d := Distance(full, empty); math.Abs(d-1) > 1e-12 {
			t.Fatalf("n=%d: D(full, empty) = %v, want 1", n, d)
		}
	}
}

func TestDistanceIdentity(t *testing.T) {
	g := graph.NewComplete(8)
	c := StableUniform(g, 1)
	if d := Distance(c, c); d != 0 {
		t.Fatalf("D(c,c) = %v", d)
	}
	if d := Distance(c, c.Clone()); d != 0 {
		t.Fatalf("D(c, clone) = %v", d)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10
		g := graph.ErdosRenyiMeanDegree(n, 4, r)
		c1 := StableUniform(g, 1)
		c2 := NewUniformConfig(n, 1)
		if g.Acceptable(0, 1) {
			_ = c2.Match(0, 1)
		}
		return Distance(c1, c2) == Distance(c2, c1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	// D is a sum of per-slot absolute differences, so the triangle
	// inequality must hold; verify on random triples.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 12
		g := graph.NewComplete(n)
		mk := func() *Config {
			c := NewUniformConfig(n, 1)
			for k := 0; k < n; k++ {
				i, j := r.Intn(n), r.Intn(n)
				if i != j && c.Free(i) && c.Free(j) && !c.Matched(i, j) {
					_ = c.Match(i, j)
				}
			}
			return c
		}
		a, b, cc := mk(), mk(), mk()
		_ = g
		return Distance(a, cc) <= Distance(a, b)+Distance(b, cc)+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceDifferentSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for size mismatch")
		}
	}()
	Distance(NewUniformConfig(3, 1), NewUniformConfig(4, 1))
}

func TestDistanceZeroPeers(t *testing.T) {
	if d := Distance(NewUniformConfig(0, 1), NewUniformConfig(0, 1)); d != 0 {
		t.Fatalf("D on empty population = %v", d)
	}
	if d := Distance(NewUniformConfig(3, 0), NewUniformConfig(3, 0)); d != 0 {
		t.Fatalf("D with zero budgets = %v", d)
	}
}

func TestDistanceSingleSwap(t *testing.T) {
	// Moving one peer's mate by one rank changes D by 2·2/(n(n+1)):
	// both endpoints' σ change by 1.
	const n = 6
	c1 := NewUniformConfig(n, 1)
	c2 := NewUniformConfig(n, 1)
	mustMatch(t, c1, 0, 1)
	mustMatch(t, c2, 0, 2)
	// c1: σ(0)=1, σ(1)=0, σ(2)=n. c2: σ(0)=2, σ(1)=n, σ(2)=0.
	want := float64(1+(n-0)+(n-0)) * 2 / float64(n*(n+1))
	if d := Distance(c1, c2); math.Abs(d-want) > 1e-12 {
		t.Fatalf("D = %v, want %v", d, want)
	}
}

func TestDistanceBMatchingNormalization(t *testing.T) {
	// For b-matchings the full-vs-empty distance stays 1 when every slot is
	// used symmetrically: complete graph, n divisible by b0+1.
	g := graph.NewComplete(6)
	full := StableUniform(g, 2) // two 3-cliques, every slot used
	empty := NewUniformConfig(6, 2)
	d := Distance(full, empty)
	if d <= 0 || d > 1 {
		t.Fatalf("D(full,empty) = %v, want in (0,1]", d)
	}
}
