package core

import (
	"testing"
	"testing/quick"

	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

func TestBestMateStrategyReachesStable(t *testing.T) {
	r := rng.New(1)
	g := graph.ErdosRenyiMeanDegree(200, 8, r)
	want := StableUniform(g, 1)
	c := NewUniformConfig(200, 1)
	s := BestMateStrategy{}
	for rounds := 0; rounds < 200*50 && !c.Equal(want); rounds++ {
		p := r.Intn(200)
		_, _ = Initiative(c, g, p, s)
	}
	if !c.Equal(want) {
		t.Fatal("best-mate initiatives did not reach the stable configuration")
	}
	mustStable(t, c, g)
}

func TestDecrementalStrategyReachesStable(t *testing.T) {
	r := rng.New(2)
	g := graph.ErdosRenyiMeanDegree(150, 6, r)
	want := StableUniform(g, 1)
	c := NewUniformConfig(150, 1)
	s := NewDecrementalStrategy(150)
	for rounds := 0; rounds < 150*100 && !c.Equal(want); rounds++ {
		_, _ = Initiative(c, g, r.Intn(150), s)
	}
	if !c.Equal(want) {
		t.Fatal("decremental initiatives did not reach the stable configuration")
	}
}

func TestRandomStrategyReachesStable(t *testing.T) {
	r := rng.New(3)
	g := graph.ErdosRenyiMeanDegree(100, 6, r)
	want := StableUniform(g, 1)
	c := NewUniformConfig(100, 1)
	s := NewRandomStrategy(r.Split())
	for rounds := 0; rounds < 100*500 && !c.Equal(want); rounds++ {
		_, _ = Initiative(c, g, r.Intn(100), s)
	}
	if !c.Equal(want) {
		t.Fatal("random initiatives did not reach the stable configuration")
	}
}

func TestInitiativeOnStableIsInactive(t *testing.T) {
	r := rng.New(4)
	g := graph.ErdosRenyiMeanDegree(80, 5, r)
	c := StableUniform(g, 2)
	strategies := []Strategy{
		BestMateStrategy{},
		NewDecrementalStrategy(80),
		NewRandomStrategy(r.Split()),
	}
	for _, s := range strategies {
		for p := 0; p < 80; p++ {
			if active, _ := Initiative(c, g, p, s); active {
				t.Fatalf("%T: active initiative on stable config (peer %d)", s, p)
			}
		}
	}
}

func TestInitiativeEmptyNeighborhood(t *testing.T) {
	g := graph.NewAdjacency(3)
	c := NewUniformConfig(3, 1)
	for _, s := range []Strategy{
		BestMateStrategy{},
		NewDecrementalStrategy(3),
		NewRandomStrategy(rng.New(1)),
	} {
		if active, _ := Initiative(c, g, 0, s); active {
			t.Fatalf("%T active with no neighbors", s)
		}
	}
}

// TestTheorem1Bound verifies the first half of Theorem 1: the stable
// configuration is reachable within B/2 active initiatives, where
// B = Σ b(p). The witnessing schedule replays Algorithm 1's connections
// best-peer-first via best-mate initiatives.
func TestTheorem1Bound(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := 2 + int(nRaw%50)
		g := graph.ErdosRenyiMeanDegree(n, 6, r)
		want := StableUniform(g, 2)
		c := NewUniformConfig(n, 2)
		budgetSum := c.TotalSlots()
		active := 0
		// Best-peer-first schedule: each best-mate initiative by peer p
		// re-creates one stable edge and never breaks a stable one.
		for p := 0; p < n; p++ {
			for {
				ok, _ := Initiative(c, g, p, BestMateStrategy{})
				if !ok {
					break
				}
				active++
			}
		}
		return c.Equal(want) && active <= budgetSum/2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem1Termination verifies the second half of Theorem 1: any
// sequence of active initiatives terminates at the stable configuration —
// no cycles are possible under a global ranking.
func TestTheorem1Termination(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := 2 + int(nRaw%30)
		g := graph.ErdosRenyiMeanDegree(n, 5, r)
		want := StableUniform(g, 1)
		c := NewUniformConfig(n, 1)
		s := NewRandomStrategy(r.Split())
		limit := 1000 * n // far above any plausible mixing time
		for k := 0; k < limit; k++ {
			_, _ = Initiative(c, g, r.Intn(n), s)
			if c.Equal(want) {
				return true
			}
		}
		return IsStable(c, g) // if not equal it must at least be stable=want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDecrementalCursorAdvances(t *testing.T) {
	g := graph.NewComplete(4)
	c := NewUniformConfig(4, 1)
	s := NewDecrementalStrategy(4)
	q := s.Propose(c, g, 3)
	if q != 0 {
		t.Fatalf("first proposal = %d, want 0", q)
	}
	c.Propose(3, q)
	// 3 is now matched with 0; 0 is 3's best possible mate, no more blocks
	// for 3 until someone steals 0.
	if q2 := s.Propose(c, g, 3); q2 != -1 {
		t.Fatalf("second proposal = %d, want -1", q2)
	}
}
