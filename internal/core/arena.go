package core

import "stratmatch/internal/graph"

// Arena owns the reusable storage behind repeated stable-matching draws: a
// recycled Config (budget copy, mate-list headers, mate slab) plus the
// solver scratch of Algorithm 1 and its complete-graph specialization. Sweep
// and Monte-Carlo loops that used to construct a fresh Config per draw hold
// one Arena per worker instead, making a draw cost zero steady-state
// allocations while producing byte-identical configurations.
//
// The *Config returned by an Arena method is owned by the arena: it is valid
// until the arena's next call, which overwrites it in place. Callers that
// need a draw to outlive the next one must Clone it. The zero Arena is ready
// to use; an Arena is single-goroutine (parallel fan-outs keep one per
// worker, like cluster.Analyzer).
type Arena struct {
	cfg Config
	// avail / nxt are the free-slot counters and path-compressed skip
	// pointers of the stable solvers.
	avail []int
	nxt   []int
	// uniform holds the materialized budget vector of uniform-budget draws.
	uniform []int
}

// Reset re-initializes the arena's Config to empty with the given budgets
// and returns it (see Config.Reset for the recycling contract). Unlike a
// bare Config.Reset, slab growth takes 1/8 headroom: normal-budget sweeps
// draw totals that fluctuate around n·b̄, and without slack every new
// maximum would reallocate the whole slab.
func (a *Arena) Reset(budgets []int) *Config {
	total := 0
	for _, b := range budgets {
		if b > 0 {
			total += b
		}
	}
	if cap(a.cfg.slab) < total {
		a.cfg.slab = make([]int, 0, total+total/8)
	}
	a.cfg.Reset(budgets)
	return &a.cfg
}

// releaseScratch drops the solver scratch. One-shot wrappers call it before
// returning &a.cfg so the escaping Config does not pin avail/nxt/uniform
// (~3n ints) for its whole lifetime.
func (a *Arena) releaseScratch() {
	a.avail, a.nxt, a.uniform = nil, nil, nil
}

// intScratch returns dst resized to n, reallocating only on growth.
func intScratch(dst *[]int, n int) []int {
	if cap(*dst) < n {
		*dst = make([]int, n)
	}
	*dst = (*dst)[:n]
	return *dst
}

// uniformBudgets fills the arena's uniform-budget scratch with n copies of
// b0.
func (a *Arena) uniformBudgets(n, b0 int) []int {
	u := intScratch(&a.uniform, n)
	for i := range u {
		u[i] = b0
	}
	return u
}

// StableComplete is core.StableComplete drawing into the arena: the stable
// configuration of the complete acceptance graph with the given budgets,
// with zero steady-state allocations across repeated calls.
func (a *Arena) StableComplete(budgets []int) *Config {
	n := len(budgets)
	c := a.Reset(budgets)
	avail := intScratch(&a.avail, n)
	copy(avail, budgets)

	// nxt[j] points towards the smallest peer k ≥ j that may still have a
	// free slot; n is the sentinel "no such peer".
	nxt := intScratch(&a.nxt, n+1)
	for j := 0; j <= n; j++ {
		nxt[j] = j
	}
	for j := 0; j < n; j++ {
		if avail[j] == 0 {
			nxt[j] = j + 1
		}
	}
	find := func(x int) int {
		root := x
		for nxt[root] != root {
			root = nxt[root]
		}
		for nxt[x] != root {
			nxt[x], x = root, nxt[x]
		}
		return root
	}

	for i := 0; i < n; i++ {
		if avail[i] == 0 {
			continue
		}
		j := find(i + 1)
		for avail[i] > 0 && j < n {
			if err := c.Match(i, j); err != nil {
				panic(err) // invariant: both sides have free slots
			}
			avail[i]--
			avail[j]--
			if avail[j] == 0 {
				nxt[j] = j + 1
			}
			j = find(j + 1)
		}
		// Any slots i still holds can never be used: every later peer is
		// exhausted, and earlier peers completed their turns.
	}
	return c
}

// StableCompleteUniform is core.StableCompleteUniform drawing into the
// arena.
func (a *Arena) StableCompleteUniform(n, b0 int) *Config {
	return a.StableComplete(a.uniformBudgets(n, b0))
}

// Stable is core.Stable drawing into the arena: Algorithm 1 on acceptance
// graph g with the given budgets.
func (a *Arena) Stable(g graph.Graph, b []int) *Config {
	c := a.Reset(b)
	avail := intScratch(&a.avail, len(b))
	copy(avail, b)
	for i := 0; i < g.N(); i++ {
		if avail[i] == 0 {
			continue
		}
		for _, j := range g.Neighbors(i) {
			// Neighbors are sorted by rank; only look at worse peers —
			// connections to better peers were made on their turn.
			if j < i {
				continue
			}
			if avail[j] == 0 {
				continue
			}
			if err := c.Match(i, j); err != nil {
				panic(err) // invariant: both sides have free slots
			}
			avail[i]--
			avail[j]--
			if avail[i] == 0 {
				break
			}
		}
	}
	return c
}

// StableUniform is core.StableUniform drawing into the arena.
func (a *Arena) StableUniform(g graph.Graph, b0 int) *Config {
	return a.Stable(g, a.uniformBudgets(g.N(), b0))
}
