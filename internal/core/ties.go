package core

import (
	"fmt"

	"stratmatch/internal/graph"
)

// TieRanking models the paper's "Note on ties": peers carry intrinsic
// scores and equal scores are genuine ties. A peer only moves for a
// *strict* score improvement, so blocking pairs (and hence stability) are
// weaker than in the strict model: more configurations are stable and the
// stable configuration is generally not unique.
//
// Peer indices must still be sorted by non-increasing score (index 0 the
// best), the repository-wide rank convention; ties appear as equal adjacent
// scores. NewTieRanking enforces this, which keeps every Config mate list
// weakly sorted by preference with no extra bookkeeping.
type TieRanking struct {
	scores []float64
}

// NewTieRanking validates that scores are non-increasing by peer index and
// wraps them. The slice is copied.
func NewTieRanking(scores []float64) (*TieRanking, error) {
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[i-1] {
			return nil, fmt.Errorf("core: scores must be non-increasing by rank; "+
				"score[%d]=%v > score[%d]=%v", i, scores[i], i-1, scores[i-1])
		}
	}
	return &TieRanking{scores: append([]float64(nil), scores...)}, nil
}

// N is the number of peers.
func (t *TieRanking) N() int { return len(t.scores) }

// Score returns peer p's intrinsic score.
func (t *TieRanking) Score(p int) float64 { return t.scores[p] }

// Prefers reports whether q is strictly better than r.
func (t *TieRanking) Prefers(q, r int) bool { return t.scores[q] > t.scores[r] }

// Tied reports whether q and r have equal scores.
func (t *TieRanking) Tied(q, r int) bool { return t.scores[q] == t.scores[r] }

// WantsTie reports whether p strictly improves by adding q under the tie
// ranking: a free slot, or q strictly better than p's worst mate.
func WantsTie(c *Config, t *TieRanking, p, q int) bool {
	if p == q {
		return false
	}
	if c.Free(p) {
		return c.Budget(p) > 0
	}
	return t.Prefers(q, c.WorstMate(p))
}

// IsBlockingPairTie reports whether {i, j} blocks c under tie semantics:
// acceptable, unmatched, and both sides strictly improve.
func IsBlockingPairTie(c *Config, g graph.Graph, t *TieRanking, i, j int) bool {
	if i == j || !g.Acceptable(i, j) || c.Matched(i, j) {
		return false
	}
	return WantsTie(c, t, i, j) && WantsTie(c, t, j, i)
}

// FindBlockingPairTie returns the first tie-blocking pair in lexicographic
// order, or (−1, −1) when c is tie-stable.
func FindBlockingPairTie(c *Config, g graph.Graph, t *TieRanking) (int, int) {
	for i := 0; i < g.N(); i++ {
		for _, j := range g.Neighbors(i) {
			if j > i && IsBlockingPairTie(c, g, t, i, j) {
				return i, j
			}
		}
	}
	return -1, -1
}

// IsStableTie reports whether c has no tie-blocking pair on g.
func IsStableTie(c *Config, g graph.Graph, t *TieRanking) bool {
	i, _ := FindBlockingPairTie(c, g, t)
	return i < 0
}

// BestBlockingMateTie returns the best-scoring peer tie-blocking with p
// (ties inside the best score class broken by rank), or −1.
func BestBlockingMateTie(c *Config, g graph.Graph, t *TieRanking, p int) int {
	if c.Budget(p) == 0 {
		return -1
	}
	for _, q := range g.Neighbors(p) {
		// Neighbors are sorted by rank = weakly by score. Once p is full
		// and q no longer strictly improves on p's worst mate, no later
		// (weakly worse) neighbor can either.
		if !c.Free(p) && !t.Prefers(q, c.WorstMate(p)) {
			return -1
		}
		if IsBlockingPairTie(c, g, t, p, q) {
			return q
		}
	}
	return -1
}

// StableTie computes a tie-stable configuration by solving the strict model
// on the rank refinement of the tie ranking: a blocking pair under ties
// strictly improves both sides, hence also blocks under any strict
// refinement, so every refinement-stable configuration is tie-stable. Unlike
// the strict model the result is not unique — other tie-stable
// configurations exist whenever real ties do.
func StableTie(g graph.Graph, budgets []int, t *TieRanking) *Config {
	return Stable(g, budgets)
}

// TieInitiative lets p take one best-mate initiative under tie semantics and
// reports whether it was active.
func TieInitiative(c *Config, g graph.Graph, t *TieRanking, p int) (active bool, dropped []int) {
	q := BestBlockingMateTie(c, g, t, p)
	if q < 0 {
		return false, nil
	}
	return true, c.Propose(p, q)
}
