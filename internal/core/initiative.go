package core

import (
	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

// Strategy selects the mate a peer proposes to when it takes the initiative.
// The three implementations mirror the paper's Section 3 taxonomy, ordered
// by how much knowledge they assume about the neighborhood:
//
//   - BestMate: p knows the rank and willingness of every acceptable peer
//     and proposes to the best blocking mate.
//   - Decremental: p knows ranks but not willingness; it scans its
//     acceptance list circularly from the last asked position.
//   - Random: p knows nothing and probes one random acceptable peer.
type Strategy interface {
	// Propose returns the peer that p proposes to, or −1 when the strategy
	// finds no blocking mate this turn.
	Propose(c *Config, g graph.Graph, p int) int
}

// BestMateStrategy proposes to the best available blocking mate. It is
// stateless, so the zero value is ready to use.
type BestMateStrategy struct{}

var _ Strategy = BestMateStrategy{}

// Propose implements Strategy.
func (BestMateStrategy) Propose(c *Config, g graph.Graph, p int) int {
	return BestBlockingMate(c, g, p)
}

// DecrementalStrategy scans each peer's acceptance list circularly, resuming
// from the position after the previously asked peer, and proposes to the
// first blocking mate encountered. One call asks at most one full cycle.
type DecrementalStrategy struct {
	cursor []int
}

var _ Strategy = (*DecrementalStrategy)(nil)

// NewDecrementalStrategy returns a strategy with fresh cursors for n peers.
func NewDecrementalStrategy(n int) *DecrementalStrategy {
	return &DecrementalStrategy{cursor: make([]int, n)}
}

// Propose implements Strategy.
func (s *DecrementalStrategy) Propose(c *Config, g graph.Graph, p int) int {
	nb := g.Neighbors(p)
	if len(nb) == 0 || c.Budget(p) == 0 {
		return -1
	}
	start := s.cursor[p] % len(nb)
	for k := 0; k < len(nb); k++ {
		idx := (start + k) % len(nb)
		q := nb[idx]
		if IsBlockingPair(c, g, p, q) {
			s.cursor[p] = (idx + 1) % len(nb)
			return q
		}
	}
	return -1
}

// RandomStrategy probes a single uniformly random acceptable peer per
// initiative; the initiative is active only if that peer happens to block.
type RandomStrategy struct {
	r *rng.RNG
}

var _ Strategy = (*RandomStrategy)(nil)

// NewRandomStrategy returns a random-probe strategy drawing from r.
func NewRandomStrategy(r *rng.RNG) *RandomStrategy {
	return &RandomStrategy{r: r}
}

// Propose implements Strategy.
func (s *RandomStrategy) Propose(c *Config, g graph.Graph, p int) int {
	nb := g.Neighbors(p)
	if len(nb) == 0 || c.Budget(p) == 0 {
		return -1
	}
	q := nb[s.r.Intn(len(nb))]
	if IsBlockingPair(c, g, p, q) {
		return q
	}
	return -1
}

// Initiative lets peer p take one initiative with strategy s on
// configuration c. It returns whether the initiative was active (modified
// the configuration) and the peers that lost a mate as a consequence (in
// Propose's configuration-owned scratch — consume before the next
// initiative).
func Initiative(c *Config, g graph.Graph, p int, s Strategy) (active bool, dropped []int) {
	q := s.Propose(c, g, p)
	if q < 0 {
		return false, nil
	}
	return true, c.Propose(p, q)
}
