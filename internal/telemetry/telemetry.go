// Package telemetry is the repository's runtime-observability layer: a
// small, fixed registry of counters, gauges and duration histograms that
// the simulation engine, the parallel fan-outs and the experiment harness
// record into while they run.
//
// The design constraint is the same one the engine's hot paths live under:
// observability must never perturb the simulation. Concretely,
//
//   - every metric is addressed by a static integer ID into a fixed-size
//     array — no maps, no string hashing, no interface boxing on the
//     recording path;
//   - a nil *Recorder is the disabled state, and every method is a nil-check
//     no-op on it, so instrumented code carries exactly one predictable
//     branch per hook and allocates nothing (pinned by
//     TestRecorderDisabledZeroAlloc and the BenchmarkScenarioTelemetry
//     on/off differential);
//   - recording never draws randomness and never touches simulation state,
//     only the monotonic clock, so byte-identical determinism survives with
//     telemetry on;
//   - all cells are updated with atomic operations, so a live HTTP scrape
//     (Prometheus exposition, expvar) can read a Recorder while the
//     simulation thread writes it, cleanly under the race detector.
//
// Duration histograms use fixed power-of-two-microsecond buckets: wide
// enough to cover a sub-microsecond choke pass and a multi-second
// experiment in the same 26-cell layout, and cheap to index (one Len64).
package telemetry

import (
	"context"
	"math/bits"
	"runtime/trace"
	"sync/atomic"
	"time"
)

// CounterID identifies a monotonic event counter in the static registry.
type CounterID uint8

// The counter registry. Adding a counter means adding an ID here and its
// exposition name in counterNames — nothing else; every consumer (snapshot,
// Prometheus, expvar) iterates the registry.
const (
	// CtrRounds counts simulation rounds stepped (Swarm.Step calls).
	CtrRounds CounterID = iota
	// CtrJoins / CtrDeparts / CtrCrashes count membership transitions.
	CtrJoins
	CtrDeparts
	CtrCrashes
	// CtrRechokes counts per-peer choke recomputations; CtrOptimistics
	// counts optimistic-unchoke rotations; CtrChokeSkips counts scheduled
	// rechokes the event-driven stepper proved to be no-ops and skipped;
	// CtrActiveRebuilds counts active-transfer-cache rebuilds (the
	// dirty-set layer's other cost — skips vs rebuilds shows when lazy
	// stepping wins).
	CtrRechokes
	CtrOptimistics
	CtrChokeSkips
	CtrActiveRebuilds
	// CtrPieces counts piece completions across all peers.
	CtrPieces
	// CtrAnnounces counts tracker announces served; CtrAnnounceEdges the
	// connections those handouts created; CtrAnnounceFailures the announces
	// lost to outages or announce loss; CtrAnnounceRetries the backoff
	// retries fired.
	CtrAnnounces
	CtrAnnounceEdges
	CtrAnnounceFailures
	CtrAnnounceRetries
	// CtrSamples counts time-series samples taken; CtrEvents the discrete
	// scenario events reported to observers.
	CtrSamples
	CtrEvents
	// CtrParTasks counts tasks executed by the internal/par worker pool.
	CtrParTasks
	// CtrExperiments counts experiment runs completed by
	// internal/experiments.Run.
	CtrExperiments
	// CtrCheckpointsWritten counts durable run checkpoints written;
	// CtrCheckpointBytes accumulates their sealed on-disk sizes.
	CtrCheckpointsWritten
	CtrCheckpointBytes
	// CtrServeAnnounces / CtrServeScrapes count announce and scrape
	// requests the tracker daemon served; CtrServeRuns counts scenario
	// runs it accepted over POST /runs.
	CtrServeAnnounces
	CtrServeScrapes
	CtrServeRuns
	numCounters
)

var counterNames = [numCounters]string{
	CtrRounds:           "btsim_rounds_total",
	CtrJoins:            "btsim_joins_total",
	CtrDeparts:          "btsim_departs_total",
	CtrCrashes:          "btsim_crashes_total",
	CtrRechokes:         "btsim_rechokes_total",
	CtrOptimistics:      "btsim_optimistic_rotations_total",
	CtrChokeSkips:       "btsim_choke_skips_total",
	CtrActiveRebuilds:   "btsim_active_rebuilds_total",
	CtrPieces:           "btsim_piece_completions_total",
	CtrAnnounces:        "btsim_announces_total",
	CtrAnnounceEdges:    "btsim_announce_edges_total",
	CtrAnnounceFailures: "btsim_announce_failures_total",
	CtrAnnounceRetries:  "btsim_announce_retries_total",
	CtrSamples:          "btsim_samples_total",
	CtrEvents:           "btsim_events_total",
	CtrParTasks:         "par_tasks_total",
	CtrExperiments:      "experiment_runs_total",

	CtrCheckpointsWritten: "btsim_checkpoints_written_total",
	CtrCheckpointBytes:    "btsim_checkpoint_bytes_total",

	CtrServeAnnounces: "trackerd_announces_total",
	CtrServeScrapes:   "trackerd_scrapes_total",
	CtrServeRuns:      "trackerd_runs_total",
}

// GaugeID identifies a last-value gauge in the static registry.
type GaugeID uint8

// The gauge registry: the scenario runner publishes the swarm's live
// population state at every sample, so a /metrics scrape mid-run sees where
// the simulation currently is.
const (
	GaugeRound GaugeID = iota
	GaugePresent
	GaugeLeechers
	GaugeSeeds
	GaugeStaleEdges
	// GaugeActiveRuns is the tracker daemon's currently executing
	// scenario-run count (bounded by its worker pool).
	GaugeActiveRuns
	// GaugeStepWorkers / GaugeShards publish the sharded stepper's current
	// worker count and shard count. Note: GaugeStepWorkers legitimately
	// differs between byte-identical runs at different -step-workers, so
	// identity cross-checks compare plain emit streams, not telemetry.
	GaugeStepWorkers
	GaugeShards
	numGauges
)

var gaugeNames = [numGauges]string{
	GaugeRound:      "btsim_round",
	GaugePresent:    "btsim_present_peers",
	GaugeLeechers:   "btsim_present_leechers",
	GaugeSeeds:      "btsim_present_seeds",
	GaugeStaleEdges: "btsim_stale_edges",
	GaugeActiveRuns: "trackerd_active_runs",

	GaugeStepWorkers: "btsim_step_workers",
	GaugeShards:      "btsim_shards",
}

// PhaseID identifies a duration histogram in the static registry — one per
// instrumented execution phase.
type PhaseID uint8

// The phase registry: the five swarm step phases the scenario runner and
// Step record, plus the fan-out layers above them.
const (
	// PhaseAnnounce is tracker handout time: arrival joins (each runs an
	// announce) plus the per-round re-announce pass and fault retries.
	PhaseAnnounce PhaseID = iota
	// PhaseChoke is the choke-decision half of Swarm.Step (rechoke +
	// optimistic rotation across all present peers).
	PhaseChoke
	// PhaseTransfer is the data-transfer half of Swarm.Step.
	PhaseTransfer
	// PhaseFaults is the fault layer's per-round work: window transitions,
	// partition cuts, crash draws, the failure-detection sweep and retry
	// dispatch.
	PhaseFaults
	// PhaseSample is time-series sampling plus observer delivery.
	PhaseSample
	// PhaseParTask is one task executed by the internal/par worker pool.
	PhaseParTask
	// PhaseExperiment is one whole experiment run
	// (internal/experiments.Run).
	PhaseExperiment
	// PhaseCheckpointWrite is one durable checkpoint snapshot (encode +
	// atomic write + rotation); PhaseCheckpointLoad is one resume load
	// (read + decode + invariant audit).
	PhaseCheckpointWrite
	PhaseCheckpointLoad
	// PhaseHandout is one tracker-daemon announce handout (registry lock
	// acquisition + neighbor selection), measured per served request.
	PhaseHandout
	// PhaseChokeShard / PhaseSendShard / PhaseRecvShard are per-shard
	// durations inside the sharded step phases, recorded by whichever
	// worker ran the shard (histogram cells are atomic, so concurrent
	// workers record safely). PhaseChoke/PhaseTransfer still time the
	// whole pass.
	PhaseChokeShard
	PhaseSendShard
	PhaseRecvShard
	numPhases
)

var phaseNames = [numPhases]string{
	PhaseAnnounce:   "announce",
	PhaseChoke:      "choke",
	PhaseTransfer:   "transfer",
	PhaseFaults:     "fault_sweep",
	PhaseSample:     "sample",
	PhaseParTask:    "par_task",
	PhaseExperiment: "experiment",

	PhaseCheckpointWrite: "checkpoint_write",
	PhaseCheckpointLoad:  "checkpoint_load",

	PhaseHandout: "handout",

	PhaseChokeShard: "choke_shard",
	PhaseSendShard:  "transfer_send",
	PhaseRecvShard:  "transfer_recv",
}

// NumBuckets is the fixed histogram size: bucket i (< NumBuckets-1) counts
// durations d with d < 2^i µs; the last bucket is the +Inf overflow.
const NumBuckets = 26

// BucketBoundNs returns the exclusive upper bound of bucket i in
// nanoseconds, or -1 for the +Inf bucket.
func BucketBoundNs(i int) int64 {
	if i >= NumBuckets-1 {
		return -1
	}
	return 1000 << i
}

// bucketFor maps a duration in nanoseconds to its histogram bucket.
func bucketFor(ns int64) int {
	if ns < 1000 {
		return 0
	}
	b := bits.Len64(uint64(ns) / 1000) // d µs in [2^(b-1), 2^b)
	if b >= NumBuckets-1 {
		return NumBuckets - 1
	}
	return b
}

// hist is one fixed-bucket duration histogram. All cells are updated and
// read atomically.
type hist struct {
	buckets [NumBuckets]uint64
	count   uint64
	sumNs   uint64
}

// epoch anchors the monotonic clock reads; time.Since on a package-level
// base compiles to a single nanotime call and never allocates.
var epoch = time.Now()

func now() int64 { return int64(time.Since(epoch)) }

// Recorder is one telemetry sink: a fixed array of counters, gauges and
// phase histograms. The zero state of every cell is valid, so New is the
// only constructor logic. A nil Recorder is the disabled layer — every
// method no-ops on it.
type Recorder struct {
	counters [numCounters]uint64
	gauges   [numGauges]int64
	phases   [numPhases]hist

	// regions mirrors phase spans into runtime/trace user regions under
	// regionCtx (a trace task), so `go tool trace` attributes wall time to
	// choke vs transfer vs fault-sweep. Off unless EnableTraceRegions ran.
	regions   bool
	regionCtx context.Context
}

// New returns an enabled Recorder with all metrics at zero.
func New() *Recorder { return &Recorder{} }

// EnableTraceRegions makes every phase span also emit a runtime/trace user
// region bound to ctx (normally a trace.NewTask context). Regions are
// no-ops while tracing is off, so enabling this is safe unconditionally;
// it is kept opt-in to spare the hot path the extra calls.
func (r *Recorder) EnableTraceRegions(ctx context.Context) {
	if r == nil {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r.regionCtx = ctx
	r.regions = true
}

// Inc adds 1 to a counter; a no-op on a nil Recorder.
func (r *Recorder) Inc(id CounterID) {
	if r == nil {
		return
	}
	atomic.AddUint64(&r.counters[id], 1)
}

// Add adds n to a counter; a no-op on a nil Recorder or for n <= 0.
func (r *Recorder) Add(id CounterID, n int) {
	if r == nil || n <= 0 {
		return
	}
	atomic.AddUint64(&r.counters[id], uint64(n))
}

// Counter returns a counter's current value (0 on a nil Recorder).
func (r *Recorder) Counter(id CounterID) uint64 {
	if r == nil {
		return 0
	}
	return atomic.LoadUint64(&r.counters[id])
}

// SetGauge records a gauge's latest value; a no-op on a nil Recorder.
func (r *Recorder) SetGauge(id GaugeID, v int64) {
	if r == nil {
		return
	}
	atomic.StoreInt64(&r.gauges[id], v)
}

// Gauge returns a gauge's latest value (0 on a nil Recorder).
func (r *Recorder) Gauge(id GaugeID) int64 {
	if r == nil {
		return 0
	}
	return atomic.LoadInt64(&r.gauges[id])
}

// Span is an in-progress phase measurement, returned by StartPhase and
// consumed by EndPhase. It is a value — starting a span never allocates
// (the trace region pointer is non-nil only while runtime tracing is live).
type Span struct {
	start  int64
	region *trace.Region
}

// StartPhase opens a phase span: one clock read, plus a trace region when
// EnableTraceRegions armed them. On a nil Recorder it returns the zero
// Span, which EndPhase ignores.
func (r *Recorder) StartPhase(id PhaseID) Span {
	if r == nil {
		return Span{}
	}
	var reg *trace.Region
	if r.regions {
		reg = trace.StartRegion(r.regionCtx, phaseNames[id])
	}
	return Span{start: now(), region: reg}
}

// EndPhase closes a span and records its duration into the phase's
// histogram. Spans from a nil Recorder are ignored.
func (r *Recorder) EndPhase(id PhaseID, sp Span) {
	if r == nil || sp.start == 0 {
		return
	}
	if sp.region != nil {
		sp.region.End()
	}
	d := now() - sp.start
	if d < 0 {
		d = 0
	}
	h := &r.phases[id]
	atomic.AddUint64(&h.buckets[bucketFor(d)], 1)
	atomic.AddUint64(&h.count, 1)
	atomic.AddUint64(&h.sumNs, uint64(d))
}

// ObserveNs records an externally measured duration into a phase histogram
// — for callers that already hold both timestamps.
func (r *Recorder) ObserveNs(id PhaseID, ns int64) {
	if r == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h := &r.phases[id]
	atomic.AddUint64(&h.buckets[bucketFor(ns)], 1)
	atomic.AddUint64(&h.count, 1)
	atomic.AddUint64(&h.sumNs, uint64(ns))
}

// CounterValue is one counter in a Snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge in a Snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// PhaseValue is one phase histogram in a Snapshot, reduced to its count and
// total time (the full bucket vector stays on the Prometheus surface, where
// quantile math belongs).
type PhaseValue struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
	SumNs uint64 `json:"sum_ns"`
}

// Snapshot is a point-in-time copy of a Recorder, in plain serializable
// data: the flush format for the OnTelemetry observer hook, jsonl
// `telemetry` records and expvar. Zero-valued counters, gauges and empty
// phases are omitted; entries appear in registry order, so the shape is
// deterministic even though the measured durations are not.
type Snapshot struct {
	Counters []CounterValue `json:"counters,omitempty"`
	Gauges   []GaugeValue   `json:"gauges,omitempty"`
	Phases   []PhaseValue   `json:"phases,omitempty"`
}

// Snapshot copies the Recorder's current state. It allocates (it is a
// flush-path, not hot-path, operation) and is safe to call while the
// instrumented code is running.
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for id := CounterID(0); id < numCounters; id++ {
		if v := atomic.LoadUint64(&r.counters[id]); v > 0 {
			s.Counters = append(s.Counters, CounterValue{Name: counterNames[id], Value: v})
		}
	}
	for id := GaugeID(0); id < numGauges; id++ {
		if v := atomic.LoadInt64(&r.gauges[id]); v != 0 {
			s.Gauges = append(s.Gauges, GaugeValue{Name: gaugeNames[id], Value: v})
		}
	}
	for id := PhaseID(0); id < numPhases; id++ {
		h := &r.phases[id]
		if c := atomic.LoadUint64(&h.count); c > 0 {
			s.Phases = append(s.Phases, PhaseValue{
				Name:  phaseNames[id],
				Count: c,
				SumNs: atomic.LoadUint64(&h.sumNs),
			})
		}
	}
	return s
}

// CounterName / GaugeName / PhaseName expose the registry's exposition
// names (for consumers that join on them).
func CounterName(id CounterID) string { return counterNames[id] }
func GaugeName(id GaugeID) string     { return gaugeNames[id] }
func PhaseName(id PhaseID) string     { return phaseNames[id] }
