package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
)

// WritePrometheus renders the Recorder in the Prometheus text exposition
// format (version 0.0.4): every non-zero counter and gauge, and one
// cumulative histogram per recorded phase under a shared metric family
// with a `phase` label. Reads are atomic, so scraping a Recorder while the
// simulation writes it is safe; per-phase bucket/count/sum triplets are
// read cell-by-cell and may be off by the in-flight observation — the
// usual Prometheus scrape semantics.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for id := CounterID(0); id < numCounters; id++ {
		v := atomic.LoadUint64(&r.counters[id])
		if v == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n",
			counterNames[id], counterNames[id], v); err != nil {
			return err
		}
	}
	for id := GaugeID(0); id < numGauges; id++ {
		v := atomic.LoadInt64(&r.gauges[id])
		if v == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n",
			gaugeNames[id], gaugeNames[id], v); err != nil {
			return err
		}
	}
	const fam = "phase_duration_seconds"
	wroteType := false
	for id := PhaseID(0); id < numPhases; id++ {
		h := &r.phases[id]
		count := atomic.LoadUint64(&h.count)
		if count == 0 {
			continue
		}
		if !wroteType {
			if _, err := fmt.Fprintf(w, "# HELP %s Wall-clock time per instrumented phase.\n# TYPE %s histogram\n",
				fam, fam); err != nil {
				return err
			}
			wroteType = true
		}
		cum := uint64(0)
		for b := 0; b < NumBuckets; b++ {
			cum += atomic.LoadUint64(&h.buckets[b])
			le := "+Inf"
			if bound := BucketBoundNs(b); bound >= 0 {
				le = strconv.FormatFloat(float64(bound)/1e9, 'g', -1, 64)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{phase=%q,le=%q} %d\n",
				fam, phaseNames[id], le, cum); err != nil {
				return err
			}
		}
		sum := atomic.LoadUint64(&h.sumNs)
		if _, err := fmt.Fprintf(w, "%s_sum{phase=%q} %g\n%s_count{phase=%q} %d\n",
			fam, phaseNames[id], float64(sum)/1e9, fam, phaseNames[id], count); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the Prometheus exposition — the
// /metrics endpoint of the CLI's -debug-addr listener.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
