package telemetry

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestBucketForBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {999, 0}, // sub-microsecond
		{1000, 1}, {1999, 1}, // 1µs lands under the 2µs bound
		{2000, 2}, {3999, 2},
		{4000, 3},
		{1_000_000, 10},           // 1ms = 1000µs, bit length 10 → bucket le 2^10 µs
		{1 << 62, NumBuckets - 1}, // overflow clamps to +Inf
	}
	for _, tc := range cases {
		if got := bucketFor(tc.ns); got != tc.want {
			t.Errorf("bucketFor(%d ns) = %d, want %d", tc.ns, got, tc.want)
		}
	}
	// Every bucket's bound is the previous bound doubled; the last is +Inf.
	for i := 1; i < NumBuckets-1; i++ {
		if BucketBoundNs(i) != 2*BucketBoundNs(i-1) {
			t.Fatalf("bucket %d bound %d, want %d", i, BucketBoundNs(i), 2*BucketBoundNs(i-1))
		}
	}
	if BucketBoundNs(NumBuckets-1) != -1 {
		t.Fatal("last bucket should be +Inf")
	}
}

// TestNilRecorderIsInert pins the disabled contract: every operation on a
// nil *Recorder is a no-op that allocates nothing — the whole point of the
// nil-as-disabled design.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if allocs := testing.AllocsPerRun(100, func() {
		r.Inc(CtrRounds)
		r.Add(CtrAnnounceEdges, 7)
		r.SetGauge(GaugePresent, 42)
		sp := r.StartPhase(PhaseChoke)
		r.EndPhase(PhaseChoke, sp)
		r.ObserveNs(PhaseTransfer, 123)
	}); allocs != 0 {
		t.Fatalf("nil recorder operations allocate %.1f objects, want 0", allocs)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Phases) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", s)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Counter(CtrRounds) != 0 || r.Gauge(GaugeRound) != 0 {
		t.Fatal("nil recorder reads non-zero")
	}
}

// TestEnabledRecordingZeroAlloc pins the enabled hot path: counter
// increments, gauge stores and phase spans (without trace regions) never
// allocate either — only Snapshot, an explicit flush, may.
func TestEnabledRecordingZeroAlloc(t *testing.T) {
	r := New()
	if allocs := testing.AllocsPerRun(100, func() {
		r.Inc(CtrRounds)
		r.Add(CtrAnnounceEdges, 3)
		r.SetGauge(GaugePresent, 17)
		sp := r.StartPhase(PhaseChoke)
		r.EndPhase(PhaseChoke, sp)
		r.ObserveNs(PhaseTransfer, 5000)
	}); allocs != 0 {
		t.Fatalf("enabled recording allocates %.1f objects per round, want 0", allocs)
	}
}

func TestSnapshotContents(t *testing.T) {
	r := New()
	r.Inc(CtrJoins)
	r.Add(CtrJoins, 4)
	r.SetGauge(GaugeSeeds, 9)
	r.ObserveNs(PhaseTransfer, 1500)
	r.ObserveNs(PhaseTransfer, 2500)
	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Name != CounterName(CtrJoins) || s.Counters[0].Value != 5 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Name != GaugeName(GaugeSeeds) || s.Gauges[0].Value != 9 {
		t.Fatalf("gauges: %+v", s.Gauges)
	}
	if len(s.Phases) != 1 || s.Phases[0].Name != PhaseName(PhaseTransfer) ||
		s.Phases[0].Count != 2 || s.Phases[0].SumNs != 4000 {
		t.Fatalf("phases: %+v", s.Phases)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Add(CtrAnnounces, 12)
	r.SetGauge(GaugePresent, 30)
	r.ObserveNs(PhaseChoke, 1500)  // bucket le 2µs
	r.ObserveNs(PhaseChoke, 900)   // bucket le 1µs
	r.ObserveNs(PhaseChoke, 1<<40) // +Inf overflow
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE btsim_announces_total counter\nbtsim_announces_total 12\n",
		"# TYPE btsim_present_peers gauge\nbtsim_present_peers 30\n",
		"# TYPE phase_duration_seconds histogram\n",
		`phase_duration_seconds_bucket{phase="choke",le="1e-06"} 1`,
		`phase_duration_seconds_bucket{phase="choke",le="2e-06"} 2`,
		`phase_duration_seconds_bucket{phase="choke",le="+Inf"} 3`,
		`phase_duration_seconds_count{phase="choke"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be monotone non-decreasing per phase.
	prev := uint64(0)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `phase_duration_seconds_bucket{phase="choke"`) {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("cumulative bucket decreased: %q after %d", line, prev)
		}
		prev = v
	}
}

// TestConcurrentScrape exercises the race-safety contract: one goroutine
// records while others snapshot and scrape. The race detector is the
// assertion.
func TestConcurrentScrape(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Inc(CtrRounds)
			sp := r.StartPhase(PhaseTransfer)
			r.EndPhase(PhaseTransfer, sp)
			r.SetGauge(GaugeRound, int64(r.Counter(CtrRounds)))
		}
	}()
	for i := 0; i < 50; i++ {
		_ = r.Snapshot()
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
