package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std %v", s.Std)
	}
	if s.Median != 2.5 {
		t.Fatalf("median %v", s.Median)
	}
	if z := Summarize(nil); z.Count != 0 || z.Mean != 0 {
		t.Fatalf("empty summary %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ q, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {-5, 10}, {105, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%.0f = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile not NaN")
	}
	// Percentile must not mutate its input.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("input mutated")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ysPos := []float64{2, 4, 6, 8, 10}
	ysNeg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, ysPos); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect positive correlation: %v", got)
	}
	if got := Pearson(xs, ysNeg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect negative correlation: %v", got)
	}
	if !math.IsNaN(Pearson(xs, []float64{1, 1, 1, 1, 1})) {
		t.Error("constant series should give NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Error("length-1 should give NaN")
	}
	if !math.IsNaN(Pearson(xs, xs[:3])) {
		t.Error("mismatched lengths should give NaN")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 || h.Total != 7 {
		t.Fatalf("histogram %+v", h)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts %v", h.Counts)
	}
	if c := h.BinCenter(0); c != 1 {
		t.Fatalf("bin center %v", c)
	}
	// Density integrates to the in-range fraction.
	var integral float64
	for i := range h.Counts {
		integral += h.Density(i) * 2 // bin width 2
	}
	if math.Abs(integral-4.0/7) > 1e-12 {
		t.Fatalf("density integral %v", integral)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("0 bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if q := e.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %v", q)
	}
	if q := e.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %v", q)
	}
	if q := e.Quantile(1); q != 3 {
		t.Errorf("Quantile(1) = %v", q)
	}
}

func TestECDFQuantileInverse(t *testing.T) {
	// At(Quantile(q)) >= q for all q — the Galois connection property.
	check := func(raw []float64, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		q := float64(qRaw%100)/100 + 0.01
		e := NewECDF(raw)
		return e.At(e.Quantile(q)) >= q-1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalVariation(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{1, 0}
	if tv := TotalVariation(p, q); math.Abs(tv-0.5) > 1e-12 {
		t.Fatalf("TV = %v", tv)
	}
	if tv := TotalVariation(p, p); tv != 0 {
		t.Fatalf("TV(p,p) = %v", tv)
	}
	// Length padding.
	if tv := TotalVariation([]float64{1}, []float64{0.5, 0.5}); math.Abs(tv-0.5) > 1e-12 {
		t.Fatalf("padded TV = %v", tv)
	}
}
