// Package stats is a small statistics toolkit for the experiment harness:
// summaries, percentiles, histograms, empirical CDFs and correlation. It is
// deliberately dependency-free and allocation-conscious; experiments call it
// in inner loops.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual scalar descriptors of a sample.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary. An empty sample returns the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the q-th percentile (0..100) of xs using linear
// interpolation between order statistics. It copies and sorts internally.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, q)
}

func percentileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := q / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples, or NaN when undefined (length < 2 or zero variance).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		return math.NaN()
	}
	var a PearsonAcc
	for i := range xs {
		a.Add(xs[i], ys[i])
	}
	return a.Corr()
}

// PearsonAcc accumulates a Pearson correlation one observation at a time,
// for streaming callers (scenario time-series samplers) that cannot afford
// the two slices Pearson takes. Pearson itself delegates here, so feeding
// the same pairs in the same order yields exactly Pearson's result by
// construction.
type PearsonAcc struct {
	n                     int
	sx, sy, sxx, syy, sxy float64
}

// Reset clears the accumulator for a fresh sample.
func (a *PearsonAcc) Reset() { *a = PearsonAcc{} }

// Add records one (x, y) observation.
func (a *PearsonAcc) Add(x, y float64) {
	a.n++
	a.sx += x
	a.sy += y
	a.sxx += x * x
	a.syy += y * y
	a.sxy += x * y
}

// N returns the number of observations recorded.
func (a *PearsonAcc) N() int { return a.n }

// Corr returns the Pearson correlation of the recorded observations, or NaN
// when undefined (fewer than two observations or zero variance).
func (a *PearsonAcc) Corr() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	n := float64(a.n)
	cov := a.sxy/n - a.sx/n*a.sy/n
	vx := a.sxx/n - a.sx/n*a.sx/n
	vy := a.syy/n - a.sy/n*a.sy/n
	if vx <= 0 || vy <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// Histogram is a fixed-width binning of a sample over [Lo, Hi). Values
// outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	Total  int
}

// NewHistogram builds a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: %d bins", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: invalid range [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if idx >= len(h.Counts) { // guard float edge
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Density returns the normalized density of bin i (counts / total / width);
// 0 when the histogram is empty.
func (h *Histogram) Density(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / float64(h.Total) / w
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X <= x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the smallest sample value v with At(v) >= q, for
// q in (0, 1]. Quantile(0) returns the minimum.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx]
}

// TotalVariation returns half the L1 distance between two discrete
// distributions given as aligned probability slices (padded with zeros if
// lengths differ).
func TotalVariation(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	var sum float64
	for i := 0; i < n; i++ {
		var a, b float64
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		sum += math.Abs(a - b)
	}
	return sum / 2
}
