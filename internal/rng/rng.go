// Package rng provides a small, deterministic pseudo-random toolkit used by
// every stochastic experiment in this repository.
//
// The generator is xoshiro256** seeded through splitmix64, following the
// reference constructions by Blackman and Vigna. It is not cryptographically
// secure; it is fast, has a 2^256−1 period, and — crucially for a
// reproduction — produces identical streams on every platform for a given
// seed, which math/rand/v2 does not promise across Go releases.
package rng

import "math"

// RNG is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator deterministically seeded from seed via splitmix64.
// Two generators built from the same seed produce identical streams.
func New(seed uint64) *RNG {
	var r RNG
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return &r
}

// Split returns a new generator whose stream is independent of r's future
// output. It is used to hand child components their own reproducible source.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

// State is an RNG's complete internal position: the four xoshiro256**
// words. It is plain data, so stream positions can be checkpointed and
// restored exactly (see Save and Restore).
type State [4]uint64

// Save returns the generator's current state. A generator restored from it
// produces exactly the stream r would have produced from this point on.
func (r *RNG) Save() State { return r.s }

// Restore rewinds (or fast-forwards) the generator to a previously saved
// state. The all-zero state is xoshiro's one invalid fixed point (the
// stream would be constant zero), so it is rejected: restoring it leaves r
// unchanged and returns false. Any state produced by Save on a generator
// built with New is valid.
func (r *RNG) Restore(s State) bool {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return false
	}
	r.s = s
	return true
}

// FromState builds a generator positioned at a previously saved state; it
// returns nil for the invalid all-zero state (see Restore).
func FromState(s State) *RNG {
	var r RNG
	if !r.Restore(s) {
		return nil
	}
	return &r
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics; callers control n so this is a programming error.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo32 := t&mask32 + aLo*bHi
	hi = aHi*bHi + t>>32 + lo32>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a sample from N(mean, stddev²) using the Marsaglia polar
// method (no trigonometric calls, deterministic consumption of the stream).
func (r *RNG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// RoundedPositiveNormal samples N(mean, stddev²) rounded to the nearest
// integer and clamped to be at least 1. This is the paper's "rounded normal
// distribution" for per-peer slot budgets (all samples are rounded to the
// nearest positive integer).
func (r *RNG) RoundedPositiveNormal(mean, stddev float64) int {
	v := int(math.Round(r.Normal(mean, stddev)))
	if v < 1 {
		return 1
	}
	return v
}

// Exp returns a sample from the exponential distribution with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / rate
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes s in place.
func (r *RNG) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
