package rng

// NewStream returns the generator for sub-stream `stream` of a seed: a
// deterministic family of independent generators indexed by an integer.
// Unlike Split, which consumes state from a parent generator (so the k-th
// child depends on how many draws preceded it), NewStream(seed, k) depends
// only on (seed, k) — the sharded swarm stepper relies on this so shard k's
// stream is identical no matter when the shard was materialised (initial
// roster vs. later growth) or how many worker goroutines exist.
func NewStream(seed, stream uint64) *RNG {
	// Avalanche the stream index through the splitmix64 finalizer so
	// consecutive indices land far apart, then offset the seed with it.
	z := stream + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return New(seed ^ z ^ 0xa5a3564d3cf8b9e1)
}
