package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	diff := false
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("Split produced a correlated stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %f too far from 0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolRate(t *testing.T) {
	r := New(13)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(p) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bool(%v) rate %f", p, rate)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	const mean, sd, n = 3.0, 2.0, 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(mean, sd)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Errorf("normal mean %f want %f", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Errorf("normal stddev %f want %f", math.Sqrt(variance), sd)
	}
}

func TestRoundedPositiveNormal(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.RoundedPositiveNormal(0.1, 3)
		if v < 1 {
			t.Fatalf("RoundedPositiveNormal returned %d < 1", v)
		}
	}
	// With sigma=0 the value is deterministic.
	for i := 0; i < 10; i++ {
		if v := r.RoundedPositiveNormal(6, 0); v != 6 {
			t.Fatalf("RoundedPositiveNormal(6,0) = %d", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(23)
	const rate, n = 2.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	if mean := sum / n; math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp mean %f want %f", mean, 1/rate)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(31)
	s := []int{5, 6, 7, 8, 9}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(s)
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle lost elements: sum %d want %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Normal(0, 1)
	}
	_ = sink
}

func TestSaveRestoreResumesStreamExactly(t *testing.T) {
	r := New(42)
	// Burn an arbitrary prefix mixing every consumer so the saved state
	// sits mid-stream, not at a construction boundary.
	for i := 0; i < 1000; i++ {
		r.Uint64()
		r.Float64()
		r.Intn(17)
		r.Normal(0, 1)
	}
	st := r.Save()
	want := make([]uint64, 256)
	for i := range want {
		want[i] = r.Uint64()
	}
	if !r.Restore(st) {
		t.Fatal("Restore rejected a state produced by Save")
	}
	for i := range want {
		if got := r.Uint64(); got != want[i] {
			t.Fatalf("restored stream diverged at draw %d: %d want %d", i, got, want[i])
		}
	}
	fresh := FromState(st)
	if fresh == nil {
		t.Fatal("FromState rejected a state produced by Save")
	}
	for i := range want {
		if got := fresh.Uint64(); got != want[i] {
			t.Fatalf("FromState stream diverged at draw %d: %d want %d", i, got, want[i])
		}
	}
}

func TestRestoreRejectsZeroState(t *testing.T) {
	r := New(7)
	before := r.Save()
	if r.Restore(State{}) {
		t.Fatal("Restore accepted the all-zero state")
	}
	if r.Save() != before {
		t.Fatal("rejected Restore still mutated the generator")
	}
	if FromState(State{}) != nil {
		t.Fatal("FromState accepted the all-zero state")
	}
}
