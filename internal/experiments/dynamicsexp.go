package experiments

import (
	"fmt"

	"stratmatch/internal/core"
	"stratmatch/internal/dynamics"
	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
	"stratmatch/internal/textplot"
)

func trajectorySeries(name string, traj dynamics.Trajectory) textplot.Series {
	s := textplot.Series{Name: name}
	for _, pt := range traj {
		s.X = append(s.X, pt.Time)
		s.Y = append(s.Y, pt.Disorder)
	}
	return s
}

// splitPairs derives 2·n independent sub-streams from one root seed, in a
// fixed order. Parallel experiments derive all their randomness up front
// like this, then fan the tasks out: the task results cannot depend on
// worker count or scheduling.
func splitPairs(seed uint64, n int) [][2]*rng.RNG {
	r := rng.New(seed)
	pairs := make([][2]*rng.RNG, n)
	for i := range pairs {
		pairs[i] = [2]*rng.RNG{r.Split(), r.Split()}
	}
	return pairs
}

// Figure1 reproduces the paper's Figure 1: starting from the empty
// configuration, disorder versus initiatives-per-peer for
// (n,d) ∈ {(100,50), (1000,10), (1000,50)} with best-mate initiatives and
// 1-matching. The three trajectories run in parallel.
func Figure1(cfg Config) (*Result, error) {
	res := &Result{
		Chart: textplot.Chart{XLabel: "initiatives per peer", YLabel: "disorder"},
	}
	params := []struct {
		n int
		d float64
	}{
		{cfg.scaled(100), 50}, {cfg.scaled(1000), 10}, {cfg.scaled(1000), 50},
	}
	for i := range params {
		if params[i].d > float64(params[i].n-1) {
			params[i].d = float64(params[i].n - 1)
		}
	}
	rngs := splitPairs(cfg.Seed, len(params))
	trajs := make([]dynamics.Trajectory, len(params))
	err := cfg.forEach(len(params), func(i int) error {
		pr := params[i]
		g := graph.ErdosRenyiMeanDegree(pr.n, pr.d, rngs[i][0])
		sim, err := dynamics.NewUniform(g, 1, core.BestMateStrategy{}, rngs[i][1])
		if err != nil {
			return err
		}
		trajs[i] = sim.Run(40, 4)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, pr := range params {
		traj := trajs[i]
		name := fmt.Sprintf("n=%d,d=%.0f", pr.n, pr.d)
		res.Series = append(res.Series, trajectorySeries(name, traj))
		last := traj[len(traj)-1]
		res.noteCheck(last.Disorder == 0,
			"%s: disorder 0 after 40 base units (got %.4g)", name, last.Disorder)
		// The paper observes convergence in "less than d base units"; its
		// own Figure 1 shows the (1000, 10) curve flattening slightly past
		// that, so we allow the same stochastic slack (1.6·d).
		converged := -1.0
		for _, pt := range traj {
			if pt.Disorder == 0 {
				converged = pt.Time
				break
			}
		}
		res.noteCheck(converged >= 0 && converged <= 1.6*pr.d,
			"%s: stable configuration reached by %.2f base units (paper: ~d=%.0f)",
			name, converged, pr.d)
	}
	return res, nil
}

// Figure2 reproduces Figure 2: starting from the stable configuration of a
// (n=1000, d=10) 1-matching, remove one peer and watch the disorder decay.
// The paper removes peers 1, 100, 300 and 600 (1-based). The four removal
// scenarios run in parallel.
func Figure2(cfg Config) (*Result, error) {
	res := &Result{
		Chart: textplot.Chart{XLabel: "initiatives per peer", YLabel: "disorder"},
	}
	n := cfg.scaled(1000)
	removals := []int{0, n / 10, 3 * n / 10, 6 * n / 10}
	rngs := splitPairs(cfg.Seed, len(removals))
	trajs := make([]dynamics.Trajectory, len(removals))
	err := cfg.forEach(len(removals), func(i int) error {
		g := graph.ErdosRenyiMeanDegree(n, 10, rngs[i][0])
		sim, err := dynamics.NewUniform(g, 1, core.BestMateStrategy{}, rngs[i][1])
		if err != nil {
			return err
		}
		sim.SetStable()
		sim.RemovePeer(removals[i])
		trajs[i] = sim.Run(10, 10)
		return nil
	})
	if err != nil {
		return nil, err
	}
	initialDisorders := make([]float64, 0, len(removals))
	for i, victim := range removals {
		traj := trajs[i]
		name := fmt.Sprintf("peer %d removed", victim+1)
		res.Series = append(res.Series, trajectorySeries(name, traj))
		initialDisorders = append(initialDisorders, traj[0].Disorder)
		last := traj[len(traj)-1]
		res.noteCheck(last.Disorder == 0,
			"%s: re-converged within 10 base units (final %.4g)", name, last.Disorder)
		res.noteCheck(traj[0].Disorder < 0.05,
			"%s: disorder stays small after one removal (initial %.4g)", name, traj[0].Disorder)
	}
	// Domino effect: removing the best peer hurts at least as much as
	// removing the worst.
	res.noteCheck(initialDisorders[0] >= initialDisorders[len(initialDisorders)-1],
		"domino effect: removing peer 1 (disorder %.4g) >= removing peer %d (disorder %.4g)",
		initialDisorders[0], removals[len(removals)-1]+1, initialDisorders[len(initialDisorders)-1])
	return res, nil
}

// Figure3 reproduces Figure 3: disorder trajectories from the empty
// configuration under continuous churn at rates {30, 10, 3, 0.5, 0} events
// per 1000 initiatives (n = 1000, d = 10, 1-matching). All rate×replica
// runs fan out in parallel.
func Figure3(cfg Config) (*Result, error) {
	res := &Result{
		Chart: textplot.Chart{XLabel: "initiatives per peer", YLabel: "disorder"},
	}
	n := cfg.scaled(1000)
	attach := 10.0 / float64(n-1)
	rates := []float64{0.03, 0.01, 0.003, 0.0005, 0}
	names := []string{"churn=30/1000", "churn=10/1000", "churn=3/1000", "churn=0.5/1000", "no churn"}
	// Average plateaus over a few independent runs: single-trajectory
	// tails are noisy at reduced scale, while the paper's claim is about
	// the average disorder level.
	const reps = 3
	rngs := splitPairs(cfg.Seed, len(rates)*reps)
	trajs := make([]dynamics.Trajectory, len(rates)*reps)
	err := cfg.forEach(len(trajs), func(t int) error {
		rate := rates[t/reps]
		g := graph.ErdosRenyiMeanDegree(n, 10, rngs[t][0])
		sim, err := dynamics.NewUniform(g, 1, core.BestMateStrategy{}, rngs[t][1])
		if err != nil {
			return err
		}
		trajs[t] = sim.RunChurn(20, 4, rate, attach)
		return nil
	})
	if err != nil {
		return nil, err
	}
	tails := make([]float64, len(rates))
	for i := range rates {
		for rep := 0; rep < reps; rep++ {
			traj := trajs[i*reps+rep]
			if rep == 0 {
				res.Series = append(res.Series, trajectorySeries(names[i], traj))
			}
			var sum float64
			half := traj[len(traj)/2:]
			for _, pt := range half {
				sum += pt.Disorder
			}
			tails[i] += sum / float64(len(half)) / reps
		}
		res.note("%s: plateau disorder %.4g (mean of %d runs)", names[i], tails[i], reps)
	}
	res.noteCheck(tails[len(tails)-1] == 0, "no churn: system reaches the stable state exactly")
	increasing := true
	for i := 1; i < len(tails); i++ {
		if tails[i-1] < tails[i] {
			increasing = false
		}
	}
	res.noteCheck(increasing, "plateau disorder increases with churn rate: %v", tails)
	return res, nil
}

// Theorem1 demonstrates both halves of Theorem 1 numerically: the stable
// configuration is reachable in at most B/2 initiatives, and arbitrary
// active-initiative schedules always converge. The three population sizes
// run in parallel.
func Theorem1(cfg Config) (*Result, error) {
	res := &Result{
		TableHeader: []string{"n", "B/2", "witness_initiatives", "random_schedule_units"},
	}
	ns := []int{cfg.scaled(100), cfg.scaled(500), cfg.scaled(1000)}
	rngs := splitPairs(cfg.Seed, len(ns))
	type outcome struct {
		bound, active int
		witnessOK     bool
		units         float64
	}
	outs := make([]outcome, len(ns))
	err := cfg.forEach(len(ns), func(i int) error {
		n := ns[i]
		g := graph.ErdosRenyiMeanDegree(n, 8, rngs[i][0])
		want := core.StableUniform(g, 2)
		// Witness schedule: best-peer-first best-mate initiatives.
		c := core.NewUniformConfig(n, 2)
		active := 0
		for p := 0; p < n; p++ {
			for {
				ok, _ := core.Initiative(c, g, p, core.BestMateStrategy{})
				if !ok {
					break
				}
				active++
			}
		}
		out := &outs[i]
		out.bound = c.TotalSlots() / 2
		out.active = active
		out.witnessOK = c.Equal(want)

		// Random schedule: must converge too (no cycles possible).
		sim, err := dynamics.NewUniform(g.Clone(), 2, core.BestMateStrategy{}, rngs[i][1])
		if err != nil {
			return err
		}
		for !sim.Config().Equal(sim.InstantStable()) && out.units < 1000 {
			sim.Run(1, 1)
			out.units++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		out := outs[i]
		res.noteCheck(out.witnessOK, "n=%d: witness schedule reaches the stable configuration", n)
		res.noteCheck(out.active <= out.bound, "n=%d: witness used %d active initiatives <= B/2 = %d", n, out.active, out.bound)
		res.noteCheck(out.units < 1000, "n=%d: random schedule converged after %.0f base units", n, out.units)
		res.TableRows = append(res.TableRows, []float64{
			float64(n), float64(out.bound), float64(out.active), out.units,
		})
	}
	return res, nil
}
