package experiments

import (
	"fmt"

	"stratmatch/internal/core"
	"stratmatch/internal/dynamics"
	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
	"stratmatch/internal/textplot"
)

func trajectorySeries(name string, traj dynamics.Trajectory) textplot.Series {
	s := textplot.Series{Name: name}
	for _, pt := range traj {
		s.X = append(s.X, pt.Time)
		s.Y = append(s.Y, pt.Disorder)
	}
	return s
}

// Figure1 reproduces the paper's Figure 1: starting from the empty
// configuration, disorder versus initiatives-per-peer for
// (n,d) ∈ {(100,50), (1000,10), (1000,50)} with best-mate initiatives and
// 1-matching.
func Figure1(cfg Config) (*Result, error) {
	res := &Result{
		Chart: textplot.Chart{XLabel: "initiatives per peer", YLabel: "disorder"},
	}
	params := []struct {
		n int
		d float64
	}{
		{cfg.scaled(100), 50}, {cfg.scaled(1000), 10}, {cfg.scaled(1000), 50},
	}
	r := rng.New(cfg.Seed)
	for _, pr := range params {
		d := pr.d
		if d > float64(pr.n-1) {
			d = float64(pr.n - 1)
		}
		g := graph.ErdosRenyiMeanDegree(pr.n, d, r.Split())
		sim, err := dynamics.NewUniform(g, 1, core.BestMateStrategy{}, r.Split())
		if err != nil {
			return nil, err
		}
		traj := sim.Run(40, 4)
		name := fmt.Sprintf("n=%d,d=%.0f", pr.n, d)
		res.Series = append(res.Series, trajectorySeries(name, traj))
		last := traj[len(traj)-1]
		res.noteCheck(last.Disorder == 0,
			"%s: disorder 0 after 40 base units (got %.4g)", name, last.Disorder)
		// The paper observes convergence in "less than d base units"; its
		// own Figure 1 shows the (1000, 10) curve flattening slightly past
		// that, so we allow the same stochastic slack (1.6·d).
		converged := -1.0
		for _, pt := range traj {
			if pt.Disorder == 0 {
				converged = pt.Time
				break
			}
		}
		res.noteCheck(converged >= 0 && converged <= 1.6*d,
			"%s: stable configuration reached by %.2f base units (paper: ~d=%.0f)",
			name, converged, d)
	}
	return res, nil
}

// Figure2 reproduces Figure 2: starting from the stable configuration of a
// (n=1000, d=10) 1-matching, remove one peer and watch the disorder decay.
// The paper removes peers 1, 100, 300 and 600 (1-based).
func Figure2(cfg Config) (*Result, error) {
	res := &Result{
		Chart: textplot.Chart{XLabel: "initiatives per peer", YLabel: "disorder"},
	}
	n := cfg.scaled(1000)
	removals := []int{0, n / 10, 3 * n / 10, 6 * n / 10}
	r := rng.New(cfg.Seed)
	initialDisorders := make([]float64, 0, len(removals))
	for _, victim := range removals {
		g := graph.ErdosRenyiMeanDegree(n, 10, r.Split())
		sim, err := dynamics.NewUniform(g, 1, core.BestMateStrategy{}, r.Split())
		if err != nil {
			return nil, err
		}
		sim.SetStable()
		sim.RemovePeer(victim)
		traj := sim.Run(10, 10)
		name := fmt.Sprintf("peer %d removed", victim+1)
		res.Series = append(res.Series, trajectorySeries(name, traj))
		initialDisorders = append(initialDisorders, traj[0].Disorder)
		last := traj[len(traj)-1]
		res.noteCheck(last.Disorder == 0,
			"%s: re-converged within 10 base units (final %.4g)", name, last.Disorder)
		res.noteCheck(traj[0].Disorder < 0.05,
			"%s: disorder stays small after one removal (initial %.4g)", name, traj[0].Disorder)
	}
	// Domino effect: removing the best peer hurts at least as much as
	// removing the worst.
	res.noteCheck(initialDisorders[0] >= initialDisorders[len(initialDisorders)-1],
		"domino effect: removing peer 1 (disorder %.4g) >= removing peer %d (disorder %.4g)",
		initialDisorders[0], removals[len(removals)-1]+1, initialDisorders[len(initialDisorders)-1])
	return res, nil
}

// Figure3 reproduces Figure 3: disorder trajectories from the empty
// configuration under continuous churn at rates {30, 10, 3, 0.5, 0} events
// per 1000 initiatives (n = 1000, d = 10, 1-matching).
func Figure3(cfg Config) (*Result, error) {
	res := &Result{
		Chart: textplot.Chart{XLabel: "initiatives per peer", YLabel: "disorder"},
	}
	n := cfg.scaled(1000)
	attach := 10.0 / float64(n-1)
	rates := []float64{0.03, 0.01, 0.003, 0.0005, 0}
	names := []string{"churn=30/1000", "churn=10/1000", "churn=3/1000", "churn=0.5/1000", "no churn"}
	r := rng.New(cfg.Seed)
	tails := make([]float64, len(rates))
	// Average plateaus over a few independent runs: single-trajectory
	// tails are noisy at reduced scale, while the paper's claim is about
	// the average disorder level.
	const reps = 3
	for i, rate := range rates {
		for rep := 0; rep < reps; rep++ {
			g := graph.ErdosRenyiMeanDegree(n, 10, r.Split())
			sim, err := dynamics.NewUniform(g, 1, core.BestMateStrategy{}, r.Split())
			if err != nil {
				return nil, err
			}
			traj := sim.RunChurn(20, 4, rate, attach)
			if rep == 0 {
				res.Series = append(res.Series, trajectorySeries(names[i], traj))
			}
			var sum float64
			half := traj[len(traj)/2:]
			for _, pt := range half {
				sum += pt.Disorder
			}
			tails[i] += sum / float64(len(half)) / reps
		}
		res.note("%s: plateau disorder %.4g (mean of %d runs)", names[i], tails[i], reps)
	}
	res.noteCheck(tails[len(tails)-1] == 0, "no churn: system reaches the stable state exactly")
	increasing := true
	for i := 1; i < len(tails); i++ {
		if tails[i-1] < tails[i] {
			increasing = false
		}
	}
	res.noteCheck(increasing, "plateau disorder increases with churn rate: %v", tails)
	return res, nil
}

// Theorem1 demonstrates both halves of Theorem 1 numerically: the stable
// configuration is reachable in at most B/2 initiatives, and arbitrary
// active-initiative schedules always converge.
func Theorem1(cfg Config) (*Result, error) {
	res := &Result{
		TableHeader: []string{"n", "B/2", "witness_initiatives", "random_schedule_units"},
	}
	r := rng.New(cfg.Seed)
	for _, n := range []int{cfg.scaled(100), cfg.scaled(500), cfg.scaled(1000)} {
		g := graph.ErdosRenyiMeanDegree(n, 8, r.Split())
		want := core.StableUniform(g, 2)
		// Witness schedule: best-peer-first best-mate initiatives.
		c := core.NewUniformConfig(n, 2)
		active := 0
		for p := 0; p < n; p++ {
			for {
				ok, _ := core.Initiative(c, g, p, core.BestMateStrategy{})
				if !ok {
					break
				}
				active++
			}
		}
		bound := c.TotalSlots() / 2
		res.noteCheck(c.Equal(want), "n=%d: witness schedule reaches the stable configuration", n)
		res.noteCheck(active <= bound, "n=%d: witness used %d active initiatives <= B/2 = %d", n, active, bound)

		// Random schedule: must converge too (no cycles possible).
		sim, err := dynamics.NewUniform(g.Clone(), 2, core.BestMateStrategy{}, r.Split())
		if err != nil {
			return nil, err
		}
		units := 0.0
		for !sim.Config().Equal(sim.InstantStable()) && units < 1000 {
			sim.Run(1, 1)
			units++
		}
		res.noteCheck(units < 1000, "n=%d: random schedule converged after %.0f base units", n, units)
		res.TableRows = append(res.TableRows, []float64{
			float64(n), float64(bound), float64(active), units,
		})
	}
	return res, nil
}
