package experiments

import (
	"fmt"
	"math"

	"stratmatch/internal/cluster"
	"stratmatch/internal/core"
	"stratmatch/internal/graph"
	"stratmatch/internal/textplot"
)

// Figure4 reproduces Figure 4: constant b0-matching (b0 = 2) on a complete
// graph yields a chain of disjoint (b0+1)-cliques.
func Figure4(cfg Config) (*Result, error) {
	const b0 = 2
	n := cfg.scaled(9)
	n -= n % (b0 + 1) // keep whole clusters, as the figure draws
	if n < b0+1 {
		n = b0 + 1
	}
	c := core.StableCompleteUniform(n, b0)
	rep := cluster.Analyze(c)
	res := &Result{
		TableHeader: []string{"peers", "components", "mean_cluster", "max_cluster", "mmo"},
		TableRows: [][]float64{{
			float64(rep.Peers), float64(rep.Components),
			rep.MeanClusterSize, float64(rep.MaxClusterSize), rep.MMO,
		}},
	}
	res.noteCheck(rep.MeanClusterSize == float64(b0+1),
		"every cluster has exactly b0+1 = %d peers (mean %.4g)", b0+1, rep.MeanClusterSize)
	res.noteCheck(rep.MaxClusterSize == b0+1,
		"no cluster exceeds b0+1 (max %d)", rep.MaxClusterSize)
	// Render the chain structure like the paper's drawing.
	for comp := 0; comp < rep.Components && comp < 4; comp++ {
		base := comp * (b0 + 1)
		res.note("cluster %d: peers {%d, %d, %d} pairwise matched", comp+1, base+1, base+2, base+3)
	}
	res.note("collaboration graph is a disjoint union of %d triangles — content is sealed inside clusters", rep.Components)
	return res, nil
}

// Figure5 reproduces Figure 5: the same population but with one extra
// connection granted to peer 1 chains the clusters into a single connected
// component.
func Figure5(cfg Config) (*Result, error) {
	const b0 = 2
	n := cfg.scaled(8)
	if n < b0+2 {
		n = b0 + 2
	}
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = b0
	}
	budgets[0] = b0 + 1
	c := core.StableComplete(budgets)
	rep := cluster.Analyze(c)
	connected := graph.IsConnected(c.CollabGraph())
	res := &Result{
		TableHeader: []string{"peers", "components", "max_cluster", "connected"},
		TableRows: [][]float64{{
			float64(rep.Peers), float64(rep.Components), float64(rep.MaxClusterSize), b2f(connected),
		}},
	}
	res.noteCheck(connected, "one extra connection for peer 1 connects the collaboration graph")
	// Contrast with the constant case.
	cst := cluster.Analyze(core.StableCompleteUniform(n, b0))
	res.note("without the extra connection the same population splits into %d clusters", cst.Components)
	return res, nil
}

// Table1 reproduces Table 1: average cluster size and MMO for constant
// b0-matching and for N(b̄, 0.2²)-matching, b ∈ 2..7. The paper does not
// state its population size; we use n = 60000 (≥ 5× the largest reported
// cluster) at scale 1.
func Table1(cfg Config) (*Result, error) {
	n := cfg.scaled(60000)
	bs := []int{2, 3, 4, 5, 6, 7}
	rows := cluster.Table1(n, bs, 0.2, 3, cfg.Seed, cfg.Workers)
	res := &Result{
		TableHeader: []string{
			"b", "const_cluster", "const_mmo", "normal_cluster", "normal_mmo",
		},
	}
	// The paper's reported values for reference in the notes.
	paperCluster := map[int]float64{2: 6, 3: 20, 4: 78, 5: 350, 6: 1800, 7: 11000}
	paperMMO := map[int]float64{2: 1.33, 3: 2.10, 4: 2.52, 5: 3.21, 6: 3.65, 7: 4.31}
	prev := 0.0
	for _, row := range rows {
		res.TableRows = append(res.TableRows, []float64{
			float64(row.B), row.ConstClusterSize, row.ConstMMO,
			row.NormalClusterSize, row.NormalMMO,
		})
		res.noteCheck(math.Abs(row.ConstClusterSize-float64(row.B+1)) < 0.02,
			"b0=%d: constant clusters have %.4g peers (paper: %d)", row.B, row.ConstClusterSize, row.B+1)
		res.noteCheck(math.Abs(row.ConstMMO-cluster.MMOClosedForm(row.B)) < 0.02,
			"b0=%d: constant MMO %.3f matches closed form %.3f", row.B, row.ConstMMO, cluster.MMOClosedForm(row.B))
		res.noteCheck(row.NormalClusterSize > prev,
			"b̄=%d: normal cluster size %.4g grows with b̄ (paper: %.4g)",
			row.B, row.NormalClusterSize, paperCluster[row.B])
		res.noteCheck(row.NormalMMO < row.ConstMMO,
			"b̄=%d: normal MMO %.3f below constant MMO %.3f (paper: %.2f)",
			row.B, row.NormalMMO, row.ConstMMO, paperMMO[row.B])
		prev = row.NormalClusterSize
	}
	return res, nil
}

// Figure6 reproduces Figure 6: mean cluster size (log scale) and MMO as
// functions of σ for N(6, σ²)-matching on a complete graph. The phase
// transition sits near σ ≈ 0.15.
func Figure6(cfg Config) (*Result, error) {
	n := cfg.scaled(30000)
	n -= n % 7 // whole clusters at sigma = 0
	var sigmas []float64
	for s := 0.0; s <= 2.0001; s += 0.05 {
		sigmas = append(sigmas, s)
	}
	pts := cluster.SigmaSweep(n, 6, sigmas, 3, cfg.Seed, cfg.Workers)
	size := textplot.Series{Name: "mean cluster size"}
	mmo := textplot.Series{Name: "mean max offset"}
	for _, pt := range pts {
		size.X = append(size.X, pt.Sigma)
		size.Y = append(size.Y, pt.MeanClusterSize)
		mmo.X = append(mmo.X, pt.Sigma)
		mmo.Y = append(mmo.Y, pt.MMO)
	}
	res := &Result{
		Chart:       textplot.Chart{XLabel: "sigma", YLabel: "cluster size / MMO", LogY: true},
		Series:      []textplot.Series{size, mmo},
		TableHeader: []string{"sigma", "mean_cluster_size", "mmo"},
	}
	for _, pt := range pts {
		res.TableRows = append(res.TableRows, []float64{pt.Sigma, pt.MeanClusterSize, pt.MMO})
	}
	res.noteCheck(pts[0].MeanClusterSize == 7,
		"sigma=0 degenerates to constant 6-matching: clusters of 7 (got %.4g)", pts[0].MeanClusterSize)
	res.noteCheck(math.Abs(pts[0].MMO-cluster.MMOClosedForm(6)) < 1e-9,
		"sigma=0 MMO equals closed form %.3f", cluster.MMOClosedForm(6))
	// Phase transition: by sigma = 0.3 the cluster size has exploded ...
	var at03, at2 cluster.SweepPoint
	for _, pt := range pts {
		if math.Abs(pt.Sigma-0.3) < 0.001 {
			at03 = pt
		}
		if math.Abs(pt.Sigma-2.0) < 0.001 {
			at2 = pt
		}
	}
	res.noteCheck(at03.MeanClusterSize > 20*pts[0].MeanClusterSize,
		"cluster size explodes through the transition: %.4g at sigma=0.3 vs %.4g at 0",
		at03.MeanClusterSize, pts[0].MeanClusterSize)
	// ... while the MMO drops, and stays low at large sigma.
	res.noteCheck(at03.MMO < pts[0].MMO,
		"MMO drops through the transition: %.3f at sigma=0.3 vs %.3f at 0", at03.MMO, pts[0].MMO)
	res.noteCheck(at2.MMO < 2*pts[0].MMO,
		"stratification persists at sigma=2: MMO %.3f stays small", at2.MMO)
	return res, nil
}

// MMOTable tabulates the closed-form MMO(b0) against its 3·b0/4 limit — the
// paper's Section 4.2 formula.
func MMOTable(cfg Config) (*Result, error) {
	res := &Result{
		TableHeader: []string{"b0", "mmo_closed_form", "three_quarter_b0", "relative_gap"},
	}
	prevGap := math.Inf(1)
	shrinking := true
	for _, b0 := range []int{2, 3, 4, 5, 6, 7, 8, 16, 32, 64} {
		mmo := cluster.MMOClosedForm(b0)
		limit := cluster.MMOLimit(b0)
		gap := math.Abs(mmo-limit) / limit
		res.TableRows = append(res.TableRows, []float64{float64(b0), mmo, limit, gap})
		if b0 >= 4 && gap > prevGap {
			shrinking = false
		}
		prevGap = gap
	}
	res.noteCheck(shrinking, "MMO(b0) converges to 3*b0/4 as b0 grows")
	res.noteCheck(fmt.Sprintf("%.2f", cluster.MMOClosedForm(2)) == "1.67",
		"MMO(2) = 1.67 as in Table 1")
	res.noteCheck(cluster.MMOClosedForm(5) == 4, "MMO(5) = 4 as in Table 1")
	return res, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
