package experiments

import (
	"stratmatch/internal/par"
)

// forEach runs fn(0) .. fn(n-1) across the configured number of workers
// (Config.Workers, defaulting to GOMAXPROCS) on the shared par worker
// pool. Once a task fails, no further tasks start, and the error of the
// lowest-indexed failing task is returned — the same error a serial loop
// would have reported.
//
// Determinism contract: every experiment that fans out must (a) give each
// task its own random sub-stream derived before the fan-out (or from the
// task index), and (b) write results only into its own index-addressed
// slot. Under that contract the outcome is byte-identical for any worker
// count and any scheduling — the determinism test in experiments_test.go
// enforces it for every parallel experiment.
func (c Config) forEach(n int, fn func(i int) error) error {
	// par.Workers applies the 0-means-GOMAXPROCS default; Config.Workers
	// passes through unresolved so the policy lives in one place.
	return par.ForEachErr(n, c.Workers, fn)
}
