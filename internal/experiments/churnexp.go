package experiments

import (
	"fmt"
	"math"

	"stratmatch/internal/btsim"
	"stratmatch/internal/par"
	"stratmatch/internal/stats"
	"stratmatch/internal/textplot"
)

// Churn runs the swarm simulator's dynamic-membership catalog — the regime
// beyond the paper's fixed post-flash-crowd population, studied empirically
// by Legout et al. and Al-Hamra et al.: a flash-crowd burst that forms and
// drains, a Poisson steady state with abandonment and seed linger, a mass
// departure that the tracker's re-announce handouts must heal, a replayed
// arrival trace, a seed-starvation regime, and capacity-correlated
// abandonment. Every workload goes through the declarative ScenarioSpec
// path — built as a spec, compiled, then run — so the experiment exercises
// the same pipeline that serialized spec files use. Each scenario runs
// several replicas; replicas fan out over Config.Workers with per-replica
// seeds and slots, so results are byte-identical for any worker count.
func Churn(cfg Config) (*Result, error) {
	names := btsim.ChurnScenarioNames()
	const replicas = 3
	runs := make([]*btsim.ScenarioResult, len(names)*replicas)
	specs := make([]btsim.ScenarioSpec, len(names)*replicas)
	scens := make([]btsim.Scenario, len(names)*replicas)
	for i := range specs {
		spec, err := btsim.NamedSpec(names[i/replicas], cfg.Seed+uint64(i%replicas)*0x9e3779b9, cfg.scale())
		if err != nil {
			return nil, err
		}
		specs[i] = spec
		if scens[i], err = spec.Compile(); err != nil {
			return nil, err
		}
		// Telemetry is runtime-only: attached after Compile, never part of
		// the spec, so recorded runs stay byte-identical to bare ones.
		scens[i].Telemetry = cfg.Telemetry
	}
	// With Config.CheckpointDir set, completed replicas are persisted and a
	// rerun only executes the ones that never finished.
	store := cfg.replicaStore()
	if err := par.ForEachErr(len(runs), cfg.Workers, func(i int) error {
		key := fmt.Sprintf("churn-%s-r%d", names[i/replicas], i%replicas)
		res, err := store.runReplica(key, scens[i])
		runs[i] = res
		return err
	}); err != nil {
		return nil, err
	}

	res := &Result{
		Chart: textplot.Chart{XLabel: "round", YLabel: "present peers"},
		TableHeader: []string{
			"scenario", "round", "present", "leechers", "seeds",
			"joined", "departed", "completed", "mean_degree",
		},
	}
	for si, name := range names {
		first := runs[si*replicas]
		s := textplot.Series{Name: name}
		for _, pt := range first.Series {
			s.X = append(s.X, float64(pt.Round))
			s.Y = append(s.Y, float64(pt.Present))
			res.TableRows = append(res.TableRows, []float64{
				float64(si), float64(pt.Round), float64(pt.Present),
				float64(pt.Leechers), float64(pt.Seeds), float64(pt.Joined),
				float64(pt.Departed), float64(pt.Completed), pt.MeanDegree,
			})
		}
		res.Series = append(res.Series, s)
	}

	// Conservation must hold in every run: churn moves peers, never data.
	worstGap := 0.0
	for _, run := range runs {
		var up, down float64
		for _, pm := range run.Final.Peers {
			up += pm.TotalUp
			down += pm.TotalDown
		}
		if gap := math.Abs(up-down) / math.Max(1, up); gap > worstGap {
			worstGap = gap
		}
	}
	res.noteCheck(worstGap < 1e-9,
		"flow conservation under churn: worst relative up/down gap %.2e", worstGap)

	// perScenario resolves a scenario's replica runs and its spec/config
	// by name, so the checks below can never desynchronize from the
	// catalog order.
	perScenario := func(name string) ([]*btsim.ScenarioResult, btsim.Scenario, btsim.ScenarioSpec) {
		for si, n := range names {
			if n == name {
				return runs[si*replicas : (si+1)*replicas], scens[si*replicas], specs[si*replicas]
			}
		}
		return nil, btsim.Scenario{}, btsim.ScenarioSpec{}
	}

	// Flash crowd: the burst forms a crowd several times the initial
	// population, and the crowd drains — most arrivals complete the file.
	var peakRatio, drained []float64
	flashRuns, flashSc, _ := perScenario("flashcrowd")
	for _, run := range flashRuns {
		initial := flashSc.Opt.Leechers + flashSc.Opt.Seeds
		peak := 0
		for _, pt := range run.Series {
			if pt.Present > peak {
				peak = pt.Present
			}
		}
		last := run.Series[len(run.Series)-1]
		peakRatio = append(peakRatio, float64(peak)/float64(initial))
		drained = append(drained, float64(last.Completed)/float64(run.TotalJoined-flashSc.Opt.Seeds))
	}
	res.noteCheck(stats.Summarize(peakRatio).Mean > 2.5,
		"flash crowd forms: peak population %.1fx the initial swarm", stats.Summarize(peakRatio).Mean)
	res.noteCheck(stats.Summarize(drained).Mean > 0.5,
		"flash crowd drains: %.0f%% of all leechers ever joined completed the file",
		stats.Summarize(drained).Mean*100)

	// Poisson steady state: continuous turnover with a live, bounded swarm.
	var turnover, alive []float64
	poissonRuns, _, _ := perScenario("poisson")
	for _, run := range poissonRuns {
		last := run.Series[len(run.Series)-1]
		turnover = append(turnover, float64(run.TotalDeparted))
		alive = append(alive, float64(last.Present))
	}
	res.noteCheck(stats.Summarize(turnover).Min > 0,
		"steady state turns peers over: %.0f departures per run on average",
		stats.Summarize(turnover).Mean)
	res.noteCheck(stats.Summarize(alive).Min >= 1,
		"steady state stays alive: %.1f peers present at the end on average",
		stats.Summarize(alive).Mean)

	// Mass departure: the overlay heals (mean degree recovers towards the
	// tracker target) and downloads keep completing afterwards.
	var healedDeg, extraDone []float64
	massRuns, massSc, _ := perScenario("massdepart")
	for _, run := range massRuns {
		last := run.Series[len(run.Series)-1]
		healedDeg = append(healedDeg, last.MeanDegree/float64(massSc.Opt.NeighborCount))
		eventRound := massSc.Events[0].Round
		atEvent := 0
		for _, pt := range run.Series {
			if pt.Round <= eventRound {
				atEvent = pt.Completed
			}
		}
		extraDone = append(extraDone, float64(last.Completed-atEvent))
	}
	res.noteCheck(stats.Summarize(healedDeg).Mean > 0.7,
		"overlay heals after mass departure: final mean degree at %.0f%% of the tracker target",
		stats.Summarize(healedDeg).Mean*100)
	res.noteCheck(stats.Summarize(extraDone).Mean > 0,
		"downloads continue after the shock: %.1f completions past the event on average",
		stats.Summarize(extraDone).Mean)

	// Trace replay: the schedule is deterministic, so the membership flow
	// is exact — every replica joins precisely initial + Σ counts peers.
	traceRuns, traceSc, traceSpec := perScenario("tracereplay")
	wantJoined := traceSc.Opt.Leechers + traceSc.Opt.Seeds
	for _, c := range traceSpec.Arrivals[0].Counts {
		wantJoined += c
	}
	traceExact := true
	for _, run := range traceRuns {
		if run.TotalJoined != wantJoined {
			traceExact = false
		}
	}
	res.noteCheck(traceExact,
		"trace replay is exact: every replica joined precisely %d peers (initial + schedule)", wantJoined)

	// Seed starvation: with InitialSeedsStay off the original content
	// sources leave after their linger, yet the swarm keeps completing
	// downloads off arrival-injected replicas.
	starveRuns, starveSc, _ := perScenario("seedstarve")
	seedsGone, starveDone := true, 0.0
	for _, run := range starveRuns {
		for id := starveSc.Opt.Leechers; id < starveSc.Opt.Leechers+starveSc.Opt.Seeds; id++ {
			if !run.Final.Peers[id].Departed {
				seedsGone = false
			}
		}
		starveDone += float64(run.Final.CompletedLeechers) / float64(len(starveRuns))
	}
	res.noteCheck(seedsGone,
		"seed starvation bites: every initial seed departed after its linger")
	res.noteCheck(starveDone > 0,
		"swarm survives starvation: %.1f completions per run off injected replicas", starveDone)

	// Capacity-correlated abandonment: leechers that gave up mid-download
	// must be drawn from the slow end of the capacity distribution.
	quitRuns, _, _ := perScenario("slowquit")
	var quitCap, stayCap []float64
	for _, run := range quitRuns {
		for _, pm := range run.Final.Peers {
			if pm.IsSeed {
				continue
			}
			if pm.Departed && !pm.Done {
				quitCap = append(quitCap, pm.Capacity)
			} else {
				stayCap = append(stayCap, pm.Capacity)
			}
		}
	}
	if len(quitCap) > 0 && len(stayCap) > 0 {
		mq, ms := stats.Summarize(quitCap).Mean, stats.Summarize(stayCap).Mean
		res.noteCheck(mq < ms,
			"abandonment is capacity-correlated: quitters average %.0f kbps vs %.0f for completers/stayers",
			mq, ms)
	} else {
		res.noteCheck(false, "slowquit produced no abandonments to compare (%d quit, %d stayed)",
			len(quitCap), len(stayCap))
	}

	// Stratification under churn (contextual): the paper's fixed-population
	// correlation, measured live on the Poisson steady state.
	var corrs []float64
	for _, run := range poissonRuns {
		last := run.Series[len(run.Series)-1]
		if !math.IsNaN(last.StratCorr) {
			corrs = append(corrs, last.StratCorr)
		}
	}
	if len(corrs) > 0 {
		res.note("rank vs TFT-partner-rank correlation under steady churn: mean %.3f over %d replicas",
			stats.Summarize(corrs).Mean, len(corrs))
	}
	return res, nil
}
