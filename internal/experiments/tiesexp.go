package experiments

import (
	"math"

	"stratmatch/internal/bandwidth"
	"stratmatch/internal/core"
	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

// Ties explores the paper's "Note on ties": real utilities are quantized
// (bandwidth classes), so many peers are exactly tied. The strict theory's
// uniqueness is lost — multiple tie-stable configurations exist — but the
// paper's simulation claim ("our results hold if we allow ties") does hold:
// tie-aware initiatives converge, and stratification (small rank offsets)
// persists, with tie classes mixing freely inside themselves.
func Ties(cfg Config) (*Result, error) {
	n := cfg.scaled(800)
	const d = 12.0
	// Quantize the Saroiu capacities into connection classes: everybody in
	// a class is exactly tied, as in real swarms.
	raw := bandwidth.RankBandwidths(bandwidth.Saroiu(), n)
	scores := make([]float64, n)
	for i, u := range raw {
		scores[i] = math.Pow(2, math.Round(math.Log2(u))) // octave classes
	}
	ranking, err := core.NewTieRanking(scores)
	if err != nil {
		return nil, err
	}
	classes := 1
	for i := 1; i < n; i++ {
		if scores[i] != scores[i-1] {
			classes++
		}
	}

	res := &Result{
		TableHeader: []string{"seed", "initiatives_to_stable", "mean_abs_offset", "distinct_fixed_point"},
	}
	// Each run is seeded independently from (cfg.Seed + run index), so the
	// runs fan out across workers; fixed-point identity is compared
	// serially afterwards, in run order, keeping the output deterministic.
	const runs = 6
	type tieRun struct {
		c       *core.Config
		steps   int
		stable  bool
		meanOff float64
	}
	results := make([]tieRun, runs)
	if err := cfg.forEach(runs, func(s int) error {
		r := rng.New(cfg.Seed + uint64(s))
		g := graph.ErdosRenyiMeanDegree(n, d, r)
		c := core.NewUniformConfig(n, 2)
		steps, idle := 0, 0
		for idle < 4*n && steps < 2000*n {
			p := r.Intn(n)
			active, _ := core.TieInitiative(c, g, ranking, p)
			steps++
			if active {
				idle = 0
			} else {
				idle++
			}
		}
		// Mean absolute rank offset of collaborations — the
		// stratification statistic.
		var offSum float64
		var offCnt int
		for p := 0; p < n; p++ {
			for _, m := range c.Mates(p) {
				if m > p {
					offSum += float64(m - p)
					offCnt++
				}
			}
		}
		meanOff := 0.0
		if offCnt > 0 {
			meanOff = offSum / float64(offCnt) / float64(n)
		}
		results[s] = tieRun{c: c, steps: steps, stable: core.IsStableTie(c, g, ranking), meanOff: meanOff}
		return nil
	}); err != nil {
		return nil, err
	}
	var reached []*core.Config
	converged := 0
	for s, run := range results {
		if run.stable {
			converged++
		}
		distinct := 1.0
		for _, fp := range reached {
			if fp.Equal(run.c) {
				distinct = 0
				break
			}
		}
		if distinct == 1 {
			reached = append(reached, run.c)
		}
		res.TableRows = append(res.TableRows, []float64{
			float64(s), float64(run.steps), run.meanOff, distinct,
		})
		res.noteCheck(run.stable, "seed %d: tie initiatives reached a tie-stable configuration", s)
		// Stratified offsets live at the ~1/d scale; uniform random
		// matching would average ~1/3. 3/d separates the two regimes at
		// any population size.
		res.noteCheck(run.meanOff < 3/d,
			"seed %d: stratification persists under ties (mean |rank offset| %.4f of n, random would be ~0.33)",
			s, run.meanOff)
	}
	res.noteCheck(converged == runs,
		"all %d runs converged despite %d tie classes (\"our results hold if we allow ties\")",
		runs, classes)
	// Each run used a different acceptance graph, so distinct fixed points
	// are expected; the theoretical content is non-uniqueness on a FIXED
	// graph, demonstrated separately. The acceptance graph is shared
	// read-only across the parallel runs; only the per-run configurations
	// mutate.
	gFixed := graph.ErdosRenyiMeanDegree(n, d, rng.New(cfg.Seed+999))
	fixedCfgs := make([]*core.Config, 4)
	if err := cfg.forEach(len(fixedCfgs), func(s int) error {
		r := rng.New(cfg.Seed + 1000 + uint64(s))
		c := core.NewUniformConfig(n, 2)
		idle := 0
		for steps := 0; idle < 4*n && steps < 2000*n; steps++ {
			if active, _ := core.TieInitiative(c, gFixed, ranking, r.Intn(n)); active {
				idle = 0
			} else {
				idle++
			}
		}
		fixedCfgs[s] = c
		return nil
	}); err != nil {
		return nil, err
	}
	distinctOnFixed := 0
	var seen []*core.Config
	for _, c := range fixedCfgs {
		fresh := true
		for _, o := range seen {
			if o.Equal(c) {
				fresh = false
			}
		}
		if fresh {
			seen = append(seen, c)
			distinctOnFixed++
		}
	}
	res.noteCheck(distinctOnFixed > 1,
		"uniqueness is lost under ties: %d distinct tie-stable configurations on one graph", distinctOnFixed)
	return res, nil
}
