package experiments

import (
	"math"

	"stratmatch/internal/bandwidth"
	"stratmatch/internal/core"
	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

// Ties explores the paper's "Note on ties": real utilities are quantized
// (bandwidth classes), so many peers are exactly tied. The strict theory's
// uniqueness is lost — multiple tie-stable configurations exist — but the
// paper's simulation claim ("our results hold if we allow ties") does hold:
// tie-aware initiatives converge, and stratification (small rank offsets)
// persists, with tie classes mixing freely inside themselves.
func Ties(cfg Config) (*Result, error) {
	n := cfg.scaled(800)
	const d = 12.0
	// Quantize the Saroiu capacities into connection classes: everybody in
	// a class is exactly tied, as in real swarms.
	raw := bandwidth.RankBandwidths(bandwidth.Saroiu(), n)
	scores := make([]float64, n)
	for i, u := range raw {
		scores[i] = math.Pow(2, math.Round(math.Log2(u))) // octave classes
	}
	ranking, err := core.NewTieRanking(scores)
	if err != nil {
		return nil, err
	}
	classes := 1
	for i := 1; i < n; i++ {
		if scores[i] != scores[i-1] {
			classes++
		}
	}

	res := &Result{
		TableHeader: []string{"seed", "initiatives_to_stable", "mean_abs_offset", "distinct_fixed_point"},
	}
	type fixedPoint struct{ c *core.Config }
	var reached []fixedPoint
	converged := 0
	const runs = 6
	for s := 0; s < runs; s++ {
		r := rng.New(cfg.Seed + uint64(s))
		g := graph.ErdosRenyiMeanDegree(n, d, r)
		c := core.NewUniformConfig(n, 2)
		steps, idle := 0, 0
		for idle < 4*n && steps < 2000*n {
			p := r.Intn(n)
			active, _ := core.TieInitiative(c, g, ranking, p)
			steps++
			if active {
				idle = 0
			} else {
				idle++
			}
		}
		stable := core.IsStableTie(c, g, ranking)
		if stable {
			converged++
		}
		// Mean absolute rank offset of collaborations — the
		// stratification statistic.
		var offSum float64
		var offCnt int
		for p := 0; p < n; p++ {
			for _, m := range c.Mates(p) {
				if m > p {
					offSum += float64(m - p)
					offCnt++
				}
			}
		}
		meanOff := 0.0
		if offCnt > 0 {
			meanOff = offSum / float64(offCnt) / float64(n)
		}
		distinct := 1.0
		for _, fp := range reached {
			if fp.c.Equal(c) {
				distinct = 0
				break
			}
		}
		if distinct == 1 {
			reached = append(reached, fixedPoint{c})
		}
		res.TableRows = append(res.TableRows, []float64{
			float64(s), float64(steps), meanOff, distinct,
		})
		res.noteCheck(stable, "seed %d: tie initiatives reached a tie-stable configuration", s)
		// Stratified offsets live at the ~1/d scale; uniform random
		// matching would average ~1/3. 3/d separates the two regimes at
		// any population size.
		res.noteCheck(meanOff < 3/d,
			"seed %d: stratification persists under ties (mean |rank offset| %.4f of n, random would be ~0.33)",
			s, meanOff)
	}
	res.noteCheck(converged == runs,
		"all %d runs converged despite %d tie classes (\"our results hold if we allow ties\")",
		runs, classes)
	// Each run used a different acceptance graph, so distinct fixed points
	// are expected; the theoretical content is non-uniqueness on a FIXED
	// graph, demonstrated separately:
	gFixed := graph.ErdosRenyiMeanDegree(n, d, rng.New(cfg.Seed+999))
	distinctOnFixed := 0
	var seen []*core.Config
	for s := 0; s < 4; s++ {
		r := rng.New(cfg.Seed + 1000 + uint64(s))
		c := core.NewUniformConfig(n, 2)
		idle := 0
		for steps := 0; idle < 4*n && steps < 2000*n; steps++ {
			if active, _ := core.TieInitiative(c, gFixed, ranking, r.Intn(n)); active {
				idle = 0
			} else {
				idle++
			}
		}
		fresh := true
		for _, o := range seen {
			if o.Equal(c) {
				fresh = false
			}
		}
		if fresh {
			seen = append(seen, c)
			distinctOnFixed++
		}
	}
	res.noteCheck(distinctOnFixed > 1,
		"uniqueness is lost under ties: %d distinct tie-stable configurations on one graph", distinctOnFixed)
	return res, nil
}
