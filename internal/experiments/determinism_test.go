package experiments

import (
	"fmt"
	"testing"
)

// TestParallelMatchesSerial pins the engine's reproducibility contract: for
// a fixed seed, an experiment fanned out over many workers must be
// byte-identical to the same experiment run on a single worker. Every task
// derives its own random sub-stream and writes to its own slot, so neither
// scheduling nor worker count may leak into the results.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-scale")
	}
	// Every experiment that fans out internally, plus fig9 (Monte-Carlo
	// sharding) and fig6/tab1 (cluster sweeps).
	ids := []string{"fig1", "fig2", "fig3", "thm1", "strategies", "ties", "slots", "fluid", "fig9", "fig6", "tab1", "churn", "faults"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serialCfg := Config{Seed: 11, Scale: 0.08, MCSamples: 60, Workers: 1}
			parallelCfg := serialCfg
			parallelCfg.Workers = 8
			serial, err := Run(id, serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := Run(id, parallelCfg)
			if err != nil {
				t.Fatal(err)
			}
			a, b := fmt.Sprintf("%#v", serial), fmt.Sprintf("%#v", parallel)
			if a != b {
				t.Errorf("parallel run diverged from serial run:\nserial:   %.400s\nparallel: %.400s", a, b)
			}
		})
	}
}
