package experiments

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"stratmatch/internal/btsim"
)

// replicaStore persists completed scenario replicas so an experiment rerun
// — after a crash, a kill, or an intentional stop — skips work it already
// finished. Every replica is deterministic given (seed, scale), so a
// stored result is exactly what rerunning would produce; the fingerprint
// makes a store written at different settings read as a miss instead of
// poisoning the rerun.
type replicaStore struct {
	dir   string
	seed  uint64
	scale float64
}

// replicaRecord is the on-disk shape: the fingerprint plus the result.
type replicaRecord struct {
	Seed   uint64
	Scale  float64
	Result btsim.ScenarioResult
}

// replicaStore returns the store for this config, or nil (every method
// no-ops on nil) when no checkpoint directory is configured.
func (c Config) replicaStore() *replicaStore {
	if c.CheckpointDir == "" {
		return nil
	}
	return &replicaStore{dir: c.CheckpointDir, seed: c.Seed, scale: c.scale()}
}

func (st *replicaStore) path(key string) string {
	return filepath.Join(st.dir, key+".replica.gob")
}

// load returns the stored result for key, or nil on any miss — absent
// file, unreadable gob, or a fingerprint from different settings. A
// corrupt record is indistinguishable from a missing one by design: the
// replica simply reruns.
func (st *replicaStore) load(key string) *btsim.ScenarioResult {
	if st == nil {
		return nil
	}
	f, err := os.Open(st.path(key))
	if err != nil {
		return nil
	}
	defer f.Close()
	var rec replicaRecord
	if err := gob.NewDecoder(f).Decode(&rec); err != nil {
		return nil
	}
	if rec.Seed != st.seed || rec.Scale != st.scale {
		return nil
	}
	return &rec.Result
}

// save persists a completed replica atomically (temp file + rename), so a
// kill mid-write leaves no half-record for a later load to trip over.
func (st *replicaStore) save(key string, res *btsim.ScenarioResult) error {
	if st == nil {
		return nil
	}
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return fmt.Errorf("experiments: checkpoint %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(st.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("experiments: checkpoint %s: %w", key, err)
	}
	rec := replicaRecord{Seed: st.seed, Scale: st.scale, Result: *res}
	if err := gob.NewEncoder(tmp).Encode(&rec); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("experiments: checkpoint %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiments: checkpoint %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), st.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiments: checkpoint %s: %w", key, err)
	}
	return nil
}

// runReplica resolves one replica through the store: a stored result is
// returned as-is (the run is skipped entirely); otherwise the scenario
// runs and the result is persisted before it is returned.
func (st *replicaStore) runReplica(key string, sc btsim.Scenario) (*btsim.ScenarioResult, error) {
	if got := st.load(key); got != nil {
		return got, nil
	}
	res, err := sc.Run()
	if err != nil {
		return nil, err
	}
	if err := st.save(key, res); err != nil {
		return nil, err
	}
	return res, nil
}
