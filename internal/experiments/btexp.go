package experiments

import (
	"math"

	"stratmatch/internal/bandwidth"
	"stratmatch/internal/btsim"
	"stratmatch/internal/rng"
	"stratmatch/internal/stats"
	"stratmatch/internal/textplot"
)

// Figure10 reproduces Figure 10: the cumulative distribution of upstream
// capacities (our reconstruction of the Saroiu et al. measurement — see
// DESIGN.md §5 for the substitution note).
func Figure10(cfg Config) (*Result, error) {
	dist := bandwidth.Saroiu()
	s := textplot.Series{Name: "percentage of hosts"}
	res := &Result{
		Chart:       textplot.Chart{XLabel: "upstream (kbps)", YLabel: "% hosts", LogX: true},
		TableHeader: []string{"kbps", "percent_hosts"},
	}
	for kbps := 10.0; kbps <= 100000.01; kbps *= 1.1 {
		pct := dist.CDF(kbps) * 100
		s.X = append(s.X, kbps)
		s.Y = append(s.Y, pct)
		res.TableRows = append(res.TableRows, []float64{kbps, pct})
	}
	res.Series = []textplot.Series{s}
	res.noteCheck(dist.CDF(56) > 0.05 && dist.CDF(56) < 0.25,
		"dial-up tail: %.0f%% of hosts at or below 56 kbps", dist.CDF(56)*100)
	res.noteCheck(dist.CDF(1500) > 0.75,
		"broad consumer mass: %.0f%% of hosts at or below T1", dist.CDF(1500)*100)
	res.note("wide capacity range: %g–%g kbps (\"some peers are more equal than others\")",
		dist.Min(), dist.Max())
	return res, nil
}

// Figure11 reproduces Figure 11: the expected download/upload ratio as a
// function of the upload bandwidth offered, with b0 = 3 Tit-for-Tat slots
// and d = 20 expected acceptable peers over the Saroiu capacity
// distribution.
func Figure11(cfg Config) (*Result, error) {
	n := cfg.scaled(2000)
	pts, err := bandwidth.ShareRatios(bandwidth.ShareRatioOptions{
		N: n, B0: 3, D: 20, Dist: bandwidth.Saroiu(),
	})
	if err != nil {
		return nil, err
	}
	s := textplot.Series{Name: "expected efficiency"}
	res := &Result{
		Chart: textplot.Chart{XLabel: "bandwidth per slot (kbps)", YLabel: "expected D/U", LogX: true},
		TableHeader: []string{
			"rank", "upload_kbps", "per_slot_kbps", "expected_download", "efficiency", "match_prob",
		},
	}
	for _, pt := range pts {
		s.X = append(s.X, pt.PerSlot)
		s.Y = append(s.Y, pt.Efficiency)
		res.TableRows = append(res.TableRows, []float64{
			float64(pt.Rank + 1), pt.Upload, pt.PerSlot, pt.ExpectedDownload,
			pt.Efficiency, pt.MatchProb,
		})
	}
	res.Series = []textplot.Series{s}

	// The paper's four observations about this figure.
	topMean, botMean := 0.0, 0.0
	k := n / 50
	for i := 0; i < k; i++ {
		topMean += pts[i].Efficiency
		botMean += pts[n-1-i].Efficiency
	}
	topMean /= float64(k)
	botMean /= float64(k)
	res.noteCheck(topMean < 1,
		"best peers suffer low share ratios (top 2%% mean %.3f < 1)", topMean)
	res.noteCheck(botMean > 1,
		"lowest peers have high efficiency (bottom 2%% mean %.3f > 1)", botMean)
	closest, spike := math.Inf(1), 0.0
	for _, pt := range pts[n/5 : 4*n/5] {
		if gap := math.Abs(pt.Efficiency - 1); gap < closest {
			closest = gap
		}
		if pt.Efficiency > spike {
			spike = pt.Efficiency
		}
	}
	res.noteCheck(closest < 0.15,
		"density-peak peers sit at ratio ~1 (closest gap %.3f)", closest)
	res.noteCheck(spike > 1.15,
		"efficiency peaks appear just above density peaks (max mid ratio %.3f)", spike)
	worstMatch := pts[n-1].MatchProb
	res.note("worst peer collaborates with probability %.3f", worstMatch)
	return res, nil
}

// Swarm runs the BitTorrent TFT swarm simulator in the paper's Section 6
// regime (content availability not a bottleneck, Saroiu capacities, 3 TFT
// slots + 1 optimistic) and checks that stratification and the share-ratio
// structure emerge from protocol mechanics, matching the analytic model's
// predictions.
func Swarm(cfg Config) (*Result, error) {
	n := cfg.scaled(300)
	caps := bandwidth.RankBandwidths(bandwidth.Saroiu(), n)
	// Shuffle id↔capacity so ids carry no rank signal.
	r := rng.New(cfg.Seed + 1)
	perm := r.Perm(n)
	shuffled := make([]float64, n)
	for i, src := range perm {
		shuffled[i] = caps[src]
	}
	s, err := btsim.New(btsim.Options{
		Leechers:            n,
		Pieces:              1,
		ContentUnlimited:    true,
		UploadKbps:          shuffled,
		NeighborCount:       20,
		MetricsWarmupRounds: 600,
		Seed:                cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	s.Run(1800)
	m := s.Snapshot()

	res := &Result{
		Chart: textplot.Chart{XLabel: "own rank", YLabel: "mean TFT partner rank"},
		TableHeader: []string{
			"rank", "upload_kbps", "mean_partner_rank", "share_ratio",
		},
	}
	scatter := textplot.Series{Name: "TFT partners"}
	var ratios []float64
	type rowT struct {
		rank    int
		capKbps float64
		partner float64
		ratio   float64
	}
	rows := make([]rowT, 0, n)
	for _, pm := range m.Peers {
		if math.IsNaN(pm.MeanTFTPartnerRank) {
			continue
		}
		scatter.X = append(scatter.X, float64(pm.Rank))
		scatter.Y = append(scatter.Y, pm.MeanTFTPartnerRank)
		rows = append(rows, rowT{pm.Rank, pm.Capacity, pm.MeanTFTPartnerRank, pm.ShareRatio})
		if !math.IsNaN(pm.ShareRatio) {
			ratios = append(ratios, pm.ShareRatio)
		}
	}
	// Emit rows sorted by rank for a readable table.
	for rank := 0; rank < n; rank++ {
		for _, row := range rows {
			if row.rank == rank {
				res.TableRows = append(res.TableRows, []float64{
					float64(row.rank + 1), row.capKbps, row.partner + 1, row.ratio,
				})
			}
		}
	}
	res.Series = []textplot.Series{scatter}
	res.noteCheck(m.StratCorrelation > 0.3,
		"stratification emerges from TFT mechanics: rank vs partner-rank correlation %.3f", m.StratCorrelation)
	res.noteCheck(m.MeanAbsRankOffset < 0.35,
		"peers trade within narrow rank bands: normalized mean offset %.3f", m.MeanAbsRankOffset)

	// Share ratio structure mirrors Figure 11: best decile below the worst
	// decile's ratio.
	dec := len(rows) / 10
	var topRatio, botRatio []float64
	for _, row := range rows {
		switch {
		case row.rank < dec:
			topRatio = append(topRatio, row.ratio)
		case row.rank >= n-dec:
			botRatio = append(botRatio, row.ratio)
		}
	}
	topMean := stats.Summarize(topRatio).Mean
	botMean := stats.Summarize(botRatio).Mean
	res.noteCheck(topMean < botMean,
		"share ratios: top decile %.3f below bottom decile %.3f (Figure 11 structure)", topMean, botMean)
	res.note("per-peer ratios are skewed by optimistic gifts to slow peers (mean %.3f); "+
		"total upload always equals total download", stats.Summarize(ratios).Mean)
	return res, nil
}
