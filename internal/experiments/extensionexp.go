package experiments

import (
	"stratmatch/internal/core"
	"stratmatch/internal/gossip"
	"stratmatch/internal/graph"
	"stratmatch/internal/metricmatch"
	"stratmatch/internal/rng"
	"stratmatch/internal/textplot"
)

// Combo implements the paper's conclusion: "combining different utility
// functions ... can, for instance, be achieved by introducing a second type
// of collaborations depending on ... a symmetric ranking such as latency."
// Each peer gets bandwidth (global-ranking) slots plus latency (symmetric
// metric) slots; the combined overlay keeps the Tit-for-Tat incentive edges
// while collapsing the diameter that pure stratification inflates — the
// play-out-delay fix for streaming.
func Combo(cfg Config) (*Result, error) {
	n := cfg.scaled(1000)
	const d = 14.0
	r := rng.New(cfg.Seed)
	g := graph.ErdosRenyiMeanDegree(n, d, r)

	band := core.StableUniform(g, 2) // 2 bandwidth slots per peer
	m := metricmatch.NewRingMetric(n)
	lat, err := metricmatch.Stable(g, uniformInts(n, 2), m) // + 2 latency slots
	if err != nil {
		return nil, err
	}
	combined, err := metricmatch.Combine(band, lat)
	if err != nil {
		return nil, err
	}

	measure := func(cg graph.Graph) (reach int, ecc int) {
		for _, dist := range graph.BFSDistances(cg, 0) {
			if dist >= 0 {
				reach++
				if dist > ecc {
					ecc = dist
				}
			}
		}
		return reach, ecc
	}
	bandReach, bandEcc := measure(band.CollabGraph())
	latReach, latEcc := measure(lat.CollabGraph())
	comboReach, comboEcc := measure(combined)

	res := &Result{
		TableHeader: []string{"overlay", "reachable_from_best", "eccentricity"},
		TableRows: [][]float64{
			{1, float64(bandReach), float64(bandEcc)},
			{2, float64(latReach), float64(latEcc)},
			{3, float64(comboReach), float64(comboEcc)},
		},
	}
	res.note("overlay rows: 1=bandwidth (global ranking), 2=latency (metric), 3=combined")
	res.noteCheck(core.IsStable(band, g), "bandwidth overlay is stable under the global ranking")
	res.noteCheck(metricmatch.IsStable(lat, g, m), "latency overlay is stable under the metric")
	res.noteCheck(comboReach >= bandReach,
		"combined overlay reaches at least as many peers as bandwidth alone (%d vs %d)",
		comboReach, bandReach)
	frac := float64(comboReach) / float64(n)
	res.noteCheck(frac > 0.9,
		"combined overlay spans %.0f%% of the swarm from the best peer", frac*100)
	// Diameter argument: per reached peer, the combined overlay is no
	// deeper than the stratified bandwidth chain.
	res.noteCheck(comboEcc <= bandEcc || comboReach > bandReach,
		"combined overlay does not deepen the overlay (ecc %d vs %d, reach %d vs %d)",
		comboEcc, bandEcc, comboReach, bandReach)
	res.note("TFT incentive edges are untouched: the combined graph contains every bandwidth edge")
	return res, nil
}

// Gossip implements the rank-discovery loop the paper's framework assumes
// ("gossip-based protocols used by a peer to discover its rank"): nodes
// learn their rank through a peer-sampling service, and the stable matching
// computed from *estimated* ranks converges to the true one as gossip
// rounds accumulate.
func Gossip(cfg Config) (*Result, error) {
	n := cfg.scaled(600)
	const d = 10.0
	// Strictly decreasing scores so true ranks are the identity.
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(2*n - i)
	}
	nw, err := gossip.New(scores, 10, cfg.Seed)
	if err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed + 1)
	g := graph.ErdosRenyiMeanDegree(n, d, r)
	truth := core.StableUniform(g, 1)

	res := &Result{
		Chart:       textplot.Chart{XLabel: "gossip rounds", YLabel: "error"},
		TableHeader: []string{"rounds", "rank_mae", "matching_disorder"},
	}
	rankErr := textplot.Series{Name: "rank MAE (normalized)"}
	disorder := textplot.Series{Name: "disorder of estimated-rank matching"}
	// Run-level buffers shared by every measurement: estimate and
	// permutation scratch, the uniform budget vector, and the arenas behind
	// the relabeled graph and the two matchings. Re-ranking used to rebuild
	// all of these per record — thousands of allocations per run for a
	// handful of measurements.
	est := make([]float64, n)
	rankOf := make([]int, n)
	peerAt := make([]int, n)
	ones := make([]int, n)
	for i := range ones {
		ones[i] = 1
	}
	var relabelArena graph.Arena
	var stArena, outArena core.Arena
	record := func(round int) (float64, float64) {
		mae := nw.MeanAbsRankError()
		// Re-rank peers by estimated rank and solve the matching in that
		// order; measure its distance to the true stable matching.
		nw.EstimatedRanksInto(est)
		rankPermutation(est, rankOf, peerAt)
		gr := relabelArena.Relabel(g, rankOf)
		cfgEst := mapBackMatching(stArena.StableUniform(gr, 1), peerAt, outArena.Reset(ones))
		dis := core.Distance(cfgEst, truth)
		rankErr.X = append(rankErr.X, float64(round))
		rankErr.Y = append(rankErr.Y, mae)
		disorder.X = append(disorder.X, float64(round))
		disorder.Y = append(disorder.Y, dis)
		res.TableRows = append(res.TableRows, []float64{float64(round), mae, dis})
		return mae, dis
	}
	mae0, dis0 := record(0)
	var maeEnd, disEnd float64
	for round := 1; round <= 30; round++ {
		nw.Round()
		if round%5 == 0 || round == 1 {
			maeEnd, disEnd = record(round)
		}
	}
	res.Series = []textplot.Series{rankErr, disorder}
	res.noteCheck(maeEnd < mae0,
		"gossip shrinks the rank error: %.4f -> %.4f of n", mae0, maeEnd)
	res.noteCheck(maeEnd < 0.05,
		"after 30 rounds every peer knows its rank to %.1f%% of n", maeEnd*100)
	res.noteCheck(disEnd < dis0,
		"the estimated-rank stable matching approaches the true one: disorder %.4f -> %.4f", dis0, disEnd)
	res.noteCheck(disEnd < 0.2,
		"final estimated-rank matching within %.4f of the true stable configuration", disEnd)
	return res, nil
}

// rankPermutation sorts peers by estimated rank (ascending; ties by id)
// into the caller-owned rankOf / peerAt permutation buffers.
func rankPermutation(est []float64, rankOf, peerAt []int) {
	n := len(est)
	for i := range peerAt {
		peerAt[i] = i
	}
	// Insertion sort keeps the dependency footprint zero; n is experiment
	// scale.
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := peerAt[j-1], peerAt[j]
			if est[a] < est[b] || (est[a] == est[b] && a < b) {
				break
			}
			peerAt[j-1], peerAt[j] = peerAt[j], peerAt[j-1]
		}
	}
	for rank, peer := range peerAt {
		rankOf[peer] = rank
	}
}

// mapBackMatching copies the rank-space stable matching st into out (an
// empty configuration over the original peer ids) via the peerAt
// permutation, and returns out.
func mapBackMatching(st *core.Config, peerAt []int, out *core.Config) *core.Config {
	for rank := 0; rank < len(peerAt); rank++ {
		for _, mateRank := range st.Mates(rank) {
			if mateRank > rank {
				if err := out.Match(peerAt[rank], peerAt[mateRank]); err != nil {
					panic(err) // relabeling preserves capacity feasibility
				}
			}
		}
	}
	return out
}
