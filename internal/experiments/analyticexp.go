package experiments

import (
	"math"
	"strconv"

	"stratmatch/internal/analytic"
	"stratmatch/internal/stats"
	"stratmatch/internal/textplot"
)

// Figure7 reproduces Figure 7: for n = 3 peers the exact matching
// probabilities versus Algorithm 2's approximation; the only discrepancy is
// p³(1−p) on the worst pair.
func Figure7(cfg Config) (*Result, error) {
	res := &Result{
		TableHeader: []string{
			"p", "exact_D12", "exact_D13", "exact_D23", "approx_D23", "error", "p3(1-p)",
		},
	}
	errSeries := textplot.Series{Name: "approx error on D(2,3)"}
	formula := textplot.Series{Name: "p^3(1-p)"}
	allMatch := true
	for p := 0.05; p <= 0.951; p += 0.05 {
		fig, err := analytic.ComputeFigure7(p)
		if err != nil {
			return nil, err
		}
		want := math.Pow(p, 3) * (1 - p)
		if math.Abs(fig.Err-want) > 1e-9 {
			allMatch = false
		}
		res.TableRows = append(res.TableRows, []float64{
			p, fig.Exact[0][1], fig.Exact[0][2], fig.Exact[1][2], fig.Approx[1][2], fig.Err, want,
		})
		errSeries.X = append(errSeries.X, p)
		errSeries.Y = append(errSeries.Y, fig.Err)
		formula.X = append(formula.X, p)
		formula.Y = append(formula.Y, want)
	}
	res.Series = []textplot.Series{errSeries, formula}
	res.Chart = textplot.Chart{XLabel: "p", YLabel: "error"}
	res.noteCheck(allMatch, "approximation error equals p^3(1-p) for all sampled p")
	res.note("exact values: D(1,2)=p, D(1,3)=p(1-p), D(2,3)=p(1-p)^2 (paper's 1-based labels)")
	return res, nil
}

// Figure8 reproduces Figure 8: mate-rank distributions of peers 200, 2500
// and 4800 (1-based) in independent 1-matching with n = 5000, p = 0.5%.
func Figure8(cfg Config) (*Result, error) {
	n := cfg.scaled(5000)
	p := 25.0 / float64(n) // keeps d = p·n ≈ 25 as in the paper's 0.5% of 5000
	peers := []int{n * 200 / 5000, n / 2, n * 4800 / 5000}
	for i, q := range peers {
		if q >= n {
			peers[i] = n - 1
		}
	}
	om, err := analytic.OneMatching(n, p, peers...)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Chart: textplot.Chart{XLabel: "mate rank j", YLabel: "D(i, j)"},
	}
	for _, q := range peers {
		s := textplot.Series{Name: seriesName("peer", q)}
		row := om.Rows[q]
		for j := 0; j < n; j++ {
			s.X = append(s.X, float64(j+1))
			s.Y = append(s.Y, row[j])
		}
		res.Series = append(res.Series, s)
	}
	// Qualitative checks from the paper's Section 5.3.
	top := om.Rows[peers[0]]
	// (a) well-ranked peer: right tail decays ~geometrically.
	decays := 0
	for j := peers[0] + 1; j < peers[0]+200 && j+1 < n; j++ {
		if top[j+1] <= top[j]+1e-15 {
			decays++
		}
	}
	res.noteCheck(decays > 180, "well-ranked peer: right tail decreasing (%d/199 steps)", decays)
	// (b) central peer: distribution symmetric around its own rank.
	mid := om.Rows[peers[1]]
	var asym, mass float64
	for off := 1; off < n/10; off++ {
		lo, hi := peers[1]-off, peers[1]+off
		if lo < 0 || hi >= n {
			break
		}
		asym += math.Abs(mid[lo] - mid[hi])
		mass += mid[lo] + mid[hi]
	}
	res.noteCheck(asym/mass < 0.1,
		"central peer: symmetric distribution (asymmetry %.3g of mass)", asym/mass)
	// (c) worst peers: truncated distribution with unmatched probability.
	unmatched := om.UnmatchedProb(peers[2])
	res.noteCheck(unmatched > 0.01,
		"bottom peer: positive unmatched probability %.3f (the cut blue area)", unmatched)
	worst := om.MatchProb[n-1]
	res.noteCheck(math.Abs(worst-0.5) < 0.12,
		"worst peer matched about half the time: %.3f", worst)
	res.note("match probabilities: peer %d: %.4f, peer %d: %.4f, peer %d: %.4f",
		peers[0]+1, om.MatchProb[peers[0]], peers[1]+1, om.MatchProb[peers[1]], peers[2]+1, om.MatchProb[peers[2]])
	return res, nil
}

// Figure9 reproduces Figure 9: first- and second-choice distributions of
// peer 3000 (1-based) for b0 = 2, n = 5000, p = 1% — the independent model
// versus Monte-Carlo over true stable matchings. The paper drew 10⁶ graphs
// ("several weeks"); Config.MCSamples controls our sample count.
func Figure9(cfg Config) (*Result, error) {
	n := cfg.scaled(5000)
	p := 50.0 / float64(n) // ~50 expected neighbors, as in the paper
	if p > 1 {
		p = 1
	}
	peer := 3 * n / 5
	const b0 = 2
	bm, err := analytic.BMatching(analytic.BMatchingOptions{
		N: n, P: p, B0: b0, TrackRows: []int{peer}, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	mc, err := analytic.MonteCarloChoicesWorkers(n, p, b0, peer, cfg.mcSamples(), cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Chart: textplot.Chart{XLabel: "ranking offset", YLabel: "probability"},
	}
	choiceNames := []string{"first choice", "second choice"}
	for c := 0; c < b0; c++ {
		est := textplot.Series{Name: choiceNames[c] + " estimated"}
		sim := textplot.Series{Name: choiceNames[c] + " simulated"}
		for j := 0; j < n; j++ {
			off := float64(j - peer)
			est.X = append(est.X, off)
			est.Y = append(est.Y, bm.Rows[peer][c][j])
			sim.X = append(sim.X, off)
			sim.Y = append(sim.Y, mc.ChoiceDist[c][j])
		}
		res.Series = append(res.Series, est, sim)
		// Agreement check via total variation over coarse bins.
		const bins = 25
		binned := func(dist []float64) []float64 {
			out := make([]float64, bins)
			for j := 0; j < n; j++ {
				out[j*bins/n] += dist[j]
			}
			return out
		}
		tv := stats.TotalVariation(binned(bm.Rows[peer][c]), binned(mc.ChoiceDist[c]))
		// Empirical TV carries an O(1/√samples) sampling-noise floor even
		// when the model is exact; give reduced-sample runs that allowance
		// (paper-scale runs keep the strict 0.08 gate).
		tol := math.Max(0.08, 1.1/math.Sqrt(float64(mc.Samples)))
		res.noteCheck(tv < tol,
			"%s: model vs %d-sample Monte-Carlo TV distance %.4f (tol %.3f)",
			choiceNames[c], mc.Samples, tv, tol)
	}
	res.note("paper used 10^6 Monte-Carlo draws; this run used %d (seconds instead of weeks)", mc.Samples)
	return res, nil
}

// FluidLimit illustrates Conjecture 1 (and Theorems 2–3): the rescaled best-
// peer mate distribution n·D(0, βn) approaches d·e^{−βd} as n grows.
func FluidLimit(cfg Config) (*Result, error) {
	const d = 10.0
	res := &Result{
		Chart:       textplot.Chart{XLabel: "beta", YLabel: "density"},
		TableHeader: []string{"n", "sup_error"},
	}
	ns := []int{cfg.scaled(500), cfg.scaled(1000), cfg.scaled(4000)}
	// The per-n model evaluations are deterministic and independent: fan
	// them out and assemble in order.
	supErrors := make([]float64, len(ns))
	series := make([]textplot.Series, len(ns))
	if err := cfg.forEach(len(ns), func(i int) error {
		n := ns[i]
		pts, err := analytic.CompareFluid(n, d, 0.5, 50)
		if err != nil {
			return err
		}
		s := textplot.Series{Name: seriesName("model n=", n)}
		sup := 0.0
		for _, pt := range pts {
			s.X = append(s.X, pt.Beta)
			s.Y = append(s.Y, pt.Model)
			if e := math.Abs(pt.Model - pt.Fluid); e > sup {
				sup = e
			}
		}
		series[i], supErrors[i] = s, sup
		return nil
	}); err != nil {
		return nil, err
	}
	for i, n := range ns {
		res.Series = append(res.Series, series[i])
		res.TableRows = append(res.TableRows, []float64{float64(n), supErrors[i]})
	}
	fluid := textplot.Series{Name: "fluid limit d*exp(-beta*d)"}
	for k := 1; k <= 50; k++ {
		beta := 0.5 * float64(k) / 50
		fluid.X = append(fluid.X, beta)
		fluid.Y = append(fluid.Y, analytic.FluidDensity(d, beta))
	}
	res.Series = append(res.Series, fluid)
	res.noteCheck(supErrors[len(supErrors)-1] < supErrors[0],
		"sup error shrinks with n: %v", supErrors)
	// The finite-size gap is dominated by rank discretization, O(d²/n).
	tol := math.Max(0.08, 3*d*d/float64(ns[len(ns)-1]))
	res.noteCheck(supErrors[len(supErrors)-1] < tol,
		"largest n within %.3f of the fluid limit (sup error %.4f)", tol, supErrors[len(supErrors)-1])
	return res, nil
}

func seriesName(prefix string, v int) string {
	return prefix + " " + strconv.Itoa(v)
}
