package experiments

import (
	"fmt"
	"math"

	"stratmatch/internal/btsim"
	"stratmatch/internal/par"
	"stratmatch/internal/stats"
	"stratmatch/internal/textplot"
)

// Faults runs the swarm simulator's fault-injection catalog: a full tracker
// outage with lossy announces (trackerdown), a partition that bisects the
// swarm and heals (splitbrain), and a crash-stop failure wave whose stale
// connections linger until the failure-detection sweep (crashcrowd). The
// experiment asks the robustness questions the fault layer exists to
// answer: does the swarm survive losing its only coordination point, does
// stratification re-form after a partition heals, and do the structural
// invariants hold every round while peers crash without unwiring?
//
// Every workload goes through the declarative ScenarioSpec path, and the
// first crashcrowd replica runs with the per-round invariant watchdog on —
// a clean run is itself the strongest check. Replicas fan out over
// Config.Workers with per-replica seeds; results are byte-identical for
// any worker count.
func Faults(cfg Config) (*Result, error) {
	names := btsim.FaultScenarioNames()
	const replicas = 3
	runs := make([]*btsim.ScenarioResult, len(names)*replicas)
	specs := make([]btsim.ScenarioSpec, len(names)*replicas)
	scens := make([]btsim.Scenario, len(names)*replicas)
	for i := range specs {
		spec, err := btsim.NamedSpec(names[i/replicas], cfg.Seed+uint64(i%replicas)*0x9e3779b9, cfg.scale())
		if err != nil {
			return nil, err
		}
		// The watchdog audits every invariant every round — O(V·E) per
		// round, so one replica carries it for the whole catalog.
		if spec.Name == "crashcrowd" && i%replicas == 0 {
			spec.Faults.Watchdog = true
		}
		specs[i] = spec
		if scens[i], err = spec.Compile(); err != nil {
			return nil, err
		}
		// Telemetry is runtime-only: attached after Compile, never part of
		// the spec, so recorded runs stay byte-identical to bare ones.
		scens[i].Telemetry = cfg.Telemetry
	}
	// With Config.CheckpointDir set, completed replicas are persisted and a
	// rerun only executes the ones that never finished.
	store := cfg.replicaStore()
	if err := par.ForEachErr(len(runs), cfg.Workers, func(i int) error {
		key := fmt.Sprintf("faults-%s-r%d", names[i/replicas], i%replicas)
		res, err := store.runReplica(key, scens[i])
		runs[i] = res
		return err
	}); err != nil {
		// A watchdog violation surfaces here as a hard error: invariants
		// breaking under faults is a bug, not a degraded result.
		return nil, err
	}

	res := &Result{
		Chart: textplot.Chart{XLabel: "round", YLabel: "present peers"},
		TableHeader: []string{
			"scenario", "round", "present", "completed", "mean_degree",
			"stale_edges", "crashed", "announce_failures", "announce_retries",
		},
	}
	for si, name := range names {
		first := runs[si*replicas]
		s := textplot.Series{Name: name}
		for _, pt := range first.Series {
			s.X = append(s.X, float64(pt.Round))
			s.Y = append(s.Y, float64(pt.Present))
			res.TableRows = append(res.TableRows, []float64{
				float64(si), float64(pt.Round), float64(pt.Present),
				float64(pt.Completed), pt.MeanDegree, float64(pt.StaleEdges),
				float64(pt.Crashed), float64(pt.AnnounceFailures),
				float64(pt.AnnounceRetries),
			})
		}
		res.Series = append(res.Series, s)
	}

	perScenario := func(name string) ([]*btsim.ScenarioResult, btsim.ScenarioSpec) {
		for si, n := range names {
			if n == name {
				return runs[si*replicas : (si+1)*replicas], specs[si*replicas]
			}
		}
		return nil, btsim.ScenarioSpec{}
	}

	// Tracker outage: the swarm must ride out the whole window on the
	// overlay it already has — peers present throughout, announces failing
	// and retrying with backoff — and resume completing downloads once the
	// tracker returns.
	tdRuns, tdSpec := perScenario("trackerdown")
	outage := tdSpec.Faults.Injections[0]
	outageEnd := outage.Start + outage.Rounds
	survived := true
	var retries, failures, postOutageDone []float64
	for _, run := range tdRuns {
		doneAtEnd := 0
		for _, pt := range run.Series {
			if pt.Round >= outage.Start && pt.Round < outageEnd && pt.Present == 0 {
				survived = false
			}
			if pt.Round <= outageEnd {
				doneAtEnd = pt.Completed
			}
		}
		last := run.Series[len(run.Series)-1]
		retries = append(retries, float64(last.AnnounceRetries))
		failures = append(failures, float64(last.AnnounceFailures))
		postOutageDone = append(postOutageDone, float64(last.Completed-doneAtEnd))
	}
	res.noteCheck(survived,
		"swarm survives a full tracker outage of %d rounds: population never drained", outage.Rounds)
	res.noteCheck(stats.Summarize(failures).Min > 0 && stats.Summarize(retries).Min > 0,
		"announce retry/backoff engaged: %.0f failures, %.0f retries per run on average",
		stats.Summarize(failures).Mean, stats.Summarize(retries).Mean)
	res.noteCheck(stats.Summarize(postOutageDone).Mean > 0,
		"downloads resume after recovery: %.1f completions past the outage on average",
		stats.Summarize(postOutageDone).Mean)

	// Partition: cross-side connections are severed, so the overlay thins
	// while the split holds; after the heal the tracker re-knits it and
	// rank-correlated matching re-forms — the reconvergence the paper's
	// Figure 2 studies for single removals, here after a bisection.
	sbRuns, sbSpec := perScenario("splitbrain")
	split := sbSpec.Faults.Injections[0]
	healRound := split.Start + split.Rounds
	var degDip, degHealed, tailCorr []float64
	restratAt := -1
	for ri, run := range sbRuns {
		preDeg, inDeg, lastDeg := 0.0, math.Inf(1), 0.0
		preCorr := 0.0
		var tail []float64
		for _, pt := range run.Series {
			switch {
			case pt.Round < split.Start:
				preDeg = pt.MeanDegree
				if !math.IsNaN(pt.StratCorr) {
					preCorr = pt.StratCorr
				}
			case pt.Round < healRound:
				if pt.MeanDegree < inDeg {
					inDeg = pt.MeanDegree
				}
			default:
				lastDeg = pt.MeanDegree
				if !math.IsNaN(pt.StratCorr) {
					tail = append(tail, pt.StratCorr)
					// Rounds-to-restratification on the first replica: the
					// first post-heal sample back at 80% of the pre-split
					// correlation.
					if ri == 0 && restratAt < 0 && pt.StratCorr >= 0.8*preCorr {
						restratAt = pt.Round - healRound
					}
				}
			}
		}
		degDip = append(degDip, inDeg/math.Max(preDeg, 1e-9))
		degHealed = append(degHealed, lastDeg/math.Max(preDeg, 1e-9))
		if len(tail) > 0 {
			tailCorr = append(tailCorr, stats.Summarize(tail).Mean)
		}
	}
	res.noteCheck(stats.Summarize(degDip).Mean < 0.95,
		"partition thins the overlay: mean degree dips to %.0f%% of the pre-split level",
		stats.Summarize(degDip).Mean*100)
	res.noteCheck(stats.Summarize(degHealed).Mean > 0.8,
		"overlay re-knits after the heal: final mean degree at %.0f%% of the pre-split level",
		stats.Summarize(degHealed).Mean*100)
	res.noteCheck(len(tailCorr) > 0 && stats.Summarize(tailCorr).Mean > 0,
		"stratification recovers after the heal: post-heal rank correlation %.3f on average",
		stats.Summarize(tailCorr).Mean)
	if restratAt >= 0 {
		res.note("rounds to re-stratification after the heal (replica 0, 80%% of pre-split correlation): %d", restratAt)
	}

	// Crash-stop wave: crashes happen, their stale connections are visible
	// for a while (overlay rot), and the failure-detection sweep retires
	// every one of them by the end — with replica 0's watchdog certifying
	// all structural invariants every single round.
	ccRuns, _ := perScenario("crashcrowd")
	var crashed, peakStale []float64
	staleDrained := true
	for _, run := range ccRuns {
		peak := 0
		for _, pt := range run.Series {
			if pt.StaleEdges > peak {
				peak = pt.StaleEdges
			}
		}
		last := run.Series[len(run.Series)-1]
		if last.StaleEdges != 0 {
			staleDrained = false
		}
		crashed = append(crashed, float64(run.Final.TotalCrashed))
		peakStale = append(peakStale, float64(peak))
	}
	res.noteCheck(stats.Summarize(crashed).Min > 0,
		"crash-stop failures fire: %.0f crashes per run on average", stats.Summarize(crashed).Mean)
	res.noteCheck(stats.Summarize(peakStale).Max > 0,
		"stale edges are observable before detection: peak %d in one run",
		int(stats.Summarize(peakStale).Max))
	res.noteCheck(staleDrained,
		"failure detection retires every stale edge by the end of the run")
	res.noteCheck(true,
		"invariant watchdog held every round of the audited crashcrowd replica")
	return res, nil
}
