package experiments

import (
	"strings"
	"testing"
)

// smallCfg runs experiments at reduced scale so the whole suite stays fast.
var smallCfg = Config{Seed: 7, Scale: 0.12, MCSamples: 120}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != len(registry) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(registry))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
	for _, id := range ids {
		if _, ok := Title(id); !ok {
			t.Fatalf("Title(%q) missing", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", smallCfg); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestAllExperimentsPassChecks runs every experiment at reduced scale and
// requires every embedded qualitative check to PASS — this is the
// integration test of the whole reproduction.
func TestAllExperimentsPassChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-scale")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, smallCfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id {
				t.Fatalf("result ID %q", res.ID)
			}
			pass, fail := res.Checks()
			if pass == 0 {
				t.Fatalf("experiment has no checks: notes %v", res.Notes)
			}
			if fail > 0 {
				for _, n := range res.Notes {
					if strings.HasPrefix(n, "FAIL: ") {
						t.Error(n)
					}
				}
			}
			if len(res.Series) == 0 && len(res.TableRows) == 0 {
				t.Fatal("experiment produced no data")
			}
			// Every figure must render without panicking.
			if len(res.Series) > 0 {
				if out := res.Chart.Render(); strings.Contains(out, "(no data)") {
					t.Fatal("figure rendered empty")
				}
			}
		})
	}
}

func TestScaledHelpers(t *testing.T) {
	c := Config{Scale: 0}
	if c.scaled(100) != 100 {
		t.Fatal("zero scale should mean 1.0")
	}
	c = Config{Scale: 0.01}
	if c.scaled(100) != 2 {
		t.Fatalf("tiny scale floor: %d", c.scaled(100))
	}
	if (Config{}).mcSamples() != 1000 {
		t.Fatal("default MC samples")
	}
}

func TestResultChecksCounting(t *testing.T) {
	var r Result
	r.noteCheck(true, "ok")
	r.noteCheck(false, "bad")
	r.note("informational")
	pass, fail := r.Checks()
	if pass != 1 || fail != 1 {
		t.Fatalf("pass=%d fail=%d", pass, fail)
	}
}
