package experiments

import (
	"fmt"
	"os"
	"testing"
)

// TestReplicaResume pins the experiment-level resume contract: a churn run
// with a checkpoint directory persists every replica; a rerun loads them
// all (byte-identical result, no replica re-executed); and a store written
// at different settings is ignored rather than poisoning the result.
func TestReplicaResume(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seed: 5, Scale: 0.1, CheckpointDir: dir}

	first, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no replicas persisted")
	}

	// Rerun: everything loads from the store; the result must match.
	again, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fmt.Sprintf("%+v", first.TableRows), fmt.Sprintf("%+v", again.TableRows)
	if a != b {
		t.Fatal("resumed churn experiment diverged from the original")
	}
	na, nb := fmt.Sprintf("%+v", first.Notes), fmt.Sprintf("%+v", again.Notes)
	if na != nb {
		t.Fatalf("resumed churn notes diverged:\n%s\n%s", na, nb)
	}

	// A partial store resumes: delete one replica record, rerun, and the
	// missing replica is recomputed to the same result.
	if err := os.Remove(dir + "/" + entries[0].Name()); err != nil {
		t.Fatal(err)
	}
	partial, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%+v", partial.TableRows); got != a {
		t.Fatal("partial resume diverged from the original")
	}

	// Different settings: the fingerprint rejects the store, and the run
	// still succeeds (recomputing from scratch).
	other := cfg
	other.Seed = 6
	if _, err := Churn(other); err != nil {
		t.Fatal(err)
	}

	// Corrupt record: unreadable gob reads as a miss, not an error.
	if err := os.WriteFile(dir+"/"+entries[1].Name(), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Churn(cfg); err != nil {
		t.Fatal(err)
	}
}
