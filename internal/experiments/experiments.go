// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a pure function from a Config (seed +
// scale) to a structured Result holding the series/rows that regenerate the
// paper artifact, plus notes recording the qualitative checks the paper's
// text makes about it.
//
// The cmd/stratsim CLI renders Results as ASCII charts and CSV files;
// bench_test.go at the repository root times one bench per experiment;
// EXPERIMENTS.md records paper-vs-measured values produced by this package.
package experiments

import (
	"fmt"
	"sort"

	"stratmatch/internal/telemetry"
	"stratmatch/internal/textplot"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// Seed drives all randomness; the default 0 is a valid seed.
	Seed uint64
	// Scale multiplies population sizes (1.0 = paper scale). Tests run at
	// reduced scale; values <= 0 are treated as 1.
	Scale float64
	// MCSamples is the number of Monte-Carlo graph draws for experiments
	// that validate the analytic model (Figure 9). 0 means the default
	// (1000; the paper used 10⁶ over several weeks).
	MCSamples int
	// Workers bounds the goroutines used by experiments that fan out over
	// independent replicas, sweep points, or Monte-Carlo draws. 0 means
	// GOMAXPROCS. Results are byte-identical for every worker count: each
	// task derives its own deterministic random sub-stream and writes to
	// its own slot.
	Workers int
	// Telemetry is an optional runtime-telemetry recorder (see
	// internal/telemetry). When set, Run times each experiment, and the
	// scenario-driving experiments thread it into their swarm runs. Results
	// are byte-identical with or without it: recording only reads the wall
	// clock.
	Telemetry *telemetry.Recorder
	// CheckpointDir, when set, makes the replica fan-out experiments
	// (churn, faults) persist each completed replica there and skip
	// already-completed replicas on a rerun — so an interrupted sweep
	// resumes instead of starting over. Replicas are deterministic given
	// (Seed, Scale), and stored results carry that fingerprint, so a resume
	// is byte-identical to an uninterrupted run; a store written at other
	// settings is ignored.
	CheckpointDir string
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

func (c Config) scaled(n int) int {
	v := int(float64(n) * c.scale())
	if v < 2 {
		v = 2
	}
	return v
}

func (c Config) mcSamples() int {
	if c.MCSamples <= 0 {
		return 1000
	}
	return c.MCSamples
}

// Result is a reproduced paper artifact.
type Result struct {
	// ID is the experiment identifier (e.g. "fig8", "tab1").
	ID string
	// Title describes the artifact.
	Title string
	// Chart, when Series is non-empty, is a ready-to-render ASCII chart.
	Chart textplot.Chart
	// Series holds the figure's curves (also placed in Chart.Series).
	Series []textplot.Series
	// TableHeader and TableRows hold tabular artifacts.
	TableHeader []string
	TableRows   [][]float64
	// Notes records the qualitative checks the paper states about the
	// artifact, evaluated on this run ("PASS:"/"FAIL:" prefixed) plus
	// contextual remarks.
	Notes []string
}

func (r *Result) noteCheck(ok bool, format string, args ...any) {
	prefix := "PASS: "
	if !ok {
		prefix = "FAIL: "
	}
	r.Notes = append(r.Notes, prefix+fmt.Sprintf(format, args...))
}

func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Checks reports how many PASS/FAIL notes the result carries.
func (r *Result) Checks() (pass, fail int) {
	for _, n := range r.Notes {
		switch {
		case len(n) >= 6 && n[:6] == "PASS: ":
			pass++
		case len(n) >= 6 && n[:6] == "FAIL: ":
			fail++
		}
	}
	return pass, fail
}

type runner func(Config) (*Result, error)

type registration struct {
	title string
	run   runner
}

var registry = map[string]registration{
	"fig1":  {"Convergence towards the stable state from the empty configuration", Figure1},
	"fig2":  {"Re-convergence after removing a peer from the stable state", Figure2},
	"fig3":  {"Distance to the instant stable state under churn", Figure3},
	"fig4":  {"Constant b-matching on a complete graph: disjoint clusters", Figure4},
	"fig5":  {"One extra connection makes the collaboration graph connected", Figure5},
	"tab1":  {"Clustering and stratification in a complete knowledge graph", Table1},
	"fig6":  {"Influence of sigma for N(6, sigma) b-matching: phase transition", Figure6},
	"fig7":  {"Exact vs independent-approximation matching probabilities (n=3)", Figure7},
	"fig8":  {"Mate distributions in independent 1-matching (n=5000, p=0.5%)", Figure8},
	"fig9":  {"Estimated vs simulated choice distributions (n=5000, p=1%, b0=2)", Figure9},
	"fig10": {"Upstream capacity distribution (Saroiu et al. reconstruction)", Figure10},
	"fig11": {"Expected D/U ratio vs upload bandwidth (b0=3, d=20)", Figure11},
	"thm1":  {"Theorem 1: B/2 reachability and guaranteed convergence", Theorem1},
	"mmo":   {"Closed-form MMO(b0) and its 3b0/4 limit", MMOTable},
	"fluid": {"Fluid limit: n*D(0, beta*n) converges to d*exp(-beta*d)", FluidLimit},
	"swarm": {"BitTorrent TFT swarm: emergent stratification vs the model", Swarm},
	// Ablations and extensions beyond the paper's figures (DESIGN.md §3).
	"strategies": {"Ablation: initiative strategies (best-mate vs decremental vs random)", Strategies},
	"slots":      {"Ablation: why 4 slots — connectivity vs rational slot reduction", Slots},
	"ties":       {"Extension: quantized scores — convergence and stratification under ties", Ties},
	"combo":      {"Extension: combined bandwidth + latency overlays (conclusion's proposal)", Combo},
	"gossip":     {"Extension: gossip-based rank discovery feeding the matching", Gossip},
	"churn":      {"Extension: dynamic swarm membership — flash crowd, Poisson steady state, mass-departure healing", Churn},
	"faults":     {"Robustness: fault injection — tracker outage, partition reconvergence, crash-stop sweeps", Faults},
}

// IDs lists all experiment identifiers in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the registered title for an experiment id.
func Title(id string) (string, bool) {
	reg, ok := registry[id]
	return reg.title, ok
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (*Result, error) {
	reg, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	sp := cfg.Telemetry.StartPhase(telemetry.PhaseExperiment)
	res, err := reg.run(cfg)
	cfg.Telemetry.EndPhase(telemetry.PhaseExperiment, sp)
	cfg.Telemetry.Inc(telemetry.CtrExperiments)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	if res.Title == "" {
		res.Title = reg.title
	}
	if len(res.Series) > 0 {
		res.Chart.Series = res.Series
		if res.Chart.Title == "" {
			res.Chart.Title = res.Title
		}
	}
	return res, nil
}
