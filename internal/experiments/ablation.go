package experiments

import (
	"math"
	"sort"

	"stratmatch/internal/bandwidth"
	"stratmatch/internal/cluster"
	"stratmatch/internal/core"
	"stratmatch/internal/dynamics"
	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
	"stratmatch/internal/textplot"
)

// Strategies is an ablation over the paper's three initiative strategies
// (Section 3): best-mate, decremental and random scanning differ in the
// knowledge they assume, and correspondingly in convergence speed. The
// paper's figures use best-mate; this experiment shows the ordering and that
// all three converge (Theorem 1 does not depend on the scan order).
func Strategies(cfg Config) (*Result, error) {
	n := cfg.scaled(500)
	const d = 10.0
	res := &Result{
		Chart:       textplot.Chart{XLabel: "initiatives per peer", YLabel: "disorder"},
		TableHeader: []string{"strategy", "units_to_converge"},
	}
	// The three strategies share one root seed but draw from their own
	// sub-streams, so they can run in parallel.
	strategies := []struct {
		name  string
		strat func(r *rng.RNG) core.Strategy
	}{
		{"best mate", func(*rng.RNG) core.Strategy { return core.BestMateStrategy{} }},
		{"decremental", func(*rng.RNG) core.Strategy { return core.NewDecrementalStrategy(n) }},
		{"random", func(r *rng.RNG) core.Strategy { return core.NewRandomStrategy(r) }},
	}
	times := make([]float64, len(strategies))
	series := make([]textplot.Series, len(strategies))
	err := cfg.forEach(len(strategies), func(i int) error {
		r := rng.New(cfg.Seed)
		g := graph.ErdosRenyiMeanDegree(n, d, r.Split())
		sim, err := dynamics.New(g, uniformInts(n, 1), strategies[i].strat(r.Split()), r.Split())
		if err != nil {
			return err
		}
		traj := sim.Run(150, 1)
		series[i] = trajectorySeries(strategies[i].name, traj)
		times[i] = math.Inf(1)
		for _, pt := range traj {
			if pt.Disorder == 0 {
				times[i] = pt.Time
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, series...)
	best, decr, rand := times[0], times[1], times[2]
	res.TableRows = [][]float64{{1, best}, {2, decr}, {3, rand}}
	res.noteCheck(!math.IsInf(best, 1) && !math.IsInf(decr, 1),
		"best-mate (%.0f units) and decremental (%.0f units) converge", best, decr)
	res.noteCheck(!math.IsInf(rand, 1),
		"random probing converges too (Theorem 1 is scan-order independent): %.0f units", rand)
	// Best-mate and decremental are statistically indistinguishable (both
	// resolve a blocking pair whenever one exists); blind random probing
	// pays a clear knowledge penalty.
	res.noteCheck(math.Max(best, decr)*2 < rand,
		"informed scans are far faster than blind probing: best %.0f, decremental %.0f, random %.0f",
		best, decr, rand)
	res.note("strategy rows: 1=best mate, 2=decremental, 3=random")
	return res, nil
}

// Slots is the ablation behind the paper's two arguments for BitTorrent's
// default of 4 unchoke slots (3 Tit-for-Tat + 1 optimistic):
//
//   - connectivity (Section 4.1): with b0 < 3 the constant-b0 collaboration
//     graph cannot be connected — clusters of b0+1 seal content;
//   - the rational temptation (Section 6): "suppressing one connection can
//     improve the probability of collaborating with higher peers" — a peer
//     that unilaterally uses fewer slots concentrates its upload, climbs the
//     per-slot ranking and matches with better partners, pulling rational
//     peers towards the degenerate 1-slot Nash equilibrium.
//
// The deviation is measured by Monte Carlo: one mid-ranked deviator with
// b ∈ {1, 2, 3} slots in a population of 3-slot peers ranked by per-slot
// upload, averaged over Erdős–Rényi acceptance graphs.
func Slots(cfg Config) (*Result, error) {
	n := cfg.scaled(1200)
	res := &Result{
		TableHeader: []string{
			"b_deviator", "cluster_size_b0", "mmo_b0", "partner_per_slot_kbps", "deviator_efficiency",
		},
	}
	draws := cfg.mcSamples() / 4
	if draws < 50 {
		draws = 50
	}
	uploads := bandwidth.RankBandwidths(bandwidth.Saroiu(), n)
	var partnerQuality [4]float64
	// The three deviation budgets are independent Monte-Carlo studies with
	// per-budget sub-streams; fan them out.
	type devRow struct {
		rep          cluster.Report
		quality, eff float64
	}
	rows := make([]devRow, 3)
	if err := cfg.forEach(3, func(i int) error {
		bDev := i + 1
		rows[i].rep = cluster.AnalyzeConstant((n/(bDev+1))*(bDev+1), bDev)
		rows[i].quality, rows[i].eff = deviationStats(uploads, 3, bDev, 20, draws, cfg.Seed)
		return nil
	}); err != nil {
		return nil, err
	}
	for i, row := range rows {
		bDev := i + 1
		partnerQuality[bDev] = row.quality
		res.TableRows = append(res.TableRows, []float64{
			float64(bDev), row.rep.MeanClusterSize, row.rep.MMO, row.quality, row.eff,
		})
	}
	res.noteCheck(res.TableRows[0][1] == 2 && res.TableRows[1][1] == 3,
		"b0=1 pairs and b0=2 triangles cannot span a swarm (cluster sizes %v, %v)",
		res.TableRows[0][1], res.TableRows[1][1])
	res.noteCheck(res.TableRows[2][1] == 4,
		"b0=3 is the smallest budget whose regular collaboration graph could be connected")
	res.noteCheck(partnerQuality[1] > partnerQuality[2] && partnerQuality[2] > partnerQuality[3],
		"dropping slots buys better partners (per-slot kbps received: b=1: %.0f, b=2: %.0f, b=3: %.0f) — the rational pull towards 1 slot",
		partnerQuality[1], partnerQuality[2], partnerQuality[3])
	res.note("4 default slots = 3 TFT + 1 optimistic: connectivity for obedient peers, " +
		"distance from the rational 1-slot equilibrium")
	return res, nil
}

// deviationStats lets one mid-ranked peer deviate to bDev slots while
// everybody else keeps bDefault, re-ranks the population by per-slot upload
// (the Tit-for-Tat utility), and measures — over `draws` Erdős–Rényi
// acceptance graphs — the mean per-slot bandwidth the deviator receives per
// matched slot and its mean efficiency (download / upload actually used).
func deviationStats(uploads []float64, bDefault, bDev int, d float64, draws int, seed uint64) (partnerPerSlot, efficiency float64) {
	n := len(uploads)
	deviator := n / 2
	perSlot := make([]float64, n)
	budgets := make([]int, n)
	for i, u := range uploads {
		budgets[i] = bDefault
		perSlot[i] = u / float64(bDefault)
	}
	budgets[deviator] = bDev
	perSlot[deviator] = uploads[deviator] / float64(bDev)
	// Re-rank by per-slot upload (descending); rankBudget/rankValue are in
	// rank space, devRank is the deviator's new rank.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sortByDesc(order, perSlot)
	rankBudget := make([]int, n)
	rankValue := make([]float64, n)
	devRank := -1
	for rank, peerID := range order {
		rankBudget[rank] = budgets[peerID]
		rankValue[rank] = perSlot[peerID]
		if peerID == deviator {
			devRank = rank
		}
	}
	r := rng.New(seed + uint64(bDev)*0x9e3779b97f4a7c15)
	var sumQuality, sumEff float64
	var matchedSlots int
	// Draw-loop arenas: graph buffers and the Config slab are recycled
	// across the Monte-Carlo draws (identical samples, zero steady-state
	// allocations).
	var garena graph.Arena
	var carena core.Arena
	for s := 0; s < draws; s++ {
		g := garena.ErdosRenyiMeanDegree(n, d, r)
		cfg := carena.Stable(g, rankBudget)
		mates := cfg.Mates(devRank)
		var download float64
		for _, m := range mates {
			download += rankValue[m]
			sumQuality += rankValue[m]
		}
		matchedSlots += len(mates)
		if len(mates) > 0 {
			upload := rankValue[devRank] * float64(len(mates))
			sumEff += download / upload
		}
	}
	if matchedSlots > 0 {
		partnerPerSlot = sumQuality / float64(matchedSlots)
	}
	efficiency = sumEff / float64(draws)
	return partnerPerSlot, efficiency
}

func sortByDesc(order []int, key []float64) {
	sort.SliceStable(order, func(a, b int) bool {
		return key[order[a]] > key[order[b]]
	})
}

func uniformInts(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}
