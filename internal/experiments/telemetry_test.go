package experiments

import (
	"fmt"
	"testing"

	"stratmatch/internal/par"
	"stratmatch/internal/telemetry"
)

// TestTelemetryDoesNotPerturbResults pins the recorder's determinism
// contract at the experiment level: a faults run with a live recorder
// threaded through Run, the scenario engine, and the par worker pool must
// produce results byte-identical to a bare run. Telemetry reads only the
// wall clock — never the RNG streams or sim state. CI runs this under
// -race, which also exercises concurrent recording from the worker pool.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-scale")
	}
	bareCfg := Config{Seed: 11, Scale: 0.08, MCSamples: 60, Workers: 4}
	bare, err := Run("faults", bareCfg)
	if err != nil {
		t.Fatal(err)
	}

	tel := telemetry.New()
	par.SetTelemetry(tel)
	defer par.SetTelemetry(nil)
	recCfg := bareCfg
	recCfg.Telemetry = tel
	recorded, err := Run("faults", recCfg)
	if err != nil {
		t.Fatal(err)
	}

	a, b := fmt.Sprintf("%#v", bare), fmt.Sprintf("%#v", recorded)
	if a != b {
		t.Errorf("telemetry perturbed the experiment:\nbare:     %.400s\nrecorded: %.400s", a, b)
	}

	snap := tel.Snapshot()
	if c := tel.Counter(telemetry.CtrExperiments); c != 1 {
		t.Fatalf("CtrExperiments = %d, want 1", c)
	}
	if tel.Counter(telemetry.CtrParTasks) == 0 {
		t.Fatal("par fan-out recorded no tasks")
	}
	if tel.Counter(telemetry.CtrRounds) == 0 {
		t.Fatal("scenario runs recorded no rounds")
	}
	if len(snap.Phases) == 0 {
		t.Fatal("snapshot carries no phase histograms")
	}
}
