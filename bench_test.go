package stratmatch

// One benchmark per paper table/figure: each regenerates the corresponding
// artifact through internal/experiments and fails if any of the paper's
// qualitative checks fail, so `go test -bench=.` is simultaneously a timing
// harness and a reproduction gate. Benchmarks run at a reduced scale
// (BenchScale) to keep -bench=. minutes-scale; cmd/stratsim runs the same
// experiments at paper scale.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"stratmatch/internal/analytic"
	"stratmatch/internal/experiments"
	"stratmatch/internal/trackerd"
)

// BenchScale trades fidelity for speed in benchmarks; cmd/stratsim defaults
// to 1.0 (paper scale).
const BenchScale = 0.2

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	// 500 Monte-Carlo draws: the parallel sampler made the larger draw
	// count affordable, and 200 draws left fig9's TV-distance check too
	// noisy to pass at bench scale.
	cfg := experiments.Config{Seed: 1, Scale: BenchScale, MCSamples: 500}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, fail := res.Checks(); fail > 0 {
			b.Fatalf("%s: %d qualitative checks failed: %v", id, fail, res.Notes)
		}
	}
}

// BenchmarkFig1Convergence regenerates Figure 1 (convergence from the empty
// configuration for three (n, d) settings).
func BenchmarkFig1Convergence(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2Removal regenerates Figure 2 (re-convergence after removing
// peers 1/100/300/600 from the stable state).
func BenchmarkFig2Removal(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3Churn regenerates Figure 3 (disorder plateaus under five
// churn rates).
func BenchmarkFig3Churn(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4Clusters regenerates Figure 4 (disjoint b0+1 clusters under
// constant b-matching on the complete graph).
func BenchmarkFig4Clusters(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5ExtraConnection regenerates Figure 5 (one extra slot makes
// the collaboration graph connected).
func BenchmarkFig5ExtraConnection(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkTable1 regenerates Table 1 (cluster sizes and MMO for constant
// and normal-distributed budgets, b = 2..7).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkFig6Sigma regenerates Figure 6 (phase transition in σ for
// N(6, σ²)-matching).
func BenchmarkFig6Sigma(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Exact regenerates Figure 7 (exact vs approximate matching
// probabilities for n = 3; error p³(1−p)).
func BenchmarkFig7Exact(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8OneMatching regenerates Figure 8 (mate distributions of
// peers 200/2500/4800, n = 5000, p = 0.5%).
func BenchmarkFig8OneMatching(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9TwoMatching regenerates Figure 9 (estimated vs Monte-Carlo
// simulated choice distributions, b0 = 2).
func BenchmarkFig9TwoMatching(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10CDF regenerates Figure 10 (upstream capacity CDF).
func BenchmarkFig10CDF(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11ShareRatio regenerates Figure 11 (expected D/U ratio versus
// upload bandwidth, b0 = 3, d = 20).
func BenchmarkFig11ShareRatio(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkTheorem1 demonstrates Theorem 1's B/2 bound and guaranteed
// convergence on random schedules.
func BenchmarkTheorem1(b *testing.B) { benchExperiment(b, "thm1") }

// BenchmarkMMOClosedForm tabulates MMO(b0) against its 3·b0/4 limit.
func BenchmarkMMOClosedForm(b *testing.B) { benchExperiment(b, "mmo") }

// BenchmarkFluidLimit checks n·D(0, βn) → d·e^{−βd} (Conjecture 1).
func BenchmarkFluidLimit(b *testing.B) { benchExperiment(b, "fluid") }

// BenchmarkSwarm runs the BitTorrent TFT swarm and verifies emergent
// stratification (the empirical side of Section 6).
func BenchmarkSwarm(b *testing.B) { benchExperiment(b, "swarm") }

// BenchmarkAblationStrategies compares the three initiative strategies'
// convergence (DESIGN.md ablation).
func BenchmarkAblationStrategies(b *testing.B) { benchExperiment(b, "strategies") }

// BenchmarkAblationSlots sweeps the slot budget b0 = 1..6: connectivity of
// the collaboration graph vs the rational pull towards fewer slots.
func BenchmarkAblationSlots(b *testing.B) { benchExperiment(b, "slots") }

// BenchmarkTies runs the quantized-score (tie) extension: convergence and
// stratification survive ties; uniqueness does not.
func BenchmarkTies(b *testing.B) { benchExperiment(b, "ties") }

// BenchmarkCombo overlays bandwidth (global-ranking) and latency (metric)
// matchings — the conclusion's combined-utility proposal.
func BenchmarkCombo(b *testing.B) { benchExperiment(b, "combo") }

// BenchmarkGossip runs gossip-based rank discovery and measures how fast
// the estimated-rank matching approaches the true stable configuration.
func BenchmarkGossip(b *testing.B) { benchExperiment(b, "gossip") }

// BenchmarkChurn runs the dynamic-membership scenario catalog (flash
// crowd, Poisson steady state, mass departure + healing) through the
// tracker/churn subsystem.
func BenchmarkChurn(b *testing.B) { benchExperiment(b, "churn") }

// BenchmarkFaults runs the fault-injection catalog (tracker outage with
// lossy announces, partition bisect + heal, crash-stop wave with the
// failure-detection sweep) — the robustness layer's cost and reconvergence
// gate.
func BenchmarkFaults(b *testing.B) { benchExperiment(b, "faults") }

// benchSwarmStep times one engine round of a content-unlimited steady-state
// swarm with the telemetry recorder detached or attached. The Off/On pair
// in BENCH_results.json is the telemetry overhead differential: the enabled
// gap must stay small (<5%), and the disabled path is additionally pinned
// allocation-free by internal/btsim's alloc tests.
func benchSwarmStep(b *testing.B, tel *Telemetry) {
	sw, err := NewSwarm(SwarmOptions{
		Leechers: 300, Pieces: 1, ContentUnlimited: true,
		NeighborCount: 20, Seed: 33,
	})
	if err != nil {
		b.Fatal(err)
	}
	sw.SetTelemetry(tel)
	sw.Run(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Run(1)
	}
}

func BenchmarkSwarmStepTelemetryOff(b *testing.B) { benchSwarmStep(b, nil) }
func BenchmarkSwarmStepTelemetryOn(b *testing.B)  { benchSwarmStep(b, NewTelemetry()) }

// BenchmarkSwarmStepSharded times one engine round of a 50k-peer
// content-unlimited swarm across step-worker counts. Every sub-benchmark
// runs the identical trajectory (same seed, same rounds — the worker count
// is byte-invisible), so the ns/op ratios in BENCH_results.json are the
// sharded stepper's parallel speedup, clean of workload drift.
func BenchmarkSwarmStepSharded(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sw, err := NewSwarm(SwarmOptions{
				Leechers: 50_000, Pieces: 1, ContentUnlimited: true,
				NeighborCount: 20, MaxNeighbors: 30, Seed: 44,
			})
			if err != nil {
				b.Fatal(err)
			}
			sw.SetStepWorkers(workers)
			defer sw.Close()
			sw.Run(5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.Run(1)
			}
		})
	}
}

// BenchmarkMillionPeerRound is the flash-crowd headline number: one round
// of a million-peer content-unlimited swarm (the population of the
// flashcrowd1m scenario after its burst) under 8 step workers.
func BenchmarkMillionPeerRound(b *testing.B) {
	sw, err := NewSwarm(SwarmOptions{
		Leechers: 999_000, Seeds: 1000, Pieces: 1, ContentUnlimited: true,
		NeighborCount: 8, MaxNeighbors: 12, Seed: 45,
	})
	if err != nil {
		b.Fatal(err)
	}
	sw.SetStepWorkers(8)
	defer sw.Close()
	sw.Run(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Run(1)
	}
}

// BenchmarkBMatching times Algorithm 3's O(n²·b0) recurrence serial vs the
// pooled tile handoff (results are byte-identical; only the schedule
// differs), at Figure 11's shape: b0 = 3 slots over a 4000-peer network.
func BenchmarkBMatching(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := analytic.BMatching(analytic.BMatchingOptions{
					N: 4000, P: 0.005, B0: 3, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.MatchProbAny[0] <= 0 {
					b.Fatal("degenerate matching result")
				}
			}
		})
	}
}

// benchCheckpoint runs the poisson catalog scenario with (or without) the
// durable-checkpoint path: a checksummed snapshot of the complete run
// state encoded, atomically written and rotated every 10 rounds. The
// on/off contrast isolates what durability costs a run.
func benchCheckpoint(b *testing.B, every int) {
	sc, err := NewScenario("poisson", 40, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	if every > 0 {
		sc.CheckpointEvery = every
		sc.CheckpointDir = b.TempDir()
		sc.CheckpointRetain = 2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpoint(b *testing.B)    { benchCheckpoint(b, 10) }
func BenchmarkCheckpointOff(b *testing.B) { benchCheckpoint(b, 0) }

// BenchmarkTrackerdAnnounce times one served announce against the tracker
// daemon's concurrent registry (no HTTP): the registry lock, the roster
// lookup and the shared seed-deterministic handout policy.
func BenchmarkTrackerdAnnounce(b *testing.B) {
	g := trackerd.NewRegistry(trackerd.RegistryConfig{Seed: 7})
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("p%d", i)
		g.Announce("bench", keys[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Announce("bench", keys[i%len(keys)])
	}
}

// BenchmarkTrackerdSustainedLoad measures the daemon end to end: the load
// generator replays announce traffic (with churn) over real HTTP against a
// live server, and the achieved throughput and latency quantiles land in
// BENCH_results.json as custom units — benchjson --compare checks them
// direction-aware (announces/sec falling or p99 rising past 20% is a
// regression).
func BenchmarkTrackerdSustainedLoad(b *testing.B) {
	srv := trackerd.NewServer(trackerd.Config{Seed: 9, CheckpointDir: b.TempDir()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var last trackerd.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg := trackerd.LoadGen{
			BaseURL:     ts.URL,
			Swarm:       fmt.Sprintf("bench-%d", i), // fresh swarm per iteration: steady registration load
			Peers:       128,
			Concurrency: 8,
			Total:       2000,
			Churn:       16,
		}
		rep, err := lg.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors > 0 {
			b.Fatalf("%d announce errors under load", rep.Errors)
		}
		last = rep
	}
	b.StopTimer()
	b.ReportMetric(last.PerSec, "announces/sec")
	b.ReportMetric(float64(last.P50)/1e6, "p50-ms")
	b.ReportMetric(float64(last.P99)/1e6, "p99-ms")
}

// BenchmarkStableMatching times the core solver itself on an Erdős–Rényi
// network of 5000 peers (not tied to a figure; the primitive every
// experiment leans on).
func BenchmarkStableMatching(b *testing.B) {
	nw, err := NewRandomNetwork(5000, 20, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := nw.Stable()
		if m.Degree(0) == 0 {
			b.Fatal("best peer unmatched")
		}
	}
}
