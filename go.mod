module stratmatch

go 1.24
