// Package stratmatch models decentralized peer-to-peer collaboration as
// stable b-matching under a global ranking, reproducing "Stratification in
// P2P Networks — Application to BitTorrent" (Gai, Mathieu, Reynier,
// de Montgolfier; INRIA RR-6081 / ICDCS 2007).
//
// Peers are identified by rank 0 .. n−1 with rank 0 the best (highest
// intrinsic score: bandwidth, storage, ELO, ...). Each peer p owns b(p)
// collaboration slots and always prefers better-ranked partners. An
// acceptance Network says who may collaborate with whom; the unique stable
// matching — no two peers would both rather drop a current mate for each
// other — is computed by Stable, and decentralized convergence towards it is
// simulated by Simulate.
//
// The accompanying analytics (MateDistribution, ChoiceDistributions,
// ShareRatios) evaluate the paper's independent-matching model on
// Erdős–Rényi acceptance graphs, and NewSwarm runs a full BitTorrent
// Tit-for-Tat swarm simulator in which the same stratification emerges from
// protocol mechanics.
package stratmatch

import (
	"fmt"

	"stratmatch/internal/cluster"
	"stratmatch/internal/core"
	"stratmatch/internal/graph"
	"stratmatch/internal/rng"
)

// Network is an acceptance graph plus per-peer slot budgets: the input of
// the stable matching problem.
type Network struct {
	g       graph.Graph
	budgets []int
}

// NewCompleteNetwork returns the complete acceptance graph on n peers
// (everybody may collaborate with everybody), each with b0 slots.
func NewCompleteNetwork(n, b0 int) (*Network, error) {
	if n < 0 || b0 < 0 {
		return nil, fmt.Errorf("stratmatch: invalid network n=%d b0=%d", n, b0)
	}
	return &Network{g: graph.NewComplete(n), budgets: uniform(n, b0)}, nil
}

// NewRandomNetwork returns an Erdős–Rényi acceptance graph G(n, d) — every
// pair acceptable independently with probability d/(n−1), so each peer
// expects d acceptable partners — with b0 slots per peer. The same seed
// always produces the same network.
func NewRandomNetwork(n int, meanDegree float64, b0 int, seed uint64) (*Network, error) {
	if n < 0 || b0 < 0 || meanDegree < 0 {
		return nil, fmt.Errorf("stratmatch: invalid network n=%d d=%v b0=%d", n, meanDegree, b0)
	}
	g := graph.ErdosRenyiMeanDegree(n, meanDegree, rng.New(seed))
	return &Network{g: g, budgets: uniform(n, b0)}, nil
}

// SetBudget overrides one peer's slot budget.
func (nw *Network) SetBudget(peer, b int) error {
	if peer < 0 || peer >= len(nw.budgets) || b < 0 {
		return fmt.Errorf("stratmatch: SetBudget(%d, %d) out of range", peer, b)
	}
	nw.budgets[peer] = b
	return nil
}

// SetBudgets replaces all slot budgets (copied).
func (nw *Network) SetBudgets(budgets []int) error {
	if len(budgets) != len(nw.budgets) {
		return fmt.Errorf("stratmatch: %d budgets for %d peers", len(budgets), len(nw.budgets))
	}
	for i, b := range budgets {
		if b < 0 {
			return fmt.Errorf("stratmatch: negative budget for peer %d", i)
		}
	}
	copy(nw.budgets, budgets)
	return nil
}

// N is the number of peers.
func (nw *Network) N() int { return len(nw.budgets) }

// Acceptable reports whether peers i and j may collaborate.
func (nw *Network) Acceptable(i, j int) bool { return nw.g.Acceptable(i, j) }

// Budget returns peer p's slot budget.
func (nw *Network) Budget(p int) int { return nw.budgets[p] }

// Stable computes the network's unique stable matching (the paper's
// Algorithm 1).
func (nw *Network) Stable() *Matching {
	return &Matching{cfg: core.Stable(nw.g, nw.budgets), nw: nw}
}

// Matching is a b-matching over a Network's peers.
type Matching struct {
	cfg *core.Config
	nw  *Network
}

// Mates returns p's current collaborators, best first. The slice is a copy.
func (m *Matching) Mates(p int) []int {
	return append([]int(nil), m.cfg.Mates(p)...)
}

// Degree returns how many collaborators p currently has.
func (m *Matching) Degree(p int) int { return m.cfg.Degree(p) }

// Matched reports whether i and j collaborate.
func (m *Matching) Matched(i, j int) bool { return m.cfg.Matched(i, j) }

// IsStable reports whether the matching has no blocking pair on its network.
func (m *Matching) IsStable() bool { return core.IsStable(m.cfg, m.nw.g) }

// DistanceTo returns the paper's normalized configuration distance to
// another matching over the same network (0 = identical, 1 = as far as a
// perfect matching is from the empty one).
func (m *Matching) DistanceTo(o *Matching) float64 {
	return core.Distance(m.cfg, o.cfg)
}

// ClusterReport summarizes the collaboration graph's structure: cluster
// sizes and the Mean Max Offset stratification statistic.
type ClusterReport = cluster.Report

// Clusters analyzes the matching's collaboration graph.
func (m *Matching) Clusters() ClusterReport { return cluster.Analyze(m.cfg) }

func uniform(n, b int) []int {
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = b
	}
	return budgets
}
