package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"stratmatch/internal/checkpoint"
)

// TestHelperBtswarmRun is not a test: it is the child process body for the
// crash-recovery tests. Re-executing the test binary with this name (and
// the guard env var) runs the real CLI entry point, so a SIGKILL hits an
// actual btswarm process mid-run — no separate `go build` needed.
func TestHelperBtswarmRun(t *testing.T) {
	if os.Getenv("GO_BTSWARM_HELPER") != "1" {
		t.Skip("helper process body; only runs re-executed")
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	if err := run(args); err != nil {
		fmt.Fprintln(os.Stderr, "btswarm:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

var checkpointLine = regexp.MustCompile(`^\{"type":"checkpoint","round":(\d+)\}$`)

// lastCheckpointRound scans (possibly truncated) jsonl output for the last
// COMPLETE checkpoint marker line and returns its round, or -1. A line cut
// mid-write by the kill does not match the anchored pattern.
func lastCheckpointRound(out string) int {
	last := -1
	for _, line := range strings.Split(out, "\n") {
		if m := checkpointLine.FindStringSubmatch(line); m != nil {
			last, _ = strconv.Atoi(m[1])
		}
	}
	return last
}

// TestCheckpointCLIKillResume is the crash-recovery harness: a real
// btswarm process is SIGKILLed mid-run — no cleanup, no signal handler —
// and the run is resumed from the last checkpoint its truncated output
// stream advertises. The resumed stream appended to the golden prefix
// must reproduce the uninterrupted run byte for byte.
func TestCheckpointCLIKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a child process")
	}
	dir := t.TempDir()
	ckDir := filepath.Join(dir, "ck")
	scenarioArgs := []string{
		"-scenario", "poisson", "-scenario-scale", "6", "-sample-every", "1",
		"-emit", "jsonl", "-checkpoint-every", "50", "-checkpoint-retain", "-1",
	}

	// Golden: the same workload, uninterrupted, in-process.
	golden := captureStdout(t, func() error {
		return run(append(append([]string(nil), scenarioArgs...),
			"-checkpoint-dir", filepath.Join(dir, "golden-ck")))
	})

	// Victim: a real child process, killed with SIGKILL once it has a few
	// checkpoints on disk (polling the output keeps the test timing-robust).
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "killed.jsonl")
	outFile, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-test.run=TestHelperBtswarmRun", "--"}, scenarioArgs...)
	args = append(args, "-checkpoint-dir", ckDir)
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "GO_BTSWARM_HELPER=1")
	cmd.Stdout = outFile
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		data, _ := os.ReadFile(outPath)
		if strings.Count(string(data), `"type":"checkpoint"`) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("child produced no checkpoints within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait() // expected: killed
	outFile.Close()

	killedOut, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	killed := string(killedOut)
	last := lastCheckpointRound(killed)
	if last < 0 {
		t.Fatalf("no complete checkpoint line in killed output:\n%s", killed)
	}
	// The marker for round R promises the checkpoint resuming from R+1 is
	// on disk — even though the process died without any cleanup.
	ckFile := filepath.Join(ckDir, checkpoint.FileName(last+1))
	if _, err := os.Stat(ckFile); err != nil {
		t.Fatalf("advertised checkpoint missing after SIGKILL: %v", err)
	}

	// The resume needs no -scenario/-sample-every: the checkpoint embeds the
	// effective spec. Checkpointing flags carry over so the resumed stream's
	// own checkpoint markers match the golden run's.
	resumed := captureStdout(t, func() error {
		return run([]string{"-resume", ckFile, "-emit", "jsonl",
			"-checkpoint-every", "50", "-checkpoint-dir", ckDir, "-checkpoint-retain", "-1"})
	})

	// Cut the golden stream right after the matching marker line; the
	// resumed stream must be exactly the rest.
	marker := fmt.Sprintf("{\"type\":\"checkpoint\",\"round\":%d}\n", last)
	idx := strings.Index(golden, marker)
	if idx < 0 {
		t.Fatalf("golden run has no checkpoint marker for round %d", last)
	}
	want := golden[idx+len(marker):]
	if resumed != want {
		t.Fatalf("resumed stream diverged from the golden tail after round %d:\n--- want ---\n%s--- got ---\n%s",
			last, want, resumed)
	}
	// And the killed prefix must itself be a prefix of the golden stream
	// (modulo the final possibly-truncated line).
	prefix := killed
	if i := strings.LastIndexByte(prefix, '\n'); i >= 0 {
		prefix = prefix[:i+1]
	} else {
		prefix = ""
	}
	if !strings.HasPrefix(golden, prefix) {
		t.Fatal("killed run's output is not a prefix of the golden stream")
	}
}

// TestCheckpointCLIFlagValidation pins the flag contract.
func TestCheckpointCLIFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-checkpoint-every", "10"},                          // missing dir
		{"-checkpoint-every", "-1", "-checkpoint-dir", "x"},  // negative period
		{"-checkpoint-every", "10", "-checkpoint-dir", "x"},  // fixed-swarm mode
		{"-resume", "x", "-scenario", "poisson"},             // resume is exclusive
		{"-resume", "x", "-spec", "y.json"},                  // resume is exclusive
		{"-resume", filepath.Join(t.TempDir(), "none.ckpt")}, // missing checkpoint
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
