package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"stratmatch/internal/btsim"
)

// TestServeFlagValidation pins -serve's mutual exclusion with every offline
// run mode, and the loadgen subcommand's argument checking.
func TestServeFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-serve", ":0", "-scenario", "poisson"},
		{"-serve", ":0", "-spec", "x.json"},
		{"-serve", ":0", "-resume", "ck"},
		{"-serve", ":0", "-dump-spec", "poisson"},
		{"-serve", ":0", "-emit", "jsonl"},
		{"loadgen", "stray-arg"},
		{"loadgen", "-rate", "notanumber"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}

var daemonAddrLine = regexp.MustCompile(`tracker daemon on http://([^ ]+) `)

// startDaemon spawns a real btswarm daemon child on an ephemeral port and
// returns its base URL plus a getter for the accumulated stderr.
func startDaemon(t *testing.T, extraArgs ...string) (*exec.Cmd, string, func() string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-test.run=TestHelperBtswarmRun", "--", "-serve", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "GO_BTSWARM_HELPER=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill() })

	// The bound-address line is the readiness signal; everything after it
	// keeps accumulating for the drain-hint assertions.
	var (
		mu     sync.Mutex
		tail   strings.Builder
		addrCh = make(chan string, 1)
	)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := daemonAddrLine.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			mu.Lock()
			tail.WriteString(line + "\n")
			mu.Unlock()
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			t.Fatal("daemon exited before printing its address")
		}
		return cmd, "http://" + addr, func() string {
			mu.Lock()
			defer mu.Unlock()
			return tail.String()
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not print its address within 30s")
	}
	panic("unreachable")
}

// TestServeDaemonEndToEnd is the CLI smoke: a real daemon process serves a
// submitted run byte-identically to the offline CLI, answers loadgen
// traffic and /metrics, and a SIGTERM under load drains to a resumable
// checkpoint, prints the resume hint, and exits 0 — with the offline
// -resume completing the interrupted run.
func TestServeDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon child process")
	}
	dir := t.TempDir()
	ckRoot := filepath.Join(dir, "ck")
	cmd, base, stderrTail := startDaemon(t, "-checkpoint-dir", ckRoot, "-serve-runs", "2")

	// 1. A submitted catalog run streams exactly the offline CLI's bytes.
	spec, err := btsim.NamedSpec("poisson", 46, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, specJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	offline := captureStdout(t, func() error {
		return run([]string{"-spec", specPath, "-emit", "jsonl"})
	})
	resp, err := http.Post(base+"/runs", "application/json", bytes.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /runs: %d %s", resp.StatusCode, streamed)
	}
	if string(streamed) != offline {
		t.Fatalf("daemon stream differs from offline CLI: %d vs %d bytes", len(streamed), len(offline))
	}

	// 2. The loadgen subcommand drives it and reports throughput.
	lgOut := captureStdout(t, func() error {
		return run([]string{"loadgen", "-addr", base, "-total", "200", "-concurrency", "4", "-peers", "32", "-churn", "9"})
	})
	if !strings.Contains(lgOut, "announces/sec") {
		t.Fatalf("loadgen output: %q", lgOut)
	}

	// 3. The telemetry surface counts it all.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"trackerd_announces_total", "trackerd_runs_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics lacks %s:\n%.400s", want, metrics)
		}
	}

	// 4. SIGTERM under load: a long run is mid-stream when the signal
	// lands; the daemon suspends it, prints the resume hint, and exits 0.
	long := btsim.ScenarioSpec{
		Name:        "longrun",
		Swarm:       btsim.Options{Leechers: 30, Seeds: 2, Pieces: 64, Seed: 47},
		Rounds:      200000,
		SampleEvery: 1,
	}
	longJSON, err := json.Marshal(long)
	if err != nil {
		t.Fatal(err)
	}
	lresp, err := http.Post(base+"/runs", "application/json", bytes.NewReader(longJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	sc := bufio.NewScanner(lresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	samples, lastLine := 0, ""
	for sc.Scan() {
		lastLine = sc.Text()
		if strings.Contains(lastLine, `"type":"sample"`) {
			samples++
			if samples == 3 {
				if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if samples < 3 {
		t.Fatalf("stream ended after %d samples without reaching the signal point", samples)
	}
	var trailer struct {
		Type   string `json:"type"`
		Resume string `json:"resume"`
	}
	if err := json.Unmarshal([]byte(lastLine), &trailer); err != nil || trailer.Type != "suspended" {
		t.Fatalf("stream did not end with suspended trailer: %q", lastLine)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon did not exit cleanly after SIGTERM: %v\nstderr:\n%s", err, stderrTail())
	}
	hint := fmt.Sprintf("resume with -resume %s", trailer.Resume)
	if !strings.Contains(stderrTail(), hint) {
		t.Fatalf("daemon stderr lacks resume hint %q:\n%s", hint, stderrTail())
	}

	// 5. The advertised checkpoint resumes offline and finishes the run.
	resumed := captureStdout(t, func() error {
		return run([]string{"-resume", trailer.Resume, "-emit", "jsonl"})
	})
	if !strings.Contains(resumed, `"type":"done"`) {
		t.Fatalf("resumed run did not complete; tail: %.300s", resumed[max(0, len(resumed)-300):])
	}
}
