package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stratmatch/internal/btsim"
	"stratmatch/internal/telemetry"
	"stratmatch/internal/trackerd"
)

// serveConfig carries the -serve flags into the daemon.
type serveConfig struct {
	addr     string
	maxRuns  int
	seed     uint64
	policy   btsim.HandoutPolicy
	ckDir    string
	ckEvery  int
	tel      *telemetry.Recorder
	shutdown <-chan struct{} // tests close this instead of sending a signal
}

// runServe runs the tracker daemon until SIGINT/SIGTERM, then drains: new
// run submissions are rejected, every in-flight run is interrupted at its
// next round boundary and snapshots a resume-from-here checkpoint, and a
// resume hint is printed per suspended run before a clean exit (status 0).
func runServe(cfg serveConfig) error {
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("-serve %s: %w", cfg.addr, err)
	}
	srv := trackerd.NewServer(trackerd.Config{
		Seed:            cfg.seed,
		Policy:          cfg.policy,
		MaxRuns:         cfg.maxRuns,
		CheckpointDir:   cfg.ckDir,
		CheckpointEvery: cfg.ckEvery,
		Telemetry:       cfg.tel,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	// The bound address line is the daemon's readiness signal: with -serve
	// :0 it is the only way callers (CI, tests) learn the port.
	fmt.Fprintf(os.Stderr, "btswarm: tracker daemon on http://%s (/announce, /scrape, /runs, /metrics)\n", ln.Addr())

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "btswarm: %v: draining runs\n", sig)
	case <-cfg.shutdown:
		fmt.Fprintln(os.Stderr, "btswarm: shutdown: draining runs")
	}
	suspended := srv.Drain()
	for _, st := range suspended {
		fmt.Fprintf(os.Stderr, "btswarm: run %d (%s) suspended; resume with -resume %s\n",
			st.ID, st.Name, st.Resume)
	}
	_ = hs.Close()
	return nil
}

// runLoadgen is the `btswarm loadgen` subcommand: replay announce traffic
// against a live daemon and report achieved announces/sec plus latency
// quantiles.
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("btswarm loadgen", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", "http://127.0.0.1:8080", "daemon base URL (http://host:port or host:port)")
		swarm = fs.String("swarm", "loadgen", "swarm name to announce into")
		peers = fs.Int("peers", 256, "distinct peer keys cycled through")
		rate  = fs.Float64("rate", 0, "offered announces/sec across all workers (0 = unpaced)")
		conc  = fs.Int("concurrency", 8, "in-flight request workers")
		total = fs.Int("total", 0, "total announces to send (0 = bounded by -duration; 5000 when neither is set)")
		dur   = fs.Duration("duration", 0, "replay wall-time bound (0 = bounded by -total)")
		churn = fs.Int("churn", 0, "every k-th announce is an event=stopped departure (0 = announces only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("loadgen: unexpected argument %q", fs.Arg(0))
	}
	if *total == 0 && *dur == 0 {
		*total = 5000
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	lg := trackerd.LoadGen{
		BaseURL:     base,
		Swarm:       *swarm,
		Peers:       *peers,
		Rate:        *rate,
		Concurrency: *conc,
		Total:       *total,
		Duration:    *dur,
		Churn:       *churn,
		Client:      &http.Client{Timeout: 30 * time.Second},
	}
	rep, err := lg.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Println(rep.String())
	if rep.Announces == 0 {
		return fmt.Errorf("loadgen: no announce succeeded (%d errors)", rep.Errors)
	}
	return nil
}
