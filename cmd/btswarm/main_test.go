package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stratmatch/internal/btsim"
)

func TestRunSmallSwarm(t *testing.T) {
	err := run([]string{
		"-leechers", "20", "-seeds", "1", "-pieces", "16",
		"-rounds", "60", "-neighbors", "5",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnlimitedRegime(t *testing.T) {
	err := run([]string{
		"-leechers", "30", "-seeds", "0", "-unlimited",
		"-rounds", "120", "-neighbors", "8",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUniformCapacity(t *testing.T) {
	err := run([]string{
		"-leechers", "15", "-seeds", "1", "-pieces", "8",
		"-rounds", "50", "-uniform-kbps", "500", "-neighbors", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilDone(t *testing.T) {
	err := run([]string{
		"-leechers", "10", "-seeds", "1", "-pieces", "8",
		"-rounds", "500", "-until-done", "-neighbors", "4",
		"-uniform-kbps", "800",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarios(t *testing.T) {
	// The whole catalog, including the spec-era workloads (tracereplay,
	// seedstarve, slowquit).
	for _, name := range btsim.ScenarioNames() {
		if err := run([]string{"-scenario", name, "-scenario-scale", "0.1"}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// captureStdout runs f with os.Stdout redirected into a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

// TestDumpSpecLoadsAndRuns is the CLI serialization loop: -dump-spec
// output, written to a file, must load through -spec and run — in both
// text and jsonl emit modes.
func TestDumpSpecLoadsAndRuns(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-dump-spec", "flashcrowd", "-scenario-scale", "0.1", "-seed", "5"})
	})
	path := filepath.Join(t.TempDir(), "flash.json")
	if err := os.WriteFile(path, []byte(out), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", path}); err != nil {
		t.Fatalf("text run of dumped spec: %v", err)
	}
	jsonl := captureStdout(t, func() error {
		return run([]string{"-spec", path, "-emit", "jsonl", "-sample-every", "100"})
	})
	lines := strings.Split(strings.TrimSpace(jsonl), "\n")
	if len(lines) < 2 {
		t.Fatalf("jsonl emitted %d lines, want at least a sample and a done", len(lines))
	}
	for _, line := range lines {
		var row map[string]any
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("jsonl line is not JSON: %q: %v", line, err)
		}
	}
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last["type"] != "done" {
		t.Fatalf("last jsonl line has type %v, want done", last["type"])
	}
}

// TestRunSpecScaled: -scenario-scale rescales a loaded spec file.
func TestRunSpecScaled(t *testing.T) {
	spec, err := btsim.NamedSpec("poisson", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "poisson.json")
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", path, "-scenario-scale", "0.05", "-v"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"name":"x","rounds":0}`), 0o600); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-spec", path})
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	if !strings.Contains(err.Error(), "rounds") {
		t.Fatalf("error does not name the offending field: %v", err)
	}
	if err := run([]string{"-spec", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Fatal("missing spec file accepted")
	}
	typo := filepath.Join(t.TempDir(), "typo.json")
	if err := os.WriteFile(typo, []byte(`{"name":"x","rounds":10,"swarm":{"leechers":5,"pieces":8},"arivals":[]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", typo}); err == nil {
		t.Fatal("spec with a misspelled field accepted")
	}
}

// TestRunRejectsBadScenarioFlags pins the flag-validation satellite:
// negative -sample-every and non-positive -scenario-scale used to be
// silently mangled; now they are errors, as are conflicting or unknown
// modes.
func TestRunRejectsBadScenarioFlags(t *testing.T) {
	cases := [][]string{
		{"-scenario", "poisson", "-sample-every", "-1"},
		{"-scenario", "poisson", "-scenario-scale", "-2"},
		{"-scenario", "poisson", "-scenario-scale", "0"},
		{"-scenario", "poisson", "-emit", "xml"},
		{"-scenario", "poisson", "-spec", "whatever.json"},
		{"-dump-spec", "nope"},
		{"-leechers", "10", "-emit", "jsonl"}, // jsonl needs a scenario/spec run
		// -dump-spec prints a spec and exits: combining it with a run mode
		// must be a loud error, not a silently ignored flag.
		{"-dump-spec", "flashcrowd", "-spec", "whatever.json"},
		{"-dump-spec", "flashcrowd", "-scenario", "poisson"},
		{"-dump-spec", "flashcrowd", "-emit", "jsonl"},
		// -dump-spec runs no simulation, so asking it to record telemetry
		// (directly or via the flags that imply it) is a contradiction.
		{"-dump-spec", "flashcrowd", "-telemetry"},
		{"-dump-spec", "flashcrowd", "-debug-addr", "127.0.0.1:0"},
		{"-dump-spec", "flashcrowd", "-trace", "out.trace"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestListScenarios(t *testing.T) {
	if err := run([]string{"-list-scenarios"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-leechers", "0"}); err == nil {
		t.Fatal("0 leechers accepted")
	}
}

// TestJsonlFaultStreams pins the fault-injection CLI contract: every fault
// catalog entry streams deterministically (same seed ⇒ byte-identical
// jsonl), samples carry the fault counters, and the closing summary carries
// total_crashed.
func TestJsonlFaultStreams(t *testing.T) {
	for _, name := range btsim.FaultScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			args := []string{"-scenario", name, "-scenario-scale", "0.15", "-seed", "9", "-emit", "jsonl"}
			out := captureStdout(t, func() error { return run(args) })
			if again := captureStdout(t, func() error { return run(args) }); again != out {
				t.Fatal("jsonl stream not byte-identical across identical runs")
			}
			lines := strings.Split(strings.TrimSpace(out), "\n")
			var first, last map[string]any
			if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
				t.Fatal(err)
			}
			if _, ok := first["stale_edges"]; !ok {
				t.Fatalf("fault-run sample lacks fault counters: %s", lines[0])
			}
			if _, ok := last["total_crashed"]; !ok || last["type"] != "done" {
				t.Fatalf("fault-run summary lacks total_crashed: %s", lines[len(lines)-1])
			}
		})
	}
}

// TestJsonlFaultFreeByteIdentical: a spec with an empty faults block must
// stream byte-identically to the same spec without the block, and neither
// stream may carry fault counters.
func TestJsonlFaultFreeByteIdentical(t *testing.T) {
	spec, err := btsim.NamedSpec("poisson", 4, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	write := func(sp btsim.ScenarioSpec, file string) string {
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), file)
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		return path
	}
	plainPath := write(spec, "plain.json")
	spec.Faults = &btsim.FaultsSpec{}
	zeroPath := write(spec, "zero.json")
	stream := func(path string) string {
		return captureStdout(t, func() error {
			return run([]string{"-spec", path, "-emit", "jsonl"})
		})
	}
	plain, zero := stream(plainPath), stream(zeroPath)
	if plain != zero {
		t.Fatal("an empty faults block changed the jsonl stream")
	}
	if strings.Contains(plain, "stale_edges") || strings.Contains(plain, "total_crashed") {
		t.Fatal("fault-free stream carries fault counters")
	}
}
