package main

import "testing"

func TestRunSmallSwarm(t *testing.T) {
	err := run([]string{
		"-leechers", "20", "-seeds", "1", "-pieces", "16",
		"-rounds", "60", "-neighbors", "5",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnlimitedRegime(t *testing.T) {
	err := run([]string{
		"-leechers", "30", "-seeds", "0", "-unlimited",
		"-rounds", "120", "-neighbors", "8",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUniformCapacity(t *testing.T) {
	err := run([]string{
		"-leechers", "15", "-seeds", "1", "-pieces", "8",
		"-rounds", "50", "-uniform-kbps", "500", "-neighbors", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilDone(t *testing.T) {
	err := run([]string{
		"-leechers", "10", "-seeds", "1", "-pieces", "8",
		"-rounds", "500", "-until-done", "-neighbors", "4",
		"-uniform-kbps", "800",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarios(t *testing.T) {
	for _, name := range []string{"flashcrowd", "poisson", "massdepart"} {
		if err := run([]string{"-scenario", name, "-scenario-scale", "0.1"}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestListScenarios(t *testing.T) {
	if err := run([]string{"-list-scenarios"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-leechers", "0"}); err == nil {
		t.Fatal("0 leechers accepted")
	}
}
