package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stratmatch/internal/telemetry"
)

// TestJsonlGoldenStreams pins the jsonl wire format against checked-in
// fixtures captured from the PR-6 emitter. Any field rename, reorder, or
// formatting change in the sample/event/done records breaks downstream
// consumers and must show up here as a diff, not as a silent drift.
func TestJsonlGoldenStreams(t *testing.T) {
	cases := []struct {
		scenario, seed, golden string
	}{
		{"poisson", "4", "poisson_s4_x0.15.jsonl"},
		{"trackerdown", "9", "trackerdown_s9_x0.15.jsonl"},
	}
	for _, tc := range cases {
		t.Run(tc.scenario, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			got := captureStdout(t, func() error {
				return run([]string{
					"-scenario", tc.scenario, "-scenario-scale", "0.15",
					"-seed", tc.seed, "-emit", "jsonl",
				})
			})
			if got != string(want) {
				t.Fatalf("jsonl stream drifted from testdata/%s; if the change is intentional, regenerate the golden", tc.golden)
			}
		})
	}
}

// TestJsonlTelemetryOverlay: -telemetry adds distinct telemetry records to
// the jsonl stream without perturbing any other line. Stripping them must
// recover the telemetry-off stream byte-for-byte — recording reads only the
// wall clock, never the RNG or sim state.
func TestJsonlTelemetryOverlay(t *testing.T) {
	args := []string{"-scenario", "trackerdown", "-scenario-scale", "0.15", "-seed", "9", "-emit", "jsonl"}
	off := captureStdout(t, func() error { return run(args) })
	on := captureStdout(t, func() error { return run(append([]string{"-telemetry"}, args...)) })

	var rest strings.Builder
	telLines := 0
	for _, line := range strings.SplitAfter(on, "\n") {
		if strings.HasPrefix(line, `{"type":"telemetry"`) {
			telLines++
			var rec struct {
				Type     string           `json:"type"`
				Round    int              `json:"round"`
				Counters []map[string]any `json:"counters"`
				Phases   []map[string]any `json:"phases"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("telemetry record is not JSON: %q: %v", line, err)
			}
			if rec.Round <= 0 || len(rec.Counters) == 0 || len(rec.Phases) == 0 {
				t.Fatalf("telemetry record missing round/counters/phases: %q", line)
			}
			continue
		}
		rest.WriteString(line)
	}
	if telLines == 0 {
		t.Fatal("-telemetry emitted no telemetry records")
	}
	if rest.String() != off {
		t.Fatal("stripping telemetry records does not recover the telemetry-off stream")
	}
}

// TestDebugServerServes: the opt-in debug listener must expose a parseable
// Prometheus exposition on /metrics, the expvar JSON on /debug/vars, and
// the pprof index, all while the recorder is live.
func TestDebugServerServes(t *testing.T) {
	tel := telemetry.New()
	sp := tel.StartPhase(telemetry.PhaseChoke)
	tel.EndPhase(telemetry.PhaseChoke, sp)
	tel.Inc(telemetry.CtrRounds)

	addr, stop, err := startDebugServer("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "phase_duration_seconds_bucket") ||
		!strings.Contains(metrics, `phase="choke"`) {
		t.Fatalf("/metrics lacks the phase histogram:\n%s", metrics)
	}
	for _, line := range strings.Split(strings.TrimSpace(metrics), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Fatalf("/metrics line is not `name value`: %q", line)
		}
	}

	vars := get("/debug/vars")
	var decoded map[string]any
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}

	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("/debug/pprof/ index looks wrong:\n%s", idx)
	}
}

// TestTraceFileWritten: -trace produces a non-empty runtime trace for
// go tool trace.
func TestTraceFileWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	_ = captureStdout(t, func() error {
		return run([]string{
			"-scenario", "poisson", "-scenario-scale", "0.15",
			"-seed", "4", "-emit", "jsonl", "-trace", path,
		})
	})
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("trace file is empty")
	}
}
