// Command btswarm runs a configurable BitTorrent Tit-for-Tat swarm
// simulation and reports per-peer outcomes and stratification statistics.
//
// Usage examples:
//
//	btswarm -leechers 400 -seeds 2 -pieces 256 -rounds 2000
//	btswarm -leechers 500 -unlimited -rounds 3000        # Section 6 regime
//	btswarm -leechers 100 -seeds 1 -until-done           # flash crowd
//	btswarm -replicas 16 -unlimited                      # parallel replica study
//	btswarm -scenario poisson                            # dynamic membership
//	btswarm -scenario massdepart -scenario-scale 2       # churn catalog, 2x size
//
// With -replicas N, N independent swarms (seeds seed, seed+1, ...) run
// across -workers goroutines and the stratification statistics are
// aggregated over the replicas; the per-peer report is printed for the
// first replica only.
//
// With -scenario NAME, the named dynamic-membership scenario (tracker,
// arrival process, peer lifecycle — see -list-scenarios) runs instead of a
// fixed population, printing its population/stratification time series and
// the closing swarm report.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"stratmatch/internal/bandwidth"
	"stratmatch/internal/btsim"
	"stratmatch/internal/par"
	"stratmatch/internal/rng"
	"stratmatch/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "btswarm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("btswarm", flag.ContinueOnError)
	var (
		leechers  = fs.Int("leechers", 400, "number of leechers")
		seeds     = fs.Int("seeds", 2, "number of initial seeds")
		pieces    = fs.Int("pieces", 256, "pieces in the file")
		pieceKbit = fs.Float64("piece-kbit", 2048, "piece size in kbit")
		neighbors = fs.Int("neighbors", 20, "tracker neighbors per peer (d)")
		tftSlots  = fs.Int("tft-slots", 3, "Tit-for-Tat unchoke slots")
		rounds    = fs.Int("rounds", 2000, "rounds to simulate")
		untilDone = fs.Bool("until-done", false, "run until every leecher completes (bounded by -rounds*100)")
		unlimited = fs.Bool("unlimited", false, "content-unlimited regime (paper Section 6: bandwidth only)")
		postFlash = fs.Bool("post-flashcrowd", true, "start leechers with ~half the pieces")
		uniform   = fs.Float64("uniform-kbps", 0, "give every peer this capacity instead of the Saroiu distribution")
		seed      = fs.Uint64("seed", 0, "random seed")
		warmup    = fs.Int("warmup", 0, "metrics warmup rounds (default: rounds/3)")
		replicas  = fs.Int("replicas", 1, "independent replicas (seed, seed+1, ...) to aggregate")
		workers   = fs.Int("workers", 0, "goroutines for replica fan-out (0 = all cores)")
		scenario  = fs.String("scenario", "", "run a named churn scenario instead of a fixed swarm (see -list-scenarios)")
		scScale   = fs.Float64("scenario-scale", 1, "population/length multiplier for -scenario")
		scSample  = fs.Int("sample-every", 0, "scenario time-series sampling period in rounds (0 = catalog default; 1 = every round, sampling is allocation-free)")
		listSc    = fs.Bool("list-scenarios", false, "list the churn scenario catalog and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listSc {
		fmt.Println("churn scenario catalog:")
		for _, name := range btsim.ScenarioNames() {
			fmt.Printf("  %s\n", name)
		}
		return nil
	}
	if *scenario != "" {
		return runScenario(*scenario, *seed, *scScale, *scSample)
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas %d", *replicas)
	}

	// The ranked capacity vector is replica-independent; only the id↔rank
	// permutation differs per replica.
	var ranked []float64
	if *uniform <= 0 {
		ranked = bandwidth.RankBandwidths(bandwidth.Saroiu(), *leechers)
	}
	runOne := func(replicaSeed uint64) (btsim.Metrics, error) {
		n := *leechers + *seeds
		caps := make([]float64, n)
		if *uniform > 0 {
			for i := range caps {
				caps[i] = *uniform
			}
		} else {
			// Split off a sub-stream for the shuffle: the swarm itself
			// consumes rng.New(replicaSeed), and with sequential replica
			// seeds an additive offset would collide with the next
			// replica's stream.
			perm := rng.New(replicaSeed).Split().Perm(*leechers)
			for i, src := range perm {
				caps[i] = ranked[src]
			}
			for i := *leechers; i < n; i++ {
				caps[i] = 5000 // well-provisioned seeds
			}
		}
		w := *warmup
		if w == 0 {
			w = *rounds / 3
		}
		s, err := btsim.New(btsim.Options{
			Leechers:            *leechers,
			Seeds:               *seeds,
			Pieces:              *pieces,
			PieceKbit:           *pieceKbit,
			UploadKbps:          caps,
			TFTSlots:            *tftSlots,
			NeighborCount:       *neighbors,
			PostFlashCrowd:      *postFlash,
			ContentUnlimited:    *unlimited,
			MetricsWarmupRounds: w,
			Seed:                replicaSeed,
		})
		if err != nil {
			return btsim.Metrics{}, err
		}
		if *untilDone {
			if !s.RunUntilDone(*rounds * 100) {
				fmt.Println("WARNING: swarm did not complete within the round budget")
			}
		} else {
			s.Run(*rounds)
		}
		return s.Snapshot(), nil
	}

	if *replicas == 1 {
		m, err := runOne(*seed)
		if err != nil {
			return err
		}
		report(m)
		return nil
	}

	// Replica fan-out: each replica owns its swarm and writes to its own
	// slot, so results are independent of worker count.
	nw := par.Workers(*replicas, *workers)
	metrics := make([]btsim.Metrics, *replicas)
	if err := par.ForEachErr(*replicas, nw, func(rep int) error {
		var err error
		metrics[rep], err = runOne(*seed + uint64(rep))
		return err
	}); err != nil {
		return err
	}

	var corrs, offsets []float64
	for _, m := range metrics {
		if !math.IsNaN(m.StratCorrelation) {
			corrs = append(corrs, m.StratCorrelation)
		}
		if !math.IsNaN(m.MeanAbsRankOffset) {
			offsets = append(offsets, m.MeanAbsRankOffset)
		}
	}
	fmt.Printf("replicas:                %d (seeds %d..%d, %d workers)\n",
		*replicas, *seed, *seed+uint64(*replicas)-1, nw)
	if len(corrs) > 0 {
		sc := stats.Summarize(corrs)
		fmt.Printf("stratification corr:     mean %.3f  min %.3f  max %.3f\n", sc.Mean, sc.Min, sc.Max)
	}
	if len(offsets) > 0 {
		so := stats.Summarize(offsets)
		fmt.Printf("mean |rank offset|:      mean %.3f  min %.3f  max %.3f\n", so.Mean, so.Min, so.Max)
	}
	fmt.Println("\n--- replica 0 ---")
	report(metrics[0])
	return nil
}

// runScenario executes one catalog scenario and prints its time series and
// closing report.
func runScenario(name string, seed uint64, scale float64, sampleEvery int) error {
	sc, err := btsim.NamedScenario(name, seed, scale)
	if err != nil {
		return err
	}
	if sampleEvery > 0 {
		sc.SampleEvery = sampleEvery
	}
	res, err := sc.Run()
	if err != nil {
		return err
	}
	fmt.Printf("scenario:                %s (seed %d, scale %g)\n", res.Name, seed, scale)
	fmt.Printf("peers ever joined:       %d\n", res.TotalJoined)
	fmt.Printf("peers departed:          %d\n", res.TotalDeparted)
	fmt.Println("\n  round  present  leechers  seeds  joined  departed  completed  mean_deg  strat_corr  D/U slow|mid|fast")
	stride := (len(res.Series) + 29) / 30 // bound the printed series to ~30 rows
	for i, pt := range res.Series {
		if i%stride != 0 && i != len(res.Series)-1 {
			continue
		}
		fmt.Printf("  %5d  %7d  %8d  %5d  %6d  %8d  %9d  %8.1f  %10.3f  %5.2f|%4.2f|%4.2f\n",
			pt.Round, pt.Present, pt.Leechers, pt.Seeds, pt.Joined, pt.Departed,
			pt.Completed, pt.MeanDegree, pt.StratCorr,
			pt.ShareRatioByClass[0], pt.ShareRatioByClass[1], pt.ShareRatioByClass[2])
	}
	fmt.Println()
	report(res.Final)
	return nil
}

func report(m btsim.Metrics) {
	fmt.Printf("rounds simulated:        %d\n", m.Round)
	fmt.Printf("completed leechers:      %d\n", m.CompletedLeechers)
	if !math.IsNaN(m.MeanCompletionRound) {
		fmt.Printf("mean completion round:   %.1f\n", m.MeanCompletionRound)
	}
	if !math.IsNaN(m.StratCorrelation) {
		fmt.Printf("stratification corr:     %.3f (rank vs mean TFT-partner rank)\n", m.StratCorrelation)
		fmt.Printf("mean |rank offset|:      %.3f (normalized)\n", m.MeanAbsRankOffset)
	}

	// Decile table by rank.
	peers := append([]btsim.PeerMetrics(nil), m.Peers...)
	sort.Slice(peers, func(a, b int) bool { return peers[a].Rank < peers[b].Rank })
	var leechers []btsim.PeerMetrics
	for _, pm := range peers {
		if !pm.IsSeed {
			leechers = append(leechers, pm)
		}
	}
	if len(leechers) < 10 {
		return
	}
	fmt.Println("\n  decile  capacity(kbps)  down(kbit)  up(kbit)  share_ratio")
	dec := len(leechers) / 10
	for d := 0; d < 10; d++ {
		var capK, down, up []float64
		for _, pm := range leechers[d*dec : (d+1)*dec] {
			capK = append(capK, pm.Capacity)
			down = append(down, pm.TotalDown)
			up = append(up, pm.TotalUp)
		}
		mu, md := stats.Summarize(up).Mean, stats.Summarize(down).Mean
		ratio := math.NaN()
		if mu > 0 {
			ratio = md / mu
		}
		fmt.Printf("  %6d  %14.0f  %10.0f  %8.0f  %11.3f\n",
			d+1, stats.Summarize(capK).Mean, md, mu, ratio)
	}
}
