// Command btswarm runs a configurable BitTorrent Tit-for-Tat swarm
// simulation and reports per-peer outcomes and stratification statistics.
//
// Usage examples:
//
//	btswarm -leechers 400 -seeds 2 -pieces 256 -rounds 2000
//	btswarm -leechers 500 -unlimited -rounds 3000        # Section 6 regime
//	btswarm -leechers 100 -seeds 1 -until-done           # flash crowd
//	btswarm -replicas 16 -unlimited                      # parallel replica study
//	btswarm -scenario poisson                            # dynamic membership
//	btswarm -scenario massdepart -scenario-scale 2       # churn catalog, 2x size
//	btswarm -scenario trackerdown -emit jsonl            # fault injection, streamed
//	btswarm -dump-spec flashcrowd > flash.json           # catalog entry as JSON
//	btswarm -spec flash.json -emit jsonl                 # run a spec file, stream JSONL
//	btswarm -scenario poisson -checkpoint-every 100 -checkpoint-dir ck   # durable run
//	btswarm -resume ck -checkpoint-every 100 -checkpoint-dir ck          # continue it
//	btswarm -serve :8080                                 # tracker daemon (announce/scrape/runs)
//	btswarm loadgen -addr :8080 -total 10000 -rate 2000  # drive announce load at it
//
// With -replicas N, N independent swarms (seeds seed, seed+1, ...) run
// across -workers goroutines and the stratification statistics are
// aggregated over the replicas; the per-peer report is printed for the
// first replica only.
//
// With -scenario NAME, the named dynamic-membership scenario (tracker,
// arrival process, peer lifecycle — see -list-scenarios) runs instead of a
// fixed population, printing its population/stratification time series and
// the closing swarm report.
//
// Scenarios are declarative: -dump-spec NAME prints a catalog entry as a
// JSON ScenarioSpec, -spec FILE loads and runs one (use /dev/stdin to
// pipe), -scenario-scale rescales a loaded spec, and -emit jsonl streams
// every sample, event and the closing summary as JSON lines through the
// scenario Observer API — O(1) memory at any horizon and -sample-every 1.
//
// Scenario runs are durable: -checkpoint-every N snapshots the complete
// run state into -checkpoint-dir every N rounds (atomically, checksummed,
// keeping the newest -checkpoint-retain files), and SIGINT/SIGTERM writes
// a final checkpoint before exiting cleanly. -resume PATH continues from
// a checkpoint file (or the newest in a directory) using the scenario
// spec embedded in it — the resumed output is byte-identical to what the
// uninterrupted run would have produced.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/trace"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"

	"stratmatch/internal/bandwidth"
	"stratmatch/internal/btsim"
	"stratmatch/internal/emit"
	"stratmatch/internal/par"
	"stratmatch/internal/rng"
	"stratmatch/internal/stats"
	"stratmatch/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "btswarm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// Subcommand dispatch precedes flag parsing: `btswarm loadgen ...` has
	// its own flag set (see serve.go).
	if len(args) > 0 && args[0] == "loadgen" {
		return runLoadgen(args[1:])
	}
	fs := flag.NewFlagSet("btswarm", flag.ContinueOnError)
	var (
		leechers  = fs.Int("leechers", 400, "number of leechers")
		seeds     = fs.Int("seeds", 2, "number of initial seeds")
		pieces    = fs.Int("pieces", 256, "pieces in the file")
		pieceKbit = fs.Float64("piece-kbit", 2048, "piece size in kbit")
		neighbors = fs.Int("neighbors", 20, "tracker neighbors per peer (d)")
		tftSlots  = fs.Int("tft-slots", 3, "Tit-for-Tat unchoke slots")
		rounds    = fs.Int("rounds", 2000, "rounds to simulate")
		untilDone = fs.Bool("until-done", false, "run until every leecher completes (bounded by -rounds*100)")
		unlimited = fs.Bool("unlimited", false, "content-unlimited regime (paper Section 6: bandwidth only)")
		postFlash = fs.Bool("post-flashcrowd", true, "start leechers with ~half the pieces")
		uniform   = fs.Float64("uniform-kbps", 0, "give every peer this capacity instead of the Saroiu distribution")
		seed      = fs.Uint64("seed", 0, "random seed")
		warmup    = fs.Int("warmup", 0, "metrics warmup rounds (default: rounds/3)")
		replicas  = fs.Int("replicas", 1, "independent replicas (seed, seed+1, ...) to aggregate")
		workers   = fs.Int("workers", 0, "goroutines for replica fan-out (0 = all cores)")
		scenario  = fs.String("scenario", "", "run a named churn scenario instead of a fixed swarm (see -list-scenarios)")
		scScale   = fs.Float64("scenario-scale", 1, "population/length multiplier for -scenario and -spec")
		scSample  = fs.Int("sample-every", 0, "scenario time-series sampling period in rounds (0 = scenario default; 1 = every round, sampling is allocation-free)")
		scWorkers = fs.Int("step-workers", 0, "goroutines for the swarm's sharded step phases in -scenario/-spec/-resume runs (0 or 1 = serial; output is byte-identical at any setting)")
		listSc    = fs.Bool("list-scenarios", false, "list the churn scenario catalog and exit")
		specPath  = fs.String("spec", "", "load and run a JSON scenario spec from this file (use /dev/stdin to pipe)")
		dumpSpec  = fs.String("dump-spec", "", "print the named catalog scenario as a JSON spec and exit")
		emitFlag  = fs.String("emit", "text", "scenario output format: text (series table + report) or jsonl (stream samples/events/summary as JSON lines)")
		ckEvery   = fs.Int("checkpoint-every", 0, "write a durable checkpoint of the scenario run every N rounds (0 = off; requires -checkpoint-dir)")
		ckDir     = fs.String("checkpoint-dir", "", "directory for scenario checkpoints (created if missing); also enables a graceful SIGINT/SIGTERM checkpoint")
		ckRetain  = fs.Int("checkpoint-retain", 0, "checkpoint files to keep, oldest rotated away (0 = default 3; negative = keep all)")
		resume    = fs.String("resume", "", "resume a scenario run from a checkpoint file, or the newest checkpoint in a directory, using the spec embedded in it")
		serveAddr = fs.String("serve", "", "run the tracker daemon on this address (host:port; :0 picks a port) instead of a simulation: /announce, /scrape, POST /runs, /metrics")
		serveRuns = fs.Int("serve-runs", 2, "daemon worker-pool size: scenario runs executing concurrently (submissions beyond it queue)")
		telFlag   = fs.Bool("telemetry", false, "record runtime telemetry (phase durations, counters, gauges); jsonl runs emit telemetry records, text runs print a summary to stderr")
		debugAddr = fs.String("debug-addr", "", "serve /metrics (Prometheus), /debug/vars (expvar) and /debug/pprof/ on this address while running (implies -telemetry)")
		tracePath = fs.String("trace", "", "write a runtime/trace with per-phase user regions to this file, for go tool trace (implies -telemetry)")
		verbose   = fs.Bool("v", false, "verbose: note auto-sized preallocation and other diagnostics on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scSample < 0 {
		return fmt.Errorf("-sample-every %d: must be >= 0", *scSample)
	}
	if *scScale <= 0 {
		return fmt.Errorf("-scenario-scale %g: must be > 0", *scScale)
	}
	if *emitFlag != "text" && *emitFlag != "jsonl" {
		return fmt.Errorf("-emit %q: must be text or jsonl", *emitFlag)
	}
	if *ckEvery < 0 {
		return fmt.Errorf("-checkpoint-every %d: must be >= 0", *ckEvery)
	}
	if *ckEvery > 0 && *ckDir == "" {
		return fmt.Errorf("-checkpoint-every requires -checkpoint-dir")
	}
	if *resume != "" && (*specPath != "" || *scenario != "") {
		return fmt.Errorf("-resume carries its own embedded spec; it cannot be combined with -scenario or -spec")
	}
	if *serveAddr != "" {
		// The daemon is a long-running service, not a run: every offline run
		// mode is a conflict, not a silently ignored flag.
		switch {
		case *dumpSpec != "":
			return fmt.Errorf("-serve and -dump-spec are mutually exclusive")
		case *scenario != "":
			return fmt.Errorf("-serve runs a daemon; it cannot be combined with -scenario (submit specs with POST /runs)")
		case *specPath != "":
			return fmt.Errorf("-serve runs a daemon; it cannot be combined with -spec (submit specs with POST /runs)")
		case *resume != "":
			return fmt.Errorf("-serve cannot resume a checkpoint; run `btswarm -resume` offline instead")
		case *emitFlag != "text":
			return fmt.Errorf("-serve streams jsonl over POST /runs; -emit does not apply")
		}
	}
	ck := ckptConfig{every: *ckEvery, dir: *ckDir, retain: *ckRetain, resume: *resume}
	// -debug-addr and -trace are useless without a recorder, so they imply
	// -telemetry. The recorder is nil when telemetry is off; every hook in
	// the engine no-ops on nil, and recording never touches the RNG or
	// simulation state, so outputs are byte-identical either way.
	var tel *telemetry.Recorder
	if *telFlag || *debugAddr != "" || *tracePath != "" {
		tel = telemetry.New()
	}
	if *listSc {
		fmt.Println("churn scenario catalog:")
		for _, name := range btsim.ChurnScenarioNames() {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("fault-injection scenario catalog:")
		for _, name := range btsim.FaultScenarioNames() {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("extra-large stress scenarios (excluded from catalog sweeps):")
		for _, name := range btsim.XLScenarioNames() {
			fmt.Printf("  %s\n", name)
		}
		return nil
	}
	if *serveAddr != "" {
		if tel == nil {
			// /metrics is part of the daemon surface, so the daemon always
			// records.
			tel = telemetry.New()
		}
		par.SetTelemetry(tel)
		defer par.SetTelemetry(nil)
		return runServe(serveConfig{
			addr:    *serveAddr,
			maxRuns: *serveRuns,
			seed:    *seed,
			policy:  btsim.HandoutPolicy{NeighborCount: *neighbors},
			ckDir:   *ckDir,
			ckEvery: *ckEvery,
			tel:     tel,
		})
	}
	if *dumpSpec != "" {
		// -dump-spec prints a spec and exits; combining it with a run mode
		// would silently ignore the run, so it is an error instead.
		switch {
		case *specPath != "":
			return fmt.Errorf("-dump-spec and -spec are mutually exclusive")
		case *scenario != "":
			return fmt.Errorf("-dump-spec and -scenario are mutually exclusive")
		case *emitFlag != "text":
			return fmt.Errorf("-dump-spec prints a JSON spec, not a run; it cannot be combined with -emit %s", *emitFlag)
		case tel != nil:
			return fmt.Errorf("-dump-spec prints a JSON spec, not a run; it cannot be combined with -telemetry, -debug-addr or -trace")
		}
		spec, err := btsim.NamedSpec(*dumpSpec, *seed, *scScale)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	if *specPath != "" && *scenario != "" {
		return fmt.Errorf("-spec and -scenario are mutually exclusive")
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
		// Phase spans become trace user regions under a per-run task, so
		// go tool trace groups choke vs transfer vs fault-sweep time.
		ctx, task := trace.NewTask(context.Background(), "btswarm")
		defer task.End()
		tel.EnableTraceRegions(ctx)
	}
	if *debugAddr != "" {
		_, stop, err := startDebugServer(*debugAddr, tel)
		if err != nil {
			return err
		}
		defer stop()
	}
	// The worker pool is process-global, so the recorder is attached for the
	// whole run (and detached on return — tests drive run() repeatedly).
	par.SetTelemetry(tel)
	defer par.SetTelemetry(nil)
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		spec, err := btsim.ParseSpec(data)
		if err != nil {
			return err
		}
		spec = spec.Scaled(*scScale)
		// An explicit -seed overrides the spec's baked-in seed, so one
		// spec file drives many replicas.
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				spec.Swarm.Seed = *seed
			}
		})
		return runSpec(spec, *scSample, *scWorkers, ck, *emitFlag, *verbose, tel)
	}
	if *scenario != "" {
		spec, err := btsim.NamedSpec(*scenario, *seed, *scScale)
		if err != nil {
			return err
		}
		return runSpec(spec, *scSample, *scWorkers, ck, *emitFlag, *verbose, tel)
	}
	if *resume != "" {
		// The checkpoint embeds the exact effective spec (scaling and
		// sampling overrides already applied), so no -scenario-scale or
		// -sample-every reshaping happens here: the resumed run must be
		// byte-identical to the one that wrote the checkpoint.
		spec, err := btsim.ResumeSpec(*resume)
		if err != nil {
			return err
		}
		return runSpec(spec, 0, *scWorkers, ck, *emitFlag, *verbose, tel)
	}
	if *emitFlag != "text" {
		return fmt.Errorf("-emit %s only applies to -scenario or -spec runs", *emitFlag)
	}
	if ck.every > 0 || ck.dir != "" {
		return fmt.Errorf("-checkpoint-every and -checkpoint-dir only apply to -scenario, -spec or -resume runs")
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas %d", *replicas)
	}

	// The ranked capacity vector is replica-independent; only the id↔rank
	// permutation differs per replica.
	var ranked []float64
	if *uniform <= 0 {
		ranked = bandwidth.RankBandwidths(bandwidth.Saroiu(), *leechers)
	}
	runOne := func(replicaSeed uint64) (btsim.Metrics, error) {
		n := *leechers + *seeds
		caps := make([]float64, n)
		if *uniform > 0 {
			for i := range caps {
				caps[i] = *uniform
			}
		} else {
			// Split off a sub-stream for the shuffle: the swarm itself
			// consumes rng.New(replicaSeed), and with sequential replica
			// seeds an additive offset would collide with the next
			// replica's stream.
			perm := rng.New(replicaSeed).Split().Perm(*leechers)
			for i, src := range perm {
				caps[i] = ranked[src]
			}
			for i := *leechers; i < n; i++ {
				caps[i] = 5000 // well-provisioned seeds
			}
		}
		w := *warmup
		if w == 0 {
			w = *rounds / 3
		}
		s, err := btsim.New(btsim.Options{
			Leechers:            *leechers,
			Seeds:               *seeds,
			Pieces:              *pieces,
			PieceKbit:           *pieceKbit,
			UploadKbps:          caps,
			TFTSlots:            *tftSlots,
			NeighborCount:       *neighbors,
			PostFlashCrowd:      *postFlash,
			ContentUnlimited:    *unlimited,
			MetricsWarmupRounds: w,
			Seed:                replicaSeed,
		})
		if err != nil {
			return btsim.Metrics{}, err
		}
		s.SetTelemetry(tel)
		if *untilDone {
			if !s.RunUntilDone(*rounds * 100) {
				fmt.Println("WARNING: swarm did not complete within the round budget")
			}
		} else {
			s.Run(*rounds)
		}
		return s.Snapshot(), nil
	}

	if *replicas == 1 {
		m, err := runOne(*seed)
		if err != nil {
			return err
		}
		report(m)
		reportTelemetry(tel)
		return nil
	}

	// Replica fan-out: each replica owns its swarm and writes to its own
	// slot, so results are independent of worker count.
	nw := par.Workers(*replicas, *workers)
	metrics := make([]btsim.Metrics, *replicas)
	if err := par.ForEachErr(*replicas, nw, func(rep int) error {
		var err error
		metrics[rep], err = runOne(*seed + uint64(rep))
		return err
	}); err != nil {
		return err
	}

	var corrs, offsets []float64
	for _, m := range metrics {
		if !math.IsNaN(m.StratCorrelation) {
			corrs = append(corrs, m.StratCorrelation)
		}
		if !math.IsNaN(m.MeanAbsRankOffset) {
			offsets = append(offsets, m.MeanAbsRankOffset)
		}
	}
	fmt.Printf("replicas:                %d (seeds %d..%d, %d workers)\n",
		*replicas, *seed, *seed+uint64(*replicas)-1, nw)
	if len(corrs) > 0 {
		sc := stats.Summarize(corrs)
		fmt.Printf("stratification corr:     mean %.3f  min %.3f  max %.3f\n", sc.Mean, sc.Min, sc.Max)
	}
	if len(offsets) > 0 {
		so := stats.Summarize(offsets)
		fmt.Printf("mean |rank offset|:      mean %.3f  min %.3f  max %.3f\n", so.Mean, so.Min, so.Max)
	}
	fmt.Println("\n--- replica 0 ---")
	report(metrics[0])
	reportTelemetry(tel)
	return nil
}

// reportTelemetry prints a closing telemetry summary to stderr — stderr so
// the structured stdout output (report tables, jsonl) stays clean.
func reportTelemetry(tel *telemetry.Recorder) {
	if tel == nil {
		return
	}
	writeTelemetryText(os.Stderr, tel.Snapshot())
}

// writeTelemetryText renders a snapshot as an indented text block.
func writeTelemetryText(w io.Writer, snap telemetry.Snapshot) {
	fmt.Fprintln(w, "telemetry:")
	for _, c := range snap.Counters {
		fmt.Fprintf(w, "  %-32s %d\n", c.Name, c.Value)
	}
	for _, g := range snap.Gauges {
		fmt.Fprintf(w, "  %-32s %d\n", g.Name, g.Value)
	}
	for _, p := range snap.Phases {
		mean := float64(p.SumNs) / float64(p.Count) / 1e6
		fmt.Fprintf(w, "  phase %-26s %d calls, %.3f ms total, %.4f ms mean\n",
			p.Name, p.Count, float64(p.SumNs)/1e6, mean)
	}
}

// expvarRec holds the recorder the published expvar reads. expvar.Publish
// panics on duplicate names and the CLI's run() is re-entered by tests, so
// the variable is published once and re-pointed per run.
var (
	expvarRec  atomic.Pointer[telemetry.Recorder]
	expvarOnce sync.Once
)

// startDebugServer binds the opt-in debug listener: Prometheus exposition
// on /metrics, the telemetry snapshot as an expvar on /debug/vars, and the
// standard pprof handlers on /debug/pprof/. It returns the bound address
// (addr may carry port 0) and a shutdown func.
func startDebugServer(addr string, tel *telemetry.Recorder) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("-debug-addr %s: %w", addr, err)
	}
	expvarRec.Store(tel)
	expvarOnce.Do(func() {
		expvar.Publish("btswarm_telemetry", expvar.Func(func() any {
			return expvarRec.Load().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", tel.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "btswarm: debug listener on http://%s (/metrics, /debug/vars, /debug/pprof/)\n", ln.Addr())
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// ckptConfig carries the CLI's durability flags into a scenario run.
type ckptConfig struct {
	every  int
	dir    string
	retain int
	resume string
}

// runSpec compiles a scenario spec and runs it. Text mode materializes the
// series and prints the classic table; jsonl mode streams every sample,
// event and the closing summary through the Observer API — no
// materialization, so dense sampling over long horizons is O(1) memory.
//
// With a checkpoint directory configured, SIGINT/SIGTERM interrupts the
// run at the next round boundary, writes a final resume-from-here
// checkpoint, and exits cleanly (status 0) — kill -9 loses at most the
// rounds since the last periodic checkpoint.
func runSpec(spec btsim.ScenarioSpec, sampleEvery, stepWorkers int, ck ckptConfig, emitMode string, verbose bool, tel *telemetry.Recorder) error {
	if sampleEvery > 0 {
		spec.SampleEvery = sampleEvery
	}
	if verbose && spec.Swarm.MaxPeers == 0 {
		fmt.Fprintf(os.Stderr,
			"btswarm: swarm.max_peers unset; preallocating for an estimated peak of %d concurrent peers\n",
			spec.MaxPeersEstimate())
	}
	sc, err := spec.Compile()
	if err != nil {
		return err
	}
	// Telemetry is runtime-only, attached after Compile: it is not part of
	// the scenario definition and never changes simulation output.
	sc.Telemetry = tel
	// Worker count is a runtime knob like telemetry: byte-identical output
	// at any setting, so it is absent from the spec and safe on resume.
	sc.StepWorkers = stepWorkers
	sc.CheckpointEvery = ck.every
	sc.CheckpointDir = ck.dir
	sc.CheckpointRetain = ck.retain
	sc.ResumeFrom = ck.resume
	if ck.dir != "" {
		stop := make(chan struct{})
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigc)
		go func() {
			<-sigc
			close(stop)
			// A second signal falls back to the default handler: the run is
			// force-killed rather than waiting on the checkpoint write.
			signal.Stop(sigc)
		}()
		sc.Interrupt = stop
	}
	finish := func(err error) error {
		if errors.Is(err, btsim.ErrInterrupted) {
			fmt.Fprintf(os.Stderr, "btswarm: %v; resume with -resume %s\n", err, ck.dir)
			return nil
		}
		return err
	}
	if emitMode == "jsonl" {
		// Fault counters only appear in the stream when the spec injects
		// faults, so fault-free jsonl output stays byte-identical; telemetry
		// records are separate lines, leaving sample/event/done rows
		// untouched. The emitter itself lives in internal/emit — the daemon
		// streams the identical format over POST /runs.
		em := emit.NewTelemetry(os.Stdout, spec.HasFaults(), nil)
		if err := sc.RunObserver(em); err != nil {
			return finish(err)
		}
		return em.Err()
	}
	res, err := sc.Run()
	if err != nil {
		return finish(err)
	}
	defer reportTelemetry(tel)
	fmt.Printf("scenario:                %s (seed %d)\n", res.Name, spec.Swarm.Seed)
	fmt.Printf("peers ever joined:       %d\n", res.TotalJoined)
	fmt.Printf("peers departed:          %d\n", res.TotalDeparted)
	fmt.Println("\n  round  present  leechers  seeds  joined  departed  completed  mean_deg  strat_corr  D/U slow|mid|fast")
	stride := (len(res.Series) + 29) / 30 // bound the printed series to ~30 rows
	for i, pt := range res.Series {
		if i%stride != 0 && i != len(res.Series)-1 {
			continue
		}
		fmt.Printf("  %5d  %7d  %8d  %5d  %6d  %8d  %9d  %8.1f  %10.3f  %5.2f|%4.2f|%4.2f\n",
			pt.Round, pt.Present, pt.Leechers, pt.Seeds, pt.Joined, pt.Departed,
			pt.Completed, pt.MeanDegree, pt.StratCorr,
			pt.ShareRatioByClass[0], pt.ShareRatioByClass[1], pt.ShareRatioByClass[2])
	}
	fmt.Println()
	report(res.Final)
	return nil
}

func report(m btsim.Metrics) {
	fmt.Printf("rounds simulated:        %d\n", m.Round)
	fmt.Printf("completed leechers:      %d\n", m.CompletedLeechers)
	if m.TotalCrashed > 0 {
		fmt.Printf("crash-stop failures:     %d (of %d departures)\n", m.TotalCrashed, m.TotalDeparted)
	}
	if !math.IsNaN(m.MeanCompletionRound) {
		fmt.Printf("mean completion round:   %.1f\n", m.MeanCompletionRound)
	}
	if !math.IsNaN(m.StratCorrelation) {
		fmt.Printf("stratification corr:     %.3f (rank vs mean TFT-partner rank)\n", m.StratCorrelation)
		fmt.Printf("mean |rank offset|:      %.3f (normalized)\n", m.MeanAbsRankOffset)
	}

	// Decile table by rank.
	peers := append([]btsim.PeerMetrics(nil), m.Peers...)
	sort.Slice(peers, func(a, b int) bool { return peers[a].Rank < peers[b].Rank })
	var leechers []btsim.PeerMetrics
	for _, pm := range peers {
		if !pm.IsSeed {
			leechers = append(leechers, pm)
		}
	}
	if len(leechers) < 10 {
		return
	}
	fmt.Println("\n  decile  capacity(kbps)  down(kbit)  up(kbit)  share_ratio")
	dec := len(leechers) / 10
	for d := 0; d < 10; d++ {
		var capK, down, up []float64
		for _, pm := range leechers[d*dec : (d+1)*dec] {
			capK = append(capK, pm.Capacity)
			down = append(down, pm.TotalDown)
			up = append(up, pm.TotalUp)
		}
		mu, md := stats.Summarize(up).Mean, stats.Summarize(down).Mean
		ratio := math.NaN()
		if mu > 0 {
			ratio = md / mu
		}
		fmt.Printf("  %6d  %14.0f  %10.0f  %8.0f  %11.3f\n",
			d+1, stats.Summarize(capK).Mean, md, mu, ratio)
	}
}
