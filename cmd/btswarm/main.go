// Command btswarm runs a configurable BitTorrent Tit-for-Tat swarm
// simulation and reports per-peer outcomes and stratification statistics.
//
// Usage examples:
//
//	btswarm -leechers 200 -seeds 2 -pieces 256 -rounds 2000
//	btswarm -leechers 300 -unlimited -rounds 3000        # Section 6 regime
//	btswarm -leechers 100 -seeds 1 -until-done           # flash crowd
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"stratmatch/internal/bandwidth"
	"stratmatch/internal/btsim"
	"stratmatch/internal/rng"
	"stratmatch/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "btswarm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("btswarm", flag.ContinueOnError)
	var (
		leechers  = fs.Int("leechers", 200, "number of leechers")
		seeds     = fs.Int("seeds", 2, "number of initial seeds")
		pieces    = fs.Int("pieces", 256, "pieces in the file")
		pieceKbit = fs.Float64("piece-kbit", 2048, "piece size in kbit")
		neighbors = fs.Int("neighbors", 20, "tracker neighbors per peer (d)")
		tftSlots  = fs.Int("tft-slots", 3, "Tit-for-Tat unchoke slots")
		rounds    = fs.Int("rounds", 2000, "rounds to simulate")
		untilDone = fs.Bool("until-done", false, "run until every leecher completes (bounded by -rounds*100)")
		unlimited = fs.Bool("unlimited", false, "content-unlimited regime (paper Section 6: bandwidth only)")
		postFlash = fs.Bool("post-flashcrowd", true, "start leechers with ~half the pieces")
		uniform   = fs.Float64("uniform-kbps", 0, "give every peer this capacity instead of the Saroiu distribution")
		seed      = fs.Uint64("seed", 0, "random seed")
		warmup    = fs.Int("warmup", 0, "metrics warmup rounds (default: rounds/3)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	n := *leechers + *seeds
	caps := make([]float64, n)
	if *uniform > 0 {
		for i := range caps {
			caps[i] = *uniform
		}
	} else {
		ranked := bandwidth.RankBandwidths(bandwidth.Saroiu(), *leechers)
		perm := rng.New(*seed + 1).Perm(*leechers)
		for i, src := range perm {
			caps[i] = ranked[src]
		}
		for i := *leechers; i < n; i++ {
			caps[i] = 5000 // well-provisioned seeds
		}
	}
	w := *warmup
	if w == 0 {
		w = *rounds / 3
	}
	s, err := btsim.New(btsim.Options{
		Leechers:            *leechers,
		Seeds:               *seeds,
		Pieces:              *pieces,
		PieceKbit:           *pieceKbit,
		UploadKbps:          caps,
		TFTSlots:            *tftSlots,
		NeighborCount:       *neighbors,
		PostFlashCrowd:      *postFlash,
		ContentUnlimited:    *unlimited,
		MetricsWarmupRounds: w,
		Seed:                *seed,
	})
	if err != nil {
		return err
	}
	if *untilDone {
		if !s.RunUntilDone(*rounds * 100) {
			fmt.Println("WARNING: swarm did not complete within the round budget")
		}
	} else {
		s.Run(*rounds)
	}
	report(s.Snapshot())
	return nil
}

func report(m btsim.Metrics) {
	fmt.Printf("rounds simulated:        %d\n", m.Round)
	fmt.Printf("completed leechers:      %d\n", m.CompletedLeechers)
	if !math.IsNaN(m.MeanCompletionRound) {
		fmt.Printf("mean completion round:   %.1f\n", m.MeanCompletionRound)
	}
	if !math.IsNaN(m.StratCorrelation) {
		fmt.Printf("stratification corr:     %.3f (rank vs mean TFT-partner rank)\n", m.StratCorrelation)
		fmt.Printf("mean |rank offset|:      %.3f (normalized)\n", m.MeanAbsRankOffset)
	}

	// Decile table by rank.
	peers := append([]btsim.PeerMetrics(nil), m.Peers...)
	sort.Slice(peers, func(a, b int) bool { return peers[a].Rank < peers[b].Rank })
	var leechers []btsim.PeerMetrics
	for _, pm := range peers {
		if !pm.IsSeed {
			leechers = append(leechers, pm)
		}
	}
	if len(leechers) < 10 {
		return
	}
	fmt.Println("\n  decile  capacity(kbps)  down(kbit)  up(kbit)  share_ratio")
	dec := len(leechers) / 10
	for d := 0; d < 10; d++ {
		var capK, down, up []float64
		for _, pm := range leechers[d*dec : (d+1)*dec] {
			capK = append(capK, pm.Capacity)
			down = append(down, pm.TotalDown)
			up = append(up, pm.TotalUp)
		}
		mu, md := stats.Summarize(up).Mean, stats.Summarize(down).Mean
		ratio := math.NaN()
		if mu > 0 {
			ratio = md / mu
		}
		fmt.Printf("  %6d  %14.0f  %10.0f  %8.0f  %11.3f\n",
			d+1, stats.Summarize(capK).Mean, md, mu, ratio)
	}
}
