package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLineCustomMetrics(t *testing.T) {
	b, ok := parseBenchLine(
		"BenchmarkTrackerdSustainedLoad-8   3   1200000 ns/op   8521.33 announces/sec   0.412 p50-ms   1.975 p99-ms   1024 B/op   12 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkTrackerdSustainedLoad" || b.Iterations != 3 || b.NsPerOp != 1200000 {
		t.Fatalf("parsed %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1024 || b.AllocsPerOp == nil || *b.AllocsPerOp != 12 {
		t.Fatalf("benchmem fields: %+v", b)
	}
	want := map[string]float64{"announces/sec": 8521.33, "p50-ms": 0.412, "p99-ms": 1.975}
	if len(b.Metrics) != len(want) {
		t.Fatalf("metrics = %v; want %v", b.Metrics, want)
	}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Fatalf("metric %s = %v; want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestHigherIsBetter(t *testing.T) {
	for unit, want := range map[string]bool{
		"announces/sec": true,
		"MB/s":          true,
		"p99-ms":        false,
		"stale-edges":   false,
	} {
		if got := higherIsBetter(unit); got != want {
			t.Fatalf("higherIsBetter(%q) = %v; want %v", unit, got, want)
		}
	}
}

// TestCompareDirectionAware pins that a throughput drop and a latency rise
// are both flagged, while movement in the healthy direction is not.
func TestCompareDirectionAware(t *testing.T) {
	old := Document{Benchmarks: []Benchmark{{
		Name: "BenchmarkX", NsPerOp: 1000,
		Metrics: map[string]float64{"announces/sec": 10000, "p99-ms": 2.0},
	}}}
	path := filepath.Join(t.TempDir(), "old.json")
	raw, err := json.Marshal(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	report := func(perSec, p99 float64) string {
		var sb strings.Builder
		doc := Document{Benchmarks: []Benchmark{{
			Name: "BenchmarkX", NsPerOp: 1000,
			Metrics: map[string]float64{"announces/sec": perSec, "p99-ms": p99},
		}}}
		if err := compare(doc, path, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}

	// Throughput collapse: regression. Latency improvement alongside must
	// not mask it.
	out := report(5000, 1.0)
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "announces/sec") {
		t.Fatalf("throughput drop not flagged:\n%s", out)
	}
	// Latency blowup: regression.
	out = report(10000, 5.0)
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "p99-ms") {
		t.Fatalf("latency rise not flagged:\n%s", out)
	}
	// Both moving the healthy way: clean.
	out = report(20000, 1.0)
	if strings.Contains(out, "REGRESSION") {
		t.Fatalf("healthy movement flagged:\n%s", out)
	}
	if !strings.Contains(out, "no regressions") {
		t.Fatalf("missing clean summary:\n%s", out)
	}
}
