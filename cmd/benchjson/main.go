// Command benchjson converts `go test -bench` output into a JSON document
// so the per-experiment performance trajectory can be tracked across PRs
// (scripts/bench.sh writes it to BENCH_results.json at the repository
// root).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem | benchjson > BENCH_results.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one `go test -bench` result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present only with -benchmem.
	BytesPerOp  *int64 `json:"b_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

// Document is the emitted JSON shape.
type Document struct {
	// Context lines from the benchmark header (goos, goarch, pkg, cpu).
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	doc := Document{Context: map[string]string{}, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			doc.Context[key] = strings.TrimSpace(val)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// parseBenchLine parses e.g.
//
//	BenchmarkSwarm-8   3   13553642 ns/op   164581 B/op   473 allocs/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names are stable across runners.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		}
	}
	return b, true
}
