// Command benchjson converts `go test -bench` output into a JSON document
// so the per-experiment performance trajectory can be tracked across PRs
// (scripts/bench.sh writes it to BENCH_results.json at the repository
// root).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=3x -benchmem | benchjson > BENCH_results.json
//
// With --compare old.json it additionally diffs the fresh results against a
// previous document and prints a report to stderr flagging >20% ns/op or
// B/op regressions. The report is informational: the exit code stays 0, so
// CI can surface regressions without blocking merges on benchmark noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one `go test -bench` result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present only with -benchmem.
	BytesPerOp  *int64 `json:"b_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

// Document is the emitted JSON shape.
type Document struct {
	// Context lines from the benchmark header (goos, goarch, pkg, cpu).
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	comparePath := flag.String("compare", "",
		"previous BENCH_results.json to diff against; regressions >20% in ns/op or B/op are reported to stderr (never changes the exit code)")
	flag.Parse()
	if err := run(*comparePath); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(comparePath string) error {
	doc := Document{Context: map[string]string{}, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			doc.Context[key] = strings.TrimSpace(val)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if comparePath != "" {
		if err := compare(doc, comparePath); err != nil {
			// A broken baseline must not fail the run: the comparison is a
			// non-blocking report by contract.
			fmt.Fprintln(os.Stderr, "benchjson: compare:", err)
		}
	}
	return nil
}

// regressionThreshold is the relative growth in ns/op or B/op past which a
// benchmark is flagged.
const regressionThreshold = 0.20

// compare diffs doc against the baseline document at path and writes a
// regression report to stderr. It never alters the process exit code.
func compare(doc Document, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old Document
	if err := json.Unmarshal(raw, &old); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	baseline := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		baseline[b.Name] = b
	}
	regressions := 0
	fmt.Fprintf(os.Stderr, "benchjson: comparing %d benchmarks against %s (flagging >%.0f%% ns/op or B/op growth)\n",
		len(doc.Benchmarks), path, regressionThreshold*100)
	seen := make(map[string]bool, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		seen[b.Name] = true
		prev, ok := baseline[b.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "  NEW        %-28s %12.0f ns/op\n", b.Name, b.NsPerOp)
			continue
		}
		flagged := false
		if prev.NsPerOp > 0 && b.NsPerOp > prev.NsPerOp*(1+regressionThreshold) {
			fmt.Fprintf(os.Stderr, "  REGRESSION %-28s ns/op %12.0f -> %12.0f (%+.1f%%)\n",
				b.Name, prev.NsPerOp, b.NsPerOp, 100*(b.NsPerOp/prev.NsPerOp-1))
			regressions++
			flagged = true
		}
		if prev.BytesPerOp != nil && b.BytesPerOp != nil && *prev.BytesPerOp > 0 &&
			float64(*b.BytesPerOp) > float64(*prev.BytesPerOp)*(1+regressionThreshold) {
			fmt.Fprintf(os.Stderr, "  REGRESSION %-28s B/op  %12d -> %12d (%+.1f%%)\n",
				b.Name, *prev.BytesPerOp, *b.BytesPerOp,
				100*(float64(*b.BytesPerOp)/float64(*prev.BytesPerOp)-1))
			regressions++
			flagged = true
		}
		if !flagged && prev.NsPerOp > 0 && b.NsPerOp < prev.NsPerOp*(1-regressionThreshold) {
			fmt.Fprintf(os.Stderr, "  improved   %-28s ns/op %12.0f -> %12.0f (%+.1f%%)\n",
				b.Name, prev.NsPerOp, b.NsPerOp, 100*(b.NsPerOp/prev.NsPerOp-1))
		}
	}
	// Baseline entries absent from the fresh run are the failure the report
	// exists to surface (renames, deletions, a suite that died mid-run) —
	// count them as regressions so they cannot hide behind a clean summary.
	for _, b := range old.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(os.Stderr, "  MISSING    %-28s present in baseline, absent from this run\n", b.Name)
			regressions++
		}
	}
	if regressions == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no regressions past the threshold")
	} else {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) past the threshold (report only; not failing the build)\n", regressions)
	}
	return nil
}

// parseBenchLine parses e.g.
//
//	BenchmarkSwarm-8   3   13553642 ns/op   164581 B/op   473 allocs/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names are stable across runners.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		}
	}
	return b, true
}
