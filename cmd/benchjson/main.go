// Command benchjson converts `go test -bench` output into a JSON document
// so the per-experiment performance trajectory can be tracked across PRs
// (scripts/bench.sh writes it to BENCH_results.json at the repository
// root).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=3x -benchmem | benchjson > BENCH_results.json
//
// With --compare old.json it additionally diffs the fresh results against a
// previous document and prints a report to stderr flagging >20% ns/op or
// B/op regressions. Custom units reported via b.ReportMetric are captured
// too and compared direction-aware: throughput units ("/sec", "/s",
// "/op" counts excluded) regress when they shrink, everything else
// (latencies, sizes) when it grows. The report is informational: the exit
// code stays 0, so CI can surface regressions without blocking merges on
// benchmark noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one `go test -bench` result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present only with -benchmem.
	BytesPerOp  *int64 `json:"b_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom units the benchmark reported via b.ReportMetric
	// (e.g. "announces/sec", "p99-ms"), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted JSON shape.
type Document struct {
	// Context lines from the benchmark header (goos, goarch, pkg, cpu).
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	comparePath := flag.String("compare", "",
		"previous BENCH_results.json to diff against; regressions >20% in ns/op or B/op are reported to stderr (never changes the exit code)")
	flag.Parse()
	if err := run(*comparePath); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(comparePath string) error {
	doc := Document{Context: map[string]string{}, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			doc.Context[key] = strings.TrimSpace(val)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if comparePath != "" {
		if err := compare(doc, comparePath, os.Stderr); err != nil {
			// A broken baseline must not fail the run: the comparison is a
			// non-blocking report by contract.
			fmt.Fprintln(os.Stderr, "benchjson: compare:", err)
		}
	}
	return nil
}

// regressionThreshold is the relative growth in ns/op or B/op past which a
// benchmark is flagged.
const regressionThreshold = 0.20

// compare diffs doc against the baseline document at path and writes a
// regression report to w (stderr in the CLI). It never alters the process
// exit code.
func compare(doc Document, path string, w io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old Document
	if err := json.Unmarshal(raw, &old); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	baseline := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		baseline[b.Name] = b
	}
	regressions := 0
	fmt.Fprintf(w, "benchjson: comparing %d benchmarks against %s (flagging >%.0f%% regressions; custom units direction-aware)\n",
		len(doc.Benchmarks), path, regressionThreshold*100)
	seen := make(map[string]bool, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		seen[b.Name] = true
		prev, ok := baseline[b.Name]
		if !ok {
			fmt.Fprintf(w, "  NEW        %-28s %12.0f ns/op\n", b.Name, b.NsPerOp)
			continue
		}
		flagged := false
		if prev.NsPerOp > 0 && b.NsPerOp > prev.NsPerOp*(1+regressionThreshold) {
			fmt.Fprintf(w, "  REGRESSION %-28s ns/op %12.0f -> %12.0f (%+.1f%%)\n",
				b.Name, prev.NsPerOp, b.NsPerOp, 100*(b.NsPerOp/prev.NsPerOp-1))
			regressions++
			flagged = true
		}
		if prev.BytesPerOp != nil && b.BytesPerOp != nil && *prev.BytesPerOp > 0 &&
			float64(*b.BytesPerOp) > float64(*prev.BytesPerOp)*(1+regressionThreshold) {
			fmt.Fprintf(w, "  REGRESSION %-28s B/op  %12d -> %12d (%+.1f%%)\n",
				b.Name, *prev.BytesPerOp, *b.BytesPerOp,
				100*(float64(*b.BytesPerOp)/float64(*prev.BytesPerOp)-1))
			regressions++
			flagged = true
		}
		// Custom metrics, direction-aware: a throughput unit regresses by
		// falling, a latency/size unit by rising. Sorted for stable output.
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			v := b.Metrics[unit]
			pv, ok := prev.Metrics[unit]
			if !ok || pv <= 0 {
				continue
			}
			worse := v > pv*(1+regressionThreshold)
			if higherIsBetter(unit) {
				worse = v < pv*(1-regressionThreshold)
			}
			if worse {
				fmt.Fprintf(w, "  REGRESSION %-28s %-14s %12.2f -> %12.2f (%+.1f%%)\n",
					b.Name, unit, pv, v, 100*(v/pv-1))
				regressions++
				flagged = true
			}
		}
		if !flagged && prev.NsPerOp > 0 && b.NsPerOp < prev.NsPerOp*(1-regressionThreshold) {
			fmt.Fprintf(w, "  improved   %-28s ns/op %12.0f -> %12.0f (%+.1f%%)\n",
				b.Name, prev.NsPerOp, b.NsPerOp, 100*(b.NsPerOp/prev.NsPerOp-1))
		}
	}
	// Baseline entries absent from the fresh run are the failure the report
	// exists to surface (renames, deletions, a suite that died mid-run) —
	// count them as regressions so they cannot hide behind a clean summary.
	for _, b := range old.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(w, "  MISSING    %-28s present in baseline, absent from this run\n", b.Name)
			regressions++
		}
	}
	if regressions == 0 {
		fmt.Fprintln(w, "benchjson: no regressions past the threshold")
	} else {
		fmt.Fprintf(w, "benchjson: %d regression(s) past the threshold (report only; not failing the build)\n", regressions)
	}
	return nil
}

// parseBenchLine parses e.g.
//
//	BenchmarkSwarm-8   3   13553642 ns/op   164581 B/op   473 allocs/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names are stable across runners.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		switch unit := fields[i+1]; unit {
		case "B/op":
			if v, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
				b.BytesPerOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
				b.AllocsPerOp = &v
			}
		default:
			// Anything else is a b.ReportMetric custom unit.
			if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
	}
	return b, true
}

// higherIsBetter classifies a custom metric unit's direction: rates
// ("announces/sec", "MB/s", "ops/sec") regress when they shrink; everything
// else — latencies ("p99-ms"), sizes, counts — regresses when it grows.
func higherIsBetter(unit string) bool {
	return strings.Contains(unit, "/sec") || strings.HasSuffix(unit, "/s")
}
