// Command stratsim reproduces the paper's tables and figures.
//
// Usage:
//
//	stratsim -list
//	stratsim -exp fig8
//	stratsim -exp all -scale 1.0 -out results/
//
// Each experiment prints its ASCII chart and/or table plus the qualitative
// checks the paper makes about the artifact. With -out, CSV files suitable
// for external plotting are written as <id>.csv (figures, long form) and
// <id>_table.csv (tables).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"stratmatch/internal/experiments"
	"stratmatch/internal/textplot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stratsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stratsim", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiment id to run, or 'all'")
		list    = fs.Bool("list", false, "list available experiments")
		scale   = fs.Float64("scale", 1.0, "population scale factor (1.0 = paper scale)")
		seed    = fs.Uint64("seed", 0, "random seed")
		samples = fs.Int("samples", 0, "Monte-Carlo samples for fig9 (0 = default 1000)")
		out     = fs.String("out", "", "directory for CSV output (created if missing)")
		workers = fs.Int("workers", 0, "goroutines for parallel experiments (0 = all cores); results are identical for any value")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-6s %s\n", id, title)
		}
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (or -list)")
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale, MCSamples: *samples, Workers: *workers}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			return err
		}
		printResult(res, time.Since(start))
		if *out != "" {
			if err := writeCSV(*out, res); err != nil {
				return err
			}
		}
		if _, fail := res.Checks(); fail > 0 {
			failed += fail
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d qualitative checks failed", failed)
	}
	return nil
}

func printResult(res *experiments.Result, elapsed time.Duration) {
	fmt.Printf("=== %s: %s (%.2fs)\n\n", res.ID, res.Title, elapsed.Seconds())
	if len(res.Series) > 0 {
		fmt.Println(res.Chart.Render())
	}
	if len(res.TableRows) > 0 {
		printTable(res.TableHeader, res.TableRows)
	}
	for _, note := range res.Notes {
		fmt.Println("  -", note)
	}
	fmt.Println()
}

func printTable(header []string, rows [][]float64) {
	const maxRows = 24
	fmt.Println(" ", strings.Join(header, "  "))
	step := 1
	if len(rows) > maxRows {
		step = len(rows) / maxRows
	}
	for i := 0; i < len(rows); i += step {
		fields := make([]string, len(rows[i]))
		for j, v := range rows[i] {
			fields[j] = fmt.Sprintf("%*.6g", len(header[j]), v)
		}
		fmt.Println(" ", strings.Join(fields, "  "))
	}
	if step > 1 {
		fmt.Printf("  (%d rows, every %dth shown; full data via -out)\n", len(rows), step)
	}
}

func writeCSV(dir string, res *experiments.Result) error {
	if len(res.Series) > 0 {
		f, err := os.Create(filepath.Join(dir, res.ID+".csv"))
		if err != nil {
			return err
		}
		err = textplot.SeriesCSV(f, res.Series)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write %s.csv: %w", res.ID, err)
		}
	}
	if len(res.TableRows) > 0 {
		f, err := os.Create(filepath.Join(dir, res.ID+"_table.csv"))
		if err != nil {
			return err
		}
		err = textplot.WriteCSV(f, res.TableHeader, res.TableRows)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write %s_table.csv: %w", res.ID, err)
		}
	}
	return nil
}
