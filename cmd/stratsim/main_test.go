package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingExp(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -exp accepted")
	}
}

func TestRunUnknownExp(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "fig7", "-scale", "0.1", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig7.csv", "fig7_table.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestRunTableOnlyExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "mmo", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "mmo_table.csv")); err != nil {
		t.Errorf("missing table csv: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "mmo.csv")); err == nil {
		t.Error("series csv written for table-only experiment")
	}
}

func TestRunOutDirCreation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	if err := run([]string{"-exp", "fig4", "-scale", "0.5", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatal("output dir not created")
	}
}
