// BitTorrent example: predict per-peer share ratios with the paper's
// analytic model (Figure 11), then run a full Tit-for-Tat swarm simulation
// and observe the same stratification emerge from protocol mechanics.
package main

import (
	"fmt"
	"log"
	"math"

	"stratmatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		peers = 600
		b0    = 3  // BitTorrent's default 4 slots = 3 TFT + 1 optimistic
		d     = 20 // expected acceptable peers
	)
	dist := stratmatch.SaroiuBandwidth()

	// --- Analytic prediction (paper Section 6 / Figure 11) ---
	pts, err := stratmatch.ShareRatios(peers, b0, d, dist)
	if err != nil {
		return err
	}
	fmt.Println("Analytic expected D/U ratio by bandwidth class:")
	fmt.Println("  rank range   upload(kbps)      efficiency")
	for _, lo := range []int{0, peers / 4, peers / 2, 3 * peers / 4, peers - peers/20} {
		hi := lo + peers/20
		var up, eff float64
		for _, pt := range pts[lo:hi] {
			up += pt.Upload
			eff += pt.Efficiency
		}
		k := float64(hi - lo)
		fmt.Printf("  %4d-%-6d %12.0f %15.3f\n", lo+1, hi, up/k, eff/k)
	}
	fmt.Println("-> best peers subsidize the swarm (ratio < 1); worst peers profit")

	// --- Swarm simulation (content-unlimited regime) ---
	caps := make([]float64, peers)
	for i := range caps {
		caps[i] = dist.Quantile(1 - (float64(i)+0.5)/peers)
	}
	sw, err := stratmatch.NewSwarm(stratmatch.SwarmOptions{
		Leechers:            peers,
		Pieces:              1,
		ContentUnlimited:    true,
		UploadKbps:          caps,
		NeighborCount:       d,
		MetricsWarmupRounds: 600,
		Seed:                7,
	})
	if err != nil {
		return err
	}
	sw.Run(1800)
	m := sw.Metrics()
	fmt.Printf("\nSwarm simulation (%d peers, %d rounds):\n", peers, sw.Round())
	fmt.Printf("  stratification correlation (rank vs TFT-partner rank): %.3f\n",
		m.StratCorrelation)
	fmt.Printf("  normalized mean rank offset: %.3f\n", m.MeanAbsRankOffset)

	var topRatio, botRatio, nTop, nBot float64
	for _, pm := range m.Peers {
		if math.IsNaN(pm.ShareRatio) {
			continue
		}
		switch {
		case pm.Rank < peers/10:
			topRatio += pm.ShareRatio
			nTop++
		case pm.Rank >= peers-peers/10:
			botRatio += pm.ShareRatio
			nBot++
		}
	}
	fmt.Printf("  measured share ratio: top decile %.3f, bottom decile %.3f\n",
		topRatio/nTop, botRatio/nBot)
	fmt.Println("-> Tit-for-Tat reproduces the matching model's stratification")
	return nil
}
