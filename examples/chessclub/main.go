// Chess-club example: the stratification model beyond file sharing. Players
// have ELO ratings (the paper's example of an intrinsic global score) and a
// few weekly game slots; everyone wants the strongest opponents who will
// still play them. The stable matching splits the ladder into rating bands —
// de-facto clubs — and variable slot counts merge the clubs into one
// connected ladder while keeping games between near-equals (stratification).
package main

import (
	"fmt"
	"log"

	"stratmatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Ratings for 24 players (not sorted: RankByScore handles that).
	ratings := []float64{
		1510, 2380, 1720, 1905, 2210, 1230, 2705, 1998,
		1405, 2120, 1830, 2450, 1610, 2010, 1150, 2600,
		1315, 1875, 2305, 1695, 2055, 1450, 2500, 1780,
	}
	rankOf, peerAt := stratmatch.RankByScore(ratings)

	// Everyone is willing to play everyone; three game slots per week.
	nw, err := stratmatch.NewCompleteNetwork(len(ratings), 3)
	if err != nil {
		return err
	}
	m := nw.Stable()
	rep := m.Clusters()
	fmt.Printf("Uniform 3 slots: %d clubs of %0.f players each, MMO %.2f\n",
		rep.Components, rep.MeanClusterSize, rep.MMO)
	for rank := 0; rank < len(ratings); rank++ {
		player := peerAt[rank]
		var opponents []float64
		for _, mateRank := range m.Mates(rank) {
			opponents = append(opponents, ratings[peerAt[mateRank]])
		}
		fmt.Printf("  #%2d  ELO %4.0f  plays vs %v\n", rank+1, ratings[player], opponents)
	}

	// Stronger players take more games (variable budgets): the ladder
	// becomes one connected club, but pairings stay between near-equals.
	budgets := make([]int, len(ratings))
	for player, rating := range ratings {
		b := 2
		if rating > 1800 {
			b = 3
		}
		if rating > 2300 {
			b = 4
		}
		budgets[player] = b
	}
	// Budgets must be indexed by rank, the network's peer identity.
	byRank := make([]int, len(budgets))
	for player, b := range budgets {
		byRank[rankOf[player]] = b
	}
	if err := nw.SetBudgets(byRank); err != nil {
		return err
	}
	rep = nw.Stable().Clusters()
	fmt.Printf("\nVariable slots (2..4 by strength): %d club(s), max size %d, MMO %.2f\n",
		rep.Components, rep.MaxClusterSize, rep.MMO)
	fmt.Println("-> one connected ladder, but every game is still between near-equals:")
	fmt.Println("   stratification is intrinsic to best-partner preferences, not to BitTorrent")
	return nil
}
