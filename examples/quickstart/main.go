// Quickstart: build an acceptance network, compute the unique stable
// matching, inspect clustering, and watch decentralized initiatives
// converge to the same matching.
package main

import (
	"fmt"
	"log"

	"stratmatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Twelve peers, everybody acceptable to everybody, two
	//    collaboration slots each. Peer 0 is the best peer (rank order is
	//    identity: think of it as sorted by upload bandwidth).
	nw, err := stratmatch.NewCompleteNetwork(12, 2)
	if err != nil {
		return err
	}
	m := nw.Stable()
	fmt.Println("Stable matching on the complete network (b0 = 2):")
	for p := 0; p < nw.N(); p++ {
		fmt.Printf("  peer %2d collaborates with %v\n", p, m.Mates(p))
	}
	rep := m.Clusters()
	fmt.Printf("clusters: %d components, mean size %.1f, MMO %.2f\n",
		rep.Components, rep.MeanClusterSize, rep.MMO)
	fmt.Println("-> disjoint triangles: the clustering of the paper's Figure 4")

	// 2. Give the best peer one extra slot: the graph becomes connected
	//    (Figure 5).
	if err := nw.SetBudget(0, 3); err != nil {
		return err
	}
	rep = nw.Stable().Clusters()
	fmt.Printf("\nAfter one extra slot for peer 0: %d component(s), max size %d\n",
		rep.Components, rep.MaxClusterSize)

	// 3. On a random acceptance graph, decentralized initiatives reach the
	//    same unique stable matching (Theorem 1).
	rnd, err := stratmatch.NewRandomNetwork(500, 10, 1, 42)
	if err != nil {
		return err
	}
	sim, err := rnd.Simulate(stratmatch.BestMate, 42)
	if err != nil {
		return err
	}
	traj := sim.Run(15, 1)
	fmt.Println("\nDecentralized convergence on G(500, d=10), 1-matching:")
	for _, pt := range traj {
		if int(pt.Time)%3 == 0 {
			fmt.Printf("  t=%4.1f initiatives/peer  disorder %.4f\n", pt.Time, pt.Disorder)
		}
	}
	fmt.Printf("converged: %v\n", sim.Converged())
	return nil
}
