// Churn example: declarative scenario specs and streaming observers. A
// workload — Poisson arrivals plus a mid-run flash burst, capacity-biased
// abandonment, a scheduled mass departure, a tracker outage and a
// crash-stop failure wave — is described entirely in a JSON spec file
// (spec.json, embedded; pass a path to run your own), compiled into a
// runnable scenario, and consumed through the streaming Observer API: the
// run samples every round, yet this program holds O(1) series memory
// because the observer aggregates in place instead of materializing the
// series.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"
	"strings"

	"stratmatch"
)

//go:embed spec.json
var defaultSpec []byte

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// watcher implements stratmatch.ScenarioObserver: it prints a live
// population bar every printEvery samples and keeps only scalar
// aggregates — no series is ever materialized.
type watcher struct {
	printEvery int
	seen       int
	peak       stratmatch.ScenarioPoint
	last       stratmatch.ScenarioPoint
	peakStale  int
}

func (w *watcher) OnSample(pt stratmatch.ScenarioPoint) {
	if pt.Present > w.peak.Present {
		w.peak = pt
	}
	if pt.StaleEdges > w.peakStale {
		w.peakStale = pt.StaleEdges
	}
	w.last = pt
	w.seen++
	if w.seen%w.printEvery != 1 {
		return
	}
	bar := strings.Repeat("#", pt.Present/2)
	fmt.Printf("  round %4d  present %3d (%3d leech / %3d seed)  %s\n",
		pt.Round, pt.Present, pt.Leechers, pt.Seeds, bar)
}

func (w *watcher) OnEvent(ev stratmatch.ScenarioEvent) {
	switch ev.Kind {
	case "shock", "crash":
		fmt.Printf("  round %4d  ** %s: %d peers gone **\n", ev.Round, ev.Kind, ev.Departed)
	case "partition":
		fmt.Printf("  round %4d  ** partition: %d connections severed **\n", ev.Round, ev.Edges)
	default: // tracker_down, tracker_up, partition_heal, drained
		fmt.Printf("  round %4d  ** %s **\n", ev.Round, ev.Kind)
	}
}

func (w *watcher) OnDone(m stratmatch.SwarmMetrics) {
	fmt.Printf("\nDone after %d rounds: %d peers ever joined, %d completed the file,\n",
		m.Round, len(m.Peers), m.CompletedLeechers)
	fmt.Printf("%d still present; peak population %d at round %d.\n",
		m.Present, w.peak.Present, w.peak.Round)
	// Capacity-biased abandonment (abandon_rank_bias in the spec) should
	// have culled mostly slow peers mid-download.
	var quit, quitCap, stay, stayCap float64
	for _, pm := range m.Peers {
		if pm.IsSeed {
			continue
		}
		if pm.Departed && !pm.Done {
			quit++
			quitCap += pm.Capacity
		} else {
			stay++
			stayCap += pm.Capacity
		}
	}
	if quit > 0 && stay > 0 {
		fmt.Printf("Abandonment was capacity-biased: %0.f quitters averaged %.0f kbps,\n"+
			"the %0.f completers/stayers %.0f kbps.\n", quit, quitCap/quit, stay, stayCap/stay)
	}
	if m.TotalCrashed > 0 || w.last.AnnounceFailures > 0 {
		fmt.Printf("Faults: %d crash-stop failures (peak %d stale connections awaiting\n"+
			"detection, %d at the end); %d announces lost, %d backoff retries fired.\n",
			m.TotalCrashed, w.peakStale, w.last.StaleEdges,
			w.last.AnnounceFailures, w.last.AnnounceRetries)
	}
}

func run() error {
	data := defaultSpec
	src := "embedded spec.json"
	if len(os.Args) > 1 {
		var err error
		if data, err = os.ReadFile(os.Args[1]); err != nil {
			return err
		}
		src = os.Args[1]
	}

	spec, err := stratmatch.ParseScenarioSpec(data)
	if err != nil {
		return err
	}
	fmt.Printf("Scenario %q (%s): %d rounds, %d arrival processes, %d scheduled events.\n",
		spec.Name, src, spec.Rounds, len(spec.Arrivals), len(spec.Events))
	if spec.HasFaults() {
		fmt.Printf("Fault injection armed: %d scheduled faults.\n", len(spec.Faults.Injections))
	}
	if spec.Swarm.MaxPeers == 0 {
		fmt.Printf("max_peers unset: compiling with an estimated peak of %d concurrent peers.\n",
			spec.MaxPeersEstimate())
	}
	fmt.Println()

	sc, err := spec.Compile()
	if err != nil {
		return err
	}
	return sc.RunObserver(&watcher{printEvery: 60})
}
