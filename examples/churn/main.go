// Churn example: the stable configuration as an attractor. Starting from an
// empty overlay, peers converge; under continuous churn the system hovers
// near the (moving) stable state, with a disorder plateau proportional to
// the churn rate; and after a mass departure the overlay heals.
package main

import (
	"fmt"
	"log"
	"strings"

	"stratmatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n = 800
		d = 10.0
	)
	attach := d / float64(n-1)

	fmt.Println("Disorder under different churn rates (G(800, d=10), 1-matching):")
	for _, churn := range []float64{0, 0.003, 0.03} {
		nw, err := stratmatch.NewRandomNetwork(n, d, 1, 11)
		if err != nil {
			return err
		}
		sim, err := nw.Simulate(stratmatch.BestMate, 11)
		if err != nil {
			return err
		}
		traj := sim.RunChurn(20, 1, churn, attach)
		fmt.Printf("\n  churn %.3f/initiative:\n", churn)
		for _, pt := range traj {
			if int(pt.Time)%2 != 0 {
				continue
			}
			bar := strings.Repeat("#", int(pt.Disorder*120))
			fmt.Printf("    t=%4.0f %-6.4f %s\n", pt.Time, pt.Disorder, bar)
		}
	}

	// Mass departure: drop 10% of peers from the stable state and heal.
	nw, err := stratmatch.NewRandomNetwork(n, d, 1, 13)
	if err != nil {
		return err
	}
	sim, err := nw.Simulate(stratmatch.BestMate, 13)
	if err != nil {
		return err
	}
	sim.JumpToStable()
	for p := 0; p < n/10; p++ {
		sim.RemovePeer(p * 10)
	}
	fmt.Printf("\nAfter removing 10%% of peers: disorder %.4f\n", sim.Disorder())
	sim.Run(10, 1)
	fmt.Printf("After 10 initiatives/peer:     disorder %.4f (converged: %v)\n",
		sim.Disorder(), sim.Converged())
	return nil
}
