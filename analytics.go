package stratmatch

import (
	"sort"

	"stratmatch/internal/analytic"
	"stratmatch/internal/bandwidth"
)

// MateDistribution evaluates the paper's independent 1-matching model
// (Algorithm 2) on G(n, p) and returns D(peer, ·): the probability that the
// given peer's stable mate is each rank. The slice sums to the peer's
// overall matching probability (≤ 1; the worst peer is matched about half
// the time).
func MateDistribution(n int, p float64, peer int) ([]float64, error) {
	res, err := analytic.OneMatching(n, p, peer)
	if err != nil {
		return nil, err
	}
	return res.Rows[peer], nil
}

// ChoiceDistributions evaluates the independent b0-matching model
// (Algorithm 3) and returns, for each choice c = 1..b0, the distribution of
// the peer's c-th best stable mate.
func ChoiceDistributions(n int, p float64, b0, peer int) ([][]float64, error) {
	res, err := analytic.BMatching(analytic.BMatchingOptions{
		N: n, P: p, B0: b0, TrackRows: []int{peer},
	})
	if err != nil {
		return nil, err
	}
	return res.Rows[peer], nil
}

// FluidDensity is the paper's fluid limit for the best peer's mate rank:
// density d·e^{−βd} at rescaled rank β, where d is the mean number of
// acceptable peers.
func FluidDensity(d, beta float64) float64 { return analytic.FluidDensity(d, beta) }

// BandwidthDistribution is a host upstream-capacity distribution (a
// continuous CDF over kbps).
type BandwidthDistribution = bandwidth.Distribution

// SaroiuBandwidth returns the reconstructed Gnutella upstream distribution
// the paper uses to map ranks to bandwidths (its Figure 10).
func SaroiuBandwidth() *BandwidthDistribution { return bandwidth.Saroiu() }

// SharePoint is one peer's expected BitTorrent share ratio under the model.
type SharePoint = bandwidth.SharePoint

// ShareRatios predicts each rank's expected download/upload ratio in a
// BitTorrent-like system with b0 Tit-for-Tat slots and d expected
// acceptable peers, with upload capacities drawn from dist (the paper's
// Figure 11 uses b0 = 3, d = 20 over the Saroiu distribution).
func ShareRatios(n, b0 int, d float64, dist *BandwidthDistribution) ([]SharePoint, error) {
	return bandwidth.ShareRatios(bandwidth.ShareRatioOptions{N: n, B0: b0, D: d, Dist: dist})
}

// RankByScore converts intrinsic scores into the package's rank convention:
// it returns rankOf with rankOf[peer] = rank (0 = highest score) and
// peerAt with peerAt[rank] = peer. Ties are broken by index so ranks are
// always strict, as the model requires.
func RankByScore(scores []float64) (rankOf, peerAt []int) {
	peerAt = make([]int, len(scores))
	for i := range peerAt {
		peerAt[i] = i
	}
	sort.SliceStable(peerAt, func(a, b int) bool {
		return scores[peerAt[a]] > scores[peerAt[b]]
	})
	rankOf = make([]int, len(scores))
	for rank, peer := range peerAt {
		rankOf[peer] = rank
	}
	return rankOf, peerAt
}
